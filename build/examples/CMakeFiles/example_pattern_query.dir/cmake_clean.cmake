file(REMOVE_RECURSE
  "CMakeFiles/example_pattern_query.dir/pattern_query.cpp.o"
  "CMakeFiles/example_pattern_query.dir/pattern_query.cpp.o.d"
  "example_pattern_query"
  "example_pattern_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pattern_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
