# Empty compiler generated dependencies file for example_pattern_query.
# This may be replaced when dependencies are built.
