# Empty dependencies file for example_motif_census.
# This may be replaced when dependencies are built.
