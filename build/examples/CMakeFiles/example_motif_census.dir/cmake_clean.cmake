file(REMOVE_RECURSE
  "CMakeFiles/example_motif_census.dir/motif_census.cpp.o"
  "CMakeFiles/example_motif_census.dir/motif_census.cpp.o.d"
  "example_motif_census"
  "example_motif_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_motif_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
