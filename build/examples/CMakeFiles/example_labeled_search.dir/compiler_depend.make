# Empty compiler generated dependencies file for example_labeled_search.
# This may be replaced when dependencies are built.
