file(REMOVE_RECURSE
  "CMakeFiles/example_labeled_search.dir/labeled_search.cpp.o"
  "CMakeFiles/example_labeled_search.dir/labeled_search.cpp.o.d"
  "example_labeled_search"
  "example_labeled_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_labeled_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
