# Empty dependencies file for ablation_codemotion.
# This may be replaced when dependencies are built.
