file(REMOVE_RECURSE
  "CMakeFiles/ablation_codemotion.dir/ablation_codemotion.cpp.o"
  "CMakeFiles/ablation_codemotion.dir/ablation_codemotion.cpp.o.d"
  "ablation_codemotion"
  "ablation_codemotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codemotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
