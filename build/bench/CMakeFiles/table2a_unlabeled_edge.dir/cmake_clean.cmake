file(REMOVE_RECURSE
  "CMakeFiles/table2a_unlabeled_edge.dir/table2a_unlabeled_edge.cpp.o"
  "CMakeFiles/table2a_unlabeled_edge.dir/table2a_unlabeled_edge.cpp.o.d"
  "table2a_unlabeled_edge"
  "table2a_unlabeled_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2a_unlabeled_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
