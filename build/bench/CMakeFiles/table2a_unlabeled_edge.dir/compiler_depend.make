# Empty compiler generated dependencies file for table2a_unlabeled_edge.
# This may be replaced when dependencies are built.
