# Empty dependencies file for table2b_vertex_induced.
# This may be replaced when dependencies are built.
