file(REMOVE_RECURSE
  "CMakeFiles/table2b_vertex_induced.dir/table2b_vertex_induced.cpp.o"
  "CMakeFiles/table2b_vertex_induced.dir/table2b_vertex_induced.cpp.o.d"
  "table2b_vertex_induced"
  "table2b_vertex_induced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2b_vertex_induced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
