# Empty compiler generated dependencies file for table3_labeled.
# This may be replaced when dependencies are built.
