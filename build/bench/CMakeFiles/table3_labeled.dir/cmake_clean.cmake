file(REMOVE_RECURSE
  "CMakeFiles/table3_labeled.dir/table3_labeled.cpp.o"
  "CMakeFiles/table3_labeled.dir/table3_labeled.cpp.o.d"
  "table3_labeled"
  "table3_labeled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_labeled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
