file(REMOVE_RECURSE
  "CMakeFiles/fig11_multigpu.dir/fig11_multigpu.cpp.o"
  "CMakeFiles/fig11_multigpu.dir/fig11_multigpu.cpp.o.d"
  "fig11_multigpu"
  "fig11_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
