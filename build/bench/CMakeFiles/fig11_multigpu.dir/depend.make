# Empty dependencies file for fig11_multigpu.
# This may be replaced when dependencies are built.
