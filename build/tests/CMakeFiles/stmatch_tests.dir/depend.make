# Empty dependencies file for stmatch_tests.
# This may be replaced when dependencies are built.
