file(REMOVE_RECURSE
  "CMakeFiles/stmatch_tests.dir/test_baselines.cpp.o"
  "CMakeFiles/stmatch_tests.dir/test_baselines.cpp.o.d"
  "CMakeFiles/stmatch_tests.dir/test_datasets_integration.cpp.o"
  "CMakeFiles/stmatch_tests.dir/test_datasets_integration.cpp.o.d"
  "CMakeFiles/stmatch_tests.dir/test_engine.cpp.o"
  "CMakeFiles/stmatch_tests.dir/test_engine.cpp.o.d"
  "CMakeFiles/stmatch_tests.dir/test_engine_fuzz.cpp.o"
  "CMakeFiles/stmatch_tests.dir/test_engine_fuzz.cpp.o.d"
  "CMakeFiles/stmatch_tests.dir/test_graph.cpp.o"
  "CMakeFiles/stmatch_tests.dir/test_graph.cpp.o.d"
  "CMakeFiles/stmatch_tests.dir/test_graph_extras.cpp.o"
  "CMakeFiles/stmatch_tests.dir/test_graph_extras.cpp.o.d"
  "CMakeFiles/stmatch_tests.dir/test_identities.cpp.o"
  "CMakeFiles/stmatch_tests.dir/test_identities.cpp.o.d"
  "CMakeFiles/stmatch_tests.dir/test_motifs.cpp.o"
  "CMakeFiles/stmatch_tests.dir/test_motifs.cpp.o.d"
  "CMakeFiles/stmatch_tests.dir/test_pattern.cpp.o"
  "CMakeFiles/stmatch_tests.dir/test_pattern.cpp.o.d"
  "CMakeFiles/stmatch_tests.dir/test_plan.cpp.o"
  "CMakeFiles/stmatch_tests.dir/test_plan.cpp.o.d"
  "CMakeFiles/stmatch_tests.dir/test_reference.cpp.o"
  "CMakeFiles/stmatch_tests.dir/test_reference.cpp.o.d"
  "CMakeFiles/stmatch_tests.dir/test_setops.cpp.o"
  "CMakeFiles/stmatch_tests.dir/test_setops.cpp.o.d"
  "CMakeFiles/stmatch_tests.dir/test_simt.cpp.o"
  "CMakeFiles/stmatch_tests.dir/test_simt.cpp.o.d"
  "CMakeFiles/stmatch_tests.dir/test_util.cpp.o"
  "CMakeFiles/stmatch_tests.dir/test_util.cpp.o.d"
  "stmatch_tests"
  "stmatch_tests.pdb"
  "stmatch_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stmatch_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
