
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/stmatch_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/stmatch_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_datasets_integration.cpp" "tests/CMakeFiles/stmatch_tests.dir/test_datasets_integration.cpp.o" "gcc" "tests/CMakeFiles/stmatch_tests.dir/test_datasets_integration.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/stmatch_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/stmatch_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_engine_fuzz.cpp" "tests/CMakeFiles/stmatch_tests.dir/test_engine_fuzz.cpp.o" "gcc" "tests/CMakeFiles/stmatch_tests.dir/test_engine_fuzz.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/stmatch_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/stmatch_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graph_extras.cpp" "tests/CMakeFiles/stmatch_tests.dir/test_graph_extras.cpp.o" "gcc" "tests/CMakeFiles/stmatch_tests.dir/test_graph_extras.cpp.o.d"
  "/root/repo/tests/test_identities.cpp" "tests/CMakeFiles/stmatch_tests.dir/test_identities.cpp.o" "gcc" "tests/CMakeFiles/stmatch_tests.dir/test_identities.cpp.o.d"
  "/root/repo/tests/test_motifs.cpp" "tests/CMakeFiles/stmatch_tests.dir/test_motifs.cpp.o" "gcc" "tests/CMakeFiles/stmatch_tests.dir/test_motifs.cpp.o.d"
  "/root/repo/tests/test_pattern.cpp" "tests/CMakeFiles/stmatch_tests.dir/test_pattern.cpp.o" "gcc" "tests/CMakeFiles/stmatch_tests.dir/test_pattern.cpp.o.d"
  "/root/repo/tests/test_plan.cpp" "tests/CMakeFiles/stmatch_tests.dir/test_plan.cpp.o" "gcc" "tests/CMakeFiles/stmatch_tests.dir/test_plan.cpp.o.d"
  "/root/repo/tests/test_reference.cpp" "tests/CMakeFiles/stmatch_tests.dir/test_reference.cpp.o" "gcc" "tests/CMakeFiles/stmatch_tests.dir/test_reference.cpp.o.d"
  "/root/repo/tests/test_setops.cpp" "tests/CMakeFiles/stmatch_tests.dir/test_setops.cpp.o" "gcc" "tests/CMakeFiles/stmatch_tests.dir/test_setops.cpp.o.d"
  "/root/repo/tests/test_simt.cpp" "tests/CMakeFiles/stmatch_tests.dir/test_simt.cpp.o" "gcc" "tests/CMakeFiles/stmatch_tests.dir/test_simt.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/stmatch_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/stmatch_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stmatch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
