# Empty dependencies file for stmatch.
# This may be replaced when dependencies are built.
