file(REMOVE_RECURSE
  "libstmatch.a"
)
