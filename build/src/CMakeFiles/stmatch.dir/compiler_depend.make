# Empty compiler generated dependencies file for stmatch.
# This may be replaced when dependencies are built.
