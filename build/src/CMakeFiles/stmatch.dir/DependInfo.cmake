
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dryadic.cpp" "src/CMakeFiles/stmatch.dir/baselines/dryadic.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/baselines/dryadic.cpp.o.d"
  "/root/repo/src/baselines/reference.cpp" "src/CMakeFiles/stmatch.dir/baselines/reference.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/baselines/reference.cpp.o.d"
  "/root/repo/src/baselines/subgraph_centric.cpp" "src/CMakeFiles/stmatch.dir/baselines/subgraph_centric.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/baselines/subgraph_centric.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/stmatch.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/host_engine.cpp" "src/CMakeFiles/stmatch.dir/core/host_engine.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/core/host_engine.cpp.o.d"
  "/root/repo/src/core/multi_gpu.cpp" "src/CMakeFiles/stmatch.dir/core/multi_gpu.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/core/multi_gpu.cpp.o.d"
  "/root/repo/src/core/recursive.cpp" "src/CMakeFiles/stmatch.dir/core/recursive.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/core/recursive.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/CMakeFiles/stmatch.dir/graph/components.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/graph/components.cpp.o.d"
  "/root/repo/src/graph/datasets.cpp" "src/CMakeFiles/stmatch.dir/graph/datasets.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/graph/datasets.cpp.o.d"
  "/root/repo/src/graph/degree_stats.cpp" "src/CMakeFiles/stmatch.dir/graph/degree_stats.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/graph/degree_stats.cpp.o.d"
  "/root/repo/src/graph/edge_list.cpp" "src/CMakeFiles/stmatch.dir/graph/edge_list.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/graph/edge_list.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/stmatch.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/stmatch.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/labeling.cpp" "src/CMakeFiles/stmatch.dir/graph/labeling.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/graph/labeling.cpp.o.d"
  "/root/repo/src/graph/reorder.cpp" "src/CMakeFiles/stmatch.dir/graph/reorder.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/graph/reorder.cpp.o.d"
  "/root/repo/src/pattern/matching_order.cpp" "src/CMakeFiles/stmatch.dir/pattern/matching_order.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/pattern/matching_order.cpp.o.d"
  "/root/repo/src/pattern/motifs.cpp" "src/CMakeFiles/stmatch.dir/pattern/motifs.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/pattern/motifs.cpp.o.d"
  "/root/repo/src/pattern/pattern.cpp" "src/CMakeFiles/stmatch.dir/pattern/pattern.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/pattern/pattern.cpp.o.d"
  "/root/repo/src/pattern/plan.cpp" "src/CMakeFiles/stmatch.dir/pattern/plan.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/pattern/plan.cpp.o.d"
  "/root/repo/src/pattern/queries.cpp" "src/CMakeFiles/stmatch.dir/pattern/queries.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/pattern/queries.cpp.o.d"
  "/root/repo/src/pattern/symmetry.cpp" "src/CMakeFiles/stmatch.dir/pattern/symmetry.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/pattern/symmetry.cpp.o.d"
  "/root/repo/src/setops/bitmap_index.cpp" "src/CMakeFiles/stmatch.dir/setops/bitmap_index.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/setops/bitmap_index.cpp.o.d"
  "/root/repo/src/setops/multi_set_op.cpp" "src/CMakeFiles/stmatch.dir/setops/multi_set_op.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/setops/multi_set_op.cpp.o.d"
  "/root/repo/src/setops/set_ops.cpp" "src/CMakeFiles/stmatch.dir/setops/set_ops.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/setops/set_ops.cpp.o.d"
  "/root/repo/src/util/options.cpp" "src/CMakeFiles/stmatch.dir/util/options.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/util/options.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/stmatch.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/stmatch.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/stmatch.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/stmatch.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
