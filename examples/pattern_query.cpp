// Command-line pattern matcher: run any query against any edge-list file.
//
//   ./example_pattern_query <graph.txt> <pattern>
//       [--induced] [--unique] [--no-motion] [--host] [--list=N]
//
//   <graph.txt>  SNAP-style edge list ('u v' per line, '#' comments)
//   <pattern>    edge list like "0-1,1-2,2-0", or q1..q24 for the
//                evaluation queries
//
// Examples:
//   ./example_pattern_query graph.txt 0-1,1-2,2-0 --unique
//   ./example_pattern_query graph.txt q13 --induced --list=5
#include <cstdio>
#include <string>

#include "core/engine.hpp"
#include "core/host_engine.hpp"
#include "core/recursive.hpp"
#include "graph/edge_list.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/queries.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace stm;
  Options opts(argc, argv);
  opts.allow_only({"induced", "unique", "no-motion", "host", "list"});
  if (opts.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: %s <graph.txt> <pattern|qN> [--induced] [--unique] "
                 "[--no-motion] [--host] [--list=N]\n",
                 argv[0]);
    return 2;
  }
  try {
    Graph g = load_edge_list(opts.positional()[0]);
    const std::string& spec = opts.positional()[1];
    Pattern p = (spec.size() >= 2 && spec[0] == 'q' &&
                 spec.find('-') == std::string::npos)
                    ? query(std::stoi(spec.substr(1)))
                    : Pattern::parse(spec);

    PlanOptions popts;
    popts.induced =
        opts.get_bool("induced", false) ? Induced::kVertex : Induced::kEdge;
    popts.count_mode = opts.get_bool("unique", false)
                           ? CountMode::kUniqueSubgraphs
                           : CountMode::kEmbeddings;
    popts.code_motion = !opts.get_bool("no-motion", false);

    std::printf("graph: %u vertices, %llu edges | pattern: %s (%zu vertices)\n",
                g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()),
                p.to_string().c_str(), p.size());

    MatchingPlan plan(reorder_for_matching(p), popts);
    if (opts.get_bool("host", false)) {
      HostMatchResult r = host_match(g, plan);
      std::printf("matches: %llu  (%.2f ms wall on host threads)\n",
                  static_cast<unsigned long long>(r.count), r.stats.engine_ms);
    } else {
      MatchResult r = stmatch_match(g, plan);
      std::printf("matches: %llu  (%.3f ms simulated, occupancy %.2f, lane "
                  "utilization %.2f)\n",
                  static_cast<unsigned long long>(r.count), r.stats.sim_ms,
                  r.stats.occupancy, r.stats.set_ops.utilization());
    }

    const auto list_n = opts.get_int("list", 0);
    if (list_n > 0) {
      std::printf("first %lld embeddings (reordered pattern vertices):\n",
                  static_cast<long long>(list_n));
      std::int64_t shown = 0;
      recursive_enumerate_range(
          g, plan, 0, g.num_vertices(),
          [&](const std::vector<VertexId>& m) {
            std::printf("  [");
            for (std::size_t i = 0; i < m.size(); ++i)
              std::printf("%s%u", i ? ", " : "", m[i]);
            std::printf("]\n");
            return ++shown < list_n;
          });
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
