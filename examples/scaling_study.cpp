// Scaling study: one query, every execution mode.
//
// Shows how the same MatchingPlan runs on (a) the simulated single GPU with
// each optimization toggled, (b) multiple simulated GPUs, and (c) real host
// threads — and that every mode returns the same count.
//
// Run:  ./example_scaling_study [--query=13] [--vertices=400]
#include <cstdio>

#include "core/engine.hpp"
#include "core/host_engine.hpp"
#include "core/multi_gpu.hpp"
#include "graph/generators.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/queries.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace stm;
  Options opts(argc, argv);
  opts.allow_only({"query", "vertices"});
  const int q = static_cast<int>(opts.get_int("query", 13));
  const auto n = static_cast<VertexId>(opts.get_int("vertices", 400));

  Graph g = make_barabasi_albert(n, 5, 11);
  Pattern p = query(q);
  MatchingPlan plan(reorder_for_matching(p), {});
  std::printf("query %s on a %u-vertex scale-free graph\n\n",
              query_name(q).c_str(), n);

  EngineConfig base;
  base.device.num_blocks = 16;
  base.device.warps_per_block = 8;
  base.stop_level = 4;
  base.detect_level = 2;

  std::uint64_t expected = 0;
  auto report = [&](const char* label, const MatchResult& r) {
    if (expected == 0) expected = r.count;
    std::printf("%-28s : %llu matches, %.3f ms simulated, occupancy %.2f%s\n",
                label, static_cast<unsigned long long>(r.count), r.stats.sim_ms,
                r.stats.occupancy, r.count == expected ? "" : "  MISMATCH!");
  };

  EngineConfig naive = base;
  naive.local_steal = false;
  naive.global_steal = false;
  naive.unroll = 1;
  report("naive (no steal, unroll 1)", stmatch_match(g, plan, naive));

  EngineConfig local = naive;
  local.local_steal = true;
  report("+ local stealing", stmatch_match(g, plan, local));

  EngineConfig both = local;
  both.global_steal = true;
  report("+ global stealing", stmatch_match(g, plan, both));

  EngineConfig full = both;
  full.unroll = 8;
  report("+ unroll 8 (full system)", stmatch_match(g, plan, full));

  for (std::size_t devices : {2u, 4u}) {
    auto multi = stmatch_match_multi_gpu(g, plan, devices, full);
    std::printf("%zu simulated GPUs            : %llu matches, %.3f ms "
                "simulated\n",
                devices, static_cast<unsigned long long>(multi.count),
                multi.sim_ms);
    if (multi.count != expected) return 1;
  }

  HostMatchResult host = host_match(g, plan);
  std::printf("host threads (real)          : %llu matches, %.2f ms wall\n",
              static_cast<unsigned long long>(host.count), host.stats.engine_ms);
  return host.count == expected ? 0 : 1;
}
