// Query service layer demo: one GraphSession serving a stream of queries.
//
//   ./example_service_demo [dataset] [scale]
//
//   dataset   skewed proxy name (enron, youtube, mico, livejournal, orkut;
//             default enron)
//   scale     proxy scale factor in (0, 1] (default 0.25)
//
// Shows the pieces working together: repeated queries hitting the plan
// cache, a renumbered isomorphic pattern sharing a cached plan, a deliberately
// tight deadline interrupting a heavy query with a partial count, and the
// session's metrics exported as JSON and Prometheus text.
#include <cstdio>
#include <string>

#include "graph/datasets.hpp"
#include "pattern/queries.hpp"
#include "service/service.hpp"

int main(int argc, char** argv) try {
  using namespace stm;
  const std::string dataset = argc > 1 ? argv[1] : "enron";
  const double scale = argc > 2 ? std::stod(argv[2]) : 0.25;

  Graph g = make_skewed_dataset(dataset, scale);
  std::printf("dataset %s (scale %.2f): %zu vertices, %zu edges\n\n",
              dataset.c_str(), scale, static_cast<std::size_t>(g.num_vertices()),
              static_cast<std::size_t>(g.num_edges()));

  SessionConfig cfg;
  cfg.max_concurrent_queries = 4;
  GraphSession session(std::move(g), cfg);

  auto show = [](const char* label, const QueryResult& r) {
    std::printf("%-34s %-18s count=%-12llu total=%8.2f ms  cache_%s\n", label,
                to_string(r.status), static_cast<unsigned long long>(r.count),
                r.total_ms, r.plan_cache_hit ? "hit" : "miss");
  };

  // Repeated queries: the first compiles a plan, repeats reuse it.
  for (int rep = 0; rep < 3; ++rep) {
    QueryRequest req;
    req.pattern = query(23);
    req.deadline_ms = -1.0;
    show(rep == 0 ? "q23 (cold)" : "q23 (repeat)", session.run(std::move(req)));
  }

  // A renumbered isomorphic pattern shares the cached plan via its
  // canonical form.
  {
    QueryRequest req;
    req.pattern = query(23).relabeled({6, 4, 2, 0, 1, 3, 5});
    req.deadline_ms = -1.0;
    show("q23 renumbered (isomorphic)", session.run(std::move(req)));
  }

  // A heavy query under a tight deadline: interrupted cooperatively, the
  // partial count and stats survive.
  {
    QueryRequest req;
    req.pattern = query(17);
    req.deadline_ms = 250.0;
    show("q17, 250 ms deadline", session.run(std::move(req)));
  }

  // A mixed burst through the dispatcher.
  std::vector<std::future<QueryResult>> burst;
  for (int q : {23, 23, 16, 16, 8, 8}) {
    QueryRequest req;
    req.pattern = query(q);
    req.deadline_ms = -1.0;
    burst.push_back(session.submit(std::move(req)));
  }
  for (auto& f : burst) f.get();
  std::printf("burst of 6 queries drained\n");

  const PlanCacheStats cache = session.plan_cache().stats();
  std::printf("\nplan cache: %llu hits / %llu misses (hit rate %.0f%%)\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              100.0 * cache.hit_rate());

  std::printf("\n--- metrics (JSON) ---\n%s\n", session.metrics().to_json().c_str());
  std::printf("--- metrics (Prometheus) ---\n%s",
              session.metrics().to_prometheus().c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
