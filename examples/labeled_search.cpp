// Labeled pattern search: find typed subgraphs in a heterogenous network.
//
// Models the cybersecurity / knowledge-graph use case from the paper's
// introduction: vertices carry types (labels) and the query asks for a
// specific typed shape — here, a "privilege-escalation triangle plus
// exfiltration path" in a host-user-file interaction graph.
//
// Run:  ./example_labeled_search [--hosts=120] [--users=300] [--files=500]
#include <cstdio>

#include "core/engine.hpp"
#include "core/host_engine.hpp"
#include "graph/graph.hpp"
#include "pattern/matching_order.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

namespace {

using namespace stm;

constexpr Label kHost = 0;
constexpr Label kUser = 1;
constexpr Label kFile = 2;

/// A synthetic interaction graph: users log into hosts, hosts store files,
/// users own files; a few dense "incident" clusters are planted.
Graph make_interaction_graph(VertexId hosts, VertexId users, VertexId files,
                             std::uint64_t seed) {
  Rng rng(seed);
  const VertexId n = hosts + users + files;
  GraphBuilder b(n);
  auto host_id = [&](VertexId i) { return i; };
  auto user_id = [&](VertexId i) { return hosts + i; };
  auto file_id = [&](VertexId i) { return hosts + users + i; };
  // Every user logs into 1-4 hosts.
  for (VertexId u = 0; u < users; ++u) {
    const auto logins = 1 + rng.next_below(4);
    for (std::uint64_t l = 0; l < logins; ++l)
      b.add_edge(user_id(u), host_id(static_cast<VertexId>(
                                 rng.next_below(hosts))));
  }
  // Every file lives on one host and is owned by 1-2 users.
  for (VertexId f = 0; f < files; ++f) {
    b.add_edge(file_id(f), host_id(static_cast<VertexId>(rng.next_below(hosts))));
    const auto owners = 1 + rng.next_below(2);
    for (std::uint64_t o = 0; o < owners; ++o)
      b.add_edge(file_id(f), user_id(static_cast<VertexId>(
                                 rng.next_below(users))));
  }
  // Planted incidents: a user connected to two hosts that share a file.
  for (int i = 0; i < 12; ++i) {
    const auto u = user_id(static_cast<VertexId>(rng.next_below(users)));
    const auto h1 = host_id(static_cast<VertexId>(rng.next_below(hosts)));
    const auto h2 = host_id(static_cast<VertexId>(rng.next_below(hosts)));
    const auto f = file_id(static_cast<VertexId>(rng.next_below(files)));
    b.add_edge(u, h1);
    b.add_edge(u, h2);
    b.add_edge(f, h1);
    b.add_edge(f, h2);
    b.add_edge(u, f);
  }
  Graph g = b.build();
  std::vector<Label> labels(n);
  for (VertexId v = 0; v < n; ++v)
    labels[v] = v < hosts ? kHost : (v < hosts + users ? kUser : kFile);
  return g.with_labels(std::move(labels));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stm;
  Options opts(argc, argv);
  opts.allow_only({"hosts", "users", "files"});
  Graph g = make_interaction_graph(
      static_cast<VertexId>(opts.get_int("hosts", 120)),
      static_cast<VertexId>(opts.get_int("users", 300)),
      static_cast<VertexId>(opts.get_int("files", 500)), 2024);
  std::printf("interaction graph: %u vertices, %llu edges, %zu labels\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              g.num_labels());

  // Query: user u reaches file f through two distinct hosts AND owns it:
  //   u-h1, u-h2, f-h1, f-h2, u-f   with labels (user, host, host, file).
  Pattern incident = Pattern(4, {{0, 1}, {0, 2}, {3, 1}, {3, 2}, {0, 3}})
                         .with_labels({kUser, kHost, kHost, kFile});

  PlanOptions popts;
  popts.count_mode = CountMode::kUniqueSubgraphs;
  MatchResult sim = stmatch_match_pattern(g, incident, popts);
  std::printf("incident pattern matches (unique): %llu  (simulated %.3f ms)\n",
              static_cast<unsigned long long>(sim.count), sim.stats.sim_ms);

  // The same search on real host threads.
  MatchingPlan plan(reorder_for_matching(incident), popts);
  HostMatchResult host = host_match(g, plan);
  std::printf("host-parallel run agrees: %llu matches in %.2f ms wall\n",
              static_cast<unsigned long long>(host.count), host.stats.engine_ms);
  return host.count == sim.count ? 0 : 1;
}
