// Streaming results demo: embeddings instead of counts.
//
//   ./example_stream_demo [n] [m]
//
//   n   Barabási–Albert graph size (default 400)
//   m   edges attached per new vertex (default 4)
//
// Shows the streaming endpoints working together: a full drain in the
// deterministic global order, cursor pagination with an opaque resume token
// (continued on a *different* engine), a top-k query with a scorer, a
// cancelled stream leaving a valid prefix, and a standing query reporting
// the exact embeddings an update batch added and retracted.
#include <cstdio>
#include <string>

#include "graph/generators.hpp"
#include "pattern/pattern.hpp"
#include "service/service.hpp"
#include "service/stream.hpp"

int main(int argc, char** argv) try {
  using namespace stm;
  const VertexId n = argc > 1 ? static_cast<VertexId>(std::stoul(argv[1])) : 400;
  const VertexId m = argc > 2 ? static_cast<VertexId>(std::stoul(argv[2])) : 4;

  Graph g = make_barabasi_albert(n, m, /*seed=*/42);
  std::printf("graph: %zu vertices, %zu edges\n\n",
              static_cast<std::size_t>(g.num_vertices()),
              static_cast<std::size_t>(g.num_edges()));
  GraphSession session(std::move(g));
  const Pattern triangle = Pattern::parse("0-1,1-2,2-0");

  // --- Full drain: the deterministic global stream -------------------------
  std::uint64_t total = 0;
  {
    StreamRequest req;
    req.query.pattern = triangle;
    req.query.host.num_threads = 4;
    auto s = session.open_stream(std::move(req));
    Embedding e;
    while (s->next(&e)) {
      if (total < 3) {
        std::printf("embedding %llu: (%llu, %llu, %llu)\n",
                    static_cast<unsigned long long>(total),
                    static_cast<unsigned long long>(e[0]),
                    static_cast<unsigned long long>(e[1]),
                    static_cast<unsigned long long>(e[2]));
      }
      ++total;
    }
    std::printf("full stream: %llu embeddings, status %s\n\n",
                static_cast<unsigned long long>(total),
                to_string(s->result().status));
  }

  // --- Cursor pagination, resumed on another engine ------------------------
  {
    StreamRequest page1;
    page1.query.pattern = triangle;
    page1.stream.limit = 10;
    auto s = session.open_stream(std::move(page1));
    Embedding e;
    std::uint64_t got = 0;
    while (s->next(&e)) ++got;
    const std::string token = s->resume_token();
    std::printf("page 1 (host engine):  %llu embeddings, token \"%s\"\n",
                static_cast<unsigned long long>(got), token.c_str());

    StreamRequest page2;
    page2.query.pattern = triangle;
    page2.query.engine = EngineKind::kSimt;  // tokens are engine-independent
    page2.stream.limit = 10;
    page2.stream.resume_token = token;
    auto s2 = session.open_stream(std::move(page2));
    std::uint64_t got2 = 0;
    while (s2->next(&e)) ++got2;
    std::printf("page 2 (simt engine):  %llu embeddings, token \"%s\"\n\n",
                static_cast<unsigned long long>(got2),
                s2->resume_token().c_str());
  }

  // --- Top-k under a scorer ------------------------------------------------
  {
    TopKOptions top;
    top.k = 3;
    top.score = [](const Embedding& emb) {  // prefer low vertex ids
      double s = 0.0;
      for (VertexId v : emb) s -= static_cast<double>(v);
      return s;
    };
    QueryRequest req;
    req.pattern = triangle;
    const TopKResult best = session.top_k(req, top);
    std::printf("top-%zu by scorer (scored %llu):\n", top.k,
                static_cast<unsigned long long>(best.result.count));
    for (const ScoredEmbedding& se : best.top) {
      std::printf("  score %6.1f rank %4llu: (%llu, %llu, %llu)\n", se.score,
                  static_cast<unsigned long long>(se.rank),
                  static_cast<unsigned long long>(se.embedding[0]),
                  static_cast<unsigned long long>(se.embedding[1]),
                  static_cast<unsigned long long>(se.embedding[2]));
    }
    std::printf("\n");
  }

  // --- Cancellation: the delivered prefix stays valid ----------------------
  {
    StreamRequest req;
    req.query.pattern = triangle;
    auto s = session.open_stream(std::move(req));
    Embedding e;
    std::uint64_t got = 0;
    while (got < 5 && s->next(&e)) ++got;
    s->cancel();
    std::printf("cancelled after %llu: status %s (%s)\n\n",
                static_cast<unsigned long long>(got),
                to_string(s->result().status), s->result().error.c_str());
  }

  // --- Standing query: exact embedding deltas per update batch -------------
  {
    StandingQueryConfig cfg;
    cfg.pattern = triangle;
    cfg.on_delta = [](const StandingQueryDelta& d) {
      std::printf("batch -> epoch %llu: +%zu embeddings, -%zu embeddings\n",
                  static_cast<unsigned long long>(d.epoch), d.added.size(),
                  d.retracted.size());
      for (const Embedding& e : d.added)
        std::printf("  added (%llu, %llu, %llu)\n",
                    static_cast<unsigned long long>(e[0]),
                    static_cast<unsigned long long>(e[1]),
                    static_cast<unsigned long long>(e[2]));
    };
    session.register_standing_query(std::move(cfg));

    // Close a triangle between three late (low-degree, likely unconnected)
    // vertices so the batch actually adds embeddings.
    const VertexId a = n - 1, b = n - 2, c = n - 3;
    UpdateBatch batch;
    batch.insertions = {{a, b}, {b, c}, {a, c}};
    const UpdateOutcome out = session.apply_updates(std::move(batch));
    std::printf("update status %s, epoch %llu\n\n", to_string(out.status),
                static_cast<unsigned long long>(out.epoch));
  }

  std::printf("metrics (prometheus):\n%s",
              session.metrics().to_prometheus().c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
