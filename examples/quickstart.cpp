// Quickstart: count triangles and 4-cliques in a small social graph.
//
// Demonstrates the minimal STMatch workflow:
//   1. build (or load) a data graph,
//   2. pick a query pattern,
//   3. run the engine and read the count + execution statistics.
//
// Run:  ./example_quickstart [--vertices=N]
#include <cstdio>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "pattern/pattern.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace stm;
  Options opts(argc, argv);
  opts.allow_only({"vertices"});
  const auto n = static_cast<VertexId>(opts.get_int("vertices", 300));

  // A scale-free graph like a small social network.
  Graph g = make_barabasi_albert(n, 5, /*seed=*/42);
  std::printf("graph: %u vertices, %llu edges, max degree %llu\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(g.max_degree()));

  // Patterns are small edge lists; vertices are 0-based.
  const Pattern triangle = Pattern::parse("0-1,1-2,2-0");
  const Pattern four_clique = Pattern::parse("0-1,0-2,0-3,1-2,1-3,2-3");

  // Count unique subgraphs (each triangle once, not once per symmetry).
  PlanOptions popts;
  popts.count_mode = CountMode::kUniqueSubgraphs;

  for (const auto& [name, pattern] :
       {std::pair{"triangles", triangle}, {"4-cliques", four_clique}}) {
    MatchResult result = stmatch_match_pattern(g, pattern, popts);
    std::printf("%-10s : %llu  (simulated %.3f ms, occupancy %.2f, "
                "lane utilization %.2f)\n",
                name, static_cast<unsigned long long>(result.count),
                result.stats.sim_ms, result.stats.occupancy,
                result.stats.set_ops.utilization());
  }

  std::printf(
      "\nTip: use PlanOptions{Induced::kVertex, ...} for induced matching,\n"
      "     host_match() for real multi-threaded CPU execution, and\n"
      "     stmatch_match_multi_gpu() to split work across devices.\n");
  return 0;
}
