// Sharded execution quickstart: exact pattern counts over a partitioned
// graph (README "Sharding" section, DESIGN.md §11).
//
//   ./example_sharded_match [vertices] [shards]
//
// Partitions a power-law graph, runs the cross-shard coordinator directly
// (dist::sharded_match), shows the count decomposition — shard-local totals
// plus the cut-edge term — matching the single-graph count exactly, and
// then serves the same query through a GraphSession in sharded mode,
// including after a dynamic update batch.
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>

#include "core/host_engine.hpp"
#include "dist/partition.hpp"
#include "dist/sharded.hpp"
#include "graph/generators.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/pattern.hpp"
#include "service/service.hpp"

int main(int argc, char** argv) try {
  using namespace stm;
  const auto n = static_cast<VertexId>(argc > 1 ? std::stoul(argv[1]) : 600);
  const auto shards =
      static_cast<std::uint32_t>(argc > 2 ? std::stoul(argv[2]) : 4);

  Graph g = make_barabasi_albert(n, 4, 7);
  const Pattern triangle(3, {{0, 1}, {1, 2}, {0, 2}});
  std::printf("graph: %zu vertices, %zu edges; pattern: triangle\n\n",
              static_cast<std::size_t>(g.num_vertices()),
              static_cast<std::size_t>(g.num_edges()));

  // Unsharded ground truth.
  const MatchingPlan plan(reorder_for_matching(triangle), {});
  const std::uint64_t expected = host_match(g, plan, {}).count;

  // Direct coordinator use: partition, then count. The decomposition is
  // exact — shard-local matches plus cut-edge-anchored matches.
  dist::PartitionConfig pcfg;
  pcfg.num_shards = shards;
  pcfg.strategy = dist::PartitionStrategy::kDegreeBalanced;
  const dist::ShardedResult r = dist::sharded_match(g, triangle, pcfg);
  std::printf("%u-shard count   = %llu (local %llu + cut %llu over %llu cut "
              "edges)\n",
              shards, static_cast<unsigned long long>(r.count),
              static_cast<unsigned long long>(r.local_total),
              static_cast<unsigned long long>(r.cut_total),
              static_cast<unsigned long long>(r.cut_edges));
  std::printf("unsharded count = %llu  -> %s\n\n",
              static_cast<unsigned long long>(expected),
              r.count == expected ? "exact" : "MISMATCH");
  for (const dist::ShardStats& s : r.shards) {
    std::printf("  shard %u: %llu vertices, local count %llu, %llu cut edges "
                "owned\n",
                s.shard, static_cast<unsigned long long>(s.owned_vertices),
                static_cast<unsigned long long>(s.local_count),
                static_cast<unsigned long long>(s.cut_edges_owned));
  }

  // The same query through a session in sharded mode: the partition is
  // built once, refreshed per update batch, and every edge-induced
  // host/simt query runs through the coordinator transparently.
  SessionConfig cfg;
  cfg.sharding.num_shards = shards;
  cfg.sharding.strategy = dist::PartitionStrategy::kDegreeBalanced;
  GraphSession session(std::move(g), cfg);

  QueryRequest req;
  req.pattern = triangle;
  req.deadline_ms = -1.0;
  QueryResult qr = session.run(req);
  std::printf("\nsession (sharded): count=%llu status=%s\n",
              static_cast<unsigned long long>(qr.count), to_string(qr.status));

  UpdateBatch batch;
  batch.insertions.emplace_back(0, n / 2);
  batch.insertions.emplace_back(1, n / 2 + 1);
  const UpdateOutcome upd = session.apply_updates(std::move(batch));
  std::printf("applied update batch: epoch=%llu inserted=%llu\n",
              static_cast<unsigned long long>(upd.epoch),
              static_cast<unsigned long long>(upd.stats.inserted));

  qr = session.run(req);
  std::printf("session after update: count=%llu status=%s\n",
              static_cast<unsigned long long>(qr.count), to_string(qr.status));

  // The shard-related slice of the session's Prometheus exposition.
  std::printf("\nshard metrics:\n");
  std::istringstream exposition(session.metrics().to_prometheus());
  for (std::string line; std::getline(exposition, line);)
    if (line.find("shard") != std::string::npos ||
        line.find("cut_edge") != std::string::npos)
      std::printf("%s\n", line.c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
