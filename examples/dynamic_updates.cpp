// Dynamic graph demo: batched updates, versioned snapshots, and standing
// queries maintained incrementally.
//
//   ./example_dynamic_updates [n] [batches]
//
//   n         Barabási–Albert graph size (default 2000)
//   batches   update batches to stream (default 8)
//
// Shows the update lifecycle end to end: a standing triangle count
// registered against the session, random insert/delete batches applied
// through the service (epoch bumps, plan-cache invalidation), per-batch
// exact count deltas delivered to the subscriber, a query pinned to an old
// snapshot staying epoch-consistent, and the delta-vs-full speedup gauge.
#include <cstdio>
#include <string>
#include <utility>

#include "baselines/reference.hpp"
#include "graph/generators.hpp"
#include "pattern/pattern.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) try {
  using namespace stm;
  const VertexId n = argc > 1 ? static_cast<VertexId>(std::stoul(argv[1])) : 2000;
  const int batches = argc > 2 ? std::stoi(argv[2]) : 8;

  Graph g = make_barabasi_albert(n, 6, 42);
  std::printf("graph: %zu vertices, %zu edges\n",
              static_cast<std::size_t>(g.num_vertices()),
              static_cast<std::size_t>(g.num_edges()));

  GraphSession session(std::move(g));
  const Pattern triangle = Pattern::parse("0-1,1-2,2-0");

  // A standing query: one full enumeration now, exact deltas per batch after.
  StandingQueryConfig standing;
  standing.pattern = triangle;
  standing.on_update = [](const StandingQueryUpdate& u) {
    std::printf("  standing query %llu @ epoch %llu: delta %+lld -> count %llu"
                "  (%.3f ms)\n",
                static_cast<unsigned long long>(u.query_id),
                static_cast<unsigned long long>(u.epoch),
                static_cast<long long>(u.delta),
                static_cast<unsigned long long>(u.count), u.delta_ms);
  };
  const std::uint64_t id = session.register_standing_query(standing);
  std::printf("registered standing triangle count: %llu embeddings (full "
              "enumeration: %.2f ms)\n\n",
              static_cast<unsigned long long>(session.standing_query(id)->count),
              session.standing_query(id)->full_ms);

  // Hold the epoch-0 snapshot: queries against it stay consistent while the
  // writer publishes newer versions.
  auto old_snap = session.snapshot();

  Rng rng(7);
  for (int b = 0; b < batches; ++b) {
    UpdateBatch batch;
    for (int i = 0; i < 12; ++i) {
      const auto u = static_cast<VertexId>(rng() % n);
      const auto v = static_cast<VertexId>(rng() % n);
      if (u == v) continue;
      if (session.snapshot()->has_edge(u, v)) {
        batch.deletions.emplace_back(u, v);
      } else {
        batch.insertions.emplace_back(u, v);
      }
    }
    UpdateOutcome out = session.apply_updates(std::move(batch));
    std::printf("batch %d: %s  epoch=%llu  +%llu/-%llu edges  (%.3f ms apply, "
                "%.3f ms incremental)\n",
                b, out.ok() ? "ok" : out.error.c_str(),
                static_cast<unsigned long long>(out.epoch),
                static_cast<unsigned long long>(out.stats.inserted),
                static_cast<unsigned long long>(out.stats.deleted),
                out.update_ms, out.incremental_ms);
  }

  // The held snapshot still answers with the epoch-0 graph.
  std::printf("\nepoch-0 snapshot still counts %llu triangles; live version "
              "(epoch %llu) counts %llu\n",
              static_cast<unsigned long long>(
                  reference_count(old_snap->view(), triangle, {})),
              static_cast<unsigned long long>(session.epoch()),
              static_cast<unsigned long long>(reference_count(
                  session.snapshot()->view(), triangle, {})));

  // Queries through the service carry the epoch they executed against, and
  // the plan cache recompiled when the epoch moved.
  QueryRequest req;
  req.pattern = triangle;
  req.deadline_ms = -1.0;
  QueryResult r = session.run(req);
  std::printf("service query: count=%llu epoch=%llu cache_%s\n",
              static_cast<unsigned long long>(r.count),
              static_cast<unsigned long long>(r.graph_epoch),
              r.plan_cache_hit ? "hit" : "miss");

  std::printf("delta_vs_full_speedup gauge: %.1fx\n",
              session.metrics().gauge("delta_vs_full_speedup").value());

  // Fold the deltas back into a fresh CSR; the epoch (and the counts) stay.
  session.compact();
  std::printf("after compact: epoch=%llu, standing count=%llu\n",
              static_cast<unsigned long long>(session.epoch()),
              static_cast<unsigned long long>(
                  session.standing_query(id)->count));
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
