// Storage walkthrough: compressed and out-of-core graph backends behind the
// GraphView seam (DESIGN.md §14).
//
//   ./example_storage_demo [--vertices=N]
//
// The same power-law graph is served four ways — raw CSR, delta/varint
// compressed, compressed with bitset hub rows, and spilled to disk under a
// tiny page-cache budget — and a triangle query returns the identical count
// through every one of them. The interesting part is the footprint column:
// what each backend keeps resident while doing so.
#include <algorithm>
#include <cstdio>

#include "graph/generators.hpp"
#include "pattern/pattern.hpp"
#include "service/service.hpp"
#include "storage/store.hpp"
#include "util/check.hpp"
#include "util/options.hpp"

namespace {

using namespace stm;

QueryRequest triangle_request() {
  QueryRequest req;
  req.pattern = Pattern::parse("0-1,1-2,2-0");
  req.engine = EngineKind::kHost;
  return req;
}

storage::StoragePolicy policy_for(storage::Backend b, std::uint64_t raw_bytes) {
  storage::StoragePolicy policy;
  policy.backend = b;
  if (b == storage::Backend::kSpill) {
    // The out-of-core operating point: a page cache far below the raw CSR.
    policy.memory_budget_bytes = std::max<std::uint64_t>(4096, raw_bytes / 32);
    policy.page_size = 1 << 13;
  }
  return policy;
}

}  // namespace

int main(int argc, char** argv) try {
  const Options opts(argc, argv);
  opts.allow_only({"vertices"});
  const auto n = static_cast<VertexId>(opts.get_int("vertices", 4000));

  const Graph g = make_barabasi_albert(n, 6, /*seed=*/11);
  std::printf("graph: %u vertices, %llu edges, raw CSR %llu bytes\n\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              static_cast<unsigned long long>(g.memory_bytes()));

  // 1. Every backend serves the same query through GraphSession: set
  //    SessionConfig::storage and nothing else changes. kAuto picks by the
  //    degree histogram (and a budget, if one is set).
  std::printf("== 1. one query, four backends ==\n");
  static constexpr storage::Backend kBackends[] = {
      storage::Backend::kUncompressed, storage::Backend::kCompressed,
      storage::Backend::kCompressedBitset, storage::Backend::kSpill};
  std::uint64_t expected = 0;
  for (const storage::Backend b : kBackends) {
    SessionConfig cfg;
    cfg.storage = policy_for(b, g.memory_bytes());
    GraphSession session{Graph(g), cfg};
    const QueryResult r = session.run(triangle_request());
    STM_CHECK_MSG(r.ok(), "query failed: " << r.error);
    if (expected == 0) expected = r.count;
    STM_CHECK_MSG(r.count == expected, "backend disagreement");
    std::printf(
        "  %-17s triangles=%-8llu resident=%-9llu decode_ops=%llu "
        "page_faults=%llu\n",
        storage::to_string(b), static_cast<unsigned long long>(r.count),
        static_cast<unsigned long long>(
            session.metrics().gauge("graph_resident_bytes").value()),
        static_cast<unsigned long long>(
            session.metrics().counter("storage_decode_ops_total").value()),
        static_cast<unsigned long long>(
            session.metrics().counter("storage_page_faults_total").value()));
  }

  // 2. Using a GraphStore directly: hold a Lease while an engine (or any
  //    reader) walks the view, then trim the decoded-list cache between
  //    runs. The spill tier's page cache stays under budget throughout.
  std::printf("\n== 2. the store API: lease, view, trim ==\n");
  const auto store = storage::GraphStore::build(
      Graph(g), policy_for(storage::Backend::kSpill, g.memory_bytes()));
  {
    const auto lease = store->lease();  // blocks trim while reading
    const GraphView view = store->view();
    std::uint64_t sum = 0;
    for (VertexId v = 0; v < view.num_vertices(); ++v)
      for (VertexId u : view.neighbors(v)) sum += u;
    const storage::StorageStats st = store->stats();
    std::printf("  scanned all adjacency (checksum %llu)\n",
                static_cast<unsigned long long>(sum));
    std::printf("  decode cache while leased: %llu bytes (trim refused: %s)\n",
                static_cast<unsigned long long>(st.decoded_cache_bytes),
                store->trim_decoded() ? "no" : "yes");
  }
  STM_CHECK(store->trim_decoded());  // lease released: reclaim succeeds
  const storage::StorageStats st = store->stats();
  std::printf(
      "  after trim: resident=%llu bytes vs raw %llu (%.1fx smaller), "
      "file=%llu bytes on disk\n",
      static_cast<unsigned long long>(st.resident_bytes),
      static_cast<unsigned long long>(st.raw_bytes),
      static_cast<double>(st.raw_bytes) /
          static_cast<double>(st.resident_bytes),
      static_cast<unsigned long long>(st.file_bytes));
  std::printf("  pager: %llu faults, %llu hits, %llu evictions\n",
              static_cast<unsigned long long>(st.page_faults),
              static_cast<unsigned long long>(st.page_hits),
              static_cast<unsigned long long>(st.page_evictions));

  std::printf(
      "\nTip: leave SessionConfig::storage.backend = kAuto and set only\n"
      "     memory_budget_bytes; the session spills exactly when the graph\n"
      "     would not fit. tools/graph_info prints this report for any graph.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "storage_demo: %s\n", e.what());
  return 1;
}
