// Motif census: count every connected motif of a given size in a graph.
//
// Motif counting is one of the applications the paper motivates (§I): the
// relative frequencies of small subgraphs characterize networks (social
// graphs are triangle-heavy, web graphs star-heavy, ...). This example runs
// the full size-k census with the STMatch engine and prints unique-subgraph
// counts per motif.
//
// Run:  ./example_motif_census [--size=4] [--vertices=200] [--graph=ba|er|grid]
#include <cstdio>
#include <string>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "pattern/motifs.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace stm;
  Options opts(argc, argv);
  opts.allow_only({"size", "vertices", "graph"});
  const auto size = static_cast<std::size_t>(opts.get_int("size", 4));
  const auto n = static_cast<VertexId>(opts.get_int("vertices", 200));
  const std::string kind = opts.get("graph", "ba");

  Graph g;
  if (kind == "ba")
    g = make_barabasi_albert(n, 4, 7);
  else if (kind == "er")
    g = make_erdos_renyi(n, 8.0 / static_cast<double>(n), 7);
  else
    g = make_grid(n / 10 + 1, 10);

  const auto motifs = connected_motifs(size);
  std::printf("size-%zu motif census of a %s graph (%u vertices, %llu edges)\n"
              "%zu motif classes\n\n",
              size, kind.c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), motifs.size());

  PlanOptions popts;
  popts.count_mode = CountMode::kUniqueSubgraphs;
  popts.induced = Induced::kVertex;  // census = vertex-induced occurrences

  Timer timer;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < motifs.size(); ++i) {
    MatchResult result = stmatch_match_pattern(g, motifs[i], popts);
    total += result.count;
    std::printf("motif %2zu  %-28s : %llu\n", i + 1,
                motifs[i].to_string().c_str(),
                static_cast<unsigned long long>(result.count));
  }
  std::printf("\ntotal induced size-%zu subgraphs: %llu  (%.1f ms wall)\n",
              size, static_cast<unsigned long long>(total),
              timer.elapsed_ms());
  return 0;
}
