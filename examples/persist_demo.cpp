// Durability walkthrough: write-ahead logging, checkpoints, and crash
// recovery on a GraphSession (DESIGN.md §13).
//
//   ./example_persist_demo                     guided tour in a temp dir
//   ./example_persist_demo --serve --dir=D     apply batches forever (kill me)
//   ./example_persist_demo --verify --dir=D    recover D and check invariants
//
// The --serve / --verify pair is the CI kill-restart gate: CI SIGKILLs the
// serving process mid-update-stream and then asserts that a reopened
// session recovers a consistent prefix — the recovered standing-query count
// must equal a from-scratch enumeration of the recovered graph, and the
// epoch must equal the number of acknowledged batches.
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "persist/wal.hpp"
#include "service/service.hpp"
#include "util/check.hpp"
#include "util/options.hpp"

namespace {

using namespace stm;

constexpr VertexId kVertices = 200;

Graph seed_graph() { return make_barabasi_albert(kVertices, 4, 9); }

Pattern triangle() { return Pattern::parse("0-1,1-2,2-0"); }

/// Deterministic batch stream shared by every mode: batch k is always the
/// same, so a recovered prefix is a prefix of the same history.
UpdateBatch make_batch(std::uint64_t k) {
  UpdateBatch b;
  const auto v = [](std::uint64_t x) {
    return static_cast<VertexId>((x * 2654435761ull + 3) % kVertices);
  };
  for (std::uint64_t i = 0; i < 6; ++i) {
    VertexId a = v(k * 17 + i), c = v(k * 17 + i + 311);
    if (a == c) c = (c + 1) % kVertices;
    b.insertions.emplace_back(a, c);
  }
  if (k > 0) {
    VertexId a = v((k - 1) * 17), c = v((k - 1) * 17 + 311);
    if (a == c) c = (c + 1) % kVertices;
    b.deletions.emplace_back(a, c);
  }
  return b;
}

std::uint64_t full_triangle_count(GraphSession& s) {
  QueryRequest req;
  req.pattern = triangle();
  req.plan.count_mode = CountMode::kEmbeddings;
  const QueryResult r = s.run(req);
  STM_CHECK_MSG(r.ok(), "triangle enumeration failed: " << r.error);
  return r.count;
}

SessionConfig session_cfg(const std::string& dir, bool fsync,
                          std::uint32_t checkpoint_every) {
  SessionConfig cfg;
  cfg.persistence.dir = dir;
  cfg.persistence.fsync = fsync;
  cfg.persistence.checkpoint_every_batches = checkpoint_every;
  return cfg;
}

/// Applies the deterministic batch stream until killed. Every acknowledged
/// batch is WAL-logged before the ack prints, so the printed high-water
/// mark is a lower bound on what --verify must recover.
int serve(const std::string& dir, std::uint64_t max_batches) {
  GraphSession session(seed_graph(),
                       session_cfg(dir, /*fsync=*/false,
                                   /*checkpoint_every=*/16));
  StandingQueryConfig sq;
  sq.pattern = triangle();
  sq.plan.count_mode = CountMode::kEmbeddings;
  const std::uint64_t id = session.register_standing_query(sq);
  std::printf("serving: dir=%s standing=%llu epoch=%llu\n", dir.c_str(),
              static_cast<unsigned long long>(id),
              static_cast<unsigned long long>(session.epoch()));
  std::fflush(stdout);
  for (std::uint64_t k = session.epoch(); max_batches == 0 || k < max_batches;
       ++k) {
    const UpdateOutcome out = session.apply_updates(make_batch(k));
    STM_CHECK_MSG(out.ok(), "batch " << k << " failed: " << out.error);
    if (out.epoch % 8 == 0) {
      std::printf("acked batch %llu: triangles=%llu\n",
                  static_cast<unsigned long long>(out.epoch),
                  static_cast<unsigned long long>(
                      session.standing_query(id)->count));
      std::fflush(stdout);
    }
  }
  return 0;
}

/// Recovers the directory and checks the durability invariants. Exit 0 iff
/// the recovered state is a consistent acknowledged prefix.
int verify(const std::string& dir) {
  auto session = GraphSession::restore(session_cfg(dir, false, 0));
  const persist::RecoveryReport& rep = session->recovery_report();
  std::printf("recovered: epoch=%llu checkpoint_seq=%llu replayed=%llu "
              "torn_tail=%s discarded=%llu recovery_ms=%.2f\n",
              static_cast<unsigned long long>(session->epoch()),
              static_cast<unsigned long long>(rep.checkpoint_seq),
              static_cast<unsigned long long>(rep.replayed_batches),
              rep.wal_torn_tail ? "yes" : "no",
              static_cast<unsigned long long>(rep.wal_discarded_bytes),
              rep.recovery_ms);

  // Invariant 1: the standing query survived with its count intact, and
  // that count equals a from-scratch enumeration of the recovered graph.
  const auto info = session->standing_query(1);
  STM_CHECK_MSG(info.has_value(), "standing query lost in recovery");
  const std::uint64_t fresh = full_triangle_count(*session);
  STM_CHECK_MSG(info->count == fresh,
                "recovered standing count " << info->count
                                            << " != fresh enumeration "
                                            << fresh);
  // Invariant 2: the count is stamped with the recovered epoch.
  STM_CHECK_MSG(info->epoch == session->epoch(),
                "standing epoch " << info->epoch << " != session epoch "
                                  << session->epoch());
  // Invariant 3: the session is live — the deterministic history continues
  // exactly from the recovered prefix.
  const UpdateOutcome out =
      session->apply_updates(make_batch(session->epoch()));
  STM_CHECK_MSG(out.ok(), "post-recovery batch failed: " << out.error);
  STM_CHECK(session->standing_query(1)->count == full_triangle_count(*session));
  std::printf("verify ok: standing count %llu matches fresh enumeration, "
              "session live at epoch %llu\n",
              static_cast<unsigned long long>(info->count),
              static_cast<unsigned long long>(out.epoch));
  return 0;
}

int tour() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "stmatch-persist-demo";
  fs::remove_all(dir);

  std::printf("== 1. a persistent session logs every batch ==\n");
  std::uint64_t count = 0, epoch = 0;
  {
    GraphSession session(seed_graph(), session_cfg(dir.string(), true, 0));
    StandingQueryConfig sq;
    sq.pattern = triangle();
    sq.plan.count_mode = CountMode::kEmbeddings;
    const std::uint64_t id = session.register_standing_query(sq);
    for (std::uint64_t k = 0; k < 5; ++k) {
      const UpdateOutcome out = session.apply_updates(make_batch(k));
      STM_CHECK(out.ok());
      std::printf("  batch %llu: +%llu/-%llu edges, triangles=%llu\n",
                  static_cast<unsigned long long>(out.epoch),
                  static_cast<unsigned long long>(out.stats.inserted),
                  static_cast<unsigned long long>(out.stats.deleted),
                  static_cast<unsigned long long>(
                      session.standing_query(id)->count));
    }
    count = session.standing_query(id)->count;
    epoch = session.epoch();
    // No clean shutdown handshake exists or is needed: the WAL already
    // holds everything acknowledged above.
  }

  std::printf("\n== 2. reopening replays the log (a 'crash' recovery) ==\n");
  {
    auto session = GraphSession::restore(session_cfg(dir.string(), true, 0));
    std::printf("  recovered epoch=%llu replayed=%llu standing count=%llu\n",
                static_cast<unsigned long long>(session->epoch()),
                static_cast<unsigned long long>(
                    session->recovery_report().replayed_batches),
                static_cast<unsigned long long>(
                    session->standing_query(1)->count));
    STM_CHECK(session->epoch() == epoch);
    STM_CHECK(session->standing_query(1)->count == count);

    std::printf("\n== 3. a checkpoint folds the log into a snapshot ==\n");
    STM_CHECK(session->checkpoint());
    const auto wal = persist::read_wal((dir / "wal.stmwal").string());
    std::printf("  after checkpoint: wal holds %zu records\n",
                wal.records.size());
    std::printf("  metrics: %s\n",
                session->metrics()
                    .counter("checkpoints_written")
                    .value() > 0
                        ? "checkpoints_written > 0"
                        : "?");
  }

  std::printf("\n== 4. recovery now starts from the checkpoint ==\n");
  {
    auto session = GraphSession::restore(session_cfg(dir.string(), true, 0));
    std::printf("  checkpoint epoch=%llu, replayed=%llu batches\n",
                static_cast<unsigned long long>(
                    session->recovery_report().checkpoint_epoch),
                static_cast<unsigned long long>(
                    session->recovery_report().replayed_batches));
    STM_CHECK(session->recovery_report().replayed_batches == 0);
    STM_CHECK(session->standing_query(1)->count == count);
  }
  fs::remove_all(dir);
  std::printf("\ndemo ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  const Options opts(argc, argv);
  opts.allow_only({"serve", "verify", "dir", "max-batches"});
  const std::string dir = opts.get("dir", "");
  if (opts.get_bool("serve", false)) {
    STM_CHECK_MSG(!dir.empty(), "--serve requires --dir");
    return serve(dir,
                 static_cast<std::uint64_t>(opts.get_int("max-batches", 0)));
  }
  if (opts.get_bool("verify", false)) {
    STM_CHECK_MSG(!dir.empty(), "--verify requires --dir");
    return verify(dir);
  }
  return tour();
} catch (const std::exception& e) {
  std::fprintf(stderr, "persist_demo: %s\n", e.what());
  return 1;
}
