// Standing-query index demo: thousands of registrations, one shared pass.
//
//   ./example_standing_index [n] [users] [batches]
//
//   n         Barabási–Albert graph size (default 1500)
//   users     standing registrations to simulate (default 300)
//   batches   update batches to stream (default 5)
//
// The duplicate-heavy regime of DESIGN.md §16: many "users" each register a
// standing alert drawn from a handful of pattern shapes (mostly relabeled
// triangles — isomorphic, not identical). With SessionConfig::standing_index
// on, the session deduplicates them into canonical groups in one
// shared-prefix plan trie, serves every registration after the first from a
// sibling's baseline (no full enumeration), and evaluates each update batch
// with ONE trie pass instead of one anchored sweep per registration — while
// every delivered count and embedding delta stays bit-identical to the
// per-pattern loop.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "pattern/pattern.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) try {
  using namespace stm;
  const VertexId n = argc > 1 ? static_cast<VertexId>(std::stoul(argv[1])) : 1500;
  const int users = argc > 2 ? std::stoi(argv[2]) : 300;
  const int batches = argc > 3 ? std::stoi(argv[3]) : 5;

  Graph g = make_barabasi_albert(n, 5, 42);
  std::printf("graph: %zu vertices, %zu edges\n",
              static_cast<std::size_t>(g.num_vertices()),
              static_cast<std::size_t>(g.num_edges()));

  SessionConfig cfg;
  cfg.standing_index = true;
  GraphSession session(std::move(g), cfg);

  // The shape pool users draw from. Relabelings of the triangle are
  // isomorphic to it: the index folds them into one canonical group.
  const std::vector<Pattern> shapes = {
      Pattern::parse("0-1,1-2,2-0"),
      Pattern::parse("1-2,2-0,0-1"),  // triangle, relabeled
      Pattern::parse("0-2,2-1,1-0"),  // triangle again
      Pattern::parse("0-1,1-2,2-3"),  // 4-path
      Pattern::parse("0-1,0-2,0-3,1-2,1-3,2-3"),  // 4-clique
  };

  std::vector<std::uint64_t> ids;
  double first_full_ms = 0.0;
  int baseline_reuses = 0;
  Rng rng(7);
  for (int u = 0; u < users; ++u) {
    StandingQueryConfig sq;
    sq.pattern = shapes[rng() % shapes.size()];
    ids.push_back(session.register_standing_query(sq));
    const auto info = session.standing_query(ids.back());
    if (u == 0) first_full_ms = info->full_ms;
    if (info->full_ms == 0.0) ++baseline_reuses;
  }
  const mqo::IndexStats st = session.standing_index_stats();
  std::printf("registered %d standing queries -> %zu canonical groups\n",
              users, st.groups);
  std::printf("trie: %zu nodes, %zu terminals (no-sharing plans would need "
              "%llu nodes; shared-prefix ratio %.3f)\n",
              st.trie.nodes, st.trie.terminals,
              static_cast<unsigned long long>(st.trie.plan_positions),
              st.trie.shared_prefix_ratio);
  std::printf("first registration enumerated the graph in %.2f ms; %d of %d "
              "rode an isomorphic sibling's baseline (no enumeration)\n\n",
              first_full_ms, baseline_reuses, users);

  // One embedding-level subscriber on top of the counts: exact added /
  // retracted matches per batch, from the same shared pass.
  StandingQueryConfig watcher;
  watcher.pattern = shapes[0];
  watcher.on_delta = [](const StandingQueryDelta& d) {
    std::printf("  watcher: +%zu / -%zu triangle embeddings (%.3f ms)\n",
                d.added.size(), d.retracted.size(), d.delta_ms);
  };
  ids.push_back(session.register_standing_query(watcher));

  for (int b = 0; b < batches; ++b) {
    UpdateBatch batch;
    for (int i = 0; i < 24; ++i) {
      const auto u = static_cast<VertexId>(rng() % n);
      const auto v = static_cast<VertexId>(rng() % n);
      if (u != v) batch.insertions.emplace_back(u, v);
    }
    const UpdateOutcome out = session.apply_updates(std::move(batch));
    std::printf("batch %d: epoch %llu, %zu standing deltas in %.3f ms "
                "(one shared pass)\n",
                b, static_cast<unsigned long long>(out.epoch),
                out.updates.size(), out.incremental_ms);
  }

  const auto tri = session.standing_query(ids.front());
  std::printf("\nstanding triangle count @ epoch %llu: %llu\n",
              static_cast<unsigned long long>(tri->epoch),
              static_cast<unsigned long long>(tri->count));

  for (const std::uint64_t id : ids) session.unregister_standing_query(id);
  const mqo::IndexStats drained = session.standing_index_stats();
  std::printf("after deregistration: %zu registrations, %zu trie nodes\n",
              drained.registrations, drained.trie.nodes);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
