// Tests for the durability subsystem (DESIGN.md §13): WAL framing and
// torn-tail semantics, checkpoint atomicity and fallback, session crash
// recovery, the kill-point matrix, and chaos-injected durability.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "mqo/pattern_index.hpp"
#include "persist/checkpoint.hpp"
#include "persist/codec.hpp"
#include "persist/manager.hpp"
#include "persist/wal.hpp"
#include "service/service.hpp"
#include "service/stream.hpp"
#include "util/check.hpp"

namespace stm {
namespace {

namespace fs = std::filesystem;

/// A unique scratch directory, removed on scope exit.
class ScopedDir {
 public:
  explicit ScopedDir(const std::string& tag) {
    static std::atomic<std::uint64_t> counter{0};
    path_ = fs::temp_directory_path() /
            ("stmatch-persist-" + tag + "-" +
             std::to_string(::getpid()) + "-" +
             std::to_string(counter.fetch_add(1)));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScopedDir() { fs::remove_all(path_); }
  const std::string str() const { return path_.string(); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

Pattern triangle() { return Pattern::parse("0-1,1-2,2-0"); }

Graph seed_graph() { return make_barabasi_albert(60, 3, 17); }

/// Deterministic batch stream: batch k inserts a few spread-out edges and
/// deletes one of a previous batch's, with occasional redundancy.
UpdateBatch make_batch(int k, VertexId n) {
  UpdateBatch b;
  const auto v = [&](std::uint64_t x) {
    return static_cast<VertexId>((x * 2654435761ull + 7) % n);
  };
  const std::uint64_t base = static_cast<std::uint64_t>(k) * 13;
  for (int i = 0; i < 4; ++i) {
    VertexId a = v(base + i), c = v(base + i + 101);
    if (a == c) c = (c + 1) % n;
    b.insertions.emplace_back(a, c);
  }
  if (k > 0) {
    VertexId a = v(base - 13), c = v(base - 13 + 101);
    if (a == c) c = (c + 1) % n;
    b.deletions.emplace_back(a, c);
  }
  return b;
}

std::string wal_file(const std::string& dir) {
  return (fs::path(dir) / "wal.stmwal").string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

SessionConfig persist_cfg(const std::string& dir) {
  SessionConfig cfg;
  cfg.persistence.dir = dir;
  cfg.persistence.fsync = false;  // process-kill durability is what we test
  return cfg;
}

std::uint64_t count_triangles(GraphSession& s) {
  QueryRequest req;
  req.pattern = triangle();
  QueryResult r = s.run(req);
  EXPECT_TRUE(r.ok()) << r.error;
  return r.count;
}

// ---------------------------------------------------------------------------
// WAL framing
// ---------------------------------------------------------------------------

TEST(PersistWal, AppendAndReadBackAllRecordTypes) {
  ScopedDir dir("wal-roundtrip");
  const std::string path = wal_file(dir.str());
  {
    persist::WalWriter w(path, 1, /*fsync=*/false, 0, nullptr, 1);
    DeltaEdges d;
    d.inserted = {{1, 2}, {3, 4}};
    d.deleted = {{5, 6}};
    EXPECT_EQ(w.append_update(7, d).lsn, 1u);
    persist::StandingEntry e;
    e.id = 3;
    e.pattern = triangle().to_string();
    e.plan.count_mode = CountMode::kEmbeddings;
    e.count = 99;
    e.epoch = 7;
    e.batches = 2;
    e.full_ms = 1.5;
    EXPECT_EQ(w.append_register(e, 7).lsn, 2u);
    EXPECT_EQ(w.append_unregister(3, 8).lsn, 3u);
  }
  const persist::WalReadResult r = persist::read_wal(path);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_FALSE(r.torn_tail);
  EXPECT_EQ(r.next_lsn, 4u);
  EXPECT_EQ(r.records[0].type, persist::WalRecordType::kUpdateBatch);
  EXPECT_EQ(r.records[0].epoch, 7u);
  EXPECT_EQ(r.records[0].delta.inserted,
            (std::vector<std::pair<VertexId, VertexId>>{{1, 2}, {3, 4}}));
  EXPECT_EQ(r.records[0].delta.deleted,
            (std::vector<std::pair<VertexId, VertexId>>{{5, 6}}));
  EXPECT_EQ(r.records[1].standing.id, 3u);
  EXPECT_EQ(r.records[1].standing.pattern, triangle().to_string());
  EXPECT_EQ(r.records[1].standing.count, 99u);
  EXPECT_EQ(r.records[1].standing.batches, 2u);
  EXPECT_DOUBLE_EQ(r.records[1].standing.full_ms, 1.5);
  EXPECT_EQ(r.records[2].standing_id, 3u);
  EXPECT_EQ(r.records[2].epoch, 8u);
}

TEST(PersistWal, TornTailIsReportedAndTruncatedOnReopen) {
  ScopedDir dir("wal-torn");
  const std::string path = wal_file(dir.str());
  {
    persist::WalWriter w(path, 1, false, 0, nullptr, 1);
    DeltaEdges d;
    d.inserted = {{0, 1}};
    w.append_update(1, d);
  }
  const std::uint64_t intact = fs::file_size(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char garbage[] = {0x20, 0x00, 0x00, 0x00, 'x', 'y'};
    out.write(garbage, sizeof(garbage));
  }
  persist::WalReadResult r = persist::read_wal(path);
  EXPECT_TRUE(r.torn_tail);
  EXPECT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.valid_bytes, intact);
  EXPECT_EQ(r.discarded_bytes, 6u);

  // Reopening through the writer with truncate_to physically discards the
  // tail; the next append lands where the torn frame began.
  {
    persist::WalWriter w(path, r.next_lsn, false, r.valid_bytes, nullptr, 1);
    DeltaEdges d;
    d.deleted = {{0, 1}};
    w.append_update(2, d);
  }
  r = persist::read_wal(path);
  EXPECT_FALSE(r.torn_tail);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[1].lsn, 2u);
}

TEST(PersistWal, ResetTruncatesButLsnsKeepCounting) {
  ScopedDir dir("wal-reset");
  const std::string path = wal_file(dir.str());
  persist::WalWriter w(path, 1, false, 0, nullptr, 1);
  DeltaEdges d;
  d.inserted = {{0, 1}};
  w.append_update(1, d);
  w.append_update(2, d);
  w.reset();
  EXPECT_EQ(fs::file_size(path), persist::kWalMagicSize);
  EXPECT_EQ(w.append_update(3, d).lsn, 3u);
  const persist::WalReadResult r = persist::read_wal(path);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].lsn, 3u);
}

TEST(PersistWal, NotAWalThrows) {
  ScopedDir dir("wal-magic");
  const std::string path = wal_file(dir.str());
  write_file(path, "definitely not a wal file");
  EXPECT_THROW(persist::read_wal(path), check_error);
}

TEST(PersistWal, MissingFileReadsAsEmptyLog) {
  ScopedDir dir("wal-missing");
  const persist::WalReadResult r = persist::read_wal(wal_file(dir.str()));
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.next_lsn, 1u);
  EXPECT_FALSE(r.torn_tail);
}

TEST(PersistWal, InjectedTearsRepairAndRetryDeterministically) {
  ScopedDir dir("wal-inject");
  const std::string path = wal_file(dir.str());
  FaultConfig fc;
  fc.seed = 42;
  fc.set_rate(FaultSite::kWalAppend, 0.5);
  fc.max_unit_attempts = 16;
  FaultInjector injector(fc);
  std::uint64_t faults = 0;
  {
    persist::WalWriter w(path, 1, false, 0, &injector, fc.max_unit_attempts);
    for (int i = 0; i < 20; ++i) {
      DeltaEdges d;
      d.inserted = {{static_cast<VertexId>(i), static_cast<VertexId>(i + 1)}};
      faults += w.append_update(static_cast<std::uint64_t>(i + 1), d).faults;
    }
  }
  EXPECT_GT(faults, 0u);  // the 50% schedule must actually fire
  const persist::WalReadResult r = persist::read_wal(path);
  EXPECT_FALSE(r.torn_tail);  // every tear was repaired before the next frame
  ASSERT_EQ(r.records.size(), 20u);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(r.records[static_cast<std::size_t>(i)].lsn,
              static_cast<std::uint64_t>(i + 1));
}

TEST(PersistWal, ExhaustedInjectionBudgetFailsClosed) {
  ScopedDir dir("wal-exhaust");
  const std::string path = wal_file(dir.str());
  FaultConfig fc;
  fc.set_rate(FaultSite::kWalAppend, 1.0);  // every attempt tears
  fc.max_unit_attempts = 3;
  FaultInjector injector(fc);
  persist::WalWriter w(path, 1, false, 0, &injector, fc.max_unit_attempts);
  DeltaEdges d;
  d.inserted = {{0, 1}};
  EXPECT_THROW(w.append_update(1, d), FaultInjectedError);
  // Fail closed: the file holds no trace of the failed append.
  EXPECT_EQ(fs::file_size(path), persist::kWalMagicSize);
  const persist::WalReadResult r = persist::read_wal(path);
  EXPECT_TRUE(r.records.empty());
  EXPECT_FALSE(r.torn_tail);
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

persist::CheckpointData sample_checkpoint(std::uint64_t seq) {
  persist::CheckpointData d;
  d.seq = seq;
  d.epoch = seq * 10;
  d.last_lsn = seq * 100;
  d.next_standing_id = 5;
  d.graph = make_barabasi_albert(30, 2, static_cast<std::uint64_t>(seq));
  persist::StandingEntry e;
  e.id = 4;
  e.pattern = triangle().to_string();
  e.count = 12;
  e.epoch = d.epoch;
  d.standing.push_back(e);
  return d;
}

TEST(PersistCheckpoint, EncodeDecodeRoundTrip) {
  const persist::CheckpointData d = sample_checkpoint(3);
  const persist::CheckpointData back =
      persist::decode_checkpoint(persist::encode_checkpoint(d));
  EXPECT_EQ(back.seq, d.seq);
  EXPECT_EQ(back.epoch, d.epoch);
  EXPECT_EQ(back.last_lsn, d.last_lsn);
  EXPECT_EQ(back.next_standing_id, d.next_standing_id);
  EXPECT_TRUE(graphs_equal(back.graph, d.graph));
  ASSERT_EQ(back.standing.size(), 1u);
  EXPECT_EQ(back.standing[0].id, 4u);
  EXPECT_EQ(back.standing[0].pattern, d.standing[0].pattern);
  EXPECT_EQ(back.standing[0].count, 12u);
}

TEST(PersistCheckpoint, GarbledBytesFailDecode) {
  std::string bytes = persist::encode_checkpoint(sample_checkpoint(1));
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  EXPECT_THROW(persist::decode_checkpoint(bytes), check_error);
  std::string truncated =
      persist::encode_checkpoint(sample_checkpoint(1));
  truncated.resize(truncated.size() - 5);
  EXPECT_THROW(persist::decode_checkpoint(truncated), check_error);
}

TEST(PersistCheckpoint, LoadFallsBackPastCorruptNewest) {
  ScopedDir dir("ckpt-fallback");
  persist::CheckpointStore store(dir.str(), false, nullptr, 1);
  store.write(sample_checkpoint(1));
  store.write(sample_checkpoint(2));
  // Corrupt the newest file in place (a torn rename target / disk fault).
  const std::string newest = store.path_for(2);
  std::string bytes = read_file(newest);
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0xFF);
  write_file(newest, bytes);

  const persist::CheckpointLoadResult r = store.load_newest();
  ASSERT_TRUE(r.data.has_value());
  EXPECT_EQ(r.data->seq, 1u);
  EXPECT_EQ(r.skipped_corrupt, 1u);
}

TEST(PersistCheckpoint, RetentionKeepsNewestTwo) {
  ScopedDir dir("ckpt-retention");
  persist::CheckpointStore store(dir.str(), false, nullptr, 1);
  store.write(sample_checkpoint(1));
  store.write(sample_checkpoint(2));
  store.write(sample_checkpoint(3));
  EXPECT_EQ(store.list(), (std::vector<std::uint64_t>{2, 3}));
}

TEST(PersistCheckpoint, ExhaustedInjectionBudgetLeavesPreviousSet) {
  ScopedDir dir("ckpt-exhaust");
  {
    persist::CheckpointStore ok(dir.str(), false, nullptr, 1);
    ok.write(sample_checkpoint(1));
  }
  FaultConfig fc;
  fc.set_rate(FaultSite::kCheckpointWrite, 1.0);
  fc.max_unit_attempts = 2;
  FaultInjector injector(fc);
  persist::CheckpointStore store(dir.str(), false, &injector,
                                 fc.max_unit_attempts);
  EXPECT_THROW(store.write(sample_checkpoint(2)), FaultInjectedError);
  EXPECT_EQ(store.faults_injected(), 2u);
  // No new checkpoint, no stray temp file, previous set intact.
  EXPECT_EQ(store.list(), (std::vector<std::uint64_t>{1}));
  for (const auto& entry : fs::directory_iterator(dir.str()))
    EXPECT_EQ(entry.path().extension(), ".stmckpt") << entry.path();
  const persist::CheckpointLoadResult r = store.load_newest();
  ASSERT_TRUE(r.data.has_value());
  EXPECT_EQ(r.data->seq, 1u);
}

// ---------------------------------------------------------------------------
// Session recovery
// ---------------------------------------------------------------------------

TEST(PersistSession, FreshBootInstallsCheckpointAndRestoreWorks) {
  ScopedDir dir("boot");
  std::uint64_t triangles = 0;
  {
    GraphSession s(seed_graph(), persist_cfg(dir.str()));
    EXPECT_FALSE(s.recovery_report().recovered);
    triangles = count_triangles(s);
  }
  persist::CheckpointStore store(dir.str(), false, nullptr, 1);
  EXPECT_EQ(store.list(), (std::vector<std::uint64_t>{1}));

  // restore() needs no seed graph: the bootstrap checkpoint carries it.
  auto s = GraphSession::restore(persist_cfg(dir.str()));
  EXPECT_TRUE(s->recovery_report().checkpoint_loaded);
  EXPECT_EQ(s->epoch(), 0u);
  EXPECT_EQ(count_triangles(*s), triangles);
}

TEST(PersistSession, RestoreWithoutStateThrows) {
  ScopedDir dir("restore-empty");
  EXPECT_THROW(GraphSession::restore(persist_cfg(dir.str())), check_error);
  SessionConfig no_persist;
  EXPECT_THROW(GraphSession::restore(no_persist), check_error);
}

TEST(PersistSession, ReopenReplaysWalTail) {
  ScopedDir dir("replay");
  const Graph g = seed_graph();
  std::uint64_t epoch = 0, triangles = 0;
  {
    GraphSession s(g, persist_cfg(dir.str()));
    for (int k = 0; k < 5; ++k) {
      const UpdateOutcome out = s.apply_updates(make_batch(k, 60));
      ASSERT_TRUE(out.ok()) << out.error;
      epoch = out.epoch;
    }
    triangles = count_triangles(s);
  }
  GraphSession s(g, persist_cfg(dir.str()));
  EXPECT_TRUE(s.recovery_report().recovered);
  EXPECT_EQ(s.recovery_report().replayed_batches, 5u);
  EXPECT_EQ(s.epoch(), epoch);
  EXPECT_EQ(count_triangles(s), triangles);
  EXPECT_EQ(s.metrics().counter("recovery_replayed_batches").value(), 5u);

  // The reopened session keeps appending where the log left off.
  const UpdateOutcome out = s.apply_updates(make_batch(5, 60));
  ASSERT_TRUE(out.ok()) << out.error;
  EXPECT_EQ(out.epoch, epoch + 1);
}

TEST(PersistSession, CheckpointTruncatesWalAndShortensRecovery) {
  ScopedDir dir("ckpt-truncate");
  const Graph g = seed_graph();
  std::uint64_t epoch = 0, triangles = 0;
  {
    GraphSession s(g, persist_cfg(dir.str()));
    for (int k = 0; k < 4; ++k) s.apply_updates(make_batch(k, 60));
    ASSERT_TRUE(s.checkpoint());
    // Covered records are gone from the log...
    EXPECT_TRUE(persist::read_wal(wal_file(dir.str())).records.empty());
    const UpdateOutcome out = s.apply_updates(make_batch(4, 60));
    ASSERT_TRUE(out.ok());
    epoch = out.epoch;
    triangles = count_triangles(s);
  }
  GraphSession s(g, persist_cfg(dir.str()));
  // ...so recovery loads the checkpoint and replays only the one batch
  // after it.
  EXPECT_TRUE(s.recovery_report().checkpoint_loaded);
  EXPECT_EQ(s.recovery_report().checkpoint_epoch, 4u);
  EXPECT_EQ(s.recovery_report().replayed_batches, 1u);
  EXPECT_EQ(s.epoch(), epoch);
  EXPECT_EQ(count_triangles(s), triangles);
}

TEST(PersistSession, AutoCheckpointEveryNBatches) {
  ScopedDir dir("auto-ckpt");
  SessionConfig cfg = persist_cfg(dir.str());
  cfg.persistence.checkpoint_every_batches = 2;
  GraphSession s(seed_graph(), cfg);
  for (int k = 0; k < 5; ++k) s.apply_updates(make_batch(k, 60));
  // Bootstrap checkpoint + installs after batches 2 and 4.
  EXPECT_EQ(s.metrics().counter("checkpoints_written").value(), 3u);
  // Only batch 5 is left in the log.
  EXPECT_EQ(persist::read_wal(wal_file(dir.str())).records.size(), 1u);
}

TEST(PersistSession, StandingQueriesSurviveRestartWithCountsIntact) {
  ScopedDir dir("standing");
  const Graph g = seed_graph();
  std::uint64_t id = 0, doomed = 0, count = 0, epoch = 0;
  {
    GraphSession s(g, persist_cfg(dir.str()));
    StandingQueryConfig sq;
    sq.pattern = triangle();
    sq.plan.count_mode = CountMode::kEmbeddings;
    id = s.register_standing_query(sq);
    doomed = s.register_standing_query(sq);
    for (int k = 0; k < 3; ++k) s.apply_updates(make_batch(k, 60));
    ASSERT_TRUE(s.unregister_standing_query(doomed));
    for (int k = 3; k < 5; ++k) s.apply_updates(make_batch(k, 60));
    const auto info = s.standing_query(id);
    ASSERT_TRUE(info.has_value());
    count = info->count;
    epoch = info->epoch;
  }
  GraphSession s(g, persist_cfg(dir.str()));
  EXPECT_EQ(s.recovery_report().replayed_registrations, 2u);
  EXPECT_EQ(s.recovery_report().replayed_unregistrations, 1u);
  const auto info = s.standing_query(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->count, count);
  EXPECT_EQ(info->epoch, epoch);
  EXPECT_EQ(info->batches_observed, 5u);
  EXPECT_FALSE(s.standing_query(doomed).has_value());
  // The restored count is the ground truth: it must equal a from-scratch
  // full enumeration of the recovered graph.
  EXPECT_EQ(info->count, count_triangles(s));
  // And it keeps advancing exactly through post-recovery batches.
  const UpdateOutcome out = s.apply_updates(make_batch(5, 60));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(s.standing_query(id)->count, count_triangles(s));
}

TEST(PersistSession, IndexedStandingStateSurvivesRestart) {
  ScopedDir dir("standing-indexed");
  const Graph g = seed_graph();
  const auto indexed_cfg = [&dir]() {
    SessionConfig cfg = persist_cfg(dir.str());
    cfg.standing_index = true;
    return cfg;
  };
  std::uint64_t id = 0, dup = 0, doomed = 0, count = 0;
  {
    GraphSession s(g, indexed_cfg());
    StandingQueryConfig sq;
    sq.pattern = triangle();
    id = s.register_standing_query(sq);
    StandingQueryConfig relabeled;
    relabeled.pattern = triangle().relabeled({1, 2, 0});
    dup = s.register_standing_query(relabeled);
    StandingQueryConfig path;
    path.pattern = Pattern::parse("0-1,1-2");
    doomed = s.register_standing_query(path);
    for (int k = 0; k < 3; ++k) s.apply_updates(make_batch(k, 60));
    ASSERT_TRUE(s.unregister_standing_query(doomed));
    for (int k = 3; k < 5; ++k) s.apply_updates(make_batch(k, 60));
    count = s.standing_query(id)->count;
  }
  GraphSession s(g, indexed_cfg());
  EXPECT_EQ(s.standing_query(id)->count, count);
  EXPECT_EQ(s.standing_query(dup)->count, count);
  EXPECT_FALSE(s.standing_query(doomed).has_value());
  EXPECT_EQ(s.standing_query(id)->count, count_triangles(s));

  // The rebuilt trie must be bit-identical to a never-crashed index holding
  // the surviving registrations.
  const mqo::IndexStats st = s.standing_index_stats();
  EXPECT_EQ(st.registrations, 2u);
  EXPECT_EQ(st.groups, 1u);
  mqo::PatternIndex twin;
  twin.add(id, triangle(), {}, false);
  twin.add(dup, triangle().relabeled({1, 2, 0}), {}, false);
  EXPECT_EQ(st.trie.nodes, twin.stats().trie.nodes);
  EXPECT_EQ(st.trie.terminals, twin.stats().trie.terminals);
  EXPECT_EQ(st.trie.plan_positions, twin.stats().trie.plan_positions);

  // And the recovered index keeps advancing exactly.
  const UpdateOutcome out = s.apply_updates(make_batch(5, 60));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(s.standing_query(id)->count, count_triangles(s));
  EXPECT_EQ(s.standing_query(dup)->count, count_triangles(s));
}

TEST(PersistSession, ResumeTokenSurvivesRestart) {
  ScopedDir dir("resume");
  const Graph g = seed_graph();

  // Collect the full stream once for reference.
  std::vector<Embedding> all;
  {
    GraphSession ref(g);
    StreamRequest req;
    req.query.pattern = triangle();
    auto stream = ref.open_stream(std::move(req));
    Embedding e;
    while (stream->next(&e)) all.push_back(e);
    ASSERT_TRUE(stream->result().ok());
  }
  ASSERT_GT(all.size(), 10u);

  // First page against the persistent session, then kill the process state
  // (destroy the session) and resume against a recovered one.
  std::string token;
  std::vector<Embedding> got;
  {
    GraphSession s(g, persist_cfg(dir.str()));
    s.apply_updates(make_batch(0, 60));  // make the directory non-trivial
    StreamRequest req;
    req.query.pattern = triangle();
    req.stream.limit = 5;
    auto stream = s.open_stream(std::move(req));
    Embedding e;
    while (stream->next(&e)) got.push_back(e);
    ASSERT_TRUE(stream->result().ok()) << stream->result().error;
    token = stream->resume_token();
    ASSERT_FALSE(token.empty());
  }
  {
    auto s = GraphSession::restore(persist_cfg(dir.str()));
    StreamRequest req;
    req.query.pattern = triangle();
    req.stream.resume_token = token;
    auto stream = s->open_stream(std::move(req));
    Embedding e;
    while (stream->next(&e)) got.push_back(e);
    ASSERT_TRUE(stream->result().ok()) << stream->result().error;
  }

  // The pre-kill prefix plus the post-restart drain is exactly the stream
  // of the updated graph (which differs from `all`, so rebuild it).
  std::vector<Embedding> expect;
  {
    GraphSession ref(g);
    ref.apply_updates(make_batch(0, 60));
    StreamRequest req;
    req.query.pattern = triangle();
    auto stream = ref.open_stream(std::move(req));
    Embedding e;
    while (stream->next(&e)) expect.push_back(e);
  }
  EXPECT_EQ(got, expect);
}

TEST(PersistSession, NoopAndFailedBatchesAreNotLogged) {
  ScopedDir dir("noop");
  const Graph g = seed_graph();
  {
    GraphSession s(g, persist_cfg(dir.str()));
    ASSERT_TRUE(s.apply_updates(make_batch(0, 60)).ok());
    // No-op: empty batch and an all-redundant batch bump nothing.
    ASSERT_TRUE(s.apply_updates(UpdateBatch{}).ok());
    UpdateBatch redundant;
    redundant.insertions = make_batch(0, 60).insertions;  // already present
    const UpdateOutcome out = s.apply_updates(redundant);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out.applied.empty());
    // Invalid: rejected before the WAL hook.
    UpdateBatch bad;
    bad.insertions = {{0, 200}};  // out of range
    EXPECT_EQ(s.apply_updates(bad).status, QueryStatus::kInvalidArgument);
  }
  EXPECT_EQ(persist::read_wal(wal_file(dir.str())).records.size(), 1u);

  // Injected kUpdateApply failures never reach the log either.
  ScopedDir dir2("fault-apply");
  SessionConfig cfg = persist_cfg(dir2.str());
  cfg.update_fault.set_rate(FaultSite::kUpdateApply, 1.0);
  cfg.update_fault.max_unit_attempts = 1;
  GraphSession s(g, cfg);
  const UpdateOutcome out = s.apply_updates(make_batch(0, 60));
  EXPECT_EQ(out.status, QueryStatus::kInternalError);
  EXPECT_EQ(s.epoch(), 0u);
  EXPECT_TRUE(persist::read_wal(wal_file(dir2.str())).records.empty());
}

TEST(PersistSession, WalExhaustionFailsTheBatchClosed) {
  ScopedDir dir("wal-closed");
  SessionConfig cfg = persist_cfg(dir.str());
  cfg.persistence.fault.set_rate(FaultSite::kWalAppend, 1.0);
  cfg.persistence.fault.max_unit_attempts = 2;
  GraphSession s(seed_graph(), cfg);
  const UpdateOutcome out = s.apply_updates(make_batch(0, 60));
  EXPECT_EQ(out.status, QueryStatus::kInternalError);
  // Not acknowledged, not published, not on disk: epoch unchanged and the
  // log clean (the torn attempts were truncated away).
  EXPECT_EQ(s.epoch(), 0u);
  const persist::WalReadResult wal = persist::read_wal(wal_file(dir.str()));
  EXPECT_TRUE(wal.records.empty());
  EXPECT_FALSE(wal.torn_tail);

  StandingQueryConfig sq;
  sq.pattern = triangle();
  EXPECT_THROW(s.register_standing_query(sq), FaultInjectedError);
  EXPECT_FALSE(s.standing_query(1).has_value());
}

// ---------------------------------------------------------------------------
// Kill-point matrix: recovery from every WAL prefix
// ---------------------------------------------------------------------------

struct KillScenario {
  ScopedDir dir{"kill-matrix"};
  Graph g = seed_graph();
  std::uint64_t standing_id = 0;
  /// expected[k]: (epoch, standing count if registered) after the first k
  /// WAL records took effect. Record 1 is the registration, records 2..N+1
  /// the batches.
  struct Expect {
    std::uint64_t epoch = 0;
    bool has_standing = false;
    std::uint64_t standing_count = 0;
  };
  std::vector<Expect> expected;
  std::vector<persist::WalRecord> records;
  std::string wal_bytes;

  /// With `standing_index` the scenario runs every session (initial and
  /// recovered) in indexed mode, so every cut also exercises the trie
  /// rebuild to the acknowledged registration prefix.
  explicit KillScenario(bool standing_index = false)
      : standing_index_(standing_index) {
    GraphSession s(g, session_cfg(dir.str()));
    expected.push_back({0, false, 0});
    StandingQueryConfig sq;
    sq.pattern = triangle();
    sq.plan.count_mode = CountMode::kEmbeddings;
    standing_id = s.register_standing_query(sq);
    expected.push_back({0, true, s.standing_query(standing_id)->count});
    for (int k = 0; k < 6; ++k) {
      const UpdateOutcome out = s.apply_updates(make_batch(k, 60));
      EXPECT_TRUE(out.ok()) << out.error;
      expected.push_back(
          {out.epoch, true, s.standing_query(standing_id)->count});
    }
    // Session destroyed cleanly here; the cuts below simulate the kills.
    const persist::WalReadResult wal =
        persist::read_wal(wal_file(dir.str()));
    records = wal.records;
    wal_bytes = read_file(wal_file(dir.str()));
  }

  /// Reopens from a copy of the state dir whose WAL is replaced by
  /// `bytes`, and asserts the recovered state matches expected[prefix].
  void check_cut(const std::string& bytes, std::size_t prefix,
                 const std::string& what) {
    ScopedDir scratch("kill-cut");
    for (const auto& entry : fs::directory_iterator(dir.str()))
      fs::copy(entry.path(), fs::path(scratch.str()) / entry.path().filename());
    write_file(wal_file(scratch.str()), bytes);

    GraphSession s(g, session_cfg(scratch.str()));
    const Expect& e = expected[prefix];
    EXPECT_EQ(s.epoch(), e.epoch) << what;
    const auto info = s.standing_query(standing_id);
    EXPECT_EQ(info.has_value(), e.has_standing) << what;
    if (info.has_value() && e.has_standing) {
      EXPECT_EQ(info->count, e.standing_count) << what;
      // The recovered count must equal a from-scratch enumeration of the
      // recovered graph — the differential oracle for every cut point.
      EXPECT_EQ(info->count, count_triangles(s)) << what;
    }
    if (standing_index_) {
      // The trie must be rebuilt bit-identically to the acknowledged
      // registration prefix: either exactly the triangle's plans or empty.
      const mqo::IndexStats st = s.standing_index_stats();
      EXPECT_EQ(st.registrations, e.has_standing ? 1u : 0u) << what;
      mqo::PatternIndex twin;
      if (e.has_standing) twin.add(standing_id, triangle(), {}, false);
      EXPECT_EQ(st.trie.nodes, twin.stats().trie.nodes) << what;
      EXPECT_EQ(st.trie.terminals, twin.stats().trie.terminals) << what;
      EXPECT_EQ(st.trie.max_depth, twin.stats().trie.max_depth) << what;
    }
  }

 private:
  SessionConfig session_cfg(const std::string& state_dir) const {
    SessionConfig cfg = persist_cfg(state_dir);
    cfg.standing_index = standing_index_;
    return cfg;
  }

  bool standing_index_ = false;
};

TEST(PersistKillMatrix, IndexedTrieRebuildAtEveryBoundary) {
  KillScenario sc(/*standing_index=*/true);
  ASSERT_EQ(sc.records.size(), 7u);  // 1 registration + 6 batches
  sc.check_cut(sc.wal_bytes.substr(0, persist::kWalMagicSize), 0,
               "indexed cut after magic");
  for (std::size_t i = 0; i < sc.records.size(); ++i) {
    const auto& rec = sc.records[i];
    const std::size_t end =
        static_cast<std::size_t>(rec.file_offset + rec.frame_size);
    sc.check_cut(sc.wal_bytes.substr(0, end), i + 1,
                 "indexed cut after record " + std::to_string(i + 1));
  }
}

TEST(PersistKillMatrix, EveryRecordBoundary) {
  KillScenario sc;
  ASSERT_EQ(sc.records.size(), 7u);  // 1 registration + 6 batches
  sc.check_cut(sc.wal_bytes.substr(0, persist::kWalMagicSize), 0,
               "cut after magic");
  for (std::size_t i = 0; i < sc.records.size(); ++i) {
    const auto& rec = sc.records[i];
    const std::size_t end =
        static_cast<std::size_t>(rec.file_offset + rec.frame_size);
    sc.check_cut(sc.wal_bytes.substr(0, end), i + 1,
                 "cut after record " + std::to_string(i + 1));
  }
}

TEST(PersistKillMatrix, MidRecordTearsLoseOnlyTheTornRecord) {
  KillScenario sc;
  for (std::size_t i = 0; i < sc.records.size(); ++i) {
    const auto& rec = sc.records[i];
    const std::string what = "record " + std::to_string(i + 1);
    // Torn mid-header: the length word itself is incomplete.
    sc.check_cut(
        sc.wal_bytes.substr(0, static_cast<std::size_t>(rec.file_offset) + 4),
        i, what + " torn mid-header");
    // Torn mid-payload.
    sc.check_cut(sc.wal_bytes.substr(
                     0, static_cast<std::size_t>(rec.file_offset) +
                            static_cast<std::size_t>(rec.frame_size) / 2),
                 i, what + " torn mid-payload");
  }
}

TEST(PersistKillMatrix, GarbledRecordStopsReplayBeforeIt) {
  KillScenario sc;
  for (std::size_t i = 0; i < sc.records.size(); ++i) {
    const auto& rec = sc.records[i];
    std::string bytes = sc.wal_bytes;
    const std::size_t victim = static_cast<std::size_t>(
        rec.file_offset + rec.frame_size - 1);  // last payload byte
    bytes[victim] = static_cast<char>(bytes[victim] ^ 0x5A);
    // A garbled frame fails its crc; replay keeps the prefix before it and
    // discards it plus everything after (order is only defined by the log).
    sc.check_cut(bytes, i, "record " + std::to_string(i + 1) + " garbled");
  }
}

// ---------------------------------------------------------------------------
// Chaos tier: live durability under >= 10% injection on both sites
// ---------------------------------------------------------------------------

TEST(PersistChaos, DurabilityHoldsUnderInjectedTornWrites) {
  ScopedDir dir("chaos");
  const Graph g = seed_graph();

  SessionConfig cfg = persist_cfg(dir.str());
  cfg.persistence.checkpoint_every_batches = 3;
  cfg.persistence.fault.seed = 11;
  cfg.persistence.fault.set_rate(FaultSite::kWalAppend, 0.15);
  cfg.persistence.fault.set_rate(FaultSite::kCheckpointWrite, 0.25);
  cfg.persistence.fault.max_unit_attempts = 16;

  // No-injection oracle advanced in lockstep.
  GraphSession oracle(g);
  StandingQueryConfig osq;
  osq.pattern = triangle();
  osq.plan.count_mode = CountMode::kEmbeddings;
  const std::uint64_t oracle_id = oracle.register_standing_query(osq);

  std::uint64_t id = 0;
  {
    GraphSession s(g, cfg);
    StandingQueryConfig sq;
    sq.pattern = triangle();
    sq.plan.count_mode = CountMode::kEmbeddings;
    id = s.register_standing_query(sq);
    for (int k = 0; k < 12; ++k) {
      const UpdateOutcome out = s.apply_updates(make_batch(k, 60));
      ASSERT_TRUE(out.ok()) << "batch " << k << ": " << out.error;
      const UpdateOutcome oout = oracle.apply_updates(make_batch(k, 60));
      ASSERT_TRUE(oout.ok());
      ASSERT_EQ(out.epoch, oout.epoch);
      ASSERT_EQ(out.applied, oout.applied);
    }
    // The schedule must actually have fired for this test to mean anything.
    EXPECT_GT(s.metrics().counter("faults_injected_total").value(), 0u);
    EXPECT_EQ(s.standing_query(id)->count,
              oracle.standing_query(oracle_id)->count);
  }

  // Reopen after the chaos run: bit-identical epoch and counts.
  auto s = GraphSession::restore(cfg);
  EXPECT_EQ(s->epoch(), oracle.epoch());
  ASSERT_TRUE(s->standing_query(id).has_value());
  EXPECT_EQ(s->standing_query(id)->count,
            oracle.standing_query(oracle_id)->count);
  EXPECT_EQ(count_triangles(*s), count_triangles(oracle));

  // And the recovered session still advances in lockstep.
  const UpdateOutcome out = s->apply_updates(make_batch(12, 60));
  const UpdateOutcome oout = oracle.apply_updates(make_batch(12, 60));
  ASSERT_TRUE(out.ok()) << out.error;
  ASSERT_TRUE(oout.ok());
  EXPECT_EQ(out.epoch, oout.epoch);
  EXPECT_EQ(s->standing_query(id)->count,
            oracle.standing_query(oracle_id)->count);
}

TEST(PersistChaos, CheckpointExhaustionDegradesToWalOnly) {
  ScopedDir dir("chaos-ckpt");
  SessionConfig cfg = persist_cfg(dir.str());
  cfg.persistence.checkpoint_every_batches = 2;
  cfg.persistence.fault.set_rate(FaultSite::kCheckpointWrite, 1.0);
  cfg.persistence.fault.max_unit_attempts = 2;

  std::uint64_t epoch = 0, triangles = 0;
  {
    GraphSession s(seed_graph(), cfg);
    for (int k = 0; k < 4; ++k) {
      const UpdateOutcome out = s.apply_updates(make_batch(k, 60));
      ASSERT_TRUE(out.ok()) << out.error;  // updates survive failed installs
      epoch = out.epoch;
    }
    EXPECT_EQ(s.metrics().counter("checkpoints_written").value(), 0u);
    EXPECT_GE(s.metrics().counter("checkpoint_failures").value(), 2u);
    triangles = count_triangles(s);
  }
  // No checkpoint was ever installed, so the whole history is in the WAL;
  // recovery replays it from the seed.
  GraphSession s(seed_graph(), cfg);
  EXPECT_FALSE(s.recovery_report().checkpoint_loaded);
  EXPECT_EQ(s.recovery_report().replayed_batches, 4u);
  EXPECT_EQ(s.epoch(), epoch);
  EXPECT_EQ(count_triangles(s), triangles);
}

}  // namespace
}  // namespace stm
