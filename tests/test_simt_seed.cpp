// SIMT engine seeding: pin_v1 + v-range restriction.
//
// The incremental matcher drives the SIMT engine one data edge at a time by
// setting v_begin = s0, v_end = s0 + 1, pin_v1 = s1 (engine.cpp honors the
// pin at level 1). These tests nail that contract against
// recursive_count_seed over every seed pair enumerate_seeds produces, plus
// the boundary shapes: v1 = 0, v1 = the max-degree hub, empty v-ranges, and
// pins that are not adjacent to the outer vertex.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/recursive.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/pattern.hpp"
#include "util/rng.hpp"

namespace stm {
namespace {

EngineConfig pinned_config(VertexId v0, VertexId v1) {
  EngineConfig cfg;
  cfg.device.num_blocks = 2;
  cfg.device.warps_per_block = 2;
  cfg.v_begin = v0;
  cfg.v_end = v0 + 1;
  cfg.v_stride = 1;
  cfg.pin_v1 = v1;
  return cfg;
}

/// For every seed pair of `plan` over `g`: the pinned SIMT run must equal
/// recursive_count_seed, and the pinned runs must sum to the full count.
void check_all_seeds(const Graph& g, const Pattern& p) {
  const MatchingPlan plan(reorder_for_matching(p), {});
  const auto seeds = enumerate_seeds(g, plan);
  std::uint64_t sum = 0;
  for (const auto& [v0, v1] : seeds) {
    const std::uint64_t expected = recursive_count_seed(g, plan, v0, v1);
    const std::uint64_t got = stmatch_match(g, plan, pinned_config(v0, v1)).count;
    ASSERT_EQ(got, expected) << "seed pair (" << v0 << ", " << v1 << ")";
    sum += got;
  }
  EXPECT_EQ(sum, recursive_count_range(g, plan, 0, g.num_vertices()))
      << "pinned seed counts must partition the full count";
}

TEST(SimtSeed, PinnedCountsMatchRecursiveSeedOnCliques) {
  check_all_seeds(make_clique(6), Pattern::parse("0-1,1-2,2-0"));
}

TEST(SimtSeed, PinnedCountsMatchRecursiveSeedOnRandomGraphs) {
  Rng rng(0x51337);
  for (int i = 0; i < 3; ++i) {
    const Graph g = make_erdos_renyi(24, 0.2, rng());
    check_all_seeds(g, Pattern::parse("0-1,1-2,2-0"));
    check_all_seeds(g, Pattern::parse("0-1,1-2,2-3"));
  }
}

TEST(SimtSeed, PinnedCountsOnLabeledGraph) {
  Rng rng(0xbeef);
  Graph g = with_random_labels(make_erdos_renyi(20, 0.25, rng()), 3, rng());
  Pattern p = Pattern::parse("0-1,1-2,2-0").with_labels({0, 1, 2});
  check_all_seeds(g, p);
}

TEST(SimtSeed, PinAtVertexZero) {
  // v1 = 0 is a valid pin (boundary of the id space): star hub 0 pinned as
  // the second level vertex of a path pattern.
  const Graph g = make_star(8);  // hub = vertex 0
  const MatchingPlan plan(reorder_for_matching(Pattern::parse("0-1,1-2")), {});
  for (VertexId leaf = 1; leaf < g.num_vertices(); ++leaf) {
    EXPECT_EQ(stmatch_match(g, plan, pinned_config(leaf, 0)).count,
              recursive_count_seed(g, plan, leaf, 0))
        << "leaf " << leaf << " pinned to hub 0";
  }
}

TEST(SimtSeed, PinAtMaxDegreeVertex) {
  Rng rng(0xd06);
  const Graph g = make_barabasi_albert(30, 3, rng());
  VertexId hub = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v)
    if (g.degree(v) > g.degree(hub)) hub = v;
  ASSERT_GT(g.degree(hub), 0u);
  const MatchingPlan plan(reorder_for_matching(Pattern::parse("0-1,1-2,2-0")),
                          {});
  std::uint64_t sum = 0;
  for (const VertexId v0 : g.neighbors(hub)) {
    const std::uint64_t expected = recursive_count_seed(g, plan, v0, hub);
    EXPECT_EQ(stmatch_match(g, plan, pinned_config(v0, hub)).count, expected)
        << "v0=" << v0 << " pinned to max-degree hub " << hub;
    sum += expected;
  }
  // Embeddings through the hub at level 1 are exactly the pinned sums.
  std::uint64_t through_hub = 0;
  for (const auto& [v0, v1] : enumerate_seeds(g, plan))
    if (v1 == hub) through_hub += recursive_count_seed(g, plan, v0, v1);
  EXPECT_EQ(sum, through_hub);
}

TEST(SimtSeed, EmptyVertexRangeYieldsZero) {
  const Graph g = make_clique(6);
  const MatchingPlan plan(reorder_for_matching(Pattern::parse("0-1,1-2,2-0")),
                          {});
  EngineConfig cfg;
  cfg.v_begin = 3;
  cfg.v_end = 3;  // nonzero v_begin == v_end: deliberately empty, not "all"
  EXPECT_EQ(stmatch_match(g, plan, cfg).count, 0u);
  cfg.pin_v1 = 0;  // a pin cannot resurrect an empty outer range
  EXPECT_EQ(stmatch_match(g, plan, cfg).count, 0u);
}

TEST(SimtSeed, NonAdjacentPinYieldsZero) {
  // Two disjoint edges: pinning v1 to a vertex not adjacent to v0 must
  // produce no matches.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const MatchingPlan plan(reorder_for_matching(Pattern::parse("0-1")), {});
  EXPECT_EQ(stmatch_match(g, plan, pinned_config(0, 2)).count, 0u);
  EXPECT_EQ(stmatch_match(g, plan, pinned_config(0, 1)).count, 1u);
}

TEST(SimtSeed, SeedSumPartitionsFullCountAcrossConfigs) {
  // The partition property must hold regardless of device shape / unroll.
  Rng rng(0xcafe);
  const Graph g = make_erdos_renyi(22, 0.25, rng());
  const MatchingPlan plan(
      reorder_for_matching(Pattern::parse("0-1,1-2,2-3,3-0")), {});
  const std::uint64_t full = recursive_count_range(g, plan, 0,
                                                   g.num_vertices());
  for (const std::uint32_t unroll : {1u, 4u, 8u}) {
    std::uint64_t sum = 0;
    for (const auto& [v0, v1] : enumerate_seeds(g, plan)) {
      EngineConfig cfg = pinned_config(v0, v1);
      cfg.unroll = unroll;
      sum += stmatch_match(g, plan, cfg).count;
    }
    EXPECT_EQ(sum, full) << "unroll=" << unroll;
  }
}

}  // namespace
}  // namespace stm
