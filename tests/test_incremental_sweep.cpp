// Deep incremental-matching sweep: the full 216-batch differential run that
// used to dominate the default ctest wall clock. Lives in the `slow` CTest
// tier (see tests/CMakeLists.txt) and self-skips unless STMATCH_SLOW=1 is
// set, so `ctest -L slow` plus the environment variable runs it and a plain
// `ctest -j` finishes fast. test_incremental.cpp keeps a short version of
// the same sweep for everyday coverage.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "baselines/reference.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental.hpp"
#include "graph/generators.hpp"
#include "pattern/pattern.hpp"
#include "util/rng.hpp"

namespace stm {
namespace {

bool slow_tests_enabled() {
  const char* flag = std::getenv("STMATCH_SLOW");
  return flag != nullptr && flag[0] == '1';
}

#define STMATCH_REQUIRE_SLOW()                                       \
  if (!slow_tests_enabled())                                         \
  GTEST_SKIP() << "set STMATCH_SLOW=1 to run the deep sweeps"

UpdateBatch random_batch(const GraphSnapshot& snap, Rng& rng, int num_edges) {
  const VertexId n = snap.num_vertices();
  UpdateBatch batch;
  for (int i = 0; i < num_edges; ++i) {
    const auto u = static_cast<VertexId>(rng() % n);
    const auto v = static_cast<VertexId>(rng() % n);
    if (u == v) continue;
    if (snap.has_edge(u, v)) {
      batch.deletions.emplace_back(u, v);
    } else {
      batch.insertions.emplace_back(u, v);
    }
  }
  return batch;
}

/// Same contract as test_incremental.cpp's run_differential: apply random
/// batches, track the count through deltas, check against full
/// re-enumeration after every batch.
int run_differential(const Pattern& pattern, DeltaEngine engine,
                     std::uint64_t seed, int num_batches, int batch_edges) {
  Graph base = make_erdos_renyi(36, 0.15, seed);
  MutableGraph g(base);

  IncrementalOptions opts;
  opts.engine = engine;
  IncrementalMatcher matcher(pattern, opts);

  ReferenceOptions ref;
  ref.induced = opts.plan.induced;
  ref.count_mode = opts.plan.count_mode;

  Rng rng(seed * 7919 + 13);
  std::int64_t count = static_cast<std::int64_t>(
      reference_count(g.snapshot()->view(), pattern, ref));
  int checked = 0;
  for (int i = 0; i < num_batches; ++i) {
    auto from = g.snapshot();
    UpdateBatch batch = random_batch(*from, rng, batch_edges);
    ApplyResult applied = g.apply(batch);
    DeltaMatchResult d = matcher.count_delta(from, applied.applied);
    count += d.delta;
    const std::uint64_t full =
        reference_count(GraphView(applied.snapshot->compacted()), pattern, ref);
    EXPECT_EQ(count, static_cast<std::int64_t>(full))
        << "engine=" << static_cast<int>(engine) << " seed=" << seed
        << " batch=" << i;
    if (count != static_cast<std::int64_t>(full)) return checked;
    ++checked;
  }
  return checked;
}

const char* const kPatterns[] = {
    "0-1,1-2,2-0",                          // triangle
    "0-1,0-2,0-3,1-2,1-3,2-3",              // 4-clique
    "0-1,1-2,2-3,3-0,0-4,1-4",              // house
};
constexpr std::uint64_t kSeeds[] = {1, 2, 3};

TEST(DeepSweep, DeltaCpuEngineFullReenumeration) {
  STMATCH_REQUIRE_SLOW();
  int total = 0;
  for (const char* p : kPatterns)
    for (std::uint64_t seed : kSeeds)
      total += run_differential(Pattern::parse(p), DeltaEngine::kHost, seed,
                                /*num_batches=*/16, /*batch_edges=*/6);
  EXPECT_EQ(total, 3 * 3 * 16);  // 144 batches checked
}

TEST(DeepSweep, DeltaSimtFullReenumeration) {
  STMATCH_REQUIRE_SLOW();
  int total = 0;
  for (const char* p : kPatterns)
    for (std::uint64_t seed : kSeeds)
      total += run_differential(Pattern::parse(p), DeltaEngine::kSimt, seed,
                                /*num_batches=*/8, /*batch_edges=*/6);
  EXPECT_EQ(total, 3 * 3 * 8);  // 72 batches checked (216 with the other run)
}

}  // namespace
}  // namespace stm
