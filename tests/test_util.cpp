// Unit tests for src/util: checks, RNG, bitset, prefix sums, stats, table,
// options, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "util/bitset.hpp"
#include "util/check.hpp"
#include "util/options.hpp"
#include "util/prefix_sum.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace stm {
namespace {

TEST(Check, PassesOnTrue) { EXPECT_NO_THROW(STM_CHECK(1 + 1 == 2)); }

TEST(Check, ThrowsOnFalse) { EXPECT_THROW(STM_CHECK(false), check_error); }

TEST(Check, MessageIncludesExpression) {
  try {
    STM_CHECK_MSG(false, "context " << 42);
    FAIL() << "expected throw";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowZeroBound) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Bitset, SetTestReset) {
  DynamicBitset bs(130);
  EXPECT_EQ(bs.count(), 0u);
  bs.set(0);
  bs.set(64);
  bs.set(129);
  EXPECT_TRUE(bs.test(0));
  EXPECT_TRUE(bs.test(64));
  EXPECT_TRUE(bs.test(129));
  EXPECT_FALSE(bs.test(1));
  EXPECT_EQ(bs.count(), 3u);
  bs.reset(64);
  EXPECT_FALSE(bs.test(64));
  EXPECT_EQ(bs.count(), 2u);
}

TEST(Bitset, AllAnyNone) {
  DynamicBitset bs(70);
  EXPECT_TRUE(bs.none());
  EXPECT_FALSE(bs.any());
  bs.set_all();
  EXPECT_TRUE(bs.all());
  EXPECT_EQ(bs.count(), 70u);
  bs.clear_all();
  EXPECT_TRUE(bs.none());
}

TEST(Bitset, FindFirst) {
  DynamicBitset bs(200);
  EXPECT_EQ(bs.find_first(), 200u);
  bs.set(131);
  EXPECT_EQ(bs.find_first(), 131u);
  bs.set(5);
  EXPECT_EQ(bs.find_first(), 5u);
}

TEST(Bitset, BitwiseOps) {
  DynamicBitset a(100), b(100);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(99);
  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(70));
}

TEST(Bitset, OutOfRangeThrows) {
  DynamicBitset bs(10);
  EXPECT_THROW(bs.test(10), check_error);
  EXPECT_THROW(bs.set(10), check_error);
}

TEST(PrefixSum, Exclusive) {
  std::vector<int> v{3, 1, 4, 1, 5};
  auto s = exclusive_prefix_sum(v);
  EXPECT_EQ(s, (std::vector<int>{0, 3, 4, 8, 9, 14}));
}

TEST(PrefixSum, ExclusiveEmpty) {
  auto s = exclusive_prefix_sum(std::vector<int>{});
  EXPECT_EQ(s, std::vector<int>{0});
}

TEST(PrefixSum, Inclusive) {
  std::vector<int> v{2, 2, 2};
  EXPECT_EQ(inclusive_prefix_sum(v), (std::vector<int>{2, 4, 6}));
}

TEST(PrefixSum, SegmentOf) {
  std::vector<int> sizes{3, 0, 2, 4};
  auto scan = exclusive_prefix_sum(sizes);
  // Flat positions: 0,1,2 -> segment 0; 3,4 -> segment 2; 5..8 -> segment 3.
  EXPECT_EQ(segment_of(scan, 0), 0u);
  EXPECT_EQ(segment_of(scan, 2), 0u);
  EXPECT_EQ(segment_of(scan, 3), 2u);
  EXPECT_EQ(segment_of(scan, 4), 2u);
  EXPECT_EQ(segment_of(scan, 5), 3u);
  EXPECT_EQ(segment_of(scan, 8), 3u);
  EXPECT_THROW(segment_of(scan, 9), check_error);
}

TEST(Stats, Summary) {
  auto s = summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, SummaryOddMedian) {
  EXPECT_DOUBLE_EQ(summarize({5.0, 1.0, 3.0}).median, 3.0);
}

TEST(Stats, SummaryEmpty) {
  auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_THROW(geometric_mean({1.0, 0.0}), check_error);
}

TEST(Stats, Histogram) {
  auto h = histogram({0.5, 1.5, 1.6, 9.9, -5.0, 20.0}, 0.0, 10.0, 10);
  EXPECT_EQ(h[0], 2u);  // 0.5 and clamped -5.0
  EXPECT_EQ(h[1], 2u);
  EXPECT_EQ(h[9], 2u);  // 9.9 and clamped 20.0
}

TEST(Table, RendersAlignedCells) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_count(1234567), "1,234,567");
  EXPECT_EQ(Table::fmt_count(999), "999");
  EXPECT_EQ(Table::fmt_count(0), "0");
}

TEST(Options, ParsesForms) {
  const char* argv[] = {"prog", "--a=1", "--b=2", "--flag", "pos"};
  Options o(5, argv);
  EXPECT_EQ(o.get_int("a", 0), 1);
  EXPECT_EQ(o.get_int("b", 0), 2);
  EXPECT_TRUE(o.get_bool("flag", false));
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "pos");
}

TEST(Options, Fallbacks) {
  const char* argv[] = {"prog"};
  Options o(1, argv);
  EXPECT_EQ(o.get("missing", "dflt"), "dflt");
  EXPECT_EQ(o.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(o.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(o.get_bool("missing", false));
}

TEST(Options, MalformedNumbersThrow) {
  const char* argv[] = {"prog", "--n=abc"};
  Options o(2, argv);
  EXPECT_THROW(o.get_int("n", 0), check_error);
  EXPECT_THROW(o.get_double("n", 0), check_error);
}

TEST(Options, AllowOnlyCatchesTypos) {
  const char* argv[] = {"prog", "--scael=2"};
  Options o(2, argv);
  EXPECT_THROW(o.allow_only({"scale"}), check_error);
  EXPECT_NO_THROW(o.allow_only({"scael"}));
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, ParallelForZero) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.parallel_for(0, [](std::size_t) { FAIL(); }));
}

}  // namespace
}  // namespace stm
