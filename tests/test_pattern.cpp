// Tests for src/pattern: Pattern basics, the 24 queries, matching order,
// automorphisms and symmetry breaking.
#include <gtest/gtest.h>

#include <numeric>

#include "pattern/matching_order.hpp"
#include "pattern/pattern.hpp"
#include "pattern/queries.hpp"
#include "pattern/symmetry.hpp"
#include "util/check.hpp"

namespace stm {
namespace {

TEST(Pattern, ParseAndBasics) {
  Pattern p = Pattern::parse("0-1,1-2,2-0");
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.num_edges(), 3u);
  EXPECT_TRUE(p.has_edge(0, 2));
  EXPECT_TRUE(p.is_connected());
  EXPECT_TRUE(p.is_clique());
  EXPECT_EQ(p.degree(1), 2u);
}

TEST(Pattern, ParseRejectsMalformed) {
  EXPECT_THROW(Pattern::parse("01"), check_error);
  EXPECT_THROW(Pattern::parse(""), check_error);
  EXPECT_THROW(Pattern::parse("0-0"), check_error);  // self loop
}

TEST(Pattern, TooLargeRejected) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 9; ++i) edges.emplace_back(i, (i + 1) % 9);
  EXPECT_THROW(Pattern(9, edges), check_error);
}

TEST(Pattern, Disconnected) {
  Pattern p(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(p.is_connected());
}

TEST(Pattern, Labels) {
  Pattern p = Pattern::parse("0-1,1-2").with_labels({5, 6, 5});
  EXPECT_TRUE(p.is_labeled());
  EXPECT_EQ(p.label(2), 5);
  EXPECT_THROW(Pattern::parse("0-1").with_labels({1}), check_error);
}

TEST(Pattern, RelabeledPreservesStructure) {
  Pattern p = Pattern::parse("0-1,1-2,2-3");  // path
  Pattern q = p.relabeled({3, 2, 1, 0});
  EXPECT_EQ(q.num_edges(), 3u);
  EXPECT_TRUE(q.has_edge(0, 1));  // old 3-2
  EXPECT_TRUE(q.is_connected());
  EXPECT_THROW(p.relabeled({0, 0, 1, 2}), check_error);
}

TEST(Pattern, RelabeledMovesLabels) {
  Pattern p = Pattern::parse("0-1,1-2").with_labels({7, 8, 9});
  Pattern q = p.relabeled({2, 1, 0});
  EXPECT_EQ(q.label(0), 9);
  EXPECT_EQ(q.label(2), 7);
}

TEST(Pattern, ToStringRoundTrip) {
  Pattern p = Pattern::parse("0-1,0-2,1-2,2-3");
  EXPECT_EQ(Pattern::parse(p.to_string()).to_string(), p.to_string());
}

TEST(Queries, CountAndSizes) {
  EXPECT_EQ(num_queries(), 24);
  EXPECT_EQ(queries_of_size(5), (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(queries_of_size(6),
            (std::vector<int>{9, 10, 11, 12, 13, 14, 15, 16}));
  EXPECT_EQ(queries_of_size(7),
            (std::vector<int>{17, 18, 19, 20, 21, 22, 23, 24}));
}

TEST(Queries, AllConnected) {
  for (int i = 1; i <= num_queries(); ++i)
    EXPECT_TRUE(query(i).is_connected()) << query_name(i);
}

TEST(Queries, CliquesAreQ8Q16Q24) {
  for (int i = 1; i <= num_queries(); ++i) {
    const bool expect_clique = (i == 8 || i == 16 || i == 24);
    EXPECT_EQ(query(i).is_clique(), expect_clique) << query_name(i);
  }
}

TEST(Queries, NearCliquesAreOneEdgeShort) {
  for (int i : {7, 15, 23}) {
    Pattern p = query(i);
    EXPECT_EQ(p.num_edges(), p.size() * (p.size() - 1) / 2 - 1)
        << query_name(i);
  }
}

TEST(Queries, AllDistinct) {
  for (int i = 1; i <= num_queries(); ++i)
    for (int j = i + 1; j <= num_queries(); ++j)
      EXPECT_FALSE(query(i) == query(j)) << i << " vs " << j;
}

TEST(Queries, OutOfRangeThrows) {
  EXPECT_THROW(query(0), check_error);
  EXPECT_THROW(query(25), check_error);
}

TEST(Queries, LabeledQueryDeterministic) {
  Pattern a = labeled_query(5), b = labeled_query(5);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a.is_labeled());
  for (std::size_t v = 0; v < a.size(); ++v) EXPECT_LT(a.label(v), 10);
}

TEST(MatchingOrder, ConnectedForAllQueries) {
  for (int i = 1; i <= num_queries(); ++i) {
    Pattern p = query(i);
    auto order = matching_order(p);
    EXPECT_TRUE(is_connected_order(p, order)) << query_name(i);
  }
}

TEST(MatchingOrder, StartsAtMaxDegree) {
  Pattern star_plus = query(11);  // star + edge: vertex 0 is the hub
  EXPECT_EQ(matching_order(star_plus)[0], 0u);
}

TEST(MatchingOrder, ReorderedIsIdentityOrder) {
  for (int i = 1; i <= num_queries(); ++i) {
    Pattern r = reorder_for_matching(query(i));
    std::vector<std::size_t> identity(r.size());
    std::iota(identity.begin(), identity.end(), 0);
    EXPECT_TRUE(is_connected_order(r, identity)) << query_name(i);
  }
}

TEST(MatchingOrder, DisconnectedThrows) {
  Pattern p(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(matching_order(p), check_error);
}

TEST(Symmetry, AutomorphismCounts) {
  EXPECT_EQ(automorphisms(Pattern::parse("0-1")).size(), 2u);           // K2
  EXPECT_EQ(automorphisms(Pattern::parse("0-1,1-2")).size(), 2u);       // path
  EXPECT_EQ(automorphisms(Pattern::parse("0-1,1-2,2-0")).size(), 6u);   // K3
  EXPECT_EQ(automorphisms(query(8)).size(), 120u);                      // K5
  EXPECT_EQ(automorphisms(query(3)).size(), 10u);                       // C5
  // Star S4 (+hub): leaves permute freely.
  EXPECT_EQ(automorphisms(Pattern::parse("0-1,0-2,0-3,0-4")).size(), 24u);
}

TEST(Symmetry, LabelsRestrictAutomorphisms) {
  Pattern tri = Pattern::parse("0-1,1-2,2-0");
  EXPECT_EQ(automorphisms(tri.with_labels({0, 0, 1})).size(), 2u);
  EXPECT_EQ(automorphisms(tri.with_labels({0, 1, 2})).size(), 1u);
}

TEST(Symmetry, IdentityAlwaysPresent) {
  for (int i = 1; i <= num_queries(); ++i) {
    auto autos = automorphisms(query(i));
    bool has_identity = false;
    for (const auto& perm : autos) {
      bool id = true;
      for (std::size_t v = 0; v < perm.size(); ++v) id &= (perm[v] == v);
      has_identity |= id;
    }
    EXPECT_TRUE(has_identity) << query_name(i);
  }
}

TEST(Symmetry, ConstraintsOrientedSmallToLarge) {
  for (int i = 1; i <= num_queries(); ++i) {
    Pattern p = reorder_for_matching(query(i));
    for (const auto& c : symmetry_breaking_constraints(p))
      EXPECT_LT(c.smaller, c.larger) << query_name(i);
  }
}

TEST(Symmetry, CliqueConstraintsFormTotalOrder) {
  Pattern k4 = reorder_for_matching(Pattern::parse("0-1,0-2,0-3,1-2,1-3,2-3"));
  auto constraints = symmetry_breaking_constraints(k4);
  // Stabilizer chain on K4: orbit of 0 is {1,2,3}, of 1 is {2,3}, of 2 is {3}.
  EXPECT_EQ(constraints.size(), 6u);
}

TEST(Symmetry, AsymmetricPatternHasNoConstraints) {
  // Triangle with a 2-path on one corner and a pendant on another: every
  // vertex is structurally distinguishable, so Aut = {id}.
  Pattern p = Pattern::parse("0-1,0-2,1-2,2-3,3-4,1-5");
  EXPECT_EQ(automorphisms(p).size(), 1u);
  EXPECT_TRUE(symmetry_breaking_constraints(p).empty());
}

TEST(Symmetry, TadpoleHasMirrorSymmetry) {
  // q5 (triangle + 2-tail): the two free triangle corners swap.
  EXPECT_EQ(automorphisms(query(5)).size(), 2u);
  EXPECT_EQ(symmetry_breaking_constraints(reorder_for_matching(query(5))).size(),
            1u);
}

}  // namespace
}  // namespace stm
