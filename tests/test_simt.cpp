// Tests for the SIMT substrate: cost model arithmetic, device validation,
// shared-memory accounting.
#include <gtest/gtest.h>

#include "simt/cost_model.hpp"
#include "simt/device.hpp"
#include "util/check.hpp"

namespace stm {
namespace {

TEST(CostModel, SetOpCycles) {
  CostModel cost;
  WarpOpCost op;
  op.waves = 3;
  op.probe_cycles = 17;
  EXPECT_EQ(cost.set_op_cycles(op), 3 * cost.wave_overhead + 17);
}

TEST(CostModel, CopyCyclesRoundUpToWaves) {
  CostModel cost;
  EXPECT_EQ(cost.shared_copy_cycles(0), 0u);
  EXPECT_EQ(cost.shared_copy_cycles(1), cost.shared_copy_per_wave);
  EXPECT_EQ(cost.shared_copy_cycles(32), cost.shared_copy_per_wave);
  EXPECT_EQ(cost.shared_copy_cycles(33), 2 * cost.shared_copy_per_wave);
  EXPECT_EQ(cost.global_copy_cycles(64), 2 * cost.global_copy_per_wave);
}

TEST(CostModel, GlobalTrafficDearerThanShared) {
  CostModel cost;
  EXPECT_GT(cost.global_copy_cycles(1024), cost.shared_copy_cycles(1024));
}

TEST(CostModel, MillisecondConversion) {
  CostModel cost;
  cost.clock_ghz = 2.0;
  EXPECT_DOUBLE_EQ(cost.to_ms(2'000'000), 1.0);
  EXPECT_DOUBLE_EQ(cost.to_ms(0), 0.0);
}

TEST(Device, ValidateAcceptsDefaults) {
  DeviceConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.total_warps(), cfg.num_blocks * cfg.warps_per_block);
}

TEST(Device, ValidateRejectsDegenerate) {
  DeviceConfig cfg;
  cfg.num_blocks = 0;
  EXPECT_THROW(cfg.validate(), check_error);
  cfg = DeviceConfig{};
  cfg.warps_per_block = 0;
  EXPECT_THROW(cfg.validate(), check_error);
  cfg = DeviceConfig{};
  cfg.shared_mem_bytes = 16;
  EXPECT_THROW(cfg.validate(), check_error);
}

TEST(Device, SharedBytesScaleWithNodesAndUnroll) {
  const auto base = stmatch_shared_bytes_per_warp(5, 1, 5);
  const auto more_nodes = stmatch_shared_bytes_per_warp(15, 1, 5);
  const auto more_unroll = stmatch_shared_bytes_per_warp(5, 8, 5);
  EXPECT_GT(more_nodes, base);
  EXPECT_GT(more_unroll, base);
  // Csize dominates: 2 bytes per node per column.
  EXPECT_EQ(more_unroll - base, 2ull * 5 * 7);
}

TEST(Device, PaperScaleConfigurationFits) {
  // Paper §VIII-A: NUM_SETS <= 15, UNROLL 8, queries up to 7 nodes must fit
  // a 48 KB thread block with 8 resident warps.
  const auto per_warp = stmatch_shared_bytes_per_warp(15, 8, 7);
  DeviceConfig cfg;
  EXPECT_LE(per_warp * cfg.warps_per_block, cfg.shared_mem_bytes);
}

TEST(WarpOpCostTest, UtilizationBounds) {
  WarpOpCost c;
  EXPECT_DOUBLE_EQ(c.utilization(), 1.0);  // vacuous
  c.waves = 4;
  c.busy_lane_slots = 4 * kWarpWidth;
  EXPECT_DOUBLE_EQ(c.utilization(), 1.0);
  c.busy_lane_slots = 2 * kWarpWidth;
  EXPECT_DOUBLE_EQ(c.utilization(), 0.5);
}

TEST(WarpOpCostTest, Accumulation) {
  WarpOpCost a, b;
  a.waves = 2;
  a.busy_lane_slots = 40;
  a.probe_cycles = 10;
  a.elements_written = 7;
  b = a;
  b += a;
  EXPECT_EQ(b.waves, 4u);
  EXPECT_EQ(b.busy_lane_slots, 80u);
  EXPECT_EQ(b.probe_cycles, 20u);
  EXPECT_EQ(b.elements_written, 14u);
}

}  // namespace
}  // namespace stm
