// Tests for the recursive executor, host-parallel engine, Dryadic model,
// cuTS/GSI models and multi-device execution.
#include <gtest/gtest.h>

#include "baselines/dryadic.hpp"
#include "baselines/reference.hpp"
#include "baselines/subgraph_centric.hpp"
#include "core/engine.hpp"
#include "core/host_engine.hpp"
#include "core/multi_gpu.hpp"
#include "core/recursive.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/queries.hpp"

namespace stm {
namespace {

Graph test_graph() {
  static const Graph g = make_erdos_renyi(35, 0.2, 99);
  return g;
}

MatchingPlan plan_for(const Pattern& p, PlanOptions opts = {}) {
  return MatchingPlan(reorder_for_matching(p), opts);
}

// ---- recursive executor ----------------------------------------------------

TEST(Recursive, MatchesReferenceAcrossQueries) {
  Graph g = test_graph();
  for (int q = 1; q <= num_queries(); ++q) {
    for (Induced induced : {Induced::kEdge, Induced::kVertex}) {
      MatchingPlan plan = plan_for(query(q), {induced, true,
                                              CountMode::kEmbeddings});
      EXPECT_EQ(recursive_count_range(g, plan, 0, g.num_vertices()),
                reference_count(g, query(q), {induced,
                                              CountMode::kEmbeddings}))
          << query_name(q);
    }
  }
}

TEST(Recursive, MatchesStackEngine) {
  Graph g = make_barabasi_albert(100, 4, 17);
  for (int q : {3, 6, 11, 13}) {
    MatchingPlan plan = plan_for(query(q));
    EXPECT_EQ(recursive_count_range(g, plan, 0, g.num_vertices()),
              stmatch_match(g, plan).count)
        << query_name(q);
  }
}

TEST(Recursive, RangeSplitsSum) {
  Graph g = test_graph();
  MatchingPlan plan = plan_for(query(4));
  const auto whole = recursive_count_range(g, plan, 0, g.num_vertices());
  std::uint64_t parts = recursive_count_range(g, plan, 0, 10) +
                        recursive_count_range(g, plan, 10, 20) +
                        recursive_count_range(g, plan, 20, g.num_vertices());
  EXPECT_EQ(parts, whole);
}

TEST(Recursive, CountersPopulated) {
  Graph g = test_graph();
  MatchingPlan plan = plan_for(query(4));
  RecursiveCounters counters;
  const auto count =
      recursive_count_range(g, plan, 0, g.num_vertices(), &counters);
  EXPECT_GT(counters.scalar_ops, 0u);
  EXPECT_GT(counters.sets_built, 0u);
  EXPECT_EQ(counters.partials[plan.size() - 1], count);
  EXPECT_EQ(counters.partials[0], g.num_vertices());
  // Partial counts shrink no faster than validity allows: every level-l
  // partial extends a level-(l-1) partial.
  for (std::size_t l = 1; l < plan.size(); ++l) {
    if (counters.partials[l] > 0) {
      EXPECT_GT(counters.partials[l - 1], 0u);
    }
  }
}

TEST(Recursive, SeedsCoverEdgeDecomposition) {
  Graph g = test_graph();
  MatchingPlan plan = plan_for(query(5));
  auto seeds = enumerate_seeds(g, plan);
  std::uint64_t total = 0;
  for (auto [v0, v1] : seeds) total += recursive_count_seed(g, plan, v0, v1);
  EXPECT_EQ(total, recursive_count_range(g, plan, 0, g.num_vertices()));
}

TEST(Recursive, InvalidSeedRejected) {
  Graph g = make_path(4);  // 0-1-2-3
  MatchingPlan plan = plan_for(Pattern::parse("0-1,1-2"));
  EXPECT_THROW(recursive_count_seed(g, plan, 0, 3, nullptr), check_error);
}

// ---- host-parallel engine ----------------------------------------------------

TEST(HostEngine, MatchesReference) {
  Graph g = make_barabasi_albert(200, 4, 5);
  for (int q : {1, 4, 10, 13}) {
    MatchingPlan plan = plan_for(query(q));
    HostEngineConfig cfg;
    cfg.num_threads = 4;
    auto result = host_match(g, plan, cfg);
    EXPECT_EQ(result.count, reference_count(g, query(q))) << query_name(q);
    EXPECT_GT(result.stats.scalar_ops, 0u);
    EXPECT_GE(result.stats.engine_ms, 0.0);
  }
}

TEST(HostEngine, ThreadCountInvariant) {
  Graph g = test_graph();
  MatchingPlan plan = plan_for(query(12));
  std::uint64_t expected = 0;
  for (std::size_t threads : {1u, 2u, 7u}) {
    HostEngineConfig cfg;
    cfg.num_threads = threads;
    auto result = host_match(g, plan, cfg);
    if (threads == 1)
      expected = result.count;
    else
      EXPECT_EQ(result.count, expected);
  }
}

TEST(HostEngine, LabeledMatch) {
  Graph g = with_random_labels(make_erdos_renyi(50, 0.25, 3), 4, 11);
  Pattern p = labeled_query(13, 4);
  MatchingPlan plan = plan_for(p);
  HostEngineConfig cfg;
  cfg.num_threads = 3;
  EXPECT_EQ(host_match(g, plan, cfg).count, reference_count(g, p));
}

// ---- Dryadic model -------------------------------------------------------------

TEST(Dryadic, CountMatchesReference) {
  Graph g = test_graph();
  for (int q : {1, 5, 8, 12, 16}) {
    auto result = dryadic_match(g, query(q));
    EXPECT_EQ(result.count, reference_count(g, query(q))) << query_name(q);
    EXPECT_GT(result.sim_ms, 0.0) << query_name(q);
  }
}

TEST(Dryadic, VertexInducedAndLabeled) {
  Graph g = with_random_labels(test_graph(), 4, 2);
  Pattern p = labeled_query(12, 4);
  auto result = dryadic_match(g, p, {Induced::kVertex, true,
                                     CountMode::kEmbeddings});
  EXPECT_EQ(result.count,
            reference_count(g, p, {Induced::kVertex, CountMode::kEmbeddings}));
}

TEST(Dryadic, CodeMotionReducesWork) {
  Graph g = make_barabasi_albert(150, 5, 31);
  DryadicConfig with;
  DryadicConfig without;
  without.code_motion = false;
  // Dense query: shared prefixes make motion pay off (paper: ~3x).
  auto a = dryadic_match(g, query(16), {}, with);
  auto b = dryadic_match(g, query(16), {}, without);
  EXPECT_EQ(a.count, b.count);
  EXPECT_LT(a.total_ops, b.total_ops);
}

TEST(Dryadic, ImbalanceGrowsWithQuerySize) {
  // Paper §III: edge-based distribution degrades for queries > 4 nodes.
  Graph g = make_barabasi_albert(300, 5, 13);
  DryadicConfig cfg;
  cfg.threads = 16;
  auto small = dryadic_match(g, Pattern::parse("0-1,1-2,2-0"), {}, cfg);
  auto large = dryadic_match(g, query(6), {}, cfg);
  EXPECT_GE(large.imbalance, small.imbalance * 0.9);
  EXPECT_GE(large.imbalance, 1.0);
}

TEST(Dryadic, SingleEdgePattern) {
  Graph g = make_cycle(10);
  auto result = dryadic_match(g, Pattern::parse("0-1"));
  EXPECT_EQ(result.count, 20u);
}

TEST(Dryadic, EmptyGraph) {
  Graph g = GraphBuilder(0).build();
  EXPECT_EQ(dryadic_match(g, query(1)).count, 0u);
}

// ---- cuTS / GSI models -----------------------------------------------------------

TEST(Cuts, CountMatchesReference) {
  Graph g = test_graph();
  for (int q : {1, 4, 8, 10}) {
    auto result = cuts_match(g, query(q));
    ASSERT_FALSE(result.out_of_memory) << query_name(q);
    EXPECT_EQ(result.count, reference_count(g, query(q))) << query_name(q);
    EXPECT_GT(result.kernel_launches, 0u);
    EXPECT_GT(result.sim_ms, 0.0);
  }
}

TEST(Cuts, LaunchesScaleWithPatternDepth) {
  Graph g = test_graph();
  auto p5 = cuts_match(g, query(1));
  auto p7 = cuts_match(g, query(17));
  EXPECT_GT(p7.kernel_launches, p5.kernel_launches);
}

TEST(Cuts, RejectsLabeledQueries) {
  EXPECT_THROW(cuts_match(test_graph(), labeled_query(1)), check_error);
}

TEST(Cuts, OutOfMemoryOnTinyBudget) {
  Graph g = make_barabasi_albert(200, 6, 7);
  CutsConfig cfg;
  cfg.device.global_mem_bytes = 256;  // absurdly small
  cfg.max_dfs_chunks = 2;
  auto result = cuts_match(g, query(9), cfg);
  EXPECT_TRUE(result.out_of_memory);
  EXPECT_EQ(result.count, 0u);
}

TEST(Cuts, DfsChunkingAvoidsOomWithinLimit) {
  Graph g = make_barabasi_albert(200, 6, 7);
  CutsConfig tight;
  tight.device.global_mem_bytes = 1 << 16;
  tight.max_dfs_chunks = 1 << 20;
  CutsConfig loose;
  auto tight_result = cuts_match(g, query(9), tight);
  auto loose_result = cuts_match(g, query(9), loose);
  ASSERT_FALSE(tight_result.out_of_memory);
  EXPECT_EQ(tight_result.count, loose_result.count);
  // Chunking costs extra launches.
  EXPECT_GT(tight_result.kernel_launches, loose_result.kernel_launches);
  EXPECT_GT(tight_result.sim_ms, loose_result.sim_ms);
}

TEST(Gsi, CountMatchesReferenceLabeled) {
  Graph g = with_random_labels(test_graph(), 4, 21);
  for (int q : {2, 5, 11}) {
    Pattern p = labeled_query(q, 4);
    auto result = gsi_match(g, p);
    ASSERT_FALSE(result.out_of_memory) << query_name(q);
    EXPECT_EQ(result.count, reference_count(g, p)) << query_name(q);
  }
}

TEST(Gsi, OomWithoutDfsFallback) {
  Graph g = make_barabasi_albert(300, 6, 3);
  GsiConfig cfg;
  cfg.device.global_mem_bytes = 1 << 12;
  auto result = gsi_match(g, query(9), cfg);
  EXPECT_TRUE(result.out_of_memory);
  // cuTS survives the same budget thanks to chunking.
  CutsConfig ccfg;
  ccfg.device.global_mem_bytes = 1 << 12;
  ccfg.max_dfs_chunks = 1 << 24;
  EXPECT_FALSE(cuts_match(g, query(9), ccfg).out_of_memory);
}

TEST(Gsi, SlowerThanCutsOnSameWorkload) {
  // GSI's flat tables + join overhead make it the slower GPU baseline
  // (paper: cuTS dominates GSI).
  Graph g = test_graph();
  auto gsi = gsi_match(g, query(10));
  auto cuts = cuts_match(g, query(10));
  ASSERT_FALSE(gsi.out_of_memory);
  EXPECT_GT(gsi.sim_ms, cuts.sim_ms);
}

TEST(LevelProfileTest, PartialsAreMonotoneUntilPruning) {
  Graph g = test_graph();
  auto profile =
      profile_levels(g, query(8), {Induced::kEdge, false,
                                   CountMode::kEmbeddings});
  EXPECT_EQ(profile.levels, 5u);
  EXPECT_EQ(profile.partials[0], g.num_vertices());
  EXPECT_EQ(profile.count, reference_count(g, query(8)));
}

// ---- multi-device ---------------------------------------------------------------

TEST(MultiGpu, CountInvariantAcrossDeviceCounts) {
  Graph g = make_barabasi_albert(150, 4, 41);
  MatchingPlan plan = plan_for(query(12));
  EngineConfig cfg;
  cfg.device.num_blocks = 4;
  cfg.device.warps_per_block = 4;
  const auto expected = stmatch_match(g, plan, cfg).count;
  for (std::size_t devices : {1u, 2u, 4u}) {
    auto result = stmatch_match_multi_gpu(g, plan, devices, cfg);
    EXPECT_EQ(result.count, expected) << devices;
    EXPECT_EQ(result.per_device.size(), devices);
  }
}

TEST(MultiGpu, MoreDevicesNotSlower) {
  Graph g = make_barabasi_albert(400, 5, 2);
  MatchingPlan plan = plan_for(query(13));
  EngineConfig cfg;
  cfg.device.num_blocks = 4;
  cfg.device.warps_per_block = 4;
  auto one = stmatch_match_multi_gpu(g, plan, 1, cfg);
  auto four = stmatch_match_multi_gpu(g, plan, 4, cfg);
  EXPECT_EQ(one.count, four.count);
  EXPECT_LT(four.sim_ms, one.sim_ms);
}

}  // namespace
}  // namespace stm
