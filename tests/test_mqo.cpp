// Tests for the multi-query standing-query index (src/mqo/, DESIGN.md §16):
// plan-trie construction and pruning, canonical-group deduplication,
// registration churn, and the randomized differential proving indexed
// deltas == per-pattern deltas == full re-enumeration — including the
// prism vs K_{3,3} near-collider and embedding-level stream parity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/reference.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental.hpp"
#include "graph/generators.hpp"
#include "mqo/evaluator.hpp"
#include "mqo/pattern_index.hpp"
#include "mqo/plan_trie.hpp"
#include "pattern/canonical.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/pattern.hpp"
#include "service/service.hpp"
#include "stream/delta_stream.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stm {
namespace {

const char* const kTriangle = "0-1,1-2,2-0";
const char* const kPath3 = "0-1,1-2";
const char* const kFourClique = "0-1,0-2,0-3,1-2,1-3,2-3";
const char* const kPrism = "0-1,1-2,2-0,3-4,4-5,5-3,0-3,1-4,2-5";
const char* const kK33 = "0-3,0-4,0-5,1-3,1-4,1-5,2-3,2-4,2-5";

UpdateBatch random_batch(const GraphSnapshot& snap, Rng& rng, int num_edges) {
  const VertexId n = snap.num_vertices();
  UpdateBatch batch;
  for (int i = 0; i < num_edges; ++i) {
    const auto u = static_cast<VertexId>(rng() % n);
    const auto v = static_cast<VertexId>(rng() % n);
    if (u == v) continue;
    if (snap.has_edge(u, v)) {
      batch.deletions.emplace_back(u, v);
    } else {
      batch.insertions.emplace_back(u, v);
    }
  }
  return batch;
}

TEST(MqoTrie, AnchoredPathIsOrientationInvariant) {
  for (const char* s : {kTriangle, kPath3, kFourClique, kPrism, kK33}) {
    const Pattern p = Pattern::parse(s);
    for (std::size_t a = 0; a < p.size(); ++a) {
      for (std::size_t b = a + 1; b < p.size(); ++b) {
        if (!p.has_edge(a, b)) continue;
        const mqo::AnchoredPath ab = mqo::anchored_path(p, a, b);
        const mqo::AnchoredPath ba = mqo::anchored_path(p, b, a);
        // The step sequence is orientation-invariant (lex-smaller of the
        // two orientations). The perms may differ when the orientations
        // tie — then an automorphism swaps the anchor and both perms are
        // valid images — but each must reconstruct the pattern: position
        // i's mask encodes exactly the pattern edges into the prefix.
        EXPECT_EQ(ab.steps, ba.steps) << s << " anchor " << a << "," << b;
        EXPECT_EQ(ab.steps.size(), p.size());
        for (const mqo::AnchoredPath& path : {ab, ba}) {
          for (std::size_t i = 0; i < p.size(); ++i) {
            for (std::size_t j = 0; j < i; ++j) {
              EXPECT_EQ((path.steps[i].adj_mask >> j) & 1u,
                        p.has_edge(path.perm[i], path.perm[j]) ? 1u : 0u)
                  << s << " anchor " << a << "," << b;
            }
          }
        }
      }
    }
  }
}

TEST(MqoTrie, InsertRemoveRoundTripsToEmpty) {
  mqo::PlanTrie trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.stats().nodes, 0u);
  EXPECT_EQ(trie.stats().shared_prefix_ratio, 0.0);

  const Pattern tri = Pattern::parse(kTriangle);
  std::vector<mqo::TrieNode*> nodes;
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = a + 1; b < 3; ++b) {
      nodes.push_back(trie.insert(mqo::anchored_path(tri, a, b), 0));
    }
  }
  // The triangle's three anchored paths are identical: one chain of three
  // nodes, three terminals on the deepest node.
  EXPECT_EQ(nodes[0], nodes[1]);
  EXPECT_EQ(nodes[1], nodes[2]);
  mqo::TrieStats st = trie.stats();
  EXPECT_EQ(st.nodes, 3u);
  EXPECT_EQ(st.terminals, 3u);
  EXPECT_EQ(st.max_depth, 3u);
  EXPECT_EQ(st.plan_positions, 9u);
  EXPECT_DOUBLE_EQ(st.shared_prefix_ratio, 1.0 - 3.0 / 9.0);
  EXPECT_NE(trie.describe().find("terminals=3"), std::string::npos);

  trie.remove_terminals(nodes[0], 0);
  EXPECT_TRUE(trie.empty());
  st = trie.stats();
  EXPECT_EQ(st.nodes, 0u);
  EXPECT_EQ(st.terminals, 0u);
}

TEST(MqoTrie, TrianglePrefixSharedWithFourClique) {
  mqo::PatternIndex index;
  index.add(1, Pattern::parse(kTriangle), {}, false);
  const std::size_t tri_nodes = index.stats().trie.nodes;
  EXPECT_EQ(tri_nodes, 3u);
  index.add(2, Pattern::parse(kFourClique), {}, false);
  const mqo::TrieStats st = index.stats().trie;
  // Every anchored 4-clique order starts with a triangle, so adding the
  // clique reuses the triangle chain and appends exactly one node.
  EXPECT_EQ(st.nodes, tri_nodes + 1);
  EXPECT_EQ(st.max_depth, 4u);
  EXPECT_GT(st.shared_prefix_ratio, 0.5);
}

TEST(MqoIndex, IsomorphicRegistrationsShareOneGroup) {
  mqo::PatternIndex index;
  const Pattern tri = Pattern::parse(kTriangle);
  index.add(1, tri, {}, false);
  const mqo::TrieStats alone = index.stats().trie;
  // Relabelings of the same pattern collapse onto the same canonical group:
  // no new trie state at all.
  index.add(2, tri.relabeled({1, 2, 0}), {}, false);
  index.add(3, tri.relabeled({2, 0, 1}), {}, false);
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(index.num_groups(), 1u);
  EXPECT_EQ(index.stats().trie.nodes, alone.nodes);
  EXPECT_EQ(index.stats().trie.terminals, alone.terminals);
  EXPECT_EQ(index.automorphisms(1), 6u);
  EXPECT_EQ(index.automorphisms(2), 6u);

  // any_member answers across relabelings; removal keeps the group alive
  // until the last member leaves.
  EXPECT_TRUE(index.any_member(tri.relabeled({2, 1, 0})).has_value());
  EXPECT_TRUE(index.remove(1));
  EXPECT_TRUE(index.remove(2));
  EXPECT_EQ(index.num_groups(), 1u);
  EXPECT_TRUE(index.remove(3));
  EXPECT_EQ(index.num_groups(), 0u);
  EXPECT_EQ(index.stats().trie.nodes, 0u);
  EXPECT_FALSE(index.remove(3));
  EXPECT_FALSE(index.any_member(tri).has_value());
}

TEST(MqoIndex, RejectsWhatAnchoredEnumerationCannotServe) {
  mqo::PatternIndex index;
  PlanOptions vertex_induced;
  vertex_induced.induced = Induced::kVertex;
  EXPECT_THROW(index.add(1, Pattern::parse(kTriangle), vertex_induced, false),
               check_error);
  EXPECT_THROW(index.add(1, Pattern(1, {}), {}, false), check_error);
  EXPECT_TRUE(index.empty());
}

TEST(MqoIndex, GroupSlotsAreReusedUnderChurn) {
  mqo::PatternIndex index;
  for (int round = 0; round < 8; ++round) {
    const std::uint64_t base = static_cast<std::uint64_t>(round) * 10 + 1;
    index.add(base, Pattern::parse(kTriangle), {}, false);
    index.add(base + 1, Pattern::parse(kPath3), {}, false);
    index.add(base + 2, Pattern::parse(kFourClique), {}, false);
    EXPECT_LE(index.num_group_slots(), 3u) << "slots leak under churn";
    EXPECT_TRUE(index.remove(base));
    EXPECT_TRUE(index.remove(base + 1));
    EXPECT_TRUE(index.remove(base + 2));
  }
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.stats().trie.nodes, 0u);
}

/// Registers `patterns` into an index (ids 1..n, kEmbeddings, collecting)
/// and runs `num_batches` random batches, asserting after each that every
/// registration's indexed delta equals its per-pattern IncrementalMatcher
/// delta, its DeltaStreamer embedding lists, and cumulative full
/// re-enumeration.
void run_mqo_differential(const std::vector<Pattern>& patterns,
                          std::uint64_t seed, int num_batches,
                          int batch_edges, VertexId n = 32,
                          double density = 0.12) {
  Graph base = make_erdos_renyi(n, density, seed);
  MutableGraph g(base);

  mqo::PatternIndex index;
  std::vector<std::unique_ptr<IncrementalMatcher>> matchers;
  std::vector<std::unique_ptr<stream::DeltaStreamer>> streamers;
  std::vector<std::int64_t> counts;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    index.add(i + 1, patterns[i], {}, true);
    matchers.push_back(std::make_unique<IncrementalMatcher>(patterns[i]));
    streamers.push_back(std::make_unique<stream::DeltaStreamer>(
        patterns[i], PlanOptions{}));
    counts.push_back(static_cast<std::int64_t>(
        reference_count(g.snapshot()->view(), patterns[i])));
  }
  const mqo::MultiQueryEvaluator evaluator(index);

  Rng rng(seed * 6151 + 7);
  for (int b = 0; b < num_batches; ++b) {
    auto from = g.snapshot();
    const ApplyResult applied = g.apply(random_batch(*from, rng, batch_edges));
    const mqo::EvalResult res = evaluator.evaluate(from, applied.applied);
    const Graph compacted = applied.snapshot->compacted();
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      const mqo::QueryDelta qd = index.project(i + 1, res);
      const DeltaMatchResult d = matchers[i]->count_delta(from, applied.applied);
      EXPECT_EQ(qd.delta, d.delta)
          << "indexed vs per-pattern, pattern " << i << " batch " << b
          << " seed " << seed;
      stream::DeltaBatch db = streamers[i]->delta(from, applied.applied);
      EXPECT_EQ(qd.added, db.added)
          << "added embeddings, pattern " << i << " batch " << b;
      EXPECT_EQ(qd.retracted, db.retracted)
          << "retracted embeddings, pattern " << i << " batch " << b;
      counts[i] += qd.delta;
      EXPECT_EQ(counts[i], static_cast<std::int64_t>(reference_count(
                               GraphView(compacted), patterns[i])))
          << "cumulative vs full, pattern " << i << " batch " << b;
    }
  }
}

TEST(MqoDifferential, MixedPatternSetMatchesPerPatternAndFull) {
  run_mqo_differential({Pattern::parse(kTriangle), Pattern::parse(kPath3),
                        Pattern::parse(kFourClique),
                        Pattern::parse("0-1,1-2,2-3"),
                        Pattern::parse("0-1,0-2,0-3")},
                       11, 6, 6);
}

TEST(MqoDifferential, CanonicalDuplicatesStayBitIdentical) {
  const Pattern tri = Pattern::parse(kTriangle);
  const Pattern square = Pattern::parse("0-1,1-2,2-3,3-0");
  run_mqo_differential({tri, tri.relabeled({1, 2, 0}), square,
                        square.relabeled({3, 1, 0, 2}),
                        tri.relabeled({2, 0, 1})},
                       23, 6, 6);
}

TEST(MqoDifferential, PrismVsK33NearCollider) {
  // Prism and K_{3,3}: both 6 vertices, 9 edges, 3-regular — canonically
  // distinct, but every anchored prefix agrees deep into the walk. The trie
  // must keep them on separate suffixes and the deltas exact.
  const Pattern prism = Pattern::parse(kPrism);
  const Pattern k33 = Pattern::parse(kK33);
  ASSERT_NE(canonical_form(prism), canonical_form(k33));
  run_mqo_differential({prism, k33, prism.relabeled({3, 4, 5, 0, 1, 2}),
                        k33.relabeled({1, 2, 0, 4, 5, 3})},
                       5, 4, 5, 20, 0.25);
}

TEST(MqoDifferential, LabeledPatternsFilterExactly) {
  Graph base = make_erdos_renyi(28, 0.15, 99);
  std::vector<Label> labels(base.num_vertices());
  Rng label_rng(4242);
  for (auto& l : labels) l = static_cast<Label>(label_rng.next_below(3));
  Graph labeled = base.with_labels(std::move(labels));
  MutableGraph g(labeled);

  const Pattern tri = Pattern::parse(kTriangle);
  const std::vector<Pattern> patterns{
      tri.with_labels({0, 1, 2}), tri.with_labels({0, 1, 2}).relabeled({2, 0, 1}),
      tri.with_labels({1, 1, 1}), tri, Pattern::parse(kPath3).with_labels({0, 2, 0})};
  mqo::PatternIndex index;
  std::vector<std::unique_ptr<IncrementalMatcher>> matchers;
  std::vector<std::int64_t> counts;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    index.add(i + 1, patterns[i], {}, false);
    matchers.push_back(std::make_unique<IncrementalMatcher>(patterns[i]));
    counts.push_back(static_cast<std::int64_t>(
        reference_count(g.snapshot()->view(), patterns[i])));
  }
  const mqo::MultiQueryEvaluator evaluator(index);
  Rng rng(555);
  for (int b = 0; b < 5; ++b) {
    auto from = g.snapshot();
    const ApplyResult applied = g.apply(random_batch(*from, rng, 6));
    const mqo::EvalResult res = evaluator.evaluate(from, applied.applied);
    const Graph compacted = applied.snapshot->compacted();
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      const mqo::QueryDelta qd = index.project(i + 1, res);
      EXPECT_EQ(qd.delta, matchers[i]->count_delta(from, applied.applied).delta)
          << "pattern " << i << " batch " << b;
      counts[i] += qd.delta;
      EXPECT_EQ(counts[i], static_cast<std::int64_t>(reference_count(
                               GraphView(compacted), patterns[i])))
          << "pattern " << i << " batch " << b;
    }
  }
}

TEST(MqoDifferential, UniqueSubgraphModeDividesByAutomorphisms) {
  Graph base = make_erdos_renyi(26, 0.18, 31);
  MutableGraph g(base);
  PlanOptions unique;
  unique.count_mode = CountMode::kUniqueSubgraphs;

  const std::vector<Pattern> patterns{Pattern::parse(kTriangle),
                                      Pattern::parse(kFourClique),
                                      Pattern::parse(kPath3)};
  mqo::PatternIndex index;
  std::vector<std::unique_ptr<IncrementalMatcher>> matchers;
  std::vector<std::int64_t> counts;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    index.add(i + 1, patterns[i], unique, false);
    IncrementalOptions opts;
    opts.plan = unique;
    matchers.push_back(
        std::make_unique<IncrementalMatcher>(patterns[i], opts));
    counts.push_back(static_cast<std::int64_t>(reference_count(
        g.snapshot()->view(), patterns[i],
        {Induced::kEdge, CountMode::kUniqueSubgraphs})));
  }
  const mqo::MultiQueryEvaluator evaluator(index);
  Rng rng(808);
  for (int b = 0; b < 5; ++b) {
    auto from = g.snapshot();
    const ApplyResult applied = g.apply(random_batch(*from, rng, 6));
    const mqo::EvalResult res = evaluator.evaluate(from, applied.applied);
    const Graph compacted = applied.snapshot->compacted();
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      const mqo::QueryDelta qd = index.project(i + 1, res);
      EXPECT_EQ(qd.delta, matchers[i]->count_delta(from, applied.applied).delta);
      counts[i] += qd.delta;
      EXPECT_EQ(counts[i],
                static_cast<std::int64_t>(reference_count(
                    GraphView(compacted), patterns[i],
                    {Induced::kEdge, CountMode::kUniqueSubgraphs})))
          << "pattern " << i << " batch " << b;
    }
  }
}

TEST(MqoChurn, DeregistrationNeverPerturbsOtherQueries) {
  Graph base = make_erdos_renyi(30, 0.14, 77);
  MutableGraph g(base);
  const Pattern tri = Pattern::parse(kTriangle);
  const Pattern watched = Pattern::parse(kFourClique);

  mqo::PatternIndex index;
  index.add(1, watched, {}, false);
  IncrementalMatcher watched_matcher(watched);

  Rng rng(1234);
  std::uint64_t next_id = 100;
  for (int b = 0; b < 8; ++b) {
    // Churn around the watched query: add/remove duplicate triangles and
    // paths between batches.
    index.add(next_id++, tri.relabeled({1, 2, 0}), {}, false);
    index.add(next_id++, tri, {}, false);
    index.add(next_id++, Pattern::parse(kPath3), {}, false);
    if (b % 2 == 0) {
      EXPECT_TRUE(index.remove(next_id - 2));
      EXPECT_TRUE(index.remove(next_id - 3));
    }
    auto from = g.snapshot();
    const ApplyResult applied = g.apply(random_batch(*from, rng, 5));
    const mqo::MultiQueryEvaluator evaluator(index);
    const mqo::EvalResult res = evaluator.evaluate(from, applied.applied);
    EXPECT_EQ(index.project(1, res).delta,
              watched_matcher.count_delta(from, applied.applied).delta)
        << "batch " << b;
  }
  // Drain the churned ids; only the watched registration must remain, with
  // exactly its own trie nodes.
  for (std::uint64_t id = 100; id < next_id; ++id) index.remove(id);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.num_groups(), 1u);
  const mqo::TrieStats st = index.stats().trie;
  mqo::PatternIndex fresh;
  fresh.add(1, watched, {}, false);
  EXPECT_EQ(st.nodes, fresh.stats().trie.nodes) << "orphan trie nodes";
  EXPECT_EQ(st.terminals, fresh.stats().trie.terminals);
}

TEST(MqoChurn, EmptyIndexAndSinglePatternDegeneratePaths) {
  Graph base = make_erdos_renyi(24, 0.15, 5);
  MutableGraph g(base);
  mqo::PatternIndex index;
  const mqo::MultiQueryEvaluator evaluator(index);

  auto from = g.snapshot();
  Rng rng(42);
  const ApplyResult applied = g.apply(random_batch(*from, rng, 5));
  // Empty index: a well-formed, all-zero result.
  mqo::EvalResult res = evaluator.evaluate(from, applied.applied);
  EXPECT_EQ(res.groups.size(), 0u);
  EXPECT_EQ(res.seed_walks, 0u);

  // Single registration: the trie degenerates to one pattern's plans and
  // still matches the per-pattern matcher (including an edge-only pattern,
  // whose anchored plans have no recursion levels at all).
  const Pattern edge = Pattern::parse("0-1");
  index.add(7, edge, {}, false);
  IncrementalMatcher matcher(edge);
  from = g.snapshot();
  const ApplyResult applied2 = g.apply(random_batch(*from, rng, 4));
  res = evaluator.evaluate(from, applied2.applied);
  EXPECT_EQ(index.project(7, res).delta,
            matcher.count_delta(from, applied2.applied).delta);
}

SessionConfig indexed_cfg() {
  SessionConfig cfg;
  cfg.standing_index = true;
  return cfg;
}

/// Brute-force embedding list in original-pattern vertex order (the
/// reference enumerator reports plan-order mappings), sorted.
std::vector<Embedding> reference_embeddings(GraphView g, const Pattern& p) {
  const std::vector<std::size_t> order = matching_order(p);
  std::vector<Embedding> ref;
  std::vector<VertexId> orig(p.size());
  reference_enumerate(g, p, {},
                      [&](const std::vector<VertexId>& m) {
                        for (std::size_t i = 0; i < order.size(); ++i)
                          orig[order[i]] = m[i];
                        ref.push_back(orig);
                      });
  std::sort(ref.begin(), ref.end());
  return ref;
}

TEST(MqoSession, IndexedSessionMatchesPerPatternSession) {
  const Graph base = make_erdos_renyi(32, 0.14, 13);
  GraphSession indexed(base, indexed_cfg());
  GraphSession loop(base);

  // A duplicate-heavy mix: two relabeled triangles, a path, a 4-clique.
  const Pattern tri = Pattern::parse(kTriangle);
  const std::vector<Pattern> patterns{tri, tri.relabeled({1, 2, 0}),
                                      Pattern::parse(kPath3),
                                      Pattern::parse(kFourClique)};
  std::vector<std::uint64_t> indexed_ids, loop_ids;
  for (const Pattern& p : patterns) {
    StandingQueryConfig cfg;
    cfg.pattern = p;
    indexed_ids.push_back(indexed.register_standing_query(cfg));
    loop_ids.push_back(loop.register_standing_query(cfg));
  }
  // Three queries, two canonical groups: the relabeled triangle rode its
  // sibling's baseline and shares the triangle's trie chain.
  EXPECT_EQ(indexed.metrics().gauge("standing_patterns").value(), 3.0);
  const mqo::IndexStats st = indexed.standing_index_stats();
  EXPECT_EQ(st.registrations, 4u);
  EXPECT_EQ(st.groups, 3u);
  EXPECT_EQ(indexed.metrics().gauge("trie_nodes").value(),
            static_cast<double>(st.trie.nodes));
  EXPECT_GT(indexed.metrics().gauge("shared_prefix_ratio").value(), 0.0);

  Rng rng(606);
  int applied = 0;
  for (int b = 0; b < 6; ++b) {
    const UpdateBatch batch = random_batch(*indexed.snapshot(), rng, 5);
    const UpdateOutcome oi = indexed.apply_updates(batch);
    const UpdateOutcome ol = loop.apply_updates(batch);
    ASSERT_TRUE(oi.ok());
    ASSERT_TRUE(ol.ok());
    if (oi.applied.empty()) continue;
    ++applied;
    ASSERT_EQ(oi.updates.size(), patterns.size());
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      const auto ii = indexed.standing_query(indexed_ids[i]);
      const auto li = loop.standing_query(loop_ids[i]);
      ASSERT_TRUE(ii.has_value() && li.has_value());
      EXPECT_EQ(ii->count, li->count)
          << "indexed vs per-pattern, pattern " << i << " batch " << b;
      EXPECT_EQ(ii->count, reference_count(indexed.snapshot()->view(),
                                           patterns[i], {}));
    }
  }
  ASSERT_GT(applied, 0);
  EXPECT_EQ(indexed.metrics()
                .histogram("indexed_delta_latency_ms")
                .snapshot()
                .count,
            static_cast<std::uint64_t>(applied));

  // Unregistering everything drains the trie and the gauges.
  for (const std::uint64_t id : indexed_ids) {
    EXPECT_TRUE(indexed.unregister_standing_query(id));
  }
  EXPECT_EQ(indexed.metrics().gauge("standing_patterns").value(), 0.0);
  EXPECT_EQ(indexed.metrics().gauge("trie_nodes").value(), 0.0);
  EXPECT_EQ(indexed.standing_index_stats().trie.nodes, 0u);
}

TEST(MqoSession, SiblingBaselineSkipsFullEnumeration) {
  GraphSession session(make_erdos_renyi(30, 0.15, 44), indexed_cfg());
  StandingQueryConfig cfg;
  cfg.pattern = Pattern::parse(kTriangle);
  const std::uint64_t first = session.register_standing_query(cfg);

  StandingQueryConfig dup;
  dup.pattern = cfg.pattern.relabeled({2, 0, 1});
  const std::uint64_t second = session.register_standing_query(dup);

  const auto a = session.standing_query(first);
  const auto b = session.standing_query(second);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->count, b->count);
  EXPECT_EQ(b->full_ms, 0.0) << "duplicate should ride the sibling baseline";
  EXPECT_EQ(b->count,
            reference_count(session.snapshot()->view(), dup.pattern, {}));

  // And the shared count stays exact for both under updates.
  Rng rng(777);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        session.apply_updates(random_batch(*session.snapshot(), rng, 5)).ok());
  }
  EXPECT_EQ(session.standing_query(first)->count,
            reference_count(session.snapshot()->view(), cfg.pattern, {}));
  EXPECT_EQ(session.standing_query(second)->count,
            session.standing_query(first)->count);
}

TEST(MqoSession, OnDeltaStreamsExactEmbeddings) {
  const Graph base = make_erdos_renyi(28, 0.15, 71);
  GraphSession session(base, indexed_cfg());

  // Maintain the full embedding set from the stream; it must track full
  // re-enumeration exactly.
  std::vector<Embedding> live =
      reference_embeddings(GraphView(base), Pattern::parse(kTriangle));

  StandingQueryConfig cfg;
  cfg.pattern = Pattern::parse(kTriangle);
  std::int64_t stream_delta_sum = 0;
  cfg.on_delta = [&](const StandingQueryDelta& d) {
    for (const Embedding& e : d.retracted) {
      const auto it = std::lower_bound(live.begin(), live.end(), e);
      ASSERT_TRUE(it != live.end() && *it == e) << "retracted unknown match";
      live.erase(it);
    }
    for (const Embedding& e : d.added) {
      live.insert(std::lower_bound(live.begin(), live.end(), e), e);
    }
    stream_delta_sum += static_cast<std::int64_t>(d.added.size()) -
                        static_cast<std::int64_t>(d.retracted.size());
  };
  const std::uint64_t id = session.register_standing_query(cfg);

  Rng rng(31415);
  for (int b = 0; b < 6; ++b) {
    ASSERT_TRUE(
        session.apply_updates(random_batch(*session.snapshot(), rng, 5)).ok());
    ASSERT_EQ(live,
              reference_embeddings(session.snapshot()->view(), cfg.pattern))
        << "batch " << b;
  }
  const auto info = session.standing_query(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(static_cast<std::int64_t>(info->count),
            static_cast<std::int64_t>(
                reference_count(GraphView(base), cfg.pattern, {})) +
                stream_delta_sum);
}

TEST(MqoSession, RejectsWhatTheLoopRejects) {
  GraphSession session(make_erdos_renyi(20, 0.2, 2), indexed_cfg());
  StandingQueryConfig cfg;
  cfg.pattern = Pattern::parse(kPath3);
  cfg.plan.induced = Induced::kVertex;
  EXPECT_THROW(session.register_standing_query(cfg), check_error);

  StandingQueryConfig bad_delta;
  bad_delta.pattern = Pattern::parse(kTriangle);
  bad_delta.plan.count_mode = CountMode::kUniqueSubgraphs;
  bad_delta.on_delta = [](const StandingQueryDelta&) {};
  EXPECT_THROW(session.register_standing_query(bad_delta), check_error);

  // Failed registrations leave no trace in the index.
  EXPECT_EQ(session.standing_index_stats().registrations, 0u);
  EXPECT_EQ(session.standing_index_stats().trie.nodes, 0u);
}

TEST(MqoSession, UniqueSubgraphModeMatchesLoopSession) {
  const Graph base = make_erdos_renyi(26, 0.18, 17);
  GraphSession indexed(base, indexed_cfg());
  GraphSession loop(base);
  StandingQueryConfig cfg;
  cfg.pattern = Pattern::parse(kTriangle);
  cfg.plan.count_mode = CountMode::kUniqueSubgraphs;
  const std::uint64_t ii = indexed.register_standing_query(cfg);
  const std::uint64_t li = loop.register_standing_query(cfg);

  Rng rng(2718);
  for (int b = 0; b < 5; ++b) {
    const UpdateBatch batch = random_batch(*indexed.snapshot(), rng, 5);
    ASSERT_TRUE(indexed.apply_updates(batch).ok());
    ASSERT_TRUE(loop.apply_updates(batch).ok());
    EXPECT_EQ(indexed.standing_query(ii)->count,
              loop.standing_query(li)->count)
        << "batch " << b;
  }
  EXPECT_EQ(indexed.standing_query(ii)->count,
            reference_count(indexed.snapshot()->view(), cfg.pattern,
                            {Induced::kEdge, CountMode::kUniqueSubgraphs}));
}

}  // namespace
}  // namespace stm
