// Tests of the conformance harness itself: generator determinism, oracle
// agreement on known-good engines, metamorphic relations, sabotage-mode
// detection, minimizer behavior, and .repro round-trips.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>

#include "pattern/canonical.hpp"
#include "pattern/matching_order.hpp"
#include "setops/simd.hpp"
#include "testing/metamorphic.hpp"
#include "testing/minimize.hpp"
#include "testing/oracle.hpp"
#include "testing/repro.hpp"
#include "testing/seed.hpp"
#include "testing/workload.hpp"
#include "util/check.hpp"

namespace stm {
namespace {

using harness::check_metamorphic;
using harness::derive_seed;
using harness::from_repro;
using harness::MetamorphicReport;
using harness::minimize;
using harness::OracleReport;
using harness::random_case;
using harness::run_oracle;
using harness::TestCase;
using harness::to_repro;
using harness::WorkloadOptions;

/// RAII guard for the sabotage / seed environment hooks.
class EnvVarGuard {
 public:
  EnvVarGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~EnvVarGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

// ---------------------------------------------------------------------------
// Seeds and generators
// ---------------------------------------------------------------------------

TEST(HarnessSeed, EnvOverridesFallback) {
  {
    EnvVarGuard guard("STMATCH_FUZZ_SEED", "12345");
    EXPECT_EQ(harness::base_seed(7), 12345u);
  }
  {
    EnvVarGuard guard("STMATCH_FUZZ_SEED", "0xff");
    EXPECT_EQ(harness::base_seed(7), 255u);
  }
  EXPECT_EQ(harness::base_seed(7), 7u);  // unset: fallback
  {
    EnvVarGuard guard("STMATCH_FUZZ_SEED", "not-a-number");
    EXPECT_THROW(harness::base_seed(7), check_error);
  }
}

TEST(HarnessSeed, DerivedStreamsAreDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 256; ++stream)
    seen.insert(derive_seed(42, stream));
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_NE(derive_seed(42, 0), derive_seed(43, 0));
}

TEST(HarnessWorkload, SameSeedSameCaseBitForBit) {
  for (std::uint64_t seed : {1ull, 99ull, 0xdeadbeefull}) {
    const TestCase a = random_case(seed);
    const TestCase b = random_case(seed);
    // to_repro serializes every field, so equal text == equal case.
    EXPECT_EQ(to_repro(a), to_repro(b)) << "seed " << seed;
  }
}

TEST(HarnessWorkload, GeneratedCasesAreWellFormed) {
  WorkloadOptions opts;
  std::set<harness::GraphFamily> families;
  for (std::uint64_t seed = 0; seed < 80; ++seed) {
    const TestCase c = random_case(derive_seed(5, seed), opts);
    families.insert(c.family);
    EXPECT_TRUE(c.pattern.is_connected()) << harness::describe(c);
    EXPECT_GE(c.pattern.size(), 2u);
    EXPECT_LE(c.pattern.size(), opts.max_pattern_size);
    EXPECT_LE(c.graph.num_vertices(), opts.max_vertices);
    if (c.pattern.is_labeled()) {
      EXPECT_TRUE(c.graph.is_labeled())
          << "labeled pattern requires a labeled graph: "
          << harness::describe(c);
    }
    // Plans must compile for every generated pattern (connectivity holds).
    EXPECT_NO_THROW(MatchingPlan(reorder_for_matching(c.pattern), c.plan));
  }
  // 80 draws cover every family with overwhelming probability.
  EXPECT_EQ(families.size(), harness::kNumGraphFamilies);
}

TEST(HarnessWorkload, IsaLaneSamplesEveryChoice) {
  // The ISA knob rides its own derived stream, so a modest seed sweep must
  // hit all four choices — including levels this machine may not support
  // (generation is machine-independent; the oracle does the degrading).
  std::set<simd::IsaChoice> seen;
  for (std::uint64_t seed = 0; seed < 64; ++seed)
    seen.insert(random_case(derive_seed(11, seed)).forced_isa);
  EXPECT_EQ(seen.size(), 4u);
}

TEST(HarnessWorkload, MqoLaneSamplesDuplicatesAndNearColliders) {
  // The mqo knob rides its own derived stream; a seed sweep must produce
  // empty and non-empty pattern sets, canonical-isomorphic duplicates of
  // the case pattern, and the prism / K_{3,3} near-collider pair.
  const std::string prism =
      canonical_form(Pattern::parse("0-1,1-2,2-0,3-4,4-5,5-3,0-3,1-4,2-5"));
  const std::string k33 =
      canonical_form(Pattern::parse("0-3,0-4,0-5,1-3,1-4,1-5,2-3,2-4,2-5"));
  bool saw_empty = false, saw_duplicate = false;
  bool saw_prism = false, saw_k33 = false;
  for (std::uint64_t seed = 0; seed < 96; ++seed) {
    const TestCase c = random_case(derive_seed(0x301, seed));
    if (c.mqo_patterns.empty()) saw_empty = true;
    const std::string own = canonical_form(c.pattern);
    for (const Pattern& p : c.mqo_patterns) {
      EXPECT_TRUE(p.is_connected());
      EXPECT_GE(p.size(), 2u);
      if (!c.graph.is_labeled()) {
        EXPECT_FALSE(p.is_labeled());
      }
      const std::string canon = canonical_form(p);
      if (canon == own) saw_duplicate = true;
      if (canon == prism) saw_prism = true;
      if (canon == k33) saw_k33 = true;
    }
  }
  EXPECT_TRUE(saw_empty);
  EXPECT_TRUE(saw_duplicate);
  EXPECT_TRUE(saw_prism);
  EXPECT_TRUE(saw_k33);
}

TEST(HarnessWorkload, FamilyNamesRoundTrip) {
  for (std::size_t f = 0; f < harness::kNumGraphFamilies; ++f) {
    const auto family = static_cast<harness::GraphFamily>(f);
    EXPECT_EQ(harness::graph_family_from_string(harness::to_string(family)),
              family);
  }
  EXPECT_THROW(harness::graph_family_from_string("nonsense"), check_error);
}

// ---------------------------------------------------------------------------
// Differential oracle
// ---------------------------------------------------------------------------

TEST(HarnessOracle, EnginesAgreeAcrossSeeds) {
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    const TestCase c = random_case(derive_seed(0xacc, trial));
    const OracleReport report = run_oracle(c);
    EXPECT_TRUE(report.agreed)
        << harness::describe(c) << "\n" << report.describe();
  }
}

TEST(HarnessOracle, SkipsIncrementalWhenInapplicable) {
  TestCase c = random_case(3);
  c.plan.induced = Induced::kVertex;  // incremental rejects vertex-induced
  const OracleReport report = run_oracle(c);
  bool incremental_ran = false;
  for (const auto& e : report.counts)
    if (e.engine == harness::EngineKind::kIncremental) incremental_ran = true;
  EXPECT_FALSE(incremental_ran);
  EXPECT_TRUE(report.agreed) << report.describe();
}

TEST(HarnessOracle, MqoLaneVotesAcrossSeeds) {
  // The multi-query lane must actually run (not be perpetually skipped) and
  // agree over a seed sweep, including cases whose sampled pattern sets are
  // duplicate-heavy.
  int voted = 0, with_extras = 0;
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    const TestCase c = random_case(derive_seed(0x3901, trial));
    const OracleReport report = run_oracle(c);
    EXPECT_TRUE(report.agreed)
        << harness::describe(c) << "\n" << report.describe();
    for (const auto& e : report.counts) {
      if (e.engine != harness::EngineKind::kMqo) continue;
      ++voted;
      EXPECT_EQ(e.count, report.expected) << harness::describe(c);
      if (!c.mqo_patterns.empty()) ++with_extras;
    }
  }
  EXPECT_GT(voted, 0) << "mqo lane never ran in 30 trials";
  EXPECT_GT(with_extras, 0) << "mqo lane never saw a non-trivial pattern set";
}

TEST(HarnessOracle, DetectsSabotagedHostEngine) {
  EnvVarGuard guard("STMATCH_FUZZ_SABOTAGE", "host_off_by_one");
  // Find a case with a nonzero count (the sabotage only fires then).
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    const TestCase c = random_case(derive_seed(0x5ab0, trial));
    const OracleReport report = run_oracle(c);
    if (report.expected == 0) continue;
    EXPECT_FALSE(report.agreed)
        << "off-by-one host engine must disagree:\n" << report.describe();
    return;
  }
  FAIL() << "no case with a nonzero count in 50 trials";
}

// ---------------------------------------------------------------------------
// Metamorphic relations
// ---------------------------------------------------------------------------

TEST(HarnessMetamorphic, RelationsHoldOnHealthyEngines) {
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    const std::uint64_t seed = derive_seed(0x3e7a, trial);
    const TestCase c = random_case(seed);
    const MetamorphicReport report = check_metamorphic(c, seed);
    EXPECT_TRUE(report.ok())
        << harness::describe(c) << "\n" << report.describe();
    EXPECT_GE(report.checked, 5u);  // at least the unconditional relations
  }
}

TEST(HarnessMetamorphic, ReportIsReproducible) {
  const TestCase c = random_case(11);
  const MetamorphicReport a = check_metamorphic(c, 77);
  const MetamorphicReport b = check_metamorphic(c, 77);
  EXPECT_EQ(a.checked, b.checked);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(HarnessMetamorphic, AdditivityCatchesOffByOneCounter) {
  EnvVarGuard guard("STMATCH_FUZZ_SABOTAGE", "metamorphic_off_by_one");
  // Both sides of relabel invariance get the same +1, so only the
  // disjoint-union relation ((a+1)+(b+1) != ab_union+1) can catch it —
  // exactly why the suite needs structurally different relations.
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    const std::uint64_t seed = derive_seed(0x0ff1, trial);
    const TestCase c = random_case(seed);
    if (run_oracle(c).expected == 0) continue;
    const MetamorphicReport report = check_metamorphic(c, seed);
    EXPECT_FALSE(report.ok()) << harness::describe(c);
    return;
  }
  FAIL() << "no case with a nonzero count in 30 trials";
}

// ---------------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------------

TEST(HarnessMinimize, ShrinksSabotagedCaseToMinimalRepro) {
  EnvVarGuard guard("STMATCH_FUZZ_SABOTAGE", "host_off_by_one");
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    const TestCase c = random_case(derive_seed(0x31337, trial));
    if (run_oracle(c).agreed) continue;  // needs a nonzero count to fire

    const auto result = minimize(c, harness::oracle_disagrees);
    EXPECT_TRUE(result.still_failing);
    EXPECT_FALSE(run_oracle(result.reduced).agreed)
        << "minimized case must still reproduce the failure";
    // ISSUE acceptance bar: the off-by-one shrinks to <= 8 vertices. In
    // practice it lands on one data edge matching a single-edge pattern.
    EXPECT_LE(result.reduced.graph.num_vertices(), 8u)
        << run_oracle(result.reduced).describe();
    EXPECT_LE(result.reduced.pattern.size(), c.pattern.size());
    EXPECT_GT(result.probes, 0u);
    return;
  }
  FAIL() << "no disagreeing case in 50 trials";
}

TEST(HarnessMinimize, ShrinksMqoPatternAxis) {
  // A failure that depends on one registered pattern: the minimizer must
  // drop every other extra while keeping that one.
  TestCase c = random_case(derive_seed(0x3902, 4));
  const Pattern needle = Pattern::parse("0-1,1-2,2-0,3-4,4-5,5-3,0-3,1-4,2-5");
  c.mqo_patterns = {Pattern::parse("0-1,1-2,2-0"), needle,
                    Pattern::parse("0-1,1-2,2-3")};
  const std::string canon = canonical_form(needle);
  const auto result = minimize(c, [&canon](const TestCase& t) {
    for (const Pattern& p : t.mqo_patterns)
      if (canonical_form(p) == canon) return true;
    return false;
  });
  EXPECT_TRUE(result.still_failing);
  ASSERT_EQ(result.reduced.mqo_patterns.size(), 1u);
  EXPECT_EQ(canonical_form(result.reduced.mqo_patterns[0]), canon);
}

TEST(HarnessMinimize, NonFailingInputReturnsImmediately) {
  const TestCase c = random_case(21);
  const auto result = minimize(c, [](const TestCase&) { return false; });
  EXPECT_FALSE(result.still_failing);
  EXPECT_EQ(result.probes, 1u);  // just the initial confirmation probe
}

TEST(HarnessMinimize, ThrowingPredicateIsUnresolvedNotFatal) {
  // A probe that throws counts as "candidate invalid": minimization keeps
  // going instead of crashing (regression: label-stripping shrinks used to
  // abort the run when engines rejected the candidate).
  const TestCase c = random_case(23);
  int calls = 0;
  const auto result = minimize(c, [&calls](const TestCase&) -> bool {
    if (++calls == 1) return true;  // original case "fails"
    throw check_error("synthetic probe failure");
  });
  EXPECT_TRUE(result.still_failing);
  // Nothing could shrink (every probe threw), so the case is unchanged.
  EXPECT_EQ(to_repro(result.reduced), to_repro(c));
}

TEST(HarnessMinimize, RespectsProbeBudget) {
  const TestCase c = random_case(29);
  harness::MinimizeOptions opts;
  opts.max_probes = 10;
  std::uint64_t calls = 0;
  const auto result = minimize(
      c,
      [&calls](const TestCase&) {
        ++calls;
        return true;  // everything "fails": shrinks forever without a cap
      },
      opts);
  EXPECT_LE(result.probes, opts.max_probes);
  EXPECT_EQ(result.probes, calls);
}

// ---------------------------------------------------------------------------
// Repro files
// ---------------------------------------------------------------------------

TEST(HarnessRepro, RoundTripsEveryField) {
  for (std::uint64_t seed : {2ull, 12ull, 0xfeedull, 31ull}) {
    const TestCase c = random_case(seed);
    const std::string text = to_repro(c);
    const TestCase back = from_repro(text);
    EXPECT_EQ(to_repro(back), text) << "seed " << seed;
    EXPECT_EQ(back.seed, c.seed);
    EXPECT_EQ(back.family, c.family);
    EXPECT_EQ(back.pattern, c.pattern);
    EXPECT_EQ(back.graph.num_vertices(), c.graph.num_vertices());
    EXPECT_EQ(back.graph.num_edges(), c.graph.num_edges());
    EXPECT_EQ(back.plan.induced, c.plan.induced);
    EXPECT_EQ(back.plan.count_mode, c.plan.count_mode);
    EXPECT_EQ(back.simt.unroll, c.simt.unroll);
    EXPECT_EQ(back.host.num_threads, c.host.num_threads);
    EXPECT_EQ(back.forced_isa, c.forced_isa);
  }
}

TEST(HarnessRepro, MqoPatternsRoundTrip) {
  TestCase c = random_case(7);
  c.mqo_patterns.clear();
  EXPECT_EQ(to_repro(c).find("mqo "), std::string::npos)
      << "empty pattern set must not be serialized";

  c.mqo_patterns = {
      Pattern::parse("0-1,1-2,2-0"),
      Pattern::parse("0-1,1-2").with_labels({0, 2, 1}),
  };
  const std::string text = to_repro(c);
  EXPECT_NE(text.find("mqo 2\n"), std::string::npos) << text;
  const TestCase back = from_repro(text);
  EXPECT_EQ(to_repro(back), text);
  ASSERT_EQ(back.mqo_patterns.size(), 2u);
  EXPECT_EQ(back.mqo_patterns[0], c.mqo_patterns[0]);
  EXPECT_EQ(back.mqo_patterns[1], c.mqo_patterns[1]);

  // Malformed mqo sections must throw, never half-parse.
  std::string bad = text;
  bad.replace(bad.find("mqo 2"), 5, "mqo 9");
  EXPECT_THROW(from_repro(bad), check_error);
  bad = text;
  bad.replace(bad.find("mqe 0 1"), 7, "mqe 0 7");
  EXPECT_THROW(from_repro(bad), check_error);
}

TEST(HarnessRepro, IsaLineRoundTripsAndRejectsUnknownNames) {
  TestCase c = random_case(7);
  c.forced_isa = simd::IsaChoice::kAuto;
  EXPECT_EQ(to_repro(c).find("isa "), std::string::npos)
      << "default choice must not be serialized";
  c.forced_isa = simd::IsaChoice::kAvx2;
  const std::string text = to_repro(c);
  EXPECT_NE(text.find("isa avx2\n"), std::string::npos) << text;
  EXPECT_EQ(from_repro(text).forced_isa, simd::IsaChoice::kAvx2);

  std::string bad = text;
  bad.replace(bad.find("isa avx2"), 8, "isa mmx!");
  EXPECT_THROW(from_repro(bad), check_error);
}

TEST(HarnessRepro, ReplayedCaseProducesSameOracleVerdict) {
  const TestCase c = random_case(17);
  const TestCase back = from_repro(to_repro(c));
  EXPECT_EQ(run_oracle(back).expected, run_oracle(c).expected);
}

TEST(HarnessRepro, MalformedInputsThrow) {
  const std::string good = to_repro(random_case(3));
  EXPECT_THROW(from_repro(""), check_error);
  EXPECT_THROW(from_repro("bogus-magic 1\n"), check_error);
  EXPECT_THROW(from_repro("stmatch-repro 99\n"), check_error);
  // Truncation anywhere must throw, never half-parse.
  for (std::size_t cut : {good.size() / 4, good.size() / 2}) {
    EXPECT_THROW(from_repro(good.substr(0, cut)), check_error);
  }
  // Out-of-range edge endpoint.
  EXPECT_THROW(from_repro("stmatch-repro 1\nseed 1\nfamily corner\n"
                          "graph 2 1\ne 0 5\n"),
               check_error);
  // Trailing garbage after end.
  EXPECT_THROW(from_repro(good + "unexpected\n"), check_error);
}

TEST(HarnessRepro, FileSaveLoadRoundTrip) {
  const TestCase c = random_case(41);
  const std::string path =
      ::testing::TempDir() + "/stmatch_harness_roundtrip.repro";
  harness::save_repro(c, path);
  const TestCase back = harness::load_repro(path);
  EXPECT_EQ(to_repro(back), to_repro(c));
  std::remove(path.c_str());
  EXPECT_THROW(harness::load_repro(path), check_error);
}

}  // namespace
}  // namespace stm
