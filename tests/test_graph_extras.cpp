// Tests for reordering, connected components, the bitmap index, and the
// embedding-listing executor.
#include <gtest/gtest.h>

#include <set>

#include "baselines/reference.hpp"
#include "core/recursive.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "graph/reorder.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/queries.hpp"
#include "setops/bitmap_index.hpp"
#include "util/rng.hpp"

namespace stm {
namespace {

TEST(Reorder, DegreeDescendingSortsDegrees) {
  Graph g = make_barabasi_albert(120, 4, 3);
  Graph r = reorder_graph(g, ReorderKind::kDegreeDescending);
  for (VertexId v = 1; v < r.num_vertices(); ++v)
    EXPECT_LE(r.degree(v), r.degree(v - 1));
}

TEST(Reorder, DegreeAscendingSortsDegrees) {
  Graph g = make_barabasi_albert(100, 3, 5);
  Graph r = reorder_graph(g, ReorderKind::kDegreeAscending);
  for (VertexId v = 1; v < r.num_vertices(); ++v)
    EXPECT_GE(r.degree(v), r.degree(v - 1));
}

TEST(Reorder, PreservesStructure) {
  Graph g = make_barabasi_albert(80, 3, 9);
  for (auto kind : {ReorderKind::kDegreeDescending, ReorderKind::kBfs}) {
    Graph r = reorder_graph(g, kind);
    EXPECT_EQ(r.num_vertices(), g.num_vertices());
    EXPECT_EQ(r.num_edges(), g.num_edges());
    // Match counts are isomorphism-invariant.
    for (int q : {3, 5}) {
      EXPECT_EQ(reference_count(r, query(q)), reference_count(g, query(q)));
    }
  }
}

TEST(Reorder, PermutationRoundTrip) {
  Graph g = make_erdos_renyi(50, 0.15, 2);
  auto perm = reorder_permutation(g, ReorderKind::kBfs);
  // perm is a permutation of [0, n).
  std::set<VertexId> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), g.num_vertices());
  Graph r = apply_reorder(g, perm);
  EXPECT_EQ(r.num_edges(), g.num_edges());
}

TEST(Reorder, LabelsFollowVertices) {
  Graph g = with_random_labels(make_barabasi_albert(60, 3, 4), 5, 8);
  auto perm = reorder_permutation(g, ReorderKind::kDegreeDescending);
  Graph r = apply_reorder(g, perm);
  for (VertexId new_id = 0; new_id < r.num_vertices(); ++new_id)
    EXPECT_EQ(r.label(new_id), g.label(perm[new_id]));
}

TEST(Reorder, RejectsNonPermutation) {
  Graph g = make_cycle(4);
  EXPECT_THROW(apply_reorder(g, {0, 0, 1, 2}), check_error);
  EXPECT_THROW(apply_reorder(g, {0, 1, 2}), check_error);
}

TEST(Components, SingleComponent) {
  EXPECT_EQ(num_components(make_cycle(10)), 1u);
  EXPECT_EQ(largest_component_size(make_cycle(10)), 10u);
}

TEST(Components, MultipleComponents) {
  GraphBuilder b(10);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(4, 5);
  Graph g = b.build();  // {0,1,2}, {4,5}, and 5 isolated vertices
  EXPECT_EQ(num_components(g), 7u);
  EXPECT_EQ(largest_component_size(g), 3u);
  Graph big = largest_component(g);
  EXPECT_EQ(big.num_vertices(), 3u);
  EXPECT_EQ(big.num_edges(), 2u);
}

TEST(Components, EmptyGraph) {
  Graph g = GraphBuilder(0).build();
  EXPECT_EQ(num_components(g), 0u);
  EXPECT_EQ(largest_component_size(g), 0u);
}

TEST(Components, LabelsPreservedInExtraction) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  Graph g = b.build().with_labels({9, 8, 7, 6, 5, 4});
  Graph big = largest_component(g);
  ASSERT_EQ(big.num_vertices(), 3u);
  EXPECT_EQ(big.label(0), 7);  // old vertex 2
  EXPECT_EQ(big.label(2), 5);  // old vertex 4
}

TEST(Components, BaGraphIsConnected) {
  EXPECT_EQ(num_components(make_barabasi_albert(500, 3, 77)), 1u);
}

TEST(BitmapIndexTest, AdjacencyMatchesGraph) {
  Graph g = make_barabasi_albert(150, 5, 13);
  BitmapIndex index(g, /*degree_threshold=*/1);  // index everything
  for (VertexId u = 0; u < g.num_vertices(); u += 7) {
    ASSERT_TRUE(index.has_bitmap(u));
    for (VertexId v = 0; v < g.num_vertices(); v += 3)
      EXPECT_EQ(index.adjacent(u, v), g.has_edge(u, v));
  }
}

TEST(BitmapIndexTest, ThresholdSelectsHubs) {
  Graph g = make_star(40);
  BitmapIndex index(g, 10);
  EXPECT_TRUE(index.has_bitmap(0));
  EXPECT_FALSE(index.has_bitmap(1));
  EXPECT_EQ(index.num_indexed(), 1u);
  EXPECT_GT(index.memory_bytes(), 0u);
}

TEST(BitmapIndexTest, IntersectMatchesScalarKernels) {
  Rng rng(21);
  Graph g = make_barabasi_albert(200, 6, 31);
  BitmapIndex index(g, 12);
  std::vector<VertexId> out_bitmap, out_scalar;
  for (int trial = 0; trial < 100; ++trial) {
    const auto u = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const auto w = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    auto base = g.neighbors(w);
    index.intersect_with_neighbors(base, u, out_bitmap);
    set_intersect_into(base, g.neighbors(u), out_scalar);
    EXPECT_EQ(out_bitmap, out_scalar);
    index.subtract_neighbors(base, u, out_bitmap);
    set_difference_into(base, g.neighbors(u), out_scalar);
    EXPECT_EQ(out_bitmap, out_scalar);
  }
}

TEST(Enumerate, VisitsEveryEmbedding) {
  Graph g = make_erdos_renyi(25, 0.25, 3);
  Pattern p = query(3);
  MatchingPlan plan(reorder_for_matching(p), {});
  std::uint64_t seen = 0;
  auto visited = recursive_enumerate_range(
      g, plan, 0, g.num_vertices(), [&](const std::vector<VertexId>& m) {
        ++seen;
        // Valid embedding: distinct vertices, edges present.
        for (std::size_t i = 0; i < m.size(); ++i)
          for (std::size_t j = i + 1; j < m.size(); ++j) {
            EXPECT_NE(m[i], m[j]);
            if (plan.pattern().has_edge(i, j)) {
              EXPECT_TRUE(g.has_edge(m[i], m[j]));
            }
          }
        return true;
      });
  EXPECT_EQ(seen, visited);
  EXPECT_EQ(visited, reference_count(g, p));
}

TEST(Enumerate, EarlyStop) {
  Graph g = make_clique(8);
  MatchingPlan plan(reorder_for_matching(query(3)), {});
  std::uint64_t seen = 0;
  auto visited = recursive_enumerate_range(
      g, plan, 0, g.num_vertices(), [&](const std::vector<VertexId>&) {
        return ++seen < 10;  // stop after 10
      });
  EXPECT_EQ(seen, 10u);
  EXPECT_EQ(visited, 10u);
}

TEST(Enumerate, UniqueModeEmitsCanonicalOnly) {
  Graph g = make_clique(5);
  PlanOptions popts{Induced::kEdge, true, CountMode::kUniqueSubgraphs};
  MatchingPlan plan(reorder_for_matching(Pattern::parse("0-1,1-2,2-0")),
                    popts);
  std::set<std::set<VertexId>> subgraphs;
  recursive_enumerate_range(g, plan, 0, g.num_vertices(),
                            [&](const std::vector<VertexId>& m) {
                              subgraphs.insert({m.begin(), m.end()});
                              return true;
                            });
  EXPECT_EQ(subgraphs.size(), 10u);  // C(5,3) distinct triangles
}

}  // namespace
}  // namespace stm
