// ISA-sweeping conformance suite for the SIMD set-operation kernels
// (setops/simd.hpp).
//
// Proves the bit-exactness contract: every kernel table the build and CPU
// support produces byte-identical outputs and counts to a naive std::set_*
// oracle — and therefore to the scalar table — across every op, every
// length 0–130 (crossing the 4- and 8-lane tail boundaries from both
// sides), pointer alignment offsets, shared values straddling vector-block
// seams, heavy size skew, and values past 2^31 (where a signed vector
// compare would go wrong). The suite runs under ASan/UBSan in CI, which
// also enforces the kSimdOutSlack headroom contract: any kernel store past
// the promised slack is a heap-buffer-overflow.
//
// Unsupported levels are skipped cleanly so the same binary passes on a
// scalar-only build and on an AVX2 machine (the CI matrix runs both).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <vector>

#include "setops/set_ops.hpp"
#include "setops/simd.hpp"
#include "setops/storage_ops.hpp"
#include "storage/encoding.hpp"
#include "util/rng.hpp"

namespace stm {
namespace {

std::vector<simd::IsaLevel> available_levels() {
  std::vector<simd::IsaLevel> levels;
  for (std::size_t l = 0; l < simd::kNumIsaLevels; ++l) {
    const auto level = static_cast<simd::IsaLevel>(l);
    if (simd::is_supported(level)) levels.push_back(level);
  }
  return levels;
}

std::vector<VertexId> naive_intersect(const std::vector<VertexId>& a,
                                      const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<VertexId> naive_difference(const std::vector<VertexId>& a,
                                       const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

/// Copies `v` into a fresh heap buffer at byte offset `offset` elements, so
/// the kernels see every load alignment; returns the buffer (keep alive)
/// and the data pointer via `p`.
std::vector<VertexId> at_offset(const std::vector<VertexId>& v,
                                std::size_t offset, const VertexId** p) {
  std::vector<VertexId> buf(offset, VertexId{0});
  buf.insert(buf.end(), v.begin(), v.end());
  *p = buf.data() + offset;
  return buf;
}

/// Runs every kernel of `k` on (a, b) and checks it against the naive
/// oracle. Output buffers are sized exactly bound + kSimdOutSlack so ASan
/// polices the headroom contract.
void check_all_kernels(const simd::Kernels& k, const std::vector<VertexId>& a,
                       const std::vector<VertexId>& b, std::size_t offset) {
  const auto want_inter = naive_intersect(a, b);
  const auto want_diff = naive_difference(a, b);

  const VertexId* ap = nullptr;
  const VertexId* bp = nullptr;
  const auto abuf = at_offset(a, offset, &ap);
  const auto bbuf = at_offset(b, offset, &bp);

  std::vector<VertexId> out(std::min(a.size(), b.size()) +
                            simd::kSimdOutSlack);
  std::size_t n = k.intersect(ap, a.size(), bp, b.size(), out.data());
  ASSERT_EQ(n, want_inter.size()) << "intersect @" << simd::to_string(k.level);
  EXPECT_TRUE(std::equal(want_inter.begin(), want_inter.end(), out.begin()))
      << "intersect order/content @" << simd::to_string(k.level);

  EXPECT_EQ(k.intersect_count(ap, a.size(), bp, b.size()), want_inter.size())
      << "intersect_count @" << simd::to_string(k.level);

  out.assign(a.size() + simd::kSimdOutSlack, VertexId{0});
  n = k.difference(ap, a.size(), bp, b.size(), out.data());
  ASSERT_EQ(n, want_diff.size()) << "difference @" << simd::to_string(k.level);
  EXPECT_TRUE(std::equal(want_diff.begin(), want_diff.end(), out.begin()))
      << "difference order/content @" << simd::to_string(k.level);

  out.assign(std::min(a.size(), b.size()) + simd::kSimdOutSlack, VertexId{0});
  n = k.gallop_intersect(ap, a.size(), bp, b.size(), out.data());
  ASSERT_EQ(n, want_inter.size())
      << "gallop_intersect @" << simd::to_string(k.level);
  EXPECT_TRUE(std::equal(want_inter.begin(), want_inter.end(), out.begin()))
      << "gallop_intersect order/content @" << simd::to_string(k.level);

  EXPECT_EQ(k.gallop_intersect_count(ap, a.size(), bp, b.size()),
            want_inter.size())
      << "gallop_intersect_count @" << simd::to_string(k.level);

  out.assign(a.size() + simd::kSimdOutSlack, VertexId{0});
  n = k.gallop_difference(ap, a.size(), bp, b.size(), out.data());
  ASSERT_EQ(n, want_diff.size())
      << "gallop_difference @" << simd::to_string(k.level);
  EXPECT_TRUE(std::equal(want_diff.begin(), want_diff.end(), out.begin()))
      << "gallop_difference order/content @" << simd::to_string(k.level);
}

/// Sorted unique set of exactly `size` values drawn from
/// [base, base + universe); universe must be >= size.
std::vector<VertexId> random_set(Rng& rng, std::size_t size,
                                 std::uint64_t universe, std::uint64_t base) {
  std::vector<VertexId> v;
  while (v.size() < size) {
    const std::size_t need = size - v.size();
    for (std::size_t i = 0; i < need + need / 2 + 8; ++i)
      v.push_back(static_cast<VertexId>(base + rng.next_below(universe)));
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  v.resize(size);
  return v;
}

TEST(SetopsSimdConformance, DispatchReportsScalarAlwaysSupported) {
  EXPECT_TRUE(simd::is_supported(simd::IsaLevel::kScalar));
  EXPECT_GE(available_levels().size(), 1u);
  // The active table must be one of the supported ones.
  EXPECT_TRUE(simd::is_supported(simd::active_isa()));
}

TEST(SetopsSimdConformance, IsaStringsRoundTrip) {
  for (std::size_t l = 0; l < simd::kNumIsaLevels; ++l) {
    const auto level = static_cast<simd::IsaLevel>(l);
    simd::IsaLevel back = simd::IsaLevel::kScalar;
    ASSERT_TRUE(simd::isa_level_from_string(simd::to_string(level), &back));
    EXPECT_EQ(back, level);
  }
  simd::IsaChoice choice = simd::IsaChoice::kAvx2;
  ASSERT_TRUE(simd::isa_choice_from_string("auto", &choice));
  EXPECT_EQ(choice, simd::IsaChoice::kAuto);
  EXPECT_FALSE(simd::isa_choice_from_string("sse999", &choice));
}

TEST(SetopsSimdConformance, ScopedForceRestoresPreviousChoice) {
  ASSERT_EQ(simd::forced_isa(), simd::IsaChoice::kAuto);
  // What the dispatch resolves to unforced — best_supported(), or the
  // STMATCH_FORCE_ISA env level when the CI sweep sets one.
  const simd::IsaLevel ambient = simd::active_isa();
  {
    simd::ScopedForceIsa outer(simd::IsaChoice::kScalar);
    EXPECT_EQ(simd::active_isa(), simd::IsaLevel::kScalar);
    {
      simd::ScopedForceIsa inner(simd::IsaChoice::kAuto);
      EXPECT_EQ(simd::active_isa(), ambient);
    }
    EXPECT_EQ(simd::active_isa(), simd::IsaLevel::kScalar);
  }
  EXPECT_EQ(simd::forced_isa(), simd::IsaChoice::kAuto);
}

TEST(SetopsSimdConformance, ForcingUnsupportedLevelFailsLoud) {
  for (std::size_t l = 0; l < simd::kNumIsaLevels; ++l) {
    const auto level = static_cast<simd::IsaLevel>(l);
    if (simd::is_supported(level)) continue;
    const auto choice =
        static_cast<simd::IsaChoice>(static_cast<std::uint8_t>(level) + 1);
    EXPECT_THROW(simd::force_isa(choice), check_error);
    EXPECT_THROW(simd::kernels_for(level), check_error);
    // A failed force must leave the dispatch unforced.
    EXPECT_EQ(simd::forced_isa(), simd::IsaChoice::kAuto);
  }
}

// Every op x every length pair crossing the 4- and 8-lane tail boundaries x
// alignment offsets, against the naive oracle, under every available level.
// The b-lengths cover each vector width's 0/-1/+1 neighborhoods so partial
// final blocks, exactly-full blocks, and one-past-full blocks all occur on
// both sides of every kernel.
TEST(SetopsSimdConformance, ExhaustiveLengthAndTailSweep) {
  const std::size_t kBLengths[] = {0,  1,  2,  3,  4,   5,   7,  8,
                                   9,  12, 15, 16, 17,  24,  31, 32,
                                   33, 63, 64, 65, 127, 128, 129, 130};
  Rng rng(20260809);
  for (const simd::IsaLevel level : available_levels()) {
    const simd::Kernels& k = simd::kernels_for(level);
    for (std::size_t la = 0; la <= 130; ++la) {
      for (const std::size_t lb : kBLengths) {
        // A small universe forces heavy overlap, so matches land on every
        // lane position over the sweep; the offset cycles all alignments.
        const std::uint64_t universe = la + lb + 1 + rng.next_below(16);
        const auto a = random_set(rng, la, universe + la, 0);
        const auto b = random_set(rng, lb, universe + lb, 0);
        check_all_kernels(k, a, b, (la + lb) % 4);
      }
    }
  }
}

// Shared values placed to straddle every 4- and 8-lane block seam on both
// sides: a is 0..n contiguous, b keeps exactly the values next to each
// multiple of 4 and 8 (so equal elements sit at the last lane of one block
// and the first lane of the next throughout).
TEST(SetopsSimdConformance, DuplicatesAtBlockSeams) {
  for (const simd::IsaLevel level : available_levels()) {
    const simd::Kernels& k = simd::kernels_for(level);
    for (std::size_t n : {8u, 16u, 33u, 64u, 129u}) {
      std::vector<VertexId> a(n);
      for (std::size_t i = 0; i < n; ++i) a[i] = static_cast<VertexId>(i);
      std::vector<VertexId> b;
      for (std::size_t i = 0; i < n; ++i)
        if (i % 4 == 3 || i % 4 == 0 || i % 8 == 7 || i % 8 == 0)
          b.push_back(static_cast<VertexId>(i));
      for (std::size_t offset = 0; offset < 4; ++offset) {
        check_all_kernels(k, a, b, offset);
        check_all_kernels(k, b, a, offset);
      }
    }
  }
}

// Values past 2^31: a signed vector compare (cmpgt without the 0x80000000
// bias) would order these wrong and break the gallop window math.
TEST(SetopsSimdConformance, HighBitValuesOrderCorrectly) {
  Rng rng(424242);
  for (const simd::IsaLevel level : available_levels()) {
    const simd::Kernels& k = simd::kernels_for(level);
    for (int trial = 0; trial < 20; ++trial) {
      // Straddle the sign boundary: half below 2^31, half above, including
      // values near UINT32_MAX.
      auto a = random_set(rng, 40, 60, 0x7FFFFFD0ULL);
      auto b = random_set(rng, 40, 60, 0x7FFFFFD0ULL);
      const auto hi_a = random_set(rng, 10, 40, 0xFFFFFF00ULL);
      const auto hi_b = random_set(rng, 10, 40, 0xFFFFFF00ULL);
      a.insert(a.end(), hi_a.begin(), hi_a.end());
      b.insert(b.end(), hi_b.begin(), hi_b.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
      b.erase(std::unique(b.begin(), b.end()), b.end());
      check_all_kernels(k, a, b, trial % 4);
    }
  }
}

// Heavy skew in both directions: the gallop kernels' intended shape, and
// the merge kernels must survive it too.
TEST(SetopsSimdConformance, SkewRatios) {
  Rng rng(77);
  const std::pair<std::size_t, std::size_t> kShapes[] = {
      {1, 1000}, {3, 4096}, {8, 512}, {33, 1056}, {130, 130 * 32}};
  for (const simd::IsaLevel level : available_levels()) {
    const simd::Kernels& k = simd::kernels_for(level);
    for (const auto& [small, large] : kShapes) {
      const auto b = random_set(rng, large, large * 3, 0);
      // Probe set drawn from b's universe so roughly a third of the probes
      // hit; also test the all-hit and no-hit extremes.
      const auto a = random_set(rng, small, large * 3, 0);
      check_all_kernels(k, a, b, 0);
      check_all_kernels(k, b, a, 1);
      std::vector<VertexId> subset(b.begin(),
                                   b.begin() + static_cast<std::ptrdiff_t>(
                                                   std::min(small, b.size())));
      check_all_kernels(k, subset, b, 2);
      const auto disjoint = random_set(rng, small, large, large * 3 + 1);
      check_all_kernels(k, disjoint, b, 3);
    }
  }
}

// The public set_ops wrappers (which auto-select merge vs gallop and manage
// the slack internally) must agree with the oracle under every forced level
// — including the kBinary algo, which stays scalar by design.
TEST(SetopsSimdConformance, WrapperPathsUnderForcedIsa) {
  Rng rng(909090);
  for (const simd::IsaLevel level : available_levels()) {
    const auto choice =
        static_cast<simd::IsaChoice>(static_cast<std::uint8_t>(level) + 1);
    simd::ScopedForceIsa force(choice);
    for (int trial = 0; trial < 60; ++trial) {
      const std::size_t la = rng.next_below(200);
      const std::size_t lb =
          trial % 3 == 0 ? rng.next_below(4000) : rng.next_below(200);
      const auto a = random_set(rng, la, la * 2 + lb + 1, 0);
      const auto b = random_set(rng, lb, la + lb * 2 + 1, 0);
      const auto want_inter = naive_intersect(a, b);
      const auto want_diff = naive_difference(a, b);
      std::vector<VertexId> out;
      for (const auto algo : {IntersectAlgo::kMerge, IntersectAlgo::kBinary,
                              IntersectAlgo::kGalloping}) {
        set_intersect_into(a, b, out, algo);
        EXPECT_EQ(out, want_inter);
      }
      set_difference_into(a, b, out);
      EXPECT_EQ(out, want_diff);
      EXPECT_EQ(set_intersect_count(a, b), want_inter.size());
      EXPECT_EQ(set_difference_count(a, b), want_diff.size());
    }
  }
}

// Regression: difference with b exhausted mid-block. The vectorized
// difference accumulates per-block match bits; when b runs out of full
// blocks the partial a-block's verdicts must carry into the scalar tail —
// recomputing them against the b tail would double-keep matched elements.
TEST(SetopsSimdConformance, DifferenceTailCarriesBlockVerdicts) {
  for (const simd::IsaLevel level : available_levels()) {
    const simd::Kernels& k = simd::kernels_for(level);
    // a: one full block plus tail; b: exactly one block that matches
    // a-lanes 0/2/4/6 then ends. Lanes 1/3/5/7 and the tail must survive.
    const std::vector<VertexId> a{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    const std::vector<VertexId> b{0, 2, 4, 6, 8, 100, 101, 102};
    check_all_kernels(k, a, b, 0);
    // b's last block straddles a's block boundary.
    const std::vector<VertexId> a2{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    const std::vector<VertexId> b2{5, 6, 7, 8, 9};
    check_all_kernels(k, a2, b2, 0);
  }
}

// --- storage_ops: decode-on-intersect cursor paths -------------------------

struct EncodedList {
  std::vector<std::uint8_t> bytes;
  std::vector<VertexId> values;

  storage::ListCursor cursor() const {
    return storage::ListCursor(bytes.data(), bytes.data() + bytes.size(),
                               storage::kDefaultBlockSize);
  }
};

EncodedList encode(const std::vector<VertexId>& values) {
  EncodedList e;
  e.values = values;
  storage::encode_adjacency(values.data(), values.size(),
                            storage::kDefaultBlockSize, e.bytes);
  return e;
}

// The hybrid decode-run path and the per-element seek path must both match
// the naive oracle under every level, across list shapes that cross anchor
// boundaries (degree > 32) and operand sizes on both sides of the
// prefer-seeks skew gate.
TEST(SetopsSimdConformance, CursorOpsAcrossAnchorBoundaries) {
  Rng rng(5150);
  const std::size_t kDegrees[] = {0, 1, 31, 32, 33, 64, 96, 129, 400};
  for (const simd::IsaLevel level : available_levels()) {
    const simd::Kernels& k = simd::kernels_for(level);
    for (const std::size_t degree : kDegrees) {
      const auto list = encode(random_set(rng, degree, degree * 3 + 8, 0));
      // Operand sizes: tiny (forces the seek path for big lists), around the
      // degree (hybrid), and much bigger (hybrid, list exhausts first).
      for (const std::size_t osize :
           {std::size_t{0}, std::size_t{2}, degree / 2, degree,
            degree * 2 + 5}) {
        const auto other = random_set(rng, osize, degree * 3 + 16, 0);
        const auto want_inter = naive_intersect(other, list.values);
        const auto want_diff = naive_difference(other, list.values);

        std::vector<VertexId> got;
        auto c1 = list.cursor();
        storage::cursor_intersect_into(c1, other, got, &k);
        EXPECT_EQ(got, want_inter) << "degree=" << degree << " other=" << osize
                                   << " @" << simd::to_string(level);
        auto c2 = list.cursor();
        EXPECT_EQ(storage::cursor_intersect_count(c2, other, &k),
                  want_inter.size());
        auto c3 = list.cursor();
        storage::cursor_difference_into(c3, other, got, &k);
        EXPECT_EQ(got, want_diff) << "degree=" << degree << " other=" << osize
                                  << " @" << simd::to_string(level);
        auto c4 = list.cursor();
        EXPECT_EQ(storage::cursor_difference_count(c4, other, &k),
                  want_diff.size());
      }
    }
  }
}

// Regression: a decode run ends exactly at an anchor boundary and the next
// operand element equals the first value of the next block — the seek that
// opens the next run must not skip it (off-by-one on the run seam).
TEST(SetopsSimdConformance, CursorRunSeamExactBoundary) {
  // 4 * kDefaultBlockSize elements per run: make the list exactly two runs
  // long with consecutive values so every block seam has adjacent matches.
  const std::size_t n = 8 * storage::kDefaultBlockSize;
  std::vector<VertexId> values(n);
  for (std::size_t i = 0; i < n; ++i)
    values[i] = static_cast<VertexId>(2 * i);  // gaps so seeks do real work
  const auto list = encode(values);
  // `other` = every list value plus the odd values between them.
  std::vector<VertexId> other(2 * n);
  for (std::size_t i = 0; i < 2 * n; ++i) other[i] = static_cast<VertexId>(i);
  for (const simd::IsaLevel level : available_levels()) {
    const simd::Kernels& k = simd::kernels_for(level);
    std::vector<VertexId> got;
    auto c1 = list.cursor();
    storage::cursor_intersect_into(c1, other, got, &k);
    EXPECT_EQ(got, values) << "@" << simd::to_string(level);
    auto c2 = list.cursor();
    storage::cursor_difference_into(c2, other, got, &k);
    const auto want = naive_difference(other, values);
    EXPECT_EQ(got, want) << "@" << simd::to_string(level);
  }
}

// All supported tables agree with each other byte-for-byte (transitively
// implied by oracle agreement above, but asserted directly on raw kernel
// output so a future oracle bug cannot mask a cross-table divergence).
TEST(SetopsSimdConformance, TablesAgreePairwise) {
  Rng rng(31337);
  const auto levels = available_levels();
  for (int trial = 0; trial < 40; ++trial) {
    const auto a = random_set(rng, 1 + rng.next_below(150), 400, 0);
    const auto b = random_set(rng, 1 + rng.next_below(150), 400, 0);
    std::vector<std::vector<VertexId>> outs;
    for (const simd::IsaLevel level : levels) {
      const simd::Kernels& k = simd::kernels_for(level);
      std::vector<VertexId> out(std::min(a.size(), b.size()) +
                                simd::kSimdOutSlack);
      const std::size_t n =
          k.intersect(a.data(), a.size(), b.data(), b.size(), out.data());
      out.resize(n);
      outs.push_back(std::move(out));
    }
    for (std::size_t l = 1; l < outs.size(); ++l)
      EXPECT_EQ(outs[l], outs[0])
          << simd::to_string(levels[l]) << " vs scalar";
  }
}

}  // namespace
}  // namespace stm
