// Correctness tests for the STMatch engine against the brute-force reference
// across queries, semantics, unroll factors, stealing modes and devices.
#include <gtest/gtest.h>

#include "baselines/reference.hpp"
#include "core/engine.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/queries.hpp"

namespace stm {
namespace {

Graph small_graph() {
  static const Graph g = make_erdos_renyi(26, 0.22, 1234);
  return g;
}

Graph small_labeled_graph() {
  static const Graph g =
      with_random_labels(make_erdos_renyi(40, 0.25, 77), 4, 5);
  return g;
}

EngineConfig tiny_device() {
  EngineConfig cfg;
  cfg.device.num_blocks = 4;
  cfg.device.warps_per_block = 4;
  cfg.unroll = 4;
  cfg.chunk_size = 4;
  return cfg;
}

TEST(Engine, TriangleOnClique) {
  Graph g = make_clique(6);
  auto result = stmatch_match_pattern(g, Pattern::parse("0-1,1-2,2-0"), {},
                                      tiny_device());
  EXPECT_EQ(result.count, 6u * 5u * 4u);
}

TEST(Engine, EdgeCount) {
  Graph g = make_cycle(12);
  auto result =
      stmatch_match_pattern(g, Pattern::parse("0-1"), {}, tiny_device());
  EXPECT_EQ(result.count, 24u);
}

TEST(Engine, EmptyGraphGivesZero) {
  Graph g = GraphBuilder(0).build();
  auto result =
      stmatch_match_pattern(g, Pattern::parse("0-1,1-2"), {}, tiny_device());
  EXPECT_EQ(result.count, 0u);
}

TEST(Engine, PatternLargerThanGraph) {
  auto result =
      stmatch_match_pattern(make_clique(3), query(8), {}, tiny_device());
  EXPECT_EQ(result.count, 0u);
}

TEST(Engine, GraphWithIsolatedVertices) {
  GraphBuilder b(20);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  auto result = stmatch_match_pattern(b.build(), Pattern::parse("0-1,1-2,2-0"),
                                      {}, tiny_device());
  EXPECT_EQ(result.count, 6u);
}

// ---- full sweep: every query, both semantics, against the reference -------

class EngineQuerySweep
    : public ::testing::TestWithParam<std::tuple<int, Induced>> {};

TEST_P(EngineQuerySweep, MatchesReference) {
  const auto [q, induced] = GetParam();
  Graph g = small_graph();
  PlanOptions popts{induced, true, CountMode::kEmbeddings};
  const auto expected =
      reference_count(g, query(q), {induced, CountMode::kEmbeddings});
  const auto result = stmatch_match_pattern(g, query(q), popts, tiny_device());
  EXPECT_EQ(result.count, expected) << query_name(q);
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, EngineQuerySweep,
    ::testing::Combine(::testing::Range(1, 25),
                       ::testing::Values(Induced::kEdge, Induced::kVertex)),
    [](const auto& info) {
      return query_name(std::get<0>(info.param)) +
             (std::get<1>(info.param) == Induced::kEdge ? "_edge" : "_vertex");
    });

// ---- equivalence properties ------------------------------------------------

class EngineUnrollSweep : public ::testing::TestWithParam<int> {};

TEST_P(EngineUnrollSweep, CountInvariantUnderUnroll) {
  Graph g = small_graph();
  for (int q : {3, 6, 12, 14, 21}) {
    EngineConfig cfg = tiny_device();
    cfg.unroll = static_cast<std::uint32_t>(GetParam());
    const auto expected = reference_count(g, query(q));
    EXPECT_EQ(stmatch_match_pattern(g, query(q), {}, cfg).count, expected)
        << query_name(q) << " unroll=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Unroll1248, EngineUnrollSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(Engine, CountInvariantUnderCodeMotion) {
  Graph g = small_graph();
  for (int q : {2, 5, 10, 13, 20, 22}) {
    for (Induced induced : {Induced::kEdge, Induced::kVertex}) {
      PlanOptions with{induced, true, CountMode::kEmbeddings};
      PlanOptions without{induced, false, CountMode::kEmbeddings};
      EXPECT_EQ(stmatch_match_pattern(g, query(q), with, tiny_device()).count,
                stmatch_match_pattern(g, query(q), without, tiny_device()).count)
          << query_name(q);
    }
  }
}

TEST(Engine, CountInvariantUnderStealModes) {
  Graph g = make_barabasi_albert(150, 4, 9);
  const auto expected = reference_count(g, query(4));
  for (bool local : {false, true}) {
    for (bool global : {false, true}) {
      EngineConfig cfg = tiny_device();
      cfg.local_steal = local;
      cfg.global_steal = global;
      EXPECT_EQ(stmatch_match_pattern(g, query(4), {}, cfg).count, expected)
          << "local=" << local << " global=" << global;
    }
  }
}

TEST(Engine, CountInvariantUnderDeviceShape) {
  Graph g = small_graph();
  const auto expected = reference_count(g, query(13));
  for (auto [blocks, warps] : {std::pair{1, 1}, {1, 8}, {8, 1}, {6, 5}}) {
    EngineConfig cfg = tiny_device();
    cfg.device.num_blocks = static_cast<std::uint32_t>(blocks);
    cfg.device.warps_per_block = static_cast<std::uint32_t>(warps);
    EXPECT_EQ(stmatch_match_pattern(g, query(13), {}, cfg).count, expected)
        << blocks << "x" << warps;
  }
}

TEST(Engine, CountInvariantUnderChunkSize) {
  Graph g = small_graph();
  const auto expected = reference_count(g, query(10));
  for (std::uint32_t chunk : {1u, 3u, 17u, 1000u}) {
    EngineConfig cfg = tiny_device();
    cfg.chunk_size = chunk;
    EXPECT_EQ(stmatch_match_pattern(g, query(10), {}, cfg).count, expected);
  }
}

TEST(Engine, PartitionedRangesSumToWhole) {
  // Multi-GPU partitioning (paper Fig. 11): outermost iterations divided.
  Graph g = small_graph();
  const auto expected = reference_count(g, query(12));
  const VertexId n = g.num_vertices();
  std::uint64_t total = 0;
  for (VertexId part = 0; part < 3; ++part) {
    EngineConfig cfg = tiny_device();
    cfg.v_begin = part * n / 3;
    cfg.v_end = (part + 1) * n / 3;
    total += stmatch_match_pattern(g, query(12), {}, cfg).count;
  }
  EXPECT_EQ(total, expected);
}

// ---- labeled matching -------------------------------------------------------

TEST(Engine, LabeledMatchesReference) {
  Graph g = small_labeled_graph();
  for (int q : {1, 4, 8, 11, 16}) {
    Pattern p = query(q).with_labels(
        std::vector<Label>(query(q).size(), 0));  // uniform label 0
    const auto expected = reference_count(g, p);
    EXPECT_EQ(stmatch_match_pattern(g, p, {}, tiny_device()).count, expected)
        << query_name(q);
  }
}

TEST(Engine, LabeledMixedMatchesReference) {
  Graph g = small_labeled_graph();
  for (int q : {2, 5, 9, 13, 15, 18, 22}) {
    Pattern p = labeled_query(q, 4);
    for (Induced induced : {Induced::kEdge, Induced::kVertex}) {
      PlanOptions popts{induced, true, CountMode::kEmbeddings};
      const auto expected =
          reference_count(g, p, {induced, CountMode::kEmbeddings});
      EXPECT_EQ(stmatch_match_pattern(g, p, popts, tiny_device()).count,
                expected)
          << query_name(q);
    }
  }
}

TEST(Engine, LabeledCodeMotionEquivalence) {
  Graph g = small_labeled_graph();
  for (int q : {6, 13, 22}) {
    Pattern p = labeled_query(q, 4);
    PlanOptions without{Induced::kEdge, false, CountMode::kEmbeddings};
    EXPECT_EQ(stmatch_match_pattern(g, p, {}, tiny_device()).count,
              stmatch_match_pattern(g, p, without, tiny_device()).count)
        << query_name(q);
  }
}

TEST(Engine, ImpossibleLabelGivesZero) {
  Graph g = small_labeled_graph();  // labels 0..3
  Pattern p = Pattern::parse("0-1,1-2").with_labels({9, 9, 9});
  EXPECT_EQ(stmatch_match_pattern(g, p, {}, tiny_device()).count, 0u);
}

TEST(Engine, LabeledPatternOnUnlabeledGraphThrows) {
  Pattern p = Pattern::parse("0-1").with_labels({0, 1});
  EXPECT_THROW(stmatch_match_pattern(small_graph(), p, {}, tiny_device()),
               check_error);
}

// ---- unique-subgraph counting ----------------------------------------------

TEST(Engine, UniqueSubgraphCounting) {
  Graph g = small_graph();
  for (int q : {1, 3, 8, 10}) {
    PlanOptions popts{Induced::kEdge, true, CountMode::kUniqueSubgraphs};
    const auto expected =
        reference_count(g, query(q), {Induced::kEdge,
                                      CountMode::kUniqueSubgraphs});
    EXPECT_EQ(stmatch_match_pattern(g, query(q), popts, tiny_device()).count,
              expected)
        << query_name(q);
  }
}

TEST(Engine, UniqueTimesAutEqualsEmbeddings) {
  Graph g = make_erdos_renyi(30, 0.3, 42);
  Pattern p = query(8);  // K5, |Aut| = 120
  PlanOptions unique{Induced::kEdge, true, CountMode::kUniqueSubgraphs};
  const auto u = stmatch_match_pattern(g, p, unique, tiny_device()).count;
  const auto e = stmatch_match_pattern(g, p, {}, tiny_device()).count;
  EXPECT_EQ(u * 120, e);
}

// ---- configuration validation ------------------------------------------------

TEST(Engine, SharedMemoryOverflowRejected) {
  EngineConfig cfg = tiny_device();
  cfg.device.shared_mem_bytes = 1024;  // far too small for 32 warps
  cfg.device.warps_per_block = 32;
  cfg.unroll = 32;
  EXPECT_THROW(stmatch_match_pattern(small_graph(), query(24), {}, cfg),
               check_error);
}

TEST(Engine, InvalidUnrollRejected) {
  EngineConfig cfg = tiny_device();
  cfg.unroll = 0;
  EXPECT_THROW(stmatch_match_pattern(small_graph(), query(1), {}, cfg),
               check_error);
  cfg.unroll = 64;
  EXPECT_THROW(stmatch_match_pattern(small_graph(), query(1), {}, cfg),
               check_error);
}

// ---- statistics sanity -------------------------------------------------------

TEST(Engine, StatsAreConsistent) {
  Graph g = make_barabasi_albert(200, 5, 3);
  auto result = stmatch_match_pattern(g, query(4), {}, tiny_device());
  const auto& s = result.stats;
  EXPECT_GT(s.makespan_cycles, 0u);
  EXPECT_GE(s.makespan_cycles, EngineConfig{}.cost.kernel_launch);
  EXPECT_GT(s.busy_cycles, 0u);
  EXPECT_GT(s.occupancy, 0.0);
  EXPECT_LE(s.occupancy, 1.0 + 1e-9);
  EXPECT_GT(s.set_ops.waves, 0u);
  EXPECT_GT(s.set_ops.utilization(), 0.0);
  EXPECT_LE(s.set_ops.utilization(), 1.0);
  EXPECT_GT(s.chunks_grabbed, 0u);
  EXPECT_GT(s.stack_bytes, 0u);
  EXPECT_GT(s.sim_ms, 0.0);
}

TEST(Engine, DeterministicAcrossRuns) {
  Graph g = make_barabasi_albert(120, 5, 8);
  EngineConfig cfg = tiny_device();
  auto a = stmatch_match_pattern(g, query(13), {}, cfg);
  auto b = stmatch_match_pattern(g, query(13), {}, cfg);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.stats.makespan_cycles, b.stats.makespan_cycles);
  EXPECT_EQ(a.stats.local_steals, b.stats.local_steals);
  EXPECT_EQ(a.stats.global_steals, b.stats.global_steals);
}

TEST(Engine, LocalStealingHappensAndHelpsOnSkewedWork) {
  // Skewed workload: a BA hub graph. Without stealing the warp owning the
  // hubs dominates the makespan.
  Graph g = make_barabasi_albert(300, 6, 4);
  EngineConfig no_steal = tiny_device();
  no_steal.local_steal = false;
  no_steal.global_steal = false;
  EngineConfig local = no_steal;
  local.local_steal = true;
  auto baseline = stmatch_match_pattern(g, query(6), {}, no_steal);
  auto stolen = stmatch_match_pattern(g, query(6), {}, local);
  EXPECT_EQ(baseline.count, stolen.count);
  EXPECT_GT(stolen.stats.local_steals, 0u);
  EXPECT_LT(stolen.stats.makespan_cycles, baseline.stats.makespan_cycles);
  EXPECT_GT(stolen.stats.occupancy, baseline.stats.occupancy);
}

TEST(Engine, GlobalStealingActivatesAcrossBlocks) {
  Graph g = make_barabasi_albert(400, 6, 21);
  EngineConfig cfg = tiny_device();
  cfg.device.num_blocks = 6;
  cfg.device.warps_per_block = 2;
  cfg.chunk_size = 64;  // coarse chunks force imbalance across blocks
  auto result = stmatch_match_pattern(g, query(6), {}, cfg);
  EXPECT_EQ(result.count, reference_count(g, query(6)));
  EXPECT_GT(result.stats.global_steals, 0u);
}

TEST(Engine, UtilizationRisesWithUnroll) {
  // Sparse graph => small candidate sets => low lane occupancy at unroll 1
  // (the paper's Fig. 13 premise).
  Graph g = make_barabasi_albert(300, 3, 6);
  EngineConfig u1 = tiny_device();
  u1.unroll = 1;
  EngineConfig u8 = tiny_device();
  u8.unroll = 8;
  auto r1 = stmatch_match_pattern(g, query(10), {}, u1);
  auto r8 = stmatch_match_pattern(g, query(10), {}, u8);
  EXPECT_EQ(r1.count, r8.count);
  EXPECT_GT(r8.stats.set_ops.utilization(),
            r1.stats.set_ops.utilization() * 1.2);
}

TEST(Engine, SingleKernelLaunchCharged) {
  // STMatch's defining property: one launch regardless of pattern depth.
  Graph g = small_graph();
  auto r5 = stmatch_match_pattern(g, query(1), {}, tiny_device());
  auto r7 = stmatch_match_pattern(g, query(17), {}, tiny_device());
  const auto launch = EngineConfig{}.cost.kernel_launch;
  EXPECT_GE(r5.stats.makespan_cycles, launch);
  EXPECT_GE(r7.stats.makespan_cycles, launch);
}

}  // namespace
}  // namespace stm
