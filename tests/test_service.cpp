// Tests for the query service layer: GraphSession, plan cache, admission
// control, deadlines/cancellation, and metrics consistency.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <latch>
#include <thread>
#include <vector>

#include "baselines/reference.hpp"
#include "core/cancel.hpp"
#include "core/engine.hpp"
#include "core/host_engine.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/queries.hpp"
#include "service/admission.hpp"
#include "service/plan_cache.hpp"
#include "service/service.hpp"

namespace stm {
namespace {

QueryRequest host_request(const Pattern& p, double deadline_ms = -1.0) {
  QueryRequest req;
  req.pattern = p;
  req.deadline_ms = deadline_ms;
  return req;
}

void expect_metrics_identities(GraphSession& session) {
  MetricsRegistry& m = session.metrics();
  const std::uint64_t submitted = m.counter("queries_submitted").value();
  const std::uint64_t admitted = m.counter("queries_admitted").value();
  const std::uint64_t rejected = m.counter("queries_rejected").value();
  const std::uint64_t completed = m.counter("queries_completed").value();
  const std::uint64_t failed = m.counter("queries_failed").value();
  EXPECT_EQ(submitted, admitted + rejected);
  EXPECT_EQ(admitted, completed + failed);
}

// ---------------------------------------------------------------------------
// AdmissionController (deterministic unit tests via latches)
// ---------------------------------------------------------------------------

TEST(Admission, BoundsRunningPlusQueued) {
  AdmissionController ctrl(/*num_workers=*/2, /*max_queue=*/1);
  std::latch release(1);
  std::latch both_started(2);
  std::atomic<int> ran{0};
  auto blocker = [&] {
    both_started.count_down();
    release.wait();
    ran.fetch_add(1);
  };
  ASSERT_TRUE(ctrl.admit(QueryPriority::kNormal, blocker));
  ASSERT_TRUE(ctrl.admit(QueryPriority::kNormal, blocker));
  both_started.wait();  // both workers are occupied
  // One queue slot left, then full.
  EXPECT_TRUE(ctrl.admit(QueryPriority::kNormal, [&] { ran.fetch_add(1); }));
  EXPECT_FALSE(ctrl.admit(QueryPriority::kNormal, [&] { ran.fetch_add(1); }));
  EXPECT_EQ(ctrl.queue_depth(), 1u);
  release.count_down();
  ctrl.drain();
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(ctrl.queue_depth(), 0u);
  EXPECT_EQ(ctrl.inflight(), 0u);
}

TEST(Admission, DrainsHigherPriorityFirst) {
  AdmissionController ctrl(/*num_workers=*/1, /*max_queue=*/8);
  std::latch started(1), release(1);
  std::mutex mu;
  std::vector<int> order;
  ASSERT_TRUE(ctrl.admit(QueryPriority::kNormal, [&] {
    started.count_down();
    release.wait();
  }));
  started.wait();  // the single worker is pinned; everything below queues
  auto record = [&](int id) {
    return [&order, &mu, id] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(id);
    };
  };
  ASSERT_TRUE(ctrl.admit(QueryPriority::kLow, record(1)));
  ASSERT_TRUE(ctrl.admit(QueryPriority::kLow, record(2)));
  ASSERT_TRUE(ctrl.admit(QueryPriority::kHigh, record(3)));
  ASSERT_TRUE(ctrl.admit(QueryPriority::kNormal, record(4)));
  release.count_down();
  ctrl.drain();
  ASSERT_EQ(order.size(), 4u);
  // High first, then normal, then the low jobs in FIFO order.
  EXPECT_EQ(order, (std::vector<int>{3, 4, 1, 2}));
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

TEST(PlanCache, HitOnRepeatAndOnRenumbering) {
  PlanCache cache(8);
  bool hit = true;
  auto p1 = cache.get_or_compile(query(8), {}, &hit);
  EXPECT_FALSE(hit);
  auto p2 = cache.get_or_compile(query(8), {}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(p1.get(), p2.get());  // literally the same plan
  // A renumbered isomorphic pattern hits through the canonical tier.
  const Pattern shuffled = query(8).relabeled({3, 1, 4, 0, 2});
  auto p3 = cache.get_or_compile(shuffled, {}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(p1.get(), p3.get());
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, OptionsArePartOfTheKey) {
  PlanCache cache(8);
  bool hit = true;
  PlanOptions unique;
  unique.count_mode = CountMode::kUniqueSubgraphs;
  cache.get_or_compile(query(5), {}, &hit);
  EXPECT_FALSE(hit);
  cache.get_or_compile(query(5), unique, &hit);
  EXPECT_FALSE(hit);  // different options -> different plan
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCache, LruEvictionDropsOldest) {
  PlanCache cache(2);
  bool hit = false;
  cache.get_or_compile(query(1), {}, &hit);
  cache.get_or_compile(query(2), {}, &hit);
  cache.get_or_compile(query(1), {}, &hit);  // q1 becomes MRU
  EXPECT_TRUE(hit);
  cache.get_or_compile(query(3), {}, &hit);  // evicts q2 (LRU)
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  cache.get_or_compile(query(1), {}, &hit);
  EXPECT_TRUE(hit);  // survived
  cache.get_or_compile(query(2), {}, &hit);
  EXPECT_FALSE(hit);  // was evicted, recompiled
}

TEST(PlanCache, ConcurrentLookupsAreSafe) {
  PlanCache cache(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache] {
      for (int i = 0; i < 50; ++i) {
        auto plan = cache.get_or_compile(query(1 + (i % 6)), {});
        ASSERT_NE(plan, nullptr);
      }
    });
  }
  for (auto& th : threads) th.join();
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 200u);
  EXPECT_LE(cache.size(), 6u);
}

// ---------------------------------------------------------------------------
// Deadlines and cancellation
// ---------------------------------------------------------------------------

TEST(ServiceDeadline, ExpiryReturnsPartialAndSessionStaysUsable) {
  // q17 on the enron proxy runs far past any reasonable budget (seconds);
  // a 150 ms deadline must interrupt it quickly and leave the session fine.
  GraphSession session(make_skewed_dataset("enron", 0.25));
  const double deadline_ms = 150.0;
  QueryResult slow = session.run(host_request(query(17), deadline_ms));
  EXPECT_EQ(slow.status, QueryStatus::kDeadlineExceeded);
  EXPECT_GT(slow.count, 0u);  // partial work is reported
  EXPECT_LE(slow.total_ms, 2.0 * deadline_ms);

  // The session serves later queries normally.
  QueryResult fast = session.run(host_request(query(23)));
  EXPECT_EQ(fast.status, QueryStatus::kOk);
  EXPECT_EQ(fast.count, reference_count(session.graph(), query(23)));
  expect_metrics_identities(session);
}

TEST(ServiceDeadline, SimtEngineHonorsDeadline) {
  GraphSession session(make_skewed_dataset("enron", 0.25));
  QueryRequest req = host_request(query(17), 150.0);
  req.engine = EngineKind::kSimt;
  QueryResult r = session.run(std::move(req));
  EXPECT_EQ(r.status, QueryStatus::kDeadlineExceeded);
  EXPECT_LE(r.total_ms, 300.0);
}

TEST(ServiceDeadline, PreExpiredDeadlineSkipsExecution) {
  GraphSession session(make_barabasi_albert(100, 3, 1));
  QueryResult r = session.run(host_request(query(1), 1e-6));
  EXPECT_EQ(r.status, QueryStatus::kDeadlineExceeded);
  EXPECT_EQ(r.count, 0u);
  EXPECT_FALSE(r.plan_cache_hit);
}

TEST(ServiceDeadline, CancelAllInterruptsRunningQueries) {
  GraphSession session(make_skewed_dataset("enron", 0.25));
  auto future = session.submit(host_request(query(17)));  // no deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  session.cancel_all();
  QueryResult r = future.get();
  EXPECT_EQ(r.status, QueryStatus::kCancelled);
  // And afterwards the session still answers.
  QueryResult ok = session.run(host_request(query(23)));
  EXPECT_EQ(ok.status, QueryStatus::kOk);
}

TEST(EngineCancel, PreCancelledTokenStopsHostEngine) {
  const Graph g = make_barabasi_albert(300, 4, 7);
  const MatchingPlan plan(reorder_for_matching(query(17)), {});
  CancelToken token;
  token.cancel();
  HostEngineConfig cfg;
  cfg.num_threads = 1;
  const HostMatchResult r = host_match(g, plan, cfg, &token);
  EXPECT_EQ(r.stats.status, QueryStatus::kCancelled);
}

TEST(EngineCancel, PreCancelledTokenStopsSimtEngine) {
  const Graph g = make_barabasi_albert(300, 4, 7);
  const MatchingPlan plan(reorder_for_matching(query(17)), {});
  CancelToken token;
  token.cancel();
  const MatchResult r = stmatch_match(g, plan, {}, &token);
  EXPECT_EQ(r.query.status, QueryStatus::kCancelled);
}

// ---------------------------------------------------------------------------
// Plan cache through the session
// ---------------------------------------------------------------------------

TEST(ServiceCache, WarmHitReturnsIdenticalCounts) {
  GraphSession session(make_barabasi_albert(200, 3, 5));
  const std::uint64_t expected = reference_count(session.graph(), query(8));

  QueryResult cold = session.run(host_request(query(8)));
  EXPECT_FALSE(cold.plan_cache_hit);
  EXPECT_EQ(cold.count, expected);

  QueryResult warm = session.run(host_request(query(8)));
  EXPECT_TRUE(warm.plan_cache_hit);
  EXPECT_EQ(warm.count, expected);

  // A renumbered isomorphic pattern also hits, with the same count.
  QueryResult alias =
      session.run(host_request(query(8).relabeled({4, 2, 0, 1, 3})));
  EXPECT_TRUE(alias.plan_cache_hit);
  EXPECT_EQ(alias.count, expected);

  EXPECT_EQ(session.plan_cache().stats().hits, 2u);
  EXPECT_EQ(session.plan_cache().stats().misses, 1u);
}

// ---------------------------------------------------------------------------
// Overload rejection through the session
// ---------------------------------------------------------------------------

TEST(ServiceOverload, RejectsWhenQueueIsFull) {
  SessionConfig cfg;
  cfg.max_concurrent_queries = 1;
  cfg.max_queued_queries = 1;
  GraphSession session(make_skewed_dataset("enron", 0.25), cfg);

  // Four slow queries: one runs, one queues, two are shed.
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 4; ++i)
    futures.push_back(session.submit(host_request(query(17), 500.0)));

  int overloaded = 0;
  int finished = 0;
  for (auto& f : futures) {
    const QueryResult r = f.get();
    if (r.status == QueryStatus::kOverloaded) {
      ++overloaded;
      EXPECT_EQ(r.count, 0u);
    } else {
      ++finished;
      EXPECT_EQ(r.status, QueryStatus::kDeadlineExceeded);
    }
  }
  EXPECT_EQ(overloaded, 2);
  EXPECT_EQ(finished, 2);
  EXPECT_EQ(session.metrics().counter("queries_rejected").value(), 2u);
  expect_metrics_identities(session);
}

// ---------------------------------------------------------------------------
// Concurrent mixed load vs the reference enumerator
// ---------------------------------------------------------------------------

TEST(ServiceConcurrency, MixedQueriesMatchReference) {
  SessionConfig cfg;
  cfg.max_concurrent_queries = 4;
  cfg.max_queued_queries = 64;
  GraphSession session(make_barabasi_albert(200, 3, 9));

  struct Case {
    int q;
    EngineKind engine;
  };
  std::vector<Case> cases;
  for (int q = 1; q <= 12; ++q) cases.push_back({q, EngineKind::kHost});
  for (int q = 1; q <= 6; ++q) cases.push_back({q, EngineKind::kSimt});

  std::vector<std::future<QueryResult>> futures;
  for (const Case& c : cases) {
    QueryRequest req = host_request(query(c.q));
    req.engine = c.engine;
    futures.push_back(session.submit(std::move(req)));
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const QueryResult r = futures[i].get();
    ASSERT_EQ(r.status, QueryStatus::kOk) << "q" << cases[i].q;
    EXPECT_EQ(r.count, reference_count(session.graph(), query(cases[i].q)))
        << "q" << cases[i].q << " engine "
        << (cases[i].engine == EngineKind::kHost ? "host" : "simt");
  }
  expect_metrics_identities(session);
  EXPECT_EQ(session.metrics().counter("queries_completed").value(),
            cases.size());
  // 12 distinct patterns; the 6 SIMT submissions reuse the host plans.
  EXPECT_GE(session.plan_cache().stats().hits, 6u);
}

// ---------------------------------------------------------------------------
// Error reporting
// ---------------------------------------------------------------------------

TEST(ServiceErrors, DisconnectedPatternReportsInvalidArgument) {
  GraphSession session(make_barabasi_albert(50, 3, 2));
  const QueryResult r =
      session.run(host_request(Pattern::parse("0-1,2-3")));
  EXPECT_EQ(r.status, QueryStatus::kInvalidArgument);
  EXPECT_FALSE(r.error.empty());
  // Session unharmed.
  const QueryResult ok = session.run(host_request(query(1)));
  EXPECT_EQ(ok.status, QueryStatus::kOk);
  expect_metrics_identities(session);
}

}  // namespace
}  // namespace stm
