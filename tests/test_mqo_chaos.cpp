// Chaos tests for the multi-query standing-query index: kUpdateApply faults
// racing indexed evaluation (failed batches must leave every standing count
// untouched; survivors must stay exact), deterministic replay of a faulted
// run, and kEmitDrop stream recovery composed with an indexed session.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "baselines/reference.hpp"
#include "core/fault.hpp"
#include "graph/generators.hpp"
#include "pattern/pattern.hpp"
#include "service/service.hpp"
#include "service/stream.hpp"
#include "util/rng.hpp"

namespace stm {
namespace {

Pattern triangle() { return Pattern::parse("0-1,1-2,2-0"); }

UpdateBatch random_batch(const GraphSnapshot& snap, Rng& rng, int num_edges) {
  const VertexId n = snap.num_vertices();
  UpdateBatch batch;
  for (int i = 0; i < num_edges; ++i) {
    const auto u = static_cast<VertexId>(rng() % n);
    const auto v = static_cast<VertexId>(rng() % n);
    if (u == v) continue;
    if (snap.has_edge(u, v)) {
      batch.deletions.emplace_back(u, v);
    } else {
      batch.insertions.emplace_back(u, v);
    }
  }
  return batch;
}

TEST(MqoChaos, UpdateFaultsLeaveIndexedCountsExact) {
  SessionConfig cfg;
  cfg.standing_index = true;
  cfg.update_fault.seed = 17;
  cfg.update_fault.set_rate(FaultSite::kUpdateApply, 0.3);
  GraphSession session(make_erdos_renyi(30, 0.15, 23), cfg);

  const std::vector<Pattern> patterns{triangle(),
                                      triangle().relabeled({1, 2, 0}),
                                      Pattern::parse("0-1,1-2")};
  std::vector<std::uint64_t> ids;
  for (const Pattern& p : patterns) {
    StandingQueryConfig sq;
    sq.pattern = p;
    ids.push_back(session.register_standing_query(sq));
  }

  Rng rng(4711);
  int failed = 0, succeeded = 0;
  for (int b = 0; b < 24; ++b) {
    // Snapshot the standing state before the batch so a failed apply can be
    // checked for exact rollback.
    std::vector<std::uint64_t> before;
    for (const std::uint64_t id : ids) {
      before.push_back(session.standing_query(id)->count);
    }
    const std::uint64_t epoch_before = session.epoch();
    const UpdateOutcome out =
        session.apply_updates(random_batch(*session.snapshot(), rng, 5));
    if (!out.ok()) {
      ++failed;
      EXPECT_EQ(out.status, QueryStatus::kInternalError);
      EXPECT_EQ(session.epoch(), epoch_before);
      for (std::size_t i = 0; i < ids.size(); ++i) {
        EXPECT_EQ(session.standing_query(ids[i])->count, before[i])
            << "failed batch " << b << " perturbed standing query " << i;
      }
      continue;
    }
    ++succeeded;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(session.standing_query(ids[i])->count,
                reference_count(session.snapshot()->view(), patterns[i], {}))
          << "batch " << b << " query " << i;
    }
  }
  // A 30% rate over 24 batches must exercise both paths.
  EXPECT_GT(failed, 0);
  EXPECT_GT(succeeded, 0);
}

TEST(MqoChaos, FaultedRunReplaysDeterministically) {
  const Graph base = make_erdos_renyi(28, 0.15, 5);
  const auto run = [&base]() {
    SessionConfig cfg;
    cfg.standing_index = true;
    cfg.update_fault.seed = 9;
    cfg.update_fault.set_rate(FaultSite::kUpdateApply, 0.25);
    GraphSession session(base, cfg);
    StandingQueryConfig sq;
    sq.pattern = triangle();
    const std::uint64_t id = session.register_standing_query(sq);

    std::vector<std::int64_t> trace;
    Rng rng(12);
    for (int b = 0; b < 16; ++b) {
      const UpdateOutcome out =
          session.apply_updates(random_batch(*session.snapshot(), rng, 4));
      if (out.ok()) {
        EXPECT_EQ(out.updates.size(), 1u);
        trace.push_back(out.updates[0].delta);
      } else {
        trace.push_back(std::numeric_limits<std::int64_t>::min());
      }
    }
    trace.push_back(
        static_cast<std::int64_t>(session.standing_query(id)->count));
    trace.push_back(static_cast<std::int64_t>(session.epoch()));
    return trace;
  };
  const std::vector<std::int64_t> first = run();
  EXPECT_EQ(first, run()) << "faulted indexed run is not replayable";
  EXPECT_TRUE(std::any_of(first.begin(), first.end(), [](std::int64_t v) {
    return v == std::numeric_limits<std::int64_t>::min();
  })) << "fault rate never fired; the replay test is vacuous";
}

TEST(MqoChaos, EmitDropRecoveryComposesWithIndexedSession) {
  SessionConfig cfg;
  cfg.standing_index = true;
  GraphSession session(make_erdos_renyi(40, 0.2, 13), cfg);
  StandingQueryConfig sq;
  sq.pattern = triangle();
  const std::uint64_t id = session.register_standing_query(sq);
  const std::uint64_t standing = session.standing_query(id)->count;

  const auto drain = [&session](StreamRequest req, QueryResult* out) {
    auto s = session.open_stream(std::move(req));
    std::vector<Embedding> got;
    Embedding e;
    while (s->next(&e)) got.push_back(std::move(e));
    *out = s->result();
    return got;
  };

  StreamRequest clean_req;
  clean_req.query.pattern = triangle();
  QueryResult clean_result;
  const std::vector<Embedding> clean = drain(clean_req, &clean_result);
  ASSERT_EQ(clean_result.status, QueryStatus::kOk);
  ASSERT_GT(clean.size(), 0u);

  StreamRequest req;
  req.query.pattern = triangle();
  req.query.host.chunk_size = 1;
  req.stream.emit_fault.seed = 3;
  req.stream.emit_fault.set_rate(FaultSite::kEmitDrop, 0.15);
  QueryResult r;
  const std::vector<Embedding> got = drain(req, &r);
  EXPECT_EQ(r.status, QueryStatus::kOk) << r.error;
  EXPECT_EQ(got, clean);
  EXPECT_GT(r.stats.faults_injected, 0u);

  // The faulted stream ran read-only: the indexed standing state is intact
  // and subsequent batches stay exact.
  EXPECT_EQ(session.standing_query(id)->count, standing);
  Rng rng(99);
  for (int b = 0; b < 3; ++b) {
    ASSERT_TRUE(
        session.apply_updates(random_batch(*session.snapshot(), rng, 4)).ok());
  }
  EXPECT_EQ(session.standing_query(id)->count,
            reference_count(session.snapshot()->view(), triangle(), {}));
}

}  // namespace
}  // namespace stm
