// Chaos tests for the fault-tolerance stack (DESIGN.md §9): deterministic
// injection, partial-work recovery in every engine, the service fallback
// chain, circuit breaker, retry policy, watchdog, and ingestion hardening.
//
// The load-bearing assertions are exactness and determinism: at every
// injection site and fault rate, a recovered run must produce the *exact*
// reference count, and replaying the same seed must reproduce the identical
// failure schedule and recovery path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "baselines/reference.hpp"
#include "core/cancel.hpp"
#include "core/engine.hpp"
#include "core/fault.hpp"
#include "core/host_engine.hpp"
#include "core/multi_gpu.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/queries.hpp"
#include "service/resilience.hpp"
#include "service/service.hpp"
#include "service/watchdog.hpp"
#include "util/thread_pool.hpp"

namespace stm {
namespace {

Graph chaos_graph() { return make_erdos_renyi(64, 0.15, /*seed=*/7); }

FaultConfig fault_cfg(FaultSite site, double rate, std::uint64_t seed) {
  FaultConfig cfg;
  cfg.seed = seed;
  cfg.set_rate(site, rate);
  return cfg;
}

// ---------------------------------------------------------------------------
// FaultInjector: determinism, rates, incarnations
// ---------------------------------------------------------------------------

TEST(FaultInjector, SameSeedSameSchedule) {
  const FaultConfig cfg = fault_cfg(FaultSite::kWarpAbort, 0.25, 42);
  FaultInjector a(cfg), b(cfg);
  for (std::uint64_t key = 0; key < 2000; ++key) {
    EXPECT_EQ(a.should_fail(FaultSite::kWarpAbort, key),
              b.should_fail(FaultSite::kWarpAbort, key));
  }
  EXPECT_EQ(a.total_injected(), b.total_injected());
  EXPECT_GT(a.total_injected(), 0u);
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  FaultInjector a(fault_cfg(FaultSite::kHostTask, 0.5, 1));
  FaultInjector b(fault_cfg(FaultSite::kHostTask, 0.5, 2));
  bool differs = false;
  for (std::uint64_t key = 0; key < 256 && !differs; ++key) {
    differs = a.should_fail(FaultSite::kHostTask, key) !=
              b.should_fail(FaultSite::kHostTask, key);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, IncarnationChangesSchedule) {
  FaultConfig cfg = fault_cfg(FaultSite::kStealLoss, 0.5, 9);
  FaultInjector gen0(cfg);
  cfg.incarnation = 1;
  FaultInjector gen1(cfg);
  bool differs = false;
  for (std::uint64_t key = 0; key < 256 && !differs; ++key) {
    differs = gen0.should_fail(FaultSite::kStealLoss, key) !=
              gen1.should_fail(FaultSite::kStealLoss, key);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, RespectsRateBounds) {
  FaultInjector off(fault_cfg(FaultSite::kSlabAlloc, 0.0, 3));
  FaultInjector always(fault_cfg(FaultSite::kSlabAlloc, 1.0, 3));
  FaultInjector tenth(fault_cfg(FaultSite::kSlabAlloc, 0.1, 3));
  const std::uint64_t n = 20000;
  for (std::uint64_t key = 0; key < n; ++key) {
    EXPECT_FALSE(off.should_fail(FaultSite::kSlabAlloc, key));
    EXPECT_TRUE(always.should_fail(FaultSite::kSlabAlloc, key));
    tenth.should_fail(FaultSite::kSlabAlloc, key);
    // Sites with rate 0 never fire, whatever the decision stream says.
    EXPECT_FALSE(tenth.should_fail(FaultSite::kWarpAbort, key));
  }
  const double observed =
      static_cast<double>(tenth.injected(FaultSite::kSlabAlloc)) /
      static_cast<double>(n);
  EXPECT_NEAR(observed, 0.1, 0.02);
}

// ---------------------------------------------------------------------------
// SIMT engine chaos matrix: site x rate x seed, exact counts + replay
// ---------------------------------------------------------------------------

TEST(SimtChaos, ExactCountsAndDeterministicReplay) {
  const Graph g = chaos_graph();
  const std::vector<Pattern> patterns = {
      Pattern::parse("0-1,1-2,2-0"),          // triangle
      Pattern::parse("0-1,1-2,2-3,3-0"),      // 4-cycle
      query(1),                               // size-5 evaluation motif
  };
  const FaultSite sites[] = {FaultSite::kWarpAbort, FaultSite::kSlabAlloc,
                             FaultSite::kStealLoss};
  const double rates[] = {0.02, 0.1};
  for (const Pattern& p : patterns) {
    const std::uint64_t expected = reference_count(g, p);
    MatchingPlan plan(reorder_for_matching(p), {});
    for (FaultSite site : sites) {
      for (double rate : rates) {
        for (std::uint64_t seed : {11u, 29u}) {
          EngineConfig cfg;
          cfg.fault = fault_cfg(site, rate, seed);
          MatchResult first = stmatch_match(g, plan, cfg);
          ASSERT_EQ(first.query.status, QueryStatus::kOk)
              << to_string(site) << " rate " << rate << " seed " << seed;
          EXPECT_EQ(first.count, expected)
              << to_string(site) << " rate " << rate << " seed " << seed;
          // A fault at these sites always produces a recovery unit, and
          // kOk means every unit was successfully re-adopted.
          EXPECT_EQ(first.stats.faults_injected, first.stats.units_recovered);
          // Bit-identical replay: same seed, same schedule, same recovery.
          MatchResult replay = stmatch_match(g, plan, cfg);
          EXPECT_EQ(replay.count, first.count);
          EXPECT_EQ(replay.stats.faults_injected, first.stats.faults_injected);
          EXPECT_EQ(replay.stats.units_recovered, first.stats.units_recovered);
          EXPECT_EQ(replay.stats.makespan_cycles, first.stats.makespan_cycles);
        }
      }
    }
  }
}

TEST(SimtChaos, FaultsActuallyFire) {
  // The matrix above tolerates zero-fault cells (e.g. steal loss on a run
  // with no steals); make sure the chaos machinery is exercised at all.
  const Graph g = chaos_graph();
  const Pattern p = query(1);
  MatchingPlan plan(reorder_for_matching(p), {});
  EngineConfig cfg;
  cfg.fault = fault_cfg(FaultSite::kWarpAbort, 0.1, 11);
  MatchResult r = stmatch_match(g, plan, cfg);
  EXPECT_GT(r.stats.faults_injected, 0u);
  EXPECT_EQ(r.count, reference_count(g, p));
}

TEST(SimtChaos, AllSitesCombined) {
  const Graph g = chaos_graph();
  const Pattern p = Pattern::parse("0-1,1-2,2-0");
  MatchingPlan plan(reorder_for_matching(p), {});
  EngineConfig cfg;
  cfg.fault.seed = 5;
  cfg.fault.set_rate(FaultSite::kWarpAbort, 0.05)
      .set_rate(FaultSite::kSlabAlloc, 0.05)
      .set_rate(FaultSite::kStealLoss, 0.1);
  MatchResult r = stmatch_match(g, plan, cfg);
  ASSERT_EQ(r.query.status, QueryStatus::kOk);
  EXPECT_EQ(r.count, reference_count(g, p));
}

TEST(SimtChaos, ExhaustedRetryBudgetFailsClosed) {
  const Graph g = chaos_graph();
  const Pattern p = Pattern::parse("0-1,1-2,2-0");
  MatchingPlan plan(reorder_for_matching(p), {});
  EngineConfig cfg;
  cfg.fault = fault_cfg(FaultSite::kWarpAbort, 1.0, 1);
  cfg.fault.max_unit_attempts = 2;
  MatchResult r = stmatch_match(g, plan, cfg);
  // Every attempt dies; the run must terminate and report the failure
  // instead of looping or returning a wrong count.
  EXPECT_EQ(r.query.status, QueryStatus::kInternalError);
  EXPECT_TRUE(r.stats.recovery_exhausted);
}

TEST(SimtChaos, EngineThrowProbeThrows) {
  const Graph g = chaos_graph();
  const Pattern p = Pattern::parse("0-1,1-2,2-0");
  MatchingPlan plan(reorder_for_matching(p), {});
  EngineConfig cfg;
  cfg.fault = fault_cfg(FaultSite::kEngineThrow, 1.0, 1);
  EXPECT_THROW(stmatch_match(g, plan, cfg), FaultInjectedError);
}

// ---------------------------------------------------------------------------
// Host engine chaos
// ---------------------------------------------------------------------------

TEST(HostChaos, ExactCountsAndDeterministicReplay) {
  const Graph g = chaos_graph();
  const Pattern p = query(2);
  const std::uint64_t expected = reference_count(g, p);
  MatchingPlan plan(reorder_for_matching(p), {});
  for (double rate : {0.02, 0.1}) {
    for (std::uint64_t seed : {13u, 31u}) {
      HostEngineConfig cfg;
      cfg.num_threads = 4;
      cfg.chunk_size = 4;
      cfg.fault = fault_cfg(FaultSite::kHostTask, rate, seed);
      HostMatchResult first = host_match(g, plan, cfg);
      ASSERT_EQ(first.stats.status, QueryStatus::kOk);
      EXPECT_EQ(first.count, expected) << "rate " << rate << " seed " << seed;
      EXPECT_EQ(first.stats.faults_injected, first.stats.units_recovered);
      HostMatchResult replay = host_match(g, plan, cfg);
      EXPECT_EQ(replay.count, first.count);
      // Decisions are keyed by (chunk begin, attempt), not by which worker
      // ran the chunk, so even the fault counts replay exactly.
      EXPECT_EQ(replay.stats.faults_injected, first.stats.faults_injected);
      EXPECT_EQ(replay.stats.units_recovered, first.stats.units_recovered);
    }
  }
}

TEST(HostChaos, FaultsActuallyFire) {
  const Graph g = chaos_graph();
  const Pattern p = query(2);
  MatchingPlan plan(reorder_for_matching(p), {});
  HostEngineConfig cfg;
  cfg.num_threads = 4;
  // chunk_size 1 maximizes the number of fault keys (one per vertex chunk),
  // so a moderate rate demonstrably fires for this seed.
  cfg.chunk_size = 1;
  cfg.fault = fault_cfg(FaultSite::kHostTask, 0.25, 13);
  HostMatchResult r = host_match(g, plan, cfg);
  EXPECT_GT(r.stats.faults_injected, 0u);
  EXPECT_EQ(r.count, reference_count(g, p));
}

TEST(HostChaos, ExhaustedRetryBudgetFailsClosed) {
  const Graph g = chaos_graph();
  MatchingPlan plan(reorder_for_matching(Pattern::parse("0-1,1-2,2-0")), {});
  HostEngineConfig cfg;
  cfg.num_threads = 2;
  cfg.fault = fault_cfg(FaultSite::kHostTask, 1.0, 1);
  cfg.fault.max_unit_attempts = 2;
  HostMatchResult r = host_match(g, plan, cfg);
  EXPECT_EQ(r.stats.status, QueryStatus::kInternalError);
}

TEST(HostChaos, EngineThrowProbeThrows) {
  const Graph g = chaos_graph();
  MatchingPlan plan(reorder_for_matching(Pattern::parse("0-1,1-2,2-0")), {});
  HostEngineConfig cfg;
  cfg.fault = fault_cfg(FaultSite::kEngineThrow, 1.0, 1);
  EXPECT_THROW(host_match(g, plan, cfg), FaultInjectedError);
}

// ---------------------------------------------------------------------------
// Multi-device chaos: whole-device failure, slice re-run
// ---------------------------------------------------------------------------

TEST(MultiGpuChaos, DeviceFailureRecoversExactly) {
  const Graph g = chaos_graph();
  const Pattern p = Pattern::parse("0-1,1-2,2-0");
  const std::uint64_t expected = reference_count(g, p);
  MatchingPlan plan(reorder_for_matching(p), {});
  bool any_faults = false;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    EngineConfig cfg;
    cfg.fault = fault_cfg(FaultSite::kDeviceFail, 0.4, seed);
    MultiGpuResult r = stmatch_match_multi_gpu(g, plan, 3, cfg);
    ASSERT_EQ(r.status, QueryStatus::kOk) << "seed " << seed;
    EXPECT_EQ(r.count, expected) << "seed " << seed;
    // A slice may fail several times before its successful re-run.
    EXPECT_LE(r.slices_recovered, r.device_faults);
    if (r.device_faults > 0) {
      EXPECT_GT(r.slices_recovered, 0u);
    }
    any_faults = any_faults || r.device_faults > 0;
    MultiGpuResult replay = stmatch_match_multi_gpu(g, plan, 3, cfg);
    EXPECT_EQ(replay.count, r.count);
    EXPECT_EQ(replay.device_faults, r.device_faults);
  }
  // At rate 0.4 over 3 devices and 6 seeds, some device must have failed.
  EXPECT_TRUE(any_faults);
}

TEST(MultiGpuChaos, ExhaustedRetryBudgetFailsClosed) {
  const Graph g = chaos_graph();
  MatchingPlan plan(reorder_for_matching(Pattern::parse("0-1,1-2,2-0")), {});
  EngineConfig cfg;
  cfg.fault = fault_cfg(FaultSite::kDeviceFail, 1.0, 1);
  cfg.fault.max_unit_attempts = 2;
  MultiGpuResult r = stmatch_match_multi_gpu(g, plan, 2, cfg);
  EXPECT_EQ(r.status, QueryStatus::kInternalError);
  EXPECT_GE(r.device_faults, 2u);
}

// ---------------------------------------------------------------------------
// Thread pool chaos: dropped tasks are requeued, never lost
// ---------------------------------------------------------------------------

TEST(PoolChaos, EveryTaskRunsExactlyOnce) {
  FaultInjector injector(fault_cfg(FaultSite::kPoolTask, 0.3, 17));
  std::atomic<int> runs{0};
  {
    ThreadPool pool(4);
    pool.set_fault_injection(&injector, /*max_requeues=*/4);
    for (int i = 0; i < 300; ++i) {
      pool.submit([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    pool.set_fault_injection(nullptr, 0);
  }
  EXPECT_EQ(runs.load(), 300);
  EXPECT_GT(injector.injected(FaultSite::kPoolTask), 0u);
}

TEST(PoolChaos, SurvivesCertainFailureViaRequeueBound) {
  FaultInjector injector(fault_cfg(FaultSite::kPoolTask, 1.0, 1));
  std::atomic<int> runs{0};
  {
    ThreadPool pool(2);
    pool.set_fault_injection(&injector, /*max_requeues=*/3);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();  // must terminate: past the bound, tasks run anyway
    pool.set_fault_injection(nullptr, 0);
  }
  EXPECT_EQ(runs.load(), 50);
}

// ---------------------------------------------------------------------------
// RetryPolicy and CircuitBreaker units
// ---------------------------------------------------------------------------

TEST(RetryPolicy, BackoffIsDeterministicBoundedAndGrowing) {
  RetryPolicy policy;
  policy.base_backoff_ms = 2.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 10.0;
  policy.jitter_seed = 99;
  const double d1 = policy.backoff_ms(1, 7);
  const double d2 = policy.backoff_ms(2, 7);
  const double d9 = policy.backoff_ms(9, 7);
  EXPECT_EQ(d1, policy.backoff_ms(1, 7));  // deterministic
  EXPECT_GE(d1, policy.base_backoff_ms);
  EXPECT_LT(d1, policy.base_backoff_ms * 1.5 + 1e-9);  // jitter < +50%
  EXPECT_GT(d2, d1 * 0.75);                            // roughly exponential
  EXPECT_LE(d9, policy.max_backoff_ms);                // capped
  // Different keys de-synchronize concurrent retries.
  bool jitter_varies = false;
  for (std::uint64_t key = 0; key < 32 && !jitter_varies; ++key) {
    jitter_varies = policy.backoff_ms(1, key) != d1;
  }
  EXPECT_TRUE(jitter_varies);
}

TEST(CircuitBreaker, OpensAfterThresholdRecoversViaHalfOpen) {
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 3;
  cfg.cooldown_ms = 50.0;
  CircuitBreaker breaker(cfg);
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.allow());
  breaker.tick_ms(49.0);
  EXPECT_FALSE(breaker.allow());
  breaker.tick_ms(1.0);
  EXPECT_TRUE(breaker.allow());  // half-open probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow());  // only one probe at a time
  breaker.record_failure();       // probe failed: straight back to open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  breaker.tick_ms(50.0);
  EXPECT_TRUE(breaker.allow());
  breaker.record_success();  // probe succeeded: closed again
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());
}

TEST(CircuitBreaker, ZeroThresholdDisables) {
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 0;
  CircuitBreaker breaker(cfg);
  for (int i = 0; i < 100; ++i) breaker.record_failure();
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.trips(), 0u);
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(WatchdogTest, KillsStalledToken) {
  Watchdog dog(/*stall_ms=*/30.0, /*poll_ms=*/5.0);
  auto token = std::make_shared<CancelToken>();
  dog.watch(token);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!token->expired() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(token->expired());
  EXPECT_EQ(token->status(), QueryStatus::kInternalError);
  EXPECT_EQ(dog.kills(), 1u);
}

TEST(WatchdogTest, SparesTokensThatMakeProgress) {
  Watchdog dog(/*stall_ms=*/400.0, /*poll_ms=*/10.0);
  auto token = std::make_shared<CancelToken>();
  dog.watch(token);
  for (int i = 0; i < 20; ++i) {
    token->report_progress();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  dog.unwatch(token);
  EXPECT_FALSE(token->expired());
  EXPECT_EQ(dog.kills(), 0u);
}

TEST(WatchdogTest, KilledTokenStopsEngineWithInternalError) {
  // The kill flows through the normal cooperative-cancellation path: an
  // engine handed an already-killed token returns kInternalError.
  const Graph g = chaos_graph();
  MatchingPlan plan(reorder_for_matching(query(1)), {});
  CancelToken token;
  token.fail(QueryStatus::kInternalError);
  HostMatchResult host = host_match(g, plan, {}, &token);
  EXPECT_EQ(host.stats.status, QueryStatus::kInternalError);
  MatchResult simt = stmatch_match(g, plan, {}, &token);
  EXPECT_EQ(simt.query.status, QueryStatus::kInternalError);
}

// ---------------------------------------------------------------------------
// Service-level resilience: retry, fallback chain, breaker, degradation
// ---------------------------------------------------------------------------

QueryRequest chaos_request(EngineKind engine, const Pattern& p) {
  QueryRequest req;
  req.pattern = p;
  req.engine = engine;
  req.deadline_ms = -1.0;
  return req;
}

TEST(ServiceChaos, SimtFailureFallsBackToHost) {
  GraphSession session(chaos_graph());
  const Pattern p = Pattern::parse("0-1,1-2,2-0");
  const std::uint64_t expected = reference_count(session.graph(), p);
  QueryRequest req = chaos_request(EngineKind::kSimt, p);
  req.simt.fault = fault_cfg(FaultSite::kEngineThrow, 1.0, 1);
  QueryResult r = session.run(req);
  ASSERT_EQ(r.status, QueryStatus::kOk);
  EXPECT_EQ(r.count, expected);
  EXPECT_EQ(r.served_by, EngineKind::kHost);
  EXPECT_TRUE(r.degraded);
  EXPECT_GE(r.attempts, 2u);
  EXPECT_GE(session.metrics().counter("engine_fallbacks").value(), 1u);
  EXPECT_EQ(session.metrics().counter("queries_degraded").value(), 1u);
}

TEST(ServiceChaos, HostFailureFallsBackToReference) {
  GraphSession session(chaos_graph());
  const Pattern p = Pattern::parse("0-1,1-2,2-0");
  const std::uint64_t expected = reference_count(session.graph(), p);
  QueryRequest req = chaos_request(EngineKind::kHost, p);
  req.host.fault = fault_cfg(FaultSite::kEngineThrow, 1.0, 1);
  QueryResult r = session.run(req);
  ASSERT_EQ(r.status, QueryStatus::kOk);
  EXPECT_EQ(r.count, expected);
  EXPECT_EQ(r.served_by, EngineKind::kReference);
  EXPECT_TRUE(r.degraded);
}

TEST(ServiceChaos, TransientFaultClearsOnRetry) {
  // Search for a seed whose kEngineThrow decision fires at incarnation 0 but
  // clears at incarnation 1: the retry (same engine) must then succeed.
  const double rate = 0.5;
  std::uint64_t seed = 0;
  for (;; ++seed) {
    ASSERT_LT(seed, 100000u) << "no transient seed found";
    FaultConfig c0 = fault_cfg(FaultSite::kEngineThrow, rate, seed);
    FaultConfig c1 = c0;
    c1.incarnation = 1;
    if (FaultInjector(c0).decide(FaultSite::kEngineThrow, 0) < rate &&
        FaultInjector(c1).decide(FaultSite::kEngineThrow, 0) >= rate) {
      break;
    }
  }
  SessionConfig cfg;
  cfg.resilience.retry.max_attempts = 2;
  cfg.resilience.retry.base_backoff_ms = 0.1;
  cfg.resilience.enable_fallback = false;
  GraphSession session(chaos_graph(), cfg);
  const Pattern p = Pattern::parse("0-1,1-2,2-0");
  QueryRequest req = chaos_request(EngineKind::kHost, p);
  req.host.fault = fault_cfg(FaultSite::kEngineThrow, rate, seed);
  QueryResult r = session.run(req);
  ASSERT_EQ(r.status, QueryStatus::kOk);
  EXPECT_EQ(r.count, reference_count(session.graph(), p));
  EXPECT_EQ(r.served_by, EngineKind::kHost);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_EQ(session.metrics().counter("engine_retries").value(), 1u);
}

TEST(ServiceChaos, ExhaustedChainReportsInternalErrorAndSessionSurvives) {
  // Exception-safety regression: every engine call throws, fallback is off —
  // the dispatcher thread must survive, the admission slot must be released,
  // and the session must keep serving.
  SessionConfig cfg;
  cfg.resilience.retry.max_attempts = 2;
  cfg.resilience.retry.base_backoff_ms = 0.1;
  cfg.resilience.enable_fallback = false;
  GraphSession session(chaos_graph(), cfg);
  const Pattern p = Pattern::parse("0-1,1-2,2-0");
  QueryRequest req = chaos_request(EngineKind::kHost, p);
  req.host.fault = fault_cfg(FaultSite::kEngineThrow, 1.0, 1);
  QueryResult r = session.run(req);
  EXPECT_EQ(r.status, QueryStatus::kInternalError);
  EXPECT_FALSE(r.error.empty());
  // The session is still fully usable afterwards.
  QueryResult clean = session.run(chaos_request(EngineKind::kHost, p));
  ASSERT_EQ(clean.status, QueryStatus::kOk);
  EXPECT_EQ(clean.count, reference_count(session.graph(), p));
  MetricsRegistry& m = session.metrics();
  EXPECT_EQ(m.counter("queries_submitted").value(),
            m.counter("queries_completed").value() +
                m.counter("queries_failed").value() +
                m.counter("queries_rejected").value());
}

TEST(ServiceChaos, BreakerSkipsEngineAfterConsecutiveFailures) {
  SessionConfig cfg;
  cfg.resilience.retry.max_attempts = 1;
  cfg.resilience.breaker.failure_threshold = 2;
  cfg.resilience.breaker.cooldown_ms = 1e9;  // never half-opens in this test
  GraphSession session(chaos_graph(), cfg);
  const Pattern p = Pattern::parse("0-1,1-2,2-0");
  const std::uint64_t expected = reference_count(session.graph(), p);
  auto failing_request = [&] {
    QueryRequest req = chaos_request(EngineKind::kSimt, p);
    req.simt.fault = fault_cfg(FaultSite::kEngineThrow, 1.0, 1);
    return req;
  };
  // Two failures trip the SIMT breaker (each query falls back to host).
  for (int i = 0; i < 2; ++i) {
    QueryResult r = session.run(failing_request());
    ASSERT_EQ(r.status, QueryStatus::kOk);
    EXPECT_EQ(r.served_by, EngineKind::kHost);
  }
  EXPECT_EQ(session.breaker_state(EngineKind::kSimt),
            CircuitBreaker::State::kOpen);
  // The third query skips SIMT entirely: one host attempt, no simt call.
  QueryResult r = session.run(failing_request());
  ASSERT_EQ(r.status, QueryStatus::kOk);
  EXPECT_EQ(r.count, expected);
  EXPECT_EQ(r.served_by, EngineKind::kHost);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_GE(session.metrics().counter("breaker_skips").value(), 1u);
}

TEST(ServiceChaos, InvalidArgumentIsTerminalNotRetried) {
  GraphSession session(chaos_graph());
  QueryRequest req;
  req.pattern = Pattern::parse("0-1,1-2,2-0");
  req.plan.induced = Induced::kVertex;
  req.deadline_ms = -1.0;
  // A disconnected pattern cannot be reordered into a matching order; the
  // compile failure must surface as kInvalidArgument with detail, without
  // walking the fallback chain.
  Pattern disconnected(4, {{0, 1}, {2, 3}});
  req.pattern = disconnected;
  QueryResult r = session.run(std::move(req));
  EXPECT_EQ(r.status, QueryStatus::kInvalidArgument);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(session.metrics().counter("engine_fallbacks").value(), 0u);
  EXPECT_EQ(session.metrics().counter("queries_failed").value(), 1u);
}

TEST(ServiceChaos, DispatcherPoolChaosLosesNoQueries) {
  SessionConfig cfg;
  cfg.max_concurrent_queries = 3;
  cfg.max_queued_queries = 64;
  cfg.resilience.pool_fault = fault_cfg(FaultSite::kPoolTask, 0.3, 23);
  GraphSession session(chaos_graph(), cfg);
  const Pattern p = Pattern::parse("0-1,1-2,2-0");
  const std::uint64_t expected = reference_count(session.graph(), p);
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(session.submit(chaos_request(EngineKind::kHost, p)));
  }
  for (auto& f : futures) {
    QueryResult r = f.get();
    ASSERT_EQ(r.status, QueryStatus::kOk);
    EXPECT_EQ(r.count, expected);
  }
  MetricsRegistry& m = session.metrics();
  EXPECT_EQ(m.counter("queries_completed").value(), 32u);
}

TEST(ServiceChaos, SimtRecoveryFaultsSurfaceInMetrics) {
  GraphSession session(chaos_graph());
  const Pattern p = query(1);
  QueryRequest req = chaos_request(EngineKind::kSimt, p);
  req.simt.fault = fault_cfg(FaultSite::kWarpAbort, 0.1, 11);
  QueryResult r = session.run(req);
  ASSERT_EQ(r.status, QueryStatus::kOk);
  EXPECT_EQ(r.count, reference_count(session.graph(), p));
  EXPECT_FALSE(r.degraded);
  EXPECT_GT(r.stats.faults_injected, 0u);
  EXPECT_EQ(session.metrics().counter("faults_injected_total").value(),
            r.stats.faults_injected);
  EXPECT_EQ(session.metrics().counter("recovery_units_total").value(),
            r.stats.units_recovered);
}

// ---------------------------------------------------------------------------
// Error detail population (every non-kOk result carries `error`)
// ---------------------------------------------------------------------------

TEST(ServiceErrors, DeadlineExceededCarriesDetail) {
  GraphSession session(chaos_graph());
  QueryRequest req = chaos_request(EngineKind::kHost,
                                   Pattern::parse("0-1,1-2,2-0"));
  req.deadline_ms = 1e-6;  // burned before the dispatcher picks it up
  QueryResult r = session.run(std::move(req));
  EXPECT_EQ(r.status, QueryStatus::kDeadlineExceeded);
  EXPECT_FALSE(r.error.empty());
}

TEST(ServiceErrors, CancelledCarriesDetail) {
  SessionConfig cfg;
  cfg.max_concurrent_queries = 1;
  GraphSession session(chaos_graph(), cfg);
  // Cancel a token by hand through the public API: cancel_all between
  // submit and execution. Use a burst so some queries are still queued.
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(session.submit(
        chaos_request(EngineKind::kHost, query(1))));
  }
  session.cancel_all();
  bool saw_cancelled = false;
  for (auto& f : futures) {
    QueryResult r = f.get();
    if (r.status == QueryStatus::kCancelled) {
      saw_cancelled = true;
      EXPECT_FALSE(r.error.empty());
    }
  }
  // Timing-dependent how many got in before the cancel, but with one worker
  // and eight queries at least the tail must have been cancelled.
  EXPECT_TRUE(saw_cancelled);
}

TEST(ServiceErrors, OverloadedCarriesDetail) {
  SessionConfig cfg;
  cfg.max_concurrent_queries = 1;
  cfg.max_queued_queries = 0;
  GraphSession session(make_erdos_renyi(200, 0.1, 3), cfg);
  auto slow = session.submit(chaos_request(EngineKind::kHost, query(8)));
  bool saw_rejection = false;
  for (int i = 0; i < 16 && !saw_rejection; ++i) {
    QueryResult r = session
                        .submit(chaos_request(EngineKind::kHost,
                                              Pattern::parse("0-1,1-2,2-0")))
                        .get();
    if (r.status == QueryStatus::kOverloaded) {
      saw_rejection = true;
      EXPECT_FALSE(r.error.empty());
      EXPECT_EQ(r.attempts, 0u);
    }
  }
  session.cancel_all();
  slow.get();
  EXPECT_TRUE(saw_rejection);
}

// ---------------------------------------------------------------------------
// Ingestion hardening: corrupt input => check_error, never UB
// ---------------------------------------------------------------------------

TEST(IngestionHardening, EdgeListRejectsGarbage) {
  std::istringstream junk("abc def\n");
  EXPECT_THROW(read_edge_list(junk), check_error);
  std::istringstream partial_number("12abc 3\n");
  EXPECT_THROW(read_edge_list(partial_number), check_error);
  std::istringstream negative("-1 2\n");
  EXPECT_THROW(read_edge_list(negative), check_error);
  std::istringstream huge("99999999999999999999 1\n");
  EXPECT_THROW(read_edge_list(huge), check_error);
  std::istringstream too_large("1073741825 1\n");  // > kMaxVertices
  EXPECT_THROW(read_edge_list(too_large), check_error);
  // Blank lines and comments are still fine.
  std::istringstream good("# header\n\n0 1\n1 2 # trailing comment\n");
  Graph g = read_edge_list(good);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(IngestionHardening, GraphBuilderRejectsOutOfRangeIds) {
  GraphBuilder builder;
  EXPECT_THROW(builder.add_edge(kMaxVertices, 0), check_error);
  EXPECT_THROW(builder.add_edge(0, ~VertexId{0}), check_error);
  EXPECT_THROW(builder.set_num_vertices(kMaxVertices + 1), check_error);
}

TEST(IngestionHardening, GraphRejectsOutOfRangeLabels) {
  // Label 64 exceeds kMaxLabels - 1 and must be rejected at construction.
  EXPECT_THROW(Graph({0, 1, 2}, {1, 0}, {64, 0}), check_error);
}

TEST(IngestionHardening, PatternParseRejectsGarbage) {
  EXPECT_THROW(Pattern::parse("a-b"), check_error);
  EXPECT_THROW(Pattern::parse("1-"), check_error);
  EXPECT_THROW(Pattern::parse("-1"), check_error);
  EXPECT_THROW(Pattern::parse("0-1,,2-3"), check_error);
  EXPECT_THROW(Pattern::parse("0-99999999999999999999"), check_error);
  EXPECT_THROW(Pattern::parse("0-8"), check_error);  // >= kMaxPatternSize
  EXPECT_THROW(Pattern::parse(""), check_error);
  // The well-formed cases still parse.
  EXPECT_EQ(Pattern::parse("0-1,1-2,2-0").size(), 3u);
}

}  // namespace
}  // namespace stm
