// Tests for the dynamic graph subsystem: MutableGraph batch application,
// GraphSnapshot versioning/isolation, DeltaOverlay, apply-path fault
// injection, and edge-list load validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/reference.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "pattern/pattern.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stm {
namespace {

Graph path4() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  return b.build();
}

/// Every undirected edge of `g`, u < v, sorted.
std::vector<std::pair<VertexId, VertexId>> edge_set(const Graph& g) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.neighbors(u))
      if (u < v) edges.emplace_back(u, v);
  return edges;
}

// ---------------------------------------------------------------------------
// MutableGraph: apply / normalize / redundancy / validation
// ---------------------------------------------------------------------------

TEST(DynamicGraph, ApplyInsertsAndDeletes) {
  MutableGraph g(path4());
  EXPECT_EQ(g.epoch(), 0u);

  UpdateBatch batch;
  batch.insertions = {{3, 0}, {1, 3}};  // any orientation
  batch.deletions = {{1, 2}};
  ApplyResult r = g.apply(batch);

  EXPECT_EQ(r.snapshot->epoch(), 1u);
  EXPECT_EQ(g.epoch(), 1u);
  EXPECT_EQ(r.stats.inserted, 2u);
  EXPECT_EQ(r.stats.deleted, 1u);
  EXPECT_EQ(r.snapshot->num_edges(), 4u);
  EXPECT_TRUE(r.snapshot->has_edge(0, 3));
  EXPECT_TRUE(r.snapshot->has_edge(1, 3));
  EXPECT_FALSE(r.snapshot->has_edge(1, 2));
  EXPECT_TRUE(r.snapshot->has_edge(0, 1));
  // Effective delta is normalized: u < v, sorted.
  ASSERT_EQ(r.applied.inserted.size(), 2u);
  EXPECT_EQ(r.applied.inserted[0], (std::pair<VertexId, VertexId>{0, 3}));
  EXPECT_EQ(r.applied.inserted[1], (std::pair<VertexId, VertexId>{1, 3}));
  ASSERT_EQ(r.applied.deleted.size(), 1u);
}

TEST(DynamicGraph, RedundantUpdatesAreReportedNotApplied) {
  MutableGraph g(path4());
  UpdateBatch batch;
  batch.insertions = {{0, 1}, {1, 0}, {0, 3}};  // 0-1 exists; duplicate listing
  batch.deletions = {{0, 2}};                   // absent
  ApplyResult r = g.apply(batch);
  EXPECT_EQ(r.stats.inserted, 1u);
  EXPECT_EQ(r.stats.ignored_existing, 1u);
  EXPECT_EQ(r.stats.deleted, 0u);
  EXPECT_EQ(r.stats.ignored_missing, 1u);
  EXPECT_EQ(r.applied.size(), 1u);
  EXPECT_EQ(r.snapshot->num_edges(), 4u);
}

TEST(DynamicGraph, NoOpBatchKeepsEpochAndSnapshot) {
  MutableGraph g(path4());
  auto before = g.snapshot();
  UpdateBatch batch;
  batch.insertions = {{0, 1}};  // already present
  ApplyResult r = g.apply(batch);
  EXPECT_EQ(r.snapshot, before);
  EXPECT_EQ(g.epoch(), 0u);
  EXPECT_TRUE(r.applied.empty());

  ApplyResult empty = g.apply(UpdateBatch{});
  EXPECT_EQ(empty.snapshot, before);
  EXPECT_EQ(g.epoch(), 0u);
}

TEST(DynamicGraph, InvalidBatchesAreRejected) {
  MutableGraph g(path4());
  {
    UpdateBatch b;
    b.insertions = {{2, 2}};  // self-loop
    EXPECT_THROW(g.apply(b), check_error);
  }
  {
    UpdateBatch b;
    b.insertions = {{0, 4}};  // out of range
    EXPECT_THROW(g.apply(b), check_error);
  }
  {
    UpdateBatch b;
    b.insertions = {{0, 2}};
    b.deletions = {{2, 0}};  // same edge both ways
    EXPECT_THROW(g.apply(b), check_error);
  }
  // Failed batches leave the graph untouched.
  EXPECT_EQ(g.epoch(), 0u);
  EXPECT_EQ(g.snapshot()->num_edges(), 3u);
}

TEST(DynamicGraph, ViewMatchesCompactedAdjacency) {
  Graph base = make_erdos_renyi(30, 0.2, 7);
  MutableGraph g(base);
  Rng rng(11);
  for (int step = 0; step < 10; ++step) {
    UpdateBatch batch;
    for (int i = 0; i < 6; ++i) {
      const auto u = static_cast<VertexId>(rng() % 30);
      const auto v = static_cast<VertexId>(rng() % 30);
      if (u == v) continue;
      if (rng() % 2 == 0) {
        batch.insertions.emplace_back(u, v);
      } else {
        batch.deletions.emplace_back(u, v);
      }
    }
    // Redundancy is legal but overlap is not; strip overlapping pairs.
    auto canon = [](std::pair<VertexId, VertexId> e) {
      if (e.first > e.second) std::swap(e.first, e.second);
      return e;
    };
    for (auto& e : batch.insertions) e = canon(e);
    for (auto& e : batch.deletions) e = canon(e);
    std::erase_if(batch.deletions, [&](const auto& d) {
      return std::find(batch.insertions.begin(), batch.insertions.end(), d) !=
             batch.insertions.end();
    });
    g.apply(batch);
  }
  auto snap = g.snapshot();
  Graph compacted = snap->compacted();
  ASSERT_EQ(compacted.num_vertices(), snap->num_vertices());
  EXPECT_EQ(compacted.num_edges(), snap->num_edges());
  GraphView view = snap->view();
  for (VertexId u = 0; u < compacted.num_vertices(); ++u) {
    auto nbrs = view.neighbors(u);
    std::vector<VertexId> from_view(nbrs.begin(), nbrs.end());
    auto ref = compacted.neighbors(u);
    std::vector<VertexId> from_csr(ref.begin(), ref.end());
    EXPECT_EQ(from_view, from_csr) << "vertex " << u;
  }
}

TEST(DynamicGraph, CompactPreservesGraphAndEpoch) {
  MutableGraph g(path4());
  UpdateBatch batch;
  batch.insertions = {{0, 2}, {0, 3}};
  batch.deletions = {{1, 2}};
  g.apply(batch);
  const auto before_edges = edge_set(g.snapshot()->compacted());
  const std::uint64_t epoch = g.epoch();

  auto compacted = g.compact();
  EXPECT_EQ(compacted->epoch(), epoch);  // same logical graph
  EXPECT_TRUE(compacted->delta_from_base().empty());
  EXPECT_EQ(edge_set(compacted->base()), before_edges);
  EXPECT_EQ(compacted->num_edges(), before_edges.size());

  // Updates keep working after compaction.
  UpdateBatch more;
  more.insertions = {{1, 2}};
  ApplyResult r = g.apply(more);
  EXPECT_EQ(r.snapshot->epoch(), epoch + 1);
  EXPECT_TRUE(r.snapshot->has_edge(1, 2));
}

TEST(DynamicGraph, DeltaOverlayLayersOnSnapshot) {
  MutableGraph g(path4());
  UpdateBatch batch;
  batch.insertions = {{0, 2}};
  auto snap = g.apply(batch).snapshot;

  DeltaOverlay overlay(snap);
  EXPECT_TRUE(overlay.has_edge(0, 2));  // reads through to the snapshot
  overlay.add_edge(0, 3);
  overlay.remove_edge(1, 2);
  EXPECT_TRUE(overlay.has_edge(0, 3));
  EXPECT_FALSE(overlay.has_edge(1, 2));
  // The snapshot is untouched.
  EXPECT_FALSE(snap->has_edge(0, 3));
  EXPECT_TRUE(snap->has_edge(1, 2));
  // Adding a present edge / removing an absent one is misuse.
  EXPECT_THROW(overlay.add_edge(0, 1), check_error);
  EXPECT_THROW(overlay.remove_edge(1, 2), check_error);
}

// ---------------------------------------------------------------------------
// Fault injection on the apply path
// ---------------------------------------------------------------------------

TEST(DynamicGraphFault, FailedApplyIsAtomic) {
  MutableGraph g(path4());
  FaultConfig fault;
  fault.seed = 42;
  fault.set_rate(FaultSite::kUpdateApply, 1.0);  // every batch fails
  g.set_fault(fault);

  UpdateBatch batch;
  batch.insertions = {{0, 2}};
  EXPECT_THROW(g.apply(batch), FaultInjectedError);
  // Validation passed, publication did not: nothing changed.
  EXPECT_EQ(g.epoch(), 0u);
  EXPECT_FALSE(g.snapshot()->has_edge(0, 2));
  EXPECT_EQ(g.snapshot()->num_edges(), 3u);
}

TEST(DynamicGraphFault, ScheduleIsDeterministic) {
  FaultConfig fault;
  fault.seed = 7;
  fault.set_rate(FaultSite::kUpdateApply, 0.5);

  auto run_schedule = [&] {
    MutableGraph g(path4());
    g.set_fault(fault);
    std::vector<bool> failed;
    const std::pair<VertexId, VertexId> edges[] = {{0, 2}, {0, 3}, {1, 3}};
    for (const auto& e : edges) {
      UpdateBatch b;
      b.insertions = {e};
      try {
        g.apply(b);
        failed.push_back(false);
      } catch (const FaultInjectedError&) {
        failed.push_back(true);
      }
    }
    return failed;
  };
  EXPECT_EQ(run_schedule(), run_schedule());
}

// ---------------------------------------------------------------------------
// Snapshot isolation (the TSan target: concurrent readers vs. a writer)
// ---------------------------------------------------------------------------

TEST(SnapshotIsolation, HeldSnapshotIsImmutableAcrossUpdates) {
  MutableGraph g(path4());
  auto old_snap = g.snapshot();
  const Pattern wedge = Pattern::parse("0-1,1-2");
  const std::uint64_t before =
      reference_count(old_snap->view(), wedge, {});

  UpdateBatch batch;
  batch.insertions = {{0, 2}, {0, 3}, {1, 3}};
  g.apply(batch);

  // The held snapshot still answers with the old version.
  EXPECT_EQ(old_snap->epoch(), 0u);
  EXPECT_EQ(reference_count(old_snap->view(), wedge, {}), before);
  EXPECT_NE(reference_count(g.snapshot()->view(), wedge, {}), before);
}

TEST(SnapshotIsolation, ConcurrentReadersSeeEpochConsistentCounts) {
  // Writer applies batches while readers enumerate on held snapshots; each
  // reader's count must equal the reference count of its snapshot's epoch.
  // Run under TSan to certify the publication path data-race-free.
  Graph base = make_erdos_renyi(40, 0.12, 3);
  MutableGraph g(base);
  const Pattern triangle = Pattern::parse("0-1,1-2,2-0");

  // Precompute per-epoch expected counts by replaying the same batches.
  constexpr int kBatches = 12;
  std::vector<UpdateBatch> batches;
  Rng rng(99);
  for (int i = 0; i < kBatches; ++i) {
    UpdateBatch b;
    for (int j = 0; j < 5; ++j) {
      auto u = static_cast<VertexId>(rng() % 40);
      auto v = static_cast<VertexId>(rng() % 40);
      if (u != v) b.insertions.emplace_back(u, v);
    }
    batches.push_back(std::move(b));
  }
  std::vector<std::uint64_t> expected;  // expected[e] = count at epoch e
  {
    MutableGraph replay(base);
    expected.push_back(reference_count(replay.snapshot()->view(), triangle, {}));
    for (const auto& b : batches) {
      auto snap = replay.apply(b).snapshot;
      while (expected.size() <= snap->epoch())
        expected.push_back(reference_count(snap->view(), triangle, {}));
    }
  }

  std::atomic<bool> done{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto snap = g.snapshot();
        const std::uint64_t count =
            reference_count(snap->view(), triangle, {});
        if (snap->epoch() >= expected.size() ||
            count != expected[snap->epoch()]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (const auto& b : batches) g.apply(b);
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(g.epoch(), static_cast<std::uint64_t>(expected.size() - 1));
}

// ---------------------------------------------------------------------------
// Edge-list load validation (strict / lenient)
// ---------------------------------------------------------------------------

TEST(DynamicEdgeList, LenientDedupesAndReports) {
  std::istringstream in(
      "# comment\n"
      "0 1\n"
      "1 0\n"   // duplicate (reversed orientation)
      "0 1\n"   // duplicate (same orientation)
      "2 2\n"   // self-loop
      "1 2\n");
  EdgeListStats stats;
  Graph g = read_edge_list(in, {}, &stats);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(stats.lines, 5u);
  EXPECT_EQ(stats.duplicate_edges, 2u);
  EXPECT_EQ(stats.self_loops, 1u);
  EXPECT_EQ(stats.edges_kept, 2u);
}

TEST(DynamicEdgeList, StrictRejectsDuplicates) {
  std::istringstream in("0 1\n1 0\n");
  EdgeListOptions opts;
  opts.validation = EdgeListValidation::kStrict;
  EXPECT_THROW(read_edge_list(in, opts), check_error);
}

TEST(DynamicEdgeList, StrictRejectsSelfLoops) {
  std::istringstream in("0 1\n2 2\n");
  EdgeListOptions opts;
  opts.validation = EdgeListValidation::kStrict;
  EXPECT_THROW(read_edge_list(in, opts), check_error);
}

TEST(DynamicEdgeList, StrictAcceptsCleanInput) {
  std::istringstream in("0 1\n1 2\n2 0\n");
  EdgeListOptions opts;
  opts.validation = EdgeListValidation::kStrict;
  EdgeListStats stats;
  Graph g = read_edge_list(in, opts, &stats);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(stats.duplicate_edges, 0u);
  EXPECT_EQ(stats.self_loops, 0u);
}

}  // namespace
}  // namespace stm
