// Tests for the compressed & out-of-core storage subsystem (DESIGN.md §14):
// delta/varint encoding + skip-anchor cursors, decode-on-intersect set ops,
// the page file / clock pager, GraphStore backend equivalence, compressed
// checkpoints, the service-layer wiring, and the chaos / differential
// suites (StorageChaos, StorageDifferential, StorageSpillGate run under
// their own ctest labels).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "core/host_engine.hpp"
#include "graph/generators.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/pattern.hpp"
#include "persist/checkpoint.hpp"
#include "service/service.hpp"
#include "setops/set_ops.hpp"
#include "setops/storage_ops.hpp"
#include "storage/compressed.hpp"
#include "storage/encoding.hpp"
#include "storage/pagefile.hpp"
#include "storage/pager.hpp"
#include "storage/store.hpp"
#include "testing/minimize.hpp"
#include "testing/oracle.hpp"
#include "testing/repro.hpp"
#include "testing/seed.hpp"
#include "testing/workload.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stm {
namespace {

using storage::Backend;
using storage::encode_adjacency;
using storage::GraphStore;
using storage::ListCursor;
using storage::StoragePolicy;

std::vector<VertexId> sorted_unique_list(Rng& rng, std::size_t size,
                                         VertexId universe) {
  std::vector<VertexId> v;
  while (v.size() < size)
    v.push_back(static_cast<VertexId>(rng.next_below(universe)));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::vector<VertexId> neighbors_of(const GraphView& view, VertexId v) {
  const auto s = view.neighbors(v);
  return std::vector<VertexId>(s.begin(), s.end());
}

std::vector<VertexId> neighbors_of(const Graph& g, VertexId v) {
  const auto s = g.neighbors(v);
  return std::vector<VertexId>(s.begin(), s.end());
}

// ---------------------------------------------------------------------------
// StorageEncoding: varint/delta lists and the skip-anchor cursor
// ---------------------------------------------------------------------------

TEST(StorageEncoding, RoundtripAcrossDegreesAndBlockSizes) {
  Rng rng(0x5701);
  for (const std::uint32_t block : {1u, 4u, 32u, 256u}) {
    for (const std::size_t degree : {std::size_t{0}, std::size_t{1},
                                     std::size_t{31}, std::size_t{32},
                                     std::size_t{33}, std::size_t{1000}}) {
      const std::vector<VertexId> list =
          sorted_unique_list(rng, degree, 1 << 20);
      std::vector<std::uint8_t> bytes;
      encode_adjacency(list.data(), list.size(), block, bytes);
      std::vector<VertexId> back;
      storage::decode_adjacency(bytes.data(), bytes.data() + bytes.size(),
                                block, back);
      EXPECT_EQ(back, list) << "block=" << block << " degree=" << degree;
    }
  }
}

TEST(StorageEncoding, CursorMatchesLowerBoundInAnyProbeOrder) {
  Rng rng(0x5702);
  const std::vector<VertexId> list = sorted_unique_list(rng, 500, 40000);
  std::vector<std::uint8_t> bytes;
  encode_adjacency(list.data(), list.size(), 32, bytes);
  ListCursor cursor(bytes.data(), bytes.data() + bytes.size(), 32);
  ASSERT_EQ(cursor.degree(), list.size());
  // Probes jump forward and backward; backward seeks restart from anchors.
  for (int probe = 0; probe < 400; ++probe) {
    const auto x = static_cast<VertexId>(rng.next_below(41000));
    cursor.seek_at_least(x);
    const auto it = std::lower_bound(list.begin(), list.end(), x);
    if (it == list.end()) {
      EXPECT_TRUE(cursor.done()) << "x=" << x;
    } else {
      ASSERT_FALSE(cursor.done()) << "x=" << x;
      EXPECT_EQ(cursor.value(), *it) << "x=" << x;
      EXPECT_EQ(cursor.index(),
                static_cast<std::uint32_t>(it - list.begin()));
    }
  }
}

TEST(StorageEncoding, CursorAdvanceAndDecodeRemaining) {
  Rng rng(0x5703);
  const std::vector<VertexId> list = sorted_unique_list(rng, 100, 5000);
  std::vector<std::uint8_t> bytes;
  encode_adjacency(list.data(), list.size(), 32, bytes);
  ListCursor cursor(bytes.data(), bytes.data() + bytes.size(), 32);
  std::vector<VertexId> walked;
  for (std::size_t i = 0; i < list.size() / 2; ++i) {
    walked.push_back(cursor.value());
    cursor.advance();
  }
  cursor.decode_remaining(walked);
  EXPECT_EQ(walked, list);
  EXPECT_TRUE(cursor.done());
  EXPECT_EQ(cursor.position(), bytes.data() + bytes.size());
}

TEST(StorageEncoding, UnsortedAtBlockBoundaryFailsClosed) {
  // Strictly ascending inside every block but out of order exactly at the
  // block seam (list[4] < list[3] with block_size 4): the per-block gap
  // checks never see this pair, so a dedicated boundary check must reject
  // it — encoded silently it would produce a non-monotone anchor table and
  // break seek_at_least's binary search.
  const std::vector<VertexId> seam = {10, 20, 30, 40, 35, 50, 60, 70};
  std::vector<std::uint8_t> bytes;
  EXPECT_THROW(encode_adjacency(seam.data(), seam.size(), 4, bytes),
               check_error);
  // A duplicate across the seam violates strictness the same way.
  const std::vector<VertexId> dup = {10, 20, 30, 40, 40, 50, 60, 70};
  bytes.clear();
  EXPECT_THROW(encode_adjacency(dup.data(), dup.size(), 4, bytes),
               check_error);
}

TEST(StorageEncoding, TruncatedBytesFailClosed) {
  Rng rng(0x5704);
  const std::vector<VertexId> list = sorted_unique_list(rng, 200, 100000);
  std::vector<std::uint8_t> bytes;
  encode_adjacency(list.data(), list.size(), 32, bytes);
  std::vector<VertexId> out;
  EXPECT_THROW(storage::decode_adjacency(bytes.data(),
                                         bytes.data() + bytes.size() / 2, 32,
                                         out),
               check_error);
}

// ---------------------------------------------------------------------------
// StorageCompressed: whole-graph blob + bitset rows
// ---------------------------------------------------------------------------

TEST(StorageCompressed, DecodeAndHasEdgeMatchRawGraph) {
  const Graph g = make_barabasi_albert(400, 5, 11);
  // Threshold low enough that the BA hubs get bitset rows.
  const storage::CompressedGraph comp(g, 32, /*bitset_min_degree=*/24);
  EXPECT_GT(comp.stats().num_bitset_rows, 0u);
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out.clear();  // decode_into appends
    comp.decode_into(v, out);
    EXPECT_EQ(out, neighbors_of(g, v)) << "v=" << v;
  }
  Rng rng(0x5705);
  for (int i = 0; i < 2000; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    const auto v = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    EXPECT_EQ(comp.has_edge(u, v), g.has_edge(u, v)) << u << "-" << v;
  }
}

TEST(StorageCompressed, PowerLawGraphCompresses) {
  const Graph g = make_barabasi_albert(2000, 8, 23);
  const storage::CompressedGraph comp(g, 32, 0);
  EXPECT_GT(comp.stats().compression_ratio(), 1.0);
}

// ---------------------------------------------------------------------------
// StorageSetOps: decode-on-intersect, bit-exact vs the scalar kernels
// ---------------------------------------------------------------------------

TEST(StorageSetOps, CursorOpsMatchScalarOps) {
  Rng rng(0x5706);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t da = 1 + rng.next_below(300);
    const std::size_t db = 1 + rng.next_below(300);
    const auto universe = static_cast<VertexId>(64 + rng.next_below(4000));
    const std::vector<VertexId> a = sorted_unique_list(rng, da, universe);
    const std::vector<VertexId> b = sorted_unique_list(rng, db, universe);
    std::vector<std::uint8_t> bytes;
    encode_adjacency(a.data(), a.size(), 32, bytes);
    const auto fresh = [&] {
      return ListCursor(bytes.data(), bytes.data() + bytes.size(), 32);
    };

    std::vector<VertexId> want, got;
    set_intersect_into(a, b, want);
    ListCursor c1 = fresh();
    storage::cursor_intersect_into(c1, b, got);
    EXPECT_EQ(got, want) << "trial " << trial;
    ListCursor c2 = fresh();
    EXPECT_EQ(storage::cursor_intersect_count(c2, b), want.size());

    // Engine operand order: candidate set minus adjacency list.
    set_difference_into(b, a, want);
    ListCursor c3 = fresh();
    storage::cursor_difference_into(c3, b, got);
    EXPECT_EQ(got, want) << "trial " << trial;
    ListCursor c4 = fresh();
    EXPECT_EQ(storage::cursor_difference_count(c4, b), want.size());
  }
}

TEST(StorageSetOps, BitsetOpsMatchScalarOps) {
  Rng rng(0x5707);
  for (int trial = 0; trial < 60; ++trial) {
    const auto universe = static_cast<VertexId>(64 + rng.next_below(2000));
    const std::vector<VertexId> a =
        sorted_unique_list(rng, 1 + rng.next_below(400), universe);
    const std::vector<VertexId> b =
        sorted_unique_list(rng, 1 + rng.next_below(400), universe);
    DynamicBitset bits(universe);
    for (const VertexId v : a) bits.set(v);

    std::vector<VertexId> want, got;
    set_intersect_into(a, b, want);
    storage::bitset_intersect_into(bits, b, got);
    EXPECT_EQ(got, want) << "trial " << trial;
    EXPECT_EQ(storage::bitset_intersect_count(bits, b), want.size());

    set_difference_into(b, a, want);
    storage::bitset_difference_into(bits, b, got);
    EXPECT_EQ(got, want) << "trial " << trial;
    EXPECT_EQ(storage::bitset_difference_count(bits, b), want.size());
  }
}

TEST(StorageSetOps, AdjacencyDispatchCoversBitsetAndCursorRows) {
  const Graph g = make_barabasi_albert(300, 6, 31);
  const storage::CompressedGraph comp(g, 32, /*bitset_min_degree=*/20);
  ASSERT_GT(comp.stats().num_bitset_rows, 0u);
  Rng rng(0x5708);
  const std::vector<VertexId> operand =
      sorted_unique_list(rng, 80, g.num_vertices());
  std::vector<VertexId> want, got;
  bool saw_bitset = false, saw_cursor = false;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    (comp.has_bitset(v) ? saw_bitset : saw_cursor) = true;
    set_intersect_into(neighbors_of(g, v), operand, want);
    storage::adjacency_intersect_into(comp, v, operand, got);
    EXPECT_EQ(got, want) << "v=" << v;
    EXPECT_EQ(storage::adjacency_intersect_count(comp, v, operand),
              want.size());
  }
  EXPECT_TRUE(saw_bitset);
  EXPECT_TRUE(saw_cursor);
}

// ---------------------------------------------------------------------------
// StoragePager: page file layout and the budget-bounded clock cache
// ---------------------------------------------------------------------------

TEST(StoragePager, PageFileRoundtripsEveryVertex) {
  const Graph g = make_barabasi_albert(500, 4, 41);
  const std::string path =
      (std::filesystem::temp_directory_path() / "stm_test_pagefile.spill")
          .string();
  storage::write_page_file(path, g, /*page_size=*/1024, /*block_size=*/32);
  storage::PageFile file = storage::PageFile::open(path);
  EXPECT_EQ(file.num_vertices(), g.num_vertices());
  EXPECT_EQ(file.num_adjacency_entries(), g.num_adjacency_entries());
  EXPECT_GT(file.num_pages(), 1u);
  std::string page;
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_TRUE(file.read_page(file.location(v).page, page));
    const auto* base =
        reinterpret_cast<const std::uint8_t*>(page.data()) +
        file.location(v).offset;
    storage::decode_adjacency(
        base, reinterpret_cast<const std::uint8_t*>(page.data()) + page.size(),
        file.block_size(), out);
    out.resize(file.degree(v));  // slices share the page tail
    EXPECT_EQ(out, neighbors_of(g, v)) << "v=" << v;
  }
  std::filesystem::remove(path);
}

TEST(StoragePager, ClockCacheStaysUnderBudgetAndEvicts) {
  const Graph g = make_barabasi_albert(2000, 6, 43);
  const std::string path =
      (std::filesystem::temp_directory_path() / "stm_test_pager.spill")
          .string();
  storage::write_page_file(path, g, /*page_size=*/1024, /*block_size=*/32);
  const std::uint64_t budget = 4096;  // four 1 KiB pages
  storage::PageCache cache(storage::PageFile::open(path), budget, {});
  ASSERT_GT(cache.file().num_pages(), 8u);
  Rng rng(0x5709);
  for (int i = 0; i < 3000; ++i) {
    const auto p =
        static_cast<std::uint32_t>(rng.next_below(cache.file().num_pages()));
    const auto data = cache.get_page(p);
    ASSERT_NE(data, nullptr);
    const storage::PagerStats st = cache.stats();
    // The single page being served may exceed the budget by itself; with
    // 1 KiB pages and a 4-page budget it never does.
    EXPECT_LE(st.resident_bytes, budget);
  }
  const storage::PagerStats st = cache.stats();
  EXPECT_GT(st.evictions, 0u);
  EXPECT_GT(st.hits, 0u);
  EXPECT_GT(st.faults, 0u);
  std::filesystem::remove(path);
}

TEST(StoragePager, OversizedVertexGetsPrivatePage) {
  // One hub whose encoded list exceeds page_size: it must land in a private
  // oversized page and still decode exactly.
  const Graph g = make_star(3000);
  StoragePolicy policy;
  policy.backend = Backend::kSpill;
  policy.page_size = 512;
  policy.memory_budget_bytes = 2048;
  const auto store = GraphStore::build(Graph(g), policy);
  const auto lease = store->lease();
  const GraphView view = store->view();
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(neighbors_of(view, v), neighbors_of(g, v)) << "v=" << v;
}

// ---------------------------------------------------------------------------
// StorageStore: backend selection, leases, stats
// ---------------------------------------------------------------------------

TEST(StorageStore, AutoSelectionIsDeterministic) {
  StoragePolicy policy;
  policy.backend = Backend::kAuto;
  const Graph plain = make_erdos_renyi(200, 0.05, 3);
  EXPECT_EQ(storage::choose_backend(plain, policy), Backend::kCompressed);
  // A budget forces the spill tier.
  policy.memory_budget_bytes = 4096;
  EXPECT_EQ(storage::choose_backend(plain, policy), Backend::kSpill);
  policy.memory_budget_bytes = 0;
  // Hubs at/above the auto threshold (max(block_size, n/8)) enable bitsets.
  const Graph hubs = make_star(600);
  EXPECT_EQ(storage::choose_backend(hubs, policy), Backend::kCompressedBitset);
  const Graph empty = GraphBuilder(0).build();
  EXPECT_EQ(storage::choose_backend(empty, policy), Backend::kUncompressed);
}

TEST(StorageStore, EveryBackendServesIdenticalViewsAndLabels) {
  Graph g = make_barabasi_albert(300, 5, 51);
  std::vector<Label> labels(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    labels[v] = static_cast<Label>(v % 3);
  g = g.with_labels(std::move(labels));
  for (const Backend b : {Backend::kUncompressed, Backend::kCompressed,
                          Backend::kCompressedBitset, Backend::kSpill}) {
    StoragePolicy policy;
    policy.backend = b;
    if (b == Backend::kSpill) {
      policy.memory_budget_bytes = 2048;
      policy.page_size = 512;
    }
    if (b == Backend::kCompressedBitset) policy.bitset_min_degree = 16;
    const auto store = GraphStore::build(Graph(g), policy);
    const auto lease = store->lease();
    const GraphView view = store->view();
    ASSERT_EQ(view.num_vertices(), g.num_vertices());
    ASSERT_TRUE(view.is_labeled());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(neighbors_of(view, v), neighbors_of(g, v))
          << storage::to_string(b) << " v=" << v;
      ASSERT_EQ(view.degree(v), g.degree(v));
      ASSERT_EQ(view.label(v), g.label(v));
    }
    Rng rng(0x570a);
    for (int i = 0; i < 500; ++i) {
      const auto u = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      const auto w = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      ASSERT_EQ(view.has_edge(u, w), g.has_edge(u, w))
          << storage::to_string(b);
    }
  }
}

TEST(StorageStore, TrimIsBlockedWhileLeased) {
  StoragePolicy policy;
  policy.backend = Backend::kCompressed;
  const auto store =
      GraphStore::build(make_barabasi_albert(200, 4, 61), policy);
  {
    const auto lease = store->lease();
    const GraphView view = store->view();
    std::uint64_t sum = 0;
    for (VertexId v = 0; v < view.num_vertices(); ++v)
      for (const VertexId u : view.neighbors(v)) sum += u;
    ASSERT_GT(sum, 0u);
    EXPECT_GT(store->stats().decoded_cache_bytes, 0u);
    EXPECT_FALSE(store->trim_decoded());  // span holders are protected
    EXPECT_GT(store->stats().decoded_cache_bytes, 0u);
  }
  EXPECT_TRUE(store->trim_decoded());
  EXPECT_EQ(store->stats().decoded_cache_bytes, 0u);
  EXPECT_GT(store->stats().decode_ops, 0u);
}

TEST(StorageStore, MutationPathsHoldLeasesAgainstTrim) {
  storage::StoragePolicy policy;
  policy.backend = Backend::kCompressed;
  MutableGraph dyn(make_barabasi_albert(300, 4, 91), 0, policy);
  const auto store = dyn.snapshot()->store();
  ASSERT_NE(store, nullptr);

  {
    // A DeltaOverlay resolves untouched vertices through the store lazily
    // for its whole lifetime, so it must pin the decode cache on its own.
    DeltaOverlay overlay(dyn.snapshot());
    ASSERT_TRUE(overlay.has_edge(0, 1) || !overlay.has_edge(0, 1));
    EXPECT_FALSE(store->trim_decoded());
  }
  EXPECT_TRUE(store->trim_decoded());

  // Race the store-backed mutation readers (apply's redundancy probes,
  // compacted(), point has_edge) against a concurrent trimmer: each path
  // takes its own lease, so decoded lists are never freed mid-read — a
  // violation is a use-after-free that ASan/TSan make loud.
  std::atomic<bool> stop{false};
  std::thread trimmer([&] {
    while (!stop.load(std::memory_order_relaxed)) store->trim_decoded();
  });
  const VertexId n = dyn.snapshot()->num_vertices();
  const EdgeId edges_before = dyn.snapshot()->num_edges();
  for (int i = 0; i < 30; ++i) {
    const VertexId u = static_cast<VertexId>(i % 7);
    const VertexId v = static_cast<VertexId>(n - 1 - i % 11);
    UpdateBatch add;
    add.insertions.emplace_back(u, v);
    const bool present = dyn.snapshot()->has_edge(u, v);
    dyn.apply(add);
    const Graph folded = dyn.snapshot()->compacted();
    ASSERT_TRUE(folded.has_edge(u, v));
    if (!present) {
      UpdateBatch del;
      del.deletions.emplace_back(u, v);
      dyn.apply(del);
    }
  }
  stop.store(true);
  trimmer.join();
  EXPECT_EQ(dyn.snapshot()->num_edges(), edges_before);
}

TEST(StorageStore, GraphMemoryBytesCoversTheCSR) {
  const Graph g = make_barabasi_albert(1000, 5, 71);
  // row_ptr is (n+1) u64s, adjacency m2 u32s; labels absent here.
  const std::uint64_t floor_bytes =
      (static_cast<std::uint64_t>(g.num_vertices()) + 1) * sizeof(EdgeId) +
      g.num_adjacency_entries() * sizeof(VertexId);
  EXPECT_GE(g.memory_bytes(), floor_bytes);
}

// ---------------------------------------------------------------------------
// StorageCheckpoint: compressed checkpoint format roundtrip
// ---------------------------------------------------------------------------

TEST(StorageCheckpoint, CompressedAndRawFormatsDecodeIdentically) {
  Graph g = make_barabasi_albert(250, 4, 81);
  std::vector<Label> labels(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    labels[v] = static_cast<Label>(v % 4);
  g = g.with_labels(std::move(labels));
  persist::CheckpointData data;
  data.seq = 7;
  data.epoch = 42;
  data.last_lsn = 99;
  data.graph = Graph(g);

  data.compressed = false;
  const std::string raw_bytes = persist::encode_checkpoint(data);
  data.compressed = true;
  const std::string comp_bytes = persist::encode_checkpoint(data);
  EXPECT_LT(comp_bytes.size(), raw_bytes.size());

  for (const std::string* bytes : {&raw_bytes, &comp_bytes}) {
    const persist::CheckpointData back = persist::decode_checkpoint(*bytes);
    EXPECT_EQ(back.seq, 7u);
    EXPECT_EQ(back.epoch, 42u);
    ASSERT_EQ(back.graph.num_vertices(), g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(neighbors_of(back.graph, v), neighbors_of(g, v));
      ASSERT_EQ(back.graph.label(v), g.label(v));
    }
  }
}

// ---------------------------------------------------------------------------
// StorageSession: service-layer wiring (policy, metrics, compact)
// ---------------------------------------------------------------------------

Pattern triangle() { return Pattern::parse("0-1,1-2,2-0"); }

QueryRequest host_request(const Pattern& p) {
  QueryRequest req;
  req.pattern = p;
  req.engine = EngineKind::kHost;
  return req;
}

TEST(StorageSession, BackendsServeIdenticalCountsThroughTheService) {
  const Graph g = make_barabasi_albert(120, 5, 91);
  GraphSession raw{Graph(g)};
  const QueryResult want = raw.run(host_request(triangle()));
  ASSERT_TRUE(want.ok());
  ASSERT_GT(want.count, 0u);
  for (const Backend b :
       {Backend::kCompressed, Backend::kCompressedBitset, Backend::kSpill,
        Backend::kAuto}) {
    SessionConfig cfg;
    cfg.storage.backend = b;
    if (b == Backend::kSpill) {
      cfg.storage.memory_budget_bytes = 2048;
      cfg.storage.page_size = 512;
    }
    GraphSession session(Graph(g), cfg);
    const QueryResult got = session.run(host_request(triangle()));
    ASSERT_TRUE(got.ok()) << storage::to_string(b) << ": " << got.error;
    EXPECT_EQ(got.count, want.count) << storage::to_string(b);
    // The decode-ops counter moved and the footprint gauges are live.
    EXPECT_GT(session.metrics().counter("storage_decode_ops_total").value(),
              0u)
        << storage::to_string(b);
    EXPECT_GT(session.metrics().gauge("graph_resident_bytes").value(), 0.0);
    EXPECT_GT(session.metrics().gauge("storage_resident_bytes").value(), 0.0);
    EXPECT_GT(session.metrics().gauge("compression_ratio").value(), 1.0)
        << storage::to_string(b);
  }
}

TEST(StorageSession, UpdatesLayerOverTheBackendAndCompactReencodes) {
  const Graph g = make_erdos_renyi(60, 0.15, 17);
  SessionConfig cfg;
  cfg.storage.backend = Backend::kCompressed;
  GraphSession session(Graph(g), cfg);
  GraphSession raw{Graph(g)};

  UpdateBatch batch;
  for (VertexId v = 0; v + 3 < 12; ++v) {
    batch.insertions.emplace_back(v, v + 3);
    batch.insertions.emplace_back(v, v + 2);
  }
  ASSERT_TRUE(session.apply_updates(batch).ok());
  ASSERT_TRUE(raw.apply_updates(batch).ok());
  const QueryResult before_compact = session.run(host_request(triangle()));
  const QueryResult want = raw.run(host_request(triangle()));
  ASSERT_TRUE(before_compact.ok());
  EXPECT_EQ(before_compact.count, want.count);

  // compact() folds the overlay into a fresh compressed base; counts and
  // the spill/compression gauges must survive the backend rebuild.
  session.compact();
  const QueryResult after_compact = session.run(host_request(triangle()));
  ASSERT_TRUE(after_compact.ok());
  EXPECT_EQ(after_compact.count, want.count);
  EXPECT_GT(session.metrics().gauge("compression_ratio").value(), 1.0);
}

TEST(StorageSession, PageFaultCounterMovesOnSpill) {
  SessionConfig cfg;
  cfg.storage.backend = Backend::kSpill;
  cfg.storage.memory_budget_bytes = 1024;
  cfg.storage.page_size = 512;
  GraphSession session(make_barabasi_albert(400, 5, 101), cfg);
  const QueryResult r = session.run(host_request(triangle()));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(session.metrics().counter("storage_page_faults_total").value(),
            0u);
}

// ---------------------------------------------------------------------------
// StorageChaos: FaultSite::kPageRead — fail-closed, deterministic retry
// ---------------------------------------------------------------------------

std::uint64_t scan_sum(const GraphStore& store) {
  const auto lease = store.lease();
  const GraphView view = store.view();
  std::uint64_t sum = 0;
  for (VertexId v = 0; v < view.num_vertices(); ++v)
    for (const VertexId u : view.neighbors(v)) sum += u * 31 + 1;
  return sum;
}

TEST(StorageChaos, PageReadFaultsRetryToBitIdenticalAdjacency) {
  const Graph g = make_barabasi_albert(600, 5, 111);
  StoragePolicy clean;
  clean.backend = Backend::kSpill;
  clean.memory_budget_bytes = 2048;
  clean.page_size = 512;
  const std::uint64_t want = scan_sum(*GraphStore::build(Graph(g), clean));

  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    StoragePolicy chaos = clean;
    chaos.fault.seed = seed;
    chaos.fault.set_rate(FaultSite::kPageRead, 0.3);
    const auto store = GraphStore::build(Graph(g), chaos);
    EXPECT_EQ(scan_sum(*store), want) << "seed=" << seed;
    const storage::StorageStats st = store->stats();
    EXPECT_GT(st.injected_page_faults, 0u)
        << "seed=" << seed << ": a 30% rate injected nothing";

    // Same seed, same schedule, same recovery: bit-identical stats.
    const auto again = GraphStore::build(Graph(g), chaos);
    EXPECT_EQ(scan_sum(*again), want);
    EXPECT_EQ(again->stats().injected_page_faults, st.injected_page_faults);
    EXPECT_EQ(again->stats().page_faults, st.page_faults);
  }
}

TEST(StorageChaos, RetryBudgetExhaustionFailsClosed) {
  StoragePolicy policy;
  policy.backend = Backend::kSpill;
  policy.memory_budget_bytes = 1024;
  policy.page_size = 256;
  policy.fault.seed = 5;
  policy.fault.set_rate(FaultSite::kPageRead, 1.0);
  policy.fault.max_unit_attempts = 2;
  const auto store = GraphStore::build(make_barabasi_albert(300, 4, 121),
                                       policy);
  EXPECT_THROW(scan_sum(*store), check_error);
}

TEST(StorageChaos, ServiceContainsPageReadExhaustion) {
  // Through the service boundary an exhausted pager must surface as a failed
  // query, not a crash — and must not poison later fault-free sessions.
  SessionConfig cfg;
  cfg.storage.backend = Backend::kSpill;
  cfg.storage.memory_budget_bytes = 1024;
  cfg.storage.page_size = 256;
  cfg.storage.fault.seed = 9;
  cfg.storage.fault.set_rate(FaultSite::kPageRead, 1.0);
  cfg.storage.fault.max_unit_attempts = 1;
  cfg.resilience.enable_fallback = false;
  cfg.resilience.retry.max_attempts = 1;
  GraphSession session(make_barabasi_albert(200, 4, 131), cfg);
  const QueryResult r = session.run(host_request(triangle()));
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.error.empty());
}

// ---------------------------------------------------------------------------
// StorageDifferential / StorageSpillGate: cross-engine agreement over the
// sampled backends, repro/ddmin integration (differential tier)
// ---------------------------------------------------------------------------

TEST(StorageDifferential, OracleAgreesOnEveryForcedBackend) {
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    harness::TestCase c = harness::random_case(harness::derive_seed(0x570, trial));
    for (const Backend b :
         {Backend::kCompressed, Backend::kCompressedBitset, Backend::kSpill}) {
      c.storage_backend = b;
      c.storage_budget_bytes = b == Backend::kSpill ? 1024 : 0;
      const harness::OracleReport report = harness::run_oracle(c);
      ASSERT_TRUE(report.agreed)
          << storage::to_string(b) << "\n" << report.describe();
      const bool lane_ran = std::any_of(
          report.counts.begin(), report.counts.end(), [](const auto& e) {
            return e.engine == harness::EngineKind::kStorage;
          });
      EXPECT_TRUE(lane_ran) << storage::to_string(b);
    }
  }
}

TEST(StorageDifferential, SampledCasesExerciseTheLane) {
  std::size_t lane_cases = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed)
    if (harness::random_case(seed).storage_backend != Backend::kUncompressed)
      ++lane_cases;
  // The backend stream samples uniformly over four values; 40 cases landing
  // fewer than 10 non-default draws would mean the stream is broken.
  EXPECT_GE(lane_cases, 10u);
}

TEST(StorageDifferential, ReproRoundtripPreservesStorageKnobs) {
  harness::TestCase c = harness::random_case(19);
  c.storage_backend = Backend::kSpill;
  c.storage_budget_bytes = 2048;
  const harness::TestCase back = harness::from_repro(harness::to_repro(c));
  EXPECT_EQ(back.storage_backend, Backend::kSpill);
  EXPECT_EQ(back.storage_budget_bytes, 2048u);
  c.storage_backend = Backend::kUncompressed;
  c.storage_budget_bytes = 0;
  const harness::TestCase plain = harness::from_repro(harness::to_repro(c));
  EXPECT_EQ(plain.storage_backend, Backend::kUncompressed);
}

TEST(StorageDifferential, MinimizerDropsStorageWhenFailureIsEngineSide) {
  // A predicate that fails regardless of backend: ddmin must reset the
  // storage knobs (an engine bug should repro on the raw CSR).
  harness::TestCase c = harness::random_case(29);
  c.storage_backend = Backend::kSpill;
  c.storage_budget_bytes = 1024;
  const harness::MinimizeResult result = harness::minimize(
      c, [](const harness::TestCase&) { return true; });
  ASSERT_TRUE(result.still_failing);
  EXPECT_EQ(result.reduced.storage_backend, Backend::kUncompressed);
  EXPECT_EQ(result.reduced.storage_budget_bytes, 0u);
}

TEST(StorageSpillGate, DifferentialTierCompletesUnderTinyBudget) {
  // The release gate: the whole sampled differential surface must pass with
  // the spill tier forced on, under a budget smaller than every case's raw
  // graph — true out-of-core execution, bit-identical counts.
  std::size_t gated = 0;
  for (std::uint64_t trial = 0; trial < 16 && gated < 8; ++trial) {
    harness::TestCase c =
        harness::random_case(harness::derive_seed(0x5b111, trial));
    // Corner-case graphs can be smaller than one page; they cannot model
    // out-of-core serving, so the gate skips them.
    if (c.graph.memory_bytes() < 2048) continue;
    ++gated;
    c.storage_backend = Backend::kSpill;
    c.storage_budget_bytes = c.graph.memory_bytes() / 8;
    ASSERT_LT(c.storage_budget_bytes, c.graph.memory_bytes());
    const harness::OracleReport report = harness::run_oracle(c);
    ASSERT_TRUE(report.agreed) << "trial " << trial << "\n"
                               << report.describe();
  }
  EXPECT_GE(gated, 4u);
}

}  // namespace
}  // namespace stm
