// Tests for the cross-shard coordinator and the sharded service mode.
//
// ShardedDifferential.* — bit-exact agreement with the reference enumerator
// across graph families, patterns, shard counts {1,2,4,8}, strategies and
// count modes, through SIMT lanes, labeled graphs, and dynamic-update
// partition refreshes (differential tier).
// ShardChaos.* — exact counts under >= 10% injected kShardFailure, fail-
// closed on budget exhaustion, deterministic fault replay (chaos tier).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/reference.hpp"
#include "dist/partition.hpp"
#include "dist/scheduler.hpp"
#include "dist/sharded.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/labeling.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/pattern.hpp"
#include "service/service.hpp"
#include "testing/oracle.hpp"
#include "testing/workload.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace stm {
namespace {

using dist::PartitionConfig;
using dist::PartitionStrategy;

PartitionConfig pconfig(std::uint32_t shards, PartitionStrategy strategy) {
  PartitionConfig cfg;
  cfg.num_shards = shards;
  cfg.strategy = strategy;
  return cfg;
}

std::uint64_t reference(const Graph& g, const Pattern& p,
                        const PlanOptions& plan = {}) {
  return reference_count(GraphView(g), p, {plan.induced, plan.count_mode});
}

struct NamedGraph {
  const char* name;
  Graph graph;
};

/// One small representative per harness graph family.
std::vector<NamedGraph> family_graphs() {
  std::vector<NamedGraph> graphs;
  graphs.push_back({"erdos-renyi", make_erdos_renyi(36, 0.15, 3)});
  graphs.push_back({"power-law", make_barabasi_albert(36, 3, 5)});
  graphs.push_back({"bipartite", make_complete_bipartite(5, 7)});
  {
    // Star-heavy: one hub plus a sparse rim.
    GraphBuilder b(24);
    for (VertexId v = 1; v < 24; ++v) b.add_edge(0, v);
    for (VertexId v = 1; v + 2 < 24; v += 3) b.add_edge(v, v + 2);
    graphs.push_back({"star-heavy", b.build()});
  }
  graphs.push_back({"corner", make_path(5)});
  return graphs;
}

// ---------------------------------------------------------------------------
// Differential tier
// ---------------------------------------------------------------------------

TEST(ShardedDifferential, ExactAcrossFamiliesShardsStrategiesAndModes) {
  const Pattern triangle(3, {{0, 1}, {1, 2}, {0, 2}});
  const Pattern wedge(3, {{0, 1}, {1, 2}});
  for (const NamedGraph& ng : family_graphs()) {
    for (const Pattern* pattern : {&triangle, &wedge}) {
      for (CountMode mode :
           {CountMode::kEmbeddings, CountMode::kUniqueSubgraphs}) {
        PlanOptions plan;
        plan.count_mode = mode;
        const std::uint64_t expected = reference(ng.graph, *pattern, plan);
        for (PartitionStrategy strategy :
             {PartitionStrategy::kContiguous,
              PartitionStrategy::kDegreeBalanced, PartitionStrategy::kHash}) {
          for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
            dist::ShardedOptions opts;
            opts.plan = plan;
            const dist::ShardedResult r = dist::sharded_match(
                ng.graph, *pattern, pconfig(shards, strategy), opts);
            ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
            EXPECT_EQ(r.count, expected)
                << ng.name << " pattern=" << pattern->to_string()
                << " mode=" << static_cast<int>(mode) << " shards=" << shards
                << " strategy=" << dist::to_string(strategy)
                << " (local=" << r.local_total << " cut=" << r.cut_total
                << ")";
          }
        }
      }
    }
  }
}

TEST(ShardedDifferential, SingleEdgeAndSquarePatterns) {
  const Graph g = make_erdos_renyi(30, 0.2, 8);
  const Pattern edge(2, {{0, 1}});
  const Pattern square(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  for (const Pattern* pattern : {&edge, &square}) {
    const std::uint64_t expected = reference(g, *pattern);
    for (std::uint32_t shards : {2u, 4u}) {
      const dist::ShardedResult r = dist::sharded_match(
          g, *pattern, pconfig(shards, PartitionStrategy::kContiguous));
      ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
      EXPECT_EQ(r.count, expected) << pattern->to_string();
    }
  }
}

TEST(ShardedDifferential, SimtLocalAndAnchorEngines) {
  const Graph g = make_barabasi_albert(30, 3, 12);
  const Pattern triangle(3, {{0, 1}, {1, 2}, {0, 2}});
  const std::uint64_t expected = reference(g, triangle);
  for (std::uint32_t shards : {1u, 4u}) {
    dist::ShardedOptions opts;
    opts.local_engine = dist::LocalEngine::kSimt;
    opts.anchor_engine = DeltaEngine::kSimt;
    const dist::ShardedResult r = dist::sharded_match(
        g, triangle, pconfig(shards, PartitionStrategy::kDegreeBalanced),
        opts);
    ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
    EXPECT_EQ(r.count, expected) << "shards=" << shards;
  }
}

TEST(ShardedDifferential, RecursiveAndReferenceLocalEngines) {
  const Graph g = make_erdos_renyi(24, 0.2, 15);
  const Pattern wedge(3, {{0, 1}, {1, 2}});
  const std::uint64_t expected = reference(g, wedge);
  for (dist::LocalEngine engine :
       {dist::LocalEngine::kRecursive, dist::LocalEngine::kReference}) {
    dist::ShardedOptions opts;
    opts.local_engine = engine;
    const dist::ShardedResult r = dist::sharded_match(
        g, wedge, pconfig(4, PartitionStrategy::kHash), opts);
    ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
    EXPECT_EQ(r.count, expected) << dist::to_string(engine);
  }
}

TEST(ShardedDifferential, LabeledGraphAndPattern) {
  const Graph g = with_random_labels(make_erdos_renyi(32, 0.2, 6), 2, 40);
  Pattern triangle(3, {{0, 1}, {1, 2}, {0, 2}});
  triangle = triangle.with_labels({0, 1, 0});
  const std::uint64_t expected = reference(g, triangle);
  for (std::uint32_t shards : {2u, 4u}) {
    const dist::ShardedResult r = dist::sharded_match(
        g, triangle, pconfig(shards, PartitionStrategy::kContiguous));
    ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
    EXPECT_EQ(r.count, expected) << "shards=" << shards;
  }
}

TEST(ShardedDifferential, ExactAfterDynamicUpdateRefresh) {
  const Graph g = make_erdos_renyi(40, 0.12, 23);
  const Pattern triangle(3, {{0, 1}, {1, 2}, {0, 2}});
  const dist::Partition before =
      dist::partition_graph(g, pconfig(4, PartitionStrategy::kContiguous));

  MutableGraph dyn(g);
  UpdateBatch batch;
  batch.insertions = {{0, 20}, {1, 21}, {2, 22}, {3, 23}, {10, 30}};
  const ApplyResult applied = dyn.apply(batch);
  ASSERT_TRUE(applied.snapshot != nullptr);

  std::vector<std::uint32_t> touched;
  const dist::Partition after = dist::refresh_partition(
      before, applied.snapshot->view(), applied.applied, &touched);
  EXPECT_FALSE(touched.empty());

  dist::ShardedOptions opts;
  const dist::ShardedMatcher matcher(triangle, opts);
  const MatchingPlan plan(reorder_for_matching(triangle), opts.plan);
  const dist::ShardedResult r =
      matcher.match(applied.snapshot->view(), after, plan);
  ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
  EXPECT_EQ(r.count, reference(applied.snapshot->compacted(), triangle));
}

TEST(ShardedDifferential, VertexInducedRejectedBeyondOneShard) {
  const Graph g = make_erdos_renyi(20, 0.2, 2);
  const Pattern wedge(3, {{0, 1}, {1, 2}});
  PlanOptions plan;
  plan.induced = Induced::kVertex;
  dist::ShardedOptions opts;
  opts.plan = plan;
  EXPECT_THROW(
      dist::sharded_match(g, wedge, pconfig(2, PartitionStrategy::kContiguous),
                          opts),
      check_error);
  // One shard has no cut edges: induced semantics degrade to a plain local
  // run and must agree with the reference.
  const dist::ShardedResult r = dist::sharded_match(
      g, wedge, pconfig(1, PartitionStrategy::kContiguous), opts);
  ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
  EXPECT_EQ(r.count, reference(g, wedge, plan));
}

TEST(ShardedDifferential, HarnessLaneVotesAndAgrees) {
  bool sharded_voted = false;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const harness::TestCase c = harness::random_case(seed);
    const harness::OracleReport report = harness::run_oracle(c);
    EXPECT_TRUE(report.agreed) << report.describe() << harness::describe(c);
    for (const harness::EngineCount& e : report.counts)
      if (e.engine == harness::EngineKind::kSharded) sharded_voted = true;
  }
  EXPECT_TRUE(sharded_voted) << "no sampled case exercised the sharded lane";
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

TEST(ShardScheduler, ExecutesEveryUnitAndCountsSteals) {
  // All units homed on shard 0; workers homed on shards 1..3 can only make
  // progress by stealing.
  dist::ShardScheduler scheduler(4);
  std::atomic<int> executed{0};
  for (int i = 0; i < 12; ++i) {
    scheduler.add({0, static_cast<double>(i + 1), [&executed] {
                     ++executed;
                     std::this_thread::sleep_for(std::chrono::milliseconds(2));
                   }});
  }
  ThreadPool pool(4);
  const dist::SchedulerStats stats = scheduler.run(pool, 4);
  EXPECT_EQ(executed.load(), 12);
  EXPECT_EQ(stats.executed, 12u);
  ASSERT_EQ(stats.per_shard_executed.size(), 4u);
  EXPECT_EQ(stats.per_shard_executed[0], 12u);
  EXPECT_EQ(stats.steals, stats.per_shard_stolen[0]);
}

TEST(ShardScheduler, SingleWorkerCoversAllShardsWithoutStealing) {
  // One worker's home stride (home + k * num_workers) visits every shard,
  // so nothing counts as a steal.
  dist::ShardScheduler scheduler(3);
  std::atomic<int> executed{0};
  for (std::uint32_t s = 0; s < 3; ++s)
    scheduler.add({s, 1.0, [&executed] { ++executed; }});
  ThreadPool pool(1);
  const dist::SchedulerStats stats = scheduler.run(pool, 1);
  EXPECT_EQ(executed.load(), 3);
  EXPECT_EQ(stats.steals, 0u);
}

// ---------------------------------------------------------------------------
// Sharded service mode
// ---------------------------------------------------------------------------

TEST(ShardedService, CountsMatchUnshardedAcrossEnginesAndUpdates) {
  const Graph g = make_barabasi_albert(50, 3, 33);
  const Pattern triangle(3, {{0, 1}, {1, 2}, {0, 2}});

  GraphSession plain(g, SessionConfig{});

  SessionConfig cfg;
  cfg.sharding.num_shards = 4;
  cfg.sharding.strategy = PartitionStrategy::kDegreeBalanced;
  GraphSession sharded(g, cfg);

  for (EngineKind engine : {EngineKind::kHost, EngineKind::kSimt}) {
    QueryRequest req;
    req.pattern = triangle;
    req.engine = engine;
    req.deadline_ms = -1.0;
    const QueryResult expected = plain.run(req);
    const QueryResult got = sharded.run(req);
    ASSERT_EQ(got.status, QueryStatus::kOk) << got.error;
    EXPECT_EQ(got.count, expected.count) << to_string(engine);
  }
  EXPECT_GE(sharded.metrics().counter("sharded_queries").value(), 2u);

  // Updates refresh the partition; post-update queries stay exact.
  UpdateBatch batch;
  batch.insertions = {{0, 25}, {1, 26}, {2, 27}};
  ASSERT_TRUE(plain.apply_updates(batch).ok());
  ASSERT_TRUE(sharded.apply_updates(batch).ok());
  QueryRequest req;
  req.pattern = triangle;
  req.deadline_ms = -1.0;
  const QueryResult expected = plain.run(req);
  const QueryResult got = sharded.run(req);
  ASSERT_EQ(got.status, QueryStatus::kOk) << got.error;
  EXPECT_EQ(got.count, expected.count);
  EXPECT_EQ(got.graph_epoch, 1u);
}

TEST(ShardedService, ExportsPerShardLabeledMetrics) {
  SessionConfig cfg;
  cfg.sharding.num_shards = 2;
  GraphSession session(make_erdos_renyi(20, 0.2, 9), cfg);
  const std::string prom = session.metrics().to_prometheus();
  EXPECT_NE(prom.find("shard_owned_vertices{shard=\"0\"}"), std::string::npos);
  EXPECT_NE(prom.find("shard_owned_vertices{shard=\"1\"}"), std::string::npos);
  EXPECT_NE(prom.find("shard_imbalance"), std::string::npos);
  EXPECT_NE(prom.find("cut_edge_fraction"), std::string::npos);
  // One HELP/TYPE header per family, not per labeled series.
  std::size_t headers = 0;
  for (std::size_t at = prom.find("# TYPE shard_owned_vertices ");
       at != std::string::npos;
       at = prom.find("# TYPE shard_owned_vertices ", at + 1))
    ++headers;
  EXPECT_EQ(headers, 1u);
  // JSON keys keep the label syntax, with quotes escaped.
  const std::string json = session.metrics().to_json();
  EXPECT_NE(json.find("shard_owned_vertices{shard=\\\"0\\\"}"),
            std::string::npos);
}

TEST(ShardedService, VertexInducedQueriesUseTheUnshardedPath) {
  SessionConfig cfg;
  cfg.sharding.num_shards = 4;
  const Graph g = make_erdos_renyi(24, 0.2, 14);
  GraphSession session(g, cfg);
  QueryRequest req;
  req.pattern = Pattern(3, {{0, 1}, {1, 2}});
  req.plan.induced = Induced::kVertex;
  req.deadline_ms = -1.0;
  const QueryResult r = session.run(req);
  ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
  EXPECT_EQ(r.count,
            reference_count(GraphView(g), req.pattern,
                            {Induced::kVertex, CountMode::kEmbeddings}));
  EXPECT_EQ(session.metrics().counter("sharded_queries").value(), 0u);
}

// ---------------------------------------------------------------------------
// Chaos tier
// ---------------------------------------------------------------------------

TEST(ShardChaos, InjectedShardFailuresRecoverExactly) {
  const Graph g = make_barabasi_albert(40, 3, 44);
  const Pattern triangle(3, {{0, 1}, {1, 2}, {0, 2}});
  const std::uint64_t expected = reference(g, triangle);
  dist::ShardedOptions opts;
  opts.fault.seed = 99;
  opts.fault.max_unit_attempts = 6;
  opts.fault.set_rate(FaultSite::kShardFailure, 0.15);  // >= 10% bar
  const dist::ShardedResult r = dist::sharded_match(
      g, triangle, pconfig(4, PartitionStrategy::kContiguous), opts);
  ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
  EXPECT_EQ(r.count, expected);
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_GT(r.units_recovered, 0u);

  // Same configuration, same fault schedule, same recovery: deterministic.
  const dist::ShardedResult replay = dist::sharded_match(
      g, triangle, pconfig(4, PartitionStrategy::kContiguous), opts);
  EXPECT_EQ(replay.count, expected);
  EXPECT_EQ(replay.faults_injected, r.faults_injected);
  EXPECT_EQ(replay.units_recovered, r.units_recovered);
}

TEST(ShardChaos, ExhaustedRecoveryBudgetFailsClosed) {
  const Graph g = make_erdos_renyi(20, 0.3, 4);
  const Pattern wedge(3, {{0, 1}, {1, 2}});
  dist::ShardedOptions opts;
  opts.fault.seed = 7;
  opts.fault.max_unit_attempts = 3;
  opts.fault.set_rate(FaultSite::kShardFailure, 1.0);
  const dist::ShardedResult r = dist::sharded_match(
      g, wedge, pconfig(2, PartitionStrategy::kContiguous), opts);
  EXPECT_EQ(r.status, QueryStatus::kInternalError);
  EXPECT_FALSE(r.error.empty());
}

TEST(ShardChaos, AttemptShiftCanClearAPersistentFaultSchedule) {
  // The fault schedule is a pure function of (seed, incarnation, site, key)
  // and the caller's attempt number shifts the incarnation — the service
  // retry path relies on this to turn a losing schedule into a winning one
  // without changing the seed.
  const Graph g = make_erdos_renyi(16, 0.3, 11);
  const Pattern wedge(3, {{0, 1}, {1, 2}});
  const std::uint64_t expected = reference(g, wedge);
  dist::ShardedOptions opts;
  opts.fault.seed = 13;
  opts.fault.max_unit_attempts = 2;
  opts.fault.set_rate(FaultSite::kShardFailure, 0.6);
  const dist::ShardedMatcher matcher(wedge, opts);
  const dist::Partition p =
      dist::partition_graph(g, pconfig(2, PartitionStrategy::kContiguous));
  const MatchingPlan plan(reorder_for_matching(wedge), opts.plan);
  bool succeeded = false;
  for (std::uint64_t attempt = 0; attempt < 16 && !succeeded; ++attempt) {
    const dist::ShardedResult r = matcher.match(g, p, plan, attempt);
    if (r.status == QueryStatus::kOk) {
      EXPECT_EQ(r.count, expected);
      succeeded = true;
    }
  }
  EXPECT_TRUE(succeeded);
}

TEST(ShardChaos, ServiceShardedModeSurvivesInjectedShardFailures) {
  Graph g = make_barabasi_albert(40, 3, 55);
  const Pattern triangle(3, {{0, 1}, {1, 2}, {0, 2}});
  const std::uint64_t expected = reference(g, triangle);

  SessionConfig cfg;
  cfg.sharding.num_shards = 4;
  cfg.sharding.fault.seed = 21;
  cfg.sharding.fault.max_unit_attempts = 6;
  cfg.sharding.fault.set_rate(FaultSite::kShardFailure, 0.15);
  GraphSession session(std::move(g), cfg);

  QueryRequest req;
  req.pattern = triangle;
  req.deadline_ms = -1.0;
  const QueryResult r = session.run(req);
  ASSERT_EQ(r.status, QueryStatus::kOk) << r.error;
  EXPECT_EQ(r.count, expected);
  EXPECT_GE(session.metrics().counter("sharded_queries").value(), 1u);
}

}  // namespace
}  // namespace stm
