// Randomized cross-engine agreement sweep.
//
// Many random (graph, pattern, options, engine-config) combinations; every
// engine must agree with the recursive executor, which in turn is checked
// against the brute-force reference elsewhere. This is the failure-injection
// net for the stealing/unrolling state machine: random device shapes and
// split parameters exercise steal paths that the targeted tests miss.
//
// Seeding goes through the conformance harness (testing/seed.hpp): set
// STMATCH_FUZZ_SEED to re-run a reported failure, and every assertion
// message carries the per-test seed so a CI log alone pins the repro.
#include <gtest/gtest.h>

#include "baselines/dryadic.hpp"
#include "baselines/subgraph_centric.hpp"
#include "core/engine.hpp"
#include "core/host_engine.hpp"
#include "core/recursive.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/motifs.hpp"
#include "testing/seed.hpp"
#include "util/rng.hpp"

namespace stm {
namespace {

Graph random_graph(Rng& rng) {
  const auto kind = rng.next_below(3);
  const auto n = static_cast<VertexId>(20 + rng.next_below(60));
  switch (kind) {
    case 0:
      return make_erdos_renyi(n, 0.1 + 0.2 * rng.next_double(), rng());
    case 1:
      return make_barabasi_albert(n, 2 + static_cast<VertexId>(rng.next_below(4)),
                                  rng());
    default:
      return make_rmat(6, 4.0, 0.5, 0.2, 0.2, rng());
  }
}

Pattern random_pattern(Rng& rng, std::size_t max_size) {
  const auto size = 3 + rng.next_below(max_size - 2);
  const auto motifs = connected_motifs(size);
  return motifs[rng.next_below(motifs.size())];
}

EngineConfig random_config(Rng& rng) {
  EngineConfig cfg;
  cfg.device.num_blocks = 1 + static_cast<std::uint32_t>(rng.next_below(8));
  cfg.device.warps_per_block =
      1 + static_cast<std::uint32_t>(rng.next_below(6));
  cfg.unroll = 1u << rng.next_below(4);  // 1..8
  cfg.chunk_size = 1 + static_cast<std::uint32_t>(rng.next_below(12));
  cfg.local_steal = rng.next_bool(0.7);
  cfg.global_steal = rng.next_bool(0.7);
  cfg.stop_level = 1 + static_cast<std::uint32_t>(rng.next_below(4));
  cfg.detect_level = static_cast<std::uint32_t>(rng.next_below(3));
  return cfg;
}

class EngineFuzz : public ::testing::TestWithParam<int> {
 protected:
  /// Per-test seed: the harness base (STMATCH_FUZZ_SEED when set, the
  /// historical suite constant otherwise) mixed with the param index, so
  /// the ten instances stay decorrelated under any base.
  static std::uint64_t seed_for(std::uint64_t fallback, std::uint64_t salt,
                                int param) {
    return harness::derive_seed(harness::base_seed(fallback),
                                salt ^ static_cast<std::uint64_t>(param));
  }
};

TEST_P(EngineFuzz, AllEnginesAgree) {
  const std::uint64_t seed = seed_for(0xf0220, 0x7919, GetParam());
  Rng rng(seed);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = random_graph(rng);
    Pattern p = random_pattern(rng, 5);
    const bool labeled = rng.next_bool(0.4);
    if (labeled) {
      const std::size_t num_labels = 2 + rng.next_below(3);
      g = with_random_labels(g, num_labels, rng());
      std::vector<Label> plabels(p.size());
      for (auto& l : plabels) l = static_cast<Label>(rng.next_below(num_labels));
      p = p.with_labels(plabels);
    }
    PlanOptions popts;
    popts.induced = rng.next_bool(0.5) ? Induced::kEdge : Induced::kVertex;
    popts.count_mode = rng.next_bool(0.3) ? CountMode::kUniqueSubgraphs
                                          : CountMode::kEmbeddings;
    popts.code_motion = rng.next_bool(0.8);
    MatchingPlan plan(reorder_for_matching(p), popts);

    const auto expected =
        recursive_count_range(g, plan, 0, g.num_vertices());
    EngineConfig cfg = random_config(rng);
    const auto got = stmatch_match(g, plan, cfg);
    ASSERT_EQ(got.count, expected)
        << "seed=" << seed << " (rerun: STMATCH_FUZZ_SEED overrides)"
        << " trial=" << trial << " pattern=" << p.to_string()
        << " graph n=" << g.num_vertices() << " labeled=" << labeled
        << " induced=" << (popts.induced == Induced::kVertex)
        << " unroll=" << cfg.unroll << " blocks=" << cfg.device.num_blocks
        << " wpb=" << cfg.device.warps_per_block
        << " steal=" << cfg.local_steal << "/" << cfg.global_steal
        << " stop=" << cfg.stop_level;
  }
}

TEST_P(EngineFuzz, HostEngineAgrees) {
  const std::uint64_t seed = seed_for(0xab5, 0x104729, GetParam());
  Rng rng(seed);
  Graph g = random_graph(rng);
  Pattern p = random_pattern(rng, 5);
  MatchingPlan plan(reorder_for_matching(p), {});
  HostEngineConfig cfg;
  cfg.num_threads = 1 + rng.next_below(4);
  cfg.chunk_size = 1 + static_cast<VertexId>(rng.next_below(9));
  EXPECT_EQ(host_match(g, plan, cfg).count,
            recursive_count_range(g, plan, 0, g.num_vertices()))
      << "seed=" << seed << " pattern=" << p.to_string()
      << " threads=" << cfg.num_threads << " chunk=" << cfg.chunk_size;
}

TEST_P(EngineFuzz, BaselineModelsAgree) {
  const std::uint64_t seed = seed_for(0xba5e, 0x31337, GetParam());
  Rng rng(seed);
  Graph g = random_graph(rng);
  Pattern p = random_pattern(rng, 5);
  MatchingPlan plan(reorder_for_matching(p), {});
  const auto expected = recursive_count_range(g, plan, 0, g.num_vertices());
  EXPECT_EQ(dryadic_match(g, p).count, expected)
      << "seed=" << seed << " pattern=" << p.to_string();
  auto cuts = cuts_match(g, p);
  if (!cuts.out_of_memory) {
    EXPECT_EQ(cuts.count, expected)
        << "seed=" << seed << " pattern=" << p.to_string();
  }
  auto gsi = gsi_match(g, p);
  if (!gsi.out_of_memory) {
    EXPECT_EQ(gsi.count, expected)
        << "seed=" << seed << " pattern=" << p.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz, ::testing::Range(0, 10));

}  // namespace
}  // namespace stm
