// Tests for incremental (delta) pattern matching and its service wiring:
// randomized differential against full re-enumeration, epoch-keyed plan
// caching, and standing queries.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "baselines/reference.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental.hpp"
#include "graph/generators.hpp"
#include "pattern/pattern.hpp"
#include "service/service.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stm {
namespace {

/// A random valid batch against the current version: random pairs become
/// deletions when present, insertions when absent (so insertions and
/// deletions can never overlap).
UpdateBatch random_batch(const GraphSnapshot& snap, Rng& rng, int num_edges) {
  const VertexId n = snap.num_vertices();
  UpdateBatch batch;
  for (int i = 0; i < num_edges; ++i) {
    const auto u = static_cast<VertexId>(rng() % n);
    const auto v = static_cast<VertexId>(rng() % n);
    if (u == v) continue;
    if (snap.has_edge(u, v)) {
      batch.deletions.emplace_back(u, v);
    } else {
      batch.insertions.emplace_back(u, v);
    }
  }
  return batch;
}

/// Applies `num_batches` random batches, tracking the count incrementally,
/// and checks the cumulative count against full re-enumeration of the
/// compacted graph after every batch. Returns the number of batches checked.
int run_differential(const Pattern& pattern, DeltaEngine engine,
                     std::uint64_t seed, int num_batches, int batch_edges) {
  Graph base = make_erdos_renyi(36, 0.15, seed);
  MutableGraph g(base);

  IncrementalOptions opts;
  opts.engine = engine;
  IncrementalMatcher matcher(pattern, opts);

  ReferenceOptions ref;
  ref.induced = opts.plan.induced;
  ref.count_mode = opts.plan.count_mode;

  Rng rng(seed * 7919 + 13);
  std::int64_t count = static_cast<std::int64_t>(
      reference_count(g.snapshot()->view(), pattern, ref));
  int checked = 0;
  for (int i = 0; i < num_batches; ++i) {
    auto from = g.snapshot();
    UpdateBatch batch = random_batch(*from, rng, batch_edges);
    ApplyResult applied = g.apply(batch);
    DeltaMatchResult d = matcher.count_delta(from, applied.applied);
    count += d.delta;
    const std::uint64_t full =
        reference_count(GraphView(applied.snapshot->compacted()), pattern, ref);
    EXPECT_EQ(count, static_cast<std::int64_t>(full))
        << "engine=" << static_cast<int>(engine) << " seed=" << seed
        << " batch=" << i;
    if (count != static_cast<std::int64_t>(full)) return checked;
    ++checked;
  }
  return checked;
}

const char* const kPatterns[] = {
    "0-1,1-2,2-0",                          // triangle
    "0-1,0-2,0-3,1-2,1-3,2-3",              // 4-clique
    "0-1,1-2,2-3,3-0,0-4,1-4",              // house
};

// ---------------------------------------------------------------------------
// Randomized differential: cumulative deltas == full re-enumeration
// ---------------------------------------------------------------------------

// Short sweeps keep the default `ctest` run fast; the full 216-batch sweep
// lives in test_incremental_sweep.cpp (DeepSweep, STMATCH_SLOW=1 gated).

TEST(IncrementalDifferential, HostEngineMatchesFullReenumeration) {
  int total = 0;
  for (const char* p : kPatterns)
    for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{2}})
      total += run_differential(Pattern::parse(p), DeltaEngine::kHost, seed,
                                /*num_batches=*/6, /*batch_edges=*/6);
  EXPECT_EQ(total, 3 * 2 * 6);  // 36 batches checked
}

TEST(IncrementalDifferential, SimtEngineMatchesFullReenumeration) {
  int total = 0;
  for (const char* p : kPatterns)
    total += run_differential(Pattern::parse(p), DeltaEngine::kSimt,
                              /*seed=*/3, /*num_batches=*/4,
                              /*batch_edges=*/6);
  EXPECT_EQ(total, 3 * 4);  // 12 batches checked
}

TEST(IncrementalDifferential, UniqueSubgraphCounts) {
  // Triangle: |Aut| = 6; delta in subgraph units must track the reference.
  const Pattern triangle = Pattern::parse("0-1,1-2,2-0");
  Graph base = make_erdos_renyi(32, 0.18, 17);
  MutableGraph g(base);

  IncrementalOptions opts;
  opts.plan.count_mode = CountMode::kUniqueSubgraphs;
  IncrementalMatcher matcher(triangle, opts);
  EXPECT_EQ(matcher.automorphisms(), 6u);

  ReferenceOptions ref;
  ref.count_mode = CountMode::kUniqueSubgraphs;
  Rng rng(5);
  std::int64_t count = static_cast<std::int64_t>(
      reference_count(g.snapshot()->view(), triangle, ref));
  for (int i = 0; i < 10; ++i) {
    auto from = g.snapshot();
    ApplyResult applied = g.apply(random_batch(*from, rng, 5));
    count += matcher.count_delta(from, applied.applied).delta;
    EXPECT_EQ(count, static_cast<std::int64_t>(reference_count(
                         applied.snapshot->view(), triangle, ref)));
  }
}

TEST(IncrementalDifferential, EmptyDeltaIsZero) {
  const Pattern triangle = Pattern::parse("0-1,1-2,2-0");
  IncrementalMatcher matcher(triangle);
  MutableGraph g(make_clique(5));
  DeltaMatchResult d = matcher.count_delta(g.snapshot(), DeltaEdges{});
  EXPECT_EQ(d.delta, 0);
  EXPECT_EQ(d.anchored_runs, 0u);
}

TEST(IncrementalMatcher, RejectsVertexInducedSemantics) {
  IncrementalOptions opts;
  opts.plan.induced = Induced::kVertex;
  EXPECT_THROW(IncrementalMatcher(Pattern::parse("0-1,1-2"), opts),
               check_error);
}

TEST(IncrementalMatcher, KnownTriangleDeltas) {
  // Path 0-1-2: closing the triangle adds exactly 6 embeddings (1 subgraph).
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  MutableGraph g(b.build());
  IncrementalMatcher matcher(Pattern::parse("0-1,1-2,2-0"));

  auto from = g.snapshot();
  UpdateBatch close_it;
  close_it.insertions = {{0, 2}};
  ApplyResult applied = g.apply(close_it);
  EXPECT_EQ(matcher.count_delta(from, applied.applied).delta, 6);

  // And deleting any triangle edge removes them again.
  from = g.snapshot();
  UpdateBatch open_it;
  open_it.deletions = {{0, 1}};
  applied = g.apply(open_it);
  EXPECT_EQ(matcher.count_delta(from, applied.applied).delta, -6);
}

// ---------------------------------------------------------------------------
// Epoch-keyed plan cache
// ---------------------------------------------------------------------------

TEST(IncrementalPlanCache, EpochForcesRecompile) {
  PlanCache cache(8);
  const Pattern triangle = Pattern::parse("0-1,1-2,2-0");
  bool hit = true;
  cache.get_or_compile(triangle, {}, /*epoch=*/0, &hit);
  EXPECT_FALSE(hit);
  cache.get_or_compile(triangle, {}, /*epoch=*/0, &hit);
  EXPECT_TRUE(hit);
  // A mutation bumps the epoch: the cached plan must not be served.
  cache.get_or_compile(triangle, {}, /*epoch=*/1, &hit);
  EXPECT_FALSE(hit);
  cache.get_or_compile(triangle, {}, /*epoch=*/1, &hit);
  EXPECT_TRUE(hit);
}

TEST(IncrementalPlanCache, SessionRecompilesAfterUpdate) {
  GraphSession session(make_erdos_renyi(30, 0.2, 4));
  QueryRequest req;
  req.pattern = Pattern::parse("0-1,1-2,2-0");
  req.deadline_ms = -1.0;

  QueryResult r1 = session.run(req);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1.plan_cache_hit);
  EXPECT_EQ(r1.graph_epoch, 0u);

  QueryResult r2 = session.run(req);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.plan_cache_hit);

  // Mutate, re-query: the epoch key must force a recompile.
  UpdateBatch batch;
  batch.insertions = {{0, 1}, {0, 2}, {1, 2}};
  batch.deletions = {};
  UpdateOutcome out = session.apply_updates(batch);
  ASSERT_TRUE(out.ok());
  ASSERT_GE(out.epoch, 1u);

  QueryResult r3 = session.run(req);
  ASSERT_TRUE(r3.ok());
  EXPECT_FALSE(r3.plan_cache_hit);
  EXPECT_EQ(r3.graph_epoch, out.epoch);
  EXPECT_EQ(r3.count, reference_count(session.snapshot()->view(), req.pattern,
                                      {}));
}

// ---------------------------------------------------------------------------
// Service update path and standing queries
// ---------------------------------------------------------------------------

TEST(StandingQuery, DeliversExactDeltasPerBatch) {
  GraphSession session(make_erdos_renyi(34, 0.15, 9));
  StandingQueryConfig cfg;
  cfg.pattern = Pattern::parse("0-1,1-2,2-0");
  std::atomic<int> callbacks{0};
  cfg.on_update = [&](const StandingQueryUpdate&) { callbacks.fetch_add(1); };
  const std::uint64_t id = session.register_standing_query(cfg);

  auto info = session.standing_query(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->count, reference_count(session.snapshot()->view(),
                                         cfg.pattern, {}));
  EXPECT_EQ(info->epoch, 0u);

  Rng rng(21);
  int applied_batches = 0;
  for (int i = 0; i < 6; ++i) {
    UpdateBatch batch = random_batch(*session.snapshot(), rng, 5);
    UpdateOutcome out = session.apply_updates(batch);
    ASSERT_TRUE(out.ok());
    if (out.applied.empty()) continue;
    ++applied_batches;
    ASSERT_EQ(out.updates.size(), 1u);
    EXPECT_EQ(out.updates[0].query_id, id);
    EXPECT_EQ(out.updates[0].epoch, out.epoch);
    // The standing count tracks the truth after every batch.
    EXPECT_EQ(out.updates[0].count,
              reference_count(session.snapshot()->view(), cfg.pattern, {}));
  }
  ASSERT_GT(applied_batches, 0);
  EXPECT_EQ(callbacks.load(), applied_batches);

  info = session.standing_query(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->batches_observed,
            static_cast<std::uint64_t>(applied_batches));
  EXPECT_EQ(info->count, reference_count(session.snapshot()->compacted(),
                                         cfg.pattern, {}));

  EXPECT_TRUE(session.unregister_standing_query(id));
  EXPECT_FALSE(session.unregister_standing_query(id));
  EXPECT_FALSE(session.standing_query(id).has_value());
}

TEST(StandingQuery, MetricsTrackUpdates) {
  GraphSession session(make_erdos_renyi(20, 0.2, 2));
  UpdateBatch batch;
  batch.insertions = {{0, 1}};
  batch.deletions = {};
  // Force a definite state: ensure 0-1 absent first.
  if (session.snapshot()->has_edge(0, 1)) {
    UpdateBatch del;
    del.deletions = {{0, 1}};
    ASSERT_TRUE(session.apply_updates(del).ok());
  }
  const std::uint64_t before =
      session.metrics().counter("updates_applied").value();
  UpdateOutcome out = session.apply_updates(batch);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.stats.inserted, 1u);
  EXPECT_EQ(session.metrics().counter("updates_applied").value(), before + 1);
  EXPECT_GE(session.metrics().counter("edges_inserted").value(), 1u);
  EXPECT_EQ(session.metrics().gauge("graph_epoch").value(),
            static_cast<double>(out.epoch));
}

TEST(StandingQuery, InvalidBatchReportsInvalidArgument) {
  GraphSession session(make_erdos_renyi(20, 0.2, 2));
  const std::uint64_t epoch = session.epoch();
  UpdateBatch bad;
  bad.insertions = {{3, 3}};  // self-loop
  UpdateOutcome out = session.apply_updates(bad);
  EXPECT_EQ(out.status, QueryStatus::kInvalidArgument);
  EXPECT_FALSE(out.error.empty());
  EXPECT_EQ(session.epoch(), epoch);  // graph untouched
}

TEST(StandingQuery, InjectedUpdateFaultLeavesGraphUntouched) {
  SessionConfig cfg;
  cfg.update_fault.seed = 11;
  cfg.update_fault.set_rate(FaultSite::kUpdateApply, 1.0);
  GraphSession session(make_erdos_renyi(20, 0.2, 2), cfg);
  const std::uint64_t epoch = session.epoch();
  const std::uint64_t before =
      session.metrics().counter("updates_failed").value();

  UpdateBatch batch;
  batch.insertions = {{0, 2}, {0, 3}};
  UpdateOutcome out = session.apply_updates(batch);
  EXPECT_EQ(out.status, QueryStatus::kInternalError);
  EXPECT_EQ(session.epoch(), epoch);
  EXPECT_EQ(session.metrics().counter("updates_failed").value(), before + 1);
}

TEST(StandingQuery, RejectsVertexInducedRegistration) {
  GraphSession session(make_erdos_renyi(20, 0.2, 2));
  StandingQueryConfig cfg;
  cfg.pattern = Pattern::parse("0-1,1-2");
  cfg.plan.induced = Induced::kVertex;
  EXPECT_THROW(session.register_standing_query(cfg), check_error);
}

TEST(StandingQuery, SimtEngineStandingQuery) {
  GraphSession session(make_erdos_renyi(26, 0.15, 6));
  StandingQueryConfig cfg;
  cfg.pattern = Pattern::parse("0-1,1-2,2-0");
  cfg.engine = DeltaEngine::kSimt;
  const std::uint64_t id = session.register_standing_query(cfg);

  Rng rng(31);
  for (int i = 0; i < 3; ++i) {
    UpdateBatch batch = random_batch(*session.snapshot(), rng, 4);
    ASSERT_TRUE(session.apply_updates(batch).ok());
  }
  auto info = session.standing_query(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->count, reference_count(session.snapshot()->view(),
                                         cfg.pattern, {}));
}

}  // namespace
}  // namespace stm
