// Unit and property tests for src/setops.
#include <gtest/gtest.h>

#include <algorithm>

#include "setops/multi_set_op.hpp"
#include "setops/set_ops.hpp"
#include "util/rng.hpp"

namespace stm {
namespace {

std::vector<VertexId> random_sorted_set(Rng& rng, std::size_t max_size,
                                        VertexId universe) {
  std::vector<VertexId> v;
  const auto size = rng.next_below(max_size + 1);
  for (std::size_t i = 0; i < size; ++i)
    v.push_back(static_cast<VertexId>(rng.next_below(universe)));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::vector<VertexId> std_intersect(SetView a, SetView b) {
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<VertexId> std_difference(SetView a, SetView b) {
  std::vector<VertexId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

TEST(SetOps, ContainsBasic) {
  std::vector<VertexId> s{1, 3, 5, 9};
  EXPECT_TRUE(set_contains(s, 1));
  EXPECT_TRUE(set_contains(s, 9));
  EXPECT_FALSE(set_contains(s, 2));
  EXPECT_FALSE(set_contains({}, 0));
}

TEST(SetOps, IntersectBasic) {
  std::vector<VertexId> a{1, 2, 3, 7}, b{2, 3, 4, 7, 9};
  EXPECT_EQ(set_intersect(a, b), (std::vector<VertexId>{2, 3, 7}));
  EXPECT_EQ(set_intersect(a, {}), std::vector<VertexId>{});
  EXPECT_EQ(set_intersect({}, b), std::vector<VertexId>{});
}

TEST(SetOps, DifferenceBasic) {
  std::vector<VertexId> a{1, 2, 3, 7}, b{2, 7};
  EXPECT_EQ(set_difference(a, b), (std::vector<VertexId>{1, 3}));
  EXPECT_EQ(set_difference(a, {}), a);
  EXPECT_EQ(set_difference({}, b), std::vector<VertexId>{});
}

TEST(SetOps, CountsMatchMaterialized) {
  Rng rng(100);
  for (int trial = 0; trial < 200; ++trial) {
    auto a = random_sorted_set(rng, 64, 128);
    auto b = random_sorted_set(rng, 64, 128);
    EXPECT_EQ(set_intersect_count(a, b), set_intersect(a, b).size());
    EXPECT_EQ(set_difference_count(a, b), set_difference(a, b).size());
  }
}

class IntersectAlgoTest : public ::testing::TestWithParam<IntersectAlgo> {};

TEST_P(IntersectAlgoTest, MatchesStdOnRandomInputs) {
  Rng rng(42 + static_cast<int>(GetParam()));
  for (int trial = 0; trial < 300; ++trial) {
    auto a = random_sorted_set(rng, 100, 300);
    auto b = random_sorted_set(rng, 100, 300);
    EXPECT_EQ(set_intersect(a, b, GetParam()), std_intersect(a, b));
  }
}

TEST_P(IntersectAlgoTest, SkewedSizes) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    auto a = random_sorted_set(rng, 4, 1000);
    auto b = random_sorted_set(rng, 500, 1000);
    EXPECT_EQ(set_intersect(a, b, GetParam()), std_intersect(a, b));
    EXPECT_EQ(set_intersect(b, a, GetParam()), std_intersect(b, a));
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, IntersectAlgoTest,
                         ::testing::Values(IntersectAlgo::kMerge,
                                           IntersectAlgo::kBinary,
                                           IntersectAlgo::kGalloping),
                         [](const auto& info) {
                           switch (info.param) {
                             case IntersectAlgo::kMerge: return "Merge";
                             case IntersectAlgo::kBinary: return "Binary";
                             default: return "Galloping";
                           }
                         });

TEST(SetOps, DifferenceMatchesStdOnRandomInputs) {
  Rng rng(9);
  for (int trial = 0; trial < 300; ++trial) {
    auto a = random_sorted_set(rng, 100, 300);
    auto b = random_sorted_set(rng, 100, 300);
    EXPECT_EQ(set_difference(a, b), std_difference(a, b));
  }
}

TEST(SetOps, SetOpIntoDispatch) {
  std::vector<VertexId> a{1, 2, 3}, b{2}, out;
  set_op_into(SetOpKind::kIntersect, a, b, out);
  EXPECT_EQ(out, std::vector<VertexId>{2});
  set_op_into(SetOpKind::kDifference, a, b, out);
  EXPECT_EQ(out, (std::vector<VertexId>{1, 3}));
}

TEST(SetOps, BsearchSteps) {
  EXPECT_EQ(bsearch_steps(0), 1u);
  EXPECT_EQ(bsearch_steps(1), 1u);
  EXPECT_EQ(bsearch_steps(2), 2u);
  EXPECT_EQ(bsearch_steps(32), 6u);
  EXPECT_EQ(bsearch_steps(33), 7u);
}

TEST(MultiSetOp, SingleTaskMatchesScalar) {
  std::vector<VertexId> a{1, 4, 6, 8}, b{4, 8, 9}, out;
  SetOpTask task{a, b, SetOpKind::kIntersect, {}, &out};
  WarpOpCost cost;
  combined_set_op({&task, 1}, &cost);
  EXPECT_EQ(out, set_intersect(a, b));
  EXPECT_EQ(cost.waves, 1u);
  EXPECT_EQ(cost.busy_lane_slots, 4u);
}

TEST(MultiSetOp, ManyTasksMatchScalarLoop) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t m = 1 + rng.next_below(8);
    std::vector<std::vector<VertexId>> sources(m), targets(m), outs(m);
    std::vector<SetOpTask> tasks(m);
    for (std::size_t i = 0; i < m; ++i) {
      sources[i] = random_sorted_set(rng, 40, 100);
      targets[i] = random_sorted_set(rng, 40, 100);
      tasks[i] = {sources[i], targets[i],
                  (i % 2 == 0) ? SetOpKind::kIntersect : SetOpKind::kDifference,
                  {},
                  &outs[i]};
    }
    combined_set_op(tasks, nullptr);
    for (std::size_t i = 0; i < m; ++i) {
      if (i % 2 == 0)
        EXPECT_EQ(outs[i], std_intersect(sources[i], targets[i]));
      else
        EXPECT_EQ(outs[i], std_difference(sources[i], targets[i]));
    }
  }
}

TEST(MultiSetOp, UtilizationImprovesWithFusion) {
  // Eight sets of 8 elements each: one-at-a-time needs 8 waves at 25%
  // utilization; fused they need 2 full waves (the paper's Fig. 8 argument).
  std::vector<std::vector<VertexId>> sources(8), outs(8);
  std::vector<VertexId> target{1, 5, 7};
  std::vector<SetOpTask> tasks;
  for (std::size_t i = 0; i < 8; ++i) {
    for (VertexId v = 0; v < 8; ++v) sources[i].push_back(v * 2);
    tasks.push_back({sources[i], target, SetOpKind::kIntersect, {}, &outs[i]});
  }
  WarpOpCost fused;
  combined_set_op(tasks, &fused);
  EXPECT_EQ(fused.waves, 2u);
  EXPECT_DOUBLE_EQ(fused.utilization(), 1.0);

  WarpOpCost sequential;
  for (auto& task : tasks) combined_set_op({&task, 1}, &sequential);
  EXPECT_EQ(sequential.waves, 8u);
  EXPECT_DOUBLE_EQ(sequential.utilization(), 0.25);
}

TEST(MultiSetOp, LabelFilterKeepsOnlyMaskedLabels) {
  std::vector<Label> labels{0, 1, 2, 0, 1, 2};
  std::vector<VertexId> source{0, 1, 2, 3, 4, 5}, target{0, 1, 2, 3, 4, 5};
  std::vector<VertexId> out;
  LabelFilter filter{labels.data(), (1ULL << 1) | (1ULL << 2)};
  SetOpTask task{source, target, SetOpKind::kIntersect, filter, &out};
  combined_set_op({&task, 1}, nullptr);
  EXPECT_EQ(out, (std::vector<VertexId>{1, 2, 4, 5}));
}

TEST(MultiSetOp, EmptySourcesProduceNoWaves) {
  std::vector<VertexId> empty, target{1}, out{99};
  SetOpTask task{empty, target, SetOpKind::kIntersect, {}, &out};
  WarpOpCost cost;
  combined_set_op({&task, 1}, &cost);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(cost.waves, 0u);
  EXPECT_DOUBLE_EQ(cost.utilization(), 1.0);
}

TEST(MultiSetOp, FilteredCopy) {
  std::vector<Label> labels{0, 1, 0, 1};
  std::vector<VertexId> source{0, 1, 2, 3}, out;
  WarpOpCost cost;
  filtered_copy(source, {labels.data(), 1ULL << 1}, out, &cost);
  EXPECT_EQ(out, (std::vector<VertexId>{1, 3}));
  EXPECT_EQ(cost.waves, 1u);
  EXPECT_EQ(cost.elements_written, 2u);
}

TEST(MultiSetOp, CostAccumulates) {
  std::vector<VertexId> a{1, 2, 3}, b{2}, out;
  SetOpTask task{a, b, SetOpKind::kIntersect, {}, &out};
  WarpOpCost cost;
  combined_set_op({&task, 1}, &cost);
  const auto waves_once = cost.waves;
  combined_set_op({&task, 1}, &cost);
  EXPECT_EQ(cost.waves, 2 * waves_once);
}

TEST(MultiSetOp, OrderPreservedPerOutput) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    auto source = random_sorted_set(rng, 200, 400);
    auto target = random_sorted_set(rng, 200, 400);
    std::vector<VertexId> out;
    SetOpTask task{source, target, SetOpKind::kDifference, {}, &out};
    combined_set_op({&task, 1}, nullptr);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  }
}

}  // namespace
}  // namespace stm
