// Tests for the brute-force reference enumerator against closed-form counts.
#include <gtest/gtest.h>

#include "baselines/reference.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "pattern/queries.hpp"
#include "pattern/symmetry.hpp"

namespace stm {
namespace {

std::uint64_t falling_factorial(std::uint64_t n, std::uint64_t k) {
  std::uint64_t r = 1;
  for (std::uint64_t i = 0; i < k; ++i) r *= (n - i);
  return r;
}

TEST(Reference, TriangleEmbeddingsInKn) {
  // Embeddings of K3 in Kn = n(n-1)(n-2).
  Pattern tri = Pattern::parse("0-1,1-2,2-0");
  for (VertexId n : {3, 4, 5, 7}) {
    EXPECT_EQ(reference_count(make_clique(n), tri), falling_factorial(n, 3));
  }
}

TEST(Reference, UniqueTrianglesInKn) {
  Pattern tri = Pattern::parse("0-1,1-2,2-0");
  ReferenceOptions opts{Induced::kEdge, CountMode::kUniqueSubgraphs};
  // C(n,3) triangles.
  EXPECT_EQ(reference_count(make_clique(5), tri, opts), 10u);
  EXPECT_EQ(reference_count(make_clique(7), tri, opts), 35u);
}

TEST(Reference, EdgeEmbeddings) {
  Pattern edge = Pattern::parse("0-1");
  Graph g = make_cycle(10);
  EXPECT_EQ(reference_count(g, edge), 20u);  // 2 per undirected edge
}

TEST(Reference, PathInCycle) {
  // P3 embeddings in C_n: each middle vertex gives 2 ordered ends.
  Pattern p3 = Pattern::parse("0-1,1-2");
  EXPECT_EQ(reference_count(make_cycle(8), p3), 16u);
  // Vertex-induced: in a cycle (n>3) no P3's endpoints are adjacent except in
  // C3; all 16 remain induced.
  ReferenceOptions vopts{Induced::kVertex, CountMode::kEmbeddings};
  EXPECT_EQ(reference_count(make_cycle(8), p3, vopts), 16u);
  // In K3, P3 embeddings exist but none are vertex-induced.
  EXPECT_EQ(reference_count(make_clique(3), p3), 6u);
  EXPECT_EQ(reference_count(make_clique(3), p3, vopts), 0u);
}

TEST(Reference, StarInStar) {
  // S3 (hub + 3 leaves) in S5 data star: hub must map to hub:
  // 5*4*3 = 60 embeddings.
  Pattern s3 = Pattern::parse("0-1,0-2,0-3");
  EXPECT_EQ(reference_count(make_star(5), s3), 60u);
  // Unique: C(5,3) = 10.
  ReferenceOptions opts{Induced::kEdge, CountMode::kUniqueSubgraphs};
  EXPECT_EQ(reference_count(make_star(5), s3, opts), 10u);
}

TEST(Reference, C4InCompleteBipartite) {
  // 4-cycles in K_{a,b}: unique count = C(a,2)*C(b,2); embeddings = x8.
  Pattern c4 = Pattern::parse("0-1,1-2,2-3,3-0");
  Graph g = make_complete_bipartite(3, 4);
  ReferenceOptions unique{Induced::kEdge, CountMode::kUniqueSubgraphs};
  EXPECT_EQ(reference_count(g, c4, unique), 3u * 6u);
  EXPECT_EQ(reference_count(g, c4), 8u * 18u);
}

TEST(Reference, K4InKn) {
  Pattern k4 = Pattern::parse("0-1,0-2,0-3,1-2,1-3,2-3");
  EXPECT_EQ(reference_count(make_clique(6), k4), falling_factorial(6, 4));
  ReferenceOptions unique{Induced::kEdge, CountMode::kUniqueSubgraphs};
  EXPECT_EQ(reference_count(make_clique(6), k4, unique), 15u);
}

TEST(Reference, SymmetryDividesEmbeddings) {
  // unique == embeddings / |Aut| on arbitrary graphs.
  Graph g = make_erdos_renyi(30, 0.3, 17);
  for (int q : {1, 3, 4, 5, 8}) {
    Pattern p = query(q);
    const auto aut = automorphisms(p).size();
    const auto embeddings = reference_count(g, p);
    ReferenceOptions unique{Induced::kEdge, CountMode::kUniqueSubgraphs};
    EXPECT_EQ(reference_count(g, p, unique), embeddings / aut) << query_name(q);
    EXPECT_EQ(embeddings % aut, 0u) << query_name(q);
  }
}

TEST(Reference, SymmetryDividesEmbeddingsVertexInduced) {
  Graph g = make_erdos_renyi(25, 0.35, 23);
  for (int q : {2, 3, 6}) {
    Pattern p = query(q);
    const auto aut = automorphisms(p).size();
    ReferenceOptions emb{Induced::kVertex, CountMode::kEmbeddings};
    ReferenceOptions unique{Induced::kVertex, CountMode::kUniqueSubgraphs};
    const auto embeddings = reference_count(g, p, emb);
    EXPECT_EQ(reference_count(g, p, unique), embeddings / aut) << query_name(q);
  }
}

TEST(Reference, VertexInducedNeverExceedsEdgeInduced) {
  Graph g = make_erdos_renyi(30, 0.25, 5);
  for (int q : {1, 3, 9, 10}) {
    ReferenceOptions vopts{Induced::kVertex, CountMode::kEmbeddings};
    EXPECT_LE(reference_count(g, query(q), vopts),
              reference_count(g, query(q)))
        << query_name(q);
  }
}

TEST(Reference, CliqueEdgeEqualsVertexInduced) {
  // For cliques there are no pattern non-edges, so both semantics agree
  // (paper: "for q8, q16 and q24 ... vertex-induced matching is the same").
  Graph g = make_erdos_renyi(35, 0.4, 29);
  ReferenceOptions vopts{Induced::kVertex, CountMode::kEmbeddings};
  EXPECT_EQ(reference_count(g, query(8), vopts), reference_count(g, query(8)));
}

TEST(Reference, LabeledTriangle) {
  // Labeled triangle on labeled K4: count embeddings whose labels line up.
  Graph g = make_clique(4).with_labels({0, 0, 1, 1});
  Pattern tri = Pattern::parse("0-1,1-2,2-0");
  // Pattern labels (0,0,1): choose two label-0 vertices ordered (2 ways) and
  // one label-1 vertex (2 ways) = 4 embeddings.
  EXPECT_EQ(reference_count(g, tri.with_labels({0, 0, 1})), 4u);
  // Impossible label: no label-2 vertices exist.
  EXPECT_EQ(reference_count(g, tri.with_labels({0, 0, 2})), 0u);
}

TEST(Reference, LabeledCountsSumToUnlabeled) {
  // Summing labeled-edge counts over all pattern labelings of an edge equals
  // the unlabeled count.
  Graph g = with_random_labels(make_erdos_renyi(40, 0.2, 3), 3, 7);
  Pattern edge = Pattern::parse("0-1");
  std::uint64_t total = 0;
  for (Label a = 0; a < 3; ++a)
    for (Label b = 0; b < 3; ++b)
      total += reference_count(g, edge.with_labels({a, b}));
  EXPECT_EQ(total, reference_count(g, edge));
}

TEST(Reference, EmptyGraphAndTooLargePattern) {
  Graph empty = GraphBuilder(0).build();
  EXPECT_EQ(reference_count(empty, Pattern::parse("0-1")), 0u);
  // Pattern larger than the graph.
  EXPECT_EQ(reference_count(make_clique(3), query(8)), 0u);
}

TEST(Reference, EmitReceivesValidEmbeddings) {
  Graph g = make_cycle(6);
  Pattern p3 = Pattern::parse("0-1,1-2");
  std::size_t seen = 0;
  auto count = reference_enumerate(
      g, p3, {}, [&](const std::vector<VertexId>& m) {
        ++seen;
        EXPECT_EQ(m.size(), 3u);
        // Reordered P3 has the middle vertex first.
        EXPECT_TRUE(g.has_edge(m[0], m[1]));
        EXPECT_NE(m[0], m[2]);
      });
  EXPECT_EQ(seen, count);
  EXPECT_EQ(count, 12u);
}

}  // namespace
}  // namespace stm
