// Cross-semantic counting identities.
//
// These tests pin the engines to mathematical facts that are independent of
// any implementation detail: inclusion relations between edge- and
// vertex-induced counts, label-sum decompositions, isomorphism invariance,
// and closed forms on structured graphs.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "graph/reorder.hpp"
#include "pattern/motifs.hpp"
#include "pattern/queries.hpp"
#include "pattern/symmetry.hpp"
#include "util/rng.hpp"

namespace stm {
namespace {

EngineConfig small_cfg() {
  EngineConfig cfg;
  cfg.device.num_blocks = 4;
  cfg.device.warps_per_block = 4;
  cfg.unroll = 4;
  return cfg;
}

std::uint64_t count(const Graph& g, const Pattern& p, PlanOptions opts = {}) {
  return stmatch_match_pattern(g, p, opts, small_cfg()).count;
}

TEST(Identities, EdgeInducedDecomposesOverSupergraphMotifs) {
  // Edge-induced embeddings of P3 = Σ over size-3 motifs M ⊇ P3 of
  // (vertex-induced embeddings of M) × (#copies of P3 in M).
  // For P3 (path) in 3-vertex motifs: P3 itself (1 copy... as embeddings:
  // count orientations) and K3 (3 undirected copies -> in embedding terms the
  // identity is: edge_emb(P3) = vertex_emb(P3) + 3 * vertex_emb(K3) / ...).
  // Use the unique-subgraph form, which is the standard inclusion identity:
  // edge_unique(P3) = vertex_unique(P3) + 3 * vertex_unique(K3).
  Graph g = make_erdos_renyi(40, 0.25, 9);
  Pattern p3 = Pattern::parse("0-1,1-2");
  Pattern k3 = Pattern::parse("0-1,1-2,2-0");
  PlanOptions edge_u{Induced::kEdge, true, CountMode::kUniqueSubgraphs};
  PlanOptions vert_u{Induced::kVertex, true, CountMode::kUniqueSubgraphs};
  EXPECT_EQ(count(g, p3, edge_u),
            count(g, p3, vert_u) + 3 * count(g, k3, vert_u));
}

TEST(Identities, C4PlusDiagonalsDecomposition) {
  // edge_unique(C4) = vertex_unique(C4) + vertex_unique(diamond) +
  //                   3 * vertex_unique(K4), since the 4-cycle has 1, 1 and 3
  // copies inside C4, the diamond and K4 respectively.
  Graph g = make_erdos_renyi(30, 0.3, 17);
  Pattern c4 = Pattern::parse("0-1,1-2,2-3,3-0");
  Pattern diamond = Pattern::parse("0-1,1-2,2-3,3-0,0-2");
  Pattern k4 = Pattern::parse("0-1,0-2,0-3,1-2,1-3,2-3");
  PlanOptions edge_u{Induced::kEdge, true, CountMode::kUniqueSubgraphs};
  PlanOptions vert_u{Induced::kVertex, true, CountMode::kUniqueSubgraphs};
  EXPECT_EQ(count(g, c4, edge_u), count(g, c4, vert_u) +
                                      count(g, diamond, vert_u) +
                                      3 * count(g, k4, vert_u));
}

TEST(Identities, LabeledCountsSumToUnlabeledOverAllLabelings) {
  Graph g = with_random_labels(make_erdos_renyi(30, 0.25, 21), 2, 13);
  Pattern p = Pattern::parse("0-1,1-2,2-0");  // triangle
  std::uint64_t labeled_total = 0;
  for (Label a = 0; a < 2; ++a)
    for (Label b = 0; b < 2; ++b)
      for (Label c = 0; c < 2; ++c)
        labeled_total += count(g, p.with_labels({a, b, c}));
  EXPECT_EQ(labeled_total, count(g, p));
}

TEST(Identities, InvarianceUnderGraphReordering) {
  Graph g = make_barabasi_albert(90, 4, 27);
  for (int q : {4, 10, 13}) {
    const auto base = count(g, query(q));
    for (auto kind : {ReorderKind::kDegreeDescending, ReorderKind::kBfs,
                      ReorderKind::kDegreeAscending}) {
      EXPECT_EQ(count(reorder_graph(g, kind), query(q)), base)
          << query_name(q);
    }
  }
}

TEST(Identities, EmbeddingsAreAutMultipleOfUnique) {
  Graph g = make_erdos_renyi(28, 0.3, 31);
  for (int q : {1, 3, 7, 10, 15}) {
    const auto aut = automorphisms(query(q)).size();
    PlanOptions unique{Induced::kEdge, true, CountMode::kUniqueSubgraphs};
    EXPECT_EQ(count(g, query(q)), aut * count(g, query(q), unique))
        << query_name(q);
  }
}

TEST(Identities, PathCountsInCompleteGraph) {
  // Embeddings of P_k in K_n = n!/(n-k)! (any ordered k distinct vertices).
  Graph k8 = make_clique(8);
  EXPECT_EQ(count(k8, Pattern::parse("0-1,1-2")), 8u * 7 * 6);
  EXPECT_EQ(count(k8, query(1)), 8u * 7 * 6 * 5 * 4);  // P5
}

TEST(Identities, CycleCountsInCompleteBipartite) {
  // C6 unique subgraphs in K_{3,3}: choose 3+3 vertices (all of them) and
  // count distinct hexagons = 3! * 2! / 2 = 6.
  Graph g = make_complete_bipartite(3, 3);
  PlanOptions unique{Induced::kEdge, true, CountMode::kUniqueSubgraphs};
  EXPECT_EQ(count(g, Pattern::parse("0-1,1-2,2-3,3-4,4-5,5-0"), unique), 6u);
  // No odd cycles in a bipartite graph.
  EXPECT_EQ(count(g, Pattern::parse("0-1,1-2,2-0")), 0u);
  EXPECT_EQ(count(g, query(3)), 0u);  // C5
}

TEST(Identities, StarEmbeddingsAreFallingFactorialsOfDegree) {
  // Embeddings of the star S3 = Σ_v d(v)(d(v)-1)(d(v)-2).
  Graph g = make_barabasi_albert(60, 3, 33);
  std::uint64_t expected = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto d = g.degree(v);
    if (d >= 3) expected += d * (d - 1) * (d - 2);
  }
  EXPECT_EQ(count(g, Pattern::parse("0-1,0-2,0-3")), expected);
}

TEST(Identities, TriangleCountViaEdgeIntersections) {
  // 3 * #triangles = Σ_{(u,v) ∈ E} |N(u) ∩ N(v)|.
  Graph g = make_erdos_renyi(45, 0.2, 39);
  std::uint64_t sum = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.neighbors(u))
      if (u < v) sum += set_intersect_count(g.neighbors(u), g.neighbors(v));
  PlanOptions unique{Induced::kEdge, true, CountMode::kUniqueSubgraphs};
  EXPECT_EQ(sum, 3 * count(g, Pattern::parse("0-1,1-2,2-0"), unique));
}

TEST(Identities, MotifCensusMatchesHandshake) {
  // Unique edge count equals m; unique P3 count equals Σ C(d(v), 2).
  Graph g = make_barabasi_albert(70, 3, 41);
  PlanOptions unique{Induced::kEdge, true, CountMode::kUniqueSubgraphs};
  EXPECT_EQ(count(g, Pattern::parse("0-1"), unique), g.num_edges());
  std::uint64_t wedges = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    wedges += g.degree(v) * (g.degree(v) - 1) / 2;
  EXPECT_EQ(count(g, Pattern::parse("0-1,1-2"), unique), wedges);
}

TEST(Identities, VertexInducedPartitionOfCliqueMinusEdge) {
  // In any graph: edge_unique(K4 minus edge) =
  //   vertex_unique(K4-e) + C(4,2)-choose... K4-e has exactly 3 copies
  //   inside K4 (pick which of the 6 edges is missing: 6 pairs / Aut ->
  //   K4 contains 6 subgraphs isomorphic to K4-e? Copies of K4-e in K4 =
  //   number of edges whose removal leaves that subgraph = 6... but as
  //   *subgraphs with the same vertex set*, each choice of a missing edge
  //   gives a distinct edge-subgraph: 6.
  Graph g = make_erdos_renyi(26, 0.35, 43);
  Pattern k4e = Pattern::parse("0-1,0-2,0-3,1-2,1-3");  // K4 minus edge 2-3
  Pattern k4 = Pattern::parse("0-1,0-2,0-3,1-2,1-3,2-3");
  PlanOptions edge_u{Induced::kEdge, true, CountMode::kUniqueSubgraphs};
  PlanOptions vert_u{Induced::kVertex, true, CountMode::kUniqueSubgraphs};
  EXPECT_EQ(count(g, k4e, edge_u),
            count(g, k4e, vert_u) + 6 * count(g, k4, vert_u));
}

}  // namespace
}  // namespace stm
