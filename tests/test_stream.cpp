// Tests for the streaming results subsystem (service/stream.hpp): ordered
// emission, cursor pagination and resume tokens, limits, cancellation,
// deadlines, top-k, standing-query embedding deltas, admission and metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/reference.hpp"
#include "graph/generators.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/queries.hpp"
#include "service/service.hpp"
#include "service/stream.hpp"
#include "testing/oracle.hpp"
#include "testing/workload.hpp"
#include "util/check.hpp"

namespace stm {
namespace {

Pattern triangle() { return Pattern::parse("0-1,1-2,2-0"); }
Pattern square() { return Pattern::parse("0-1,1-2,2-3,3-0"); }

StreamRequest stream_request(const Pattern& p,
                             EngineKind engine = EngineKind::kHost) {
  StreamRequest req;
  req.query.pattern = p;
  req.query.engine = engine;
  return req;
}

/// Drains a stream to the end; fills *out with the terminal result.
std::vector<Embedding> drain(GraphSession& session, StreamRequest req,
                             QueryResult* out = nullptr,
                             std::string* token = nullptr) {
  auto s = session.open_stream(std::move(req));
  std::vector<Embedding> got;
  Embedding e;
  while (s->next(&e)) got.push_back(std::move(e));
  if (out != nullptr) *out = s->result();
  if (token != nullptr) *token = s->resume_token();
  return got;
}

/// Brute-force embedding list in original-pattern vertex order (the
/// reference enumerator reports plan-order mappings), sorted.
std::vector<Embedding> reference_embeddings(const Graph& g, const Pattern& p,
                                            const PlanOptions& opts = {}) {
  const std::vector<std::size_t> order = matching_order(p);
  std::vector<Embedding> ref;
  std::vector<VertexId> orig(p.size());
  reference_enumerate(GraphView(g), p, {opts.induced, opts.count_mode},
                      [&](const std::vector<VertexId>& m) {
                        for (std::size_t i = 0; i < order.size(); ++i)
                          orig[order[i]] = m[i];
                        ref.push_back(orig);
                      });
  std::sort(ref.begin(), ref.end());
  return ref;
}

// ---------------------------------------------------------------------------
// Order and exactness
// ---------------------------------------------------------------------------

TEST(StreamOrder, DrainedStreamMatchesReferenceEnumeration) {
  GraphSession session(make_erdos_renyi(48, 0.18, 7));
  QueryResult r;
  std::vector<Embedding> got = drain(session, stream_request(triangle()), &r);
  EXPECT_EQ(r.status, QueryStatus::kOk);
  EXPECT_EQ(r.count, got.size());
  ASSERT_GT(got.size(), 0u);

  // Global order: ascending v0 (the data vertex at plan position 0), and a
  // strict total order overall (no duplicates).
  const std::vector<std::size_t> order = matching_order(triangle());
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1][order[0]], got[i][order[0]]);
    EXPECT_NE(got[i - 1], got[i]);
  }

  std::vector<Embedding> sorted = got;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, reference_embeddings(session.graph(), triangle()));
}

TEST(StreamOrder, BitIdenticalAcrossEnginesThreadsAndBuffers) {
  GraphSession session(make_barabasi_albert(60, 3, 11));
  const Pattern p = square();

  QueryResult r;
  const std::vector<Embedding> want =
      drain(session, stream_request(p, EngineKind::kReference), &r);
  ASSERT_EQ(r.status, QueryStatus::kOk);
  ASSERT_GT(want.size(), 0u);

  for (std::size_t threads : {1u, 4u, 7u}) {
    StreamRequest req = stream_request(p, EngineKind::kHost);
    req.query.host.num_threads = threads;
    req.query.host.chunk_size = 3;
    EXPECT_EQ(drain(session, req, &r), want) << "host threads=" << threads;
    EXPECT_EQ(r.status, QueryStatus::kOk);
  }
  for (std::size_t buffered : {1u, 2u, 4096u}) {
    StreamRequest req = stream_request(p, EngineKind::kHost);
    req.query.host.num_threads = 4;
    req.stream.max_buffered = buffered;
    EXPECT_EQ(drain(session, req, &r), want) << "max_buffered=" << buffered;
    EXPECT_EQ(r.status, QueryStatus::kOk);
  }
  for (std::uint32_t chunk : {1u, 5u}) {
    StreamRequest req = stream_request(p, EngineKind::kSimt);
    req.query.simt.chunk_size = chunk;
    EXPECT_EQ(drain(session, req, &r), want) << "simt chunk=" << chunk;
    EXPECT_EQ(r.status, QueryStatus::kOk);
  }
}

TEST(StreamOrder, MatchlessStreamEndsImmediately) {
  GraphSession session(make_path(6));  // a path has no triangles
  QueryResult r;
  std::string token;
  const std::vector<Embedding> got =
      drain(session, stream_request(triangle()), &r, &token);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(r.status, QueryStatus::kOk);
  EXPECT_EQ(r.count, 0u);
  EXPECT_TRUE(token.empty()) << "an exhausted stream has no next page";
}

TEST(StreamOrder, UniqueSubgraphModeStreamsOneRepresentativePerSubgraph) {
  GraphSession session(make_clique(8));
  StreamRequest req = stream_request(triangle());
  req.query.plan.count_mode = CountMode::kUniqueSubgraphs;
  QueryResult r;
  const std::vector<Embedding> got = drain(session, req, &r);
  EXPECT_EQ(r.status, QueryStatus::kOk);
  EXPECT_EQ(got.size(), 56u);  // C(8,3) triangles
  // Representatives are distinct as vertex sets.
  std::vector<Embedding> sets;
  for (Embedding e : got) {
    std::sort(e.begin(), e.end());
    sets.push_back(std::move(e));
  }
  std::sort(sets.begin(), sets.end());
  EXPECT_EQ(std::unique(sets.begin(), sets.end()), sets.end());
}

// ---------------------------------------------------------------------------
// Limits and cursors
// ---------------------------------------------------------------------------

TEST(StreamCursor, LimitDeliversExactPageWithOkStatus) {
  GraphSession session(make_erdos_renyi(40, 0.2, 3));
  StreamRequest req = stream_request(triangle());
  req.stream.limit = 5;
  QueryResult r;
  std::string token;
  const std::vector<Embedding> got = drain(session, req, &r, &token);
  EXPECT_EQ(got.size(), 5u);
  EXPECT_EQ(r.status, QueryStatus::kOk);
  EXPECT_EQ(r.count, 5u);
  EXPECT_FALSE(token.empty()) << "a reached limit is not exhaustion";
}

TEST(StreamCursor, PagesConcatenateToTheFullStream) {
  GraphSession session(make_erdos_renyi(40, 0.2, 3));
  QueryResult r;
  const std::vector<Embedding> full =
      drain(session, stream_request(triangle()), &r);
  ASSERT_GT(full.size(), 10u);

  std::vector<Embedding> paged;
  std::string token;
  int pages = 0;
  do {
    StreamRequest req = stream_request(triangle());
    req.stream.limit = 7;
    req.stream.resume_token = token;
    const std::vector<Embedding> page = drain(session, req, &r, &token);
    ASSERT_EQ(r.status, QueryStatus::kOk);
    paged.insert(paged.end(), page.begin(), page.end());
    ASSERT_LE(++pages, 1000) << "cursor failed to terminate";
  } while (!token.empty());
  EXPECT_EQ(paged, full);
}

TEST(StreamCursor, ResumeIsEngineIndependent) {
  GraphSession session(make_barabasi_albert(50, 2, 19));
  QueryResult r;
  const std::vector<Embedding> full =
      drain(session, stream_request(square(), EngineKind::kHost), &r);
  ASSERT_GT(full.size(), 6u);

  StreamRequest first = stream_request(square(), EngineKind::kHost);
  first.stream.limit = full.size() / 2;
  std::string token;
  std::vector<Embedding> paged = drain(session, first, &r, &token);
  ASSERT_EQ(r.status, QueryStatus::kOk);
  ASSERT_FALSE(token.empty());

  // Continue the host-issued cursor on the SIMT engine.
  StreamRequest rest = stream_request(square(), EngineKind::kSimt);
  rest.stream.resume_token = token;
  const std::vector<Embedding> tail = drain(session, rest, &r, &token);
  EXPECT_EQ(r.status, QueryStatus::kOk);
  EXPECT_TRUE(token.empty());
  paged.insert(paged.end(), tail.begin(), tail.end());
  EXPECT_EQ(paged, full);
}

TEST(StreamCursor, TokenSurvivesSessionRestart) {
  const Graph g = make_erdos_renyi(36, 0.2, 5);
  std::string token;
  std::vector<Embedding> paged;
  QueryResult r;
  {
    GraphSession session{Graph(g)};
    StreamRequest req = stream_request(triangle());
    req.stream.limit = 4;
    paged = drain(session, req, &r, &token);
    ASSERT_EQ(r.status, QueryStatus::kOk);
    ASSERT_FALSE(token.empty());
  }
  // A fresh session over the same graph is at the same epoch; the token is
  // a pure stream position and remains valid.
  GraphSession session{Graph(g)};
  const std::vector<Embedding> full =
      drain(session, stream_request(triangle()), &r);
  StreamRequest rest = stream_request(triangle());
  rest.stream.resume_token = token;
  const std::vector<Embedding> tail = drain(session, rest, &r, &token);
  EXPECT_EQ(r.status, QueryStatus::kOk);
  paged.insert(paged.end(), tail.begin(), tail.end());
  EXPECT_EQ(paged, full);
}

TEST(StreamCursor, StaleEpochTokenIsRejected) {
  GraphSession session(make_erdos_renyi(36, 0.2, 5));
  StreamRequest req = stream_request(triangle());
  req.stream.limit = 3;
  QueryResult r;
  std::string token;
  drain(session, req, &r, &token);
  ASSERT_FALSE(token.empty());

  UpdateBatch batch;
  batch.insertions.emplace_back(0, 1);
  batch.insertions.emplace_back(0, 2);
  ASSERT_TRUE(session.apply_updates(std::move(batch)).ok());

  StreamRequest rest = stream_request(triangle());
  rest.stream.resume_token = token;
  const std::vector<Embedding> got = drain(session, rest, &r);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(r.status, QueryStatus::kInvalidArgument);
  EXPECT_FALSE(r.error.empty());
}

TEST(StreamCursor, TokenForADifferentPatternIsRejected) {
  GraphSession session(make_erdos_renyi(36, 0.2, 5));
  StreamRequest req = stream_request(triangle());
  req.stream.limit = 3;
  QueryResult r;
  std::string token;
  drain(session, req, &r, &token);
  ASSERT_FALSE(token.empty());

  StreamRequest other = stream_request(square());
  other.stream.resume_token = token;
  drain(session, other, &r);
  EXPECT_EQ(r.status, QueryStatus::kInvalidArgument);
  EXPECT_FALSE(r.error.empty());
}

TEST(StreamCursor, MalformedTokensAreRejected) {
  GraphSession session(make_clique(6));
  for (const char* bad : {"garbage", "stm1.0.zz", "stm2.0.0.0.0.0"}) {
    StreamRequest req = stream_request(triangle());
    req.stream.resume_token = bad;
    QueryResult r;
    drain(session, req, &r);
    EXPECT_EQ(r.status, QueryStatus::kInvalidArgument) << bad;
    EXPECT_FALSE(r.error.empty());
  }
}

// Stale and malformed tokens are distinguishable from the error text alone:
// stale tokens name the expected and observed epoch / fingerprint, malformed
// ones echo the expected layout.

TEST(StreamTokens, StaleEpochErrorNamesBothEpochs) {
  GraphSession session(make_erdos_renyi(36, 0.2, 5));
  StreamRequest req = stream_request(triangle());
  req.stream.limit = 3;
  QueryResult r;
  std::string token;
  drain(session, req, &r, &token);
  ASSERT_FALSE(token.empty());

  // Toggle an edge so the batch is guaranteed effective (redundant updates
  // are no-ops and would not advance the epoch).
  UpdateBatch batch;
  if (session.snapshot()->has_edge(0, 1))
    batch.deletions.emplace_back(0, 1);
  else
    batch.insertions.emplace_back(0, 1);
  ASSERT_TRUE(session.apply_updates(std::move(batch)).ok());
  ASSERT_EQ(session.epoch(), 1u);

  StreamRequest rest = stream_request(triangle());
  rest.stream.resume_token = token;
  drain(session, rest, &r);
  ASSERT_EQ(r.status, QueryStatus::kInvalidArgument);
  EXPECT_NE(r.error.find("stale resume token"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("epoch 0"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("epoch 1"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("moved on"), std::string::npos) << r.error;
  // Specifically NOT reported as malformed: the token is fine, the graph
  // changed underneath it.
  EXPECT_EQ(r.error.find("malformed"), std::string::npos) << r.error;
}

TEST(StreamTokens, FingerprintMismatchErrorNamesBothFingerprints) {
  GraphSession session(make_erdos_renyi(36, 0.2, 5));
  StreamRequest req = stream_request(triangle());
  req.stream.limit = 3;
  QueryResult r;
  std::string token;
  drain(session, req, &r, &token);
  ASSERT_FALSE(token.empty());
  // The token's own fingerprint field (3rd dot-separated field, hex).
  const std::size_t a = token.find('.', token.find('.') + 1);
  const std::string issued_fp =
      token.substr(a + 1, token.find('.', a + 1) - a - 1);

  StreamRequest other = stream_request(square());
  other.stream.resume_token = token;
  drain(session, other, &r);
  ASSERT_EQ(r.status, QueryStatus::kInvalidArgument);
  EXPECT_NE(r.error.find("stale resume token"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find(issued_fp), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("different pattern or plan options"),
            std::string::npos)
      << r.error;
}

TEST(StreamTokens, MalformedErrorEchoesExpectedLayoutAndToken) {
  GraphSession session(make_clique(6));
  StreamRequest req = stream_request(triangle());
  req.stream.resume_token = "stm1.not-a-number";
  QueryResult r;
  drain(session, req, &r);
  ASSERT_EQ(r.status, QueryStatus::kInvalidArgument);
  EXPECT_NE(r.error.find("malformed resume token"), std::string::npos)
      << r.error;
  EXPECT_NE(r.error.find("stm1.<epoch>.<fingerprint>.<v0>.<skip>.<total>"),
            std::string::npos)
      << r.error;
  EXPECT_NE(r.error.find("stm1.not-a-number"), std::string::npos) << r.error;
}

TEST(StreamCursor, RangeKnobsAreReservedForTheStream) {
  GraphSession session(make_clique(6));
  StreamRequest req = stream_request(triangle());
  req.query.host.v_begin = 2;
  QueryResult r;
  drain(session, req, &r);
  EXPECT_EQ(r.status, QueryStatus::kInvalidArgument);
  EXPECT_FALSE(r.error.empty());
}

// ---------------------------------------------------------------------------
// Cancellation, close, deadline
// ---------------------------------------------------------------------------

TEST(StreamCancel, CancelMidStreamYieldsAValidPrefix) {
  GraphSession session(make_erdos_renyi(48, 0.2, 9));
  QueryResult r;
  const std::vector<Embedding> full =
      drain(session, stream_request(triangle()), &r);
  ASSERT_GT(full.size(), 8u);

  auto s = session.open_stream(stream_request(triangle()));
  std::vector<Embedding> prefix;
  Embedding e;
  for (int i = 0; i < 5 && s->next(&e); ++i) prefix.push_back(e);
  s->cancel();
  while (s->next(&e)) prefix.push_back(e);  // drain whatever was released
  const QueryResult& res = s->result();
  EXPECT_EQ(res.status, QueryStatus::kCancelled);
  EXPECT_FALSE(res.error.empty());
  EXPECT_EQ(res.count, prefix.size());
  ASSERT_LE(prefix.size(), full.size());
  EXPECT_TRUE(std::equal(prefix.begin(), prefix.end(), full.begin()))
      << "the delivered embeddings must be a prefix of the full stream";

  // The prefix's token resumes to the rest of the stream.
  const std::string token = s->resume_token();
  ASSERT_FALSE(token.empty());
  StreamRequest rest = stream_request(triangle());
  rest.stream.resume_token = token;
  std::vector<Embedding> tail = drain(session, rest, &r);
  ASSERT_EQ(r.status, QueryStatus::kOk);
  prefix.insert(prefix.end(), tail.begin(), tail.end());
  EXPECT_EQ(prefix, full);
}

// Regression: a stream cancelled between admission and the first emission
// must still surface kCancelled with a populated error, not an empty one.
TEST(StreamCancel, CancelBeforeFirstNextReportsErrorDetail) {
  GraphSession session(make_erdos_renyi(48, 0.2, 9));
  auto s = session.open_stream(stream_request(triangle()));
  s->cancel();
  const QueryResult& r = s->result();
  EXPECT_EQ(r.status, QueryStatus::kCancelled);
  EXPECT_FALSE(r.error.empty())
      << "kCancelled before first emission must still carry error detail";
}

TEST(StreamCancel, ClosingViaResultMidStreamIsACancel) {
  GraphSession session(make_erdos_renyi(48, 0.2, 9));
  auto s = session.open_stream(stream_request(triangle()));
  Embedding e;
  ASSERT_TRUE(s->next(&e));
  const QueryResult& r = s->result();  // closes with most of the stream left
  EXPECT_EQ(r.status, QueryStatus::kCancelled);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(r.count, 1u);
}

TEST(StreamCancel, DeadlineBoundsTheStream) {
  GraphSession session(make_clique(26));
  StreamRequest req = stream_request(query(3));  // C5: millions on K26
  req.query.deadline_ms = 0.05;
  auto s = session.open_stream(std::move(req));
  std::vector<Embedding> prefix;
  Embedding e;
  while (s->next(&e)) prefix.push_back(std::move(e));
  const QueryResult& r = s->result();
  ASSERT_EQ(r.status, QueryStatus::kDeadlineExceeded);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(r.count, prefix.size());

  // The partial prefix is exactly the first N of a fresh limited stream.
  if (!prefix.empty()) {
    StreamRequest again = stream_request(query(3));
    again.stream.limit = prefix.size();
    QueryResult r2;
    EXPECT_EQ(drain(session, again, &r2), prefix);
    EXPECT_EQ(r2.status, QueryStatus::kOk);
  }
}

// ---------------------------------------------------------------------------
// Admission and metrics
// ---------------------------------------------------------------------------

TEST(StreamAdmission, MaxOpenStreamsShedsWithOverloaded) {
  SessionConfig cfg;
  cfg.max_open_streams = 1;
  GraphSession session(make_clique(10), cfg);

  auto held = session.open_stream(stream_request(triangle()));
  EXPECT_EQ(session.metrics().gauge("open_streams").value(), 1.0);

  auto shed = session.open_stream(stream_request(triangle()));
  Embedding e;
  EXPECT_FALSE(shed->next(&e));
  EXPECT_EQ(shed->result().status, QueryStatus::kOverloaded);
  EXPECT_FALSE(shed->result().error.empty());

  // Releasing the slot re-admits.
  (void)held->result();
  auto ok = session.open_stream(stream_request(triangle()));
  EXPECT_TRUE(ok->next(&e));
  (void)ok->result();
  EXPECT_EQ(session.metrics().gauge("open_streams").value(), 0.0);
}

TEST(StreamMetrics, CountersGaugesAndExports) {
  GraphSession session(make_erdos_renyi(40, 0.2, 3));
  QueryResult r;
  StreamRequest req = stream_request(triangle());
  req.query.host.num_threads = 4;
  req.stream.max_buffered = 2;  // force some backpressure accounting
  const std::vector<Embedding> got = drain(session, req, &r);
  ASSERT_EQ(r.status, QueryStatus::kOk);

  MetricsRegistry& m = session.metrics();
  EXPECT_GE(m.counter("stream_emitted_total").value(), got.size());
  EXPECT_EQ(m.gauge("open_streams").value(), 0.0);
  EXPECT_EQ(m.histogram("stream_backpressure_ms").snapshot().count, 1u);

  const std::string json = m.to_json();
  const std::string prom = m.to_prometheus();
  for (const char* name :
       {"stream_emitted_total", "stream_backpressure_ms", "open_streams"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
    EXPECT_NE(prom.find(name), std::string::npos) << name;
  }
}

// ---------------------------------------------------------------------------
// Top-k
// ---------------------------------------------------------------------------

TEST(StreamTopK, KeepsTheBestKWithDeterministicTies) {
  GraphSession session(make_erdos_renyi(40, 0.2, 3));
  QueryResult r;
  const std::vector<Embedding> full =
      drain(session, stream_request(triangle()), &r);
  ASSERT_GT(full.size(), 12u);

  const auto score = [](const Embedding& e) {
    double s = 0.0;
    for (VertexId v : e) s += static_cast<double>(v);
    return s;
  };

  TopKOptions opts;
  opts.k = 5;
  opts.score = score;
  QueryRequest q;
  q.pattern = triangle();
  const TopKResult got = session.top_k(q, opts);
  ASSERT_EQ(got.result.status, QueryStatus::kOk);
  EXPECT_EQ(got.result.count, full.size());
  ASSERT_EQ(got.top.size(), 5u);

  // Brute-force expectation: score everything, sort by (score desc, stream
  // rank asc), take 5.
  std::vector<ScoredEmbedding> want;
  for (std::size_t i = 0; i < full.size(); ++i)
    want.push_back({full[i], score(full[i]), i});
  std::stable_sort(want.begin(), want.end(),
                   [](const ScoredEmbedding& a, const ScoredEmbedding& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.rank < b.rank;
                   });
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got.top[i].embedding, want[i].embedding) << i;
    EXPECT_EQ(got.top[i].score, want[i].score) << i;
    EXPECT_EQ(got.top[i].rank, want[i].rank) << i;
  }

  // Constant scorer: ties resolve to the first k in stream order.
  TopKOptions flat;
  flat.k = 3;
  flat.score = [](const Embedding&) { return 1.0; };
  const TopKResult ties = session.top_k(q, flat);
  ASSERT_EQ(ties.top.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ties.top[i].embedding, full[i]) << i;
    EXPECT_EQ(ties.top[i].rank, i) << i;
  }
}

TEST(StreamTopK, FewerMatchesThanK) {
  GraphSession session(make_cycle(5));
  TopKOptions opts;
  opts.k = 100;
  opts.score = [](const Embedding& e) { return static_cast<double>(e[0]); };
  QueryRequest q;
  q.pattern = Pattern::parse("0-1");  // 5 edges, 10 embeddings
  const TopKResult got = session.top_k(q, opts);
  ASSERT_EQ(got.result.status, QueryStatus::kOk);
  EXPECT_EQ(got.top.size(), got.result.count);
  for (std::size_t i = 1; i < got.top.size(); ++i)
    EXPECT_GE(got.top[i - 1].score, got.top[i].score);
}

// ---------------------------------------------------------------------------
// Standing-query embedding deltas
// ---------------------------------------------------------------------------

TEST(StreamStanding, OnDeltaMatchesBruteForceBeforeAfterDiff) {
  GraphSession session(make_erdos_renyi(30, 0.12, 21));

  StandingQueryConfig cfg;
  cfg.pattern = triangle();
  std::vector<StandingQueryDelta> deltas;
  cfg.on_delta = [&](const StandingQueryDelta& d) { deltas.push_back(d); };
  const std::uint64_t id = session.register_standing_query(std::move(cfg));

  // Mixed batch: new edges plus a deletion, so both directions fire.
  const std::vector<Embedding> before =
      reference_embeddings(session.graph(), triangle());
  UpdateBatch batch;
  batch.insertions.emplace_back(0, 1);
  batch.insertions.emplace_back(1, 2);
  batch.insertions.emplace_back(0, 2);
  batch.deletions.emplace_back(3, 4);
  const UpdateOutcome out = session.apply_updates(std::move(batch));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(deltas.size(), 1u);

  std::vector<Embedding> after;
  {
    QueryResult r;
    after = drain(session, stream_request(triangle()), &r);
    ASSERT_EQ(r.status, QueryStatus::kOk);
    std::sort(after.begin(), after.end());
  }

  // before - retracted + added == after, as multisets.
  std::vector<Embedding> rebuilt = before;
  for (const Embedding& e : deltas[0].retracted) {
    auto it = std::find(rebuilt.begin(), rebuilt.end(), e);
    ASSERT_NE(it, rebuilt.end()) << "retracted a non-existent embedding";
    rebuilt.erase(it);
  }
  rebuilt.insert(rebuilt.end(), deltas[0].added.begin(),
                 deltas[0].added.end());
  std::sort(rebuilt.begin(), rebuilt.end());
  EXPECT_EQ(rebuilt, after);

  // added and retracted are disjoint, and the count identity holds.
  for (const Embedding& e : deltas[0].added)
    EXPECT_EQ(std::find(deltas[0].retracted.begin(),
                        deltas[0].retracted.end(), e),
              deltas[0].retracted.end());
  const auto info = session.standing_query(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->count, after.size());
}

TEST(StreamStanding, OnDeltaRequiresEmbeddingCountMode) {
  GraphSession session(make_clique(6));
  StandingQueryConfig cfg;
  cfg.pattern = triangle();
  cfg.plan.count_mode = CountMode::kUniqueSubgraphs;
  cfg.on_delta = [](const StandingQueryDelta&) {};
  EXPECT_THROW(session.register_standing_query(std::move(cfg)), check_error);
}

// ---------------------------------------------------------------------------
// Differential: the oracle's stream lane over fuzz cases
// ---------------------------------------------------------------------------

// Session teardown vs. live consumers: handles legally outlive the session.
// The destructor's shutting_down_ sweep aborts and finalizes every open
// stream, so consumer threads looping next() on their own handles must
// observe a clean terminal stream — never a crash or a read of freed
// session state. Run under TSan in CI (the tsan job's -R regex matches
// "Stream").
TEST(StreamTeardownRace, DestroyingTheSessionUnderLiveConsumersIsClean) {
  for (int round = 0; round < 8; ++round) {
    auto session = std::make_unique<GraphSession>(
        make_erdos_renyi(64, 0.25, 100 + round));
    constexpr int kConsumers = 4;
    std::vector<std::unique_ptr<EmbeddingStream>> handles;
    for (int i = 0; i < kConsumers; ++i) {
      StreamRequest req = stream_request(triangle());
      req.stream.max_buffered = 1;  // keep the producer handing off slowly
      handles.push_back(session->open_stream(std::move(req)));
    }
    std::vector<std::thread> consumers;
    consumers.reserve(kConsumers);
    for (int i = 0; i < kConsumers; ++i) {
      consumers.emplace_back([&handles, i] {
        Embedding e;
        while (handles[i]->next(&e)) {
        }
        // Either the stream drained normally or the sweep cancelled it;
        // both are terminal, and result() must be safe after teardown.
        const QueryResult r = handles[i]->result();
        STM_CHECK(r.status == QueryStatus::kOk ||
                  r.status == QueryStatus::kCancelled);
      });
    }
    session.reset();  // race the sweep against the consumers
    for (std::thread& t : consumers) t.join();
  }
}

TEST(StreamDifferential, OracleStreamLaneAgreesOnFuzzCases) {
  harness::WorkloadOptions wopts;
  wopts.max_vertices = 40;
  harness::OracleOptions oopts;
  oopts.run_incremental = false;  // covered by its own differential suite
  oopts.run_sharded = false;
  int lane_ran = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const harness::TestCase c = harness::random_case(seed, wopts);
    const harness::OracleReport report = harness::run_oracle(c, oopts);
    EXPECT_TRUE(report.agreed)
        << harness::describe(c) << "\n" << report.describe();
    for (const harness::EngineCount& e : report.counts)
      if (e.engine == harness::EngineKind::kStream) ++lane_ran;
  }
  EXPECT_GT(lane_ran, 20) << "stream lane skipped too often to be meaningful";
}

}  // namespace
}  // namespace stm
