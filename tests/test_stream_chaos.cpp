// Chaos tests for the streaming subsystem: the kEmitDrop site drops posted
// embedding batches in the emission transport; the retained staged copies
// must be retransmitted so the drained stream stays bit-identical to a
// fault-free run, on every engine, including combined with engine-level
// fault sites. Attempt-budget exhaustion must fail the stream cleanly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fault.hpp"
#include "graph/generators.hpp"
#include "pattern/pattern.hpp"
#include "service/service.hpp"
#include "service/stream.hpp"

namespace stm {
namespace {

Pattern triangle() { return Pattern::parse("0-1,1-2,2-0"); }

StreamRequest stream_request(const Pattern& p, EngineKind engine) {
  StreamRequest req;
  req.query.pattern = p;
  req.query.engine = engine;
  return req;
}

std::vector<Embedding> drain(GraphSession& session, StreamRequest req,
                             QueryResult* out) {
  auto s = session.open_stream(std::move(req));
  std::vector<Embedding> got;
  Embedding e;
  while (s->next(&e)) got.push_back(std::move(e));
  *out = s->result();
  return got;
}

TEST(StreamChaos, EmitDropsAreRetransmittedExactly) {
  GraphSession session(make_erdos_renyi(48, 0.2, 13));
  QueryResult clean_result;
  const std::vector<Embedding> clean =
      drain(session, stream_request(triangle(), EngineKind::kHost),
            &clean_result);
  ASSERT_EQ(clean_result.status, QueryStatus::kOk);
  ASSERT_GT(clean.size(), 0u);

  for (const EngineKind engine :
       {EngineKind::kReference, EngineKind::kHost, EngineKind::kSimt}) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      StreamRequest req = stream_request(triangle(), engine);
      req.query.host.num_threads = 4;
      // Drop decisions are per posted bucket; small chunks give the 15%
      // rate enough decision points to fire on every seed.
      req.query.host.chunk_size = 1;
      req.query.simt.chunk_size = 1;
      req.stream.emit_fault.seed = seed;
      req.stream.emit_fault.set_rate(FaultSite::kEmitDrop, 0.15);
      QueryResult r;
      const std::vector<Embedding> got = drain(session, req, &r);
      EXPECT_EQ(r.status, QueryStatus::kOk)
          << to_string(engine) << " seed=" << seed << ": " << r.error;
      EXPECT_EQ(got, clean) << to_string(engine) << " seed=" << seed;
      EXPECT_GT(r.stats.faults_injected, 0u)
          << to_string(engine) << " seed=" << seed
          << ": a 15% drop rate over " << clean.size()
          << " embeddings injected nothing";
    }
  }
}

TEST(StreamChaos, EmitDropsComposeWithEngineFaults) {
  GraphSession session(make_erdos_renyi(40, 0.2, 29));
  QueryResult clean_result;
  const std::vector<Embedding> clean =
      drain(session, stream_request(triangle(), EngineKind::kHost),
            &clean_result);
  ASSERT_EQ(clean_result.status, QueryStatus::kOk);
  ASSERT_GT(clean.size(), 0u);

  {
    // Host engine: chunk-task faults force chunk re-runs while the emission
    // transport is dropping batches; both recovery paths must compose.
    StreamRequest req = stream_request(triangle(), EngineKind::kHost);
    req.query.host.num_threads = 4;
    req.query.host.fault.seed = 5;
    req.query.host.fault.set_rate(FaultSite::kHostTask, 0.2);
    req.stream.emit_fault.seed = 6;
    req.stream.emit_fault.set_rate(FaultSite::kEmitDrop, 0.15);
    QueryResult r;
    const std::vector<Embedding> got = drain(session, req, &r);
    EXPECT_EQ(r.status, QueryStatus::kOk) << r.error;
    EXPECT_EQ(got, clean);
    EXPECT_GT(r.stats.faults_injected, 0u);
  }
  {
    // SIMT engine: warp aborts recover captured frames mid-stack.
    StreamRequest req = stream_request(triangle(), EngineKind::kSimt);
    req.query.simt.fault.seed = 7;
    req.query.simt.fault.set_rate(FaultSite::kWarpAbort, 0.05);
    req.stream.emit_fault.seed = 8;
    req.stream.emit_fault.set_rate(FaultSite::kEmitDrop, 0.15);
    QueryResult r;
    const std::vector<Embedding> got = drain(session, req, &r);
    EXPECT_EQ(r.status, QueryStatus::kOk) << r.error;
    EXPECT_EQ(got, clean);
    EXPECT_GT(r.stats.faults_injected, 0u);
  }
}

TEST(StreamChaos, AttemptBudgetExhaustionFailsTheStream) {
  GraphSession session(make_clique(12));
  StreamRequest req = stream_request(triangle(), EngineKind::kHost);
  req.stream.emit_fault.seed = 1;
  req.stream.emit_fault.set_rate(FaultSite::kEmitDrop, 1.0);
  req.stream.emit_fault.max_unit_attempts = 1;
  QueryResult r;
  const std::vector<Embedding> got = drain(session, req, &r);
  EXPECT_EQ(r.status, QueryStatus::kInternalError);
  EXPECT_FALSE(r.error.empty());
  EXPECT_TRUE(got.empty()) << "every delivery was dropped; nothing can have "
                              "reached the consumer";
}

TEST(StreamChaos, CursorPagesSurviveEmitDrops) {
  GraphSession session(make_erdos_renyi(40, 0.2, 17));
  QueryResult r;
  const std::vector<Embedding> clean =
      drain(session, stream_request(triangle(), EngineKind::kHost), &r);
  ASSERT_EQ(r.status, QueryStatus::kOk);
  ASSERT_GT(clean.size(), 6u);

  std::vector<Embedding> paged;
  std::string token;
  int pages = 0;
  do {
    StreamRequest req = stream_request(triangle(), EngineKind::kHost);
    req.query.host.num_threads = 3;
    req.stream.limit = 5;
    req.stream.resume_token = token;
    req.stream.emit_fault.seed = 11 + static_cast<std::uint64_t>(pages);
    req.stream.emit_fault.set_rate(FaultSite::kEmitDrop, 0.2);
    auto s = session.open_stream(std::move(req));
    Embedding e;
    while (s->next(&e)) paged.push_back(std::move(e));
    ASSERT_EQ(s->result().status, QueryStatus::kOk) << s->result().error;
    token = s->resume_token();
    ASSERT_LE(++pages, 1000) << "cursor failed to terminate";
  } while (!token.empty());
  EXPECT_EQ(paged, clean);
}

}  // namespace
}  // namespace stm
