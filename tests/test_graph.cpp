// Unit tests for src/graph: CSR construction/invariants, edge-list I/O,
// generators, labeling, degree stats, dataset proxies.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/datasets.hpp"
#include "graph/degree_stats.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/labeling.hpp"
#include "util/check.hpp"

namespace stm {
namespace {

TEST(GraphBuilder, Triangle) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(GraphBuilder, DeduplicatesAndDropsSelfLoops) {
  GraphBuilder b;
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // duplicate (reversed)
  b.add_edge(0, 1);  // duplicate
  b.add_edge(2, 2);  // self loop
  b.set_num_vertices(3);
  Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(GraphBuilder, NeighborsSorted) {
  GraphBuilder b;
  b.add_edge(5, 0);
  b.add_edge(5, 3);
  b.add_edge(5, 1);
  Graph g = b.build();
  auto nbrs = g.neighbors(5);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder b;
  Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, IsolatedVertices) {
  GraphBuilder b(10);
  b.add_edge(0, 1);
  Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.degree(9), 0u);
  EXPECT_TRUE(g.neighbors(9).empty());
}

TEST(Graph, CsrValidationRejectsBadInput) {
  // row_ptr not ending at col size
  EXPECT_THROW(Graph({0, 2}, {1}), check_error);
  // unsorted neighbor list
  EXPECT_THROW(Graph({0, 2, 3, 3}, {2, 1, 0}), check_error);
  // self loop
  EXPECT_THROW(Graph({0, 1, 1}, {0}), check_error);
  // neighbor out of range
  EXPECT_THROW(Graph({0, 1, 1}, {5}), check_error);
}

TEST(Graph, WithLabels) {
  Graph g = make_clique(4);
  Graph lg = g.with_labels({0, 1, 1, 2});
  EXPECT_TRUE(lg.is_labeled());
  EXPECT_FALSE(g.is_labeled());
  EXPECT_EQ(lg.label(2), 1);
  EXPECT_EQ(lg.num_labels(), 3u);
  EXPECT_EQ(g.num_labels(), 1u);
  EXPECT_THROW(g.with_labels({0, 1}), check_error);
}

TEST(EdgeList, RoundTrip) {
  Graph g = make_barabasi_albert(50, 3, 42);
  std::ostringstream os;
  write_edge_list(g, os);
  std::istringstream is(os.str());
  Graph g2 = read_edge_list(is);
  EXPECT_EQ(g2.num_vertices(), g.num_vertices());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_EQ(g2.row_ptr(), g.row_ptr());
  EXPECT_EQ(g2.col_idx(), g.col_idx());
}

TEST(EdgeList, ParsesCommentsAndBlankLines) {
  std::istringstream is("# header\n\n0 1\n1 2 # trailing comment\n");
  Graph g = read_edge_list(is);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeList, RejectsMalformedLines) {
  std::istringstream a("0\n");
  EXPECT_THROW(read_edge_list(a), check_error);
  std::istringstream b("0 1 2\n");
  EXPECT_THROW(read_edge_list(b), check_error);
  std::istringstream c("-1 2\n");
  EXPECT_THROW(read_edge_list(c), check_error);
}

TEST(EdgeList, MissingFileThrows) {
  EXPECT_THROW(load_edge_list("/nonexistent/file.txt"), check_error);
}

TEST(Generators, Clique) {
  Graph g = make_clique(6);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(g.max_degree(), 5u);
}

TEST(Generators, Cycle) {
  Graph g = make_cycle(7);
  EXPECT_EQ(g.num_edges(), 7u);
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Generators, Star) {
  Graph g = make_star(9);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.degree(0), 9u);
  EXPECT_EQ(g.degree(5), 1u);
}

TEST(Generators, Path) {
  Graph g = make_path(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Generators, CompleteBipartite) {
  Graph g = make_complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_FALSE(g.has_edge(0, 1));  // same side
  EXPECT_TRUE(g.has_edge(0, 3));
}

TEST(Generators, Grid) {
  Graph g = make_grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8
  EXPECT_EQ(g.num_edges(), 17u);
}

TEST(Generators, ErdosRenyiDeterministic) {
  Graph a = make_erdos_renyi(100, 0.1, 7);
  Graph b = make_erdos_renyi(100, 0.1, 7);
  EXPECT_EQ(a.col_idx(), b.col_idx());
}

TEST(Generators, ErdosRenyiEdgeCountNearExpected) {
  Graph g = make_erdos_renyi(200, 0.1, 9);
  const double expected = 0.1 * 200 * 199 / 2;
  EXPECT_GT(static_cast<double>(g.num_edges()), expected * 0.75);
  EXPECT_LT(static_cast<double>(g.num_edges()), expected * 1.25);
}

TEST(Generators, ErdosRenyiExtremes) {
  EXPECT_EQ(make_erdos_renyi(20, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(make_erdos_renyi(20, 1.0, 1).num_edges(), 190u);
}

TEST(Generators, BarabasiAlbertStructure) {
  Graph g = make_barabasi_albert(300, 4, 13);
  EXPECT_EQ(g.num_vertices(), 300u);
  // Each of the n-m-1 later vertices adds m edges; seed clique adds C(m+1,2).
  EXPECT_EQ(g.num_edges(), (300u - 5u) * 4u + 10u);
  // Degree skew: max degree well above the attachment count.
  EXPECT_GT(g.max_degree(), 12u);
}

TEST(Generators, RmatProducesSkew) {
  Graph g = make_rmat(9, 4.0, 0.57, 0.19, 0.19, 3);
  EXPECT_EQ(g.num_vertices(), 512u);
  EXPECT_GT(g.num_edges(), 500u);
  auto stats = compute_degree_stats(g, 32);
  EXPECT_GT(static_cast<double>(stats.max_degree), 3.0 * stats.mean_degree);
}

TEST(Labeling, RandomLabelsInRange) {
  auto labels = random_labels(1000, 10, 5);
  for (Label l : labels) EXPECT_LT(l, 10);
  // All 10 labels present in 1000 draws (overwhelmingly likely).
  auto g = make_path(1000).with_labels(labels);
  EXPECT_EQ(g.num_labels(), 10u);
}

TEST(Labeling, HistogramSumsToN) {
  Graph g = with_random_labels(make_barabasi_albert(200, 3, 1), 10, 2);
  auto hist = label_histogram(g);
  std::size_t total = 0;
  for (auto c : hist) total += c;
  EXPECT_EQ(total, 200u);
}

TEST(Labeling, VerticesByLabelPartition) {
  Graph g = with_random_labels(make_clique(50), 5, 3);
  auto part = vertices_by_label(g);
  std::size_t total = 0;
  for (const auto& vs : part) {
    EXPECT_TRUE(std::is_sorted(vs.begin(), vs.end()));
    for (VertexId v : vs) EXPECT_EQ(g.label(v), &vs - &part[0]);
    total += vs.size();
  }
  EXPECT_EQ(total, 50u);
}

TEST(DegreeStats, CliqueStats) {
  auto s = compute_degree_stats(make_clique(10), 4);
  EXPECT_EQ(s.max_degree, 9u);
  EXPECT_DOUBLE_EQ(s.median_degree, 9.0);
  EXPECT_DOUBLE_EQ(s.mean_degree, 9.0);
  EXPECT_DOUBLE_EQ(s.frac_above_cap, 1.0);
}

TEST(DegreeStats, StarStats) {
  auto s = compute_degree_stats(make_star(99), 32);
  EXPECT_EQ(s.max_degree, 99u);
  EXPECT_DOUBLE_EQ(s.median_degree, 1.0);
  EXPECT_NEAR(s.frac_above_cap, 1.0 / 100.0, 1e-12);
}

TEST(CapDegrees, EnforcesCap) {
  Graph g = make_barabasi_albert(400, 6, 21);
  ASSERT_GT(g.max_degree(), 20u);
  Graph capped = cap_degrees(g, 20, 5);
  EXPECT_LE(capped.max_degree(), 20u);
  EXPECT_EQ(capped.num_vertices(), g.num_vertices());
  EXPECT_LT(capped.num_edges(), g.num_edges());
}

TEST(CapDegrees, NoOpWhenUnderCap) {
  Graph g = make_cycle(10);
  Graph capped = cap_degrees(g, 5, 1);
  EXPECT_EQ(capped.num_edges(), g.num_edges());
}

TEST(CapDegrees, PreservesLabels) {
  Graph g = with_random_labels(make_barabasi_albert(100, 5, 2), 4, 9);
  Graph capped = cap_degrees(g, 8, 3);
  EXPECT_TRUE(capped.is_labeled());
  EXPECT_EQ(capped.labels(), g.labels());
}

TEST(Datasets, AllProxiesBuildAndAreDeterministic) {
  for (const auto& name : dataset_names()) {
    Graph a = make_dataset(name, 0.25);
    Graph b = make_dataset(name, 0.25);
    EXPECT_GT(a.num_vertices(), 0u) << name;
    EXPECT_GT(a.num_edges(), 0u) << name;
    EXPECT_EQ(a.col_idx(), b.col_idx()) << name;
  }
}

TEST(Datasets, SizeOrderingMatchesPaper) {
  // WikiVote proxy is the smallest, Friendster proxy the largest.
  Graph wiki = make_dataset("wiki_vote");
  Graph friendster = make_dataset("friendster");
  EXPECT_LT(wiki.num_vertices(), friendster.num_vertices());
}

TEST(Datasets, LabeledVariant) {
  Graph g = make_labeled_dataset("wiki_vote", 0.5, 10);
  EXPECT_TRUE(g.is_labeled());
  EXPECT_EQ(g.num_labels(), 10u);
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(make_dataset("nope"), check_error);
}

TEST(Datasets, MedianDegreeBelowWarpWidth) {
  // The paper's thread-underutilization argument (Table I): median degree of
  // real graphs is far below 32. Our proxies preserve that property.
  for (const auto& name : dataset_names()) {
    auto s = compute_degree_stats(make_dataset(name), dataset_report_cap());
    EXPECT_LT(s.median_degree, 32.0) << name;
  }
}

}  // namespace
}  // namespace stm
