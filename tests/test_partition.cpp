// Tests for the graph partitioner: ownership assignment across strategies,
// shard materialization (local/halo remaps), the halo invariant, the
// min-shard cut-edge rule, balance reporting, outer-loop slices, and the
// incremental refresh after dynamic update batches.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "dist/partition.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "graph/degree_stats.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/labeling.hpp"
#include "util/check.hpp"

namespace stm {
namespace {

using dist::Partition;
using dist::PartitionConfig;
using dist::PartitionStrategy;
using dist::Shard;

/// Every undirected edge of `g`, u < v, sorted.
std::vector<std::pair<VertexId, VertexId>> edge_set(const Graph& g) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.neighbors(u))
      if (u < v) edges.emplace_back(u, v);
  return edges;
}

PartitionConfig config(std::uint32_t shards, PartitionStrategy strategy) {
  PartitionConfig cfg;
  cfg.num_shards = shards;
  cfg.strategy = strategy;
  return cfg;
}

const PartitionStrategy kAllStrategies[] = {
    PartitionStrategy::kContiguous, PartitionStrategy::kDegreeBalanced,
    PartitionStrategy::kHash, PartitionStrategy::kInterleaved};

// ---------------------------------------------------------------------------
// Ownership and materialization invariants
// ---------------------------------------------------------------------------

TEST(Partition, OwnershipCoversEveryVertexForAllStrategies) {
  const Graph g = make_erdos_renyi(60, 0.12, 5);
  for (PartitionStrategy strategy : kAllStrategies) {
    for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
      const Partition p = dist::partition_graph(g, config(shards, strategy));
      ASSERT_EQ(p.owner.size(), g.num_vertices());
      ASSERT_EQ(p.shards.size(), shards);
      std::vector<VertexId> owned_total(shards, 0);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        ASSERT_LT(p.owner_of(v), shards);
        ++owned_total[p.owner_of(v)];
      }
      // The materialized shards reproduce the ownership vector exactly.
      for (std::uint32_t s = 0; s < shards; ++s) {
        EXPECT_EQ(p.shards[s]->num_owned(), owned_total[s])
            << to_string(strategy) << " shard " << s;
        for (VertexId global : p.shards[s]->to_global)
          EXPECT_EQ(p.owner_of(global), s);
      }
    }
  }
}

TEST(Partition, ContiguousOwnershipMatchesOuterSliceRanges) {
  const Graph g = make_erdos_renyi(37, 0.1, 9);  // odd size: uneven ranges
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    const Partition p =
        dist::partition_graph(g, config(shards, PartitionStrategy::kContiguous));
    for (std::uint32_t s = 0; s < shards; ++s) {
      const dist::OuterSlice slice = dist::outer_slice(p, s);
      EXPECT_EQ(slice.v_stride, 1u);
      for (VertexId v = slice.v_begin; v < slice.v_end; ++v)
        EXPECT_EQ(p.owner_of(v), s);
    }
  }
}

TEST(Partition, InterleavedOwnershipIsVertexModShards) {
  const Graph g = make_erdos_renyi(40, 0.1, 3);
  const Partition p =
      dist::partition_graph(g, config(4, PartitionStrategy::kInterleaved));
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(p.owner_of(v), v % 4);
  const dist::OuterSlice slice = dist::outer_slice(p, 2);
  EXPECT_EQ(slice.v_begin, 2u);
  EXPECT_EQ(slice.v_stride, 4u);
  EXPECT_EQ(slice.v_end, g.num_vertices());
}

TEST(Partition, OuterSliceThrowsForNonSliceableStrategies) {
  const Graph g = make_erdos_renyi(20, 0.2, 1);
  const Partition p =
      dist::partition_graph(g, config(2, PartitionStrategy::kHash));
  EXPECT_THROW(dist::outer_slice(p, 0), check_error);
}

TEST(Partition, LocalRemapRoundTripsAndPreservesEdges) {
  const Graph g = make_barabasi_albert(50, 3, 11);
  for (PartitionStrategy strategy : kAllStrategies) {
    const Partition p = dist::partition_graph(g, config(4, strategy));
    for (const auto& shard : p.shards) {
      // to_global is strictly ascending (the remap is order-preserving).
      EXPECT_TRUE(std::is_sorted(shard->to_global.begin(),
                                 shard->to_global.end()));
      // Every local edge maps to a global edge with both endpoints owned.
      for (const auto& [lu, lv] : edge_set(shard->local)) {
        const VertexId gu = shard->to_global[lu];
        const VertexId gv = shard->to_global[lv];
        EXPECT_TRUE(g.has_edge(gu, gv));
        EXPECT_EQ(p.owner_of(gu), shard->id);
        EXPECT_EQ(p.owner_of(gv), shard->id);
      }
      // And every owned-owned global edge appears in the local graph.
      EdgeId owned_edges = 0;
      for (VertexId v : shard->to_global)
        for (VertexId w : g.neighbors(v))
          if (v < w && p.owner_of(w) == shard->id) ++owned_edges;
      EXPECT_EQ(shard->local.num_edges(), owned_edges);
    }
  }
}

TEST(Partition, HaloInvariantFullDegreeAndNoGhostGhostEdges) {
  const Graph g = make_erdos_renyi(48, 0.15, 21);
  for (PartitionStrategy strategy : kAllStrategies) {
    const Partition p = dist::partition_graph(g, config(4, strategy));
    for (const auto& shard : p.shards) {
      const VertexId owned = shard->num_owned();
      EXPECT_TRUE(std::is_sorted(shard->ghosts.begin(), shard->ghosts.end()));
      for (VertexId lv = 0; lv < shard->halo.num_vertices(); ++lv) {
        const VertexId global = shard->halo_global(lv);
        if (lv < owned) {
          // Halo invariant: an owned vertex keeps its full global degree.
          EXPECT_EQ(shard->halo.degree(lv), g.degree(global))
              << "shard " << shard->id << " vertex " << global;
        } else {
          // Ghosts connect to owned vertices only (no ghost-ghost edges).
          for (VertexId lw : shard->halo.neighbors(lv)) EXPECT_LT(lw, owned);
          EXPECT_EQ(p.owner_of(global) == shard->id, false);
        }
      }
    }
  }
}

TEST(Partition, CutEdgesFollowMinShardRuleAndCoverEveryCrossEdge) {
  const Graph g = make_barabasi_albert(40, 4, 31);
  for (PartitionStrategy strategy : kAllStrategies) {
    const Partition p = dist::partition_graph(g, config(4, strategy));
    // Per-shard lists: owned by min-shard rule, sorted, cross-shard.
    std::vector<std::pair<VertexId, VertexId>> collected;
    for (const auto& shard : p.shards) {
      EXPECT_TRUE(std::is_sorted(shard->cut_edges.begin(),
                                 shard->cut_edges.end()));
      for (const auto& [u, v] : shard->cut_edges) {
        EXPECT_LT(u, v);
        EXPECT_NE(p.owner_of(u), p.owner_of(v));
        EXPECT_EQ(p.cut_owner(u, v), shard->id);
        collected.emplace_back(u, v);
      }
    }
    // The global list is the owner-major concatenation.
    EXPECT_EQ(p.cut_edges, collected);
    // Together with the intra edges it covers the graph exactly once.
    std::set<std::pair<VertexId, VertexId>> cut(collected.begin(),
                                                collected.end());
    EXPECT_EQ(cut.size(), collected.size());  // no duplicates
    EdgeId cross = 0;
    for (const auto& [u, v] : edge_set(g)) {
      if (p.owner_of(u) != p.owner_of(v)) {
        ++cross;
        EXPECT_TRUE(cut.count({u, v})) << u << "-" << v;
      }
    }
    EXPECT_EQ(cross, p.cut_edges.size());
    EdgeId local_total = 0;
    for (const auto& shard : p.shards) local_total += shard->local.num_edges();
    EXPECT_EQ(local_total + p.cut_edges.size(), g.num_edges());
    EXPECT_EQ(p.num_edges, g.num_edges());
  }
}

TEST(Partition, LabelsArePreservedInLocalAndHaloGraphs) {
  Graph g = with_random_labels(make_erdos_renyi(30, 0.2, 7), 3, 99);
  const Partition p =
      dist::partition_graph(g, config(3, PartitionStrategy::kHash));
  for (const auto& shard : p.shards) {
    ASSERT_TRUE(shard->local.is_labeled());
    ASSERT_TRUE(shard->halo.is_labeled());
    for (VertexId lv = 0; lv < shard->local.num_vertices(); ++lv)
      EXPECT_EQ(shard->local.label(lv), g.label(shard->to_global[lv]));
    for (VertexId lv = 0; lv < shard->halo.num_vertices(); ++lv)
      EXPECT_EQ(shard->halo.label(lv), g.label(shard->halo_global(lv)));
  }
}

TEST(Partition, DeterministicAcrossRepeatedBuilds) {
  const Graph g = make_barabasi_albert(60, 3, 17);
  for (PartitionStrategy strategy : kAllStrategies) {
    const Partition a = dist::partition_graph(g, config(4, strategy));
    const Partition b = dist::partition_graph(g, config(4, strategy));
    EXPECT_EQ(a.owner, b.owner);
    EXPECT_EQ(a.cut_edges, b.cut_edges);
  }
}

TEST(Partition, HashSaltChangesTheAssignment) {
  const Graph g = make_erdos_renyi(64, 0.1, 2);
  PartitionConfig cfg = config(4, PartitionStrategy::kHash);
  const Partition a = dist::partition_graph(g, cfg);
  cfg.hash_salt = 12345;
  const Partition b = dist::partition_graph(g, cfg);
  EXPECT_NE(a.owner, b.owner);
}

TEST(Partition, MoreShardsThanVerticesLeavesEmptyShards) {
  const Graph g = make_clique(3);
  const Partition p =
      dist::partition_graph(g, config(8, PartitionStrategy::kContiguous));
  ASSERT_EQ(p.shards.size(), 8u);
  VertexId owned = 0;
  for (const auto& shard : p.shards) owned += shard->num_owned();
  EXPECT_EQ(owned, g.num_vertices());
}

TEST(Partition, OwnershipOnlyModeSkipsMaterialization) {
  const Graph g = make_erdos_renyi(30, 0.1, 4);
  PartitionConfig cfg = config(4, PartitionStrategy::kInterleaved);
  cfg.materialize = false;
  const Partition p = dist::partition_graph(g, cfg);
  EXPECT_TRUE(p.shards.empty());
  EXPECT_EQ(p.owner.size(), g.num_vertices());
}

// ---------------------------------------------------------------------------
// Balance report
// ---------------------------------------------------------------------------

TEST(Partition, BalanceReportTalliesAHandComputedSplit) {
  // Path 0-1-2-3 split down the middle: one intra edge per shard, one cut.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const BalanceReport rep = balance_report(g, {0, 0, 1, 1}, 2);
  ASSERT_EQ(rep.shards.size(), 2u);
  EXPECT_EQ(rep.shards[0].vertices, 2u);
  EXPECT_EQ(rep.shards[0].intra_edges, 1u);
  EXPECT_EQ(rep.shards[0].incident_cut_edges, 1u);
  EXPECT_EQ(rep.shards[1].intra_edges, 1u);
  EXPECT_EQ(rep.cut_edges, 1u);
  EXPECT_DOUBLE_EQ(rep.cut_fraction, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(rep.vertex_imbalance, 1.0);
  EXPECT_DOUBLE_EQ(rep.edge_imbalance, 1.0);  // 1.5 load each
}

TEST(Partition, DegreeBalancedBeatsContiguousOnSkewedGraphs) {
  const Graph g = make_barabasi_albert(400, 4, 77);
  const BalanceReport contiguous =
      dist::partition_graph(g, config(4, PartitionStrategy::kContiguous))
          .balance(g);
  const BalanceReport balanced =
      dist::partition_graph(g, config(4, PartitionStrategy::kDegreeBalanced))
          .balance(g);
  // BA hubs are the low-id vertices, so a contiguous split concentrates the
  // edge load in shard 0; the greedy LPT split is the fix.
  EXPECT_LT(balanced.edge_imbalance, contiguous.edge_imbalance);
}

// ---------------------------------------------------------------------------
// Incremental refresh
// ---------------------------------------------------------------------------

TEST(Partition, RefreshMatchesFreshPartitionForIdBasedStrategies) {
  const Graph g = make_erdos_renyi(50, 0.12, 13);
  MutableGraph dyn(g);
  UpdateBatch batch;
  batch.insertions = {{0, 47}, {3, 44}, {10, 30}};
  batch.deletions = {};
  for (VertexId u = 0; u < g.num_vertices() && batch.deletions.empty(); ++u)
    for (VertexId v : g.neighbors(u))
      if (u < v) {
        batch.deletions = {{u, v}};
        break;
      }
  const ApplyResult applied = dyn.apply(batch);
  const Graph updated = applied.snapshot->compacted();

  // Ownership of the id-based strategies ignores the adjacency, so sticky
  // refresh and a fresh build of the updated graph must agree exactly.
  for (PartitionStrategy strategy :
       {PartitionStrategy::kContiguous, PartitionStrategy::kHash,
        PartitionStrategy::kInterleaved}) {
    const Partition before = dist::partition_graph(g, config(4, strategy));
    std::vector<std::uint32_t> touched;
    const Partition refreshed = dist::refresh_partition(
        before, applied.snapshot->view(), applied.applied, &touched);
    const Partition fresh = dist::partition_graph(updated, config(4, strategy));
    EXPECT_EQ(refreshed.owner, fresh.owner);
    EXPECT_EQ(refreshed.cut_edges, fresh.cut_edges);
    EXPECT_EQ(refreshed.num_edges, fresh.num_edges);
    ASSERT_EQ(refreshed.shards.size(), fresh.shards.size());
    for (std::size_t s = 0; s < fresh.shards.size(); ++s) {
      EXPECT_EQ(refreshed.shards[s]->to_global, fresh.shards[s]->to_global);
      EXPECT_EQ(refreshed.shards[s]->ghosts, fresh.shards[s]->ghosts);
      EXPECT_EQ(refreshed.shards[s]->cut_edges, fresh.shards[s]->cut_edges);
      EXPECT_EQ(edge_set(refreshed.shards[s]->local),
                edge_set(fresh.shards[s]->local));
      EXPECT_EQ(edge_set(refreshed.shards[s]->halo),
                edge_set(fresh.shards[s]->halo));
    }
    EXPECT_FALSE(touched.empty());
  }
}

TEST(Partition, RefreshSharesUntouchedShards) {
  // A far-apart pair of contiguous shards: a delta inside shard 0 must not
  // rebuild shard 3 (pointer-shared, not copied).
  const Graph g = make_erdos_renyi(80, 0.06, 19);
  const Partition before =
      dist::partition_graph(g, config(4, PartitionStrategy::kContiguous));
  MutableGraph dyn(g);
  UpdateBatch batch;
  batch.insertions = {{0, 1}};
  if (g.has_edge(0, 1)) batch.insertions = {{0, 2}};
  if (g.has_edge(batch.insertions[0].first, batch.insertions[0].second))
    GTEST_SKIP() << "dense corner: both probe edges already present";
  const ApplyResult applied = dyn.apply(batch);
  std::vector<std::uint32_t> touched;
  const Partition refreshed = dist::refresh_partition(
      before, applied.snapshot->view(), applied.applied, &touched);
  // Vertices 0..2 live in shard 0; shard 3 owns only high ids far outside
  // the 1-hop halo radius of the delta unless an edge happens to cross, in
  // which case it is correctly rebuilt — assert only the untouched ones.
  for (std::uint32_t s = 0; s < 4; ++s) {
    const bool was_touched =
        std::find(touched.begin(), touched.end(), s) != touched.end();
    if (!was_touched)
      EXPECT_EQ(refreshed.shards[s].get(), before.shards[s].get());
    else
      EXPECT_NE(refreshed.shards[s].get(), before.shards[s].get());
  }
}

TEST(Partition, StrategyNamesRoundTrip) {
  for (PartitionStrategy strategy : kAllStrategies)
    EXPECT_EQ(dist::partition_strategy_from_string(dist::to_string(strategy)),
              strategy);
  // The CLI-facing hyphen spelling parses too.
  EXPECT_EQ(dist::partition_strategy_from_string("degree-balanced"),
            PartitionStrategy::kDegreeBalanced);
  EXPECT_THROW(dist::partition_strategy_from_string("bogus"), check_error);
}

TEST(Partition, RejectsZeroShards) {
  const Graph g = make_clique(4);
  EXPECT_THROW(
      dist::partition_graph(g, config(0, PartitionStrategy::kContiguous)),
      check_error);
}

}  // namespace
}  // namespace stm
