// Integration tests: the dataset proxies driven end-to-end through the
// engines at tiny scale, plus skewed-variant properties.
#include <gtest/gtest.h>

#include "baselines/reference.hpp"
#include "core/engine.hpp"
#include "core/host_engine.hpp"
#include "graph/components.hpp"
#include "graph/datasets.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/queries.hpp"

namespace stm {
namespace {

TEST(DatasetIntegration, CliqueQueriesHaveMatchesOnEveryProxy) {
  // The planted dense cores guarantee non-zero clique counts (paper Table II
  // has matches for q8/q16/q24 on every dataset).
  for (const auto& name : dataset_names()) {
    Graph g = make_dataset(name, 0.25);
    for (int q : {8, 16, 24}) {
      EXPECT_GT(stmatch_match_pattern(g, query(q)).count, 0u)
          << name << " " << query_name(q);
    }
  }
}

TEST(DatasetIntegration, EngineMatchesReferenceOnProxies) {
  for (const auto& name : {"wiki_vote", "youtube"}) {
    Graph g = make_dataset(name, 0.12);
    for (int q : {2, 5, 10}) {
      EXPECT_EQ(stmatch_match_pattern(g, query(q)).count,
                reference_count(g, query(q)))
          << name << " " << query_name(q);
    }
  }
}

TEST(DatasetIntegration, LabeledProxyEndToEnd) {
  Graph g = make_labeled_dataset("enron", 0.3, 3);
  Pattern p = labeled_query(12, 3);
  MatchingPlan plan(reorder_for_matching(p), {});
  const auto sim = stmatch_match(g, plan).count;
  EXPECT_EQ(sim, reference_count(g, p));
  HostEngineConfig host_cfg;
  host_cfg.num_threads = 2;
  EXPECT_EQ(host_match(g, plan, host_cfg).count, sim);
}

TEST(DatasetIntegration, ProxiesMostlyConnected) {
  // BA proxies are connected by construction; RMAT proxies have a giant
  // component holding most vertices with edges.
  for (const auto& name : {"wiki_vote", "enron", "mico", "livejournal"}) {
    Graph g = make_dataset(name, 0.5);
    EXPECT_GT(largest_component_size(g),
              static_cast<std::size_t>(g.num_vertices()) * 9 / 10)
        << name;
  }
}

TEST(SkewedDatasets, BuildDeterministicallyWithHighHubs) {
  for (const auto& name :
       {"enron", "youtube", "mico", "livejournal", "orkut"}) {
    Graph a = make_skewed_dataset(name, 1.0);
    Graph b = make_skewed_dataset(name, 1.0);
    EXPECT_EQ(a.col_idx(), b.col_idx()) << name;
    EXPECT_LE(a.max_degree(), 96u) << name;
    // Skew: hubs far above the capped Table I proxies.
    EXPECT_GT(a.max_degree(), 48u) << name;
    EXPECT_FALSE(a.is_labeled());
  }
}

TEST(SkewedDatasets, LabeledVariantAndScale) {
  Graph g = make_skewed_dataset("mico", 0.5, 4);
  EXPECT_TRUE(g.is_labeled());
  EXPECT_EQ(g.num_labels(), 4u);
  Graph big = make_skewed_dataset("mico", 2.0);
  EXPECT_GT(big.num_vertices(), g.num_vertices() * 3);
}

TEST(SkewedDatasets, UnknownNameThrows) {
  EXPECT_THROW(make_skewed_dataset("wiki_vote"), check_error);
}

TEST(SkewedDatasets, StealingPaysOffOnSkew) {
  // The property Fig. 12 relies on: local stealing shortens the makespan on
  // the hub-heavy variants.
  Graph g = make_skewed_dataset("enron", 1.0, 2);
  Pattern p = labeled_query(9, 2);
  EngineConfig no_steal;
  no_steal.device.num_blocks = 16;
  no_steal.device.warps_per_block = 4;
  no_steal.local_steal = false;
  no_steal.global_steal = false;
  EngineConfig steal = no_steal;
  steal.local_steal = true;
  auto a = stmatch_match_pattern(g, p, {}, no_steal);
  auto b = stmatch_match_pattern(g, p, {}, steal);
  EXPECT_EQ(a.count, b.count);
  EXPECT_LT(b.stats.makespan_cycles, a.stats.makespan_cycles);
}

}  // namespace
}  // namespace stm
