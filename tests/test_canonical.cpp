// Tests for the canonical pattern form behind the plan-cache key.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "pattern/canonical.hpp"
#include "pattern/queries.hpp"
#include "util/rng.hpp"

namespace stm {
namespace {

std::vector<std::size_t> random_perm(std::size_t n, Rng& rng) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

TEST(Canonical, InvariantUnderRenumbering) {
  Rng rng(2024);
  for (int q = 1; q <= num_queries(); ++q) {
    const Pattern p = query(q);
    const std::string canon = canonical_form(p);
    for (int trial = 0; trial < 8; ++trial) {
      const Pattern shuffled = p.relabeled(random_perm(p.size(), rng));
      EXPECT_EQ(canonical_form(shuffled), canon)
          << query_name(q) << " trial " << trial;
    }
  }
}

TEST(Canonical, LabeledInvariantUnderRenumbering) {
  Rng rng(7);
  for (int q : {1, 9, 17, 24}) {
    const Pattern p = labeled_query(q, 3);
    const std::string canon = canonical_form(p);
    for (int trial = 0; trial < 8; ++trial) {
      const Pattern shuffled = p.relabeled(random_perm(p.size(), rng));
      EXPECT_EQ(canonical_form(shuffled), canon) << query_name(q);
    }
  }
}

TEST(Canonical, DistinguishesNonIsomorphicQueries) {
  // The 24 evaluation queries are pairwise non-isomorphic, so their
  // canonical forms must all differ.
  std::set<std::string> forms;
  for (int q = 1; q <= num_queries(); ++q)
    forms.insert(canonical_form(query(q)));
  EXPECT_EQ(forms.size(), static_cast<std::size_t>(num_queries()));
}

TEST(Canonical, LabelsDistinguish) {
  const Pattern path = Pattern::parse("0-1,1-2");
  const Pattern lab_a = path.with_labels({0, 1, 0});
  const Pattern lab_b = path.with_labels({1, 0, 1});
  const Pattern lab_a_flipped = path.with_labels({0, 1, 0}).relabeled({2, 1, 0});
  EXPECT_NE(canonical_form(lab_a), canonical_form(path));
  EXPECT_NE(canonical_form(lab_a), canonical_form(lab_b));
  EXPECT_EQ(canonical_form(lab_a), canonical_form(lab_a_flipped));
}

TEST(Canonical, PermutationIsValid) {
  const Pattern p = query(19);
  const auto perm = canonical_permutation(p);
  ASSERT_EQ(perm.size(), p.size());
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), p.size());  // a bijection
  // Relabeling by the canonical permutation reproduces the canonical form.
  EXPECT_EQ(p.relabeled(perm).to_string(), canonical_form(p));
}

TEST(Canonical, SingleVertexAndEdge) {
  EXPECT_EQ(canonical_form(Pattern(1, {})), Pattern(1, {}).to_string());
  const Pattern edge = Pattern::parse("0-1");
  EXPECT_EQ(canonical_form(edge), canonical_form(edge.relabeled({1, 0})));
}

}  // namespace
}  // namespace stm
