// Tests for the canonical pattern form behind the plan-cache key.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "pattern/canonical.hpp"
#include "pattern/queries.hpp"
#include "service/plan_cache.hpp"
#include "util/rng.hpp"

namespace stm {
namespace {

std::vector<std::size_t> random_perm(std::size_t n, Rng& rng) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

TEST(Canonical, InvariantUnderRenumbering) {
  Rng rng(2024);
  for (int q = 1; q <= num_queries(); ++q) {
    const Pattern p = query(q);
    const std::string canon = canonical_form(p);
    for (int trial = 0; trial < 8; ++trial) {
      const Pattern shuffled = p.relabeled(random_perm(p.size(), rng));
      EXPECT_EQ(canonical_form(shuffled), canon)
          << query_name(q) << " trial " << trial;
    }
  }
}

TEST(Canonical, LabeledInvariantUnderRenumbering) {
  Rng rng(7);
  for (int q : {1, 9, 17, 24}) {
    const Pattern p = labeled_query(q, 3);
    const std::string canon = canonical_form(p);
    for (int trial = 0; trial < 8; ++trial) {
      const Pattern shuffled = p.relabeled(random_perm(p.size(), rng));
      EXPECT_EQ(canonical_form(shuffled), canon) << query_name(q);
    }
  }
}

TEST(Canonical, DistinguishesNonIsomorphicQueries) {
  // The 24 evaluation queries are pairwise non-isomorphic, so their
  // canonical forms must all differ.
  std::set<std::string> forms;
  for (int q = 1; q <= num_queries(); ++q)
    forms.insert(canonical_form(query(q)));
  EXPECT_EQ(forms.size(), static_cast<std::size_t>(num_queries()));
}

TEST(Canonical, LabelsDistinguish) {
  const Pattern path = Pattern::parse("0-1,1-2");
  const Pattern lab_a = path.with_labels({0, 1, 0});
  const Pattern lab_b = path.with_labels({1, 0, 1});
  const Pattern lab_a_flipped = path.with_labels({0, 1, 0}).relabeled({2, 1, 0});
  EXPECT_NE(canonical_form(lab_a), canonical_form(path));
  EXPECT_NE(canonical_form(lab_a), canonical_form(lab_b));
  EXPECT_EQ(canonical_form(lab_a), canonical_form(lab_a_flipped));
}

TEST(Canonical, PermutationIsValid) {
  const Pattern p = query(19);
  const auto perm = canonical_permutation(p);
  ASSERT_EQ(perm.size(), p.size());
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), p.size());  // a bijection
  // Relabeling by the canonical permutation reproduces the canonical form.
  EXPECT_EQ(p.relabeled(perm).to_string(), canonical_form(p));
}

TEST(Canonical, SingleVertexAndEdge) {
  EXPECT_EQ(canonical_form(Pattern(1, {})), Pattern(1, {}).to_string());
  const Pattern edge = Pattern::parse("0-1");
  EXPECT_EQ(canonical_form(edge), canonical_form(edge.relabeled({1, 0})));
}

// ---------------------------------------------------------------------------
// Plan-cache tier regression: near-colliding non-isomorphic patterns
// ---------------------------------------------------------------------------

TEST(Canonical, CospectralPairsStayDistinct) {
  // Prism (two triangles joined by rungs) vs K_{3,3}: both 6-vertex,
  // 9-edge, 3-regular, so any degree-sequence shortcut in canonical_form
  // collides. They differ in triangle count (prism 2, K33 0).
  const Pattern prism = Pattern::parse("0-1,1-2,2-0,3-4,4-5,5-3,0-3,1-4,2-5");
  const Pattern k33 = Pattern::parse("0-3,0-4,0-5,1-3,1-4,1-5,2-3,2-4,2-5");
  EXPECT_NE(canonical_form(prism), canonical_form(k33));

  // Same structure, label multiset {0,0,1} in both — only the placement
  // differs (ends vs middle). An exact-string or label-histogram shortcut
  // treats them alike.
  const Pattern path = Pattern::parse("0-1,1-2");
  EXPECT_NE(canonical_form(path.with_labels({0, 0, 1})),
            canonical_form(path.with_labels({0, 1, 0})));
}

TEST(Canonical, PlanCacheKeepsNonIsomorphicCollidersApart) {
  // Regression for the two-tier key: after caching pattern A, a
  // non-isomorphic pattern B with the same size/degree profile must MISS
  // (and compile its own plan), while a renumbering of A must HIT through
  // the canonical tier. A stale alias or a weak canonical form would hand
  // B the wrong plan and silently corrupt its counts.
  const Pattern prism = Pattern::parse("0-1,1-2,2-0,3-4,4-5,5-3,0-3,1-4,2-5");
  const Pattern k33 = Pattern::parse("0-3,0-4,0-5,1-3,1-4,1-5,2-3,2-4,2-5");

  PlanCache cache(16);
  bool hit = true;
  const auto plan_prism = cache.get_or_compile(prism, {}, &hit);
  EXPECT_FALSE(hit);

  const auto plan_k33 = cache.get_or_compile(k33, {}, &hit);
  EXPECT_FALSE(hit) << "non-isomorphic 3-regular pattern must not share";
  EXPECT_NE(plan_prism.get(), plan_k33.get());

  // {5,3,4,2,0,1} is an automorphism of the prism (|Aut| = 12); swapping
  // only 0 and 1 is not, so the exact key genuinely changes.
  const Pattern prism_renumbered = prism.relabeled({1, 0, 2, 3, 4, 5});
  ASSERT_NE(prism_renumbered.to_string(), prism.to_string());
  const auto plan_again = cache.get_or_compile(prism_renumbered, {}, &hit);
  EXPECT_TRUE(hit) << "renumbering must hit via the canonical tier";
  EXPECT_EQ(plan_again.get(), plan_prism.get());

  // The labeled near-collision pair must also get distinct entries.
  const Pattern path = Pattern::parse("0-1,1-2");
  const auto plan_001 =
      cache.get_or_compile(path.with_labels({0, 0, 1}), {}, &hit);
  EXPECT_FALSE(hit);
  const auto plan_010 =
      cache.get_or_compile(path.with_labels({0, 1, 0}), {}, &hit);
  EXPECT_FALSE(hit) << "label placement differs: must not share a plan";
  EXPECT_NE(plan_001.get(), plan_010.get());

  // Different plan options on the same pattern are distinct cache keys too.
  PlanOptions vertex_induced;
  vertex_induced.induced = Induced::kVertex;
  const auto plan_vi = cache.get_or_compile(prism, vertex_induced, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(plan_vi.get(), plan_prism.get());
}

}  // namespace
}  // namespace stm
