// Tests for the service metrics registry (counters, gauges, histograms,
// JSON / Prometheus export).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "service/metrics.hpp"
#include "util/check.hpp"

namespace stm {
namespace {

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("requests_total");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name returns the same counter.
  EXPECT_EQ(&reg.counter("requests_total"), &c);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth");
  g.set(3.0);
  g.add(2.0);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(Metrics, TypeConflictRejected) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), check_error);
}

TEST(Metrics, HistogramPercentilesExact) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat_ms");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 0.5);
  EXPECT_NEAR(s.p95, 95.0, 1.0);
  EXPECT_NEAR(s.p99, 99.0, 1.0);
  // Bucket counts cover every observation exactly once.
  std::uint64_t total = 0;
  for (auto c : s.counts) total += c;
  EXPECT_EQ(total, 100u);
}

TEST(Metrics, HistogramConcurrentObserve) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat_ms");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.observe(1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.snapshot().count, 4000u);
}

TEST(Metrics, JsonExportContainsAllKinds) {
  MetricsRegistry reg;
  reg.counter("hits").inc(7);
  reg.gauge("rate").set(0.5);
  reg.histogram("lat_ms").observe(2.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"hits\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rate\": 0.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat_ms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos) << json;
}

TEST(Metrics, PrometheusExportShapes) {
  MetricsRegistry reg;
  reg.counter("hits", "cache hits").inc(3);
  reg.gauge("rate").set(0.25);
  Histogram& h = reg.histogram("lat_ms");
  h.observe(1.0);
  h.observe(4.0);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# HELP hits cache hits"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE hits counter"), std::string::npos);
  EXPECT_NE(text.find("hits 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rate gauge"), std::string::npos);
  EXPECT_NE(text.find("rate 0.25"), std::string::npos);
  EXPECT_NE(text.find("lat_ms{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_ms{quantile=\"0.95\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_ms{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 2"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_hist_bucket{le=\"+Inf\"} 2"), std::string::npos);
}

TEST(Metrics, HistogramReservoirBounded) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat_ms");
  // Push far past the reservoir capacity; percentiles stay sane.
  for (int i = 0; i < 20000; ++i) h.observe(5.0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 20000u);
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
  EXPECT_DOUBLE_EQ(s.p99, 5.0);
}

}  // namespace
}  // namespace stm
