// Tests for MatchingPlan: chain canonicalization, code-motion DAG
// well-formedness, label-mask merging, compact encoding.
#include <gtest/gtest.h>

#include "pattern/matching_order.hpp"
#include "pattern/plan.hpp"
#include "pattern/queries.hpp"

namespace stm {
namespace {

MatchingPlan make_plan(const Pattern& p, PlanOptions opts = {}) {
  return MatchingPlan(reorder_for_matching(p), opts);
}

TEST(Plan, RequiresMatchingOrder) {
  // Pattern where identity is not a connected order: vertex 1 isolated from 0.
  Pattern p(3, {{0, 2}, {1, 2}});
  // Order 0,1,2: vertex 1 has no earlier neighbor.
  EXPECT_THROW(MatchingPlan(p, {}), check_error);
  EXPECT_NO_THROW(make_plan(p));
}

TEST(Plan, TriangleChains) {
  MatchingPlan plan = make_plan(Pattern::parse("0-1,1-2,2-0"));
  // Level 1: N(v0); level 2: N(v0) ∩ N(v1).
  auto c1 = plan.chain(1);
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_EQ(c1[0].vertex, 0);
  auto c2 = plan.chain(2);
  ASSERT_EQ(c2.size(), 2u);
  EXPECT_EQ(c2[0].vertex, 0);
  EXPECT_EQ(c2[1].vertex, 1);
  EXPECT_EQ(c2[1].kind, SetOpKind::kIntersect);
}

TEST(Plan, VertexInducedAddsDifferences) {
  // Path 0-1-2 reordered: matching order starts at the middle vertex.
  Pattern p = reorder_for_matching(Pattern::parse("0-1,1-2"));
  MatchingPlan edge_plan(p, {Induced::kEdge, true, CountMode::kEmbeddings});
  MatchingPlan vert_plan(p, {Induced::kVertex, true, CountMode::kEmbeddings});
  // Level 2 in the path: one earlier neighbor, one earlier non-neighbor.
  EXPECT_EQ(edge_plan.chain(2).size(), 1u);
  auto chain = vert_plan.chain(2);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[1].kind, SetOpKind::kDifference);
}

TEST(Plan, ChainBaseIsSmallestNeighborAndAscending) {
  for (int q = 1; q <= num_queries(); ++q) {
    for (Induced induced : {Induced::kEdge, Induced::kVertex}) {
      MatchingPlan plan = make_plan(query(q), {induced, true,
                                               CountMode::kEmbeddings});
      for (std::size_t l = 1; l < plan.size(); ++l) {
        auto chain = plan.chain(l);
        ASSERT_FALSE(chain.empty());
        EXPECT_EQ(chain[0].kind, SetOpKind::kIntersect);
        // Operands after the base are in ascending vertex order (a
        // vertex-induced difference may reference a vertex below the base).
        for (std::size_t i = 2; i < chain.size(); ++i)
          EXPECT_LT(chain[i - 1].vertex, chain[i].vertex);
        // Base is the smallest earlier neighbor.
        for (std::size_t j = 0; j < chain[0].vertex; ++j)
          EXPECT_FALSE(plan.pattern().has_edge(j, l));
      }
    }
  }
}

TEST(Plan, CodeMotionNodesMaterializedAtEarliestLevel) {
  for (int q = 1; q <= num_queries(); ++q) {
    MatchingPlan plan = make_plan(query(q));
    for (const auto& node : plan.nodes()) {
      // Edge-induced chains are ascending, so a node is materialized exactly
      // when its newest operand's vertex is matched.
      EXPECT_EQ(node.mat_level, node.op.vertex + 1) << query_name(q);
    }
    MatchingPlan vplan =
        make_plan(query(q), {Induced::kVertex, true, CountMode::kEmbeddings});
    for (const auto& node : vplan.nodes()) {
      EXPECT_GE(node.mat_level, node.op.vertex + 1) << query_name(q);
      if (node.dep >= 0) {
        const auto& dep = vplan.nodes()[static_cast<std::size_t>(node.dep)];
        EXPECT_EQ(node.mat_level,
                  std::max<int>(node.op.vertex + 1, dep.mat_level))
            << query_name(q);
      }
    }
  }
}

TEST(Plan, NaiveNodesMaterializedAtConsumerLevel) {
  MatchingPlan plan = make_plan(query(16), {Induced::kEdge, false,
                                            CountMode::kEmbeddings});
  // Every node's mat_level equals the level of the candidate it feeds; for a
  // chain node this is at least op.vertex + 1.
  for (const auto& node : plan.nodes())
    EXPECT_GE(node.mat_level, node.op.vertex + 1);
}

TEST(Plan, CodeMotionSharesAcrossLevels) {
  // K6: every level l intersects N(v0)..N(v_{l-1}); prefixes are shared, so
  // the code-motion plan has exactly k-1 set nodes (one new op per level),
  // while the naive plan has 1+2+...+(k-1).
  MatchingPlan motion = make_plan(query(16));
  MatchingPlan naive =
      make_plan(query(16), {Induced::kEdge, false, CountMode::kEmbeddings});
  EXPECT_EQ(motion.num_nodes(), 5u);
  EXPECT_EQ(naive.num_nodes(), 15u);
}

TEST(Plan, StarCandidatesShared) {
  // Star q11 reordered: hub first; all leaf levels share the chain [N(v0)]
  // until differences/labels distinguish them.
  MatchingPlan plan = make_plan(Pattern::parse("0-1,0-2,0-3,0-4"));
  EXPECT_EQ(plan.candidate_node(1), plan.candidate_node(2));
  EXPECT_EQ(plan.candidate_node(2), plan.candidate_node(3));
  EXPECT_EQ(plan.num_nodes(), 1u);
}

TEST(Plan, DependenciesPointToEarlierNodes) {
  for (int q = 1; q <= num_queries(); ++q) {
    for (bool motion : {true, false}) {
      MatchingPlan plan =
          make_plan(query(q), {Induced::kVertex, motion, CountMode::kEmbeddings});
      const auto& nodes = plan.nodes();
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].dep < 0) continue;
        const auto dep = static_cast<std::size_t>(nodes[i].dep);
        ASSERT_LT(dep, nodes.size());
        EXPECT_LE(nodes[dep].mat_level, nodes[i].mat_level);
        // The dep must be materialized before this node at the same level.
        if (nodes[dep].mat_level == nodes[i].mat_level) {
          const auto& order = plan.nodes_at_entry(nodes[i].mat_level);
          auto pos_dep = std::find(order.begin(), order.end(),
                                   static_cast<std::int16_t>(dep));
          auto pos_node = std::find(order.begin(), order.end(),
                                    static_cast<std::int16_t>(i));
          EXPECT_LT(pos_dep, pos_node);
        }
      }
    }
  }
}

TEST(Plan, EveryLevelHasCandidate) {
  for (int q = 1; q <= num_queries(); ++q) {
    MatchingPlan plan = make_plan(query(q));
    for (std::size_t l = 1; l < plan.size(); ++l) {
      auto id = plan.candidate_node(l);
      ASSERT_GE(id, 0);
      EXPECT_TRUE(plan.nodes()[static_cast<std::size_t>(id)].is_candidate);
      EXPECT_LE(plan.nodes()[static_cast<std::size_t>(id)].mat_level, l);
    }
  }
}

TEST(Plan, UnlabeledMasksAllOnes) {
  MatchingPlan plan = make_plan(query(10));
  for (const auto& node : plan.nodes()) EXPECT_EQ(node.label_mask, ~0ULL);
}

TEST(Plan, LabeledCandidateMasksExact) {
  Pattern p = reorder_for_matching(labeled_query(16));
  MatchingPlan plan(p, {});
  for (std::size_t l = 1; l < plan.size(); ++l) {
    const auto& node =
        plan.nodes()[static_cast<std::size_t>(plan.candidate_node(l))];
    EXPECT_EQ(node.label_mask, 1ULL << p.label(l));
  }
}

TEST(Plan, LabeledIntermediateMasksCoverConsumers) {
  // Every node's mask must include the mask of any node depending on it.
  for (int q : {4, 13, 16, 22, 24}) {
    Pattern p = reorder_for_matching(labeled_query(q));
    MatchingPlan plan(p, {});
    for (const auto& node : plan.nodes()) {
      if (node.dep < 0) continue;
      const auto& dep = plan.nodes()[static_cast<std::size_t>(node.dep)];
      EXPECT_EQ(node.label_mask & dep.label_mask, node.label_mask)
          << query_name(q);
    }
  }
}

TEST(Plan, MergedLabelsReduceSetCount) {
  // The merged multi-label scheme (Fig. 10b) must not exceed the split
  // scheme's n(n-1)/2 bound the paper gives for labeled queries.
  for (int q : {8, 16, 24}) {
    Pattern p = reorder_for_matching(labeled_query(q));
    MatchingPlan plan(p, {});
    const std::size_t n = p.size();
    EXPECT_LE(plan.num_nodes(), n * (n - 1) / 2 + n) << query_name(q);
  }
}

TEST(Plan, NumSetsWithinPaperBound) {
  // Paper §VIII-A: for queries of <= 7 nodes, NUM_SETS <= 15.
  for (int q = 1; q <= num_queries(); ++q) {
    MatchingPlan plan = make_plan(query(q));
    EXPECT_LE(plan.num_nodes(), 15u) << query_name(q);
    Pattern lp = reorder_for_matching(labeled_query(q));
    MatchingPlan lplan(lp, {});
    EXPECT_LE(lplan.num_nodes(), 21u) << query_name(q);
  }
}

TEST(Plan, CompactEncodingShape) {
  MatchingPlan plan = make_plan(query(4));
  auto enc = plan.compact_encoding();
  ASSERT_EQ(enc.row_ptr.size(), plan.size() + 1);
  EXPECT_EQ(enc.row_ptr.front(), 0);
  EXPECT_EQ(enc.row_ptr.back(), plan.num_nodes());
  EXPECT_EQ(enc.set_ops.size(), plan.num_nodes());
  for (std::size_t l = 0; l < plan.size(); ++l)
    EXPECT_LE(enc.row_ptr[l], enc.row_ptr[l + 1]);
  // Triples are consistent: base nodes flagged, dep indices in range.
  for (std::size_t i = 0; i < enc.set_ops.size(); ++i) {
    if (enc.set_ops[i][0] == 0) {
      EXPECT_LT(enc.set_ops[i][2], i);
    }
  }
}

TEST(Plan, SymmetryConstraintsOnlyInUniqueMode) {
  MatchingPlan embeddings = make_plan(query(8));
  EXPECT_TRUE(embeddings.constraints().empty());
  MatchingPlan unique =
      make_plan(query(8), {Induced::kEdge, true, CountMode::kUniqueSubgraphs});
  EXPECT_FALSE(unique.constraints().empty());
  // K5: constraints form a total order -> level l has l smaller-side checks.
  for (std::size_t l = 1; l < unique.size(); ++l)
    EXPECT_EQ(unique.constraints_at(l).size(), l);
}

TEST(Plan, TooSmallPatternRejected) {
  Pattern p(1, {});
  EXPECT_THROW(MatchingPlan(p, {}), check_error);
}

}  // namespace
}  // namespace stm
