// Tests for motif enumeration and canonical forms.
#include <gtest/gtest.h>

#include "baselines/reference.hpp"
#include "graph/generators.hpp"
#include "pattern/motifs.hpp"
#include "pattern/queries.hpp"
#include "util/check.hpp"

namespace stm {
namespace {

TEST(Motifs, KnownClassCounts) {
  // OEIS A001349 (connected graphs on n nodes): 1, 2, 6, 21, 112.
  EXPECT_EQ(connected_motifs(2).size(), 1u);
  EXPECT_EQ(connected_motifs(3).size(), 2u);
  EXPECT_EQ(connected_motifs(4).size(), 6u);
  EXPECT_EQ(connected_motifs(5).size(), 21u);
  EXPECT_EQ(connected_motifs(6).size(), 112u);
}

TEST(Motifs, OutOfRangeThrows) {
  EXPECT_THROW(connected_motifs(1), check_error);
  EXPECT_THROW(connected_motifs(7), check_error);
}

TEST(Motifs, AllConnectedAndRightSize) {
  for (std::size_t k = 2; k <= 5; ++k) {
    for (const auto& m : connected_motifs(k)) {
      EXPECT_EQ(m.size(), k);
      EXPECT_TRUE(m.is_connected());
    }
  }
}

TEST(Motifs, PairwiseNonIsomorphic) {
  auto motifs = connected_motifs(5);
  for (std::size_t i = 0; i < motifs.size(); ++i)
    for (std::size_t j = i + 1; j < motifs.size(); ++j)
      EXPECT_FALSE(isomorphic(motifs[i], motifs[j])) << i << " vs " << j;
}

TEST(Motifs, SortedSparseFirst) {
  auto motifs = connected_motifs(5);
  for (std::size_t i = 1; i < motifs.size(); ++i)
    EXPECT_LE(motifs[i - 1].num_edges(), motifs[i].num_edges());
  EXPECT_EQ(motifs.front().num_edges(), 4u);   // tree
  EXPECT_EQ(motifs.back().num_edges(), 10u);   // K5
}

TEST(Motifs, CanonicalFormInvariantUnderRelabeling) {
  Pattern p = query(13);
  const auto canon = canonical_form(p);
  EXPECT_EQ(canonical_form(p.relabeled({5, 3, 1, 0, 2, 4})), canon);
  EXPECT_EQ(canonical_form(p.relabeled({2, 0, 4, 5, 1, 3})), canon);
}

TEST(Motifs, IsomorphicDetectsStructure) {
  Pattern path_a = Pattern::parse("0-1,1-2,2-3");
  Pattern path_b = Pattern::parse("2-0,0-3,3-1");  // relabeled P4
  Pattern star = Pattern::parse("0-1,0-2,0-3");
  EXPECT_TRUE(isomorphic(path_a, path_b));
  EXPECT_FALSE(isomorphic(path_a, star));
  EXPECT_FALSE(isomorphic(path_a, Pattern::parse("0-1,1-2")));
}

TEST(Motifs, VertexInducedCensusIsExhaustive) {
  // Summing vertex-induced unique counts over all size-k motifs equals the
  // number of connected k-vertex induced subgraphs; on K_n every k-subset is
  // an induced K_k, so exactly one motif (the clique) is non-zero.
  Graph g = make_clique(7);
  ReferenceOptions opts{Induced::kVertex, CountMode::kUniqueSubgraphs};
  std::uint64_t total = 0, nonzero = 0;
  for (const auto& m : connected_motifs(4)) {
    const auto c = reference_count(g, m, opts);
    total += c;
    nonzero += (c > 0);
  }
  EXPECT_EQ(nonzero, 1u);
  EXPECT_EQ(total, 35u);  // C(7,4)
}

TEST(Motifs, CensusPartitionsSubsets) {
  // On an arbitrary graph, the vertex-induced census over all connected
  // motifs counts each connected k-subset exactly once.
  Graph g = make_erdos_renyi(18, 0.3, 5);
  ReferenceOptions opts{Induced::kVertex, CountMode::kUniqueSubgraphs};
  std::uint64_t census = 0;
  for (const auto& m : connected_motifs(4)) census += reference_count(g, m, opts);
  // Independent count: enumerate 4-subsets and test induced connectivity.
  std::uint64_t direct = 0;
  const VertexId n = g.num_vertices();
  for (VertexId a = 0; a < n; ++a)
    for (VertexId b = a + 1; b < n; ++b)
      for (VertexId c = b + 1; c < n; ++c)
        for (VertexId d = c + 1; d < n; ++d) {
          const VertexId vs[4] = {a, b, c, d};
          std::vector<std::pair<int, int>> edges;
          for (int i = 0; i < 4; ++i)
            for (int j = i + 1; j < 4; ++j)
              if (g.has_edge(vs[i], vs[j])) edges.emplace_back(i, j);
          direct += Pattern(4, edges).is_connected();
        }
  EXPECT_EQ(census, direct);
}

TEST(Motifs, PaperQueriesAppearInMotifSets) {
  // Every size-5 evaluation query is one of the 21 size-5 motif classes.
  auto motifs = connected_motifs(5);
  for (int q : queries_of_size(5)) {
    bool found = false;
    for (const auto& m : motifs) found |= isomorphic(m, query(q));
    EXPECT_TRUE(found) << query_name(q);
  }
}

}  // namespace
}  // namespace stm
