// Partition inspector: shard balance of a graph under a chosen strategy.
//
// Prints the per-shard vertex/edge/cut tallies and the imbalance ratios of
// graph/degree_stats::balance_report for a synthetic graph or an edge-list
// file, across one or more strategies — the operational view of DESIGN.md
// §11's partitioning trade-offs (a contiguous split of a power-law graph
// shows the hub-shard imbalance degree-balanced greedy fixes, at the price
// of a larger cut).
//
//   partition_info --family=power-law --vertices=1000 --shards=4
//   partition_info --graph=web.el --shards=8 --strategy=degree-balanced
//   partition_info --family=erdos-renyi --shards=4 --strategy=all

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "dist/partition.hpp"
#include "graph/degree_stats.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace stm;

void print_usage() {
  std::cout <<
      "usage: partition_info [options]\n"
      "  --graph=FILE       edge-list file to load (overrides --family)\n"
      "  --family=NAME      synthetic family: erdos-renyi | power-law\n"
      "                     (default erdos-renyi)\n"
      "  --vertices=N       synthetic graph size (default 1000)\n"
      "  --degree=D         average degree target (default 8)\n"
      "  --seed=S           generator seed (default 42)\n"
      "  --shards=N         shard count (default 4)\n"
      "  --strategy=NAME    contiguous | degree-balanced | hash |\n"
      "                     interleaved | all (default all)\n"
      "  --salt=S           hash-strategy salt (default 0)\n";
}

Graph build_graph(const Options& opts) {
  const std::string path = opts.get("graph", "");
  if (!path.empty()) return load_edge_list(path);
  const auto n = static_cast<VertexId>(opts.get_int("vertices", 1000));
  const double degree = opts.get_double("degree", 8.0);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const std::string family = opts.get("family", "erdos-renyi");
  if (family == "erdos-renyi") {
    const double p = n > 1 ? degree / static_cast<double>(n - 1) : 0.0;
    return make_erdos_renyi(n, p, seed);
  }
  if (family == "power-law") {
    const auto m = static_cast<VertexId>(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(degree / 2)));
    return make_barabasi_albert(n, m, seed);
  }
  STM_CHECK_MSG(false, "unknown family '" << family
                                          << "' (erdos-renyi | power-law)");
}

void report_one(const Graph& g, dist::PartitionStrategy strategy,
                std::uint32_t shards, std::uint64_t salt) {
  dist::PartitionConfig cfg;
  cfg.num_shards = shards;
  cfg.strategy = strategy;
  cfg.hash_salt = salt;
  const dist::Partition p = dist::partition_graph(g, cfg);
  const BalanceReport rep = p.balance(g);

  std::cout << "strategy: " << dist::to_string(strategy) << "\n";
  Table table({"shard", "vertices", "intra edges", "incident cut", "edge load"});
  for (const ShardBalance& s : rep.shards) {
    table.add_row({std::to_string(s.shard), Table::fmt_count(s.vertices),
                   Table::fmt_count(s.intra_edges),
                   Table::fmt_count(s.incident_cut_edges),
                   Table::fmt(s.edge_load(), 1)});
  }
  table.print(std::cout);
  std::cout << "cut edges: " << rep.cut_edges << " ("
            << Table::fmt(100.0 * rep.cut_fraction, 2) << "% of "
            << g.num_edges() << ")\n"
            << "vertex imbalance (max/mean): "
            << Table::fmt(rep.vertex_imbalance, 3) << "\n"
            << "edge-load imbalance (max/mean): "
            << Table::fmt(rep.edge_imbalance, 3) << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts(argc, argv);
    if (opts.has("help")) {
      print_usage();
      return 0;
    }
    opts.allow_only({"graph", "family", "vertices", "degree", "seed", "shards",
                     "strategy", "salt", "help"});
    const Graph g = build_graph(opts);
    const auto shards =
        static_cast<std::uint32_t>(opts.get_int("shards", 4));
    STM_CHECK_MSG(shards >= 1, "--shards must be >= 1");
    const auto salt = static_cast<std::uint64_t>(opts.get_int("salt", 0));
    const std::string strategy = opts.get("strategy", "all");

    std::cout << "graph: " << g.num_vertices() << " vertices, "
              << g.num_edges() << " edges, " << shards << " shards\n\n";
    if (strategy == "all") {
      for (std::size_t s = 0; s < dist::kNumPartitionStrategies; ++s)
        report_one(g, static_cast<dist::PartitionStrategy>(s), shards, salt);
    } else {
      report_one(g, dist::partition_strategy_from_string(strategy), shards,
                 salt);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
