// Graph storage inspector: per-backend footprint of one graph.
//
// Builds (or loads) a graph, prints its degree statistics, then encodes it
// under every storage backend and reports what each one keeps resident —
// the operational view of DESIGN.md §14's footprint trade-offs (a power-law
// graph compresses ~4-6x under delta/varint; the spill tier's resident set
// collapses to the page-cache budget).
//
//   graph_info --family=power-law --vertices=100000
//   graph_info --graph=web.el --budget=1048576
//   graph_info --selftest          (ctest smoke: backends must agree)

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "graph/degree_stats.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "storage/store.hpp"
#include "util/check.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace stm;

void print_usage() {
  std::cout <<
      "usage: graph_info [options]\n"
      "  --graph=FILE       edge-list file to load (overrides --family)\n"
      "  --family=NAME      synthetic family: erdos-renyi | power-law\n"
      "                     (default power-law)\n"
      "  --vertices=N       synthetic graph size (default 10000)\n"
      "  --degree=D         average degree target (default 8)\n"
      "  --seed=S           generator seed (default 42)\n"
      "  --block=B          skip-anchor block size (default 32)\n"
      "  --budget=BYTES     spill-tier page-cache budget (default 1 MiB)\n"
      "  --page=BYTES       spill-tier page size (default 65536)\n"
      "  --selftest         build a small graph, verify every backend\n"
      "                     serves identical adjacency, exit 0/1\n";
}

Graph build_graph(const Options& opts) {
  const std::string path = opts.get("graph", "");
  if (!path.empty()) return load_edge_list(path);
  const auto n = static_cast<VertexId>(opts.get_int("vertices", 10000));
  const double degree = opts.get_double("degree", 8.0);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const std::string family = opts.get("family", "power-law");
  if (family == "erdos-renyi") {
    const double p = n > 1 ? degree / static_cast<double>(n - 1) : 0.0;
    return make_erdos_renyi(n, p, seed);
  }
  if (family == "power-law") {
    const auto m = static_cast<VertexId>(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(degree / 2)));
    return make_barabasi_albert(n, m, seed);
  }
  STM_CHECK_MSG(false, "unknown family '" << family
                                          << "' (erdos-renyi | power-law)");
}

storage::StoragePolicy policy_for(storage::Backend backend,
                                  const Options& opts) {
  storage::StoragePolicy policy;
  policy.backend = backend;
  policy.block_size =
      static_cast<std::uint32_t>(opts.get_int("block", 32));
  if (backend == storage::Backend::kSpill) {
    policy.memory_budget_bytes =
        static_cast<std::uint64_t>(opts.get_int("budget", 1 << 20));
    policy.page_size =
        static_cast<std::uint32_t>(opts.get_int("page", 1 << 16));
  }
  return policy;
}

/// Power-of-two degree histogram: bucket k holds degrees in [2^k, 2^(k+1)),
/// with a separate bucket for isolated vertices. Hubs land in the top
/// buckets, which is exactly what the bitset threshold keys off.
void print_degree_histogram(const Graph& g) {
  const std::vector<EdgeId> degrees = degree_sequence(g);
  std::vector<std::size_t> buckets;
  std::size_t isolated = 0;
  for (const EdgeId d : degrees) {
    if (d == 0) {
      ++isolated;
      continue;
    }
    std::size_t k = 0;
    while ((EdgeId{2} << k) <= d) ++k;
    if (buckets.size() <= k) buckets.resize(k + 1, 0);
    if (!buckets.empty()) ++buckets[k];
  }
  std::cout << "degree histogram:\n";
  const double n = std::max<double>(1.0, static_cast<double>(degrees.size()));
  auto bar = [](double frac) {
    return std::string(static_cast<std::size_t>(frac * 40.0 + 0.5), '#');
  };
  if (isolated > 0)
    std::cout << "  deg 0            " << Table::fmt_count(isolated) << "  "
              << bar(static_cast<double>(isolated) / n) << "\n";
  for (std::size_t k = 0; k < buckets.size(); ++k) {
    if (buckets[k] == 0) continue;
    char range[32];
    std::snprintf(range, sizeof range, "[%llu, %llu)",
                  static_cast<unsigned long long>(EdgeId{1} << k),
                  static_cast<unsigned long long>(EdgeId{2} << k));
    std::printf("  deg %-12s %s  %s\n", range,
                Table::fmt_count(buckets[k]).c_str(),
                bar(static_cast<double>(buckets[k]) / n).c_str());
  }
}

void report(const Graph& g, const Options& opts) {
  const DegreeStats deg = compute_degree_stats(g, 4096);
  std::cout << "graph: " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges" << (g.is_labeled() ? ", labeled" : "") << "\n"
            << "degrees: max " << deg.max_degree << ", mean "
            << Table::fmt(deg.mean_degree, 2) << ", median "
            << Table::fmt(deg.median_degree, 1) << "\n"
            << "raw CSR: " << Table::fmt_count(g.memory_bytes())
            << " bytes\n";
  print_degree_histogram(g);
  std::cout << "\n";

  static constexpr storage::Backend kBackends[] = {
      storage::Backend::kUncompressed, storage::Backend::kCompressed,
      storage::Backend::kCompressedBitset, storage::Backend::kSpill};
  Table table({"backend", "resident", "encoded", "ratio", "bitset rows",
               "file bytes"});
  for (const storage::Backend b : kBackends) {
    const auto store = storage::GraphStore::build(Graph(g), policy_for(b, opts));
    const storage::StorageStats st = store->stats();
    table.add_row({storage::to_string(st.backend),
                   Table::fmt_count(st.resident_bytes),
                   Table::fmt_count(st.encoded_bytes),
                   Table::fmt(st.compression_ratio, 2),
                   Table::fmt_count(st.num_bitset_rows),
                   Table::fmt_count(st.file_bytes)});
  }
  table.print(std::cout);
  std::cout << "(resident excludes the per-run decoded-list cache; the spill\n"
            << " row's resident set is its index plus the page-cache budget)\n";

  // What kAuto would pick for this graph under the flags given (the same
  // deterministic rule GraphSession applies: a budget forces spill, hubs
  // above the bitset threshold enable bitset rows).
  storage::StoragePolicy auto_policy = policy_for(storage::Backend::kAuto, opts);
  if (opts.has("budget"))
    auto_policy.memory_budget_bytes =
        static_cast<std::uint64_t>(opts.get_int("budget", 1 << 20));
  std::cout << "recommended backend: "
            << storage::to_string(storage::choose_backend(g, auto_policy))
            << "\n";
}

/// Every backend must serve byte-identical adjacency for every vertex.
int selftest() {
  const Graph g = make_barabasi_albert(600, 4, 7);
  static constexpr storage::Backend kBackends[] = {
      storage::Backend::kCompressed, storage::Backend::kCompressedBitset,
      storage::Backend::kSpill, storage::Backend::kAuto};
  for (const storage::Backend b : kBackends) {
    storage::StoragePolicy policy;
    policy.backend = b;
    if (b == storage::Backend::kSpill) {
      policy.memory_budget_bytes = 4096;  // a few 1 KiB pages resident
      policy.page_size = 1024;
    }
    if (b == storage::Backend::kCompressedBitset) policy.bitset_min_degree = 32;
    const auto store = storage::GraphStore::build(Graph(g), policy);
    const auto lease = store->lease();
    const GraphView view = store->view();
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto raw = g.neighbors(v);
      const auto got = view.neighbors(v);
      if (std::vector<VertexId>(raw.begin(), raw.end()) !=
          std::vector<VertexId>(got.begin(), got.end())) {
        std::cerr << "selftest: backend " << storage::to_string(b)
                  << " serves a different neighbor list for vertex " << v
                  << "\n";
        return 1;
      }
    }
    const storage::StorageStats st = store->stats();
    if (st.compression_ratio < 1.0) {
      std::cerr << "selftest: backend " << storage::to_string(b)
                << " expanded the graph (ratio "
                << st.compression_ratio << ")\n";
      return 1;
    }
  }
  std::cout << "selftest: all backends serve identical adjacency\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts(argc, argv);
    if (opts.has("help")) {
      print_usage();
      return 0;
    }
    opts.allow_only({"graph", "family", "vertices", "degree", "seed", "block",
                     "budget", "page", "selftest", "help"});
    if (opts.has("selftest")) return selftest();
    report(build_graph(opts), opts);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
