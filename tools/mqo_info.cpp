// Standing-query index inspector: trie shape and sharing for a pattern set.
//
// Registers a set of patterns in a PatternIndex and reports what the
// shared-prefix plan trie makes of them — canonical groups, node/terminal
// counts, and the shared-prefix ratio (the fraction of per-plan enumeration
// levels served by a prefix some other plan already pays for; DESIGN.md
// §16). Optionally replays a synthetic graph as one batch through the
// MultiQueryEvaluator and prints the walk accounting next to what the
// per-pattern loop would have cost.
//
//   mqo_info                                   (built-in demo pattern set)
//   mqo_info --patterns="0-1,1-2,2-0;0-1,1-2,2-3" --dup=4
//   mqo_info --dump                            (one line per trie node)
//   mqo_info --selftest    (ctest smoke: sharing + indexed == loop, exit 0/1)

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental.hpp"
#include "graph/generators.hpp"
#include "mqo/evaluator.hpp"
#include "mqo/pattern_index.hpp"
#include "util/check.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace stm;

void print_usage() {
  std::cout <<
      "usage: mqo_info [options]\n"
      "  --patterns=LIST    semicolon-separated pattern edge lists\n"
      "                     (default: triangle;4-clique;prism;K33;path)\n"
      "  --dup=N            register each pattern N times (default 1)\n"
      "  --dump             print the trie, one line per node\n"
      "  --vertices=N       evaluation-demo graph size (default 200)\n"
      "  --seed=S           generator seed (default 42)\n"
      "  --no-eval          skip the evaluation demo\n"
      "  --selftest         verify prefix sharing and indexed-vs-loop\n"
      "                     agreement on a small graph, exit 0/1\n";
}

std::vector<Pattern> parse_patterns(const std::string& list) {
  std::vector<Pattern> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t end = list.find(';', start);
    const std::string one =
        list.substr(start, end == std::string::npos ? end : end - start);
    if (!one.empty()) out.push_back(Pattern::parse(one));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  STM_CHECK_MSG(!out.empty(), "--patterns parsed to an empty set");
  return out;
}

std::vector<Pattern> demo_patterns() {
  return {
      Pattern::parse("0-1,1-2,2-0"),                              // triangle
      Pattern::parse("0-1,0-2,0-3,1-2,1-3,2-3"),                  // 4-clique
      Pattern::parse("0-1,1-2,2-0,3-4,4-5,5-3,0-3,1-4,2-5"),      // prism
      Pattern::parse("0-3,0-4,0-5,1-3,1-4,1-5,2-3,2-4,2-5"),      // K_{3,3}
      Pattern::parse("0-1,1-2"),                                  // path
  };
}

/// Replays a whole graph as one insertion batch over an edgeless base; the
/// shape every standing query's baseline takes (and the oracle lane's).
std::pair<std::shared_ptr<const GraphSnapshot>, DeltaEdges> replay_batch(
    const Graph& g) {
  Graph empty(
      std::vector<EdgeId>(static_cast<std::size_t>(g.num_vertices()) + 1, 0),
      {}, g.labels());
  MutableGraph mutable_graph(std::move(empty));
  UpdateBatch batch;
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.neighbors(u))
      if (u < v) batch.insertions.emplace_back(u, v);
  auto from = mutable_graph.snapshot();
  DeltaEdges applied;
  if (!batch.insertions.empty()) applied = mutable_graph.apply(batch).applied;
  return {std::move(from), std::move(applied)};
}

void report(const std::vector<Pattern>& patterns, const Options& opts) {
  const auto dup =
      static_cast<std::uint64_t>(std::max<std::int64_t>(1, opts.get_int("dup", 1)));
  mqo::PatternIndex index;
  std::uint64_t next_id = 1;
  for (const Pattern& p : patterns)
    for (std::uint64_t d = 0; d < dup; ++d)
      index.add(next_id++, p, PlanOptions{}, /*wants_embeddings=*/false);

  Table regs({"pattern", "vertices", "edges", "|Aut|", "registered"});
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    regs.add_row({patterns[i].to_string(),
                  Table::fmt_count(patterns[i].size()),
                  Table::fmt_count(patterns[i].edges().size()),
                  Table::fmt_count(index.automorphisms(i * dup + 1)),
                  Table::fmt_count(dup)});
  }
  regs.print(std::cout);

  const mqo::IndexStats st = index.stats();
  std::cout << "\nregistrations: " << st.registrations
            << "  canonical groups: " << st.groups << "\n"
            << "trie: " << st.trie.nodes << " nodes, " << st.trie.terminals
            << " terminals, max depth " << st.trie.max_depth << "\n"
            << "plan positions (no-sharing node count): "
            << st.trie.plan_positions << "\n"
            << "shared-prefix ratio: "
            << Table::fmt(st.trie.shared_prefix_ratio, 3) << "\n";

  if (opts.has("dump")) std::cout << "\n" << index.trie().describe();

  if (opts.get_bool("no-eval", false)) return;
  const auto n = static_cast<VertexId>(opts.get_int("vertices", 200));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const Graph g = make_barabasi_albert(n, 3, seed);
  const auto [from, applied] = replay_batch(g);
  const mqo::EvalResult res = mqo::MultiQueryEvaluator(index).evaluate(from, applied);

  std::cout << "\nevaluation demo: power-law graph, " << g.num_vertices()
            << " vertices, " << g.num_edges() << " edges as one batch\n";
  Table counts({"pattern", "embeddings"});
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const mqo::QueryDelta qd = index.project(i * dup + 1, res);
    counts.add_row({patterns[i].to_string(),
                    Table::fmt_count(static_cast<std::uint64_t>(
                        qd.delta < 0 ? 0 : qd.delta))});
  }
  counts.print(std::cout);
  // What the per-pattern loop would seed for the same batch: every
  // registration anchors each of its pattern edges per delta edge, in both
  // orientations.
  std::uint64_t loop_seeds = 0;
  for (const Pattern& p : patterns)
    loop_seeds += 2 * dup * p.edges().size() * res.delta_edges;
  std::cout << "delta edges: " << res.delta_edges
            << "  trie walks seeded: " << res.seed_walks
            << "  node visits: " << res.node_visits << "\n"
            << "per-pattern loop would seed " << loop_seeds
            << " anchored runs for the same batch\n";
}

/// Sharing must show up on the demo set and the indexed deltas must equal
/// the per-pattern IncrementalMatcher's, registration by registration.
int selftest() {
  mqo::PatternIndex index;
  const std::vector<Pattern> patterns = demo_patterns();
  std::uint64_t id = 0;
  for (const Pattern& p : patterns)
    index.add(++id, p, PlanOptions{}, /*wants_embeddings=*/false);
  // Isomorphic re-registrations must fold into the existing groups.
  index.add(++id, Pattern::parse("1-2,2-0,0-1"), PlanOptions{}, false);
  const mqo::IndexStats st = index.stats();
  if (st.groups != patterns.size()) {
    std::cerr << "selftest: expected " << patterns.size() << " groups, got "
              << st.groups << "\n";
    return 1;
  }
  if (st.trie.shared_prefix_ratio <= 0.0 ||
      st.trie.nodes >= st.trie.plan_positions) {
    std::cerr << "selftest: no prefix sharing on the demo set (nodes "
              << st.trie.nodes << ", plan positions "
              << st.trie.plan_positions << ")\n";
    return 1;
  }

  const Graph g = make_barabasi_albert(120, 3, 7);
  const auto [from, applied] = replay_batch(g);
  const mqo::EvalResult res = mqo::MultiQueryEvaluator(index).evaluate(from, applied);
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const mqo::QueryDelta qd = index.project(i + 1, res);
    IncrementalOptions iopts;
    const std::int64_t loop =
        IncrementalMatcher(patterns[i], iopts).count_delta(from, applied).delta;
    if (qd.delta != loop) {
      std::cerr << "selftest: pattern " << patterns[i].to_string()
                << " indexed delta " << qd.delta << " != per-pattern loop "
                << loop << "\n";
      return 1;
    }
  }

  while (id > 0) index.remove(id--);
  if (!index.empty() || !index.trie().empty() || index.stats().trie.nodes != 0) {
    std::cerr << "selftest: trie not empty after removing every registration\n";
    return 1;
  }
  std::cout << "selftest: prefix sharing present, indexed deltas match the "
               "per-pattern loop\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts(argc, argv);
    if (opts.has("help")) {
      print_usage();
      return 0;
    }
    opts.allow_only({"patterns", "dup", "dump", "vertices", "seed", "no-eval",
                     "selftest", "help"});
    if (opts.has("selftest")) return selftest();
    const std::string list = opts.get("patterns", "");
    report(list.empty() ? demo_patterns() : parse_patterns(list), opts);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
