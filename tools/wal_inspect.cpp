// WAL / checkpoint inspector: the operator's view of a persistence state
// directory (DESIGN.md §13).
//
// Lists the checkpoint files (sequence, epoch, covered LSN, graph size,
// standing-query manifest) and walks the write-ahead log frame by frame,
// printing each record and flagging a torn tail — the first thing to reach
// for when deciding whether a crashed session's directory is recoverable
// and how much replay it implies.
//
//   wal_inspect /var/lib/stmatch/state
//   wal_inspect --wal-only /var/lib/stmatch/state
//   wal_inspect --selftest        # writes + inspects a scratch directory
//
// Exit status: 0 when the directory is recoverable (any valid checkpoint or
// WAL prefix, torn tail or not), 1 on unusable input.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "persist/checkpoint.hpp"
#include "persist/manager.hpp"
#include "persist/wal.hpp"
#include "util/check.hpp"
#include "util/options.hpp"

namespace {

using namespace stm;

void print_usage() {
  std::cout <<
      "usage: wal_inspect [options] <state-dir>\n"
      "  --wal-only         skip the checkpoint listing\n"
      "  --checkpoints-only skip the WAL walk\n"
      "  --selftest         write a scratch state dir, inspect it, verify\n";
}

void print_standing(const persist::StandingEntry& e, const char* indent) {
  std::cout << indent << "standing #" << e.id << " pattern=\"" << e.pattern
            << "\" count=" << e.count << " epoch=" << e.epoch
            << " batches=" << e.batches << '\n';
}

int inspect_checkpoints(const std::string& dir) {
  const persist::CheckpointStore store(dir, /*fsync=*/false, nullptr, 1);
  const std::vector<std::uint64_t> seqs = store.list();
  if (seqs.empty()) {
    std::cout << "checkpoints: none\n";
    return 0;
  }
  for (const std::uint64_t seq : seqs) {
    const std::string path = store.path_for(seq);
    try {
      std::ifstream in(path, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      const persist::CheckpointData d = persist::decode_checkpoint(buf.str());
      std::cout << "checkpoint " << std::filesystem::path(path).filename().string()
                << ": seq=" << d.seq << " epoch=" << d.epoch
                << " last_lsn=" << d.last_lsn << " vertices="
                << d.graph.num_vertices() << " adjacency="
                << d.graph.num_adjacency_entries() << " standing="
                << d.standing.size() << '\n';
      for (const persist::StandingEntry& e : d.standing)
        print_standing(e, "  ");
    } catch (const check_error& e) {
      std::cout << "checkpoint " << std::filesystem::path(path).filename().string()
                << ": INVALID (" << e.what() << ")\n";
    }
  }
  return 0;
}

int inspect_wal(const std::string& dir) {
  const std::string path =
      (std::filesystem::path(dir) / "wal.stmwal").string();
  persist::WalReadResult wal;
  try {
    wal = persist::read_wal(path);
  } catch (const check_error& e) {
    std::cout << "wal: UNREADABLE (" << e.what() << ")\n";
    return 1;
  }
  std::cout << "wal: " << wal.records.size() << " record(s), valid prefix "
            << wal.valid_bytes << " bytes, next lsn " << wal.next_lsn << '\n';
  for (const persist::WalRecord& rec : wal.records) {
    std::cout << "  lsn=" << rec.lsn << " offset=" << rec.file_offset
              << " size=" << rec.frame_size << " " << to_string(rec.type)
              << " epoch=" << rec.epoch;
    switch (rec.type) {
      case persist::WalRecordType::kUpdateBatch:
        std::cout << " inserted=" << rec.delta.inserted.size()
                  << " deleted=" << rec.delta.deleted.size() << '\n';
        break;
      case persist::WalRecordType::kRegisterStanding:
        std::cout << '\n';
        print_standing(rec.standing, "    ");
        break;
      case persist::WalRecordType::kUnregisterStanding:
        std::cout << " standing_id=" << rec.standing_id << '\n';
        break;
    }
  }
  if (wal.torn_tail) {
    std::cout << "  TORN TAIL: " << wal.discarded_bytes
              << " byte(s) past the valid prefix will be discarded by "
                 "recovery (an unacknowledged append interrupted by a "
                 "crash — expected, not corruption)\n";
  }
  return 0;
}

/// Writes a scratch directory through the real WalWriter/CheckpointStore,
/// tears the WAL tail by hand, and asserts the inspector's source data
/// (read_wal / decode_checkpoint) reports exactly what was written.
int selftest() {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "stmatch-wal-inspect-selftest";
  fs::remove_all(dir);
  fs::create_directories(dir);

  {
    persist::WalWriter w((dir / "wal.stmwal").string(), /*next_lsn=*/1,
                         /*fsync=*/false, /*truncate_to=*/0, nullptr, 1);
    DeltaEdges d;
    d.inserted = {{0, 1}, {1, 2}};
    w.append_update(1, d);
    persist::StandingEntry e;
    e.id = 1;
    e.pattern = "0-1,1-2,2-0";
    e.count = 42;
    e.epoch = 1;
    w.append_register(e, 1);
    w.append_unregister(1, 1);
  }
  // Torn tail: half a frame of garbage past the valid prefix.
  {
    std::ofstream out(dir / "wal.stmwal",
                      std::ios::binary | std::ios::app);
    out << "\x10\x00\x00\x00garb";
  }
  const persist::WalReadResult wal =
      persist::read_wal((dir / "wal.stmwal").string());
  STM_CHECK_MSG(wal.records.size() == 3, "selftest: expected 3 records, got "
                                             << wal.records.size());
  STM_CHECK(wal.torn_tail);
  STM_CHECK(wal.records[0].type == persist::WalRecordType::kUpdateBatch);
  STM_CHECK(wal.records[1].standing.count == 42);
  STM_CHECK(wal.records[2].standing_id == 1);

  persist::CheckpointStore store(dir.string(), /*fsync=*/false, nullptr, 1);
  persist::CheckpointData ckpt;
  ckpt.seq = 1;
  ckpt.epoch = 1;
  ckpt.last_lsn = 3;
  ckpt.graph = Graph({0, 1, 2}, {1, 0}, {});
  store.write(ckpt);
  const persist::CheckpointLoadResult loaded = store.load_newest();
  STM_CHECK(loaded.data.has_value() && loaded.data->epoch == 1);

  std::cout << "--- selftest state dir " << dir.string() << " ---\n";
  inspect_checkpoints(dir.string());
  inspect_wal(dir.string());
  fs::remove_all(dir);
  std::cout << "selftest ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts(argc, argv);
    opts.allow_only({"wal-only", "checkpoints-only", "selftest", "help"});
    if (opts.get_bool("help", false)) {
      print_usage();
      return 0;
    }
    if (opts.get_bool("selftest", false)) return selftest();
    if (opts.positional().size() != 1) {
      print_usage();
      return 1;
    }
    const std::string dir = opts.positional()[0];
    if (!std::filesystem::is_directory(dir)) {
      std::cerr << "wal_inspect: not a directory: " << dir << '\n';
      return 1;
    }
    int rc = 0;
    if (!opts.get_bool("wal-only", false)) rc |= inspect_checkpoints(dir);
    if (!opts.get_bool("checkpoints-only", false)) rc |= inspect_wal(dir);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "wal_inspect: " << e.what() << '\n';
    return 1;
  }
}
