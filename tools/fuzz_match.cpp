// Differential / metamorphic fuzzing driver.
//
// Samples seeded (graph, pattern, config) cases, runs every engine through
// the differential oracle, periodically applies the metamorphic relation
// suite, and on any disagreement delta-debugs the case down to a minimal
// reproduction written as a .repro file that `--replay` re-runs:
//
//   fuzz_match --trials 500 --seed 42
//   fuzz_match --trials 2000 --seed $(date -u +%Y%m%d) --time-budget-s 300
//   fuzz_match --replay failure.min.repro
//
// Exit code 0 = all trials agreed, 1 = at least one failure (repros
// written), 2 = bad usage.

#include <chrono>
#include <cstdint>
#include <exception>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "testing/metamorphic.hpp"
#include "testing/minimize.hpp"
#include "testing/oracle.hpp"
#include "testing/repro.hpp"
#include "testing/seed.hpp"
#include "testing/workload.hpp"
#include "util/check.hpp"
#include "util/options.hpp"

namespace {

using namespace stm;
using namespace stm::harness;

void print_usage() {
  std::cout <<
      "usage: fuzz_match [options]\n"
      "  --trials=N             cases to sample (default 200)\n"
      "  --seed=S               base seed; STMATCH_FUZZ_SEED overrides\n"
      "                         (default 42)\n"
      "  --max-vertices=N       graph size cap (default 64)\n"
      "  --max-pattern=N        pattern size cap, <= 6 (default 6)\n"
      "  --metamorphic-every=N  run relation suite every Nth case, 0 = off\n"
      "                         (default 10)\n"
      "  --no-incremental       skip the incremental-replay oracle engine\n"
      "  --time-budget-s=N      stop sampling after N seconds, 0 = off\n"
      "  --out=DIR              directory for .repro artifacts (default .)\n"
      "  --replay=FILE          re-run the oracle on one .repro and exit\n"
      "  --quiet                only report failures and the final summary\n"
      "Options accept both --name=value and --name value forms.\n";
}

/// The repo's Options parser takes only `--name=value`; fold the two-token
/// `--name value` form into it so CI one-liners read naturally.
std::vector<std::string> join_spaced_args(int argc, char** argv) {
  const std::vector<std::string> value_flags = {
      "--trials",  "--seed", "--max-vertices",   "--max-pattern",
      "--out",     "--replay", "--metamorphic-every", "--time-budget-s"};
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    bool takes_value = false;
    for (const std::string& flag : value_flags)
      if (arg == flag) takes_value = true;
    if (takes_value && i + 1 < argc) {
      arg += "=";
      arg += argv[++i];
    }
    args.push_back(std::move(arg));
  }
  return args;
}

int replay(const std::string& path, bool run_incremental) {
  const TestCase c = load_repro(path);
  std::cout << "replaying " << path << "\n  " << describe(c) << "\n";
  OracleOptions opts;
  opts.run_incremental = run_incremental;
  const OracleReport report = run_oracle(c, opts);
  std::cout << report.describe();
  const MetamorphicReport meta = check_metamorphic(c, c.seed);
  std::cout << "metamorphic: " << meta.describe();
  return report.agreed && meta.ok() ? 0 : 1;
}

struct FailureArtifact {
  std::string path;
  std::uint64_t seed = 0;
};

/// Minimizes `c` under `fails` and writes the reduced case next to --out.
FailureArtifact emit_repro(const TestCase& c, const FailurePredicate& fails,
                           const std::string& out_dir, const char* tag) {
  MinimizeOptions min_opts;
  const MinimizeResult result = minimize(c, fails, min_opts);
  const TestCase& reduced = result.still_failing ? result.reduced : c;
  std::ostringstream name;
  name << out_dir << "/fuzz-" << tag << "-seed" << c.seed << ".min.repro";
  save_repro(reduced, name.str());
  std::cout << "  minimized in " << result.probes << " probes over "
            << result.rounds << " round(s): "
            << reduced.graph.num_vertices() << " vertices, "
            << reduced.graph.num_edges() << " edges, pattern size "
            << reduced.pattern.size() << "\n"
            << "  wrote " << name.str() << "\n"
            << "  replay: fuzz_match --replay " << name.str() << "\n";
  return {name.str(), c.seed};
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> joined = join_spaced_args(argc, argv);
  std::vector<const char*> argp = {argv[0]};
  for (const std::string& a : joined) argp.push_back(a.c_str());

  try {
    const Options options(static_cast<int>(argp.size()), argp.data());
    options.allow_only({"trials", "seed", "max-vertices", "max-pattern",
                        "metamorphic-every", "no-incremental", "time-budget-s",
                        "out", "replay", "quiet", "help"});
    if (options.get_bool("help", false)) {
      print_usage();
      return 0;
    }

    const bool run_incremental = !options.get_bool("no-incremental", false);
    if (options.has("replay"))
      return replay(options.get("replay", ""), run_incremental);

    const std::uint64_t trials =
        static_cast<std::uint64_t>(options.get_int("trials", 200));
    const std::uint64_t seed = base_seed(
        static_cast<std::uint64_t>(options.get_int("seed", 42)));
    const std::uint64_t metamorphic_every =
        static_cast<std::uint64_t>(options.get_int("metamorphic-every", 10));
    const std::int64_t budget_s = options.get_int("time-budget-s", 0);
    const std::string out_dir = options.get("out", ".");
    const bool quiet = options.get_bool("quiet", false);

    WorkloadOptions workload;
    workload.max_vertices = static_cast<VertexId>(
        options.get_int("max-vertices", workload.max_vertices));
    workload.max_pattern_size = static_cast<std::size_t>(
        options.get_int("max-pattern",
                        static_cast<std::int64_t>(workload.max_pattern_size)));
    STM_CHECK_MSG(workload.max_pattern_size >= 2 &&
                      workload.max_pattern_size <= kMaxPatternSize,
                  "--max-pattern must be in [2, " << kMaxPatternSize << "]");

    OracleOptions oracle_opts;
    oracle_opts.run_incremental = run_incremental;

    std::cout << "fuzz_match: " << trials << " trials, base seed " << seed
              << (run_incremental ? "" : ", incremental oracle off") << "\n";

    const auto start = std::chrono::steady_clock::now();
    std::vector<FailureArtifact> failures;
    std::uint64_t ran = 0, metamorphic_runs = 0;
    std::uint64_t family_counts[kNumGraphFamilies] = {};

    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      if (budget_s > 0) {
        const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - start);
        if (elapsed.count() >= budget_s) {
          std::cout << "time budget of " << budget_s << "s reached after "
                    << ran << " trials\n";
          break;
        }
      }
      const std::uint64_t case_seed = derive_seed(seed, trial);
      const TestCase c = random_case(case_seed, workload);
      ++ran;
      ++family_counts[static_cast<std::size_t>(c.family)];

      const OracleReport report = run_oracle(c, oracle_opts);
      if (!report.agreed) {
        std::cout << "FAIL (differential) case seed " << case_seed << "\n  "
                  << describe(c) << "\n" << report.describe();
        failures.push_back(emit_repro(
            c,
            [&oracle_opts](const TestCase& t) {
              return !run_oracle(t, oracle_opts).agreed;
            },
            out_dir, "diff"));
        continue;
      }

      if (metamorphic_every > 0 && trial % metamorphic_every == 0) {
        ++metamorphic_runs;
        const MetamorphicReport meta = check_metamorphic(c, case_seed);
        if (!meta.ok()) {
          std::cout << "FAIL (metamorphic) case seed " << case_seed << "\n  "
                    << describe(c) << "\n" << meta.describe();
          failures.push_back(emit_repro(
              c,
              [case_seed](const TestCase& t) {
                return metamorphic_violated(t, case_seed);
              },
              out_dir, "meta"));
          continue;
        }
      }

      if (!quiet && ran % 100 == 0)
        std::cout << "  " << ran << "/" << trials << " trials OK\n";
    }

    std::cout << "ran " << ran << " trials (" << metamorphic_runs
              << " with metamorphic relations); families:";
    for (std::size_t f = 0; f < kNumGraphFamilies; ++f)
      std::cout << " " << to_string(static_cast<GraphFamily>(f)) << "="
                << family_counts[f];
    std::cout << "\n";

    if (!failures.empty()) {
      std::cout << failures.size() << " failure(s); minimized repros:\n";
      for (const FailureArtifact& f : failures)
        std::cout << "  " << f.path << "  (seed " << f.seed << ")\n";
      return 1;
    }
    std::cout << "all engines agreed on every case\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fuzz_match: " << e.what() << "\n";
    print_usage();
    return 2;
  }
}
