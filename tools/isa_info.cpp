// isa_info: reports which SIMD kernel levels this build+CPU combination can
// execute, so scripts (CI's forced-ISA sweep in particular) can skip levels
// cleanly instead of tripping the dispatch layer's fail-loud check_error.
//
//   isa_info                 print every level with supported/unsupported,
//                            plus the auto-detected best level
//   isa_info --check LEVEL   exit 0 if LEVEL is supported, 2 if not
//                            (unknown names exit 1 with a message)
//   isa_info --selftest      invariant checks, used as a unit-tier test
#include <cstdio>
#include <cstring>

#include "setops/simd.hpp"

namespace {

using stm::simd::IsaLevel;

constexpr IsaLevel kLevels[] = {IsaLevel::kScalar, IsaLevel::kSse42,
                                IsaLevel::kAvx2};

int print_report() {
  for (const IsaLevel level : kLevels)
    std::printf("%s %s\n", stm::simd::to_string(level),
                stm::simd::is_supported(level) ? "supported" : "unsupported");
  std::printf("best %s\n", stm::simd::to_string(stm::simd::best_supported()));
  return 0;
}

int check(const char* name) {
  IsaLevel level;
  if (!stm::simd::isa_level_from_string(name, &level)) {
    std::fprintf(stderr, "isa_info: unknown level '%s' (scalar|sse42|avx2)\n",
                 name);
    return 1;
  }
  return stm::simd::is_supported(level) ? 0 : 2;
}

int selftest() {
  // Scalar is unconditionally supported and best_supported() must itself be
  // a supported level; the kernel table of every supported level must be
  // retrievable and tagged with its own level.
  if (!stm::simd::is_supported(IsaLevel::kScalar)) return 1;
  if (!stm::simd::is_supported(stm::simd::best_supported())) return 1;
  for (const IsaLevel level : kLevels) {
    if (!stm::simd::is_supported(level)) continue;
    if (stm::simd::kernels_for(level).level != level) return 1;
  }
  std::printf("isa_info selftest ok (best %s)\n",
              stm::simd::to_string(stm::simd::best_supported()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return print_report();
  if (argc == 2 && std::strcmp(argv[1], "--selftest") == 0) return selftest();
  if (argc == 3 && std::strcmp(argv[1], "--check") == 0) return check(argv[2]);
  std::fprintf(stderr,
               "usage: isa_info [--check LEVEL] [--selftest]\n");
  return 1;
}
