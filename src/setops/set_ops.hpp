// Sorted-set operations over neighbor lists.
//
// These are the scalar building blocks of candidate-set generation
// (paper Fig. 1 line 7/10). Inputs must be strictly ascending; outputs are
// strictly ascending.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "setops/simd.hpp"

namespace stm {

/// A view of a sorted vertex set (e.g. a CSR neighbor list).
using SetView = std::span<const VertexId>;

enum class SetOpKind : std::uint8_t {
  kIntersect,   // a ∩ b
  kDifference,  // a \ b
};

enum class IntersectAlgo : std::uint8_t {
  kMerge,      // linear two-pointer merge, O(|a|+|b|)
  kBinary,     // binary-search each element of a in b, O(|a| log |b|)
  kGalloping,  // exponential+binary search, good for skewed sizes
};

/// True iff v ∈ s (binary search).
bool set_contains(SetView s, VertexId v);

// The materializing/counting entry points below route kMerge and kGalloping
// through the runtime-dispatched SIMD kernel tables (setops/simd.hpp) and
// stay bit-identical to the scalar loops for every table. `kernels` pins one
// table (the per-plan ISA override threads through here); nullptr follows
// the process-wide dispatch. kBinary stays a scalar probe loop — it exists
// as the SIMT cost model's reference strategy, not a throughput path.

/// a ∩ b appended to `out` (out is cleared first).
void set_intersect_into(SetView a, SetView b, std::vector<VertexId>& out,
                        IntersectAlgo algo = IntersectAlgo::kMerge,
                        const simd::Kernels* kernels = nullptr);
std::vector<VertexId> set_intersect(SetView a, SetView b,
                                    IntersectAlgo algo = IntersectAlgo::kMerge);

/// a \ b appended to `out` (out is cleared first).
void set_difference_into(SetView a, SetView b, std::vector<VertexId>& out,
                         const simd::Kernels* kernels = nullptr);
std::vector<VertexId> set_difference(SetView a, SetView b);

/// |a ∩ b| without materializing. Auto-selects the galloping kernel when the
/// size skew crosses simd::kGallopSkewRatio.
std::size_t set_intersect_count(SetView a, SetView b,
                                const simd::Kernels* kernels = nullptr);
/// |a \ b| without materializing.
std::size_t set_difference_count(SetView a, SetView b);

/// Applies `op` with the given operand order: result = lhs op rhs.
void set_op_into(SetOpKind op, SetView lhs, SetView rhs,
                 std::vector<VertexId>& out);

/// Delta-aware adjacency merge for the dynamic-graph subsystem:
/// out = (base ∪ adds) \ dels, in one linear pass. `adds` and `dels` must be
/// disjoint (an edge cannot be simultaneously inserted and tombstoned);
/// `adds` must be disjoint from `base` and `dels` ⊆ base — i.e. the
/// normalized per-vertex delta adjacency + tombstone lists a GraphSnapshot
/// maintains. Out is cleared first.
void apply_delta_into(SetView base, SetView adds, SetView dels,
                      std::vector<VertexId>& out);

/// Delta-aware intersection without materializing the merged adjacency:
/// |((base ∪ adds) \ dels) ∩ other|, same preconditions as apply_delta_into.
std::size_t delta_intersect_count(SetView base, SetView adds, SetView dels,
                                  SetView other);

/// Number of binary-search probe steps for an element lookup in a set of the
/// given size (the simulator's per-lane cost unit): ceil(log2(n)) + 1.
std::uint32_t bsearch_steps(std::size_t set_size);

}  // namespace stm
