// Bitmap adjacency index for dense-candidate set operations.
//
// Binary-search intersection costs O(|a| log |b|); when the same target set
// is probed many times (hub vertices), a precomputed bitmap makes each probe
// O(1). This is the classic dense-path complement to the merge/galloping
// kernels and is what a GPU implementation would keep in shared memory for
// hot vertices. The index is built once per graph for vertices above a
// degree threshold.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "setops/set_ops.hpp"
#include "util/bitset.hpp"

namespace stm {

class BitmapIndex {
 public:
  /// Builds bitmaps for all vertices with degree >= threshold.
  BitmapIndex(const Graph& g, EdgeId degree_threshold);

  /// True if v has a bitmap (degree >= threshold at build time).
  bool has_bitmap(VertexId v) const {
    return slot_[v] != kNoSlot;
  }

  /// O(1) adjacency test; only valid when has_bitmap(u).
  bool adjacent(VertexId u, VertexId v) const {
    return bitmaps_[slot_[u]].test(v);
  }

  /// result = a ∩ N(u), using the bitmap when available and falling back to
  /// binary search otherwise.
  void intersect_with_neighbors(SetView a, VertexId u,
                                std::vector<VertexId>& out) const;

  /// result = a \ N(u).
  void subtract_neighbors(SetView a, VertexId u,
                          std::vector<VertexId>& out) const;

  /// Number of indexed vertices.
  std::size_t num_indexed() const { return bitmaps_.size(); }
  /// Total bitmap storage in bytes.
  std::uint64_t memory_bytes() const {
    return bitmaps_.size() * ((num_vertices_ + 63) / 64) * 8;
  }

 private:
  static constexpr std::uint32_t kNoSlot = ~0u;
  const Graph* graph_;
  VertexId num_vertices_;
  std::vector<std::uint32_t> slot_;
  std::vector<DynamicBitset> bitmaps_;
};

}  // namespace stm
