// AVX2 kernel table (8 x u32 lanes). Compiled with -mavx2 applied to this
// translation unit only; the rest of the program stays at the baseline arch
// and reaches these kernels through the runtime dispatch table, never by
// direct call — so a non-AVX2 machine never executes an AVX2 instruction.
//
// Algorithms:
//  - intersect / intersect_count / difference: block merge. Load one 8-lane
//    block from each side, compare every a-lane against all 8 arrangements
//    of the b-block (one half-swap permute + in-lane rotations + 8
//    compares; see match_mask), then advance the block whose maximum is
//    smaller (both on ties). Strictly-ascending
//    inputs guarantee each a-lane matches at most one b element ever, so
//    matched lanes can be emitted immediately (intersection) or accumulated
//    until the a-block retires (difference: membership is only settled once
//    every b-block that could contain a match has been compared).
//    Intersection emits matched lanes with a scalar bit-scan (typical masks
//    have 0-2 bits set; match_mask already saturates the shuffle port);
//    difference retirement compacts the surviving lanes — usually most of
//    the block — with a 256-entry permutation table and one permutevar8x32
//    + store.
//  - gallop_*: scalar exponential search per probe element, narrowed to a
//    window of <= 8, then one broadcast-compare against the window block
//    resolves the lower bound and membership in two instructions.
//
// Stores always write a full 8-lane vector and advance by popcount, so
// every output buffer must have kSimdOutSlack lanes of headroom past the
// logical result (set_ops.cpp's *_into wrappers provide it).
//
// Ordering comparisons bias both sides by 0x80000000 (unsigned compare via
// signed cmpgt); equality is sign-agnostic. VertexId is bounded by
// kMaxVertices < 2^31 in real graphs, but the kernels stay correct for the
// full u32 range and the conformance suite exercises values past 2^31.
#include "setops/simd.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>

namespace stm::simd {
namespace {

struct CompactTable {
  alignas(32) std::uint32_t idx[256][8];
};

constexpr CompactTable make_compact_table() {
  CompactTable t{};
  for (int mask = 0; mask < 256; ++mask) {
    int k = 0;
    for (int lane = 0; lane < 8; ++lane)
      if ((mask >> lane) & 1) t.idx[mask][k++] = static_cast<std::uint32_t>(lane);
    for (; k < 8; ++k) t.idx[mask][k] = 0;
  }
  return t;
}

constexpr CompactTable kCompact = make_compact_table();

/// 8-bit mask of a-lanes present anywhere in the b block.
///
/// Every a-lane must meet all 8 b-values, but full cyclic rotations would
/// chain 7 cross-lane permutes (3-cycle latency each) back to back. Instead:
/// one half-swap (the only cross-lane permute) plus the three in-lane
/// rotations of each arrangement. Lane i then sees, across the 8 compares,
/// b[(i & ~3) | ((i + r) & 3)] and b[((i ^ 4) & ~3) | ((i + r) & 3)] for
/// r = 0..3 — all 8 elements. All permutes depend only on vb, so they
/// pipeline, and the compares reduce through a balanced OR tree.
inline std::uint32_t match_mask(__m256i va, __m256i vb) {
  const __m256i vs = _mm256_permute4x64_epi64(vb, _MM_SHUFFLE(1, 0, 3, 2));
  const __m256i e0 = _mm256_or_si256(_mm256_cmpeq_epi32(va, vb),
                                     _mm256_cmpeq_epi32(va, vs));
  const __m256i e1 = _mm256_or_si256(
      _mm256_cmpeq_epi32(va,
                         _mm256_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))),
      _mm256_cmpeq_epi32(va,
                         _mm256_shuffle_epi32(vs, _MM_SHUFFLE(0, 3, 2, 1))));
  const __m256i e2 = _mm256_or_si256(
      _mm256_cmpeq_epi32(va,
                         _mm256_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))),
      _mm256_cmpeq_epi32(va,
                         _mm256_shuffle_epi32(vs, _MM_SHUFFLE(1, 0, 3, 2))));
  const __m256i e3 = _mm256_or_si256(
      _mm256_cmpeq_epi32(va,
                         _mm256_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))),
      _mm256_cmpeq_epi32(va,
                         _mm256_shuffle_epi32(vs, _MM_SHUFFLE(2, 1, 0, 3))));
  const __m256i eq =
      _mm256_or_si256(_mm256_or_si256(e0, e1), _mm256_or_si256(e2, e3));
  return static_cast<std::uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
}

/// Compacts the masked lanes of `va` to the front and stores all 8 lanes at
/// out (headroom contract); returns the number of real elements.
inline std::size_t emit_compacted(__m256i va, std::uint32_t mask,
                                  VertexId* out) {
  const __m256i perm = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kCompact.idx[mask]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm256_permutevar8x32_epi32(va, perm));
  return static_cast<std::size_t>(_mm_popcnt_u32(mask));
}

std::size_t avx2_intersect(const VertexId* a, std::size_t an,
                           const VertexId* b, std::size_t bn, VertexId* out) {
  std::size_t i = 0, j = 0, o = 0;
  while (i + 8 <= an && j + 8 <= bn) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    std::uint32_t mask = match_mask(va, vb);
    // Scalar bit-scan emission: ~1 match per block at typical densities, so
    // extracting lanes with tzcnt beats the table + cross-lane-permute
    // compaction (the permutes in match_mask already saturate the shuffle
    // port) and skips empty masks outright.
    for (; mask != 0; mask &= mask - 1)
      out[o++] = a[i + static_cast<std::size_t>(__builtin_ctz(mask))];
    const VertexId amax = a[i + 7], bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  while (i < an && j < bn) {
    if (a[i] < b[j])
      ++i;
    else if (b[j] < a[i])
      ++j;
    else {
      out[o++] = a[i];
      ++i;
      ++j;
    }
  }
  return o;
}

std::size_t avx2_intersect_count(const VertexId* a, std::size_t an,
                                 const VertexId* b, std::size_t bn) {
  std::size_t i = 0, j = 0, count = 0;
  while (i + 8 <= an && j + 8 <= bn) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    count += static_cast<std::size_t>(_mm_popcnt_u32(match_mask(va, vb)));
    const VertexId amax = a[i + 7], bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  while (i < an && j < bn) {
    if (a[i] < b[j])
      ++i;
    else if (b[j] < a[i])
      ++j;
    else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::size_t avx2_difference(const VertexId* a, std::size_t an,
                            const VertexId* b, std::size_t bn, VertexId* out) {
  std::size_t i = 0, j = 0, o = 0;
  std::uint32_t acc = 0;  // matched lanes of the current a block
  while (i + 8 <= an && j + 8 <= bn) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    acc |= match_mask(va, vb);
    const VertexId amax = a[i + 7], bmax = b[j + 7];
    if (amax <= bmax) {
      // Every b element that could equal a lane of this block has been
      // compared (later b blocks are strictly greater than amax): retire.
      o += emit_compacted(va, ~acc & 0xFFu, out + o);
      i += 8;
      acc = 0;
    }
    if (bmax <= amax) j += 8;
  }
  // Scalar finish. `acc` carries verdicts for lanes [i, i+8) when the vector
  // loop exited mid-block (b ran out of full blocks); for those lanes a set
  // bit means "in b" with certainty, a clear bit still needs the remaining
  // b tail checked.
  const std::size_t block_start = i;
  for (; i < an; ++i) {
    if (i - block_start < 8 && ((acc >> (i - block_start)) & 1u)) continue;
    while (j < bn && b[j] < a[i]) ++j;
    if (j < bn && b[j] == a[i]) continue;
    out[o++] = a[i];
  }
  return o;
}

/// Branch-free unsigned lower bound inside a narrowed window: one biased
/// broadcast-compare counts the elements < v. Falls back to scalar when
/// fewer than 8 elements remain loadable.
inline std::size_t window_lower_bound(const VertexId* b, std::size_t bn,
                                      std::size_t lo, std::size_t hi,
                                      VertexId v) {
  while (hi - lo > 8) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (b[mid] < v)
      lo = mid + 1;
    else
      hi = mid;
  }
  if (lo + 8 <= bn) {
    const __m256i bias = _mm256_set1_epi32(
        static_cast<int>(0x80000000u));
    const __m256i vv =
        _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(v)), bias);
    const __m256i vb = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + lo)), bias);
    // Lanes with b < v. Values loaded past `hi` are >= b[hi] >= v, so they
    // never set a bit and the count is exact for the window.
    const int lt = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(vv, vb)));
    return lo + static_cast<std::size_t>(_mm_popcnt_u32(
                    static_cast<std::uint32_t>(lt)));
  }
  while (lo < hi && b[lo] < v) ++lo;
  return lo;
}

inline std::size_t gallop_lower_bound(const VertexId* b, std::size_t bn,
                                      std::size_t lo, VertexId v) {
  std::size_t step = 1, hi = lo;
  while (hi < bn && b[hi] < v) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > bn) hi = bn;
  return window_lower_bound(b, bn, lo, hi, v);
}

std::size_t avx2_gallop_intersect(const VertexId* a, std::size_t an,
                                  const VertexId* b, std::size_t bn,
                                  VertexId* out) {
  std::size_t lo = 0, o = 0;
  for (std::size_t i = 0; i < an && lo < bn; ++i) {
    lo = gallop_lower_bound(b, bn, lo, a[i]);
    if (lo < bn && b[lo] == a[i]) {
      out[o++] = a[i];
      ++lo;
    }
  }
  return o;
}

std::size_t avx2_gallop_intersect_count(const VertexId* a, std::size_t an,
                                        const VertexId* b, std::size_t bn) {
  std::size_t lo = 0, count = 0;
  for (std::size_t i = 0; i < an && lo < bn; ++i) {
    lo = gallop_lower_bound(b, bn, lo, a[i]);
    if (lo < bn && b[lo] == a[i]) {
      ++count;
      ++lo;
    }
  }
  return count;
}

std::size_t avx2_gallop_difference(const VertexId* a, std::size_t an,
                                   const VertexId* b, std::size_t bn,
                                   VertexId* out) {
  std::size_t lo = 0, o = 0;
  for (std::size_t i = 0; i < an; ++i) {
    if (lo < bn) lo = gallop_lower_bound(b, bn, lo, a[i]);
    if (lo < bn && b[lo] == a[i]) {
      ++lo;
      continue;
    }
    out[o++] = a[i];
  }
  return o;
}

constexpr Kernels kAvx2Kernels = {
    IsaLevel::kAvx2,
    avx2_intersect,
    avx2_intersect_count,
    avx2_difference,
    avx2_gallop_intersect,
    avx2_gallop_intersect_count,
    avx2_gallop_difference,
};

}  // namespace

namespace detail {
const Kernels* avx2_kernels() { return &kAvx2Kernels; }
}  // namespace detail

}  // namespace stm::simd

#else  // !defined(__AVX2__)

namespace stm::simd::detail {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace stm::simd::detail

#endif
