#include "setops/set_ops.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stm {

bool set_contains(SetView s, VertexId v) {
  return std::binary_search(s.begin(), s.end(), v);
}

namespace {

void intersect_binary(SetView a, SetView b, std::vector<VertexId>& out) {
  for (VertexId v : a)
    if (set_contains(b, v)) out.push_back(v);
}

inline const simd::Kernels& table_or_active(const simd::Kernels* kernels) {
  return kernels != nullptr ? *kernels : simd::kernels();
}

}  // namespace

void set_intersect_into(SetView a, SetView b, std::vector<VertexId>& out,
                        IntersectAlgo algo, const simd::Kernels* kernels) {
  if (algo == IntersectAlgo::kBinary) {
    out.clear();
    intersect_binary(a, b, out);
    return;
  }
  const simd::Kernels& k = table_or_active(kernels);
  // Galloping probes the larger set with elements of the smaller one; the
  // intersection is symmetric so sorted output is preserved either way.
  SetView small = a, large = b;
  if (algo == IntersectAlgo::kGalloping && small.size() > large.size())
    std::swap(small, large);
  out.resize(std::min(a.size(), b.size()) + simd::kSimdOutSlack);
  const std::size_t n =
      algo == IntersectAlgo::kGalloping
          ? k.gallop_intersect(small.data(), small.size(), large.data(),
                               large.size(), out.data())
          : k.intersect(a.data(), a.size(), b.data(), b.size(), out.data());
  out.resize(n);
}

std::vector<VertexId> set_intersect(SetView a, SetView b, IntersectAlgo algo) {
  std::vector<VertexId> out;
  out.reserve(std::min(a.size(), b.size()));
  set_intersect_into(a, b, out, algo);
  return out;
}

void set_difference_into(SetView a, SetView b, std::vector<VertexId>& out,
                         const simd::Kernels* kernels) {
  const simd::Kernels& k = table_or_active(kernels);
  out.resize(a.size() + simd::kSimdOutSlack);
  // The skewed case worth special-casing is |b| >> |a| (subtracting a huge
  // neighbor list from a small candidate set); a \ b never shrinks below
  // probing each element of a, so gallop on that shape.
  const std::size_t n =
      b.size() / simd::kGallopSkewRatio >= std::max<std::size_t>(a.size(), 1)
          ? k.gallop_difference(a.data(), a.size(), b.data(), b.size(),
                                out.data())
          : k.difference(a.data(), a.size(), b.data(), b.size(), out.data());
  out.resize(n);
}

std::vector<VertexId> set_difference(SetView a, SetView b) {
  std::vector<VertexId> out;
  out.reserve(a.size());
  set_difference_into(a, b, out);
  return out;
}

std::size_t set_intersect_count(SetView a, SetView b,
                                const simd::Kernels* kernels) {
  const simd::Kernels& k = table_or_active(kernels);
  SetView small = a, large = b;
  if (small.size() > large.size()) std::swap(small, large);
  if (small.size() * simd::kGallopSkewRatio <= large.size())
    return k.gallop_intersect_count(small.data(), small.size(), large.data(),
                                    large.size());
  return k.intersect_count(a.data(), a.size(), b.data(), b.size());
}

std::size_t set_difference_count(SetView a, SetView b) {
  return a.size() - set_intersect_count(a, b);
}

void set_op_into(SetOpKind op, SetView lhs, SetView rhs,
                 std::vector<VertexId>& out) {
  if (op == SetOpKind::kIntersect)
    set_intersect_into(lhs, rhs, out);
  else
    set_difference_into(lhs, rhs, out);
}

void apply_delta_into(SetView base, SetView adds, SetView dels,
                      std::vector<VertexId>& out) {
  out.clear();
  out.reserve(base.size() + adds.size());
  std::size_t i = 0, a = 0, d = 0;
  while (i < base.size() || a < adds.size()) {
    // Emit the smaller head of base/adds; tombstones only suppress base
    // elements (dels ⊆ base and dels ∩ adds = ∅ by precondition).
    if (a >= adds.size() || (i < base.size() && base[i] < adds[a])) {
      const VertexId v = base[i++];
      while (d < dels.size() && dels[d] < v) ++d;
      if (d < dels.size() && dels[d] == v) {
        ++d;
        continue;
      }
      out.push_back(v);
    } else {
      out.push_back(adds[a++]);
    }
  }
}

std::size_t delta_intersect_count(SetView base, SetView adds, SetView dels,
                                  SetView other) {
  std::size_t count = set_intersect_count(base, other) +
                      set_intersect_count(adds, other);
  count -= set_intersect_count(dels, other);  // dels ⊆ base, disjoint from adds
  return count;
}

std::uint32_t bsearch_steps(std::size_t set_size) {
  // ceil(log2(n)) + 1 probe steps; degenerate sets still cost one step.
  std::uint32_t ceil_log2 = 0;
  std::size_t pow2 = 1;
  while (pow2 < set_size) {
    pow2 <<= 1;
    ++ceil_log2;
  }
  return ceil_log2 + 1;
}

}  // namespace stm
