#include "setops/set_ops.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stm {

bool set_contains(SetView s, VertexId v) {
  return std::binary_search(s.begin(), s.end(), v);
}

namespace {

void intersect_merge(SetView a, SetView b, std::vector<VertexId>& out) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j])
      ++i;
    else if (b[j] < a[i])
      ++j;
    else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

void intersect_binary(SetView a, SetView b, std::vector<VertexId>& out) {
  for (VertexId v : a)
    if (set_contains(b, v)) out.push_back(v);
}

void intersect_galloping(SetView a, SetView b, std::vector<VertexId>& out) {
  // Always gallop through the larger set with elements of the smaller one;
  // preserves sorted output since `a`'s order is kept when a is smaller, and
  // intersection is symmetric.
  if (a.size() > b.size()) {
    intersect_galloping(b, a, out);
    return;
  }
  std::size_t lo = 0;
  for (VertexId v : a) {
    // Exponential search for the first position with b[pos] >= v.
    std::size_t step = 1, hi = lo;
    while (hi < b.size() && b[hi] < v) {
      lo = hi + 1;
      hi += step;
      step <<= 1;
    }
    hi = std::min(hi, b.size());
    auto it = std::lower_bound(b.begin() + static_cast<std::ptrdiff_t>(lo),
                               b.begin() + static_cast<std::ptrdiff_t>(hi), v);
    lo = static_cast<std::size_t>(it - b.begin());
    if (lo < b.size() && b[lo] == v) {
      out.push_back(v);
      ++lo;
    }
  }
}

}  // namespace

void set_intersect_into(SetView a, SetView b, std::vector<VertexId>& out,
                        IntersectAlgo algo) {
  out.clear();
  switch (algo) {
    case IntersectAlgo::kMerge:
      intersect_merge(a, b, out);
      break;
    case IntersectAlgo::kBinary:
      intersect_binary(a, b, out);
      break;
    case IntersectAlgo::kGalloping:
      intersect_galloping(a, b, out);
      break;
  }
}

std::vector<VertexId> set_intersect(SetView a, SetView b, IntersectAlgo algo) {
  std::vector<VertexId> out;
  out.reserve(std::min(a.size(), b.size()));
  set_intersect_into(a, b, out, algo);
  return out;
}

void set_difference_into(SetView a, SetView b, std::vector<VertexId>& out) {
  out.clear();
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j])
      out.push_back(a[i++]);
    else if (b[j] < a[i])
      ++j;
    else {
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) out.push_back(a[i]);
}

std::vector<VertexId> set_difference(SetView a, SetView b) {
  std::vector<VertexId> out;
  out.reserve(a.size());
  set_difference_into(a, b, out);
  return out;
}

std::size_t set_intersect_count(SetView a, SetView b) {
  std::size_t count = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j])
      ++i;
    else if (b[j] < a[i])
      ++j;
    else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::size_t set_difference_count(SetView a, SetView b) {
  return a.size() - set_intersect_count(a, b);
}

void set_op_into(SetOpKind op, SetView lhs, SetView rhs,
                 std::vector<VertexId>& out) {
  if (op == SetOpKind::kIntersect)
    set_intersect_into(lhs, rhs, out);
  else
    set_difference_into(lhs, rhs, out);
}

void apply_delta_into(SetView base, SetView adds, SetView dels,
                      std::vector<VertexId>& out) {
  out.clear();
  out.reserve(base.size() + adds.size());
  std::size_t i = 0, a = 0, d = 0;
  while (i < base.size() || a < adds.size()) {
    // Emit the smaller head of base/adds; tombstones only suppress base
    // elements (dels ⊆ base and dels ∩ adds = ∅ by precondition).
    if (a >= adds.size() || (i < base.size() && base[i] < adds[a])) {
      const VertexId v = base[i++];
      while (d < dels.size() && dels[d] < v) ++d;
      if (d < dels.size() && dels[d] == v) {
        ++d;
        continue;
      }
      out.push_back(v);
    } else {
      out.push_back(adds[a++]);
    }
  }
}

std::size_t delta_intersect_count(SetView base, SetView adds, SetView dels,
                                  SetView other) {
  std::size_t count = set_intersect_count(base, other) +
                      set_intersect_count(adds, other);
  count -= set_intersect_count(dels, other);  // dels ⊆ base, disjoint from adds
  return count;
}

std::uint32_t bsearch_steps(std::size_t set_size) {
  // ceil(log2(n)) + 1 probe steps; degenerate sets still cost one step.
  std::uint32_t ceil_log2 = 0;
  std::size_t pow2 = 1;
  while (pow2 < set_size) {
    pow2 <<= 1;
    ++ceil_log2;
  }
  return ceil_log2 + 1;
}

}  // namespace stm
