// Combined multi-set operation (paper Fig. 8).
//
// With loop unrolling, a warp executes the set operations of several unrolled
// iterations at once: each lane takes one element from the concatenation of
// all source sets, locates its (set_idx, set_ofs) via a prefix sum over set
// sizes, binary-searches the element in that set's target, and compacts the
// survivors with ballot/popcount. This host implementation reproduces the
// exact semantics and accounts for lane occupancy and per-wave probe depth,
// which the SIMT cost model turns into simulated cycles.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "setops/set_ops.hpp"

namespace stm {

/// Width of a warp (CUDA: 32 lanes).
inline constexpr std::uint32_t kWarpWidth = 32;

/// Occupancy/cost counters for warp-executed set operations.
struct WarpOpCost {
  std::uint64_t waves = 0;            // warp-wide execution rounds
  std::uint64_t busy_lane_slots = 0;  // lanes that held a real element
  std::uint64_t probe_cycles = 0;     // Σ over waves of max per-lane steps
  std::uint64_t elements_written = 0;

  std::uint64_t total_lane_slots() const {
    return waves * static_cast<std::uint64_t>(kWarpWidth);
  }
  /// Fraction of lane slots doing useful work (paper Fig. 13 metric).
  double utilization() const {
    const auto total = total_lane_slots();
    return total == 0 ? 1.0
                      : static_cast<double>(busy_lane_slots) /
                            static_cast<double>(total);
  }
  WarpOpCost& operator+=(const WarpOpCost& o) {
    waves += o.waves;
    busy_lane_slots += o.busy_lane_slots;
    probe_cycles += o.probe_cycles;
    elements_written += o.elements_written;
    return *this;
  }
};

/// Optional per-element output filter: keep v iff its label bit is in `mask`.
/// `labels == nullptr` disables filtering. This implements the merged
/// multi-label intermediate sets of paper Fig. 10b (a one-bit mask gives the
/// exact-label filter of a final candidate set).
struct LabelFilter {
  const Label* labels = nullptr;
  std::uint64_t mask = ~0ULL;

  bool keep(VertexId v) const {
    return labels == nullptr || ((mask >> labels[v]) & 1ULL);
  }
};

/// One of the M fused operations: out = source op target, label-filtered.
struct SetOpTask {
  SetView source;
  SetView target;
  SetOpKind op = SetOpKind::kIntersect;
  LabelFilter filter;
  std::vector<VertexId>* out = nullptr;  // cleared, then filled sorted
};

/// Executes all tasks as a single warp would (paper Fig. 8): the sources are
/// concatenated, processed `warp_width` elements per wave, and each lane's
/// probe depth is max-reduced per wave. Appends counters to *cost (may be
/// null).
void combined_set_op(std::span<SetOpTask> tasks, WarpOpCost* cost);

/// Warp-parallel filtered copy (candidate materialization at level 1, where
/// the set is just a neighbor list): ceil(n/W) waves, one step per wave.
void filtered_copy(SetView source, LabelFilter filter,
                   std::vector<VertexId>& out, WarpOpCost* cost);

}  // namespace stm
