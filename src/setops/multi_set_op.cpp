#include "setops/multi_set_op.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/prefix_sum.hpp"

namespace stm {

void combined_set_op(std::span<SetOpTask> tasks, WarpOpCost* cost) {
  std::vector<std::uint64_t> sizes(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    STM_CHECK(tasks[t].out != nullptr);
    sizes[t] = tasks[t].source.size();
  }
  const auto scan = exclusive_prefix_sum(sizes);  // paper: size_scan
  const std::uint64_t total = scan.back();

  // Outputs go through the dispatched (SIMD) kernels: each task's result is
  // its source op target, label-filtered, in sorted order — exactly what the
  // per-lane emulation produced element by element. The warp cost counters
  // are data-independent (they depend only on source/target sizes), so they
  // are computed arithmetically below and stay bit-identical to the old
  // per-element loop under every ISA level.
  WarpOpCost local;
  for (SetOpTask& task : tasks) {
    set_op_into(task.op, task.source, task.target, *task.out);
    if (task.filter.labels != nullptr)
      task.out->erase(
          std::remove_if(task.out->begin(), task.out->end(),
                         [&](VertexId v) { return !task.filter.keep(v); }),
          task.out->end());
    local.elements_written += task.out->size();
  }

  // Cost emulation (paper Fig. 8): lanes take elements from the flat
  // concatenation of sources, kWarpWidth per wave; each wave's probe depth
  // is the max bsearch_steps(target size) over the tasks whose source range
  // overlaps the wave. Empty sources own no lanes and never contribute.
  std::size_t set_idx = 0;  // advances monotonically over the flat range
  for (std::uint64_t wave_start = 0; wave_start < total;
       wave_start += kWarpWidth) {
    const std::uint64_t wave_end =
        std::min<std::uint64_t>(wave_start + kWarpWidth, total);
    while (scan[set_idx + 1] <= wave_start) ++set_idx;
    std::uint32_t max_steps = 0;
    for (std::size_t t = set_idx; t < tasks.size() && scan[t] < wave_end;
         ++t) {
      if (scan[t] == scan[t + 1]) continue;  // empty source: no lanes
      max_steps = std::max(max_steps, bsearch_steps(tasks[t].target.size()));
    }
    ++local.waves;
    local.busy_lane_slots += wave_end - wave_start;
    local.probe_cycles += max_steps;
  }
  if (cost != nullptr) *cost += local;
}

void filtered_copy(SetView source, LabelFilter filter,
                   std::vector<VertexId>& out, WarpOpCost* cost) {
  out.clear();
  for (VertexId v : source)
    if (filter.keep(v)) out.push_back(v);
  if (cost != nullptr) {
    WarpOpCost local;
    local.waves = (source.size() + kWarpWidth - 1) / kWarpWidth;
    local.busy_lane_slots = source.size();
    local.probe_cycles = local.waves;  // one step per wave for a copy
    local.elements_written = out.size();
    *cost += local;
  }
}

}  // namespace stm
