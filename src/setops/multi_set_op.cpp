#include "setops/multi_set_op.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/prefix_sum.hpp"

namespace stm {

void combined_set_op(std::span<SetOpTask> tasks, WarpOpCost* cost) {
  std::vector<std::uint64_t> sizes(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    STM_CHECK(tasks[t].out != nullptr);
    tasks[t].out->clear();
    sizes[t] = tasks[t].source.size();
  }
  const auto scan = exclusive_prefix_sum(sizes);  // paper: size_scan
  const std::uint64_t total = scan.back();

  WarpOpCost local;
  std::size_t set_idx = 0;  // advances monotonically over the flat range
  for (std::uint64_t wave_start = 0; wave_start < total;
       wave_start += kWarpWidth) {
    const std::uint64_t wave_end = std::min<std::uint64_t>(
        wave_start + kWarpWidth, total);
    std::uint32_t max_steps = 0;
    for (std::uint64_t pos = wave_start; pos < wave_end; ++pos) {
      while (scan[set_idx + 1] <= pos) ++set_idx;  // lane's set_idx
      const SetOpTask& task = tasks[set_idx];
      const std::uint64_t set_ofs = pos - scan[set_idx];
      const VertexId value = task.source[set_ofs];
      // bsearch_res in Fig. 8: 1 = keep.
      const bool found = set_contains(task.target, value);
      const bool keep_op =
          (task.op == SetOpKind::kIntersect) ? found : !found;
      max_steps = std::max(
          max_steps, bsearch_steps(task.target.size()));
      if (keep_op && task.filter.keep(value)) {
        // Sequential emulation writes in flat order, which preserves the
        // sorted order within each output set (ballot/popc compaction on a
        // real warp produces the same order).
        task.out->push_back(value);
        ++local.elements_written;
      }
    }
    ++local.waves;
    local.busy_lane_slots += wave_end - wave_start;
    local.probe_cycles += max_steps;
  }
  if (cost != nullptr) *cost += local;
}

void filtered_copy(SetView source, LabelFilter filter,
                   std::vector<VertexId>& out, WarpOpCost* cost) {
  out.clear();
  for (VertexId v : source)
    if (filter.keep(v)) out.push_back(v);
  if (cost != nullptr) {
    WarpOpCost local;
    local.waves = (source.size() + kWarpWidth - 1) / kWarpWidth;
    local.busy_lane_slots = source.size();
    local.probe_cycles = local.waves;  // one step per wave for a copy
    local.elements_written = out.size();
    *cost += local;
  }
}

}  // namespace stm
