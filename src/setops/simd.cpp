#include "setops/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/check.hpp"

namespace stm::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar kernel table: the oracle every vectorized table must match bit for
// bit. These are the classic two-pointer merges; the galloping variants are
// exponential+binary probes identical in structure to the vectorized ones so
// the probe-order-dependent `lo` resumption behaves the same way.

std::size_t scalar_intersect(const VertexId* a, std::size_t an,
                             const VertexId* b, std::size_t bn,
                             VertexId* out) {
  std::size_t i = 0, j = 0, o = 0;
  while (i < an && j < bn) {
    if (a[i] < b[j])
      ++i;
    else if (b[j] < a[i])
      ++j;
    else {
      out[o++] = a[i];
      ++i;
      ++j;
    }
  }
  return o;
}

std::size_t scalar_intersect_count(const VertexId* a, std::size_t an,
                                   const VertexId* b, std::size_t bn) {
  std::size_t i = 0, j = 0, count = 0;
  while (i < an && j < bn) {
    if (a[i] < b[j])
      ++i;
    else if (b[j] < a[i])
      ++j;
    else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::size_t scalar_difference(const VertexId* a, std::size_t an,
                              const VertexId* b, std::size_t bn,
                              VertexId* out) {
  std::size_t i = 0, j = 0, o = 0;
  while (i < an && j < bn) {
    if (a[i] < b[j])
      out[o++] = a[i++];
    else if (b[j] < a[i])
      ++j;
    else {
      ++i;
      ++j;
    }
  }
  for (; i < an; ++i) out[o++] = a[i];
  return o;
}

/// Positions `lo` at the first index with b[lo] >= v, galloping forward from
/// the caller's running `lo` (probes are issued for ascending v, so the
/// search window only ever moves right).
std::size_t gallop_lower_bound(const VertexId* b, std::size_t bn,
                               std::size_t lo, VertexId v) {
  std::size_t step = 1, hi = lo;
  while (hi < bn && b[hi] < v) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > bn) hi = bn;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (b[mid] < v)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

std::size_t scalar_gallop_intersect(const VertexId* a, std::size_t an,
                                    const VertexId* b, std::size_t bn,
                                    VertexId* out) {
  std::size_t lo = 0, o = 0;
  for (std::size_t i = 0; i < an && lo < bn; ++i) {
    lo = gallop_lower_bound(b, bn, lo, a[i]);
    if (lo < bn && b[lo] == a[i]) {
      out[o++] = a[i];
      ++lo;
    }
  }
  return o;
}

std::size_t scalar_gallop_intersect_count(const VertexId* a, std::size_t an,
                                          const VertexId* b, std::size_t bn) {
  std::size_t lo = 0, count = 0;
  for (std::size_t i = 0; i < an && lo < bn; ++i) {
    lo = gallop_lower_bound(b, bn, lo, a[i]);
    if (lo < bn && b[lo] == a[i]) {
      ++count;
      ++lo;
    }
  }
  return count;
}

std::size_t scalar_gallop_difference(const VertexId* a, std::size_t an,
                                     const VertexId* b, std::size_t bn,
                                     VertexId* out) {
  std::size_t lo = 0, o = 0;
  for (std::size_t i = 0; i < an; ++i) {
    if (lo < bn) lo = gallop_lower_bound(b, bn, lo, a[i]);
    if (lo < bn && b[lo] == a[i]) {
      ++lo;
      continue;
    }
    out[o++] = a[i];
  }
  return o;
}

constexpr Kernels kScalarKernels = {
    IsaLevel::kScalar,        scalar_intersect,
    scalar_intersect_count,   scalar_difference,
    scalar_gallop_intersect,  scalar_gallop_intersect_count,
    scalar_gallop_difference,
};

// ---------------------------------------------------------------------------
// Dispatch. The table array is filled once (registering whatever the build
// shipped), the CPU capability probe runs once, and the process-wide choice
// is an atomic the force API flips between runs.

struct Dispatch {
  const Kernels* tables[kNumIsaLevels] = {nullptr, nullptr, nullptr};
  IsaLevel best = IsaLevel::kScalar;
  IsaChoice env_force = IsaChoice::kAuto;
};

bool cpu_can_execute(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return true;
    case IsaLevel::kSse42:
    case IsaLevel::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      __builtin_cpu_init();
      return level == IsaLevel::kSse42 ? __builtin_cpu_supports("sse4.2")
                                       : __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

const Dispatch& dispatch() {
  static const Dispatch d = [] {
    Dispatch init;
    init.tables[static_cast<std::size_t>(IsaLevel::kScalar)] = &kScalarKernels;
    if (cpu_can_execute(IsaLevel::kSse42))
      init.tables[static_cast<std::size_t>(IsaLevel::kSse42)] =
          detail::sse42_kernels();
    if (cpu_can_execute(IsaLevel::kAvx2))
      init.tables[static_cast<std::size_t>(IsaLevel::kAvx2)] =
          detail::avx2_kernels();
    for (std::size_t l = 0; l < kNumIsaLevels; ++l)
      if (init.tables[l] != nullptr) init.best = static_cast<IsaLevel>(l);

    if (const char* env = std::getenv("STMATCH_FORCE_ISA");
        env != nullptr && env[0] != '\0') {
      IsaLevel forced = IsaLevel::kScalar;
      STM_CHECK_MSG(isa_level_from_string(env, &forced),
                    "STMATCH_FORCE_ISA='" << env
                                          << "' is not scalar|sse42|avx2");
      STM_CHECK_MSG(
          init.tables[static_cast<std::size_t>(forced)] != nullptr,
          "STMATCH_FORCE_ISA=" << env
                               << " is not supported by this build/CPU");
      init.env_force = static_cast<IsaChoice>(
          static_cast<std::uint8_t>(forced) + 1);
    }
    return init;
  }();
  return d;
}

/// The runtime force (kAuto = defer to env/auto). Relaxed is enough: forcing
/// is a test-only knob flipped between engine runs, never during one.
std::atomic<IsaChoice>& runtime_force() {
  static std::atomic<IsaChoice> force{IsaChoice::kAuto};
  return force;
}

IsaLevel level_of(IsaChoice choice) {
  STM_CHECK(choice != IsaChoice::kAuto);
  return static_cast<IsaLevel>(static_cast<std::uint8_t>(choice) - 1);
}

}  // namespace

const char* to_string(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kSse42:
      return "sse42";
    case IsaLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const char* to_string(IsaChoice choice) {
  return choice == IsaChoice::kAuto ? "auto" : to_string(level_of(choice));
}

bool isa_level_from_string(const char* name, IsaLevel* out) {
  for (std::size_t l = 0; l < kNumIsaLevels; ++l) {
    const auto level = static_cast<IsaLevel>(l);
    if (std::strcmp(name, to_string(level)) == 0) {
      *out = level;
      return true;
    }
  }
  return false;
}

bool isa_choice_from_string(const char* name, IsaChoice* out) {
  if (std::strcmp(name, "auto") == 0) {
    *out = IsaChoice::kAuto;
    return true;
  }
  IsaLevel level = IsaLevel::kScalar;
  if (!isa_level_from_string(name, &level)) return false;
  *out = static_cast<IsaChoice>(static_cast<std::uint8_t>(level) + 1);
  return true;
}

bool is_supported(IsaLevel level) {
  return dispatch().tables[static_cast<std::size_t>(level)] != nullptr;
}

IsaLevel best_supported() { return dispatch().best; }

IsaLevel active_isa() {
  const IsaChoice runtime = runtime_force().load(std::memory_order_relaxed);
  if (runtime != IsaChoice::kAuto) return level_of(runtime);
  if (dispatch().env_force != IsaChoice::kAuto)
    return level_of(dispatch().env_force);
  return dispatch().best;
}

const Kernels& kernels() { return kernels_for(active_isa()); }

const Kernels& kernels_for(IsaLevel level) {
  const Kernels* table = dispatch().tables[static_cast<std::size_t>(level)];
  STM_CHECK_MSG(table != nullptr, "ISA level '" << to_string(level)
                                                << "' is not supported by "
                                                   "this build/CPU");
  return *table;
}

const Kernels& kernels_for_choice(IsaChoice choice) {
  if (choice == IsaChoice::kAuto) return kernels();
  return kernels_for(level_of(choice));
}

void force_isa(IsaChoice choice) {
  if (choice != IsaChoice::kAuto) {
    // Validate eagerly so a bad force fails at the force site, not inside
    // some engine worker later.
    (void)kernels_for(level_of(choice));
  }
  runtime_force().store(choice, std::memory_order_relaxed);
}

IsaChoice forced_isa() {
  return runtime_force().load(std::memory_order_relaxed);
}

namespace detail {
const Kernels& scalar_kernels() { return kScalarKernels; }
}  // namespace detail

}  // namespace stm::simd
