// SSE4.2 kernel table (4 x u32 lanes). Same algorithms as the AVX2 table
// (see simd_avx2.cpp for the correctness argument) at half the width:
// block merge compares one a-block against all 4 rotations of the b-block,
// compacts matched lanes through a 16-entry pshufb byte table, and the
// galloping variants narrow to a 4-wide window resolved by one biased
// broadcast-compare. Compiled with -msse4.2 on this TU only; reached solely
// through the dispatch table.
//
// Stores write a full 4-lane vector, so outputs need the same
// kSimdOutSlack headroom the AVX2 kernels require.
#include "setops/simd.hpp"

#if defined(__SSE4_2__)

#include <nmmintrin.h>

#include <cstdint>

namespace stm::simd {
namespace {

struct CompactTable {
  alignas(16) std::uint8_t idx[16][16];
};

// Byte-level shuffle indices moving the masked u32 lanes to the front.
constexpr CompactTable make_compact_table() {
  CompactTable t{};
  for (int mask = 0; mask < 16; ++mask) {
    int k = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask >> lane) & 1) {
        for (int byte = 0; byte < 4; ++byte)
          t.idx[mask][k * 4 + byte] =
              static_cast<std::uint8_t>(lane * 4 + byte);
        ++k;
      }
    }
    for (; k < 4; ++k)
      for (int byte = 0; byte < 4; ++byte)
        t.idx[mask][k * 4 + byte] = static_cast<std::uint8_t>(byte);
  }
  return t;
}

constexpr CompactTable kCompact = make_compact_table();

/// 4-bit mask of a-lanes present anywhere in the b block.
inline std::uint32_t match_mask(__m128i va, __m128i vb) {
  __m128i eq = _mm_cmpeq_epi32(va, vb);
  __m128i rot = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
  eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, rot));
  rot = _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2));
  eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, rot));
  rot = _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3));
  eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, rot));
  return static_cast<std::uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
}

inline std::size_t emit_compacted(__m128i va, std::uint32_t mask,
                                  VertexId* out) {
  const __m128i shuf =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kCompact.idx[mask]));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                   _mm_shuffle_epi8(va, shuf));
  return static_cast<std::size_t>(_mm_popcnt_u32(mask));
}

std::size_t sse42_intersect(const VertexId* a, std::size_t an,
                            const VertexId* b, std::size_t bn, VertexId* out) {
  std::size_t i = 0, j = 0, o = 0;
  while (i + 4 <= an && j + 4 <= bn) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    o += emit_compacted(va, match_mask(va, vb), out + o);
    const VertexId amax = a[i + 3], bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  while (i < an && j < bn) {
    if (a[i] < b[j])
      ++i;
    else if (b[j] < a[i])
      ++j;
    else {
      out[o++] = a[i];
      ++i;
      ++j;
    }
  }
  return o;
}

std::size_t sse42_intersect_count(const VertexId* a, std::size_t an,
                                  const VertexId* b, std::size_t bn) {
  std::size_t i = 0, j = 0, count = 0;
  while (i + 4 <= an && j + 4 <= bn) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    count += static_cast<std::size_t>(_mm_popcnt_u32(match_mask(va, vb)));
    const VertexId amax = a[i + 3], bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  while (i < an && j < bn) {
    if (a[i] < b[j])
      ++i;
    else if (b[j] < a[i])
      ++j;
    else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::size_t sse42_difference(const VertexId* a, std::size_t an,
                             const VertexId* b, std::size_t bn,
                             VertexId* out) {
  std::size_t i = 0, j = 0, o = 0;
  std::uint32_t acc = 0;  // matched lanes of the current a block
  while (i + 4 <= an && j + 4 <= bn) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    acc |= match_mask(va, vb);
    const VertexId amax = a[i + 3], bmax = b[j + 3];
    if (amax <= bmax) {
      o += emit_compacted(va, ~acc & 0xFu, out + o);
      i += 4;
      acc = 0;
    }
    if (bmax <= amax) j += 4;
  }
  // Scalar finish; `acc` still holds settled membership bits for the current
  // partial block (see simd_avx2.cpp).
  const std::size_t block_start = i;
  for (; i < an; ++i) {
    if (i - block_start < 4 && ((acc >> (i - block_start)) & 1u)) continue;
    while (j < bn && b[j] < a[i]) ++j;
    if (j < bn && b[j] == a[i]) continue;
    out[o++] = a[i];
  }
  return o;
}

inline std::size_t window_lower_bound(const VertexId* b, std::size_t bn,
                                      std::size_t lo, std::size_t hi,
                                      VertexId v) {
  while (hi - lo > 4) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (b[mid] < v)
      lo = mid + 1;
    else
      hi = mid;
  }
  if (lo + 4 <= bn) {
    const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
    const __m128i vv =
        _mm_xor_si128(_mm_set1_epi32(static_cast<int>(v)), bias);
    const __m128i vb = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + lo)), bias);
    const int lt = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(vv, vb)));
    return lo + static_cast<std::size_t>(_mm_popcnt_u32(
                    static_cast<std::uint32_t>(lt)));
  }
  while (lo < hi && b[lo] < v) ++lo;
  return lo;
}

inline std::size_t gallop_lower_bound(const VertexId* b, std::size_t bn,
                                      std::size_t lo, VertexId v) {
  std::size_t step = 1, hi = lo;
  while (hi < bn && b[hi] < v) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > bn) hi = bn;
  return window_lower_bound(b, bn, lo, hi, v);
}

std::size_t sse42_gallop_intersect(const VertexId* a, std::size_t an,
                                   const VertexId* b, std::size_t bn,
                                   VertexId* out) {
  std::size_t lo = 0, o = 0;
  for (std::size_t i = 0; i < an && lo < bn; ++i) {
    lo = gallop_lower_bound(b, bn, lo, a[i]);
    if (lo < bn && b[lo] == a[i]) {
      out[o++] = a[i];
      ++lo;
    }
  }
  return o;
}

std::size_t sse42_gallop_intersect_count(const VertexId* a, std::size_t an,
                                         const VertexId* b, std::size_t bn) {
  std::size_t lo = 0, count = 0;
  for (std::size_t i = 0; i < an && lo < bn; ++i) {
    lo = gallop_lower_bound(b, bn, lo, a[i]);
    if (lo < bn && b[lo] == a[i]) {
      ++count;
      ++lo;
    }
  }
  return count;
}

std::size_t sse42_gallop_difference(const VertexId* a, std::size_t an,
                                    const VertexId* b, std::size_t bn,
                                    VertexId* out) {
  std::size_t lo = 0, o = 0;
  for (std::size_t i = 0; i < an; ++i) {
    if (lo < bn) lo = gallop_lower_bound(b, bn, lo, a[i]);
    if (lo < bn && b[lo] == a[i]) {
      ++lo;
      continue;
    }
    out[o++] = a[i];
  }
  return o;
}

constexpr Kernels kSse42Kernels = {
    IsaLevel::kSse42,
    sse42_intersect,
    sse42_intersect_count,
    sse42_difference,
    sse42_gallop_intersect,
    sse42_gallop_intersect_count,
    sse42_gallop_difference,
};

}  // namespace

namespace detail {
const Kernels* sse42_kernels() { return &kSse42Kernels; }
}  // namespace detail

}  // namespace stm::simd

#else  // !defined(__SSE4_2__)

namespace stm::simd::detail {
const Kernels* sse42_kernels() { return nullptr; }
}  // namespace stm::simd::detail

#endif
