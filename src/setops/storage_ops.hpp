// Decode-on-intersect set operations over compressed adjacency.
//
// These operate directly on a storage ListCursor (delta/varint bytes with
// skip anchors) or a DynamicBitset adjacency row against a sorted operand,
// without ever materializing the full compressed list: the cursor variants
// gallop via seek_at_least (decoding at most one anchor block per probe),
// the bitset variants probe bits in O(1) per element. All are bit-exact
// against the scalar ops in set_ops.hpp — the storage differential suite
// proves it on randomized lists.
#pragma once

#include <cstdint>
#include <vector>

#include "setops/set_ops.hpp"
#include "storage/compressed.hpp"
#include "storage/encoding.hpp"
#include "util/bitset.hpp"

namespace stm::storage {

// The cursor variants pick between two bit-exact strategies by skew: when
// `other` is much smaller than the compressed list, each element gallops via
// seek_at_least (decoding at most one anchor block per probe, as before);
// otherwise the list is decoded in runs of whole anchor blocks and each run
// is combined with the matching slice of `other` through the dispatched SIMD
// kernels (setops/simd.hpp) — seek_at_least still skips runs `other` never
// touches. `kernels` pins a table for tests; nullptr follows the dispatch.

/// compressed ∩ sorted appended to `out` (cleared first). `cursor` is
/// consumed (left at end of list). Result is the intersection of the
/// cursor's full list with `other`.
void cursor_intersect_into(ListCursor& cursor, stm::SetView other,
                           std::vector<VertexId>& out,
                           const stm::simd::Kernels* kernels = nullptr);

/// |compressed ∩ sorted| without materializing either side.
std::size_t cursor_intersect_count(ListCursor& cursor, stm::SetView other,
                                   const stm::simd::Kernels* kernels = nullptr);

/// sorted \ compressed appended to `out` (cleared first): elements of
/// `other` not present in the cursor's list. (The engines' difference
/// operand order: candidate set minus an adjacency list.)
void cursor_difference_into(ListCursor& cursor, stm::SetView other,
                            std::vector<VertexId>& out,
                            const stm::simd::Kernels* kernels = nullptr);

/// |sorted \ compressed| without materializing.
std::size_t cursor_difference_count(
    ListCursor& cursor, stm::SetView other,
    const stm::simd::Kernels* kernels = nullptr);

/// bitset ∩ sorted appended to `out` (cleared first).
void bitset_intersect_into(const DynamicBitset& bits, stm::SetView other,
                           std::vector<VertexId>& out);

/// |bitset ∩ sorted|.
std::size_t bitset_intersect_count(const DynamicBitset& bits,
                                   stm::SetView other);

/// sorted \ bitset appended to `out` (cleared first).
void bitset_difference_into(const DynamicBitset& bits, stm::SetView other,
                            std::vector<VertexId>& out);

/// |sorted \ bitset|.
std::size_t bitset_difference_count(const DynamicBitset& bits,
                                    stm::SetView other);

/// Dispatch over a CompressedGraph vertex (bitset row or cursor):
/// out = N(v) ∩ other, never materializing N(v).
void adjacency_intersect_into(const CompressedGraph& g, VertexId v,
                              stm::SetView other, std::vector<VertexId>& out);
std::size_t adjacency_intersect_count(const CompressedGraph& g, VertexId v,
                                      stm::SetView other);

}  // namespace stm::storage
