// Runtime-dispatched SIMD set-operation kernels.
//
// The host engine's enumeration time is dominated by sorted-set
// intersection/difference over candidate lists (paper Fig. 1 line 7/10).
// This module provides AVX2 and SSE4.2 implementations of the scalar
// building blocks in set_ops.hpp behind a dispatch table selected once at
// startup from CPUID, with the scalar merge loops as the always-available
// fallback and oracle.
//
// Bit-exactness contract: for every kernel table K and strictly-ascending
// inputs, K.op(a, b) produces byte-identical output (same elements, same
// order) and identical counts as the scalar table. The ISA-sweeping
// conformance suite (tests/test_setops_simd.cpp) proves this for every op x
// length x alignment x seam-duplicate x skew combination under every level
// the build and CPU support, and the differential harness re-proves it on
// whole-query counts (TESTING.md).
//
// Dispatch order: a per-plan override (PlanOptions::forced_isa) beats the
// process-wide force (STMATCH_FORCE_ISA env, read once at startup, or
// force_isa() for tests), which beats CPUID auto-detection. Forcing a level
// the build or CPU cannot execute is a check_error — silently falling back
// would let CI "pass" the AVX2 sweep on a scalar build.
#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/types.hpp"

namespace stm::simd {

/// Instruction-set levels a kernel table can be compiled for, in strictly
/// increasing capability order. kScalar is always supported.
enum class IsaLevel : std::uint8_t {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};
inline constexpr std::size_t kNumIsaLevels = 3;

/// Per-run ISA selection knob (PlanOptions::forced_isa): kAuto follows the
/// process-wide dispatch, everything else pins one level.
enum class IsaChoice : std::uint8_t {
  kAuto = 0,
  kScalar = 1,
  kSse42 = 2,
  kAvx2 = 3,
};

const char* to_string(IsaLevel level);
const char* to_string(IsaChoice choice);
/// Parses "scalar" / "sse42" / "avx2" (and "auto" for choices). Returns
/// false on unknown names.
bool isa_level_from_string(const char* name, IsaLevel* out);
bool isa_choice_from_string(const char* name, IsaChoice* out);

/// Vectorized kernels store whole vectors and advance the write head by
/// popcount, so output buffers must have this many lanes of headroom past
/// the logical result size (min(an, bn) for intersections, an for
/// differences). The scalar table never touches the slack, but callers size
/// for the worst table so a forced-ISA rerun never changes allocation.
inline constexpr std::size_t kSimdOutSlack = 8;

/// One vtable of set-operation kernels, all sharing the scalar contract:
/// inputs strictly ascending, outputs strictly ascending, `out` sized by the
/// caller (>= min(an, bn) + kSimdOutSlack for intersections, >= an +
/// kSimdOutSlack for differences). All return the number of elements
/// written / counted.
struct Kernels {
  IsaLevel level = IsaLevel::kScalar;

  /// a ∩ b via (vectorized) two-pointer block merge — the balanced-size
  /// workhorse.
  std::size_t (*intersect)(const VertexId* a, std::size_t an,
                           const VertexId* b, std::size_t bn, VertexId* out);
  /// |a ∩ b| without materializing.
  std::size_t (*intersect_count)(const VertexId* a, std::size_t an,
                                 const VertexId* b, std::size_t bn);
  /// a \ b via (vectorized) block merge.
  std::size_t (*difference)(const VertexId* a, std::size_t an,
                            const VertexId* b, std::size_t bn, VertexId* out);
  /// Galloping probe of each element of `a` (the smaller side) into `b`,
  /// with a vectorized compare over the final anchor block — the skewed-size
  /// variant. Callers must pass the smaller set as `a`.
  std::size_t (*gallop_intersect)(const VertexId* a, std::size_t an,
                                  const VertexId* b, std::size_t bn,
                                  VertexId* out);
  std::size_t (*gallop_intersect_count)(const VertexId* a, std::size_t an,
                                        const VertexId* b, std::size_t bn);
  /// Galloping a \ b (elements of `a` absent from `b`); skewed-size variant,
  /// profitable when |b| >> |a|.
  std::size_t (*gallop_difference)(const VertexId* a, std::size_t an,
                                   const VertexId* b, std::size_t bn,
                                   VertexId* out);
};

/// True iff the build contains kernels for `level` AND the running CPU can
/// execute them. kScalar is always true.
bool is_supported(IsaLevel level);

/// The highest supported level (what auto-detection picks).
IsaLevel best_supported();

/// The level the unqualified kernels() table currently dispatches to
/// (forced level if a force is active, best_supported() otherwise).
IsaLevel active_isa();

/// The process-wide dispatch table. First use reads STMATCH_FORCE_ISA
/// (scalar|sse42|avx2; unset or empty = auto-detect; unknown or unsupported
/// values are a check_error).
const Kernels& kernels();

/// The table of one specific level; check_error if unsupported.
const Kernels& kernels_for(IsaLevel level);

/// Resolves a per-plan choice against the global dispatch: kAuto returns
/// kernels(), anything else the pinned level's table (check_error if that
/// level is unsupported).
const Kernels& kernels_for_choice(IsaChoice choice);

/// Overrides the process-wide dispatch (kAuto clears the override, reverting
/// to env/CPUID). Takes effect on the next kernels() call; not synchronized
/// against concurrently running engines — tests force between runs.
void force_isa(IsaChoice choice);

/// The currently forced level (kAuto when unforced).
IsaChoice forced_isa();

/// RAII force for tests: forces in the constructor, restores the previous
/// force in the destructor.
class ScopedForceIsa {
 public:
  explicit ScopedForceIsa(IsaChoice choice)
      : previous_(forced_isa()) {
    force_isa(choice);
  }
  ~ScopedForceIsa() { force_isa(previous_); }
  ScopedForceIsa(const ScopedForceIsa&) = delete;
  ScopedForceIsa& operator=(const ScopedForceIsa&) = delete;

 private:
  IsaChoice previous_;
};

/// Size-ratio threshold at which the skewed (galloping) kernels beat the
/// block-merge ones: gallop when larger/smaller >= this. Measured on the
/// micro_setops grid (EXPERIMENTS.md) — merge degrades gracefully up to
/// ~16x skew, galloping wins clearly past ~32x; 32 keeps the merge kernels
/// on every balanced workload.
inline constexpr std::size_t kGallopSkewRatio = 32;

// Internal: per-ISA tables registered by their translation units. Return
// nullptr when the build lacks the level (non-x86 target, STMATCH_SIMD=OFF,
// or a compiler without the arch flag).
namespace detail {
const Kernels* sse42_kernels();
const Kernels* avx2_kernels();
const Kernels& scalar_kernels();
}  // namespace detail

}  // namespace stm::simd
