#include "setops/bitmap_index.hpp"

namespace stm {

BitmapIndex::BitmapIndex(const Graph& g, EdgeId degree_threshold)
    : graph_(&g), num_vertices_(g.num_vertices()) {
  slot_.assign(num_vertices_, kNoSlot);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (g.degree(v) < degree_threshold) continue;
    DynamicBitset bits(num_vertices_);
    for (VertexId u : g.neighbors(v)) bits.set(u);
    slot_[v] = static_cast<std::uint32_t>(bitmaps_.size());
    bitmaps_.push_back(std::move(bits));
  }
}

void BitmapIndex::intersect_with_neighbors(SetView a, VertexId u,
                                           std::vector<VertexId>& out) const {
  out.clear();
  if (has_bitmap(u)) {
    const DynamicBitset& bits = bitmaps_[slot_[u]];
    for (VertexId v : a)
      if (bits.test(v)) out.push_back(v);
  } else {
    set_intersect_into(a, graph_->neighbors(u), out, IntersectAlgo::kMerge);
  }
}

void BitmapIndex::subtract_neighbors(SetView a, VertexId u,
                                     std::vector<VertexId>& out) const {
  out.clear();
  if (has_bitmap(u)) {
    const DynamicBitset& bits = bitmaps_[slot_[u]];
    for (VertexId v : a)
      if (!bits.test(v)) out.push_back(v);
  } else {
    set_difference_into(a, graph_->neighbors(u), out);
  }
}

}  // namespace stm
