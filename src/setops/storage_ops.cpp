#include "setops/storage_ops.hpp"

namespace stm::storage {

void cursor_intersect_into(ListCursor& cursor, stm::SetView other,
                           std::vector<VertexId>& out) {
  out.clear();
  for (const VertexId x : other) {
    cursor.seek_at_least(x);
    if (cursor.done()) return;
    if (cursor.value() == x) out.push_back(x);
  }
}

std::size_t cursor_intersect_count(ListCursor& cursor, stm::SetView other) {
  std::size_t count = 0;
  for (const VertexId x : other) {
    cursor.seek_at_least(x);
    if (cursor.done()) break;
    if (cursor.value() == x) ++count;
  }
  return count;
}

void cursor_difference_into(ListCursor& cursor, stm::SetView other,
                            std::vector<VertexId>& out) {
  out.clear();
  for (const VertexId x : other) {
    cursor.seek_at_least(x);
    if (cursor.done() || cursor.value() != x) out.push_back(x);
  }
}

std::size_t cursor_difference_count(ListCursor& cursor, stm::SetView other) {
  std::size_t count = 0;
  for (const VertexId x : other) {
    cursor.seek_at_least(x);
    if (cursor.done() || cursor.value() != x) ++count;
  }
  return count;
}

void bitset_intersect_into(const DynamicBitset& bits, stm::SetView other,
                           std::vector<VertexId>& out) {
  out.clear();
  for (const VertexId x : other)
    if (x < bits.size() && bits.test(x)) out.push_back(x);
}

std::size_t bitset_intersect_count(const DynamicBitset& bits,
                                   stm::SetView other) {
  std::size_t count = 0;
  for (const VertexId x : other)
    if (x < bits.size() && bits.test(x)) ++count;
  return count;
}

void bitset_difference_into(const DynamicBitset& bits, stm::SetView other,
                            std::vector<VertexId>& out) {
  out.clear();
  for (const VertexId x : other)
    if (x >= bits.size() || !bits.test(x)) out.push_back(x);
}

std::size_t bitset_difference_count(const DynamicBitset& bits,
                                    stm::SetView other) {
  std::size_t count = 0;
  for (const VertexId x : other)
    if (x >= bits.size() || !bits.test(x)) ++count;
  return count;
}

void adjacency_intersect_into(const CompressedGraph& g, VertexId v,
                              stm::SetView other, std::vector<VertexId>& out) {
  if (g.has_bitset(v)) {
    bitset_intersect_into(g.bitset(v), other, out);
    return;
  }
  ListCursor c = g.cursor(v);
  cursor_intersect_into(c, other, out);
}

std::size_t adjacency_intersect_count(const CompressedGraph& g, VertexId v,
                                      stm::SetView other) {
  if (g.has_bitset(v))
    return bitset_intersect_count(g.bitset(v), other);
  ListCursor c = g.cursor(v);
  return cursor_intersect_count(c, other);
}

}  // namespace stm::storage
