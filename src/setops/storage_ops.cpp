#include "setops/storage_ops.hpp"

#include <algorithm>

namespace stm::storage {

namespace {

/// Elements decoded per run in the hybrid path: four anchor blocks, so every
/// run but the last crosses anchor boundaries (the seam the PR-8 class of
/// bugs lived on) and the SIMD kernels get full-width blocks to chew on.
constexpr std::size_t kDecodeRun = 4 * kDefaultBlockSize;

/// True when per-element galloping (decode <= one anchor block per probe)
/// beats decoding runs: `other` much smaller than the compressed list.
bool prefer_seeks(const ListCursor& cursor, stm::SetView other) {
  return other.size() * stm::simd::kGallopSkewRatio < cursor.degree();
}

/// Decodes up to kDecodeRun elements from the cursor's current position.
void decode_run(ListCursor& cursor, std::vector<VertexId>& run) {
  run.clear();
  while (!cursor.done() && run.size() < kDecodeRun) {
    run.push_back(cursor.value());
    cursor.advance();
  }
}

}  // namespace

void cursor_intersect_into(ListCursor& cursor, stm::SetView other,
                           std::vector<VertexId>& out,
                           const stm::simd::Kernels* kernels) {
  out.clear();
  if (prefer_seeks(cursor, other)) {
    for (const VertexId x : other) {
      cursor.seek_at_least(x);
      if (cursor.done()) return;
      if (cursor.value() == x) out.push_back(x);
    }
    return;
  }
  const stm::simd::Kernels& k =
      kernels != nullptr ? *kernels : stm::simd::kernels();
  std::vector<VertexId> run;
  std::size_t oi = 0;
  while (oi < other.size()) {
    cursor.seek_at_least(other[oi]);
    if (cursor.done()) return;
    decode_run(cursor, run);
    // Slice of `other` overlapping [run.front(), run.back()]; elements below
    // run.front() cannot match (the seek proved the list has nothing there).
    const auto begin = other.begin() + static_cast<std::ptrdiff_t>(oi);
    const std::size_t mid = static_cast<std::size_t>(
        std::lower_bound(begin, other.end(), run.front()) - other.begin());
    const std::size_t hi = static_cast<std::size_t>(
        std::upper_bound(other.begin() + static_cast<std::ptrdiff_t>(mid),
                         other.end(), run.back()) -
        other.begin());
    const std::size_t base = out.size();
    out.resize(base + std::min(run.size(), hi - mid) +
               stm::simd::kSimdOutSlack);
    const std::size_t n = k.intersect(other.data() + mid, hi - mid,
                                      run.data(), run.size(),
                                      out.data() + base);
    out.resize(base + n);
    oi = hi;
  }
}

std::size_t cursor_intersect_count(ListCursor& cursor, stm::SetView other,
                                   const stm::simd::Kernels* kernels) {
  if (prefer_seeks(cursor, other)) {
    std::size_t count = 0;
    for (const VertexId x : other) {
      cursor.seek_at_least(x);
      if (cursor.done()) break;
      if (cursor.value() == x) ++count;
    }
    return count;
  }
  const stm::simd::Kernels& k =
      kernels != nullptr ? *kernels : stm::simd::kernels();
  std::vector<VertexId> run;
  std::size_t oi = 0, count = 0;
  while (oi < other.size()) {
    cursor.seek_at_least(other[oi]);
    if (cursor.done()) break;
    decode_run(cursor, run);
    const auto begin = other.begin() + static_cast<std::ptrdiff_t>(oi);
    const std::size_t mid = static_cast<std::size_t>(
        std::lower_bound(begin, other.end(), run.front()) - other.begin());
    const std::size_t hi = static_cast<std::size_t>(
        std::upper_bound(other.begin() + static_cast<std::ptrdiff_t>(mid),
                         other.end(), run.back()) -
        other.begin());
    count += k.intersect_count(other.data() + mid, hi - mid, run.data(),
                               run.size());
    oi = hi;
  }
  return count;
}

void cursor_difference_into(ListCursor& cursor, stm::SetView other,
                            std::vector<VertexId>& out,
                            const stm::simd::Kernels* kernels) {
  out.clear();
  if (prefer_seeks(cursor, other)) {
    for (const VertexId x : other) {
      cursor.seek_at_least(x);
      if (cursor.done() || cursor.value() != x) out.push_back(x);
    }
    return;
  }
  const stm::simd::Kernels& k =
      kernels != nullptr ? *kernels : stm::simd::kernels();
  std::vector<VertexId> run;
  std::size_t oi = 0;
  while (oi < other.size()) {
    cursor.seek_at_least(other[oi]);
    if (cursor.done()) break;
    decode_run(cursor, run);
    // other[oi, mid) sits strictly below run.front(): the seek proved the
    // list is absent there, so those elements all survive the difference.
    const auto begin = other.begin() + static_cast<std::ptrdiff_t>(oi);
    const std::size_t mid = static_cast<std::size_t>(
        std::lower_bound(begin, other.end(), run.front()) - other.begin());
    out.insert(out.end(), begin,
               other.begin() + static_cast<std::ptrdiff_t>(mid));
    const std::size_t hi = static_cast<std::size_t>(
        std::upper_bound(other.begin() + static_cast<std::ptrdiff_t>(mid),
                         other.end(), run.back()) -
        other.begin());
    const std::size_t base = out.size();
    out.resize(base + (hi - mid) + stm::simd::kSimdOutSlack);
    const std::size_t n = k.difference(other.data() + mid, hi - mid,
                                       run.data(), run.size(),
                                       out.data() + base);
    out.resize(base + n);
    oi = hi;
  }
  // Past the end of the compressed list everything in `other` survives.
  out.insert(out.end(), other.begin() + static_cast<std::ptrdiff_t>(oi),
             other.end());
}

std::size_t cursor_difference_count(ListCursor& cursor, stm::SetView other,
                                    const stm::simd::Kernels* kernels) {
  if (prefer_seeks(cursor, other)) {
    std::size_t count = 0;
    for (const VertexId x : other) {
      cursor.seek_at_least(x);
      if (cursor.done() || cursor.value() != x) ++count;
    }
    return count;
  }
  return other.size() - cursor_intersect_count(cursor, other, kernels);
}

void bitset_intersect_into(const DynamicBitset& bits, stm::SetView other,
                           std::vector<VertexId>& out) {
  out.clear();
  for (const VertexId x : other)
    if (x < bits.size() && bits.test(x)) out.push_back(x);
}

std::size_t bitset_intersect_count(const DynamicBitset& bits,
                                   stm::SetView other) {
  std::size_t count = 0;
  for (const VertexId x : other)
    if (x < bits.size() && bits.test(x)) ++count;
  return count;
}

void bitset_difference_into(const DynamicBitset& bits, stm::SetView other,
                            std::vector<VertexId>& out) {
  out.clear();
  for (const VertexId x : other)
    if (x >= bits.size() || !bits.test(x)) out.push_back(x);
}

std::size_t bitset_difference_count(const DynamicBitset& bits,
                                    stm::SetView other) {
  std::size_t count = 0;
  for (const VertexId x : other)
    if (x >= bits.size() || !bits.test(x)) ++count;
  return count;
}

void adjacency_intersect_into(const CompressedGraph& g, VertexId v,
                              stm::SetView other, std::vector<VertexId>& out) {
  if (g.has_bitset(v)) {
    bitset_intersect_into(g.bitset(v), other, out);
    return;
  }
  ListCursor c = g.cursor(v);
  cursor_intersect_into(c, other, out);
}

std::size_t adjacency_intersect_count(const CompressedGraph& g, VertexId v,
                                      stm::SetView other) {
  if (g.has_bitset(v))
    return bitset_intersect_count(g.bitset(v), other);
  ListCursor c = g.cursor(v);
  return cursor_intersect_count(c, other);
}

}  // namespace stm::storage
