#include "util/thread_pool.hpp"

#include <atomic>

#include "util/check.hpp"

namespace stm {

ThreadPool::ThreadPool(std::size_t num_threads) {
  STM_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    STM_CHECK_MSG(!stopping_, "submit on a stopping pool");
    queue_.push_back({std::move(task), next_seq_++, 0});
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::set_fault_injection(FaultInjector* injector,
                                     std::uint32_t max_requeues) {
  std::lock_guard<std::mutex> lock(mu_);
  injector_ = injector;
  max_requeues_ = max_requeues;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Dynamic chunking: enough chunks for balance, few enough for low overhead.
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  for (std::size_t c = 0; c < chunks; ++c) {
    submit([n, next, &fn] {
      for (;;) {
        std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      if (injector_ != nullptr && task.requeues < max_requeues_ &&
          injector_->should_fail(FaultSite::kPoolTask,
                                 (task.seq << 8) | task.requeues)) {
        // The worker "crashed" before touching the task: hand it back to the
        // queue for another worker. in_flight_ is untouched, so wait_idle()
        // still accounts for it.
        ++task.requeues;
        queue_.push_back(std::move(task));
        cv_task_.notify_one();
        continue;
      }
    }
    task.fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace stm
