// Minimal command-line option parser for benches and examples.
//
// Accepts `--name=value` and boolean `--flag` forms; everything else is a
// positional argument.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stm {

class Options {
 public:
  /// Parses argv; throws stm::check_error on malformed input
  /// (unknown options are kept — callers validate with `allow_only`).
  Options(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non ``--``) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Throws if any parsed option is not in `known` (catches typos).
  void allow_only(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace stm
