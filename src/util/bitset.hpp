// Dynamic bitset with population-count support.
//
// Used for per-warp idle bitmaps in the global work-stealing protocol and for
// label masks in merged multi-label sets.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace stm {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t nbits, bool value = false)
      : nbits_(nbits), words_((nbits + 63) / 64, value ? ~0ULL : 0ULL) {
    trim();
  }

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool test(std::size_t i) const {
    STM_CHECK(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool value = true) {
    STM_CHECK(i < nbits_);
    if (value)
      words_[i >> 6] |= (1ULL << (i & 63));
    else
      words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  void reset(std::size_t i) { set(i, false); }

  void clear_all() {
    for (auto& w : words_) w = 0;
  }
  void set_all() {
    for (auto& w : words_) w = ~0ULL;
    trim();
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  bool all() const { return count() == nbits_; }
  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }
  bool none() const { return !any(); }

  /// Index of the first set bit, or size() if none.
  std::size_t find_first() const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      if (words_[wi]) {
        std::size_t i = (wi << 6) +
                        static_cast<std::size_t>(__builtin_ctzll(words_[wi]));
        return i < nbits_ ? i : nbits_;
      }
    }
    return nbits_;
  }

  DynamicBitset& operator|=(const DynamicBitset& o) {
    STM_CHECK(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }
  DynamicBitset& operator&=(const DynamicBitset& o) {
    STM_CHECK(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  bool operator==(const DynamicBitset& o) const {
    return nbits_ == o.nbits_ && words_ == o.words_;
  }

  /// Raw 64-bit words (little-endian bit order within each word). Exposed so
  /// bitset-adjacency consumers can iterate set bits word-at-a-time and
  /// account resident bytes without per-bit test() calls.
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  void trim() {
    if (nbits_ & 63) words_.back() &= (1ULL << (nbits_ & 63)) - 1;
  }
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace stm
