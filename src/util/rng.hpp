// Deterministic pseudo-random number generation.
//
// All synthetic workloads in this project are seeded, so every experiment is
// bit-reproducible. splitmix64 seeds xoshiro256**, the generator recommended
// by its authors for simulation workloads.
#pragma once

#include <cstdint>
#include <vector>

namespace stm {

/// splitmix64 step; used for seeding and cheap hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// True with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace stm
