// ASCII table rendering for the benchmark harness.
//
// Every paper-table reproduction prints through this so the output format is
// uniform and diffable.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace stm {

/// Column-aligned ASCII table. Rows may be ragged; missing cells are blank.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator at the current position.
  void add_separator();

  /// Renders with padded columns, header rule, and `|` separators.
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

  /// Formats a double with `digits` decimal places.
  static std::string fmt(double v, int digits = 1);
  /// Formats an integer count with thousands separators.
  static std::string fmt_count(unsigned long long v);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace stm
