// Descriptive statistics used by the benchmark harness and dataset reports.
#pragma once

#include <cstdint>
#include <vector>

namespace stm {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
};

/// Computes the summary of a sample (copy is sorted internally).
Summary summarize(std::vector<double> sample);

/// p-th percentile (0 <= p <= 100) with linear interpolation.
/// The sample is sorted internally.
double percentile(std::vector<double> sample, double p);

/// Geometric mean; every element must be > 0.
double geometric_mean(const std::vector<double>& sample);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
std::vector<std::size_t> histogram(const std::vector<double>& sample, double lo,
                                   double hi, std::size_t bins);

}  // namespace stm
