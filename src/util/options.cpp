#include "util/options.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stm {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    STM_CHECK_MSG(!arg.empty(), "bare '--' is not a valid option");
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      values_[arg] = "true";  // boolean flag
    }
  }
}

bool Options::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Options::get(const std::string& name,
                         const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    std::int64_t v = std::stoll(it->second, &pos);
    STM_CHECK(pos == it->second.size());
    return v;
  } catch (const std::exception&) {
    STM_CHECK_MSG(false, "option --" << name << " expects an integer, got '"
                                     << it->second << "'");
  }
  return fallback;
}

double Options::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    double v = std::stod(it->second, &pos);
    STM_CHECK(pos == it->second.size());
    return v;
  } catch (const std::exception&) {
    STM_CHECK_MSG(false, "option --" << name << " expects a number, got '"
                                     << it->second << "'");
  }
  return fallback;
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  STM_CHECK_MSG(false, "option --" << name << " expects a boolean, got '" << v
                                   << "'");
  return fallback;
}

void Options::allow_only(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : values_) {
    (void)value;
    STM_CHECK_MSG(std::find(known.begin(), known.end(), name) != known.end(),
                  "unknown option --" << name);
  }
}

}  // namespace stm
