#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace stm {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1, 0);
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }
  auto rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << "| " << std::setw(static_cast<int>(widths[c])) << std::left << cell
         << ' ';
    }
    os << "|\n";
  };
  rule();
  line(header_);
  rule();
  for (const auto& r : rows_) {
    if (r.separator)
      rule();
    else
      line(r.cells);
  }
  rule();
}

std::string Table::fmt(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string Table::fmt_count(unsigned long long v) {
  std::string raw = std::to_string(v);
  std::string out;
  int since_sep = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (since_sep == 3) {
      out.push_back(',');
      since_sep = 0;
    }
    out.push_back(*it);
    ++since_sep;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace stm
