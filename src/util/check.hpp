// Checked preconditions and invariants.
//
// STM_CHECK is always on (release builds included): the matching engines are
// driven by user-supplied graphs and plans, so precondition violations must
// surface as exceptions rather than undefined behaviour.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace stm {

/// Thrown when a precondition or internal invariant is violated.
class check_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw check_error(os.str());
}
}  // namespace detail

}  // namespace stm

#define STM_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) ::stm::detail::check_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define STM_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream stm_check_os_;                               \
      stm_check_os_ << msg;                                           \
      ::stm::detail::check_fail(#expr, __FILE__, __LINE__, stm_check_os_.str()); \
    }                                                                 \
  } while (0)
