// Prefix sums.
//
// The combined multi-set operation (paper Fig. 8) locates each lane's
// (set_idx, set_ofs) through a prefix sum over set sizes; these helpers are
// the host-side equivalents.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace stm {

/// Exclusive prefix sum; result has size v.size() + 1 with the total at the
/// back (the CSR row-pointer convention).
template <typename T>
std::vector<T> exclusive_prefix_sum(const std::vector<T>& v) {
  std::vector<T> out(v.size() + 1);
  T acc{};
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = acc;
    acc += v[i];
  }
  out[v.size()] = acc;
  return out;
}

/// Inclusive prefix sum, same length as the input.
template <typename T>
std::vector<T> inclusive_prefix_sum(const std::vector<T>& v) {
  std::vector<T> out(v.size());
  T acc{};
  for (std::size_t i = 0; i < v.size(); ++i) {
    acc += v[i];
    out[i] = acc;
  }
  return out;
}

/// Given an exclusive prefix sum `scan` (size n+1) and a flat index
/// `pos < scan.back()`, return the segment index i with
/// scan[i] <= pos < scan[i+1].  This is the `set_idx` computation of
/// paper Fig. 8.
template <typename T>
std::size_t segment_of(const std::vector<T>& scan, T pos) {
  STM_CHECK(scan.size() >= 2);
  STM_CHECK(pos < scan.back());
  // Upper-bound binary search.
  std::size_t lo = 0, hi = scan.size() - 1;
  while (lo + 1 < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (scan[mid] <= pos)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace stm
