// Fixed-size thread pool used by the host-parallel execution paths
// (STMatch host engine, Dryadic-style baseline).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stm {

/// A fixed pool of worker threads consuming a FIFO task queue.
///
/// Tasks must not throw; exceptions escaping a task terminate the program
/// (matching the Core Guidelines advice to handle errors where they occur —
/// the engines catch their own errors and return status instead).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace stm
