// Fixed-size thread pool used by the host-parallel execution paths
// (STMatch host engine, Dryadic-style baseline) and the service dispatcher.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/fault.hpp"

namespace stm {

/// A fixed pool of worker threads consuming a FIFO task queue.
///
/// Tasks must not throw; exceptions escaping a task terminate the program
/// (matching the Core Guidelines advice to handle errors where they occur —
/// the engines catch their own errors and return status instead).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Enables chaos at FaultSite::kPoolTask: a popped task for which the
  /// injector fires is pushed back to the tail instead of running (modeling
  /// a worker crash before the task did any work). Requeues are bounded per
  /// task by `max_requeues`; past the bound the task runs anyway, so no task
  /// is ever lost and wait_idle() always terminates. The injector must
  /// outlive the pool (or be cleared with nullptr first). Decisions are
  /// keyed by (submit sequence number, requeue count), so they are
  /// deterministic per pool regardless of worker interleaving.
  void set_fault_injection(FaultInjector* injector, std::uint32_t max_requeues);

 private:
  struct Task {
    std::function<void()> fn;
    std::uint64_t seq = 0;
    std::uint32_t requeues = 0;
  };

  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<Task> queue_;
  std::size_t in_flight_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  FaultInjector* injector_ = nullptr;  // guarded by mu_
  std::uint32_t max_requeues_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace stm
