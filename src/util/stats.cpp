#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace stm {

Summary summarize(std::vector<double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  std::sort(sample.begin(), sample.end());
  s.min = sample.front();
  s.max = sample.back();
  double sum = 0.0;
  for (double v : sample) sum += v;
  s.mean = sum / static_cast<double>(sample.size());
  const std::size_t n = sample.size();
  s.median = (n % 2 == 1) ? sample[n / 2]
                          : 0.5 * (sample[n / 2 - 1] + sample[n / 2]);
  double ss = 0.0;
  for (double v : sample) ss += (v - s.mean) * (v - s.mean);
  s.stddev = n > 1 ? std::sqrt(ss / static_cast<double>(n - 1)) : 0.0;
  return s;
}

double percentile(std::vector<double> sample, double p) {
  STM_CHECK(!sample.empty());
  STM_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample[0];
  const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sample.size()) return sample.back();
  return sample[lo] * (1.0 - frac) + sample[lo + 1] * frac;
}

double geometric_mean(const std::vector<double>& sample) {
  STM_CHECK(!sample.empty());
  double log_sum = 0.0;
  for (double v : sample) {
    STM_CHECK_MSG(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

std::vector<std::size_t> histogram(const std::vector<double>& sample, double lo,
                                   double hi, std::size_t bins) {
  STM_CHECK(bins > 0);
  STM_CHECK(hi > lo);
  std::vector<std::size_t> h(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : sample) {
    auto b = static_cast<std::int64_t>((v - lo) / width);
    b = std::clamp<std::int64_t>(b, 0, static_cast<std::int64_t>(bins) - 1);
    ++h[static_cast<std::size_t>(b)];
  }
  return h;
}

}  // namespace stm
