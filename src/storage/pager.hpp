// Clock-eviction resident-page cache with fault-injected, fail-closed reads.
//
// The pager is the only component that touches spill-file bytes. Every fetch
// revalidates length + CRC-32 after the (fault-injectable) raw read, so a
// short or garbled read — injected via FaultSite::kPageRead or real — is
// detected before a single byte is decoded. Failed reads retry with a bumped
// attempt key up to FaultConfig::max_unit_attempts (the §9 budget), then
// fail closed with check_error: a corrupt page is never served.
//
// Pages are handed out as shared_ptr<const string>, so eviction can drop a
// frame while a reader still decodes from it; the cache's resident
// accounting covers only frames it holds. Eviction is clock (second chance)
// over the page table, strictly bounded by budget_bytes — except that the
// single page being served is always allowed to be resident, so any budget
// (even one smaller than one page) makes progress.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "storage/pagefile.hpp"

namespace stm::storage {

struct PagerStats {
  std::uint64_t hits = 0;
  std::uint64_t faults = 0;      // page misses served from the file
  std::uint64_t evictions = 0;
  std::uint64_t injected_read_faults = 0;  // kPageRead firings observed
  std::uint64_t resident_bytes = 0;        // frames currently held
};

class PageCache {
 public:
  /// `budget_bytes` of 0 means unlimited (every touched page stays
  /// resident). `fault` carries the kPageRead schedule.
  PageCache(PageFile file, std::uint64_t budget_bytes,
            const FaultConfig& fault);

  const PageFile& file() const { return file_; }
  std::uint64_t budget_bytes() const { return budget_; }

  /// Returns page `page`'s validated payload, faulting it in if needed.
  /// Throws check_error after the retry budget is exhausted.
  std::shared_ptr<const std::string> get_page(std::uint32_t page);

  PagerStats stats() const;

 private:
  void evict_locked(std::uint32_t keep_page);
  std::shared_ptr<const std::string> fetch_validated(std::uint32_t page);

  PageFile file_;
  std::uint64_t budget_;
  FaultInjector injector_;

  mutable std::mutex mu_;
  struct Frame {
    std::shared_ptr<const std::string> data;  // null = not resident
    bool referenced = false;                  // clock second-chance bit
  };
  std::vector<Frame> frames_;
  std::uint32_t clock_hand_ = 0;
  std::uint64_t resident_bytes_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> faults_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace stm::storage
