// GraphStore: the pluggable storage backend behind the GraphView seam.
//
// A store owns one immutable graph in one of four representations and
// implements AdjacencySource, so a GraphView over it is indistinguishable —
// to every engine — from a view over a raw CSR:
//
//   kUncompressed     the plain Graph (shared), zero overhead
//   kCompressed       delta/varint blob with skip anchors (compressed.hpp)
//   kCompressedBitset kCompressed + bitset rows for dense hub vertices
//   kSpill            the encoded blob lives in a page file on disk; only a
//                     clock-evicted page cache under memory_budget_bytes
//                     plus the index is resident (pagefile.hpp, pager.hpp)
//
// Engines hold neighbor spans across deep recursion, so decoded lists must
// stay stable for a whole engine run: first-touch decode publishes a
// per-vertex heap list (append-only, lock-striped), and the decode cache is
// only reclaimed by trim_decoded() while no Lease is outstanding. The spill
// page cache underneath is strictly budget-bounded at all times (decoded
// lists copy out of page frames); the decode cache is per-run working
// memory, reported separately and reclaimed between runs.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/fault.hpp"
#include "graph/graph.hpp"
#include "graph/view.hpp"
#include "storage/compressed.hpp"
#include "storage/pager.hpp"

namespace stm::storage {

enum class Backend : std::uint8_t {
  kAuto = 0,         // pick by degree histogram + budget (see choose_backend)
  kUncompressed,
  kCompressed,
  kCompressedBitset,
  kSpill,
};

const char* to_string(Backend b);
/// Parses the to_string form ("auto", "uncompressed", "compressed",
/// "compressed_bitset", "spill"); returns false on unknown names.
bool backend_from_string(std::string_view name, Backend& out);

/// Per-graph storage policy, carried in SessionConfig.
struct StoragePolicy {
  Backend backend = Backend::kUncompressed;
  /// Neighbors per skip-anchor block.
  std::uint32_t block_size = kDefaultBlockSize;
  /// Degree threshold for bitset rows (kCompressedBitset only); 0 = auto
  /// (max(block_size, n/8), where a bitset row stops costing more than the
  /// varint list it replaces).
  EdgeId bitset_min_degree = 0;
  /// Hard bound on the spill tier's resident page cache; 0 = unlimited.
  /// Ignored by non-spill backends.
  std::uint64_t memory_budget_bytes = 0;
  /// Spill page capacity in bytes.
  std::uint32_t page_size = kDefaultPageSize;
  /// Directory for spill files; empty = the system temp directory. The
  /// store deletes its file on destruction.
  std::string spill_dir;
  /// Fault schedule for the pager (FaultSite::kPageRead).
  FaultConfig fault;
};

/// Deterministic auto selection: spill when a budget is set, bitset rows
/// when the degree histogram has hubs at or above the auto threshold,
/// plain compressed otherwise (empty graphs stay uncompressed).
Backend choose_backend(const Graph& g, const StoragePolicy& policy);

/// Point-in-time counters/footprint of one store.
struct StorageStats {
  Backend backend = Backend::kUncompressed;
  /// What the uncompressed CSR holds (or would hold).
  std::uint64_t raw_bytes = 0;
  /// Bytes the store keeps resident: CSR (uncompressed), blob + index +
  /// bitsets (compressed), index + page cache frames (spill). Excludes the
  /// decode cache, reported separately.
  std::uint64_t resident_bytes = 0;
  /// Total encoded representation (resident or on disk): the denominator of
  /// compression_ratio.
  std::uint64_t encoded_bytes = 0;
  /// raw_bytes / encoded_bytes (1.0 for uncompressed).
  double compression_ratio = 1.0;
  /// Lease-scoped decoded-list working memory currently held.
  std::uint64_t decoded_cache_bytes = 0;
  std::uint64_t decode_ops = 0;
  std::uint64_t num_bitset_rows = 0;
  /// Spill only.
  std::uint64_t page_faults = 0;
  std::uint64_t page_hits = 0;
  std::uint64_t page_evictions = 0;
  std::uint64_t injected_page_faults = 0;
  std::uint64_t file_bytes = 0;
};

class GraphStore final : public AdjacencySource {
 public:
  /// Encodes `g` under `policy` (kAuto resolved here). For non-uncompressed
  /// backends the store drops its Graph reference after encoding — callers
  /// that also drop theirs get true out-of-core serving.
  static std::shared_ptr<GraphStore> build(std::shared_ptr<const Graph> g,
                                           const StoragePolicy& policy);
  static std::shared_ptr<GraphStore> build(Graph g,
                                           const StoragePolicy& policy) {
    return build(std::make_shared<const Graph>(std::move(g)), policy);
  }

  ~GraphStore() override;
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  Backend backend() const { return backend_; }
  const StoragePolicy& policy() const { return policy_; }

  /// A view reading through this store. Hold a Lease for the duration of
  /// any engine run over the view.
  GraphView view() const { return GraphView(*this); }

  /// Blocks trim_decoded() while alive; nestable and movable.
  class Lease {
   public:
    Lease() = default;
    explicit Lease(const GraphStore* store);
    Lease(Lease&& o) noexcept : store_(o.store_) { o.store_ = nullptr; }
    Lease& operator=(Lease&& o) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }
    void release();

   private:
    const GraphStore* store_ = nullptr;
  };
  Lease lease() const { return Lease(this); }

  /// Frees the decoded-list cache. Returns false (and does nothing) while
  /// any Lease is outstanding — spans handed to a running engine stay valid.
  bool trim_decoded() const;

  StorageStats stats() const;

  // AdjacencySource:
  VertexId source_num_vertices() const override { return n_; }
  std::span<const VertexId> source_neighbors(VertexId v) const override;
  EdgeId source_degree(VertexId v) const override;
  bool source_has_edge(VertexId u, VertexId v) const override;
  EdgeId source_num_adjacency_entries() const override { return m2_; }
  const Label* source_labels() const override;

 private:
  GraphStore() = default;
  void decode_vertex(VertexId v, std::vector<VertexId>& out) const;

  Backend backend_ = Backend::kUncompressed;
  StoragePolicy policy_;
  VertexId n_ = 0;
  EdgeId m2_ = 0;
  std::uint64_t raw_bytes_ = 0;

  // kUncompressed.
  std::shared_ptr<const Graph> graph_;

  // kCompressed / kCompressedBitset.
  CompressedGraph comp_;

  // kSpill.
  std::unique_ptr<PageCache> pager_;
  std::string spill_path_;
  bool owns_spill_file_ = false;

  // Decode cache (compressed + spill): per-vertex stable heap lists,
  // published once, freed only via trim_decoded() when no lease is held.
  struct DecodeSlot {
    std::atomic<const std::vector<VertexId>*> list{nullptr};
  };
  static constexpr std::size_t kStripes = 32;
  mutable std::unique_ptr<DecodeSlot[]> slots_;
  mutable std::array<std::mutex, kStripes> stripes_;
  mutable std::mutex lease_mu_;
  mutable std::int64_t leases_ = 0;  // guarded by lease_mu_
  mutable std::atomic<std::uint64_t> decoded_bytes_{0};
  mutable std::atomic<std::uint64_t> decode_ops_{0};
};

}  // namespace stm::storage
