#include "storage/compressed.hpp"

#include <algorithm>

namespace stm::storage {

void bitset_to_list(const DynamicBitset& bits, std::vector<VertexId>& out) {
  const auto& words = bits.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const int bit = __builtin_ctzll(w);
      out.push_back(static_cast<VertexId>((wi << 6) + static_cast<std::size_t>(bit)));
      w &= w - 1;
    }
  }
}

CompressedGraph::CompressedGraph(const Graph& g, std::uint32_t block_size,
                                 EdgeId bitset_min_degree)
    : n_(g.num_vertices()),
      m2_(g.num_adjacency_entries()),
      block_size_(block_size) {
  STM_CHECK(block_size_ > 0);
  offsets_.resize(static_cast<std::size_t>(n_) + 1, 0);
  degrees_.resize(n_, 0);
  if (g.is_labeled()) labels_ = g.labels();
  const bool use_bitsets = bitset_min_degree > 0;
  if (use_bitsets) bitset_slot_.assign(n_, -1);
  for (VertexId v = 0; v < n_; ++v) {
    const auto nbrs = g.neighbors(v);
    degrees_[v] = static_cast<std::uint32_t>(nbrs.size());
    if (use_bitsets && nbrs.size() >= bitset_min_degree) {
      bitset_slot_[v] = static_cast<std::int32_t>(bitsets_.size());
      DynamicBitset row(n_);
      for (const VertexId u : nbrs) row.set(u);
      bitsets_.push_back(std::move(row));
    } else {
      encode_adjacency(nbrs.data(), nbrs.size(), block_size_, blob_);
    }
    offsets_[v + 1] = blob_.size();
  }
  blob_.shrink_to_fit();
}

void CompressedGraph::decode_into(VertexId v, std::vector<VertexId>& out) const {
  STM_CHECK(v < n_);
  if (has_bitset(v)) {
    bitset_to_list(bitset(v), out);
    return;
  }
  ListCursor c = cursor(v);
  c.decode_remaining(out);
}

bool CompressedGraph::has_edge(VertexId u, VertexId v) const {
  STM_CHECK(u < n_ && v < n_);
  if (has_bitset(u)) return bitset(u).test(v);
  if (has_bitset(v)) return bitset(v).test(u);  // undirected symmetry
  // Seek on the lower-degree endpoint.
  if (degrees_[v] < degrees_[u]) std::swap(u, v);
  ListCursor c = cursor(u);
  c.seek_at_least(v);
  return !c.done() && c.value() == v;
}

CompressedStats CompressedGraph::stats() const {
  CompressedStats s;
  s.raw_bytes = (static_cast<std::uint64_t>(n_) + 1) * sizeof(EdgeId) +
                static_cast<std::uint64_t>(m2_) * sizeof(VertexId) +
                (labels_.empty() ? 0 : static_cast<std::uint64_t>(n_));
  s.blob_bytes = blob_.capacity();
  for (const auto& b : bitsets_)
    s.bitset_bytes += b.words().capacity() * sizeof(std::uint64_t);
  s.num_bitset_rows = bitsets_.size();
  s.index_bytes = offsets_.capacity() * sizeof(std::uint64_t) +
                  degrees_.capacity() * sizeof(std::uint32_t) +
                  labels_.capacity() * sizeof(Label) +
                  bitset_slot_.capacity() * sizeof(std::int32_t);
  return s;
}

}  // namespace stm::storage
