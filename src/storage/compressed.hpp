// Compressed in-memory adjacency: delta/varint blob + optional bitset rows.
//
// CompressedGraph holds every neighbor list in one contiguous encoded blob
// (per-vertex slices located by a u64 offset array; format in encoding.hpp),
// plus — when enabled — a DynamicBitset row per vertex whose degree is at or
// above a threshold. Bitset rows replace the varint payload for those
// vertices: at n/8 bytes a row is no larger than a varint list once the
// average gap drops below ~8, and it buys O(1) has_edge probes on exactly
// the hub vertices where binary search hurts (the X-GMiner vertex_set idiom).
//
// The structure is immutable after build and safe for concurrent readers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"
#include "storage/encoding.hpp"
#include "util/bitset.hpp"

namespace stm::storage {

/// Footprint breakdown of one compressed graph (bytes are actual resident
/// heap, i.e. vector capacities).
struct CompressedStats {
  std::uint64_t raw_bytes = 0;      // what the uncompressed CSR would hold
  std::uint64_t blob_bytes = 0;     // varint payload + anchor tables
  std::uint64_t bitset_bytes = 0;   // dense-row bitsets
  std::uint64_t index_bytes = 0;    // offsets + degrees + labels + slots
  std::uint64_t num_bitset_rows = 0;

  std::uint64_t total_bytes() const {
    return blob_bytes + bitset_bytes + index_bytes;
  }
  /// raw / compressed; > 1 means the encoding won.
  double compression_ratio() const {
    const std::uint64_t t = total_bytes();
    return t == 0 ? 1.0 : static_cast<double>(raw_bytes) / static_cast<double>(t);
  }
};

class CompressedGraph {
 public:
  CompressedGraph() = default;

  /// Encodes `g`. `bitset_min_degree` of 0 disables bitset rows; otherwise
  /// vertices with degree >= the threshold get a bitset row instead of a
  /// varint slice.
  CompressedGraph(const Graph& g, std::uint32_t block_size,
                  EdgeId bitset_min_degree);

  VertexId num_vertices() const { return n_; }
  EdgeId num_adjacency_entries() const { return m2_; }
  std::uint32_t block_size() const { return block_size_; }
  EdgeId degree(VertexId v) const {
    STM_CHECK(v < n_);
    return degrees_[v];
  }
  bool is_labeled() const { return !labels_.empty(); }
  const Label* labels_data() const {
    return labels_.empty() ? nullptr : labels_.data();
  }

  bool has_bitset(VertexId v) const {
    STM_CHECK(v < n_);
    return !bitset_slot_.empty() && bitset_slot_[v] >= 0;
  }
  const DynamicBitset& bitset(VertexId v) const {
    STM_CHECK(has_bitset(v));
    return bitsets_[static_cast<std::size_t>(bitset_slot_[v])];
  }

  /// Encoded byte slice of v's list; empty for bitset-row vertices.
  std::pair<const std::uint8_t*, const std::uint8_t*> list_bytes(
      VertexId v) const {
    STM_CHECK(v < n_);
    return {blob_.data() + offsets_[v], blob_.data() + offsets_[v + 1]};
  }

  /// Cursor over v's encoded list; precondition: !has_bitset(v).
  ListCursor cursor(VertexId v) const {
    STM_CHECK(!has_bitset(v));
    auto [b, e] = list_bytes(v);
    return ListCursor(b, e, block_size_);
  }

  /// Appends v's sorted neighbors to `out` (decodes varints or walks the
  /// bitset words).
  void decode_into(VertexId v, std::vector<VertexId>& out) const;

  /// Adjacency test without materializing either list: O(1) when either
  /// endpoint has a bitset row (undirected symmetry), anchored seek
  /// otherwise (on the lower-degree endpoint).
  bool has_edge(VertexId u, VertexId v) const;

  CompressedStats stats() const;

 private:
  VertexId n_ = 0;
  EdgeId m2_ = 0;  // directed adjacency entries
  std::uint32_t block_size_ = kDefaultBlockSize;
  std::vector<std::uint8_t> blob_;
  std::vector<std::uint64_t> offsets_;   // n+1; slice of v = [off[v], off[v+1])
  std::vector<std::uint32_t> degrees_;   // n
  std::vector<Label> labels_;            // empty = unlabeled
  std::vector<std::int32_t> bitset_slot_;  // empty when bitsets disabled
  std::vector<DynamicBitset> bitsets_;
};

/// Appends the set bits of `bits` (ascending) to `out`.
void bitset_to_list(const DynamicBitset& bits, std::vector<VertexId>& out);

}  // namespace stm::storage
