#include "storage/encoding.hpp"

#include <cstring>

namespace stm::storage {

void append_varint(std::uint32_t value, std::vector<std::uint8_t>& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

namespace {

std::uint32_t read_varint_checked(const std::uint8_t*& p,
                                  const std::uint8_t* end) {
  std::uint32_t value = 0;
  int shift = 0;
  for (;;) {
    STM_CHECK_MSG(p < end, "storage: truncated varint in encoded adjacency");
    const std::uint8_t byte = *p++;
    STM_CHECK_MSG(shift < 32, "storage: varint overflow in encoded adjacency");
    value |= static_cast<std::uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

std::uint32_t read_u32le(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

void write_u32le(std::uint8_t* p, std::uint32_t v) {
  std::memcpy(p, &v, sizeof v);
}

}  // namespace

std::size_t encode_adjacency(const VertexId* list, std::size_t degree,
                             std::uint32_t block_size,
                             std::vector<std::uint8_t>& out) {
  STM_CHECK(block_size > 0);
  const std::size_t start = out.size();
  append_varint(static_cast<std::uint32_t>(degree), out);
  const bool anchored = degree > block_size;
  const std::size_t num_blocks =
      anchored ? (degree + block_size - 1) / block_size : (degree > 0 ? 1 : 0);
  std::size_t anchor_base = 0;
  if (anchored) {
    anchor_base = out.size();
    out.resize(out.size() + num_blocks * kAnchorEntryBytes);
  }
  const std::size_t payload_base = out.size();
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t lo = b * block_size;
    const std::size_t hi = std::min(degree, lo + block_size);
    // The block's first value is stored absolute, so the in-block gap checks
    // below never compare it against the previous block's last element —
    // check the boundary here or an unsorted input at exactly a block seam
    // would encode silently with a non-monotone anchor table.
    STM_CHECK_MSG(lo == 0 || list[lo] > list[lo - 1],
                  "storage: adjacency list must be sorted strictly ascending");
    if (anchored) {
      std::uint8_t* entry = out.data() + anchor_base + b * kAnchorEntryBytes;
      write_u32le(entry, list[lo]);
      write_u32le(entry + 4,
                  static_cast<std::uint32_t>(out.size() - payload_base));
    }
    append_varint(list[lo], out);
    for (std::size_t i = lo + 1; i < hi; ++i) {
      STM_CHECK_MSG(list[i] > list[i - 1],
                    "storage: adjacency list must be sorted strictly ascending");
      append_varint(list[i] - list[i - 1], out);
    }
  }
  return out.size() - start;
}

ListCursor::ListCursor(const std::uint8_t* begin, const std::uint8_t* end,
                       std::uint32_t block_size)
    : end_(end), block_size_(block_size) {
  STM_CHECK(block_size > 0);
  const std::uint8_t* p = begin;
  degree_ = read_varint_checked(p, end);
  if (degree_ == 0) {
    idx_ = 0;
    payload_ = pos_ = p;
    num_blocks_ = 0;
    return;
  }
  if (degree_ > block_size_) {
    num_blocks_ = (degree_ + block_size_ - 1) / block_size_;
    anchors_ = p;
    STM_CHECK_MSG(p + num_blocks_ * kAnchorEntryBytes <= end,
                  "storage: truncated anchor table");
    payload_ = p + num_blocks_ * kAnchorEntryBytes;
  } else {
    num_blocks_ = 1;
    payload_ = p;
  }
  pos_ = payload_;
  idx_ = 0;
  cur_ = read_varint();
}

std::uint32_t ListCursor::read_varint() {
  return read_varint_checked(pos_, end_);
}

std::uint32_t ListCursor::anchor_first_value(std::uint32_t block) const {
  return read_u32le(anchors_ + block * kAnchorEntryBytes);
}

std::uint32_t ListCursor::anchor_offset(std::uint32_t block) const {
  return read_u32le(anchors_ + block * kAnchorEntryBytes + 4);
}

void ListCursor::advance() {
  STM_CHECK(idx_ < degree_);
  ++idx_;
  if (idx_ >= degree_) return;
  const std::uint32_t gap_or_abs = read_varint();
  // The first element of each block is absolute; the rest are gaps.
  if (idx_ % block_size_ == 0 && anchors_ != nullptr) {
    cur_ = gap_or_abs;
  } else {
    cur_ += gap_or_abs;
  }
}

void ListCursor::jump_to_block(std::uint32_t block) {
  STM_CHECK(block < num_blocks_);
  pos_ = payload_ + (anchors_ != nullptr ? anchor_offset(block) : 0);
  idx_ = block * block_size_;
  cur_ = read_varint();
}

void ListCursor::seek_at_least(VertexId x) {
  if (degree_ == 0) return;
  // The target lives at or after the start of the last block whose first
  // value is <= x (all earlier blocks hold strictly smaller elements).
  std::uint32_t block = 0;
  if (anchors_ != nullptr) {
    std::uint32_t lo = 0, hi = num_blocks_;
    while (lo + 1 < hi) {
      const std::uint32_t mid = (lo + hi) / 2;
      if (anchor_first_value(mid) <= x)
        lo = mid;
      else
        hi = mid;
    }
    block = lo;
  }
  // Reuse the current position only when it sits in the target block at or
  // before x; otherwise (done, wrong block, or past x) restart at the block.
  const bool reusable = !done() && idx_ / block_size_ == block && cur_ <= x;
  if (!reusable) jump_to_block(block);
  while (!done() && cur_ < x) advance();
}

void ListCursor::decode_remaining(std::vector<VertexId>& out) {
  while (!done()) {
    out.push_back(cur_);
    advance();
  }
}

void decode_adjacency(const std::uint8_t* begin, const std::uint8_t* end,
                      std::uint32_t block_size, std::vector<VertexId>& out) {
  out.clear();
  ListCursor c(begin, end, block_size);
  out.reserve(c.degree());
  c.decode_remaining(out);
}

}  // namespace stm::storage
