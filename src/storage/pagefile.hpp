// Page-granular on-disk layout for the spill tier.
//
// A page file holds every vertex's encoded adjacency (format: encoding.hpp)
// packed into fixed-capacity pages, plus a fully resident index (degrees,
// vertex -> (page, offset) locations, labels, per-page CRCs). Reads are
// page-granular: the pager faults a whole page in, validates its length and
// CRC-32 (the persist codec's zlib-compatible CRC), and only then serves
// vertex slices out of it — a torn or garbled read is always detected before
// any byte is decoded.
//
// File layout (all scalars little-endian, persist::BinaryWriter conventions):
//
//   magic "STMPAGE1" (8 bytes)
//   u32 index_len | u32 crc32(index) | index payload
//   page payloads, back to back, at the offsets recorded in the index
//
// Index payload:
//   u32 version (1) | u32 page_size | u32 block_size
//   u32 n | u64 m2 (directed adjacency entries) | u8 labeled
//   [n bytes labels, when labeled]
//   n x u32 degree
//   n x { u32 page, u32 offset_in_page }
//   u32 num_pages
//   num_pages x { u64 file_offset, u32 payload_len, u32 crc32 }
//
// Vertices are packed in ascending order; a vertex's bytes never span pages
// (a vertex larger than page_size gets a private oversized page), so one
// page read always suffices to decode one vertex.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"
#include "storage/encoding.hpp"

namespace stm::storage {

inline constexpr char kPageFileMagic[8] = {'S', 'T', 'M', 'P',
                                           'A', 'G', 'E', '1'};
inline constexpr std::uint32_t kPageFileVersion = 1;
inline constexpr std::uint32_t kDefaultPageSize = 1u << 16;

/// Location of one vertex's encoded bytes.
struct VertexLocation {
  std::uint32_t page = 0;
  std::uint32_t offset = 0;  // byte offset within the page payload
};

/// One page-table entry.
struct PageEntry {
  std::uint64_t file_offset = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t crc = 0;
};

/// Encodes `g` into a page file at `path`. Returns the total file size.
std::uint64_t write_page_file(const std::string& path, const Graph& g,
                              std::uint32_t page_size, std::uint32_t block_size);

/// Read side: resident index + raw (unvalidated) page reads. Validation is
/// the pager's job so fault injection can corrupt bytes between the read and
/// the check. Not internally synchronized; the pager serializes access.
class PageFile {
 public:
  PageFile() = default;
  ~PageFile();
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;
  PageFile(PageFile&& o) noexcept;
  PageFile& operator=(PageFile&& o) noexcept;

  /// Opens and parses the index; throws check_error on any malformation.
  static PageFile open(const std::string& path);

  VertexId num_vertices() const { return n_; }
  EdgeId num_adjacency_entries() const { return m2_; }
  std::uint32_t page_size() const { return page_size_; }
  std::uint32_t block_size() const { return block_size_; }
  std::uint32_t num_pages() const {
    return static_cast<std::uint32_t>(pages_.size());
  }
  bool is_labeled() const { return !labels_.empty(); }
  const Label* labels_data() const {
    return labels_.empty() ? nullptr : labels_.data();
  }
  std::uint32_t degree(VertexId v) const { return degrees_[v]; }
  const std::vector<std::uint32_t>& degrees() const { return degrees_; }
  VertexLocation location(VertexId v) const { return vloc_[v]; }
  const PageEntry& page_entry(std::uint32_t page) const {
    return pages_[page];
  }
  /// Total bytes of page payloads (the encoded adjacency on disk).
  std::uint64_t payload_bytes() const;
  /// Resident footprint of the index arrays.
  std::uint64_t index_bytes() const;
  std::uint64_t file_bytes() const { return file_bytes_; }

  /// Reads page `page`'s payload into `out` (resized to the stored length).
  /// Returns false on a short read (out keeps whatever was read). Performs
  /// no CRC validation — the caller does, after fault injection.
  bool read_page(std::uint32_t page, std::string& out) const;

 private:
  std::FILE* file_ = nullptr;
  VertexId n_ = 0;
  EdgeId m2_ = 0;
  std::uint32_t page_size_ = kDefaultPageSize;
  std::uint32_t block_size_ = kDefaultBlockSize;
  std::uint64_t file_bytes_ = 0;
  std::vector<Label> labels_;
  std::vector<std::uint32_t> degrees_;
  std::vector<VertexLocation> vloc_;
  std::vector<PageEntry> pages_;
};

}  // namespace stm::storage
