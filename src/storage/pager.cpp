#include "storage/pager.hpp"

#include <sstream>

#include "persist/codec.hpp"
#include "util/check.hpp"

namespace stm::storage {

PageCache::PageCache(PageFile file, std::uint64_t budget_bytes,
                     const FaultConfig& fault)
    : file_(std::move(file)), budget_(budget_bytes), injector_(fault) {
  frames_.resize(file_.num_pages());
}

std::shared_ptr<const std::string> PageCache::fetch_validated(
    std::uint32_t page) {
  const PageEntry& entry = file_.page_entry(page);
  const std::uint32_t attempts = injector_.config().max_unit_attempts;
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    std::string bytes;
    const bool io_ok = file_.read_page(page, bytes);
    // The injection point sits between the raw read and validation, exactly
    // where a torn read or bit-rot would land. The key folds the attempt in
    // so a transient fault clears deterministically on retry.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(page) << 8) ^ attempt;
    if (injector_.should_fail(FaultSite::kPageRead, key)) {
      if (key & 1) {
        bytes.resize(bytes.size() / 2);  // short read
      } else if (!bytes.empty()) {
        bytes[bytes.size() / 2] ^= 0x40;  // garbled byte
      }
    }
    if (io_ok && bytes.size() == entry.payload_len &&
        persist::crc32(bytes) == entry.crc) {
      return std::make_shared<const std::string>(std::move(bytes));
    }
  }
  std::ostringstream os;
  os << "storage: page " << page << " failed validation after " << attempts
     << " read attempts (short read or CRC mismatch); failing closed";
  throw check_error(os.str());
}

void PageCache::evict_locked(std::uint32_t keep_page) {
  if (budget_ == 0) return;
  std::size_t resident = 0;
  for (const auto& f : frames_)
    if (f.data) ++resident;
  // Clock sweep: clear reference bits until a victim turns up. Bounded by
  // 2 passes over the table per eviction; always keeps `keep_page`.
  while (resident_bytes_ > budget_ && resident > 1) {
    for (std::size_t step = 0; step < 2 * frames_.size(); ++step) {
      Frame& f = frames_[clock_hand_];
      const std::uint32_t victim = clock_hand_;
      clock_hand_ = (clock_hand_ + 1) % static_cast<std::uint32_t>(frames_.size());
      if (!f.data || victim == keep_page) continue;
      if (f.referenced) {
        f.referenced = false;
        continue;
      }
      resident_bytes_ -= f.data->size();
      f.data.reset();
      --resident;
      evictions_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
}

std::shared_ptr<const std::string> PageCache::get_page(std::uint32_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[page];
  if (f.data) {
    f.referenced = true;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return f.data;
  }
  faults_.fetch_add(1, std::memory_order_relaxed);
  auto data = fetch_validated(page);
  f.data = data;
  f.referenced = true;
  resident_bytes_ += data->size();
  evict_locked(page);
  return data;
}

PagerStats PageCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PagerStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.faults = faults_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.injected_read_faults = injector_.injected(FaultSite::kPageRead);
  s.resident_bytes = resident_bytes_;
  return s;
}

}  // namespace stm::storage
