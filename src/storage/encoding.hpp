// Per-vertex delta/varint adjacency encoding with skip anchors.
//
// Each sorted neighbor list is encoded independently so any vertex can be
// decoded without touching its neighbors' bytes (the property the spill tier
// relies on to place vertices into pages):
//
//   [varint degree]
//   [anchor table]    only when degree > block_size: one fixed-width entry
//                     {u32 first_value, u32 payload_offset} per block of
//                     block_size neighbors, little-endian, including block 0
//   [payload]         per block: the first neighbor as an absolute varint,
//                     then gaps (v[i] - v[i-1], always >= 1) as varints
//
// Every block restarts from an absolute value, so ListCursor::seek_at_least
// can binary-search the anchor table and decode at most one block instead of
// the whole list — the "skip anchor" that keeps galloping intersection
// sub-linear on compressed lists. Short lists (degree <= block_size) skip the
// anchor table entirely; their payload is a single block.
//
// All reads are bounds-checked against the slice end so corrupt bytes (a
// torn spill page that slipped past CRC, a bug) surface as check_error, never
// out-of-bounds reads.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "util/check.hpp"

namespace stm::storage {

/// Neighbors per skip-anchor block. A power of two keeps block math cheap;
/// 32 matches the warp width the engines chunk by and keeps the anchor table
/// under 3% of payload for uniform lists.
inline constexpr std::uint32_t kDefaultBlockSize = 32;

/// Bytes per anchor entry: u32 first_value + u32 payload_offset.
inline constexpr std::size_t kAnchorEntryBytes = 8;

/// Appends one LEB128 varint (7 bits per byte, low first) to `out`.
void append_varint(std::uint32_t value, std::vector<std::uint8_t>& out);

/// Appends the encoded form of one sorted-ascending neighbor list to `out`.
/// Returns the number of bytes appended.
std::size_t encode_adjacency(const VertexId* list, std::size_t degree,
                             std::uint32_t block_size,
                             std::vector<std::uint8_t>& out);

/// Streaming decoder over one encoded list slice [begin, end).
///
/// The cursor starts positioned on the first neighbor (or done() for empty
/// lists). seek_at_least() moves forward or backward; backward seeks restart
/// from the nearest anchor, so a cursor can be reused across galloping
/// probes in any order.
class ListCursor {
 public:
  ListCursor() = default;
  ListCursor(const std::uint8_t* begin, const std::uint8_t* end,
             std::uint32_t block_size);

  std::uint32_t degree() const { return degree_; }
  bool done() const { return idx_ >= degree_; }
  /// Current neighbor; precondition: !done().
  VertexId value() const {
    STM_CHECK(idx_ < degree_);
    return cur_;
  }
  /// Zero-based position of the current neighbor within the list.
  std::uint32_t index() const { return idx_; }

  /// Advances to the next neighbor (or done()).
  void advance();

  /// Positions the cursor at the first neighbor >= x; done() if none.
  /// Uses the anchor table to skip blocks in O(log num_blocks + block_size).
  void seek_at_least(VertexId x);

  /// Appends every remaining neighbor (from the current position) to `out`.
  void decode_remaining(std::vector<VertexId>& out);

  /// One past the last payload byte consumed so far. After a full decode
  /// this is the end of the vertex's encoding — how sequential blob readers
  /// (the compressed checkpoint format) find the next vertex.
  const std::uint8_t* position() const { return pos_; }

 private:
  /// Re-positions the cursor at the start of `block` and decodes its first
  /// element.
  void jump_to_block(std::uint32_t block);
  std::uint32_t read_varint();
  std::uint32_t anchor_first_value(std::uint32_t block) const;
  std::uint32_t anchor_offset(std::uint32_t block) const;

  const std::uint8_t* anchors_ = nullptr;  // null when degree <= block_size
  const std::uint8_t* payload_ = nullptr;
  const std::uint8_t* end_ = nullptr;
  const std::uint8_t* pos_ = nullptr;  // next byte to read in the payload
  std::uint32_t degree_ = 0;
  std::uint32_t block_size_ = kDefaultBlockSize;
  std::uint32_t num_blocks_ = 0;
  std::uint32_t idx_ = 0;
  VertexId cur_ = 0;
};

/// Decodes a whole encoded list into `out` (clears `out` first).
void decode_adjacency(const std::uint8_t* begin, const std::uint8_t* end,
                      std::uint32_t block_size, std::vector<VertexId>& out);

}  // namespace stm::storage
