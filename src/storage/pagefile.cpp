#include "storage/pagefile.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "persist/codec.hpp"
#include "util/check.hpp"

namespace stm::storage {

namespace {

/// 64-bit-clean absolute seek: std::fseek takes a long, which is 32-bit on
/// LLP64 platforms and would truncate offsets past 2 GiB in large spill
/// files.
bool seek_to(std::FILE* f, std::uint64_t offset) {
#if defined(_WIN32)
  return ::_fseeki64(f, static_cast<long long>(offset), SEEK_SET) == 0;
#else
  return ::fseeko(f, static_cast<off_t>(offset), SEEK_SET) == 0;
#endif
}

}  // namespace

std::uint64_t write_page_file(const std::string& path, const Graph& g,
                              std::uint32_t page_size,
                              std::uint32_t block_size) {
  STM_CHECK(page_size > 0 && block_size > 0);
  const VertexId n = g.num_vertices();

  // Pack encoded vertices into pages. A vertex never spans pages; one whose
  // encoding exceeds page_size gets a private oversized page.
  std::vector<std::string> pages;
  std::vector<VertexLocation> vloc(n);
  std::vector<std::uint8_t> scratch;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      pages.push_back(std::move(current));
      current.clear();
    }
  };
  for (VertexId v = 0; v < n; ++v) {
    scratch.clear();
    const auto nbrs = g.neighbors(v);
    encode_adjacency(nbrs.data(), nbrs.size(), block_size, scratch);
    if (!current.empty() && current.size() + scratch.size() > page_size) flush();
    vloc[v] = {static_cast<std::uint32_t>(pages.size()),
               static_cast<std::uint32_t>(current.size())};
    current.append(reinterpret_cast<const char*>(scratch.data()),
                   scratch.size());
    if (current.size() >= page_size) flush();
  }
  flush();

  // The index has a fixed width given (n, labeled, num_pages), so the page
  // base offset is known before the page-table file offsets are filled in.
  const bool labeled = g.is_labeled();
  const std::uint64_t index_len =
      4 + 4 + 4 + 4 + 8 + 1 + (labeled ? n : 0) +
      static_cast<std::uint64_t>(n) * 4 + static_cast<std::uint64_t>(n) * 8 +
      4 + static_cast<std::uint64_t>(pages.size()) * 16;
  std::uint64_t offset = 8 + 4 + 4 + index_len;

  persist::BinaryWriter w;
  w.u32(kPageFileVersion);
  w.u32(page_size);
  w.u32(block_size);
  w.u32(n);
  w.u64(g.num_adjacency_entries());
  w.u8(labeled ? 1 : 0);
  if (labeled)
    for (VertexId v = 0; v < n; ++v) w.u8(g.label(v));
  for (VertexId v = 0; v < n; ++v)
    w.u32(static_cast<std::uint32_t>(g.degree(v)));
  for (VertexId v = 0; v < n; ++v) {
    w.u32(vloc[v].page);
    w.u32(vloc[v].offset);
  }
  w.u32(static_cast<std::uint32_t>(pages.size()));
  for (const auto& p : pages) {
    w.u64(offset);
    w.u32(static_cast<std::uint32_t>(p.size()));
    w.u32(persist::crc32(p));
    offset += p.size();
  }
  const std::string index = w.take();
  STM_CHECK_MSG(index.size() == index_len,
                "storage: page-file index size mismatch");

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  STM_CHECK_MSG(out.good(), "storage: cannot create page file " + path);
  out.write(kPageFileMagic, sizeof kPageFileMagic);
  persist::BinaryWriter frame;
  frame.u32(static_cast<std::uint32_t>(index.size()));
  frame.u32(persist::crc32(index));
  out.write(frame.bytes().data(),
            static_cast<std::streamsize>(frame.bytes().size()));
  out.write(index.data(), static_cast<std::streamsize>(index.size()));
  for (const auto& p : pages)
    out.write(p.data(), static_cast<std::streamsize>(p.size()));
  out.flush();
  STM_CHECK_MSG(out.good(), "storage: short write building page file " + path);
  return offset;
}

PageFile::~PageFile() {
  if (file_ != nullptr) std::fclose(file_);
}

PageFile::PageFile(PageFile&& o) noexcept { *this = std::move(o); }

PageFile& PageFile::operator=(PageFile&& o) noexcept {
  if (this == &o) return *this;
  if (file_ != nullptr) std::fclose(file_);
  file_ = o.file_;
  o.file_ = nullptr;
  n_ = o.n_;
  m2_ = o.m2_;
  page_size_ = o.page_size_;
  block_size_ = o.block_size_;
  file_bytes_ = o.file_bytes_;
  labels_ = std::move(o.labels_);
  degrees_ = std::move(o.degrees_);
  vloc_ = std::move(o.vloc_);
  pages_ = std::move(o.pages_);
  return *this;
}

PageFile PageFile::open(const std::string& path) {
  PageFile pf;
  pf.file_ = std::fopen(path.c_str(), "rb");
  STM_CHECK_MSG(pf.file_ != nullptr, "storage: cannot open page file " + path);

  char magic[sizeof kPageFileMagic];
  STM_CHECK_MSG(std::fread(magic, 1, sizeof magic, pf.file_) == sizeof magic &&
                    std::memcmp(magic, kPageFileMagic, sizeof magic) == 0,
                "storage: bad page-file magic in " + path);
  char frame[8];
  STM_CHECK_MSG(std::fread(frame, 1, sizeof frame, pf.file_) == sizeof frame,
                "storage: truncated page-file header in " + path);
  std::uint32_t index_len = 0, index_crc = 0;
  std::memcpy(&index_len, frame, 4);
  std::memcpy(&index_crc, frame + 4, 4);
  std::string index(index_len, '\0');
  STM_CHECK_MSG(
      std::fread(index.data(), 1, index_len, pf.file_) == index_len,
      "storage: truncated page-file index in " + path);
  STM_CHECK_MSG(persist::crc32(index) == index_crc,
                "storage: page-file index CRC mismatch in " + path);

  persist::BinaryReader r(index);
  STM_CHECK_MSG(r.u32() == kPageFileVersion,
                "storage: unsupported page-file version in " + path);
  pf.page_size_ = r.u32();
  pf.block_size_ = r.u32();
  pf.n_ = r.u32();
  pf.m2_ = r.u64();
  const bool labeled = r.u8() != 0;
  if (labeled) {
    pf.labels_.resize(pf.n_);
    for (VertexId v = 0; v < pf.n_; ++v) pf.labels_[v] = r.u8();
  }
  pf.degrees_.resize(pf.n_);
  for (VertexId v = 0; v < pf.n_; ++v) pf.degrees_[v] = r.u32();
  pf.vloc_.resize(pf.n_);
  for (VertexId v = 0; v < pf.n_; ++v) {
    pf.vloc_[v].page = r.u32();
    pf.vloc_[v].offset = r.u32();
  }
  const std::uint32_t num_pages = r.u32();
  pf.pages_.resize(num_pages);
  for (auto& p : pf.pages_) {
    p.file_offset = r.u64();
    p.payload_len = r.u32();
    p.crc = r.u32();
  }
  STM_CHECK_MSG(r.done(), "storage: trailing bytes in page-file index");
  for (VertexId v = 0; v < pf.n_; ++v)
    STM_CHECK_MSG(pf.vloc_[v].page < num_pages,
                  "storage: vertex location out of page range");
  pf.file_bytes_ = 8 + 4 + 4 + index_len;
  for (const auto& p : pf.pages_) pf.file_bytes_ += p.payload_len;
  return pf;
}

std::uint64_t PageFile::payload_bytes() const {
  std::uint64_t total = 0;
  for (const auto& p : pages_) total += p.payload_len;
  return total;
}

std::uint64_t PageFile::index_bytes() const {
  return labels_.capacity() * sizeof(Label) +
         degrees_.capacity() * sizeof(std::uint32_t) +
         vloc_.capacity() * sizeof(VertexLocation) +
         pages_.capacity() * sizeof(PageEntry);
}

bool PageFile::read_page(std::uint32_t page, std::string& out) const {
  STM_CHECK(page < pages_.size());
  const PageEntry& e = pages_[page];
  out.resize(e.payload_len);
  if (!seek_to(file_, e.file_offset)) return false;
  return std::fread(out.data(), 1, e.payload_len, file_) == e.payload_len;
}

}  // namespace stm::storage
