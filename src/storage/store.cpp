#include "storage/store.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "graph/degree_stats.hpp"

namespace stm::storage {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kAuto: return "auto";
    case Backend::kUncompressed: return "uncompressed";
    case Backend::kCompressed: return "compressed";
    case Backend::kCompressedBitset: return "compressed_bitset";
    case Backend::kSpill: return "spill";
  }
  return "unknown";
}

bool backend_from_string(std::string_view name, Backend& out) {
  for (const Backend b :
       {Backend::kAuto, Backend::kUncompressed, Backend::kCompressed,
        Backend::kCompressedBitset, Backend::kSpill}) {
    if (name == to_string(b)) {
      out = b;
      return true;
    }
  }
  return false;
}

namespace {

EdgeId auto_bitset_threshold(VertexId n, std::uint32_t block_size) {
  // A bitset row costs n/8 bytes; a varint list of degree d costs >= d bytes.
  // Past d ~ n/8 the row is no larger and buys O(1) probes.
  return std::max<EdgeId>(block_size, static_cast<EdgeId>(n) / 8);
}

std::uint64_t raw_csr_bytes(VertexId n, EdgeId m2, bool labeled) {
  return (static_cast<std::uint64_t>(n) + 1) * sizeof(EdgeId) +
         static_cast<std::uint64_t>(m2) * sizeof(VertexId) +
         (labeled ? static_cast<std::uint64_t>(n) * sizeof(Label) : 0);
}

std::string make_spill_path(const StoragePolicy& policy) {
  static std::atomic<std::uint64_t> counter{0};
  namespace fs = std::filesystem;
  fs::path dir = policy.spill_dir.empty() ? fs::temp_directory_path()
                                          : fs::path(policy.spill_dir);
  fs::create_directories(dir);
  std::ostringstream name;
  name << "stm-spill-" << ::getpid() << '-'
       << counter.fetch_add(1, std::memory_order_relaxed) << ".pages";
  return (dir / name.str()).string();
}

}  // namespace

Backend choose_backend(const Graph& g, const StoragePolicy& policy) {
  if (g.num_vertices() == 0) return Backend::kUncompressed;
  if (policy.memory_budget_bytes > 0) return Backend::kSpill;
  const DegreeStats stats = compute_degree_stats(g, /*cap=*/0);
  const EdgeId threshold =
      policy.bitset_min_degree > 0
          ? policy.bitset_min_degree
          : auto_bitset_threshold(g.num_vertices(), policy.block_size);
  if (stats.max_degree >= threshold) return Backend::kCompressedBitset;
  return Backend::kCompressed;
}

GraphStore::Lease::Lease(const GraphStore* store) : store_(store) {
  if (store_ == nullptr) return;
  std::lock_guard<std::mutex> lock(store_->lease_mu_);
  ++store_->leases_;
}

GraphStore::Lease& GraphStore::Lease::operator=(Lease&& o) noexcept {
  if (this != &o) {
    release();
    store_ = o.store_;
    o.store_ = nullptr;
  }
  return *this;
}

void GraphStore::Lease::release() {
  if (store_ == nullptr) return;
  std::lock_guard<std::mutex> lock(store_->lease_mu_);
  --store_->leases_;
  store_ = nullptr;
}

std::shared_ptr<GraphStore> GraphStore::build(std::shared_ptr<const Graph> g,
                                              const StoragePolicy& policy) {
  STM_CHECK(g != nullptr);
  auto store = std::shared_ptr<GraphStore>(new GraphStore());
  store->policy_ = policy;
  store->backend_ = policy.backend == Backend::kAuto
                        ? choose_backend(*g, policy)
                        : policy.backend;
  store->n_ = g->num_vertices();
  store->m2_ = g->num_adjacency_entries();
  store->raw_bytes_ = raw_csr_bytes(store->n_, store->m2_, g->is_labeled());
  switch (store->backend_) {
    case Backend::kUncompressed:
      store->graph_ = std::move(g);
      return store;
    case Backend::kCompressed:
      store->comp_ = CompressedGraph(*g, policy.block_size,
                                     /*bitset_min_degree=*/0);
      break;
    case Backend::kCompressedBitset: {
      const EdgeId threshold =
          policy.bitset_min_degree > 0
              ? policy.bitset_min_degree
              : auto_bitset_threshold(store->n_, policy.block_size);
      store->comp_ = CompressedGraph(*g, policy.block_size, threshold);
      break;
    }
    case Backend::kSpill: {
      store->spill_path_ = make_spill_path(policy);
      store->owns_spill_file_ = true;
      write_page_file(store->spill_path_, *g, policy.page_size,
                      policy.block_size);
      store->pager_ = std::make_unique<PageCache>(
          PageFile::open(store->spill_path_), policy.memory_budget_bytes,
          policy.fault);
      break;
    }
    case Backend::kAuto:
      STM_CHECK_MSG(false, "storage: kAuto must be resolved before build");
  }
  store->slots_ = std::make_unique<DecodeSlot[]>(store->n_);
  // g goes out of scope here: compressed/spill stores never retain the raw
  // CSR.
  return store;
}

GraphStore::~GraphStore() {
  if (slots_ != nullptr) {
    for (VertexId v = 0; v < n_; ++v)
      delete slots_[v].list.load(std::memory_order_relaxed);
  }
  if (owns_spill_file_) {
    pager_.reset();  // close the file before unlinking
    std::error_code ec;
    std::filesystem::remove(spill_path_, ec);
  }
}

void GraphStore::decode_vertex(VertexId v, std::vector<VertexId>& out) const {
  if (backend_ == Backend::kSpill) {
    const PageFile& pf = pager_->file();
    const VertexLocation loc = pf.location(v);
    const auto page = pager_->get_page(loc.page);
    const auto* begin =
        reinterpret_cast<const std::uint8_t*>(page->data()) + loc.offset;
    const auto* end =
        reinterpret_cast<const std::uint8_t*>(page->data()) + page->size();
    STM_CHECK_MSG(loc.offset <= page->size(),
                  "storage: vertex offset past page end");
    out.clear();
    ListCursor c(begin, end, pf.block_size());
    out.reserve(c.degree());
    c.decode_remaining(out);
    return;
  }
  out.clear();
  comp_.decode_into(v, out);
}

std::span<const VertexId> GraphStore::source_neighbors(VertexId v) const {
  STM_CHECK(v < n_);
  if (backend_ == Backend::kUncompressed) return graph_->neighbors(v);
  const auto* published = slots_[v].list.load(std::memory_order_acquire);
  if (published == nullptr) {
    std::lock_guard<std::mutex> lock(stripes_[v % kStripes]);
    published = slots_[v].list.load(std::memory_order_relaxed);
    if (published == nullptr) {
      auto list = std::make_unique<std::vector<VertexId>>();
      decode_vertex(v, *list);
      list->shrink_to_fit();
      decoded_bytes_.fetch_add(
          list->capacity() * sizeof(VertexId) + sizeof(std::vector<VertexId>),
          std::memory_order_relaxed);
      decode_ops_.fetch_add(1, std::memory_order_relaxed);
      published = list.release();
      slots_[v].list.store(published, std::memory_order_release);
    }
  }
  return {published->data(), published->size()};
}

EdgeId GraphStore::source_degree(VertexId v) const {
  STM_CHECK(v < n_);
  switch (backend_) {
    case Backend::kUncompressed: return graph_->degree(v);
    case Backend::kSpill: return pager_->file().degree(v);
    default: return comp_.degree(v);
  }
}

bool GraphStore::source_has_edge(VertexId u, VertexId v) const {
  STM_CHECK(u < n_ && v < n_);
  switch (backend_) {
    case Backend::kUncompressed: return graph_->has_edge(u, v);
    case Backend::kCompressed:
    case Backend::kCompressedBitset: {
      // A decoded list answers with binary search without touching the
      // encoded bytes; otherwise the compressed probe (bitset or anchored
      // seek) avoids materializing anything.
      const auto* listed = slots_[u].list.load(std::memory_order_acquire);
      if (listed != nullptr)
        return std::binary_search(listed->begin(), listed->end(), v);
      return comp_.has_edge(u, v);
    }
    case Backend::kSpill: {
      // Probe the lower-degree endpoint (undirected symmetry).
      const PageFile& pf = pager_->file();
      if (pf.degree(v) < pf.degree(u)) std::swap(u, v);
      const auto* listed = slots_[u].list.load(std::memory_order_acquire);
      if (listed != nullptr)
        return std::binary_search(listed->begin(), listed->end(), v);
      const VertexLocation loc = pf.location(u);
      const auto page = pager_->get_page(loc.page);
      const auto* begin =
          reinterpret_cast<const std::uint8_t*>(page->data()) + loc.offset;
      const auto* end =
          reinterpret_cast<const std::uint8_t*>(page->data()) + page->size();
      ListCursor c(begin, end, pf.block_size());
      c.seek_at_least(v);
      return !c.done() && c.value() == v;
    }
    case Backend::kAuto: break;
  }
  STM_CHECK_MSG(false, "storage: unreachable backend in has_edge");
  return false;
}

const Label* GraphStore::source_labels() const {
  switch (backend_) {
    case Backend::kUncompressed:
      return graph_->is_labeled() ? graph_->labels().data() : nullptr;
    case Backend::kSpill: return pager_->file().labels_data();
    default: return comp_.labels_data();
  }
}

bool GraphStore::trim_decoded() const {
  std::lock_guard<std::mutex> lease_lock(lease_mu_);
  if (leases_ != 0) return false;
  if (slots_ == nullptr) return true;
  // Serialize against in-flight decodes (which must themselves hold a lease,
  // but the stripe locks make the pointer swap safe regardless).
  std::array<std::unique_lock<std::mutex>, kStripes> stripe_locks;
  for (std::size_t s = 0; s < kStripes; ++s)
    stripe_locks[s] = std::unique_lock<std::mutex>(stripes_[s]);
  for (VertexId v = 0; v < n_; ++v) {
    const auto* p = slots_[v].list.exchange(nullptr, std::memory_order_acq_rel);
    delete p;
  }
  decoded_bytes_.store(0, std::memory_order_relaxed);
  return true;
}

StorageStats GraphStore::stats() const {
  StorageStats s;
  s.backend = backend_;
  s.raw_bytes = raw_bytes_;
  s.decoded_cache_bytes = decoded_bytes_.load(std::memory_order_relaxed);
  s.decode_ops = decode_ops_.load(std::memory_order_relaxed);
  switch (backend_) {
    case Backend::kUncompressed:
      s.resident_bytes = graph_->memory_bytes();
      s.encoded_bytes = s.resident_bytes;
      break;
    case Backend::kCompressed:
    case Backend::kCompressedBitset: {
      const CompressedStats cs = comp_.stats();
      s.resident_bytes = cs.total_bytes();
      s.encoded_bytes = cs.total_bytes();
      s.num_bitset_rows = cs.num_bitset_rows;
      break;
    }
    case Backend::kSpill: {
      const PagerStats ps = pager_->stats();
      const PageFile& pf = pager_->file();
      s.resident_bytes = pf.index_bytes() + ps.resident_bytes;
      s.encoded_bytes = pf.index_bytes() + pf.payload_bytes();
      s.page_faults = ps.faults;
      s.page_hits = ps.hits;
      s.page_evictions = ps.evictions;
      s.injected_page_faults = ps.injected_read_faults;
      s.file_bytes = pf.file_bytes();
      break;
    }
    case Backend::kAuto: break;
  }
  s.compression_ratio =
      s.encoded_bytes == 0 ? 1.0
                           : static_cast<double>(s.raw_bytes) /
                                 static_cast<double>(s.encoded_bytes);
  return s;
}

}  // namespace stm::storage
