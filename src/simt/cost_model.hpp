// SIMT cycle cost model.
//
// The reproduction substitutes a deterministic simulator for CUDA hardware
// (DESIGN.md §2): every warp-level operation is converted into simulated
// cycles here. The weights encode the *relative* costs the paper's analysis
// depends on — binary-search probe depth per wave, cheap shared-memory
// traffic vs. expensive global-memory traffic, and the per-launch overhead
// that penalizes the subgraph-centric baselines.
#pragma once

#include <cstdint>

#include "setops/multi_set_op.hpp"

namespace stm {

struct CostModel {
  /// Nominal clock used to report simulated milliseconds.
  double clock_ghz = 1.4;

  /// Per-wave issue overhead of a warp-wide operation.
  std::uint64_t wave_overhead = 2;
  /// Bookkeeping per stack-machine loop iteration (level checks, iter
  /// increments — paper Fig. 3 lines 6-16).
  std::uint64_t stack_step = 4;
  /// Cycles per 32-element wave copied within shared memory (local steal).
  std::uint64_t shared_copy_per_wave = 4;
  /// Cycles per 32-element wave copied through global memory (global steal,
  /// subgraph-table traffic in the baselines).
  std::uint64_t global_copy_per_wave = 48;
  /// Scanning co-block stacks to select a local-steal victim.
  std::uint64_t steal_scan = 64;
  /// Scanning the global is_idle array once.
  std::uint64_t idle_check = 24;
  /// Spin-wait poll interval for idle warps (paper Fig. 6 "spin wait").
  std::uint64_t idle_poll = 512;
  /// Kernel launch + device synchronization (charged per extension step by
  /// the subgraph-centric baselines; STMatch pays it once).
  std::uint64_t kernel_launch = 30000;

  /// Cycles of a fused warp set operation.
  std::uint64_t set_op_cycles(const WarpOpCost& c) const {
    return c.waves * wave_overhead + c.probe_cycles;
  }
  /// Cycles to move `elements` vertices within shared memory.
  std::uint64_t shared_copy_cycles(std::uint64_t elements) const {
    return ((elements + kWarpWidth - 1) / kWarpWidth) * shared_copy_per_wave;
  }
  /// Cycles to move `elements` vertices through global memory.
  std::uint64_t global_copy_cycles(std::uint64_t elements) const {
    return ((elements + kWarpWidth - 1) / kWarpWidth) * global_copy_per_wave;
  }

  double to_ms(std::uint64_t cycles) const {
    return static_cast<double>(cycles) / (clock_ghz * 1e6);
  }
};

}  // namespace stm
