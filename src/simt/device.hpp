// Simulated GPU device configuration and capacity checks.
#pragma once

#include <cstdint>

#include "graph/types.hpp"
#include "util/check.hpp"

namespace stm {

/// Shape of the simulated device. Defaults are scaled down from the paper's
/// RTX 3090 (82 SMs x 32 warps) in proportion to the scaled-down datasets.
struct DeviceConfig {
  std::uint32_t num_blocks = 12;
  std::uint32_t warps_per_block = 8;
  /// Shared memory per thread block (bytes); holds Csize/iter/uiter and the
  /// per-warp bookkeeping (paper §IV). Exceeding it is a launch failure.
  std::uint64_t shared_mem_bytes = 48 * 1024;
  /// Global memory (bytes); bounds the subgraph tables of the baselines and
  /// the stack slabs of STMatch.
  std::uint64_t global_mem_bytes = 256ULL * 1024 * 1024;

  std::uint32_t total_warps() const { return num_blocks * warps_per_block; }

  void validate() const {
    STM_CHECK(num_blocks >= 1);
    STM_CHECK(warps_per_block >= 1);
    STM_CHECK(shared_mem_bytes >= 1024);
  }
};

/// Per-warp shared-memory footprint of the STMatch stack bookkeeping:
/// Csize (uint16) for every set node x unroll column, plus iter/uiter/
/// matched-vertex arrays per level (paper §IV allocates these in shared
/// memory; the candidate arrays C live in global memory).
inline std::uint64_t stmatch_shared_bytes_per_warp(std::size_t num_nodes,
                                                   std::uint32_t unroll,
                                                   std::size_t pattern_size) {
  const std::uint64_t csize = 2ULL * num_nodes * unroll;
  const std::uint64_t per_level = (4 + 1 + 4) * pattern_size;  // iter/uiter/v
  return csize + per_level + 16;  // level counter + flags
}

}  // namespace stm
