// Incremental (delta) pattern matching over graph snapshots.
//
// Given the version a batch was applied to and the effective delta edges,
// IncrementalMatcher computes the exact change in the pattern's match count
// without re-enumerating the whole graph. Enumeration is anchored on delta
// edges only: every pattern edge takes a turn as the anchor (relabeled so
// the anchor spans levels 0 and 1), and for each delta edge both seed
// orientations run through the unmodified host or SIMT engine against a
// prefix-hybrid overlay graph. Inclusion–exclusion over old/new adjacency
// is realized by the prefix construction (see count_delta in the .cpp),
// which counts every affected match exactly once — cumulative deltas agree
// with full re-enumeration bit for bit.
//
// Unique-subgraph counts are derived from embedding deltas divided by the
// pattern's automorphism count (symmetry-breaking constraints do not
// commute with anchoring). Vertex-induced matching is rejected: an induced
// match can appear or vanish without containing any delta edge (a non-edge
// constraint elsewhere flips), so delta-edge anchoring cannot be exact.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/host_engine.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "pattern/pattern.hpp"
#include "pattern/plan.hpp"

namespace stm {

/// Which engine executes the anchored enumerations.
enum class DeltaEngine : std::uint8_t {
  kHost = 0,  // sequential seeded recursion (production CPU path)
  kSimt,      // simulated-GPU stack engine with a pinned level-0/1 seed
};

struct IncrementalOptions {
  /// Matching semantics of the standing count. induced must be kEdge.
  PlanOptions plan;
  DeltaEngine engine = DeltaEngine::kHost;
  /// SIMT-path device configuration for engine == kSimt (v_begin/v_end and
  /// pin_v1 are overwritten per anchored run).
  EngineConfig simt;
};

/// The outcome of one batch's delta computation.
struct DeltaMatchResult {
  /// Exact change in the match count (new minus old), in the requested
  /// CountMode.
  std::int64_t delta = 0;
  /// Anchored engine invocations issued (pattern edges x delta edges x
  /// orientations, minus label-pruned seeds).
  std::uint64_t anchored_runs = 0;
  /// Effective delta edges processed.
  std::uint64_t delta_edges = 0;
};

/// Edge-anchored enumeration: counts the embeddings of a pattern that
/// contain a given data edge. Every pattern edge takes a turn as the anchor
/// (relabeled so the anchor spans levels 0 and 1), and for each data edge
/// both seed orientations run through the unmodified host or SIMT engine.
/// Plans are always compiled in kEmbeddings mode — symmetry breaking does
/// not commute with a forced anchor — so callers counting unique subgraphs
/// divide aggregated totals by automorphisms().
///
/// Shared by IncrementalMatcher (anchors = delta edges) and the sharded
/// coordinator in dist/ (anchors = cut edges): both realize the same
/// prefix inclusion–exclusion identity over an ordered edge set.
class AnchoredEnumerator {
 public:
  /// Compiles one anchored plan per pattern edge. Throws check_error for
  /// vertex-induced options or patterns with fewer than two vertices.
  AnchoredEnumerator(const Pattern& pattern, const PlanOptions& base,
                     DeltaEngine engine = DeltaEngine::kHost,
                     const EngineConfig& simt = {});

  /// Embeddings containing data edge (u, v) in `g`, summed over all anchors
  /// and both orientations. Increments *runs per engine invocation issued
  /// (label-pruned seeds are skipped).
  std::uint64_t count_containing(GraphView g, VertexId u, VertexId v,
                                 std::uint64_t* runs) const;

  /// Receives one embedding in *original pattern vertex order*:
  /// embedding[i] = data vertex matched to pattern vertex i.
  using AnchoredVisitor = std::function<void(const std::vector<VertexId>&)>;

  /// Enumerates (rather than counts) the embeddings containing (u, v). Each
  /// such embedding is visited exactly once — an injective map puts exactly
  /// one pattern edge onto the data edge, so exactly one (anchor,
  /// orientation) pair finds it. Enumeration always rides the seeded host
  /// recursion regardless of the configured DeltaEngine (the engines agree
  /// bit-exactly; recursion is the one with a visitor). Backs the
  /// standing-query delta streams.
  std::uint64_t enumerate_containing(GraphView g, VertexId u, VertexId v,
                                     const AnchoredVisitor& visit,
                                     std::uint64_t* runs) const;

  /// |Aut(pattern)| — the embeddings-per-subgraph factor (1 unless the base
  /// options requested kUniqueSubgraphs).
  std::uint64_t automorphisms() const { return automorphisms_; }
  std::size_t num_anchors() const { return anchors_.size(); }
  const Pattern& pattern() const { return pattern_; }

 private:
  Pattern pattern_;
  DeltaEngine engine_;
  EngineConfig simt_;
  std::vector<MatchingPlan> anchors_;  // anchor edge at levels 0/1
  /// anchor_perms_[a][i] = original pattern vertex at position i of anchored
  /// plan a; inverts the anchor relabeling when emitting embeddings.
  std::vector<std::vector<std::size_t>> anchor_perms_;
  std::uint64_t automorphisms_ = 1;
};

class IncrementalMatcher {
 public:
  /// Compiles one anchored plan per pattern edge. Throws check_error for
  /// vertex-induced options or patterns with fewer than two vertices.
  explicit IncrementalMatcher(const Pattern& pattern,
                              IncrementalOptions opts = {});

  /// Exact match-count change caused by applying `applied` to the version
  /// `from` (i.e. count(from + applied) - count(from)). `applied` must be
  /// the effective delta as reported by MutableGraph::apply — normalized,
  /// insertions absent from and deletions present in `from`.
  DeltaMatchResult count_delta(
      const std::shared_ptr<const GraphSnapshot>& from,
      const DeltaEdges& applied) const;

  const Pattern& pattern() const { return enumerator_.pattern(); }
  const IncrementalOptions& options() const { return opts_; }
  /// |Aut(pattern)| — the embeddings-per-subgraph factor.
  std::uint64_t automorphisms() const { return enumerator_.automorphisms(); }

 private:
  IncrementalOptions opts_;
  AnchoredEnumerator enumerator_;
};

/// The pattern interpreted as a data graph (vertices [0, size), its edges,
/// its labels); used for automorphism counting and handy in tests.
Graph pattern_as_graph(const Pattern& p);

}  // namespace stm
