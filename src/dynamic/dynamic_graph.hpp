// Dynamic graph subsystem: batched updates over an immutable CSR base.
//
// A MutableGraph layers batched edge insertions/deletions over the loaded
// CSR. Mutation never touches the base arrays: every applied batch publishes
// a fresh immutable GraphSnapshot holding per-vertex sorted delta adjacency
// (adds + tombstones) and a pre-merged neighbor list for each dirty vertex.
// In-flight queries keep the shared_ptr of the snapshot they started on and
// therefore read an epoch-consistent version while writers apply the next
// batch — snapshot state is never written after publication, so concurrent
// readers are race-free by construction.
//
// `compact()` rebuilds the CSR from the current version (folding the deltas
// in) without changing the logical graph, so the epoch is kept; `apply()`
// bumps the monotone epoch, which keys plan-cache entries (a matching order
// tuned to stale degrees is never reused after heavy updates).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/fault.hpp"
#include "graph/graph.hpp"
#include "graph/view.hpp"
#include "storage/store.hpp"

namespace stm {

/// One batch of undirected edge updates. Pairs may be in any order and may
/// contain duplicates; `MutableGraph::apply` normalizes them. An edge listed
/// in both vectors is rejected as kInvalidArgument-class misuse.
struct UpdateBatch {
  std::vector<std::pair<VertexId, VertexId>> insertions;
  std::vector<std::pair<VertexId, VertexId>> deletions;

  bool empty() const { return insertions.empty() && deletions.empty(); }
};

/// What a batch actually changed. Inserting a present edge / deleting an
/// absent one is not an error — redundant updates are a fact of live feeds —
/// but it is reported.
struct UpdateStats {
  std::uint64_t inserted = 0;
  std::uint64_t deleted = 0;
  std::uint64_t ignored_existing = 0;  // insertions of already-present edges
  std::uint64_t ignored_missing = 0;   // deletions of absent edges
};

/// A normalized set of undirected delta edges (u < v, sorted, unique).
struct DeltaEdges {
  std::vector<std::pair<VertexId, VertexId>> inserted;
  std::vector<std::pair<VertexId, VertexId>> deleted;

  bool empty() const { return inserted.empty() && deleted.empty(); }
  std::size_t size() const { return inserted.size() + deleted.size(); }
  bool operator==(const DeltaEdges&) const = default;
};

/// One immutable version of the evolving graph: the CSR base plus merged
/// adjacency for every vertex whose neighborhood differs from it. Create via
/// MutableGraph; all members are written once during construction and only
/// read afterwards.
class GraphSnapshot {
 public:
  /// The engines' adjacency interface over this version. The view borrows
  /// this snapshot's tables: keep the snapshot (shared_ptr) alive while any
  /// engine run uses the view. When a storage backend is attached, clean
  /// vertices read through it (compressed / bitset / spill) and dirty
  /// vertices read their merged lists — engines can't tell the difference.
  GraphView view() const {
    const GraphView base_view =
        store_ != nullptr ? store_->view() : GraphView(*base_);
    return GraphView(base_view, slot_of_.data(), &merged_);
  }

  std::uint64_t epoch() const { return epoch_; }
  VertexId num_vertices() const { return base_->num_vertices(); }
  /// Undirected edge count of this version (base edges + net delta).
  EdgeId num_edges() const { return num_edges_; }

  /// Store-safe point probe: takes its own storage lease, so it is safe to
  /// call without pinning the decode cache first.
  bool has_edge(VertexId u, VertexId v) const;

  /// Normalized delta of this version relative to its CSR base (empty right
  /// after construction or compact()).
  const DeltaEdges& delta_from_base() const { return delta_from_base_; }

  /// The CSR this version layers over.
  const Graph& base() const { return *base_; }

  /// The storage backend serving clean-vertex adjacency (null = raw CSR).
  const std::shared_ptr<const storage::GraphStore>& store() const {
    return store_;
  }

  /// Pins the store's decoded-list cache for the duration of an engine run
  /// over view(); a no-op lease when no store is attached.
  storage::GraphStore::Lease storage_lease() const {
    return store_ != nullptr ? store_->lease() : storage::GraphStore::Lease();
  }

  /// Resident bytes of this version's base representation (store or CSR)
  /// plus the per-vertex delta tables.
  std::uint64_t memory_bytes() const;

  /// Materializes a standalone CSR Graph equal to this version (labels
  /// preserved). This is the reference side of the differential tests.
  Graph compacted() const;

 private:
  friend class MutableGraph;
  GraphSnapshot() = default;

  std::shared_ptr<const Graph> base_;
  std::shared_ptr<const storage::GraphStore> store_;  // null = raw CSR base
  std::uint64_t epoch_ = 0;
  EdgeId num_edges_ = 0;
  /// slot_of_[v] >= 0: v is dirty and merged_[slot] is its full merged
  /// neighbor list; adds_/dels_[slot] are its delta vs the base (sorted).
  std::vector<std::int32_t> slot_of_;
  std::vector<std::vector<VertexId>> merged_;
  std::vector<std::vector<VertexId>> adds_;
  std::vector<std::vector<VertexId>> dels_;
  DeltaEdges delta_from_base_;
};

struct ApplyResult {
  /// The newly published version.
  std::shared_ptr<const GraphSnapshot> snapshot;
  UpdateStats stats;
  /// The effective (deduplicated, redundancy-stripped) delta this batch
  /// applied — exactly what IncrementalMatcher::count_delta consumes.
  DeltaEdges applied;
};

/// The single-writer mutation front end. Readers call snapshot() (cheap:
/// one mutex-guarded shared_ptr copy) and never block behind a writer for
/// the duration of a query.
class MutableGraph {
 public:
  /// `start_epoch` seeds the version counter; crash recovery constructs the
  /// graph at its checkpointed epoch so replayed batches reproduce the exact
  /// epoch sequence of the uninterrupted run. `storage` selects the backend
  /// serving clean-vertex adjacency (default: raw CSR); compact() re-encodes
  /// the folded graph under the same policy.
  explicit MutableGraph(Graph base, std::uint64_t start_epoch = 0,
                        storage::StoragePolicy storage = {});

  /// The current version.
  std::shared_ptr<const GraphSnapshot> snapshot() const;

  /// Current epoch (bumped by every non-empty apply, kept by compact).
  std::uint64_t epoch() const { return snapshot()->epoch(); }

  /// The seed CSR this graph started from (alive for the session lifetime).
  const Graph& base() const { return *seed_; }

  /// Applies one batch atomically: the new snapshot is fully built, then
  /// published; a failure (validation or injected kUpdateApply fault) leaves
  /// the current version untouched. Throws check_error on self-loops,
  /// out-of-range vertices, or edges listed as both inserted and deleted.
  ///
  /// `pre_publish`, when set, runs after the successor snapshot is fully
  /// built (result.snapshot points at it) but before it becomes visible —
  /// the write-ahead point of the durability layer: the hook appends the
  /// normalized batch to the WAL, and if it throws, the batch is dropped and
  /// the published version stays untouched. The hook is not invoked for
  /// no-op batches (empty effective delta: no epoch bump, nothing to log).
  ApplyResult apply(const UpdateBatch& batch,
                    const std::function<void(const ApplyResult&)>&
                        pre_publish = nullptr);

  /// Rebuilds the CSR from the current version. The logical graph and epoch
  /// are unchanged; the returned snapshot has an empty delta. Live readers
  /// of older snapshots are unaffected (they share the old base).
  std::shared_ptr<const GraphSnapshot> compact();

  /// Installs a fault-injection schedule (FaultSite::kUpdateApply fires a
  /// FaultInjectedError after batch validation, before publication).
  void set_fault(const FaultConfig& cfg);

  /// The storage policy snapshots are built under.
  const storage::StoragePolicy& storage_policy() const {
    return storage_policy_;
  }

 private:
  std::shared_ptr<const Graph> seed_;
  storage::StoragePolicy storage_policy_;
  mutable std::mutex mu_;
  std::shared_ptr<const GraphSnapshot> current_;
  std::optional<FaultInjector> injector_;
  std::uint64_t apply_seq_ = 0;  // fault-decision key
};

/// A transient, copy-on-write edge overlay on top of a snapshot: the
/// prefix-hybrid graphs of the incremental matcher (G_common plus the first
/// i delta edges). Not thread-safe; cheap to create per delta computation.
/// Vertices are materialized lazily — untouched vertices read the snapshot.
class DeltaOverlay {
 public:
  explicit DeltaOverlay(std::shared_ptr<const GraphSnapshot> snap);

  /// Adds/removes an undirected edge. Adding a present edge or removing an
  /// absent one is a checked precondition violation.
  void add_edge(VertexId u, VertexId v);
  void remove_edge(VertexId u, VertexId v);

  bool has_edge(VertexId u, VertexId v) const { return view().has_edge(u, v); }

  /// Adjacency view over snapshot + overlay. Borrow only between mutations:
  /// add/remove may reallocate the overlay tables.
  GraphView view() const { return GraphView(snap_->view(), slots_.data(), &lists_); }

 private:
  std::vector<VertexId>& touch(VertexId v);

  std::shared_ptr<const GraphSnapshot> snap_;
  /// Untouched vertices read through the snapshot's store on every view();
  /// the overlay pins the decode cache for its whole lifetime.
  storage::GraphStore::Lease lease_;
  std::vector<std::int32_t> slots_;
  std::vector<std::vector<VertexId>> lists_;
};

}  // namespace stm
