#include "dynamic/incremental.hpp"

#include <algorithm>

#include "baselines/reference.hpp"
#include "core/engine.hpp"
#include "core/recursive.hpp"
#include "util/check.hpp"

namespace stm {

namespace {

/// Relabels `p` so that anchor edge (a, b) sits at levels 0/1 and the rest
/// follows a greedy connected order (max connectivity to the prefix, ties by
/// degree then smallest id — the same heuristic as matching_order, with the
/// seed forced).
Pattern anchored_pattern(const Pattern& p, std::size_t a, std::size_t b,
                         std::vector<std::size_t>* perm_out) {
  const std::size_t k = p.size();
  std::vector<std::size_t> perm{a, b};
  std::vector<bool> used(k, false);
  used[a] = used[b] = true;
  while (perm.size() < k) {
    std::size_t best = k;
    std::size_t best_conn = 0;
    for (std::size_t v = 0; v < k; ++v) {
      if (used[v]) continue;
      std::size_t conn = 0;
      for (std::size_t u : perm) conn += p.has_edge(u, v) ? 1 : 0;
      if (conn == 0) continue;  // keep the order connected
      const bool better =
          best == k || conn > best_conn ||
          (conn == best_conn && (p.degree(v) > p.degree(best) ||
                                 (p.degree(v) == p.degree(best) && v < best)));
      if (better) {
        best = v;
        best_conn = conn;
      }
    }
    STM_CHECK_MSG(best < k, "pattern must be connected");
    perm.push_back(best);
    used[best] = true;
  }
  if (perm_out != nullptr) *perm_out = perm;
  return p.relabeled(perm);
}

bool label_ok(GraphView g, std::uint64_t mask, VertexId v) {
  return !g.is_labeled() || ((mask >> g.label(v)) & 1ULL);
}

}  // namespace

Graph pattern_as_graph(const Pattern& p) {
  GraphBuilder builder(static_cast<VertexId>(p.size()));
  for (std::size_t u = 0; u < p.size(); ++u)
    for (std::size_t v = u + 1; v < p.size(); ++v)
      if (p.has_edge(u, v))
        builder.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  Graph g = builder.build();
  if (p.is_labeled()) {
    std::vector<Label> labels(p.size());
    for (std::size_t v = 0; v < p.size(); ++v) labels[v] = p.label(v);
    g = g.with_labels(std::move(labels));
  }
  return g;
}

AnchoredEnumerator::AnchoredEnumerator(const Pattern& pattern,
                                       const PlanOptions& base,
                                       DeltaEngine engine,
                                       const EngineConfig& simt)
    : pattern_(pattern), engine_(engine), simt_(simt) {
  STM_CHECK_MSG(base.induced == Induced::kEdge,
                "anchored enumeration supports edge-induced semantics only: "
                "a vertex-induced match can change without containing the "
                "anchor edge");
  STM_CHECK_MSG(pattern_.size() >= 2, "pattern must have at least two vertices");

  // One anchored plan per (unordered) pattern edge, always compiled in
  // kEmbeddings mode: symmetry-breaking constraints assume the engine's own
  // vertex order and would miscount under a forced anchor. Subgraph counts
  // are recovered by dividing aggregated embeddings by |Aut(pattern)|.
  PlanOptions anchor_opts = base;
  anchor_opts.count_mode = CountMode::kEmbeddings;
  for (std::size_t a = 0; a < pattern_.size(); ++a)
    for (std::size_t b = a + 1; b < pattern_.size(); ++b)
      if (pattern_.has_edge(a, b)) {
        std::vector<std::size_t> perm;
        anchors_.emplace_back(anchored_pattern(pattern_, a, b, &perm),
                              anchor_opts);
        anchor_perms_.push_back(std::move(perm));
      }

  if (base.count_mode == CountMode::kUniqueSubgraphs) {
    // |Aut(p)| = injective edge-preserving self-maps; with |V| and |E|
    // equal on both sides every such map is an automorphism, so the
    // edge-induced embedding count of p in itself is exactly |Aut(p)|.
    automorphisms_ = reference_count(
        pattern_as_graph(pattern_), pattern_,
        {Induced::kEdge, CountMode::kEmbeddings});
    STM_CHECK(automorphisms_ >= 1);
  }
}

std::uint64_t AnchoredEnumerator::count_containing(GraphView g, VertexId u,
                                                   VertexId v,
                                                   std::uint64_t* runs) const {
  std::uint64_t total = 0;
  for (const MatchingPlan& plan : anchors_) {
    const std::pair<VertexId, VertexId> seeds[2] = {{u, v}, {v, u}};
    for (const auto& [s0, s1] : seeds) {
      if (!label_ok(g, plan.exact_mask(0), s0) ||
          !label_ok(g, plan.exact_mask(1), s1))
        continue;
      ++*runs;
      if (engine_ == DeltaEngine::kHost) {
        total += recursive_count_seed(g, plan, s0, s1);
      } else {
        EngineConfig cfg = simt_;
        cfg.v_begin = s0;
        cfg.v_end = s0 + 1;
        cfg.v_stride = 1;
        cfg.pin_v1 = s1;
        total += stmatch_match(g, plan, cfg).count;
      }
    }
  }
  return total;
}

std::uint64_t AnchoredEnumerator::enumerate_containing(
    GraphView g, VertexId u, VertexId v, const AnchoredVisitor& visit,
    std::uint64_t* runs) const {
  std::uint64_t total = 0;
  const std::size_t k = pattern_.size();
  std::vector<VertexId> orig(k);
  for (std::size_t a = 0; a < anchors_.size(); ++a) {
    const MatchingPlan& plan = anchors_[a];
    const auto& perm = anchor_perms_[a];
    const EmbeddingVisitor emit = [&](const std::vector<VertexId>& mapping) {
      for (std::size_t i = 0; i < k; ++i) orig[perm[i]] = mapping[i];
      visit(orig);
      return true;
    };
    const std::pair<VertexId, VertexId> seeds[2] = {{u, v}, {v, u}};
    for (const auto& [s0, s1] : seeds) {
      if (!label_ok(g, plan.exact_mask(0), s0) ||
          !label_ok(g, plan.exact_mask(1), s1))
        continue;
      ++*runs;
      total += recursive_enumerate_seed(g, plan, s0, s1, emit);
    }
  }
  return total;
}

IncrementalMatcher::IncrementalMatcher(const Pattern& pattern,
                                       IncrementalOptions opts)
    : opts_(opts),
      enumerator_(pattern, opts.plan, opts.engine, opts.simt) {}

DeltaMatchResult IncrementalMatcher::count_delta(
    const std::shared_ptr<const GraphSnapshot>& from,
    const DeltaEdges& applied) const {
  STM_CHECK(from != nullptr);
  DeltaMatchResult result;
  result.delta_edges = applied.size();
  if (applied.empty()) return result;

  // Let G_old = `from`, G_new = G_old + applied, and
  // G_common = G_old \ deleted = G_new \ inserted. Adding the inserted
  // edges d_1..d_m to G_common one at a time,
  //   count(G_new) - count(G_common) = sum_i |matches containing d_i in
  //                                           G_common + {d_1..d_i}|
  // because every match of G_new that is not a match of G_common contains
  // at least one inserted edge and is counted exactly once: at the
  // largest-index inserted edge it contains (earlier prefixes miss that
  // edge, later prefixes only count matches containing *their* newest
  // edge). The same identity over the deleted edges r_1..r_j gives
  // count(G_old) - count(G_common), and the difference of the two sums is
  // the exact delta — inclusion–exclusion realized by prefix construction,
  // with no per-embedding filtering.
  std::int64_t plus = 0;
  {
    DeltaOverlay overlay(from);
    for (const auto& [u, v] : applied.deleted) overlay.remove_edge(u, v);
    for (const auto& [u, v] : applied.inserted) {
      overlay.add_edge(u, v);
      plus += static_cast<std::int64_t>(enumerator_.count_containing(
          overlay.view(), u, v, &result.anchored_runs));
    }
  }
  std::int64_t minus = 0;
  {
    DeltaOverlay overlay(from);
    for (const auto& [u, v] : applied.deleted) overlay.remove_edge(u, v);
    for (const auto& [u, v] : applied.deleted) {
      overlay.add_edge(u, v);
      minus += static_cast<std::int64_t>(enumerator_.count_containing(
          overlay.view(), u, v, &result.anchored_runs));
    }
  }

  std::int64_t delta = plus - minus;
  if (opts_.plan.count_mode == CountMode::kUniqueSubgraphs) {
    const auto aut = static_cast<std::int64_t>(automorphisms());
    STM_CHECK_MSG(delta % aut == 0,
                  "embedding delta " << delta << " not divisible by |Aut| "
                                     << aut);
    delta /= aut;
  }
  result.delta = delta;
  return result;
}

}  // namespace stm
