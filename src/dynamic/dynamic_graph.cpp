#include "dynamic/dynamic_graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stm {

namespace {

using EdgePair = std::pair<VertexId, VertexId>;

/// Validates, canonicalizes (u < v) and dedupes one side of a batch.
std::vector<EdgePair> normalize_edges(
    const std::vector<EdgePair>& edges, VertexId n, const char* what) {
  std::vector<EdgePair> out;
  out.reserve(edges.size());
  for (auto [u, v] : edges) {
    STM_CHECK_MSG(u != v, what << " (" << u << "," << v << ") is a self-loop");
    STM_CHECK_MSG(u < n && v < n, what << " (" << u << "," << v
                                       << ") references a vertex >= " << n);
    if (u > v) std::swap(u, v);
    out.emplace_back(u, v);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void sorted_insert(std::vector<VertexId>& list, VertexId v) {
  list.insert(std::lower_bound(list.begin(), list.end(), v), v);
}

void sorted_erase(std::vector<VertexId>& list, VertexId v) {
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  STM_CHECK(it != list.end() && *it == v);
  list.erase(it);
}

}  // namespace

std::uint64_t GraphSnapshot::memory_bytes() const {
  std::uint64_t total = store_ != nullptr ? store_->stats().resident_bytes
                                          : base_->memory_bytes();
  total += slot_of_.capacity() * sizeof(std::int32_t);
  for (const auto* tables : {&merged_, &adds_, &dels_})
    for (const auto& list : *tables)
      total += list.capacity() * sizeof(VertexId) + sizeof(list);
  return total;
}

bool GraphSnapshot::has_edge(VertexId u, VertexId v) const {
  const storage::GraphStore::Lease lease = storage_lease();
  return view().has_edge(u, v);
}

Graph GraphSnapshot::compacted() const {
  // The full sweep reads store-backed adjacency; the lease keeps a
  // concurrent trim_decoded() from freeing decoded lists mid-iteration.
  const storage::GraphStore::Lease lease = storage_lease();
  GraphBuilder builder(num_vertices());
  const GraphView g = view();
  for (VertexId u = 0; u < num_vertices(); ++u)
    for (VertexId v : g.neighbors(u))
      if (u < v) builder.add_edge(u, v);
  Graph out = builder.build();
  if (base_->is_labeled()) out = out.with_labels(base_->labels());
  return out;
}

MutableGraph::MutableGraph(Graph base, std::uint64_t start_epoch,
                           storage::StoragePolicy storage)
    : seed_(std::make_shared<const Graph>(std::move(base))),
      storage_policy_(std::move(storage)) {
  auto snap = std::make_shared<GraphSnapshot>(GraphSnapshot{});
  snap->base_ = seed_;
  if (storage_policy_.backend != storage::Backend::kUncompressed)
    snap->store_ = storage::GraphStore::build(seed_, storage_policy_);
  snap->epoch_ = start_epoch;
  snap->num_edges_ = seed_->num_edges();
  snap->slot_of_.assign(seed_->num_vertices(), -1);
  current_ = std::move(snap);
}

std::shared_ptr<const GraphSnapshot> MutableGraph::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

void MutableGraph::set_fault(const FaultConfig& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cfg.enabled())
    injector_.emplace(cfg);
  else
    injector_.reset();
}

ApplyResult MutableGraph::apply(
    const UpdateBatch& batch,
    const std::function<void(const ApplyResult&)>& pre_publish) {
  std::lock_guard<std::mutex> lock(mu_);
  const GraphSnapshot& cur = *current_;
  // Redundancy checks below read store-backed adjacency (has_edge); the
  // lease keeps a trim_decoded() racing in from a query-completion thread
  // from freeing decoded lists under us.
  const storage::GraphStore::Lease storage_lease = cur.storage_lease();
  const VertexId n = cur.num_vertices();

  const auto ins = normalize_edges(batch.insertions, n, "inserted edge");
  const auto del = normalize_edges(batch.deletions, n, "deleted edge");
  {
    std::vector<EdgePair> both;
    std::set_intersection(ins.begin(), ins.end(), del.begin(), del.end(),
                          std::back_inserter(both));
    STM_CHECK_MSG(both.empty(),
                  "edge (" << both.front().first << "," << both.front().second
                           << ") is both inserted and deleted in one batch");
  }

  ApplyResult result;
  // Redundancy is resolved against the *current* version, so the effective
  // delta is exactly the symmetric difference this batch causes.
  const GraphView cur_view = cur.view();
  for (const auto& e : ins) {
    if (cur_view.has_edge(e.first, e.second))
      ++result.stats.ignored_existing;
    else
      result.applied.inserted.push_back(e);
  }
  for (const auto& e : del) {
    if (!cur_view.has_edge(e.first, e.second))
      ++result.stats.ignored_missing;
    else
      result.applied.deleted.push_back(e);
  }
  result.stats.inserted = result.applied.inserted.size();
  result.stats.deleted = result.applied.deleted.size();

  if (result.applied.empty()) {
    result.snapshot = current_;  // no-op batch: same version, same epoch
    return result;
  }

  // Build the successor version off to the side; `current_` is published
  // only after the whole batch (and the fault check) succeeded.
  auto next = std::make_shared<GraphSnapshot>(GraphSnapshot{});
  next->base_ = cur.base_;
  next->store_ = cur.store_;  // base unchanged: successor shares the backend
  next->epoch_ = cur.epoch_ + 1;
  next->num_edges_ = cur.num_edges_ + result.applied.inserted.size() -
                     result.applied.deleted.size();
  next->slot_of_ = cur.slot_of_;
  next->merged_ = cur.merged_;
  next->adds_ = cur.adds_;
  next->dels_ = cur.dels_;

  const Graph& base = *next->base_;
  auto slot = [&](VertexId v) -> std::int32_t {
    std::int32_t s = next->slot_of_[v];
    if (s < 0) {
      s = static_cast<std::int32_t>(next->merged_.size());
      next->slot_of_[v] = s;
      const auto nbrs = base.neighbors(v);
      next->merged_.emplace_back(nbrs.begin(), nbrs.end());
      next->adds_.emplace_back();
      next->dels_.emplace_back();
    }
    return s;
  };
  auto connect = [&](VertexId u, VertexId v) {
    const auto s = static_cast<std::size_t>(slot(u));
    sorted_insert(next->merged_[s], v);
    if (base.has_edge(u, v))
      sorted_erase(next->dels_[s], v);  // re-insert of a tombstoned base edge
    else
      sorted_insert(next->adds_[s], v);
  };
  auto disconnect = [&](VertexId u, VertexId v) {
    const auto s = static_cast<std::size_t>(slot(u));
    sorted_erase(next->merged_[s], v);
    if (base.has_edge(u, v))
      sorted_insert(next->dels_[s], v);
    else
      sorted_erase(next->adds_[s], v);  // deletion of a previously added edge
  };
  for (const auto& [u, v] : result.applied.inserted) {
    connect(u, v);
    connect(v, u);
  }
  for (const auto& [u, v] : result.applied.deleted) {
    disconnect(u, v);
    disconnect(v, u);
  }

  // Delta vs base, recomputed from the per-vertex lists (each undirected
  // edge appears in both endpoints' lists; keep the u < v copy).
  for (VertexId u = 0; u < n; ++u) {
    const std::int32_t s = next->slot_of_[u];
    if (s < 0) continue;
    for (VertexId v : next->adds_[static_cast<std::size_t>(s)])
      if (u < v) next->delta_from_base_.inserted.emplace_back(u, v);
    for (VertexId v : next->dels_[static_cast<std::size_t>(s)])
      if (u < v) next->delta_from_base_.deleted.emplace_back(u, v);
  }

  if (injector_.has_value() &&
      injector_->should_fail(FaultSite::kUpdateApply, apply_seq_++)) {
    // The fully built successor is dropped; the published version is
    // untouched, so a failed apply is invisible to readers.
    throw FaultInjectedError("injected fault: update batch apply failed");
  }
  ++apply_seq_;

  // Write-ahead point: the successor exists but is not yet visible. A hook
  // failure (torn WAL append past its retry budget) propagates and the batch
  // never publishes — memory and durable state cannot diverge.
  result.snapshot = next;
  if (pre_publish) pre_publish(result);

  current_ = std::move(next);
  result.snapshot = current_;
  return result;
}

std::shared_ptr<const GraphSnapshot> MutableGraph::compact() {
  std::lock_guard<std::mutex> lock(mu_);
  const GraphSnapshot& cur = *current_;
  if (cur.delta_from_base_.empty()) return current_;  // already compact
  auto base = std::make_shared<const Graph>(cur.compacted());
  auto next = std::make_shared<GraphSnapshot>(GraphSnapshot{});
  next->base_ = base;
  if (storage_policy_.backend != storage::Backend::kUncompressed)
    next->store_ = storage::GraphStore::build(base, storage_policy_);
  next->epoch_ = cur.epoch_;  // same logical graph, same epoch
  next->num_edges_ = cur.num_edges_;
  next->slot_of_.assign(cur.num_vertices(), -1);
  current_ = std::move(next);
  return current_;
}

DeltaOverlay::DeltaOverlay(std::shared_ptr<const GraphSnapshot> snap)
    : snap_(std::move(snap)),
      lease_(snap_->storage_lease()),
      slots_(snap_->num_vertices(), -1) {}

std::vector<VertexId>& DeltaOverlay::touch(VertexId v) {
  STM_CHECK(v < snap_->num_vertices());
  std::int32_t s = slots_[v];
  if (s < 0) {
    s = static_cast<std::int32_t>(lists_.size());
    // Resolve through the snapshot layer once; afterwards the overlay list
    // fully shadows it (GraphView consults the inner layer first).
    const auto nbrs = snap_->view().neighbors(v);
    lists_.emplace_back(nbrs.begin(), nbrs.end());
    slots_[v] = s;
  }
  return lists_[static_cast<std::size_t>(s)];
}

void DeltaOverlay::add_edge(VertexId u, VertexId v) {
  STM_CHECK(u != v);
  std::vector<VertexId>& nu = touch(u);
  STM_CHECK_MSG(!std::binary_search(nu.begin(), nu.end(), v),
                "overlay add of a present edge " << u << "-" << v);
  sorted_insert(nu, v);
  sorted_insert(touch(v), u);
}

void DeltaOverlay::remove_edge(VertexId u, VertexId v) {
  STM_CHECK(u != v);
  sorted_erase(touch(u), v);
  sorted_erase(touch(v), u);
}

}  // namespace stm
