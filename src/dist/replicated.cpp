#include "dist/replicated.hpp"

#include <algorithm>
#include <optional>

#include "core/engine.hpp"
#include "util/check.hpp"

namespace stm::dist {

MultiGpuResult run_replicated(const Graph& g, const MatchingPlan& plan,
                              const Partition& partition,
                              const EngineConfig& cfg) {
  const std::uint32_t num_shards = partition.num_shards();
  STM_CHECK(num_shards >= 1);
  std::optional<FaultInjector> injector;
  if (cfg.fault.enabled()) {
    STM_CHECK(cfg.fault.max_unit_attempts >= 1);
    injector.emplace(cfg.fault);
  }
  MultiGpuResult result;
  for (std::uint32_t d = 0; d < num_shards; ++d) {
    const OuterSlice slice = outer_slice(partition, d);
    EngineConfig device_cfg = cfg;
    device_cfg.v_begin = slice.v_begin;
    device_cfg.v_end = slice.v_end;
    device_cfg.v_stride = slice.v_stride;

    // A slice is the whole recovery unit at this level: a failed device's
    // partial count is discarded and the slice re-run from scratch, so the
    // aggregate stays exact. Re-runs serialize on the device, so its
    // simulated time accumulates across attempts.
    double device_ms = 0.0;
    std::uint32_t attempt = 0;
    for (;;) {
      MatchResult r = stmatch_match(g, plan, device_cfg);
      device_ms += r.stats.sim_ms;
      const bool engine_failed = r.query.status == QueryStatus::kInternalError;
      const bool device_failed =
          injector.has_value() &&
          injector->should_fail(FaultSite::kDeviceFail,
                                (static_cast<std::uint64_t>(d) << 16) |
                                    attempt);
      if (!engine_failed && !device_failed) {
        if (attempt > 0) ++result.slices_recovered;
        result.count += r.count;
        result.per_device.push_back(std::move(r));
        break;
      }
      ++result.device_faults;
      if (++attempt >= cfg.fault.max_unit_attempts) {
        // Budget exhausted: report the failure instead of a wrong count.
        result.status = QueryStatus::kInternalError;
        result.per_device.push_back(std::move(r));
        break;
      }
      // Retries decide faults under a fresh incarnation so a transient
      // failure schedule clears deterministically on re-execution.
      device_cfg.fault.incarnation = cfg.fault.incarnation + attempt;
    }
    result.sim_ms = std::max(result.sim_ms, device_ms);
    if (result.status != QueryStatus::kOk) break;
  }
  return result;
}

}  // namespace stm::dist
