// Graph partitioning for the sharded execution subsystem (DESIGN.md §11).
//
// A Partition splits the data graph's vertex set into disjoint ownership
// ranges ("shards") and materializes each shard as a standalone CSR Graph
// plus a vertex remap, so every existing engine (SIMT, host, recursive,
// reference) runs on a shard unchanged via GraphView. Two graphs are built
// per shard:
//   * `local` — the induced subgraph on the owned vertices only. Enumerating
//     on it counts exactly the matches whose vertices are all owned by the
//     shard (the Σ-term of the sharded count decomposition).
//   * `halo`  — the owned vertices plus their 1-hop ghost replicas: every
//     out-of-shard neighbor of an owned vertex appears as a ghost, and every
//     edge incident to an owned vertex is present (owned–owned and
//     owned–ghost; ghost–ghost adjacency is NOT replicated). Halo invariant:
//     for every owned vertex v, halo-degree(v) == global degree(v).
// Edges whose endpoints live in different shards are *cut edges*; each is
// owned by the smaller of its two endpoint shards (the min-shard rule), the
// ownership-based deduplication that makes the cross-shard count exact.
//
// Strategies: contiguous vertex ranges, degree-balanced greedy (LPT over the
// degree sequence), hash (splitmix64 ownership), and interleaved (v mod S —
// the paper's Fig. 11 outer-loop slicing, used by the multi-GPU facade).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/degree_stats.hpp"
#include "graph/graph.hpp"
#include "graph/view.hpp"

namespace stm {
struct DeltaEdges;  // dynamic/dynamic_graph.hpp
}

namespace stm::dist {

enum class PartitionStrategy : std::uint8_t {
  kContiguous = 0,     // vertex ranges [n*s/S, n*(s+1)/S)
  kDegreeBalanced,     // greedy LPT over the degree sequence
  kHash,               // splitmix64(v ^ salt) % S
  kInterleaved,        // v % S (paper Fig. 11 outer-loop slicing)
};
inline constexpr std::size_t kNumPartitionStrategies = 4;

const char* to_string(PartitionStrategy s);
/// Inverse of to_string; throws check_error on unknown names.
PartitionStrategy partition_strategy_from_string(const std::string& name);

struct PartitionConfig {
  std::uint32_t num_shards = 1;
  PartitionStrategy strategy = PartitionStrategy::kContiguous;
  /// Salt of the kHash strategy (distinct salts give distinct partitions).
  std::uint64_t hash_salt = 0;
  /// Build the per-shard local/halo graphs and the cut-edge list. The
  /// multi-GPU facade runs replicated (every device sees the full graph)
  /// and only needs the ownership vector, so it skips materialization.
  bool materialize = true;
};

/// One shard: an ownership range materialized as standalone graphs.
struct Shard {
  std::uint32_t id = 0;
  /// Induced subgraph on the owned vertices (local ids, labels preserved).
  Graph local;
  /// Owned vertices plus 1-hop ghosts; local ids [0, num_owned()) are the
  /// owned vertices (same numbering as `local`), the rest are ghosts.
  Graph halo;
  /// Local id -> global id for `local` (ascending).
  std::vector<VertexId> to_global;
  /// Ghost global ids (ascending); halo id num_owned()+i is ghosts[i].
  std::vector<VertexId> ghosts;
  /// Cut edges owned by this shard under the min-shard rule (global ids,
  /// u < v, sorted).
  std::vector<std::pair<VertexId, VertexId>> cut_edges;

  VertexId num_owned() const {
    return static_cast<VertexId>(to_global.size());
  }
  /// Global id of a halo-local id (owned or ghost).
  VertexId halo_global(VertexId local) const {
    return local < num_owned()
               ? to_global[local]
               : ghosts[static_cast<std::size_t>(local) - num_owned()];
  }
};

/// A full ownership assignment plus (when materialized) the shard graphs.
/// Shards are shared_ptrs so an incremental refresh after a dynamic update
/// batch copies only the shards the batch touched.
struct Partition {
  PartitionConfig config;
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  /// Global vertex -> owning shard.
  std::vector<std::uint32_t> owner;
  /// Materialized shards (empty when config.materialize is false).
  std::vector<std::shared_ptr<const Shard>> shards;
  /// All cut edges in owner-major order (shard 0's cut edges first, each
  /// owner's block sorted by (u, v)) — the fixed global order the cross-
  /// shard inclusion–exclusion prefixes over.
  std::vector<std::pair<VertexId, VertexId>> cut_edges;

  std::uint32_t num_shards() const { return config.num_shards; }
  std::uint32_t owner_of(VertexId v) const { return owner[v]; }
  /// Min-shard ownership rule for a cut edge.
  std::uint32_t cut_owner(VertexId u, VertexId v) const {
    return std::min(owner[u], owner[v]);
  }
  /// Balance report over the current ownership (delegates to
  /// graph/degree_stats; usable whether or not shards are materialized).
  BalanceReport balance(const Graph& g) const;
};

/// Assigns every vertex an owner and (by default) materializes the shards.
/// num_shards >= 1; shards may be empty when num_shards > num_vertices.
Partition partition_graph(const Graph& g, const PartitionConfig& cfg);

/// The outer-loop slice of a shard for replicated execution (engine
/// v_begin/v_end/v_stride). Only the kInterleaved and kContiguous
/// strategies describe their ownership as a slice; others throw.
struct OuterSlice {
  VertexId v_begin = 0;
  VertexId v_end = 0;
  VertexId v_stride = 1;
};
OuterSlice outer_slice(const Partition& p, std::uint32_t shard);

/// Rebuilds the shards affected by a dynamic update delta, reading the new
/// adjacency from `view` (the post-apply snapshot view). Ownership is sticky
/// — vertices never migrate — so only shards owning a delta endpoint (or
/// ghost-replicating one, for halo refresh) are rebuilt; all other shards
/// are shared with the input partition. Returns the refreshed partition and
/// reports the set of rebuilt shard ids through `touched` (optional).
Partition refresh_partition(const Partition& p, GraphView view,
                            const DeltaEdges& delta,
                            std::vector<std::uint32_t>* touched = nullptr);

}  // namespace stm::dist
