// Shard-level work scheduling: the third stealing level.
//
// The paper's engine balances load at two levels — intra-block (shared
// memory) and inter-block (global memory) warp stealing, both inside one
// device. The sharded subsystem adds a third level above them: each shard
// has a queue of coarse work units (its shard-local enumeration and the
// cut-edge anchor chunks it owns), and an idle shard worker steals whole
// units from the queue of the most loaded shard, where "loaded" is the
// remaining estimated cost derived from the SIMT cost model
// (simt/cost_model.hpp). Units run the inner engines, whose own two
// stealing levels remain active underneath.
//
// Scheduling only changes *which worker* runs a unit, never what the unit
// computes: counts are accumulated with commutative additions and fault
// decisions are keyed by unit identity, so results are bit-identical for
// every worker count and steal interleaving.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "util/thread_pool.hpp"

namespace stm::dist {

/// One coarse schedulable unit of sharded work. `run` must not throw (the
/// pool terminates on escaping exceptions); units report failure through
/// the state they capture.
struct WorkUnit {
  /// Queue the unit starts on (the shard that owns the work).
  std::uint32_t home_shard = 0;
  /// Estimated cost in simulated cycles; used to pick steal victims and to
  /// run expensive units first (LPT order within a queue).
  double est_cost = 0.0;
  std::function<void()> run;
};

struct SchedulerStats {
  /// Units executed in total.
  std::uint64_t executed = 0;
  /// Units run by a worker homed on a different shard (third-level steals).
  std::uint64_t steals = 0;
  /// Units executed per home shard (indexed by shard id).
  std::vector<std::uint64_t> per_shard_executed;
  /// Units stolen away from each shard's queue.
  std::vector<std::uint64_t> per_shard_stolen;
};

/// Per-shard work queues drained by `num_workers` logical workers on a
/// thread pool. Worker w is homed on shard (w mod num_shards); it drains its
/// home queue costliest-unit-first and, when empty, steals the costliest
/// unit from the shard with the largest remaining estimated cost.
class ShardScheduler {
 public:
  explicit ShardScheduler(std::uint32_t num_shards);

  /// Enqueues a unit on its home shard's queue. Not thread-safe; add all
  /// units before run().
  void add(WorkUnit unit);

  /// Executes every unit via pool.parallel_for over the workers and returns
  /// the steal statistics. The scheduler is left empty.
  SchedulerStats run(ThreadPool& pool, std::uint32_t num_workers);

 private:
  /// Pops the next unit for worker `w`; sets `stolen` when it came from a
  /// foreign queue. Returns false when all queues are empty.
  bool pop(std::uint32_t worker, std::uint32_t num_workers, WorkUnit& out,
           bool& stolen, std::uint32_t& from_shard);

  std::uint32_t num_shards_;
  std::mutex mu_;
  /// Sorted ascending by est_cost; pop_back takes the costliest.
  std::vector<std::vector<WorkUnit>> queues_;
  std::vector<double> remaining_cost_;
};

}  // namespace stm::dist
