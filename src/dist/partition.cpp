#include "dist/partition.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "dynamic/dynamic_graph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stm::dist {

const char* to_string(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kContiguous: return "contiguous";
    case PartitionStrategy::kDegreeBalanced: return "degree_balanced";
    case PartitionStrategy::kHash: return "hash";
    case PartitionStrategy::kInterleaved: return "interleaved";
  }
  return "unknown";
}

PartitionStrategy partition_strategy_from_string(const std::string& name) {
  // Accept the CLI-friendly hyphen spelling ("degree-balanced") too.
  std::string canon = name;
  std::replace(canon.begin(), canon.end(), '-', '_');
  for (std::size_t i = 0; i < kNumPartitionStrategies; ++i) {
    const auto s = static_cast<PartitionStrategy>(i);
    if (canon == to_string(s)) return s;
  }
  STM_CHECK_MSG(false, "unknown partition strategy: " << name);
}

namespace {

std::vector<std::uint32_t> assign_owners(const Graph& g,
                                         const PartitionConfig& cfg) {
  const VertexId n = g.num_vertices();
  const std::uint32_t s_count = cfg.num_shards;
  std::vector<std::uint32_t> owner(n, 0);
  switch (cfg.strategy) {
    case PartitionStrategy::kContiguous: {
      // Ranges [n*s/S, n*(s+1)/S) — the same boundaries outer_slice reports.
      std::uint32_t s = 0;
      for (VertexId v = 0; v < n; ++v) {
        while (v >= static_cast<VertexId>(static_cast<std::uint64_t>(n) *
                                          (s + 1) / s_count))
          ++s;
        owner[v] = s;
      }
      break;
    }
    case PartitionStrategy::kDegreeBalanced: {
      // Greedy LPT: heaviest vertices first, each to the currently lightest
      // shard (degree + 1 so isolated vertices still spread out). Ties break
      // on the smallest shard id, so the assignment is deterministic.
      std::vector<VertexId> by_degree(n);
      std::iota(by_degree.begin(), by_degree.end(), VertexId{0});
      std::stable_sort(by_degree.begin(), by_degree.end(),
                       [&](VertexId a, VertexId b) {
                         return g.degree(a) > g.degree(b);
                       });
      std::vector<std::uint64_t> load(s_count, 0);
      for (VertexId v : by_degree) {
        std::uint32_t best = 0;
        for (std::uint32_t s = 1; s < s_count; ++s)
          if (load[s] < load[best]) best = s;
        owner[v] = best;
        load[best] += g.degree(v) + 1;
      }
      break;
    }
    case PartitionStrategy::kHash: {
      for (VertexId v = 0; v < n; ++v) {
        std::uint64_t state = cfg.hash_salt ^ v;
        owner[v] = static_cast<std::uint32_t>(splitmix64(state) % s_count);
      }
      break;
    }
    case PartitionStrategy::kInterleaved: {
      for (VertexId v = 0; v < n; ++v) owner[v] = v % s_count;
      break;
    }
  }
  return owner;
}

/// Materializes one shard from the global adjacency in `view`.
std::shared_ptr<const Shard> build_shard(GraphView view,
                                         const std::vector<std::uint32_t>& owner,
                                         std::uint32_t id) {
  auto shard = std::make_shared<Shard>();
  shard->id = id;
  const VertexId n = view.num_vertices();
  for (VertexId v = 0; v < n; ++v)
    if (owner[v] == id) shard->to_global.push_back(v);

  // Global -> local for owned vertices; ghosts are discovered below.
  std::vector<VertexId> local_of(n, kNoVertex);
  for (VertexId l = 0; l < shard->num_owned(); ++l)
    local_of[shard->to_global[l]] = l;

  for (VertexId v : shard->to_global)
    for (VertexId w : view.neighbors(v))
      if (owner[w] != id && local_of[w] == kNoVertex) {
        shard->ghosts.push_back(w);
        local_of[w] = 0;  // marker; real halo ids assigned after the sort
      }
  std::sort(shard->ghosts.begin(), shard->ghosts.end());
  for (VertexId i = 0; i < static_cast<VertexId>(shard->ghosts.size()); ++i)
    local_of[shard->ghosts[i]] = shard->num_owned() + i;

  GraphBuilder local_b(shard->num_owned());
  GraphBuilder halo_b(shard->num_owned() +
                      static_cast<VertexId>(shard->ghosts.size()));
  for (VertexId v : shard->to_global) {
    for (VertexId w : view.neighbors(v)) {
      if (owner[w] == id) {
        if (v < w) {
          local_b.add_edge(local_of[v], local_of[w]);
          halo_b.add_edge(local_of[v], local_of[w]);
        }
      } else {
        // Owned–ghost boundary edge: present in the halo only. Each cut edge
        // is visited once from its owned side (w is not iterated here), so
        // recording the normalized pair yields no duplicates.
        halo_b.add_edge(local_of[v], local_of[w]);
        if (id == std::min(owner[v], owner[w]))
          shard->cut_edges.emplace_back(std::min(v, w), std::max(v, w));
      }
    }
  }
  std::sort(shard->cut_edges.begin(), shard->cut_edges.end());

  Graph local = local_b.build();
  Graph halo = halo_b.build();
  if (view.is_labeled()) {
    std::vector<Label> local_labels(shard->num_owned());
    for (VertexId l = 0; l < shard->num_owned(); ++l)
      local_labels[l] = view.label(shard->to_global[l]);
    std::vector<Label> halo_labels = local_labels;
    halo_labels.reserve(local_labels.size() + shard->ghosts.size());
    for (VertexId gv : shard->ghosts) halo_labels.push_back(view.label(gv));
    local = local.with_labels(std::move(local_labels));
    halo = halo.with_labels(std::move(halo_labels));
  }
  shard->local = std::move(local);
  shard->halo = std::move(halo);
  return shard;
}

/// Rebuilds the owner-major global cut-edge order from the per-shard lists.
void collect_cut_edges(Partition& p) {
  p.cut_edges.clear();
  for (const auto& shard : p.shards)
    p.cut_edges.insert(p.cut_edges.end(), shard->cut_edges.begin(),
                       shard->cut_edges.end());
}

}  // namespace

BalanceReport Partition::balance(const Graph& g) const {
  return balance_report(g, owner, config.num_shards);
}

Partition partition_graph(const Graph& g, const PartitionConfig& cfg) {
  STM_CHECK_MSG(cfg.num_shards >= 1, "a partition needs at least one shard");
  Partition p;
  p.config = cfg;
  p.num_vertices = g.num_vertices();
  p.num_edges = g.num_edges();
  if (g.num_vertices() == 0) {
    p.owner.clear();
    if (cfg.materialize) {
      for (std::uint32_t s = 0; s < cfg.num_shards; ++s) {
        auto shard = std::make_shared<Shard>();
        shard->id = s;
        p.shards.push_back(std::move(shard));
      }
    }
    return p;
  }
  p.owner = assign_owners(g, cfg);
  if (cfg.materialize) {
    const GraphView view(g);
    for (std::uint32_t s = 0; s < cfg.num_shards; ++s)
      p.shards.push_back(build_shard(view, p.owner, s));
    collect_cut_edges(p);
  }
  return p;
}

OuterSlice outer_slice(const Partition& p, std::uint32_t shard) {
  STM_CHECK(shard < p.num_shards());
  OuterSlice slice;
  switch (p.config.strategy) {
    case PartitionStrategy::kInterleaved:
      slice.v_begin = shard;
      slice.v_end = p.num_vertices;
      slice.v_stride = p.num_shards();
      break;
    case PartitionStrategy::kContiguous:
      slice.v_begin = static_cast<VertexId>(
          static_cast<std::uint64_t>(p.num_vertices) * shard / p.num_shards());
      slice.v_end = static_cast<VertexId>(static_cast<std::uint64_t>(
                                              p.num_vertices) *
                                          (shard + 1) / p.num_shards());
      slice.v_stride = 1;
      break;
    default:
      STM_CHECK_MSG(false, "outer_slice requires a range-describable strategy "
                           "(contiguous or interleaved), got "
                               << to_string(p.config.strategy));
  }
  return slice;
}

Partition refresh_partition(const Partition& p, GraphView view,
                            const DeltaEdges& delta,
                            std::vector<std::uint32_t>* touched) {
  STM_CHECK_MSG(p.config.materialize,
                "refresh_partition requires a materialized partition");
  STM_CHECK(view.num_vertices() == p.num_vertices);

  // A shard must be rebuilt when it owns a delta endpoint (its local/halo
  // graphs change) or ghost-replicates one (its halo changes). The ghost
  // case is detected from the *post-apply* adjacency plus the old ghost
  // lists: a shard that replicated an endpoint before the delta, or that
  // owns a neighbor of one now, sees a halo-visible change.
  std::vector<bool> rebuild(p.num_shards(), false);
  auto mark_endpoint = [&](VertexId v) {
    rebuild[p.owner_of(v)] = true;
    for (VertexId w : view.neighbors(v)) rebuild[p.owner_of(w)] = true;
    for (const auto& shard : p.shards)
      if (std::binary_search(shard->ghosts.begin(), shard->ghosts.end(), v))
        rebuild[shard->id] = true;
  };
  for (const auto& [u, v] : delta.inserted) {
    mark_endpoint(u);
    mark_endpoint(v);
  }
  for (const auto& [u, v] : delta.deleted) {
    mark_endpoint(u);
    mark_endpoint(v);
  }

  Partition next;
  next.config = p.config;
  next.num_vertices = p.num_vertices;
  next.owner = p.owner;  // ownership is sticky
  next.num_edges = 0;
  next.shards.resize(p.shards.size());
  for (std::uint32_t s = 0; s < p.num_shards(); ++s) {
    if (rebuild[s]) {
      next.shards[s] = build_shard(view, next.owner, s);
      if (touched != nullptr) touched->push_back(s);
    } else {
      next.shards[s] = p.shards[s];
    }
  }
  collect_cut_edges(next);
  // Edge count of the refreshed version: intra edges plus cut edges.
  for (const auto& shard : next.shards)
    next.num_edges += shard->local.num_edges();
  next.num_edges += static_cast<EdgeId>(next.cut_edges.size());
  return next;
}

}  // namespace stm::dist
