#include "dist/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "baselines/reference.hpp"
#include "core/engine.hpp"
#include "core/recursive.hpp"
#include "dist/scheduler.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "pattern/matching_order.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace stm::dist {

const char* to_string(LocalEngine e) {
  switch (e) {
    case LocalEngine::kHost: return "host";
    case LocalEngine::kSimt: return "simt";
    case LocalEngine::kRecursive: return "recursive";
    case LocalEngine::kReference: return "reference";
  }
  return "unknown";
}

namespace {

/// Unit-identity bits of a kShardFailure fault key: (kind, index, attempt).
constexpr std::uint64_t unit_key(std::uint64_t kind, std::uint64_t index,
                                 std::uint64_t attempt) {
  return (kind << 40) | (index << 16) | attempt;
}
constexpr std::uint64_t kLocalUnit = 0;
constexpr std::uint64_t kChunkUnit = 1;

/// The shard-local term of one shard, in the requested count mode.
struct LocalOutcome {
  std::uint64_t count = 0;
  QueryStats query;
  std::uint32_t attempts = 0;
};

/// One cut-edge chunk's contribution (always embeddings).
struct ChunkOutcome {
  std::uint64_t embeddings = 0;
  std::uint64_t anchored_runs = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t units_recovered = 0;
  QueryStatus status = QueryStatus::kOk;
  std::uint32_t attempts = 0;
};

}  // namespace

ShardedMatcher::ShardedMatcher(const Pattern& pattern,
                               const ShardedOptions& opts)
    : pattern_(pattern), opts_(opts) {
  STM_CHECK_MSG(pattern_.size() >= 1, "pattern must have at least one vertex");
  if (opts_.plan.induced == Induced::kEdge && pattern_.size() >= 2)
    enumerator_.emplace(pattern_, opts_.plan, opts_.anchor_engine, opts_.simt);
}

ShardedResult ShardedMatcher::match(GraphView g, const Partition& partition,
                                    const MatchingPlan& local_plan,
                                    std::uint64_t attempt,
                                    const CancelToken* cancel) const {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint32_t num_shards = partition.num_shards();
  STM_CHECK_MSG(!partition.shards.empty(),
                "sharded matching requires a materialized partition");
  STM_CHECK(g.num_vertices() == partition.num_vertices);
  STM_CHECK_MSG(opts_.plan.induced == Induced::kEdge || num_shards == 1,
                "vertex-induced matching cannot be sharded: an induced match "
                "can cross shards without containing a cut edge");

  ShardedResult result;
  result.cut_edges = partition.cut_edges.size();
  if (partition.num_edges > 0)
    result.cut_fraction = static_cast<double>(result.cut_edges) /
                          static_cast<double>(partition.num_edges);
  VertexId max_owned = 0;
  for (const auto& shard : partition.shards)
    max_owned = std::max(max_owned, shard->num_owned());
  if (partition.num_vertices > 0)
    result.vertex_imbalance =
        static_cast<double>(max_owned) * num_shards / partition.num_vertices;

  // Fault schedule of this call: the caller's retry attempt shifts the
  // incarnation so a transient shard failure clears deterministically.
  FaultConfig fault_cfg = opts_.fault;
  fault_cfg.incarnation += attempt;
  FaultInjector injector(fault_cfg);
  const bool chaos = fault_cfg.enabled();
  std::atomic<bool> exhausted{false};

  // --- Shard-local units -------------------------------------------------
  std::vector<LocalOutcome> locals(num_shards);
  const CostModel& cost = opts_.simt.cost;
  ShardScheduler scheduler(num_shards);

  auto run_local = [&](std::uint32_t s) {
    const Shard& shard = *partition.shards[s];
    LocalOutcome& out = locals[s];
    for (std::uint32_t a = 0; a < fault_cfg.max_unit_attempts; ++a) {
      ++out.attempts;
      if (cancel != nullptr && cancel->expired()) {
        out.query.status = cancel->status();
        return;
      }
      if (chaos && injector.should_fail(FaultSite::kShardFailure,
                                        unit_key(kLocalUnit, s, a)))
        continue;  // the unit died before completing; re-run it
      std::uint64_t count = 0;
      QueryStats q;
      switch (opts_.local_engine) {
        case LocalEngine::kHost: {
          HostEngineConfig cfg = opts_.host;
          cfg.fault.incarnation = opts_.host.fault.incarnation + attempt + a;
          const HostMatchResult r =
              host_match(shard.local, local_plan, cfg, cancel);
          count = r.count;
          q = r.stats;
          break;
        }
        case LocalEngine::kSimt: {
          EngineConfig cfg = opts_.simt;
          cfg.v_begin = 0;
          cfg.v_end = 0;
          cfg.v_stride = 1;
          cfg.pin_v1 = kNoVertex;
          cfg.fault.incarnation = opts_.simt.fault.incarnation + attempt + a;
          const MatchResult r = stmatch_match(shard.local, local_plan, cfg, cancel);
          count = r.count;
          q = r.query;
          break;
        }
        case LocalEngine::kRecursive: {
          RecursiveCounters rc;
          count = recursive_count_range(shard.local, local_plan, 0,
                                        shard.local.num_vertices(), &rc, cancel);
          q.scalar_ops = rc.scalar_ops;
          q.sets_built = rc.sets_built;
          if (cancel != nullptr && cancel->expired()) q.status = cancel->status();
          break;
        }
        case LocalEngine::kReference: {
          count = reference_count(
              shard.local, pattern_,
              {opts_.plan.induced, opts_.plan.count_mode}, cancel);
          if (cancel != nullptr && cancel->expired()) q.status = cancel->status();
          break;
        }
      }
      if (q.status == QueryStatus::kInternalError) {
        // The inner engine's own recovery budget ran out; treat the whole
        // shard run as a failed unit and re-run with a new incarnation.
        out.query.faults_injected += q.faults_injected;
        continue;
      }
      out.count = count;
      out.query += q;
      if (a > 0) ++out.query.units_recovered;
      return;
    }
    out.query.status = QueryStatus::kInternalError;
    exhausted.store(true, std::memory_order_relaxed);
  };

  for (std::uint32_t s = 0; s < num_shards; ++s) {
    const Shard& shard = *partition.shards[s];
    if (shard.num_owned() == 0) {
      locals[s].attempts = 0;
      continue;
    }
    // LPT proxy from the SIMT cost model: a shard's enumeration scans each
    // vertex's neighborhood against its neighbors' lists (~Σ deg²).
    double est = static_cast<double>(cost.kernel_launch);
    for (VertexId v = 0; v < shard.local.num_vertices(); ++v) {
      const double d = static_cast<double>(shard.local.degree(v));
      est += d * d * static_cast<double>(cost.wave_overhead);
    }
    scheduler.add({s, est, [&run_local, s] { run_local(s); }});
  }

  // --- Cut-edge anchor chunks --------------------------------------------
  // Checkpoint k = G_intra + all cut edges of chunks < k, built once,
  // sequentially; a chunk's worker layers a transient DeltaOverlay on its
  // checkpoint and counts after each of its own edges, realizing the prefix
  // identity independently of scheduling order.
  const auto& cut = partition.cut_edges;
  const std::uint32_t chunk_size = std::max<std::uint32_t>(1, opts_.cut_chunk_size);
  const std::size_t num_chunks =
      enumerator_.has_value() ? (cut.size() + chunk_size - 1) / chunk_size : 0;
  std::vector<ChunkOutcome> chunks(num_chunks);
  std::optional<MutableGraph> intra;
  std::vector<std::shared_ptr<const GraphSnapshot>> checkpoints;
  if (num_chunks > 0) {
    GraphBuilder intra_b(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      for (VertexId w : g.neighbors(v))
        if (v < w && partition.owner_of(v) == partition.owner_of(w))
          intra_b.add_edge(v, w);
    Graph intra_g = intra_b.build();
    if (g.is_labeled()) {
      std::vector<Label> labels(g.num_vertices());
      for (VertexId v = 0; v < g.num_vertices(); ++v) labels[v] = g.label(v);
      intra_g = intra_g.with_labels(std::move(labels));
    }
    intra.emplace(std::move(intra_g));
    checkpoints.reserve(num_chunks);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      checkpoints.push_back(intra->snapshot());
      UpdateBatch batch;
      const std::size_t lo = c * chunk_size;
      const std::size_t hi = std::min(cut.size(), lo + chunk_size);
      batch.insertions.assign(cut.begin() + lo, cut.begin() + hi);
      intra->apply(batch);
    }
  }

  auto run_chunk = [&](std::size_t c) {
    ChunkOutcome& out = chunks[c];
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(cut.size(), lo + chunk_size);
    for (std::uint32_t a = 0; a < fault_cfg.max_unit_attempts; ++a) {
      ++out.attempts;
      if (cancel != nullptr && cancel->expired()) {
        out.status = cancel->status();
        return;
      }
      if (chaos && injector.should_fail(FaultSite::kShardFailure,
                                        unit_key(kChunkUnit, c, a)))
        continue;
      std::uint64_t embeddings = 0;
      std::uint64_t runs = 0;
      DeltaOverlay overlay(checkpoints[c]);
      for (std::size_t i = lo; i < hi; ++i) {
        const auto& [u, v] = cut[i];
        overlay.add_edge(u, v);
        embeddings += enumerator_->count_containing(overlay.view(), u, v, &runs);
      }
      out.embeddings = embeddings;
      out.anchored_runs = runs;
      if (a > 0) ++out.units_recovered;
      return;
    }
    out.status = QueryStatus::kInternalError;
    exhausted.store(true, std::memory_order_relaxed);
  };

  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(cut.size(), lo + chunk_size);
    // Anchored work per cut edge scales with the endpoint degrees, the
    // anchor count, and both seed orientations.
    double est = static_cast<double>(cost.kernel_launch);
    for (std::size_t i = lo; i < hi; ++i) {
      const auto& [u, v] = cut[i];
      est += static_cast<double>(g.degree(u) + g.degree(v)) *
             static_cast<double>(2 * enumerator_->num_anchors()) *
             static_cast<double>(cost.wave_overhead);
    }
    scheduler.add({partition.cut_owner(cut[lo].first, cut[lo].second), est,
                   [&run_chunk, c] { run_chunk(c); }});
  }

  // --- Execute and aggregate ---------------------------------------------
  const std::uint32_t num_workers =
      opts_.num_workers > 0 ? opts_.num_workers : num_shards;
  ThreadPool pool(num_workers);
  const SchedulerStats sched = scheduler.run(pool, num_workers);
  result.chunk_steals = sched.steals;

  result.shards.resize(num_shards);
  QueryStats merged;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    ShardStats& st = result.shards[s];
    st.shard = s;
    st.owned_vertices = partition.shards[s]->num_owned();
    st.local_count = locals[s].count;
    st.cut_edges_owned = partition.shards[s]->cut_edges.size();
    st.attempts = locals[s].attempts;
    st.query = locals[s].query;
    merged += st.query;
    result.local_total += locals[s].count;
  }
  std::uint64_t cut_embeddings = 0;
  for (const ChunkOutcome& c : chunks) {
    cut_embeddings += c.embeddings;
    result.anchored_runs += c.anchored_runs;
    result.units_recovered += c.units_recovered;
    result.faults_injected += c.faults_injected;
    if (c.status != QueryStatus::kOk && merged.status == QueryStatus::kOk)
      merged.status = c.status;
  }
  result.units_recovered += merged.units_recovered;
  result.faults_injected +=
      merged.faults_injected + injector.total_injected();

  result.cut_total = cut_embeddings;
  if (opts_.plan.count_mode == CountMode::kUniqueSubgraphs &&
      cut_embeddings > 0) {
    const std::uint64_t aut = automorphisms();
    STM_CHECK_MSG(cut_embeddings % aut == 0,
                  "cut-edge embedding total " << cut_embeddings
                                              << " not divisible by |Aut| "
                                              << aut);
    result.cut_total = cut_embeddings / aut;
  }
  result.count = result.local_total + result.cut_total;

  result.status = merged.status;
  if (exhausted.load(std::memory_order_relaxed)) {
    result.status = QueryStatus::kInternalError;
    result.error = "a sharded unit exhausted its recovery budget";
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  return result;
}

ShardedResult sharded_match(const Graph& g, const Pattern& pattern,
                            const PartitionConfig& partition,
                            const ShardedOptions& opts) {
  const Partition p = partition_graph(g, partition);
  ShardedMatcher matcher(pattern, opts);
  const MatchingPlan plan(reorder_for_matching(pattern), opts.plan);
  return matcher.match(g, p, plan);
}

}  // namespace stm::dist
