#include "dist/scheduler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stm::dist {

ShardScheduler::ShardScheduler(std::uint32_t num_shards)
    : num_shards_(num_shards),
      queues_(num_shards),
      remaining_cost_(num_shards, 0.0) {
  STM_CHECK(num_shards >= 1);
}

void ShardScheduler::add(WorkUnit unit) {
  STM_CHECK(unit.home_shard < num_shards_);
  remaining_cost_[unit.home_shard] += unit.est_cost;
  auto& q = queues_[unit.home_shard];
  // Keep the queue sorted ascending by cost so back() is the costliest
  // (LPT: big units first shortens the makespan tail).
  q.insert(std::upper_bound(q.begin(), q.end(), unit,
                            [](const WorkUnit& a, const WorkUnit& b) {
                              return a.est_cost < b.est_cost;
                            }),
           std::move(unit));
}

bool ShardScheduler::pop(std::uint32_t worker, std::uint32_t num_workers,
                         WorkUnit& out, bool& stolen,
                         std::uint32_t& from_shard) {
  const std::uint32_t home = worker % num_shards_;
  std::lock_guard<std::mutex> lock(mu_);
  // With more shards than workers a worker also "homes" every shard that
  // maps to it, so no queue is left to steals only.
  for (std::uint32_t s = home; s < num_shards_; s += num_workers) {
    if (!queues_[s].empty()) {
      out = std::move(queues_[s].back());
      queues_[s].pop_back();
      remaining_cost_[s] -= out.est_cost;
      stolen = false;
      from_shard = s;
      return true;
    }
  }
  // Steal from the most loaded shard (max remaining estimated cost).
  std::uint32_t victim = num_shards_;
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    if (queues_[s].empty()) continue;
    if (victim == num_shards_ || remaining_cost_[s] > remaining_cost_[victim])
      victim = s;
  }
  if (victim == num_shards_) return false;
  out = std::move(queues_[victim].back());
  queues_[victim].pop_back();
  remaining_cost_[victim] -= out.est_cost;
  stolen = true;
  from_shard = victim;
  return true;
}

SchedulerStats ShardScheduler::run(ThreadPool& pool,
                                   std::uint32_t num_workers) {
  STM_CHECK(num_workers >= 1);
  SchedulerStats stats;
  stats.per_shard_executed.assign(num_shards_, 0);
  stats.per_shard_stolen.assign(num_shards_, 0);
  std::mutex stats_mu;
  pool.parallel_for(num_workers, [&](std::size_t w) {
    WorkUnit unit;
    bool stolen = false;
    std::uint32_t from = 0;
    while (pop(static_cast<std::uint32_t>(w), num_workers, unit, stolen,
               from)) {
      unit.run();
      std::lock_guard<std::mutex> lock(stats_mu);
      ++stats.executed;
      ++stats.per_shard_executed[from];
      if (stolen) {
        ++stats.steals;
        ++stats.per_shard_stolen[from];
      }
    }
  });
  return stats;
}

}  // namespace stm::dist
