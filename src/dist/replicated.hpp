// Replicated execution over a partition's outer-loop slices.
//
// The paper's multi-GPU mode (Fig. 11) duplicates the input graph on every
// device and divides only the outermost loop — ownership without
// materialization. That is a degenerate partition: run_replicated drives
// the same slice/retry/recovery loop as stmatch_match_multi_gpu from a
// Partition's ownership (via outer_slice), so the multi-GPU entry point and
// the sharded subsystem share one ownership and recovery story. The
// kDeviceFail fault keys, incarnation bumps, and result semantics are
// bit-identical to the pre-partitioner implementation — regression-locked
// by the MultiGpu test suite.
#pragma once

#include "core/config.hpp"
#include "core/multi_gpu.hpp"
#include "dist/partition.hpp"

namespace stm::dist {

/// Runs `plan` once per shard of `partition` over the shard's outer-loop
/// slice of the (fully replicated) graph `g`, with whole-slice retry under
/// FaultSite::kDeviceFail. The partition needs no materialized shards; its
/// strategy must be slice-describable (kInterleaved or kContiguous).
MultiGpuResult run_replicated(const Graph& g, const MatchingPlan& plan,
                              const Partition& partition,
                              const EngineConfig& cfg = {});

}  // namespace stm::dist
