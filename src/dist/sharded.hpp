// Cross-shard coordinator: exact pattern counts over a partitioned graph.
//
// The global count decomposes over a partition's fixed cut-edge order
// c_1..c_m (owner-major, see partition.hpp). With G_intra = G minus all cut
// edges,
//
//   count(G) = Σ_s count(shard_s.local)
//            + Σ_i |embeddings containing c_i in G_intra + {c_1..c_i}|
//
// The first term: G_intra is the disjoint union of the shard-local graphs,
// and counts of connected patterns are additive over a disjoint union, so
// every existing engine runs each shard's standalone `local` Graph
// unchanged. The second term is the prefix inclusion–exclusion identity the
// incremental matcher already uses for delta edges (every embedding missing
// from G_intra contains at least one cut edge and is counted exactly once,
// at the largest-index cut edge it contains), executed by the shared
// AnchoredEnumerator. Anchored plans are always compiled in kEmbeddings
// mode; for kUniqueSubgraphs the cut term is divided by |Aut(pattern)|
// (cut-containing embeddings are closed under automorphisms). Vertex-induced
// matching is rejected for more than one shard — an induced match can cross
// shards without containing any cut edge via a non-edge constraint — the
// same reason the incremental matcher rejects it.
//
// Cut edges are processed in chunks so the shard scheduler can steal them:
// chunk k runs against a checkpoint snapshot (G_intra plus all edges of
// chunks < k) plus a transient DeltaOverlay adding its own edges in order.
// Chunks and shard-local runs are retryable units under the kShardFailure
// fault site, keyed by unit identity with per-attempt incarnation bumps —
// PR 2's recovery scheme, one level up.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/fault.hpp"
#include "core/host_engine.hpp"
#include "core/query_stats.hpp"
#include "dist/partition.hpp"
#include "dynamic/incremental.hpp"
#include "pattern/pattern.hpp"
#include "pattern/plan.hpp"

namespace stm::dist {

/// Engine executing the shard-local enumerations (anchored cut-edge runs
/// use DeltaEngine from dynamic/incremental.hpp).
enum class LocalEngine : std::uint8_t {
  kHost = 0,   // host-parallel engine (production CPU path)
  kSimt,       // simulated-GPU stack engine
  kRecursive,  // sequential recursive executor
  kReference,  // brute-force baseline (tests)
};

const char* to_string(LocalEngine e);

struct ShardedOptions {
  /// Matching semantics. induced must be kEdge when the partition has more
  /// than one shard.
  PlanOptions plan;
  LocalEngine local_engine = LocalEngine::kHost;
  /// Engine of the anchored cut-edge enumerations.
  DeltaEngine anchor_engine = DeltaEngine::kHost;
  /// Inner-engine configurations (v-range/pin fields are overwritten).
  HostEngineConfig host;
  EngineConfig simt;
  /// Scheduler workers (0 = one per shard).
  std::uint32_t num_workers = 0;
  /// Cut edges per schedulable anchor chunk.
  std::uint32_t cut_chunk_size = 16;
  /// Chaos schedule for FaultSite::kShardFailure (and, via incarnation
  /// bumps, the inner engines' own sites).
  FaultConfig fault;
};

/// Per-shard outcome of one sharded match.
struct ShardStats {
  std::uint32_t shard = 0;
  VertexId owned_vertices = 0;
  /// Embedding/subgraph count of the shard-local term (requested mode).
  std::uint64_t local_count = 0;
  std::uint64_t cut_edges_owned = 0;
  /// Execution attempts of the shard-local unit (1 = no retries).
  std::uint32_t attempts = 0;
  QueryStats query;
};

struct ShardedResult {
  QueryStatus status = QueryStatus::kOk;
  /// Exact global count in the requested CountMode (valid when status kOk).
  std::uint64_t count = 0;
  /// Σ shard-local counts (requested mode).
  std::uint64_t local_total = 0;
  /// Cut-edge term after automorphism division (requested mode).
  std::uint64_t cut_total = 0;
  std::uint64_t cut_edges = 0;
  /// Anchored engine invocations issued.
  std::uint64_t anchored_runs = 0;
  /// Third-level steals (whole units run by a foreign shard's worker).
  std::uint64_t chunk_steals = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t units_recovered = 0;
  /// Balance gauges of the partition used (max/mean ratios).
  double vertex_imbalance = 1.0;
  double cut_fraction = 0.0;
  double wall_ms = 0.0;
  std::vector<ShardStats> shards;
  std::string error;
};

/// Compiles the pattern-dependent state (anchored plans, |Aut|) once; the
/// shard-local MatchingPlan is passed per match() call so a session-level
/// plan cache can be shared across shards and epochs.
class ShardedMatcher {
 public:
  /// Throws check_error for patterns with no vertices. Anchored plans are
  /// compiled only for edge-induced options and patterns with >= 2 vertices
  /// (otherwise the cut term is zero / unsupported, checked at match()).
  ShardedMatcher(const Pattern& pattern, const ShardedOptions& opts);

  /// Exact count over `partition` of the graph version `g`. `g` must be the
  /// adjacency the partition was built from (the service bundles snapshot +
  /// partition) and `local_plan` a plan compiled from
  /// reorder_for_matching(pattern) with opts.plan. `attempt` offsets the
  /// fault incarnation (the service bumps it per engine retry). A non-null
  /// `cancel` token is polled between units and inside the inner engines.
  /// Throws check_error for vertex-induced options on > 1 shard.
  ShardedResult match(GraphView g, const Partition& partition,
                      const MatchingPlan& local_plan,
                      std::uint64_t attempt = 0,
                      const CancelToken* cancel = nullptr) const;

  const Pattern& pattern() const { return pattern_; }
  const ShardedOptions& options() const { return opts_; }
  std::uint64_t automorphisms() const {
    return enumerator_ ? enumerator_->automorphisms() : 1;
  }

 private:
  Pattern pattern_;
  ShardedOptions opts_;
  /// Null for single-vertex patterns and vertex-induced options.
  std::optional<AnchoredEnumerator> enumerator_;
};

/// Convenience one-shot wrapper: partitions `g`, compiles the local plan,
/// and runs a ShardedMatcher.
ShardedResult sharded_match(const Graph& g, const Pattern& pattern,
                            const PartitionConfig& partition,
                            const ShardedOptions& opts = {});

}  // namespace stm::dist
