// EmitPipeline: the EmbeddingSink handed to engines for streaming queries.
//
// Sits between an engine and the OutputSequencer and owns the two concerns
// the engines must not know about:
//
//   * Vertex-order remapping — engines emit embeddings in plan order
//     (embedding[i] = data vertex at plan position i); the pipeline remaps
//     them to the original pattern's vertex order (out[order[i]] = in[i],
//     with `order` from matching_order()) so API consumers see embeddings
//     indexed by the pattern as they wrote it.
//
//   * kEmitDrop fault injection with exact recovery — each delivery of a
//     bucket over the "transport" may be dropped (deterministic per
//     (bucket, attempt) key); the staged copy is retained and retransmitted
//     until it lands or the max_unit_attempts budget is exhausted, at which
//     point the stream fails with kInternalError. Because a drop loses
//     nothing (the copy is retained) and a success delivers exactly once,
//     the drained stream under chaos is bit-identical to the fault-free run.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/emit.hpp"
#include "core/fault.hpp"
#include "stream/sequencer.hpp"

namespace stm::stream {

class EmitPipeline : public EmbeddingSink {
 public:
  /// `plan_to_orig`: matching_order() of the original pattern — element i is
  /// the original vertex matched at plan position i. Empty = identity (no
  /// remap). `fault` configures the kEmitDrop site (rate 0 = off).
  EmitPipeline(OutputSequencer& seq, std::vector<std::size_t> plan_to_orig,
               const FaultConfig& fault = {});

  void begin(std::uint64_t num_buckets) override;
  bool post(std::uint64_t bucket, std::vector<Embedding>&& batch) override;
  TryPost try_post(std::uint64_t bucket, std::vector<Embedding>& batch) override;

  /// True once the kEmitDrop retry budget was exhausted for some bucket; the
  /// sequencer has then been aborted with kInternalError.
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  std::string error() const;

  /// Embeddings forwarded to the sequencer (feeds stream_emitted_total).
  std::uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  /// kEmitDrop faults fired so far.
  std::uint64_t faults_injected() const {
    return injector_.injected(FaultSite::kEmitDrop);
  }

 private:
  void remap(std::vector<Embedding>& batch) const;
  /// Number of transport drops bucket `bucket` suffers before landing, or
  /// a negative value when the attempt budget is exhausted. Deterministic;
  /// cached so a try_post retried after kWouldBlock doesn't re-roll (and
  /// re-count) the same drops.
  int resolve_drops(std::uint64_t bucket);
  void fail_stream(std::uint64_t bucket);

  OutputSequencer& seq_;
  std::vector<std::size_t> plan_to_orig_;
  FaultInjector injector_;
  std::atomic<bool> failed_{false};
  std::atomic<std::uint64_t> emitted_{0};
  mutable std::mutex mu_;
  std::string error_;
  std::unordered_map<std::uint64_t, int> drop_cache_;  // kWouldBlock retries
};

}  // namespace stm::stream
