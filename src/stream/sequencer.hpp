// OutputSequencer: re-merges per-worker bucket posts into one deterministic
// global embedding stream with bounded-memory backpressure.
//
// Producers (engine workers) post complete buckets in any order and from any
// thread; the consumer drains embeddings strictly in bucket order, and
// within a bucket in the order the engine staged them (extension-tree DFS).
// The result: a drained stream that is bit-identical across thread counts,
// steal interleavings, and engine choice, because bucket ids and intra-bucket
// order are both derived from the plan, never from scheduling.
//
// Backpressure contract: at most `max_buffered` embeddings are held across
// the pending buckets and the released-but-undrained batch. A post that
// would exceed the bound blocks until the consumer catches up — except for
// the *head* bucket (the next one to be released), which is always admitted.
// The exemption makes the protocol deadlock-free: the producer holding the
// head bucket can always complete its post, the consumer can then drain it,
// and the head advances (see DESIGN.md §12 for the argument covering retry
// queues).
//
// Termination: the producer side calls finish(status) exactly once after the
// engine returns; the consumer then drains the remaining contiguous prefix
// and observes end-of-stream. The consumer side may call abort() at any time
// (limit reached, cancellation, handle destruction): producers unblock and
// see `false` from post, and the stream ends at a well-defined prefix of
// fully released buckets.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/emit.hpp"
#include "core/query_stats.hpp"

namespace stm::stream {

struct SequencerConfig {
  /// Backpressure bound: embeddings buffered (pending buckets plus the
  /// released batch being drained) before non-head posts block.
  std::size_t max_buffered = 4096;
};

class OutputSequencer {
 public:
  explicit OutputSequencer(SequencerConfig cfg = {},
                           const CancelToken* token = nullptr)
      : cfg_(cfg), token_(token) {}

  /// Announces the dense bucket space. Must precede any post.
  void begin(std::uint64_t num_buckets);

  /// Blocking post of one complete bucket (head-exempt backpressure).
  /// Returns false once the stream is aborted, failed, or its token fired —
  /// the producer should stop emitting. Each bucket id may be posted once.
  bool post(std::uint64_t bucket, std::vector<Embedding>&& batch);

  /// Non-blocking variant; on kWouldBlock the batch is untouched.
  EmbeddingSink::TryPost try_post(std::uint64_t bucket,
                                  std::vector<Embedding>& batch);

  /// Producer side is done (engine returned). `status` is the engine's final
  /// status; the consumer drains the remaining contiguous prefix, then sees
  /// end-of-stream. First terminal transition (finish or abort) wins.
  void finish(QueryStatus status, std::string error);

  /// Consumer-side termination: unblocks everyone, discards undrained
  /// buckets. Producers observe `false` from subsequent posts.
  void abort(QueryStatus status, std::string error);

  /// Next embedding in global order. Blocks until one is available or the
  /// stream ends; returns false at end-of-stream.
  bool next(Embedding* out);

  /// Terminal status/error recorded by finish/abort (kOk until then).
  QueryStatus final_status() const;
  std::string final_error() const;

  /// Total wall-clock time producers spent blocked on backpressure.
  double stall_ms() const;
  /// Embeddings handed to the consumer so far.
  std::uint64_t released() const;

 private:
  bool can_admit_locked(std::uint64_t bucket, std::size_t n) const {
    return bucket == next_release_ || buffered_ + n <= cfg_.max_buffered;
  }
  void admit_locked(std::uint64_t bucket, std::vector<Embedding>&& batch);
  void end_locked(QueryStatus status, std::string&& error);

  SequencerConfig cfg_;
  const CancelToken* token_;

  mutable std::mutex mu_;
  std::condition_variable cv_producers_;
  std::condition_variable cv_consumer_;
  std::map<std::uint64_t, std::vector<Embedding>> pending_;
  std::deque<Embedding> current_;  // released head bucket(s) being drained
  std::uint64_t num_buckets_ = ~std::uint64_t{0};
  std::uint64_t next_release_ = 0;
  std::size_t buffered_ = 0;
  std::uint64_t released_ = 0;
  bool ended_ = false;    // finish or abort happened
  bool aborted_ = false;  // consumer-side termination: discard, unblock
  QueryStatus status_ = QueryStatus::kOk;
  std::string error_;
  double stall_ms_ = 0.0;
};

}  // namespace stm::stream
