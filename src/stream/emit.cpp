#include "stream/emit.hpp"

#include <string>
#include <utility>

#include "util/check.hpp"

namespace stm::stream {

EmitPipeline::EmitPipeline(OutputSequencer& seq,
                           std::vector<std::size_t> plan_to_orig,
                           const FaultConfig& fault)
    : seq_(seq), plan_to_orig_(std::move(plan_to_orig)), injector_(fault) {}

void EmitPipeline::begin(std::uint64_t num_buckets) {
  seq_.begin(num_buckets);
}

void EmitPipeline::remap(std::vector<Embedding>& batch) const {
  if (plan_to_orig_.empty()) return;
  const std::size_t k = plan_to_orig_.size();
  Embedding orig(k);
  for (auto& emb : batch) {
    STM_CHECK(emb.size() == k);
    for (std::size_t i = 0; i < k; ++i) orig[plan_to_orig_[i]] = emb[i];
    emb.assign(orig.begin(), orig.end());
  }
}

int EmitPipeline::resolve_drops(std::uint64_t bucket) {
  if (injector_.config().rate(FaultSite::kEmitDrop) <= 0.0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = drop_cache_.find(bucket);
  if (it != drop_cache_.end()) return it->second;
  int drops = -1;
  const std::uint32_t budget = injector_.config().max_unit_attempts;
  for (std::uint32_t attempt = 0; attempt < budget; ++attempt) {
    // Stable per-delivery key: the retransmission of bucket B after a drops
    // is the same event on every run.
    if (!injector_.should_fail(FaultSite::kEmitDrop,
                               (bucket << 8) | attempt)) {
      drops = static_cast<int>(attempt);
      break;
    }
  }
  drop_cache_.emplace(bucket, drops);
  return drops;
}

void EmitPipeline::fail_stream(std::uint64_t bucket) {
  failed_.store(true, std::memory_order_release);
  std::string msg = "emit transport dropped bucket " + std::to_string(bucket) +
                    " on all " +
                    std::to_string(injector_.config().max_unit_attempts) +
                    " delivery attempts (kEmitDrop budget exhausted)";
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (error_.empty()) error_ = msg;
  }
  seq_.abort(QueryStatus::kInternalError, std::move(msg));
}

bool EmitPipeline::post(std::uint64_t bucket, std::vector<Embedding>&& batch) {
  if (failed()) return false;
  if (resolve_drops(bucket) < 0) {
    fail_stream(bucket);
    return false;
  }
  remap(batch);
  const std::size_t n = batch.size();
  if (!seq_.post(bucket, std::move(batch))) return false;
  emitted_.fetch_add(n, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    drop_cache_.erase(bucket);
  }
  return true;
}

EmbeddingSink::TryPost EmitPipeline::try_post(std::uint64_t bucket,
                                              std::vector<Embedding>& batch) {
  if (failed()) return TryPost::kAborted;
  if (resolve_drops(bucket) < 0) {
    fail_stream(bucket);
    return TryPost::kAborted;
  }
  // Remapping twice on a kWouldBlock retry would scramble the embedding, so
  // remap only when the sequencer actually admits the batch.
  const std::size_t n = batch.size();
  std::vector<Embedding> staged = batch;  // retained copy: drop-safe transport
  remap(staged);
  const TryPost r = seq_.try_post(bucket, staged);
  if (r == TryPost::kPosted) {
    batch.clear();
    emitted_.fetch_add(n, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    drop_cache_.erase(bucket);
  }
  return r;
}

std::string EmitPipeline::error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

}  // namespace stm::stream
