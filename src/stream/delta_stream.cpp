#include "stream/delta_stream.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stm::stream {

DeltaStreamer::DeltaStreamer(const Pattern& pattern, const PlanOptions& plan)
    : enumerator_(pattern, [&] {
        STM_CHECK_MSG(plan.count_mode == CountMode::kEmbeddings,
                      "delta streams require kEmbeddings count mode");
        return plan;
      }()) {}

DeltaBatch DeltaStreamer::delta(
    const std::shared_ptr<const GraphSnapshot>& from,
    const DeltaEdges& applied) const {
  STM_CHECK(from != nullptr);
  DeltaBatch out;
  if (applied.empty()) return out;

  const auto collect = [&](std::vector<Embedding>& into) {
    return AnchoredEnumerator::AnchoredVisitor(
        [&into](const std::vector<VertexId>& emb) { into.push_back(emb); });
  };
  {
    DeltaOverlay overlay(from);
    for (const auto& [u, v] : applied.deleted) overlay.remove_edge(u, v);
    const auto visit = collect(out.added);
    for (const auto& [u, v] : applied.inserted) {
      overlay.add_edge(u, v);
      enumerator_.enumerate_containing(overlay.view(), u, v, visit,
                                       &out.anchored_runs);
    }
  }
  {
    DeltaOverlay overlay(from);
    for (const auto& [u, v] : applied.deleted) overlay.remove_edge(u, v);
    const auto visit = collect(out.retracted);
    for (const auto& [u, v] : applied.deleted) {
      overlay.add_edge(u, v);
      enumerator_.enumerate_containing(overlay.view(), u, v, visit,
                                       &out.anchored_runs);
    }
  }
  std::sort(out.added.begin(), out.added.end());
  std::sort(out.retracted.begin(), out.retracted.end());
  return out;
}

}  // namespace stm::stream
