// DeltaStreamer: per-batch embedding deltas for standing queries.
//
// Where IncrementalMatcher::count_delta reports only the *change in count*
// caused by an update batch, DeltaStreamer reports the actual embeddings:
// `added` (matches of the post-batch graph that did not exist before) and
// `retracted` (pre-batch matches destroyed by the batch). It rides the same
// prefix inclusion–exclusion identity over anchored enumeration: walking the
// inserted edges d_1..d_m over overlays G_common + {d_1..d_i}, the matches
// containing d_i are exactly the new matches whose largest-index inserted
// edge is d_i — so each added embedding is enumerated exactly once, and
// symmetrically for the deleted edges. Deltas are therefore exact and
// disjoint (an effective delta never both deletes and inserts the same
// edge, so added and retracted cannot intersect).
//
// Embeddings are in original-pattern vertex order, lexicographically sorted
// within each list — a deterministic order independent of anchor iteration.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/emit.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental.hpp"
#include "pattern/pattern.hpp"
#include "pattern/plan.hpp"

namespace stm::stream {

struct DeltaBatch {
  /// Embeddings present after the batch but not before (lex-sorted).
  std::vector<Embedding> added;
  /// Embeddings present before the batch but not after (lex-sorted).
  std::vector<Embedding> retracted;
  /// Anchored enumerations issued.
  std::uint64_t anchored_runs = 0;
};

class DeltaStreamer {
 public:
  /// Throws check_error unless plan.count_mode == kEmbeddings (a subgraph
  /// can have several embeddings; retraction of "a subgraph" is ill-defined
  /// at the embedding granularity the stream delivers) and plan.induced ==
  /// kEdge (inherited from anchored enumeration).
  DeltaStreamer(const Pattern& pattern, const PlanOptions& plan);

  /// The embedding delta caused by applying `applied` to version `from`
  /// (arguments as for IncrementalMatcher::count_delta).
  DeltaBatch delta(const std::shared_ptr<const GraphSnapshot>& from,
                   const DeltaEdges& applied) const;

  const Pattern& pattern() const { return enumerator_.pattern(); }

 private:
  AnchoredEnumerator enumerator_;
};

}  // namespace stm::stream
