#include "stream/sequencer.hpp"

#include <chrono>
#include <utility>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace stm::stream {

void OutputSequencer::begin(std::uint64_t num_buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  num_buckets_ = num_buckets;
  cv_consumer_.notify_all();
}

void OutputSequencer::admit_locked(std::uint64_t bucket,
                                   std::vector<Embedding>&& batch) {
  buffered_ += batch.size();
  if (bucket == next_release_) {
    for (auto& e : batch) current_.push_back(std::move(e));
    ++next_release_;
    // Drain any contiguous run that earlier out-of-order posts left pending.
    for (auto it = pending_.find(next_release_); it != pending_.end();
         it = pending_.find(next_release_)) {
      for (auto& e : it->second) current_.push_back(std::move(e));
      pending_.erase(it);
      ++next_release_;
    }
    cv_consumer_.notify_all();
    cv_producers_.notify_all();  // head advanced: new head may be waiting
  } else {
    STM_CHECK_MSG(bucket > next_release_ && !pending_.count(bucket),
                  "bucket posted twice or below the release head");
    pending_.emplace(bucket, std::move(batch));
  }
}

bool OutputSequencer::post(std::uint64_t bucket,
                           std::vector<Embedding>&& batch) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!ended_ && !can_admit_locked(bucket, batch.size())) {
    Timer stall;
    while (!ended_ && !can_admit_locked(bucket, batch.size())) {
      if (token_ != nullptr && token_->expired()) {
        stall_ms_ += stall.elapsed_ms();
        return false;
      }
      cv_producers_.wait_for(lock, std::chrono::milliseconds(5));
    }
    stall_ms_ += stall.elapsed_ms();
  }
  if (ended_) return false;
  admit_locked(bucket, std::move(batch));
  return true;
}

EmbeddingSink::TryPost OutputSequencer::try_post(std::uint64_t bucket,
                                                 std::vector<Embedding>& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ended_) return EmbeddingSink::TryPost::kAborted;
  if (!can_admit_locked(bucket, batch.size()))
    return EmbeddingSink::TryPost::kWouldBlock;
  admit_locked(bucket, std::move(batch));
  return EmbeddingSink::TryPost::kPosted;
}

void OutputSequencer::end_locked(QueryStatus status, std::string&& error) {
  if (!ended_) {
    ended_ = true;
    status_ = status;
    error_ = std::move(error);
  }
  cv_producers_.notify_all();
  cv_consumer_.notify_all();
}

void OutputSequencer::finish(QueryStatus status, std::string error) {
  std::lock_guard<std::mutex> lock(mu_);
  end_locked(status, std::move(error));
}

void OutputSequencer::abort(QueryStatus status, std::string error) {
  std::lock_guard<std::mutex> lock(mu_);
  end_locked(status, std::move(error));
  aborted_ = true;
  buffered_ = 0;
  current_.clear();
  pending_.clear();
}

bool OutputSequencer::next(Embedding* out) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (aborted_) return false;
    if (!current_.empty()) {
      *out = std::move(current_.front());
      current_.pop_front();
      if (buffered_ > 0) --buffered_;
      ++released_;
      cv_producers_.notify_all();
      return true;
    }
    // End-of-stream: every bucket released, or the producer side finished
    // and the next bucket never arrived (valid shorter prefix).
    if (next_release_ >= num_buckets_ || ended_) return false;
    cv_consumer_.wait(lock);
  }
}

QueryStatus OutputSequencer::final_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ended_ ? status_ : QueryStatus::kOk;
}

std::string OutputSequencer::final_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

double OutputSequencer::stall_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stall_ms_;
}

std::uint64_t OutputSequencer::released() const {
  std::lock_guard<std::mutex> lock(mu_);
  return released_;
}

}  // namespace stm::stream
