// Streaming query endpoints of GraphSession (DESIGN.md §12).
//
// Where run()/submit() return a match *count*, open_stream() returns the
// matched embeddings themselves, delivered one at a time in a deterministic
// global order: ascending outer-loop vertex (the data vertex matched at plan
// position 0), DFS order of the extension tree within it. The order is a
// pure function of (graph snapshot, pattern, plan options) — bit-identical
// across engines, thread counts, chunk sizes, and steal interleavings —
// which is what makes cursors meaningful: a page of N embeddings plus a
// resume token identifies an exact position in the stream, and a later page
// opened from that token continues with embedding N+1.
//
// Each embedding is in *original pattern vertex order*: embedding[i] is the
// data vertex matched to pattern vertex i, as the caller wrote the pattern
// (the engine-internal matching order is remapped away at the emission
// pipeline).
//
// Lifecycle: open_stream() pins the current graph snapshot, compiles (or
// reuses) the plan, and starts a producer thread running the requested
// engine in emission mode. The consumer pulls with next(); producers block
// on bounded-memory backpressure when the consumer lags (StreamOptions::
// max_buffered). The stream ends when the enumeration completes, the limit
// is reached, the deadline/cancel token fires, or the handle is closed —
// in every case the delivered embeddings form a valid prefix of the full
// stream, and result() reports how far it got.
//
// Streams are admitted against SessionConfig::max_open_streams (their own
// bound, not the dispatcher pool: a pull-based consumer can hold a stream
// open indefinitely, and parking it on a dispatcher worker would starve or
// deadlock count queries behind it). The open_streams gauge tracks them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/emit.hpp"
#include "service/service.hpp"

namespace stm {

struct StreamOptions {
  /// Deliver at most this many embeddings, then end the stream with kOk
  /// (a page). 0 = unlimited.
  std::uint64_t limit = 0;
  /// Opaque token from a previous page's resume_token(); empty starts from
  /// the beginning. A token is only valid against the same pattern/options
  /// and the same graph epoch (kInvalidArgument otherwise) but is engine-
  /// independent — a stream may be resumed on a different engine.
  std::string resume_token;
  /// Backpressure bound: embeddings buffered between producers and the
  /// consumer before engine workers block.
  std::size_t max_buffered = 4096;
  /// Chaos for the emission transport (FaultSite::kEmitDrop): dropped
  /// deliveries are retransmitted from the retained copy, exhaustion fails
  /// the stream with kInternalError.
  FaultConfig emit_fault;
};

struct StreamRequest {
  /// Engine / plan / deadline knobs. Streams execute a single attempt on
  /// req.engine (no retry or fallback: a degraded re-run could not splice
  /// into an already-delivered prefix) and bypass sharded execution.
  /// The outer-loop range knobs (host.v_begin, simt.v_begin/v_end/v_stride/
  /// pin_v1) must be left at their defaults; the stream owns them.
  QueryRequest query;
  StreamOptions stream;
};

/// A live embedding stream. Handles are single-consumer (next()/result()/
/// resume_token() must not race each other); cancel() may be called from any
/// thread. Destroying the handle aborts the stream and releases its slot.
class EmbeddingStream {
 public:
  ~EmbeddingStream();
  EmbeddingStream(const EmbeddingStream&) = delete;
  EmbeddingStream& operator=(const EmbeddingStream&) = delete;

  /// Pulls the next embedding in global order. Blocks while producers are
  /// behind; returns false at end-of-stream (completion, limit, deadline,
  /// cancellation, or failure — consult result()).
  bool next(Embedding* out);

  /// Terminal result of the stream: count = embeddings delivered to this
  /// handle, status/error say why the stream ended (kOk for completion or a
  /// reached limit), stats = the engine's execution counters. Calling this
  /// before the stream ended closes it (the delivered prefix stays valid).
  const QueryResult& result();

  /// Cursor for the next page. Empty when the stream is exhausted (resuming
  /// past the last embedding yields nothing). Valid after any prefix —
  /// including a cancelled or deadline-expired page, whose delivered prefix
  /// the token continues from.
  std::string resume_token() const;

  /// Requests cancellation: producers stop, next() returns false after the
  /// already-released embeddings. Safe from any thread, idempotent.
  void cancel();

  /// Embeddings delivered so far (consumer-thread view).
  std::uint64_t delivered() const;

 private:
  friend class GraphSession;
  explicit EmbeddingStream(std::shared_ptr<GraphSession::StreamState> st);
  void finalize();

  std::shared_ptr<GraphSession::StreamState> st_;
};

/// One scored embedding of a top-k result.
struct ScoredEmbedding {
  Embedding embedding;
  double score = 0.0;
  /// Position of the embedding in the deterministic global stream order —
  /// the tiebreaker (smaller rank wins at equal score), so top-k results are
  /// deterministic too.
  std::uint64_t rank = 0;
};

struct TopKOptions {
  /// Number of results to keep.
  std::size_t k = 1;
  /// Embedding scorer (higher = better). Must be a pure function of the
  /// embedding for the result to be deterministic.
  std::function<double(const Embedding&)> score;
  /// Stream knobs for the underlying full enumeration (limit/resume_token
  /// are ignored: top-k must see every embedding).
  StreamOptions stream;
};

struct TopKResult {
  /// Terminal result of the underlying stream (count = embeddings scored).
  QueryResult result;
  /// The best k embeddings, sorted by (score desc, rank asc). Fewer than k
  /// when the enumeration has fewer matches.
  std::vector<ScoredEmbedding> top;
};

}  // namespace stm
