// GraphSession: the long-lived, multi-query serving core.
//
// A session owns one data graph plus everything derived from it that should
// outlive a single query: a plan cache (matching order / symmetry / code
// motion analysis done once per distinct pattern), an admission controller
// (bounded concurrent execution, priority FIFO queueing, load shedding), a
// metrics registry (latency/queue-wait histograms, cache hit rate, engine
// op counters — exportable as JSON and Prometheus text) and a resilience
// stack (retry policy, per-engine circuit breakers, graceful-degradation
// fallback chain, progress watchdog).
//
// Request lifecycle:
//
//   submit(req) ──► admission ──► [queue] ──► plan cache ──► engine ──► result
//        │             │                          │             │        │
//        │   kOverloaded when full        hit: reuse plan   CancelToken  │
//        │             ▼                  miss: compile     (deadline)   ▼
//        └──────► metrics ◄───────────────────────┴─────────────────► future
//
// Every query gets a CancelToken armed at submission; the engines poll it
// cooperatively, so a query past its deadline returns kDeadlineExceeded with
// the partial count instead of running unbounded.
//
// Fault handling (DESIGN.md §9): an engine call that fails transiently
// (kInternalError, or an escaped exception) is retried under the session's
// RetryPolicy with a fresh fault incarnation, then — if still failing — the
// dispatcher walks the engine's fallback chain (kSimt → kHost → kReference;
// kHost → kReference) and marks the result `degraded`. A per-engine circuit
// breaker skips engines that keep failing; the watchdog force-fails queries
// whose progress counter stalls.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/cancel.hpp"
#include "core/config.hpp"
#include "core/emit.hpp"
#include "core/fault.hpp"
#include "core/host_engine.hpp"
#include "core/query_stats.hpp"
#include "dist/partition.hpp"
#include "dist/sharded.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental.hpp"
#include "graph/graph.hpp"
#include "mqo/evaluator.hpp"
#include "pattern/pattern.hpp"
#include "persist/manager.hpp"
#include "service/admission.hpp"
#include "service/metrics.hpp"
#include "service/plan_cache.hpp"
#include "service/resilience.hpp"
#include "service/watchdog.hpp"
#include "storage/store.hpp"
#include "util/timer.hpp"

namespace stm {

namespace stream {
class DeltaStreamer;
}  // namespace stream

// Streaming endpoints (service/stream.hpp).
class EmbeddingStream;
struct StreamRequest;
struct TopKOptions;
struct TopKResult;

/// Which execution path serves the query. The order doubles as the
/// degradation order: fallback moves strictly to the right.
enum class EngineKind : std::uint8_t {
  kSimt = 0,   // simulated-GPU STMatch engine
  kHost,       // real threads (production CPU path)
  kReference,  // single-threaded brute-force enumerator (last resort)
};
inline constexpr std::size_t kNumEngineKinds = 3;

const char* to_string(EngineKind kind);

struct QueryRequest {
  Pattern pattern;
  PlanOptions plan;
  EngineKind engine = EngineKind::kHost;
  QueryPriority priority = QueryPriority::kNormal;
  /// Wall-clock budget in ms, measured from submission (queue wait counts).
  /// 0 uses the session default; < 0 means no deadline.
  double deadline_ms = 0.0;
  /// Host-path execution knobs (num_threads=0 is clamped to the session's
  /// host_threads_per_query, not hardware concurrency — concurrency across
  /// queries comes from the dispatcher).
  HostEngineConfig host;
  /// SIMT-path device configuration.
  EngineConfig simt;
};

struct QueryResult {
  QueryStatus status = QueryStatus::kOk;
  /// Match count; partial when status is kDeadlineExceeded/kCancelled.
  std::uint64_t count = 0;
  /// Engine-side statistics (status mirrored into stats.status).
  QueryStats stats;
  bool plan_cache_hit = false;
  /// Milliseconds spent queued before execution started.
  double queue_ms = 0.0;
  /// Submission-to-completion wall clock, ms.
  double total_ms = 0.0;
  /// The engine that actually produced the result — may differ from
  /// QueryRequest::engine after fallback.
  EngineKind served_by = EngineKind::kHost;
  /// True when served_by != the requested engine (graceful degradation).
  bool degraded = false;
  /// Engine calls issued for this query across retries and fallbacks.
  std::uint32_t attempts = 1;
  /// Graph epoch the query executed against (its snapshot's version).
  std::uint64_t graph_epoch = 0;
  /// Human-readable detail; populated for every non-kOk status.
  std::string error;

  bool ok() const { return status == QueryStatus::kOk; }
};

/// Delivered to a standing query's subscriber (and collected into the
/// UpdateOutcome) once per applied batch.
struct StandingQueryUpdate {
  std::uint64_t query_id = 0;
  /// Epoch after the batch.
  std::uint64_t epoch = 0;
  /// Exact match-count change caused by the batch.
  std::int64_t delta = 0;
  /// Cumulative match count after the batch.
  std::uint64_t count = 0;
  /// Wall time of this query's delta computation, ms.
  double delta_ms = 0.0;
};

/// Delivered to a standing query's on_delta subscriber once per applied
/// batch: the exact embedding-level change the batch caused. Embeddings are
/// in original-pattern vertex order, lexicographically sorted within each
/// list; added and retracted are disjoint (an effective delta never both
/// deletes and inserts the same edge).
struct StandingQueryDelta {
  std::uint64_t query_id = 0;
  /// Epoch after the batch.
  std::uint64_t epoch = 0;
  /// Matches of the post-batch graph that did not exist before.
  std::vector<Embedding> added;
  /// Pre-batch matches destroyed by the batch.
  std::vector<Embedding> retracted;
  /// Wall time of this query's embedding-delta computation, ms.
  double delta_ms = 0.0;
};

struct StandingQueryConfig {
  Pattern pattern;
  /// Count semantics (induced must be kEdge; see IncrementalMatcher).
  PlanOptions plan;
  /// Engine for the anchored delta enumerations.
  DeltaEngine engine = DeltaEngine::kHost;
  /// Optional subscriber, invoked synchronously per applied batch from the
  /// update path (keep it cheap; it runs under the writer lock).
  std::function<void(const StandingQueryUpdate&)> on_update;
  /// Optional embedding-level subscriber: the added/retracted embeddings of
  /// each batch, not just the count delta. Requires count_mode ==
  /// kEmbeddings (registration throws check_error otherwise — "a subgraph
  /// was retracted" is ill-defined at embedding granularity). Invoked
  /// synchronously from the update path, after on_update.
  std::function<void(const StandingQueryDelta&)> on_delta;
};

struct StandingQueryInfo {
  std::uint64_t id = 0;
  Pattern pattern;
  /// Current cumulative count (initial full enumeration + batch deltas).
  std::uint64_t count = 0;
  /// Epoch the count is valid for.
  std::uint64_t epoch = 0;
  std::uint64_t batches_observed = 0;
  /// Wall time of the registration-time full enumeration, ms — the baseline
  /// of the delta-vs-full speedup gauge.
  double full_ms = 0.0;
};

/// Result of one apply_updates call.
struct UpdateOutcome {
  QueryStatus status = QueryStatus::kOk;
  std::string error;
  /// Epoch after the batch (unchanged when the batch failed or was a no-op).
  std::uint64_t epoch = 0;
  UpdateStats stats;
  /// The effective delta the batch applied.
  DeltaEdges applied;
  /// Wall time of the whole update (apply + standing-query deltas), ms.
  double update_ms = 0.0;
  /// Wall time of the standing-query delta computations, ms.
  double incremental_ms = 0.0;
  /// Per-standing-query count deltas delivered for this batch.
  std::vector<StandingQueryUpdate> updates;

  bool ok() const { return status == QueryStatus::kOk; }
};

/// Resilience policy knobs (see service/resilience.hpp, service/watchdog.hpp).
struct ResilienceConfig {
  RetryPolicy retry;
  /// Walk the degradation chain when the requested engine keeps failing.
  bool enable_fallback = true;
  CircuitBreaker::Config breaker;
  /// Kill queries whose progress stalls this long; <= 0 disables.
  double watchdog_stall_ms = 0.0;
  double watchdog_poll_ms = 10.0;
  /// Chaos for the dispatcher pool itself (FaultSite::kPoolTask).
  FaultConfig pool_fault;
};

/// Sharded execution mode of a session (DESIGN.md §11). With num_shards > 0
/// the session partitions the graph at construction, keeps the partition in
/// sync with applied update batches (halo refresh of the touched shards),
/// and serves edge-induced kSimt/kHost queries through the cross-shard
/// coordinator; other queries (vertex-induced, kReference, 1-vertex-graph
/// corner cases) transparently use the unsharded path.
struct ShardingConfig {
  /// 0 disables sharded execution.
  std::uint32_t num_shards = 0;
  dist::PartitionStrategy strategy = dist::PartitionStrategy::kContiguous;
  std::uint64_t hash_salt = 0;
  /// Shard-scheduler workers (0 = one per shard).
  std::uint32_t num_workers = 0;
  /// Cut edges per stealable anchor chunk.
  std::uint32_t cut_chunk_size = 16;
  /// Chaos for FaultSite::kShardFailure (shard-local runs and anchor chunks
  /// re-run with bumped incarnations).
  FaultConfig fault;

  bool enabled() const { return num_shards > 0; }
};

struct SessionConfig {
  /// Queries executing concurrently (dispatcher workers).
  std::size_t max_concurrent_queries = 4;
  /// Queries waiting beyond the concurrent ones before kOverloaded.
  std::size_t max_queued_queries = 32;
  std::size_t plan_cache_capacity = 64;
  /// Default per-query wall-clock budget (ms); 0 = unlimited.
  double default_deadline_ms = 0.0;
  /// Engine threads each host-path query runs on.
  std::size_t host_threads_per_query = 1;
  ResilienceConfig resilience;
  /// Chaos for the update path (FaultSite::kUpdateApply: a batch fails after
  /// validation, before its snapshot is published; the graph is unchanged).
  FaultConfig update_fault;
  /// Sharded execution mode (off by default).
  ShardingConfig sharding;
  /// Embedding streams open concurrently before open_stream sheds with
  /// kOverloaded. Streams are long-lived (each holds a producer thread and
  /// a pinned snapshot until closed), so they are admitted against this
  /// bound rather than the dispatcher pool. 0 = uncapped.
  std::size_t max_open_streams = 8;
  /// Durability (DESIGN.md §13): with a non-empty state directory, every
  /// applied batch and standing-query (de)registration is WAL-logged before
  /// acknowledgement, checkpoints snapshot the compacted graph + session
  /// manifest, and construction runs crash recovery against whatever the
  /// directory holds (checkpoint load + WAL tail replay).
  persist::PersistenceConfig persistence;
  /// Standing-query evaluation mode (DESIGN.md §16). false: every
  /// registered pattern runs its own IncrementalMatcher/DeltaStreamer per
  /// applied batch (cost linear in registrations). true: registrations land
  /// in a shared-prefix plan trie (src/mqo/) and each batch runs ONE
  /// anchored enumeration pass per delta edge serving every standing query
  /// at once — per-query deltas are bit-identical to the per-pattern loop.
  /// Indexed evaluation always enumerates on the host recursion;
  /// StandingQueryConfig::engine is recorded but not consulted.
  bool standing_index = false;
  /// Graph-storage backend (DESIGN.md §14): kUncompressed serves the raw
  /// CSR; compressed backends re-encode the base graph (and every compacted
  /// successor) behind the GraphView seam, so engines never know which one
  /// they read. kAuto picks by degree histogram; a non-zero
  /// memory_budget_bytes selects the mmap/spill tier. Applied updates layer
  /// over the backend unchanged.
  storage::StoragePolicy storage;
};

class GraphSession {
 public:
  /// With SessionConfig::persistence enabled and prior state in the
  /// directory, `graph` is only the bootstrap seed: recovery loads the
  /// newest valid checkpoint (falling back to the previous one on a
  /// checksum mismatch) and replays the WAL tail batch-by-batch through the
  /// regular apply path, arriving at the exact pre-crash epoch and
  /// standing-query counts before the session accepts traffic.
  explicit GraphSession(Graph graph, SessionConfig cfg = {});
  ~GraphSession();

  /// Reopens a session purely from its persistence directory — no seed
  /// graph needed, because bootstrap installs checkpoint 1 immediately.
  /// Throws check_error when the directory holds no loadable checkpoint
  /// (construct with the seed graph instead; that path replays any WAL).
  static std::unique_ptr<GraphSession> restore(SessionConfig cfg);

  GraphSession(const GraphSession&) = delete;
  GraphSession& operator=(const GraphSession&) = delete;

  /// The seed CSR the session was created with (stable address; does not
  /// reflect applied updates — use snapshot() for the live version).
  const Graph& graph() const { return dyn_.base(); }
  const SessionConfig& config() const { return cfg_; }

  /// The current graph version. Queries submitted after this call may run
  /// on a newer version; a held snapshot stays valid and consistent.
  std::shared_ptr<const GraphSnapshot> snapshot() const {
    return dyn_.snapshot();
  }
  /// Current graph epoch (bumped per applied batch).
  std::uint64_t epoch() const { return dyn_.epoch(); }

  /// Asynchronous entry point. The future is always fulfilled — with
  /// kOverloaded immediately when admission rejects, with the query result
  /// otherwise.
  std::future<QueryResult> submit(QueryRequest req);

  /// Synchronous convenience wrapper: submit + wait.
  QueryResult run(QueryRequest req);

  /// Submits an update batch through admission (updates share the dispatcher
  /// pool with queries and are shed with kOverloaded under the same bounds).
  /// Batches are serialized by a writer lock; each applied batch bumps the
  /// epoch, publishes a new snapshot, and delivers count deltas to every
  /// standing query. A failed batch (validation or injected fault) leaves
  /// the graph untouched.
  std::future<UpdateOutcome> submit_updates(UpdateBatch batch);

  /// Synchronous convenience wrapper: submit_updates + wait.
  UpdateOutcome apply_updates(UpdateBatch batch);

  /// Rebuilds the CSR from the current version (same logical graph, same
  /// epoch). Serialized with updates.
  void compact();

  /// Installs a durable checkpoint of the current state (compacted CSR +
  /// epoch + standing-query manifest) and truncates the WAL it covers.
  /// Serialized with updates. Returns false when an injected
  /// kCheckpointWrite budget was exhausted — the session keeps running on
  /// WAL durability alone. Requires SessionConfig::persistence.
  bool checkpoint();

  /// What crash recovery did at construction (all-default when persistence
  /// is off or the state directory was fresh).
  const persist::RecoveryReport& recovery_report() const {
    return recovery_report_;
  }

  /// Opens an embedding stream (service/stream.hpp): the query's matched
  /// embeddings, delivered in the deterministic global order, pulled by the
  /// caller. Never blocks: admission failure (max_open_streams), an invalid
  /// resume token, or a plan-compilation error yield a handle whose stream
  /// is already terminal with the corresponding status. Streams execute a
  /// single attempt on the requested engine and bypass sharded execution.
  std::unique_ptr<EmbeddingStream> open_stream(StreamRequest req);

  /// Runs the query as a full embedding stream and keeps the k best
  /// embeddings under opts.score (ties broken by stream order, so the
  /// result is deterministic). Blocks until the enumeration completes.
  TopKResult top_k(const QueryRequest& req, const TopKOptions& opts);

  /// Registers a pattern for per-batch count deltas. Runs one full
  /// enumeration on the current snapshot to establish the baseline count
  /// (and the full-cost reference of the speedup gauge). Throws check_error
  /// for unsupported options (e.g. vertex-induced matching). With
  /// persistence, the registration is WAL-logged (baseline count included)
  /// before it takes effect; an exhausted kWalAppend budget throws
  /// FaultInjectedError and registers nothing.
  std::uint64_t register_standing_query(StandingQueryConfig cfg);
  /// Removes a standing query; false when the id is unknown. With
  /// persistence, the removal is WAL-logged first (and serialized with the
  /// update path, like registration).
  bool unregister_standing_query(std::uint64_t id);
  /// Current state of a standing query, if registered.
  std::optional<StandingQueryInfo> standing_query(std::uint64_t id) const;

  /// Shared-index observability: registrations, canonical groups, and trie
  /// shape (all-zero when SessionConfig::standing_index is off).
  mqo::IndexStats standing_index_stats() const;

  /// Blocks until every submitted query has completed.
  void drain();

  /// Cancels every queued and running query (they complete with
  /// kCancelled). New submissions are unaffected.
  void cancel_all();

  PlanCache& plan_cache() { return plan_cache_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Current breaker state for an engine (test/observability hook).
  CircuitBreaker::State breaker_state(EngineKind kind);

 private:
  friend class EmbeddingStream;

  struct QueryJob;
  /// Everything one embedding stream owns (defined in stream.cpp). Shared
  /// between the handle, the producer thread, and the session's live-stream
  /// registry.
  struct StreamState;
  struct StandingQuery {
    Pattern pattern;
    /// Registration options, kept for checkpoint manifests (the matcher
    /// does not expose them back).
    PlanOptions plan;
    DeltaEngine engine = DeltaEngine::kHost;
    std::shared_ptr<const IncrementalMatcher> matcher;
    std::function<void(const StandingQueryUpdate&)> on_update;
    /// Present iff on_delta is set: the embedding-level delta enumerator.
    std::shared_ptr<const stream::DeltaStreamer> streamer;
    std::function<void(const StandingQueryDelta&)> on_delta;
    std::uint64_t count = 0;
    std::uint64_t epoch = 0;
    std::uint64_t batches = 0;
    double full_ms = 0.0;
  };

  void execute(QueryJob& job);
  /// One engine call on `kind`, exceptions contained (check_error →
  /// kInvalidArgument, anything else → kInternalError).
  QueryResult try_engine(EngineKind kind, const QueryRequest& req,
                         const MatchingPlan& plan, const GraphSnapshot& snap,
                         const CancelToken& token, std::uint32_t attempt);
  QueryResult execute_engine(EngineKind kind, const QueryRequest& req,
                             const MatchingPlan& plan,
                             const GraphSnapshot& snap,
                             const CancelToken& token, std::uint32_t attempt);
  /// Sharded-mode eligibility for (kind, req) — see ShardingConfig.
  bool shardable(EngineKind kind, const QueryRequest& req) const;
  /// Cached cross-shard coordinator for the request's pattern/options.
  std::shared_ptr<const dist::ShardedMatcher> sharded_matcher(
      EngineKind kind, const QueryRequest& req);
  /// (Re)builds the partition for `snap` and publishes it with the per-shard
  /// gauges; `delta` refreshes instead of rebuilding when non-null.
  void rebuild_shards(std::shared_ptr<const GraphSnapshot> snap,
                      const DeltaEdges* delta);
  /// Retry + breaker + fallback-chain walk around try_engine.
  QueryResult execute_resilient(const QueryRequest& req,
                                const MatchingPlan& plan,
                                const GraphSnapshot& snap,
                                const std::shared_ptr<CancelToken>& token);
  /// The update path proper (runs on a dispatcher worker).
  UpdateOutcome do_apply(const UpdateBatch& batch);
  /// Per-batch standing-query sweep (count deltas, subscribers, speedup
  /// gauge), shared between do_apply and WAL replay (`out` null there: no
  /// outcome to fill, no latency to record).
  void apply_standing_deltas(const std::shared_ptr<const GraphSnapshot>& from,
                             const DeltaEdges& applied, std::uint64_t epoch,
                             UpdateOutcome* out);
  /// Indexed-mode body of apply_standing_deltas: one shared trie pass, then
  /// per-registration projection + delivery. Caller holds standing_mu_.
  void apply_standing_deltas_indexed(
      const std::shared_ptr<const GraphSnapshot>& from,
      const DeltaEdges& applied, std::uint64_t epoch, UpdateOutcome* out);
  /// Indexed-mode body of register_standing_query (caller holds update_mu_):
  /// duplicate registrations take their baseline from a canonical-group
  /// sibling's standing count instead of re-enumerating the graph.
  std::uint64_t register_standing_indexed(
      StandingQueryConfig cfg,
      const std::shared_ptr<const GraphSnapshot>& snap);
  /// Publishes standing_patterns / trie_nodes / shared_prefix_ratio from the
  /// index. Caller holds standing_mu_.
  void publish_index_metrics();

  /// Pre-construction state assembly: runs recovery (when persistence is
  /// on) so the member graph can be built directly at the checkpointed
  /// epoch; the delegated-to constructor then replays the WAL tail.
  struct Boot;
  explicit GraphSession(Boot boot);
  static Boot make_boot(Graph graph, SessionConfig cfg);
  /// Re-creates a standing query from its durable entry. Counts are
  /// restored, not recomputed: the entry was logged after the baseline
  /// enumeration (registration) or carries the cumulative count
  /// (checkpoint manifest). Subscriber callbacks do not survive a restart.
  void restore_standing(const persist::StandingEntry& entry);
  /// Serializable form of one registered standing query.
  persist::StandingEntry standing_entry(std::uint64_t id,
                                        const StandingQuery& sq) const;
  /// checkpoint() body; caller holds update_mu_.
  bool checkpoint_locked();
  /// Publishes the storage gauges/counters from the current snapshot's
  /// backend. Store counters are cumulative per-store and restart from zero
  /// when compact() rebuilds the backend; the last-seen state under
  /// storage_metrics_mu_ converts them to monotone Prometheus counters.
  /// Also trims the backend's decoded-list cache back under the policy
  /// budget when no query holds a lease on it.
  void refresh_storage_metrics();

  /// Producer-thread body of an embedding stream: runs the engine in
  /// emission mode against the state's pinned snapshot, then finishes the
  /// sequencer with the engine's terminal status.
  void run_stream(const std::shared_ptr<StreamState>& st);
  /// One-shot stream teardown (idempotent via the state's once-flag): joins
  /// the producer, assembles the QueryResult, settles metrics and releases
  /// the admission slot. Safe after the session is gone for states it
  /// detached first.
  static void finalize_stream(const std::shared_ptr<StreamState>& st);
  /// Builds a handle whose stream is already terminal (admission rejection,
  /// bad resume token, plan-compilation failure).
  std::unique_ptr<EmbeddingStream> reject_stream(const StreamRequest& req,
                                                 QueryStatus status,
                                                 std::string error);

  MutableGraph dyn_;
  SessionConfig cfg_;
  PlanCache plan_cache_;
  MetricsRegistry metrics_;

  /// Sharded mode: the partition and the snapshot it was built from, swapped
  /// atomically under shard_mu_ so a query always sees a matched pair.
  struct ShardState {
    std::shared_ptr<const GraphSnapshot> snapshot;
    std::shared_ptr<const dist::Partition> partition;
  };
  mutable std::mutex shard_mu_;
  std::shared_ptr<const ShardState> shard_state_;
  /// Coordinators are pattern-analysis-heavy (one anchored plan per pattern
  /// edge); cache them keyed by pattern + semantics + engine kind.
  std::mutex shard_matchers_mu_;
  std::map<std::string, std::shared_ptr<const dist::ShardedMatcher>>
      shard_matchers_;

  /// Serializes apply/compact (single logical writer); never held while an
  /// engine runs a query.
  std::mutex update_mu_;
  mutable std::mutex standing_mu_;
  std::map<std::uint64_t, StandingQuery> standing_;
  /// The shared-prefix pattern index (used iff cfg_.standing_index). Reads
  /// are safe under either update_mu_ or standing_mu_; writes happen under
  /// both (registration/unregistration) or during single-threaded boot.
  mqo::PatternIndex standing_index_;
  std::uint64_t next_standing_id_ = 1;

  std::mutex tokens_mu_;
  std::unordered_set<std::shared_ptr<CancelToken>> active_tokens_;

  /// Open embedding streams (admission accounting + shutdown sweep: the
  /// session destructor aborts and finalizes whatever is still open so
  /// orphaned handles cannot touch a dead session). shutting_down_ closes
  /// the race between the destructor's sweep and an open_stream admitted
  /// concurrently — both the flag and the registry mutate under streams_mu_,
  /// so a stream is either swept or rejected, never orphaned live.
  std::mutex streams_mu_;
  std::unordered_set<std::shared_ptr<StreamState>> live_streams_;
  bool shutting_down_ = false;  // guarded by streams_mu_

  /// Durability stack (null without SessionConfig::persistence). WAL
  /// appends are serialized under update_mu_ (the single-writer lock).
  std::unique_ptr<persist::PersistenceManager> persist_;
  persist::RecoveryReport recovery_report_;
  std::uint32_t batches_since_checkpoint_ = 0;  // guarded by update_mu_

  /// Last store-cumulative counter values folded into the monotone storage
  /// counters, keyed to the store they came from (see
  /// refresh_storage_metrics). All three guarded by storage_metrics_mu_.
  std::mutex storage_metrics_mu_;
  std::weak_ptr<const storage::GraphStore> storage_metrics_store_;
  std::uint64_t storage_page_faults_seen_ = 0;
  std::uint64_t storage_decode_ops_seen_ = 0;

  // Cached metric handles (registry entries have stable addresses).
  Counter& queries_submitted_;
  Counter& queries_admitted_;
  Counter& queries_rejected_;
  Counter& queries_completed_;
  Counter& queries_failed_;
  Counter& queries_degraded_;
  Counter& engine_retries_;
  Counter& engine_fallbacks_;
  Counter& breaker_skips_;
  Counter& watchdog_kills_;
  Counter& faults_injected_total_;
  Counter& recovery_units_total_;
  Counter& matches_total_;
  Counter& engine_scalar_ops_;
  Counter& updates_applied_;
  Counter& updates_failed_;
  Counter& edges_inserted_;
  Counter& edges_deleted_;
  Counter& sharded_queries_;
  Counter& shard_chunk_steals_;
  Counter& stream_emitted_total_;
  Counter& wal_appended_bytes_;
  Counter& checkpoints_written_;
  Counter& checkpoint_failures_;
  Counter& recovery_replayed_batches_;
  Counter& storage_page_faults_;
  Counter& storage_decode_ops_;
  Gauge& inflight_;
  Gauge& queue_depth_;
  Gauge& cache_hit_rate_;
  Gauge& graph_epoch_;
  Gauge& delta_speedup_;
  Gauge& standing_queries_;
  Gauge& standing_patterns_;
  Gauge& trie_nodes_;
  Gauge& shared_prefix_ratio_;
  Gauge& shard_imbalance_;
  Gauge& cut_edge_fraction_;
  Gauge& open_streams_;
  Gauge& recovery_ms_;
  Gauge& storage_resident_bytes_;
  Gauge& graph_resident_bytes_;
  Gauge& compression_ratio_;
  Histogram& latency_ms_;
  Histogram& queue_wait_ms_;
  Histogram& update_latency_ms_;
  Histogram& incremental_latency_ms_;
  Histogram& indexed_delta_latency_ms_;
  Histogram& stream_backpressure_ms_;
  Histogram& checkpoint_duration_ms_;

  // One breaker per engine kind, guarded by breakers_mu_ (engine calls run
  // outside the lock; only the state transitions are serialized). The
  // breakers run on injected virtual time: breaker_clock_ measures the wall
  // time between consultations and feeds it to tick_ms().
  std::mutex breakers_mu_;
  std::array<CircuitBreaker, kNumEngineKinds> breakers_;
  std::array<Gauge*, kNumEngineKinds> breaker_state_gauges_{};
  Timer breaker_clock_;

  std::optional<FaultInjector> pool_injector_;
  Watchdog watchdog_;

  // Declared last: its worker threads touch the members above, and members
  // destruct in reverse order, so the pool drains before anything it uses
  // goes away.
  AdmissionController admission_;
};

}  // namespace stm
