// Plan cache for the query service layer.
//
// Compiling a MatchingPlan runs matching-order selection, automorphism /
// symmetry-breaking analysis and code-motion placement — work worth skipping
// for repeated queries. The cache is keyed two-tiered:
//   1. an exact key (pattern.to_string() + plan options) for the common case
//      of a textually identical repeated query — a string lookup, no
//      isomorphism work;
//   2. a canonical key (canonical_form() + options) behind it, so queries
//      that are mere renumberings of a cached pattern share its entry (plans
//      of isomorphic patterns produce identical counts).
// Entries are LRU-evicted at `capacity`; exact-key aliases of an evicted
// entry are dropped with it.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "pattern/plan.hpp"

namespace stm {

struct PlanCacheStats {
  std::uint64_t hits = 0;        // exact- or canonical-key hit
  std::uint64_t misses = 0;      // compiled a new plan
  std::uint64_t evictions = 0;   // LRU evictions
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 64);

  /// Returns the cached plan for (pattern, opts), compiling and inserting it
  /// on a miss. `was_hit` (optional) reports whether compilation was
  /// skipped. Thread-safe; compilation runs outside the cache lock, so
  /// concurrent misses on distinct patterns compile in parallel (a racing
  /// duplicate compile of the same pattern is discarded, first insert wins).
  std::shared_ptr<const MatchingPlan> get_or_compile(const Pattern& pattern,
                                                     const PlanOptions& opts,
                                                     bool* was_hit = nullptr);

  /// Epoch-keyed variant for sessions over a mutable graph: `epoch` is
  /// folded into both key tiers, so a plan compiled against one graph
  /// version is never reused after a mutation (stale entries age out of the
  /// LRU as the epoch advances). The plain overload is epoch 0.
  std::shared_ptr<const MatchingPlan> get_or_compile(const Pattern& pattern,
                                                     const PlanOptions& opts,
                                                     std::uint64_t epoch,
                                                     bool* was_hit = nullptr);

  PlanCacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const MatchingPlan> plan;
    std::list<std::string>::iterator lru_it;  // position in lru_ (MRU front)
  };

  /// Looks up `canonical` (moving it to MRU) under mu_. Returns nullptr when
  /// absent.
  std::shared_ptr<const MatchingPlan> lookup_locked(const std::string& key);
  void insert_locked(const std::string& canonical,
                     std::shared_ptr<const MatchingPlan> plan);
  void evict_locked();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;        // canonical key -> entry
  std::map<std::string, std::string> aliases_;  // exact key -> canonical key
  std::list<std::string> lru_;                  // canonical keys, MRU first
  PlanCacheStats stats_;
};

}  // namespace stm
