#include "service/stream.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <queue>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/host_engine.hpp"
#include "core/recursive.hpp"
#include "pattern/matching_order.hpp"
#include "stream/emit.hpp"
#include "stream/sequencer.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace stm {

namespace {

/// Identifies the (pattern, plan options) a resume token was issued for.
/// FNV-1a over the canonical pattern string plus the option bytes — stable
/// across sessions, engine-independent (the stream order is too).
std::uint64_t stream_fingerprint(const QueryRequest& req) {
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](unsigned char c) {
    h ^= c;
    h *= 1099511628211ULL;
  };
  for (const char c : req.pattern.to_string()) {
    mix(static_cast<unsigned char>(c));
  }
  mix(static_cast<unsigned char>(req.plan.induced));
  mix(static_cast<unsigned char>(req.plan.count_mode));
  // code_motion changes neither the matching order nor the DFS order, so it
  // is deliberately absent: a stream may resume under the other setting.
  return h;
}

/// Token layout: "stm1.<epoch>.<fingerprint hex>.<v0>.<skip>.<total>" — the
/// stream position "after `skip` embeddings of outer vertex v0, with `total`
/// embeddings delivered on earlier pages".
std::string encode_resume(std::uint64_t epoch, std::uint64_t fp, VertexId v0,
                          std::uint64_t skip, std::uint64_t total) {
  std::ostringstream os;
  os << "stm1." << epoch << '.' << std::hex << fp << std::dec << '.' << v0
     << '.' << skip << '.' << total;
  return os.str();
}

bool parse_u64(const std::string& s, int base, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = value * static_cast<std::uint64_t>(base) +
            static_cast<std::uint64_t>(digit);
  }
  *out = value;
  return true;
}

bool decode_resume(const std::string& token, std::uint64_t epoch,
                   std::uint64_t fp, VertexId* v0, std::uint64_t* skip,
                   std::uint64_t* total, std::string* error) {
  std::vector<std::string> fields;
  std::string cur;
  for (const char c : token) {
    if (c == '.') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);

  std::uint64_t tok_epoch = 0, tok_fp = 0, tok_v0 = 0;
  if (fields.size() != 6 || fields[0] != "stm1" ||
      !parse_u64(fields[1], 10, &tok_epoch) ||
      !parse_u64(fields[2], 16, &tok_fp) ||
      !parse_u64(fields[3], 10, &tok_v0) || !parse_u64(fields[4], 10, skip) ||
      !parse_u64(fields[5], 10, total)) {
    // A parse failure means the caller corrupted the token; stale tokens
    // (below) parse fine and get a diagnosable expected-vs-observed error.
    *error =
        "malformed resume token: expected "
        "\"stm1.<epoch>.<fingerprint>.<v0>.<skip>.<total>\", got \"" +
        token + "\"";
    return false;
  }
  if (tok_fp != fp) {
    std::ostringstream os;
    os << "stale resume token: issued for pattern fingerprint " << std::hex
       << tok_fp << " but this query's fingerprint is " << fp << std::dec
       << " (different pattern or plan options)";
    *error = os.str();
    return false;
  }
  if (tok_epoch != epoch) {
    std::ostringstream os;
    os << "stale resume token: issued at graph epoch " << tok_epoch
       << " but the graph has moved on to epoch " << epoch
       << " (the stream order is only defined within one epoch)";
    *error = os.str();
    return false;
  }
  *v0 = static_cast<VertexId>(tok_v0);
  return true;
}

/// The stream's reference lane: the sequential recursive executor, one
/// bucket per outer-loop vertex, posted in order. Shares the plan (hence
/// the order) with the optimized engines but none of their scheduling — the
/// oracle compares the engines' drained streams against this one.
QueryStatus run_reference_stream(GraphView g, const MatchingPlan& plan,
                                 VertexId start, const CancelToken& token,
                                 stream::EmitPipeline& pipe,
                                 QueryStats* stats) {
  const VertexId n = g.num_vertices();
  const VertexId begin = std::min(start, n);
  pipe.begin(n - begin);
  RecursiveCounters counters;
  Timer engine_timer;
  std::vector<Embedding> staged;
  for (VertexId v0 = begin; v0 < n; ++v0) {
    staged.clear();
    recursive_enumerate_range(
        g, plan, v0, v0 + 1,
        [&staged](const std::vector<VertexId>& m) {
          staged.push_back(m);
          return true;
        },
        &counters, &token);
    // A fired token may have cut the bucket short; an incomplete bucket is
    // never posted (the stream ends at the previous, complete one).
    if (token.expired()) break;
    if (!pipe.post(v0 - begin, std::move(staged))) break;
    staged = {};
  }
  stats->engine_ms = engine_timer.elapsed_ms();
  stats->scalar_ops = counters.scalar_ops;
  stats->sets_built = counters.sets_built;
  return token.expired() ? token.status() : QueryStatus::kOk;
}

}  // namespace

struct GraphSession::StreamState {
  StreamState(stream::SequencerConfig seq_cfg, const CancelToken* tok)
      : seq(seq_cfg, tok) {}

  GraphSession* session = nullptr;  // null for rejected (pre-terminal) streams
  QueryRequest req;
  StreamOptions opts;
  std::shared_ptr<CancelToken> token;
  std::shared_ptr<const GraphSnapshot> snap;
  std::shared_ptr<const MatchingPlan> plan;
  /// matching_order(pattern): original vertex at plan position i.
  std::vector<std::size_t> order;
  bool plan_cache_hit = false;
  std::uint64_t fingerprint = 0;

  VertexId start_v0 = 0;
  std::uint64_t resumed_total = 0;  // delivered on earlier pages

  stream::OutputSequencer seq;
  std::unique_ptr<stream::EmitPipeline> pipe;
  std::thread producer;

  /// Producer-side engine statistics; written before seq.finish(), read by
  /// the finalizer after joining the producer (mu spans the detach).
  std::mutex mu;
  QueryStats engine_stats;

  // Consumer-thread state. The handle is single-consumer; the finalizer is
  // serialized behind the once-flag and joins the producer first.
  std::uint64_t skip_left = 0;
  // delivered / limit_reached / drained are written by the consumer thread
  // in next() and read by whichever thread runs the finalizer — including
  // the session destructor sweeping live streams while a consumer is still
  // pulling. Atomics keep that teardown race benign (and TSan-clean).
  std::atomic<std::uint64_t> delivered{0};
  VertexId cursor_v0 = 0;         // outer vertex of the stream position
  std::uint64_t cursor_skip = 0;  // embeddings delivered at cursor_v0
  std::atomic<bool> limit_reached{false};
  std::atomic<bool> drained{false};  // consumer observed end-of-stream
  std::atomic<bool> cancel_requested{false};
  Timer since_open;
  std::once_flag finalize_once;
  std::atomic<bool> finalized{false};
  QueryResult result;
};

std::unique_ptr<EmbeddingStream> GraphSession::reject_stream(
    const StreamRequest& req, QueryStatus status, std::string error) {
  (status == QueryStatus::kOverloaded ? queries_rejected_ : queries_failed_)
      .inc();
  auto token = std::make_shared<CancelToken>();
  auto st = std::make_shared<StreamState>(stream::SequencerConfig{},
                                          token.get());
  st->token = std::move(token);
  st->req.engine = req.query.engine;
  st->seq.abort(status, error);
  QueryResult r;
  r.status = r.stats.status = status;
  r.served_by = req.query.engine;
  r.attempts = 0;
  r.error = std::move(error);
  st->result = std::move(r);
  st->finalized.store(true, std::memory_order_release);
  std::call_once(st->finalize_once, [] {});  // later finalize() is a no-op
  return std::unique_ptr<EmbeddingStream>(new EmbeddingStream(std::move(st)));
}

std::unique_ptr<EmbeddingStream> GraphSession::open_stream(StreamRequest req) {
  queries_submitted_.inc();

  const EngineConfig& sc = req.query.simt;
  if (req.query.host.v_begin != 0 || sc.v_begin != 0 || sc.v_end != 0 ||
      sc.v_stride != 1 || sc.pin_v1 != kNoVertex) {
    return reject_stream(
        req, QueryStatus::kInvalidArgument,
        "stream requests must leave the engine outer-loop range knobs "
        "(host.v_begin, simt.v_begin/v_end/v_stride/pin_v1) at their "
        "defaults; the stream cursor owns them");
  }

  const std::shared_ptr<const GraphSnapshot> snap = dyn_.snapshot();
  const std::uint64_t fp = stream_fingerprint(req.query);

  VertexId start_v0 = 0;
  std::uint64_t skip = 0;
  std::uint64_t resumed_total = 0;
  if (!req.stream.resume_token.empty()) {
    std::string err;
    if (!decode_resume(req.stream.resume_token, snap->epoch(), fp, &start_v0,
                       &skip, &resumed_total, &err)) {
      return reject_stream(req, QueryStatus::kInvalidArgument, std::move(err));
    }
  }

  bool cache_hit = false;
  std::shared_ptr<const MatchingPlan> plan;
  try {
    plan = plan_cache_.get_or_compile(req.query.pattern, req.query.plan,
                                      snap->epoch(), &cache_hit);
  } catch (const check_error& e) {
    return reject_stream(req, QueryStatus::kInvalidArgument, e.what());
  }

  auto token = std::make_shared<CancelToken>();
  double deadline = req.query.deadline_ms;
  if (deadline == 0.0) deadline = cfg_.default_deadline_ms;
  if (deadline > 0.0) token->set_deadline_ms(deadline);

  stream::SequencerConfig seq_cfg;
  seq_cfg.max_buffered = std::max<std::size_t>(1, req.stream.max_buffered);
  auto st = std::make_shared<StreamState>(seq_cfg, token.get());
  st->session = this;
  st->req = std::move(req.query);
  st->opts = std::move(req.stream);
  st->token = std::move(token);
  st->snap = snap;
  st->plan = std::move(plan);
  st->plan_cache_hit = cache_hit;
  st->fingerprint = fp;
  st->order = matching_order(st->req.pattern);
  st->start_v0 = start_v0;
  st->skip_left = skip;
  st->cursor_v0 = start_v0;
  st->cursor_skip = skip;
  st->resumed_total = resumed_total;
  st->pipe = std::make_unique<stream::EmitPipeline>(st->seq, st->order,
                                                    st->opts.emit_fault);

  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    if (shutting_down_) {
      StreamRequest rejected;
      rejected.query.engine = st->req.engine;
      return reject_stream(rejected, QueryStatus::kCancelled,
                           "stream rejected: the session is shutting down");
    }
    if (cfg_.max_open_streams > 0 &&
        live_streams_.size() >= cfg_.max_open_streams) {
      StreamRequest rejected;
      rejected.query.engine = st->req.engine;
      return reject_stream(
          rejected, QueryStatus::kOverloaded,
          "stream admission rejected: " + std::to_string(live_streams_.size()) +
              " of " + std::to_string(cfg_.max_open_streams) +
              " stream slots are open");
    }
    live_streams_.insert(st);
    open_streams_.set(static_cast<double>(live_streams_.size()));
  }
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    active_tokens_.insert(st->token);
  }
  queries_admitted_.inc();

  st->producer = std::thread([this, st] { run_stream(st); });
  return std::unique_ptr<EmbeddingStream>(new EmbeddingStream(std::move(st)));
}

void GraphSession::run_stream(const std::shared_ptr<StreamState>& st) {
  QueryStats stats;
  QueryStatus status = QueryStatus::kOk;
  std::string error;
  try {
    // Streams are long-lived engine runs over a pinned snapshot; the lease
    // keeps the backend's decoded lists stable until the producer exits.
    const auto storage_lease = st->snap->storage_lease();
    const GraphView g = st->snap->view();
    switch (st->req.engine) {
      case EngineKind::kHost: {
        HostEngineConfig host = st->req.host;
        if (host.num_threads == 0) {
          host.num_threads =
              std::max<std::size_t>(1, cfg_.host_threads_per_query);
        }
        host.v_begin = st->start_v0;
        const HostMatchResult r =
            host_match(g, *st->plan, host, st->token.get(), st->pipe.get());
        stats = r.stats;
        status = r.stats.status;
        break;
      }
      case EngineKind::kSimt: {
        EngineConfig simt = st->req.simt;
        simt.v_begin = st->start_v0;
        const MatchResult r = stmatch_match(g, *st->plan, simt,
                                            st->token.get(), st->pipe.get());
        stats = r.query;
        status = r.query.status;
        break;
      }
      case EngineKind::kReference: {
        status = run_reference_stream(g, *st->plan, st->start_v0, *st->token,
                                      *st->pipe, &stats);
        break;
      }
    }
  } catch (const check_error& e) {
    status = QueryStatus::kInvalidArgument;
    error = e.what();
  } catch (const std::exception& e) {
    status = QueryStatus::kInternalError;
    error = std::string("stream engine ") + to_string(st->req.engine) +
            " threw: " + e.what();
  } catch (...) {
    status = QueryStatus::kInternalError;
    error = std::string("stream engine ") + to_string(st->req.engine) +
            " threw a non-standard exception";
  }
  if (st->pipe->failed()) {
    // kEmitDrop budget exhausted: the pipeline already aborted the sequencer
    // with kInternalError; mirror it in the engine-side outcome.
    status = QueryStatus::kInternalError;
    error = st->pipe->error();
  }
  stats.status = status;
  {
    std::lock_guard<std::mutex> lock(st->mu);
    st->engine_stats = stats;
  }
  st->seq.finish(status, std::move(error));
}

void GraphSession::finalize_stream(const std::shared_ptr<StreamState>& st) {
  std::call_once(st->finalize_once, [&st] {
    // Stop the producer side (no-ops when the stream already ended) and wait
    // for it: engine_stats and the sequencer's terminal state settle here.
    if (!st->drained) {
      // Closed early: stop the engine and unblock producers parked on
      // backpressure. A drained stream must do neither — the producer may
      // not have recorded its terminal status yet (every bucket is posted,
      // but the engine can still be tearing down and would observe the
      // cancel), and the sequencer keeps the first status it is given.
      st->token->cancel();
      st->seq.abort(QueryStatus::kCancelled,
                    "stream closed before end of stream (the delivered "
                    "embeddings are a valid prefix)");
    }
    if (st->producer.joinable()) st->producer.join();

    QueryResult r;
    if (st->limit_reached) {
      // The page is complete; the engine's cooperative stop is not an error.
      r.status = QueryStatus::kOk;
    } else if (st->cancel_requested.load(std::memory_order_acquire)) {
      r.status = QueryStatus::kCancelled;
    } else if (st->drained) {
      r.status = st->seq.final_status();
      r.error = st->seq.final_error();
    } else {
      r.status = QueryStatus::kCancelled;
      r.error = st->seq.final_error();
    }
    {
      std::lock_guard<std::mutex> lock(st->mu);
      r.stats = st->engine_stats;
    }
    r.stats.status = r.status;
    if (st->pipe != nullptr) {
      r.stats.faults_injected += st->pipe->faults_injected();
    }
    r.count = st->delivered;
    r.served_by = st->req.engine;
    r.attempts = 1;
    r.plan_cache_hit = st->plan_cache_hit;
    r.graph_epoch = st->snap != nullptr ? st->snap->epoch() : 0;
    r.total_ms = st->since_open.elapsed_ms();
    if (!r.ok() && r.error.empty()) {
      // Every non-kOk stream result carries a detail string — including a
      // stream cancelled between admission and its first emission, whose
      // sequencer never saw a terminal message.
      switch (r.status) {
        case QueryStatus::kDeadlineExceeded: {
          double budget = st->req.deadline_ms;
          if (budget == 0.0 && st->session != nullptr) {
            budget = st->session->cfg_.default_deadline_ms;
          }
          r.error = "deadline of " + std::to_string(budget) +
                    " ms exhausted (the delivered embeddings are a valid "
                    "prefix of the stream)";
          break;
        }
        case QueryStatus::kCancelled:
          r.error =
              "stream cancelled (the delivered embeddings are a valid "
              "prefix of the stream)";
          break;
        case QueryStatus::kInternalError:
          r.error = "stream execution failed; the delivered embeddings are "
                    "a valid prefix of the stream";
          break;
        default:
          r.error = std::string("stream failed: ") + to_string(r.status);
          break;
      }
    }
    st->result = std::move(r);
    st->finalized.store(true, std::memory_order_release);

    GraphSession* s = st->session;
    if (s != nullptr) {
      s->stream_emitted_total_.inc(st->pipe->emitted());
      s->stream_backpressure_ms_.observe(st->seq.stall_ms());
      s->faults_injected_total_.inc(st->result.stats.faults_injected);
      s->recovery_units_total_.inc(st->result.stats.units_recovered);
      (st->result.ok() ? s->queries_completed_ : s->queries_failed_).inc();
      {
        std::lock_guard<std::mutex> lock(s->tokens_mu_);
        s->active_tokens_.erase(st->token);
      }
      {
        std::lock_guard<std::mutex> lock(s->streams_mu_);
        s->live_streams_.erase(st);
        s->open_streams_.set(static_cast<double>(s->live_streams_.size()));
      }
    }
  });
}

EmbeddingStream::EmbeddingStream(
    std::shared_ptr<GraphSession::StreamState> st)
    : st_(std::move(st)) {}

EmbeddingStream::~EmbeddingStream() { finalize(); }

void EmbeddingStream::finalize() { GraphSession::finalize_stream(st_); }

bool EmbeddingStream::next(Embedding* out) {
  GraphSession::StreamState& st = *st_;
  if (st.finalized.load(std::memory_order_acquire) || st.limit_reached) {
    return false;
  }
  Embedding e;
  for (;;) {
    if (!st.seq.next(&e)) {
      st.drained = true;
      finalize();
      return false;
    }
    if (st.skip_left > 0) {
      // Resumed page: the engine restarted at the cursor's outer vertex;
      // discard the embeddings the previous page already delivered for it.
      --st.skip_left;
      continue;
    }
    break;
  }
  ++st.delivered;
  const std::size_t pos0 = st.order.empty() ? 0 : st.order[0];
  const VertexId v0 = e[pos0];
  if (v0 == st.cursor_v0) {
    ++st.cursor_skip;
  } else {
    st.cursor_v0 = v0;
    st.cursor_skip = 1;
  }
  if (st.opts.limit > 0 && st.delivered >= st.opts.limit) {
    st.limit_reached = true;
    st.token->cancel();
    st.seq.abort(QueryStatus::kOk, std::string());
  }
  *out = std::move(e);
  return true;
}

const QueryResult& EmbeddingStream::result() {
  finalize();
  return st_->result;
}

std::string EmbeddingStream::resume_token() const {
  const GraphSession::StreamState& st = *st_;
  if (st.snap == nullptr) return std::string();  // rejected stream
  if (st.finalized.load(std::memory_order_acquire) && st.result.ok() &&
      !st.limit_reached) {
    return std::string();  // exhausted: there is nothing to resume to
  }
  return encode_resume(st.snap->epoch(), st.fingerprint, st.cursor_v0,
                       st.cursor_skip, st.resumed_total + st.delivered);
}

void EmbeddingStream::cancel() {
  st_->cancel_requested.store(true, std::memory_order_release);
  st_->token->cancel();
  st_->seq.abort(QueryStatus::kCancelled, "stream cancelled by caller");
}

std::uint64_t EmbeddingStream::delivered() const { return st_->delivered; }

TopKResult GraphSession::top_k(const QueryRequest& req,
                               const TopKOptions& opts) {
  STM_CHECK_MSG(opts.k >= 1, "top_k requires k >= 1");
  STM_CHECK_MSG(static_cast<bool>(opts.score), "top_k requires a scorer");

  StreamRequest sreq;
  sreq.query = req;
  sreq.stream = opts.stream;
  sreq.stream.limit = 0;  // top-k must see every embedding
  sreq.stream.resume_token.clear();
  const std::unique_ptr<EmbeddingStream> s = open_stream(std::move(sreq));

  // Min-heap of size k ordered worst-first under (score desc, rank asc):
  // the top is the current k-th best, evicted when something better lands.
  const auto better = [](const ScoredEmbedding& a, const ScoredEmbedding& b) {
    return a.score > b.score || (a.score == b.score && a.rank < b.rank);
  };
  std::priority_queue<ScoredEmbedding, std::vector<ScoredEmbedding>,
                      decltype(better)>
      heap(better);
  Embedding e;
  std::uint64_t rank = 0;
  while (s->next(&e)) {
    ScoredEmbedding se;
    se.score = opts.score(e);
    se.rank = rank++;
    se.embedding = std::move(e);
    heap.push(std::move(se));
    if (heap.size() > opts.k) heap.pop();
  }

  TopKResult out;
  out.result = s->result();
  out.top.resize(heap.size());
  for (std::size_t i = heap.size(); i-- > 0;) {
    out.top[i] = heap.top();
    heap.pop();
  }
  return out;
}

}  // namespace stm
