#include "service/watchdog.hpp"

#include <algorithm>
#include <chrono>

#include "core/query_stats.hpp"

namespace stm {

Watchdog::Watchdog(double stall_ms, double poll_ms, Counter* kills)
    : stall_ms_(stall_ms),
      poll_ms_(std::max(poll_ms, 1.0)),
      kill_counter_(kills),
      enabled_(stall_ms > 0.0) {
  if (enabled_) thread_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog() {
  if (!enabled_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Watchdog::watch(std::shared_ptr<CancelToken> token) {
  if (!enabled_ || token == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  watched_.push_back({std::move(token), 0, 0.0});
  // Seed last_progress from the token so pre-watch heartbeats don't mask an
  // immediate stall.
  watched_.back().last_progress = watched_.back().token->progress();
}

void Watchdog::unwatch(const std::shared_ptr<CancelToken>& token) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  watched_.erase(std::remove_if(watched_.begin(), watched_.end(),
                                [&](const Watched& w) {
                                  return w.token == token;
                                }),
                 watched_.end());
}

std::uint64_t Watchdog::kills() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kills_;
}

void Watchdog::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto interval =
      std::chrono::microseconds(static_cast<std::int64_t>(poll_ms_ * 1000));
  while (!stopping_) {
    cv_.wait_for(lock, interval);
    if (stopping_) break;
    for (auto it = watched_.begin(); it != watched_.end();) {
      const std::uint64_t now = it->token->progress();
      if (now != it->last_progress) {
        it->last_progress = now;
        it->stalled_ms = 0.0;
        ++it;
        continue;
      }
      it->stalled_ms += poll_ms_;
      if (it->stalled_ms < stall_ms_) {
        ++it;
        continue;
      }
      // No progress for the full stall budget: presume the query hung and
      // force-fail its token. The engine observes kInternalError at its
      // next poll; a truly wedged worker at least stops charging new work.
      it->token->fail(QueryStatus::kInternalError);
      ++kills_;
      if (kill_counter_ != nullptr) kill_counter_->inc();
      it = watched_.erase(it);
    }
  }
}

}  // namespace stm
