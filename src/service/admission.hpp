// Admission control for the query service layer.
//
// Bounds the number of concurrently executing queries (the thread pool's
// size) and the number queued behind them (`max_queue`); submissions beyond
// both are rejected immediately so an overloaded server sheds load instead
// of building an unbounded backlog. Queued work drains FIFO within each
// priority class, higher classes first.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

#include "util/thread_pool.hpp"

namespace stm {

enum class QueryPriority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr std::size_t kNumPriorities = 3;

class AdmissionController {
 public:
  /// `num_workers` queries run concurrently; up to `max_queue` more wait.
  AdmissionController(std::size_t num_workers, std::size_t max_queue);

  /// Tries to enqueue `job`. Returns false (job not consumed, never run)
  /// when the system is full — more than num_workers + max_queue jobs
  /// admitted and unfinished — and the caller reports kOverloaded. The
  /// bound counts running plus queued jobs, so rejection behaviour does not
  /// depend on how quickly workers pick queued jobs up.
  bool admit(QueryPriority priority, std::function<void()> job);

  /// Blocks until every admitted job has finished.
  void drain();

  std::size_t num_workers() const { return pool_.size(); }
  std::size_t max_queue() const { return max_queue_; }
  /// Jobs admitted but not yet started.
  std::size_t queue_depth() const;
  /// Jobs currently executing.
  std::size_t inflight() const;

  /// Forwards to ThreadPool::set_fault_injection (chaos at kPoolTask:
  /// bounded dispatcher-task requeue; no admitted job is ever lost).
  void set_fault_injection(FaultInjector* injector, std::uint32_t max_requeues) {
    pool_.set_fault_injection(injector, max_requeues);
  }

 private:
  /// Runs the highest-priority pending job; one pump task is submitted to
  /// the pool per admitted job, so the pool's worker count bounds
  /// concurrency and the pump may execute a higher-priority job than the
  /// one whose admission scheduled it.
  void pump();

  ThreadPool pool_;
  const std::size_t max_queue_;
  mutable std::mutex mu_;
  std::array<std::deque<std::function<void()>>, kNumPriorities> queues_;
  std::size_t pending_ = 0;
  std::size_t running_ = 0;
};

}  // namespace stm
