#include "service/admission.hpp"

#include "util/check.hpp"

namespace stm {

AdmissionController::AdmissionController(std::size_t num_workers,
                                         std::size_t max_queue)
    : pool_(num_workers), max_queue_(max_queue) {}

bool AdmissionController::admit(QueryPriority priority,
                                std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_ + running_ >= pool_.size() + max_queue_) return false;
    queues_[static_cast<std::size_t>(priority)].push_back(std::move(job));
    ++pending_;
  }
  pool_.submit([this] { pump(); });
  return true;
}

void AdmissionController::pump() {
  std::function<void()> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& q : queues_) {
      if (!q.empty()) {
        job = std::move(q.front());
        q.pop_front();
        break;
      }
    }
    STM_CHECK_MSG(job != nullptr, "pump scheduled without a pending job");
    --pending_;
    ++running_;
  }
  job();
  std::lock_guard<std::mutex> lock(mu_);
  --running_;
}

void AdmissionController::drain() { pool_.wait_idle(); }

std::size_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

std::size_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

}  // namespace stm
