#include "service/resilience.hpp"

#include <algorithm>

namespace stm {

double RetryPolicy::backoff_ms(std::uint32_t attempt, std::uint64_t key) const {
  if (attempt == 0) return 0.0;
  double delay = base_backoff_ms;
  for (std::uint32_t i = 1; i < attempt; ++i) delay *= backoff_multiplier;
  delay = std::min(delay, max_backoff_ms);
  // Deterministic jitter in [0, 0.5): reuses the fault injector's hash chain
  // so the whole failure-and-recovery schedule derives from seeds.
  FaultConfig cfg;
  cfg.seed = jitter_seed;
  cfg.incarnation = attempt;
  const double u = FaultInjector(cfg).decide(FaultSite::kPoolTask, key);
  return std::min(delay * (1.0 + 0.5 * u), max_backoff_ms);
}

void CircuitBreaker::tick_ms(double elapsed_ms) {
  if (state_ == State::kOpen && elapsed_ms > 0.0) since_open_ms_ += elapsed_ms;
}

bool CircuitBreaker::allow() {
  if (cfg_.failure_threshold == 0) return true;
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (since_open_ms_ >= cfg_.cooldown_ms) {
        state_ = State::kHalfOpen;
        return true;  // the probe call
      }
      return false;
    case State::kHalfOpen:
      // One probe at a time; the session holds its dispatch lock across
      // allow()/record_*, so this is only reached by a concurrent query
      // while the probe is still running.
      return false;
  }
  return true;
}

void CircuitBreaker::record_success() {
  consecutive_failures_ = 0;
  state_ = State::kClosed;
  since_open_ms_ = 0.0;
}

void CircuitBreaker::record_failure() {
  if (cfg_.failure_threshold == 0) return;
  if (state_ == State::kHalfOpen) {
    // Failed probe: straight back to open for another cooldown.
    state_ = State::kOpen;
    since_open_ms_ = 0.0;
    ++trips_;
    return;
  }
  if (++consecutive_failures_ >= cfg_.failure_threshold &&
      state_ == State::kClosed) {
    state_ = State::kOpen;
    since_open_ms_ = 0.0;
    ++trips_;
  }
}

const char* to_string(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

}  // namespace stm
