#include "service/service.hpp"

#include <algorithm>
#include <utility>

#include "core/engine.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace stm {

struct GraphSession::QueryJob {
  QueryRequest req;
  std::promise<QueryResult> promise;
  std::shared_ptr<CancelToken> token;
  Timer since_submit;  // started at submission; queue wait + total latency
};

GraphSession::GraphSession(Graph graph, SessionConfig cfg)
    : graph_(std::move(graph)),
      cfg_(cfg),
      plan_cache_(cfg.plan_cache_capacity),
      queries_submitted_(metrics_.counter(
          "queries_submitted", "Queries received (admitted + rejected)")),
      queries_admitted_(
          metrics_.counter("queries_admitted", "Queries accepted for execution")),
      queries_rejected_(metrics_.counter(
          "queries_rejected", "Queries shed at admission (overload)")),
      queries_completed_(
          metrics_.counter("queries_completed", "Queries finished with ok")),
      queries_failed_(metrics_.counter(
          "queries_failed",
          "Queries finished non-ok (deadline, cancel, invalid)")),
      matches_total_(
          metrics_.counter("matches_total", "Embeddings counted across queries")),
      engine_scalar_ops_(metrics_.counter(
          "engine_scalar_ops", "Scalar set-operation work across queries")),
      inflight_(metrics_.gauge("inflight_queries", "Queries executing now")),
      queue_depth_(metrics_.gauge("queue_depth", "Queries waiting to start")),
      cache_hit_rate_(metrics_.gauge("plan_cache_hit_rate",
                                     "Fraction of plan lookups served cached")),
      latency_ms_(metrics_.histogram("query_latency_ms",
                                     "Submission-to-completion latency")),
      queue_wait_ms_(metrics_.histogram("queue_wait_ms",
                                        "Admission-to-execution wait")),
      admission_(std::max<std::size_t>(1, cfg.max_concurrent_queries),
                 cfg.max_queued_queries) {
  STM_CHECK_MSG(graph_.num_vertices() > 0,
                "GraphSession requires a non-empty graph");
}

GraphSession::~GraphSession() { drain(); }

std::future<QueryResult> GraphSession::submit(QueryRequest req) {
  queries_submitted_.inc();
  auto job = std::make_shared<QueryJob>();
  job->req = std::move(req);
  job->token = std::make_shared<CancelToken>();
  std::future<QueryResult> future = job->promise.get_future();

  // The deadline covers the query's whole life, queue wait included: a
  // request that waits past its budget is interrupted as soon as it starts.
  double deadline = job->req.deadline_ms;
  if (deadline == 0.0) deadline = cfg_.default_deadline_ms;
  if (deadline > 0.0) job->token->set_deadline_ms(deadline);

  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    active_tokens_.insert(job->token);
  }

  const bool admitted =
      admission_.admit(job->req.priority, [this, job] { execute(*job); });
  if (!admitted) {
    queries_rejected_.inc();
    {
      std::lock_guard<std::mutex> lock(tokens_mu_);
      active_tokens_.erase(job->token);
    }
    QueryResult rejected;
    rejected.status = QueryStatus::kOverloaded;
    rejected.stats.status = QueryStatus::kOverloaded;
    rejected.total_ms = job->since_submit.elapsed_ms();
    job->promise.set_value(std::move(rejected));
    return future;
  }
  queries_admitted_.inc();
  queue_depth_.set(static_cast<double>(admission_.queue_depth()));
  return future;
}

QueryResult GraphSession::run(QueryRequest req) {
  return submit(std::move(req)).get();
}

void GraphSession::drain() { admission_.drain(); }

void GraphSession::cancel_all() {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  for (const auto& token : active_tokens_) token->cancel();
}

QueryResult GraphSession::execute_engine(const QueryRequest& req,
                                         const MatchingPlan& plan,
                                         const CancelToken& token) {
  QueryResult result;
  if (req.engine == EngineKind::kSimt) {
    MatchResult r = stmatch_match(graph_, plan, req.simt, &token);
    result.count = r.count;
    result.stats = r.query;
    // Simulated engine time is not wall time; report wall latency fields
    // from the service clocks below, but keep the engine's own view here.
  } else {
    HostEngineConfig host = req.host;
    if (host.num_threads == 0) {
      host.num_threads = std::max<std::size_t>(1, cfg_.host_threads_per_query);
    }
    HostMatchResult r = host_match(graph_, plan, host, &token);
    result.count = r.count;
    result.stats = r.stats;
  }
  result.status = result.stats.status;
  return result;
}

void GraphSession::execute(QueryJob& job) {
  QueryResult result;
  const double queue_ms = job.since_submit.elapsed_ms();
  queue_wait_ms_.observe(queue_ms);
  queue_depth_.set(static_cast<double>(admission_.queue_depth()));
  inflight_.add(1.0);

  try {
    bool cache_hit = false;
    // Skip plan work for queries that died in the queue.
    if (job.token->expired()) {
      result.status = result.stats.status = job.token->status();
    } else {
      auto plan =
          plan_cache_.get_or_compile(job.req.pattern, job.req.plan, &cache_hit);
      result = execute_engine(job.req, *plan, *job.token);
      result.plan_cache_hit = cache_hit;
    }
    cache_hit_rate_.set(plan_cache_.stats().hit_rate());
  } catch (const check_error& e) {
    result = QueryResult{};
    result.status = result.stats.status = QueryStatus::kInvalidArgument;
    result.error = e.what();
  }

  result.queue_ms = queue_ms;
  result.total_ms = job.since_submit.elapsed_ms();
  latency_ms_.observe(result.total_ms);
  inflight_.add(-1.0);
  (result.ok() ? queries_completed_ : queries_failed_).inc();
  matches_total_.inc(result.count);
  engine_scalar_ops_.inc(result.stats.scalar_ops);
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    active_tokens_.erase(job.token);
  }
  job.promise.set_value(std::move(result));
}

}  // namespace stm
