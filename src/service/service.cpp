#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/reference.hpp"
#include "core/engine.hpp"
#include "stream/delta_stream.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace stm {

const char* to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSimt:
      return "simt";
    case EngineKind::kHost:
      return "host";
    case EngineKind::kReference:
      return "reference";
  }
  return "unknown";
}

namespace {

/// Degradation order per requested engine. The chain starts with the
/// requested engine itself; every later entry trades performance for
/// independence from the failing machinery (the reference enumerator shares
/// no candidate-set code with either optimized engine).
std::vector<EngineKind> fallback_chain(EngineKind requested, bool fallback) {
  std::vector<EngineKind> chain{requested};
  if (!fallback) return chain;
  switch (requested) {
    case EngineKind::kSimt:
      chain.push_back(EngineKind::kHost);
      chain.push_back(EngineKind::kReference);
      break;
    case EngineKind::kHost:
      chain.push_back(EngineKind::kReference);
      break;
    case EngineKind::kReference:
      break;
  }
  return chain;
}

}  // namespace

struct GraphSession::QueryJob {
  QueryRequest req;
  std::promise<QueryResult> promise;
  std::shared_ptr<CancelToken> token;
  Timer since_submit;  // started at submission; queue wait + total latency
};

/// Everything the delegated-to constructor needs: the graph to build the
/// member MutableGraph from (the checkpointed CSR when recovery found one,
/// the caller's seed otherwise), the epoch to seed it at, and the recovered
/// state the constructor body replays.
struct GraphSession::Boot {
  Graph graph;
  std::uint64_t start_epoch = 0;
  SessionConfig cfg;
  std::unique_ptr<persist::PersistenceManager> manager;
  persist::RecoveredState recovered;
};

GraphSession::Boot GraphSession::make_boot(Graph graph, SessionConfig cfg) {
  Boot boot;
  boot.cfg = std::move(cfg);
  boot.graph = std::move(graph);
  if (boot.cfg.persistence.enabled()) {
    boot.manager =
        std::make_unique<persist::PersistenceManager>(boot.cfg.persistence);
    boot.recovered = boot.manager->recover();
    if (boot.recovered.checkpoint.has_value()) {
      // The durable state supersedes the seed: bit-identical CSR and epoch,
      // so replayed WAL batches reproduce the exact pre-crash sequence.
      boot.graph = std::move(boot.recovered.checkpoint->graph);
      boot.start_epoch = boot.recovered.checkpoint->epoch;
    }
  }
  return boot;
}

GraphSession::GraphSession(Graph graph, SessionConfig cfg)
    : GraphSession(make_boot(std::move(graph), std::move(cfg))) {}

std::unique_ptr<GraphSession> GraphSession::restore(SessionConfig cfg) {
  STM_CHECK_MSG(cfg.persistence.enabled(),
                "restore requires SessionConfig::persistence.dir");
  Boot boot = make_boot(Graph{}, std::move(cfg));
  STM_CHECK_MSG(boot.recovered.checkpoint.has_value(),
                "restore found no loadable checkpoint in '"
                    << boot.cfg.persistence.dir
                    << "'; reconstruct the session with its seed graph");
  return std::unique_ptr<GraphSession>(new GraphSession(std::move(boot)));
}

GraphSession::GraphSession(Boot boot)
    : dyn_(std::move(boot.graph), boot.start_epoch, boot.cfg.storage),
      cfg_(std::move(boot.cfg)),
      plan_cache_(cfg_.plan_cache_capacity),
      queries_submitted_(metrics_.counter(
          "queries_submitted", "Queries received (admitted + rejected)")),
      queries_admitted_(
          metrics_.counter("queries_admitted", "Queries accepted for execution")),
      queries_rejected_(metrics_.counter(
          "queries_rejected", "Queries shed at admission (overload)")),
      queries_completed_(
          metrics_.counter("queries_completed", "Queries finished with ok")),
      queries_failed_(metrics_.counter(
          "queries_failed",
          "Queries finished non-ok (deadline, cancel, invalid, internal)")),
      queries_degraded_(metrics_.counter(
          "queries_degraded", "Queries served by a fallback engine")),
      engine_retries_(metrics_.counter(
          "engine_retries", "Engine calls re-issued after kInternalError")),
      engine_fallbacks_(metrics_.counter(
          "engine_fallbacks", "Fallback-chain hops past the requested engine")),
      breaker_skips_(metrics_.counter(
          "breaker_skips", "Engine calls skipped by an open circuit breaker")),
      watchdog_kills_(metrics_.counter(
          "watchdog_kills", "Queries force-failed for stalled progress")),
      faults_injected_total_(metrics_.counter(
          "faults_injected_total", "Injected faults observed across queries")),
      recovery_units_total_(metrics_.counter(
          "recovery_units_total", "Work units recovered after injected faults")),
      matches_total_(
          metrics_.counter("matches_total", "Embeddings counted across queries")),
      engine_scalar_ops_(metrics_.counter(
          "engine_scalar_ops", "Scalar set-operation work across queries")),
      updates_applied_(metrics_.counter(
          "updates_applied", "Update batches applied (epoch bumps)")),
      updates_failed_(metrics_.counter(
          "updates_failed", "Update batches rejected or failed pre-publish")),
      edges_inserted_(metrics_.counter(
          "edges_inserted", "Edges effectively inserted across batches")),
      edges_deleted_(metrics_.counter(
          "edges_deleted", "Edges effectively deleted across batches")),
      sharded_queries_(metrics_.counter(
          "sharded_queries", "Queries served by the cross-shard coordinator")),
      shard_chunk_steals_(metrics_.counter(
          "shard_chunk_steals",
          "Sharded work units run by a foreign shard's worker")),
      stream_emitted_total_(metrics_.counter(
          "stream_emitted_total",
          "Embeddings emitted into stream sequencers (pre-limit)")),
      wal_appended_bytes_(metrics_.counter(
          "wal_appended_bytes_total",
          "Durable write-ahead-log bytes appended (intact frames only)")),
      checkpoints_written_(metrics_.counter(
          "checkpoints_written", "Durable checkpoints installed")),
      checkpoint_failures_(metrics_.counter(
          "checkpoint_failures",
          "Checkpoint installs abandoned (chaos budget exhausted)")),
      recovery_replayed_batches_(metrics_.counter(
          "recovery_replayed_batches",
          "Update batches replayed from the WAL at session construction")),
      storage_page_faults_(metrics_.counter(
          "storage_page_faults_total",
          "Spill-tier page-cache misses (pages fetched from disk)")),
      storage_decode_ops_(metrics_.counter(
          "storage_decode_ops_total",
          "Adjacency lists decoded from a compressed storage backend")),
      inflight_(metrics_.gauge("inflight_queries", "Queries executing now")),
      queue_depth_(metrics_.gauge("queue_depth", "Queries waiting to start")),
      cache_hit_rate_(metrics_.gauge("plan_cache_hit_rate",
                                     "Fraction of plan lookups served cached")),
      graph_epoch_(metrics_.gauge("graph_epoch", "Current graph version")),
      delta_speedup_(metrics_.gauge(
          "delta_vs_full_speedup",
          "Registration-time full-enumeration ms / last batch delta ms")),
      standing_queries_(
          metrics_.gauge("standing_queries", "Registered standing queries")),
      standing_patterns_(metrics_.gauge(
          "standing_patterns",
          "Distinct canonical pattern groups in the standing-query index")),
      trie_nodes_(metrics_.gauge(
          "trie_nodes", "Nodes of the shared-prefix plan trie")),
      shared_prefix_ratio_(metrics_.gauge(
          "shared_prefix_ratio",
          "Fraction of per-plan enumeration levels served by a shared trie "
          "prefix (1 - nodes / plan positions)")),
      shard_imbalance_(metrics_.gauge(
          "shard_imbalance",
          "Max/mean per-shard edge load (intra + half incident cut)")),
      cut_edge_fraction_(metrics_.gauge(
          "cut_edge_fraction", "Cut edges / total edges of the partition")),
      open_streams_(
          metrics_.gauge("open_streams", "Embedding streams open now")),
      recovery_ms_(metrics_.gauge(
          "recovery_ms", "Wall time of crash recovery at construction")),
      storage_resident_bytes_(metrics_.gauge(
          "storage_resident_bytes",
          "Bytes the storage backend holds in memory now")),
      graph_resident_bytes_(metrics_.gauge(
          "graph_resident_bytes",
          "Resident bytes of the current graph version (backend + overlays)")),
      compression_ratio_(metrics_.gauge(
          "compression_ratio",
          "Raw CSR bytes over encoded bytes (1 when uncompressed)")),
      latency_ms_(metrics_.histogram("query_latency_ms",
                                     "Submission-to-completion latency")),
      queue_wait_ms_(metrics_.histogram("queue_wait_ms",
                                        "Admission-to-execution wait")),
      update_latency_ms_(metrics_.histogram(
          "update_latency_ms", "apply_updates wall time per batch")),
      incremental_latency_ms_(metrics_.histogram(
          "incremental_latency_ms",
          "Standing-query delta computation time per batch")),
      indexed_delta_latency_ms_(metrics_.histogram(
          "indexed_delta_latency_ms",
          "Shared trie-pass wall time per batch (serves every standing "
          "query at once; indexed mode only)")),
      stream_backpressure_ms_(metrics_.histogram(
          "stream_backpressure_ms",
          "Producer wall time blocked on stream backpressure, per stream")),
      checkpoint_duration_ms_(metrics_.histogram(
          "checkpoint_duration_ms",
          "Durable checkpoint install wall time (snapshot + fsync + rename)")),
      watchdog_(cfg_.resilience.watchdog_stall_ms,
                cfg_.resilience.watchdog_poll_ms, &watchdog_kills_),
      admission_(std::max<std::size_t>(1, cfg_.max_concurrent_queries),
                 cfg_.max_queued_queries) {
  STM_CHECK_MSG(dyn_.base().num_vertices() > 0,
                "GraphSession requires a non-empty graph");
  for (std::size_t k = 0; k < kNumEngineKinds; ++k) {
    breakers_[k] = CircuitBreaker(cfg_.resilience.breaker);
    breaker_state_gauges_[k] = &metrics_.gauge(
        std::string("breaker_state_") + to_string(static_cast<EngineKind>(k)),
        "Circuit state (0=closed, 1=open, 2=half-open)");
  }
  if (cfg_.resilience.pool_fault.enabled()) {
    STM_CHECK(cfg_.resilience.pool_fault.max_unit_attempts >= 1);
    pool_injector_.emplace(cfg_.resilience.pool_fault);
    admission_.set_fault_injection(&*pool_injector_,
                                   cfg_.resilience.pool_fault.max_unit_attempts);
  }

  persist_ = std::move(boot.manager);
  if (persist_ != nullptr) {
    Timer recovery_timer;
    persist::RecoveredState& rec = boot.recovered;
    recovery_report_ = rec.report;
    if (rec.checkpoint.has_value()) {
      next_standing_id_ = rec.checkpoint->next_standing_id;
      for (const persist::StandingEntry& e : rec.checkpoint->standing)
        restore_standing(e);
    }
    // Replay the WAL tail in LSN order through the regular apply path. The
    // update fault injector is installed only *after* replay: a replayed
    // batch was already acknowledged once and must not re-roll its dice.
    for (const persist::WalRecord& r : rec.tail) {
      switch (r.type) {
        case persist::WalRecordType::kUpdateBatch: {
          const std::shared_ptr<const GraphSnapshot> from = dyn_.snapshot();
          UpdateBatch batch;
          batch.insertions = r.delta.inserted;
          batch.deletions = r.delta.deleted;
          const ApplyResult applied = dyn_.apply(batch);
          STM_CHECK_MSG(applied.snapshot->epoch() == r.epoch,
                        "WAL replay diverged: record "
                            << r.lsn << " expects epoch " << r.epoch
                            << " but replay produced "
                            << applied.snapshot->epoch());
          STM_CHECK_MSG(applied.applied == r.delta,
                        "WAL replay diverged: record "
                            << r.lsn
                            << " re-applied with a different effective delta");
          apply_standing_deltas(from, applied.applied, r.epoch, nullptr);
          break;
        }
        case persist::WalRecordType::kRegisterStanding:
          restore_standing(r.standing);
          next_standing_id_ = std::max(next_standing_id_, r.standing.id + 1);
          break;
        case persist::WalRecordType::kUnregisterStanding:
          standing_.erase(r.standing_id);
          if (cfg_.standing_index) standing_index_.remove(r.standing_id);
          break;
      }
    }
    standing_queries_.set(static_cast<double>(standing_.size()));
    if (cfg_.standing_index) {
      std::lock_guard<std::mutex> standing_lock(standing_mu_);
      publish_index_metrics();
    }
    graph_epoch_.set(static_cast<double>(dyn_.epoch()));
    // Fold the replayed deltas back into a flat CSR: post-recovery queries
    // (and a sharded partition build) should not pay the overlay tax for
    // history that is already durable.
    if (!rec.tail.empty()) dyn_.compact();
    persist_->open_wal(rec.next_lsn, rec.wal_valid_bytes);
    if (!rec.report.checkpoint_loaded) {
      // First boot of this directory: install checkpoint 1 right away so
      // restore() works after any later crash (failure is tolerable — the
      // WAL alone still carries everything).
      checkpoint_locked();
    }
    recovery_report_.recovery_ms = recovery_timer.elapsed_ms();
    recovery_ms_.set(recovery_report_.recovery_ms);
    recovery_replayed_batches_.inc(recovery_report_.replayed_batches);
  }
  if (cfg_.update_fault.enabled()) {
    STM_CHECK(cfg_.update_fault.max_unit_attempts >= 1);
    dyn_.set_fault(cfg_.update_fault);
  }
  if (cfg_.sharding.enabled()) {
    if (cfg_.sharding.fault.enabled())
      STM_CHECK(cfg_.sharding.fault.max_unit_attempts >= 1);
    rebuild_shards(dyn_.snapshot(), nullptr);
  }
  refresh_storage_metrics();
}

void GraphSession::refresh_storage_metrics() {
  // The whole refresh — snapshot acquisition, stats read, counter fold —
  // runs under one lock so concurrent refreshes serialize and each folds a
  // consistent (store, stats) pair. Stores only move forward (compact()
  // publishes a rebuilt backend, never an old one), so the identity check
  // below sees each store's counters folded from its own baseline; without
  // the lock two threads could read stats() from different stores around a
  // compact() and apply them to the seen-counters out of order.
  std::lock_guard<std::mutex> lock(storage_metrics_mu_);
  const std::shared_ptr<const GraphSnapshot> snap = dyn_.snapshot();
  graph_resident_bytes_.set(static_cast<double>(snap->memory_bytes()));
  const std::shared_ptr<const storage::GraphStore>& store = snap->store();
  if (store == nullptr) {
    storage_resident_bytes_.set(0.0);
    compression_ratio_.set(1.0);
    return;
  }
  // Decoded lists are per-run working memory; reclaim them once they exceed
  // the policy budget. A trim racing a running query is a no-op (the lease
  // blocks it) and the cache shrinks at the next refresh instead.
  const std::uint64_t budget = cfg_.storage.memory_budget_bytes;
  if (budget > 0 && store->stats().decoded_cache_bytes > budget)
    store->trim_decoded();
  const storage::StorageStats st = store->stats();
  storage_resident_bytes_.set(static_cast<double>(st.resident_bytes));
  compression_ratio_.set(st.compression_ratio);
  // Store counters are cumulative per-store and restart from zero when
  // compact() swaps in a rebuilt backend; key the seen-counters to the store
  // identity (weak_ptr: expiry-safe against address reuse) and fold only the
  // increments into the monotone session counters.
  if (storage_metrics_store_.lock() != store) {
    storage_metrics_store_ = store;
    storage_page_faults_seen_ = 0;
    storage_decode_ops_seen_ = 0;
  }
  storage_page_faults_.inc(st.page_faults - storage_page_faults_seen_);
  storage_page_faults_seen_ = st.page_faults;
  storage_decode_ops_.inc(st.decode_ops - storage_decode_ops_seen_);
  storage_decode_ops_seen_ = st.decode_ops;
}

GraphSession::~GraphSession() {
  // Abort and settle whatever streams are still open: their producer threads
  // and finalizers touch session members, so they must be gone before the
  // members are. Surviving handles see only their (finalized) StreamState.
  std::vector<std::shared_ptr<StreamState>> live;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    // From here on open_stream rejects (kCancelled) instead of admitting:
    // the flag and the sweep snapshot change under one lock, so a stream
    // racing this destructor is either in `live` (and swept below) or was
    // never admitted — it cannot slip in between and outlive the session.
    shutting_down_ = true;
    live.assign(live_streams_.begin(), live_streams_.end());
  }
  for (const auto& st : live) finalize_stream(st);
  drain();
  // Workers are done; detach the pool from the injector before it dies.
  if (pool_injector_.has_value()) admission_.set_fault_injection(nullptr, 0);
}

std::future<QueryResult> GraphSession::submit(QueryRequest req) {
  queries_submitted_.inc();
  auto job = std::make_shared<QueryJob>();
  job->req = std::move(req);
  job->token = std::make_shared<CancelToken>();
  std::future<QueryResult> future = job->promise.get_future();

  // The deadline covers the query's whole life, queue wait included: a
  // request that waits past its budget is interrupted as soon as it starts.
  double deadline = job->req.deadline_ms;
  if (deadline == 0.0) deadline = cfg_.default_deadline_ms;
  if (deadline > 0.0) job->token->set_deadline_ms(deadline);

  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    active_tokens_.insert(job->token);
  }

  const bool admitted =
      admission_.admit(job->req.priority, [this, job] { execute(*job); });
  if (!admitted) {
    queries_rejected_.inc();
    {
      std::lock_guard<std::mutex> lock(tokens_mu_);
      active_tokens_.erase(job->token);
    }
    QueryResult rejected;
    rejected.status = QueryStatus::kOverloaded;
    rejected.stats.status = QueryStatus::kOverloaded;
    rejected.served_by = job->req.engine;
    rejected.attempts = 0;
    rejected.error = "admission rejected: " +
                     std::to_string(admission_.num_workers()) + " running + " +
                     std::to_string(admission_.max_queue()) +
                     " queued slots are full";
    rejected.total_ms = job->since_submit.elapsed_ms();
    job->promise.set_value(std::move(rejected));
    return future;
  }
  queries_admitted_.inc();
  queue_depth_.set(static_cast<double>(admission_.queue_depth()));
  return future;
}

QueryResult GraphSession::run(QueryRequest req) {
  return submit(std::move(req)).get();
}

void GraphSession::drain() { admission_.drain(); }

void GraphSession::cancel_all() {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  for (const auto& token : active_tokens_) token->cancel();
}

CircuitBreaker::State GraphSession::breaker_state(EngineKind kind) {
  std::lock_guard<std::mutex> lock(breakers_mu_);
  return breakers_[static_cast<std::size_t>(kind)].state();
}

bool GraphSession::shardable(EngineKind kind, const QueryRequest& req) const {
  // kReference stays unsharded on purpose: it is the fallback of last resort
  // and must not share failure modes with the coordinator machinery.
  return cfg_.sharding.enabled() &&
         (kind == EngineKind::kSimt || kind == EngineKind::kHost) &&
         req.plan.induced == Induced::kEdge;
}

std::shared_ptr<const dist::ShardedMatcher> GraphSession::sharded_matcher(
    EngineKind kind, const QueryRequest& req) {
  std::string key = std::string(to_string(kind)) + '|' +
                    std::to_string(static_cast<int>(req.plan.induced)) +
                    std::to_string(static_cast<int>(req.plan.count_mode)) +
                    '|' + req.pattern.to_string();
  {
    std::lock_guard<std::mutex> lock(shard_matchers_mu_);
    auto it = shard_matchers_.find(key);
    if (it != shard_matchers_.end()) return it->second;
  }
  dist::ShardedOptions opts;
  opts.plan = req.plan;
  opts.local_engine = kind == EngineKind::kSimt ? dist::LocalEngine::kSimt
                                                : dist::LocalEngine::kHost;
  opts.anchor_engine =
      kind == EngineKind::kSimt ? DeltaEngine::kSimt : DeltaEngine::kHost;
  // One engine thread per scheduler unit: cross-shard parallelism comes from
  // the shard scheduler's workers, not from nested host threads. Per-request
  // engine knobs (req.host / req.simt) do not reach the sharded path — the
  // session's ShardingConfig governs it, which keeps cached coordinators
  // valid across requests.
  opts.host.num_threads = 1;
  opts.num_workers = cfg_.sharding.num_workers;
  opts.cut_chunk_size = cfg_.sharding.cut_chunk_size;
  opts.fault = cfg_.sharding.fault;
  auto matcher =
      std::make_shared<const dist::ShardedMatcher>(req.pattern, opts);
  std::lock_guard<std::mutex> lock(shard_matchers_mu_);
  return shard_matchers_.emplace(std::move(key), std::move(matcher))
      .first->second;
}

void GraphSession::rebuild_shards(std::shared_ptr<const GraphSnapshot> snap,
                                  const DeltaEdges* delta) {
  // Both branches read store-backed adjacency (halo refresh via snap->view(),
  // full build via compacted()); a query completing concurrently must not
  // trim the decode cache mid-read.
  const auto storage_lease = snap->storage_lease();
  std::shared_ptr<const dist::Partition> next;
  if (delta != nullptr) {
    std::shared_ptr<const ShardState> cur;
    {
      std::lock_guard<std::mutex> lock(shard_mu_);
      cur = shard_state_;
    }
    STM_CHECK_MSG(cur != nullptr,
                  "partition refresh without an initial partition");
    next = std::make_shared<const dist::Partition>(
        dist::refresh_partition(*cur->partition, snap->view(), *delta));
  } else {
    dist::PartitionConfig pcfg;
    pcfg.num_shards = cfg_.sharding.num_shards;
    pcfg.strategy = cfg_.sharding.strategy;
    pcfg.hash_salt = cfg_.sharding.hash_salt;
    // Partition the version we are pairing with — not the seed CSR, which a
    // recovered session has long moved past. The full build only runs at
    // construction (or first enable), where the snapshot is compact; fold
    // any delta in defensively rather than silently dropping those edges.
    const Graph* base = &snap->base();
    Graph materialized;
    if (!snap->delta_from_base().empty()) {
      materialized = snap->compacted();
      base = &materialized;
    }
    next = std::make_shared<const dist::Partition>(
        dist::partition_graph(*base, pcfg));
  }

  // Publish the balance gauges from the materialized shards: labeled
  // per-shard series plus the aggregate imbalance / cut-fraction pair.
  const std::uint32_t num_shards = next->num_shards();
  std::vector<std::uint64_t> incident(num_shards, 0);
  for (const auto& [u, v] : next->cut_edges) {
    ++incident[next->owner_of(u)];
    ++incident[next->owner_of(v)];
  }
  double max_load = 0.0;
  double total_load = 0.0;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    const dist::Shard& shard = *next->shards[s];
    const double load = static_cast<double>(shard.local.num_edges()) +
                        0.5 * static_cast<double>(incident[s]);
    max_load = std::max(max_load, load);
    total_load += load;
    const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
    metrics_.gauge("shard_owned_vertices" + label, "Vertices owned per shard")
        .set(static_cast<double>(shard.num_owned()));
    metrics_.gauge("shard_intra_edges" + label, "Intra-shard edges per shard")
        .set(static_cast<double>(shard.local.num_edges()));
    metrics_
        .gauge("shard_cut_edges" + label,
               "Cut edges owned per shard (min-shard rule)")
        .set(static_cast<double>(shard.cut_edges.size()));
  }
  shard_imbalance_.set(total_load > 0.0 ? max_load * num_shards / total_load
                                        : 1.0);
  cut_edge_fraction_.set(next->num_edges > 0
                             ? static_cast<double>(next->cut_edges.size()) /
                                   static_cast<double>(next->num_edges)
                             : 0.0);

  auto state = std::make_shared<ShardState>();
  state->snapshot = std::move(snap);
  state->partition = std::move(next);
  std::lock_guard<std::mutex> lock(shard_mu_);
  shard_state_ = std::move(state);
}

QueryResult GraphSession::execute_engine(EngineKind kind,
                                         const QueryRequest& req,
                                         const MatchingPlan& plan,
                                         const GraphSnapshot& snap,
                                         const CancelToken& token,
                                         std::uint32_t attempt) {
  QueryResult result;
  if (shardable(kind, req)) {
    std::shared_ptr<const ShardState> state;
    {
      std::lock_guard<std::mutex> lock(shard_mu_);
      state = shard_state_;
    }
    // The coordinator must run on the exact graph version its partition was
    // built from; a query racing an update's partition refresh falls back to
    // the unsharded path for its pinned snapshot instead.
    if (state != nullptr && state->snapshot->epoch() == snap.epoch()) {
      // The partition's snapshot can predate a compact() (same epoch, its
      // own backend), so it needs its own lease.
      const auto shard_lease = state->snapshot->storage_lease();
      const auto matcher = sharded_matcher(kind, req);
      const dist::ShardedResult r = matcher->match(
          state->snapshot->view(), *state->partition, plan, attempt, &token);
      sharded_queries_.inc();
      shard_chunk_steals_.inc(r.chunk_steals);
      result.count = r.count;
      for (const dist::ShardStats& st : r.shards) result.stats += st.query;
      // r's totals also cover the anchored chunks and the coordinator's own
      // injector; they supersede the per-shard sums.
      result.stats.faults_injected = r.faults_injected;
      result.stats.units_recovered = r.units_recovered;
      result.stats.status = r.status;
      result.status = r.status;
      result.error = r.error;
      return result;
    }
  }
  const GraphView g = snap.view();
  switch (kind) {
    case EngineKind::kSimt: {
      MatchResult r = stmatch_match(g, plan, req.simt, &token);
      result.count = r.count;
      result.stats = r.query;
      // Simulated engine time is not wall time; report wall latency fields
      // from the service clocks below, but keep the engine's own view here.
      break;
    }
    case EngineKind::kHost: {
      HostEngineConfig host = req.host;
      if (host.num_threads == 0) {
        host.num_threads = std::max<std::size_t>(1, cfg_.host_threads_per_query);
      }
      HostMatchResult r = host_match(g, plan, host, &token);
      result.count = r.count;
      result.stats = r.stats;
      break;
    }
    case EngineKind::kReference: {
      // Last-resort path: shares no candidate-set machinery with the
      // optimized engines, so faults rooted there cannot follow us here.
      ReferenceOptions opts;
      opts.induced = req.plan.induced;
      opts.count_mode = req.plan.count_mode;
      Timer engine_timer;
      result.count = reference_count(g, req.pattern, opts, &token);
      result.stats.engine_ms = engine_timer.elapsed_ms();
      if (token.expired()) result.stats.status = token.status();
      break;
    }
  }
  result.status = result.stats.status;
  return result;
}

QueryResult GraphSession::try_engine(EngineKind kind, const QueryRequest& req,
                                     const MatchingPlan& plan,
                                     const GraphSnapshot& snap,
                                     const CancelToken& token,
                                     std::uint32_t attempt) {
  QueryResult result;
  try {
    // A fresh fault incarnation per attempt: the injected-failure schedule
    // is a pure function of (seed, incarnation, site, key), so transient
    // faults clear deterministically on retry instead of repeating forever.
    QueryRequest attempt_req = req;
    attempt_req.simt.fault.incarnation = req.simt.fault.incarnation + attempt;
    attempt_req.host.fault.incarnation = req.host.fault.incarnation + attempt;
    result = execute_engine(kind, attempt_req, plan, snap, token, attempt);
  } catch (const check_error& e) {
    // Precondition violation: the query (not the engine) is at fault.
    result = QueryResult{};
    result.status = result.stats.status = QueryStatus::kInvalidArgument;
    result.error = e.what();
  } catch (const std::exception& e) {
    // Engine-call boundary (DESIGN.md §9): a throwing engine must not take
    // down the dispatcher thread or strand the admission slot.
    result = QueryResult{};
    result.status = result.stats.status = QueryStatus::kInternalError;
    result.error = std::string("engine ") + to_string(kind) +
                   " threw: " + e.what();
  } catch (...) {
    result = QueryResult{};
    result.status = result.stats.status = QueryStatus::kInternalError;
    result.error = std::string("engine ") + to_string(kind) +
                   " threw a non-standard exception";
  }
  return result;
}

QueryResult GraphSession::execute_resilient(
    const QueryRequest& req, const MatchingPlan& plan, const GraphSnapshot& snap,
    const std::shared_ptr<CancelToken>& token) {
  const ResilienceConfig& res = cfg_.resilience;
  const std::vector<EngineKind> chain =
      fallback_chain(req.engine, res.enable_fallback);
  const std::uint32_t max_attempts = std::max<std::uint32_t>(1, res.retry.max_attempts);

  QueryResult last;
  last.status = last.stats.status = QueryStatus::kInternalError;
  last.served_by = req.engine;
  std::uint32_t total_attempts = 0;
  std::uint64_t faults_sum = 0;
  std::uint64_t units_sum = 0;

  auto finalize = [&](QueryResult r) {
    r.attempts = total_attempts;
    r.stats.faults_injected = faults_sum;
    r.stats.units_recovered = units_sum;
    return r;
  };

  for (EngineKind kind : chain) {
    const auto idx = static_cast<std::size_t>(kind);
    bool allowed;
    {
      std::lock_guard<std::mutex> lock(breakers_mu_);
      const double elapsed = breaker_clock_.elapsed_ms();
      breaker_clock_.reset();
      for (auto& b : breakers_) b.tick_ms(elapsed);
      allowed = breakers_[idx].allow();
      breaker_state_gauges_[idx]->set(
          static_cast<double>(breakers_[idx].state()));
    }
    if (!allowed) {
      // Open circuit: skip straight to the next engine in the chain rather
      // than burning the query's budget on a path that keeps failing.
      breaker_skips_.inc();
      continue;
    }
    if (kind != req.engine) engine_fallbacks_.inc();

    for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
      if (token->expired()) {
        // The token is burned (deadline, cancel or watchdog kill): no
        // engine call can succeed anymore.
        QueryResult dead;
        dead.status = dead.stats.status = token->status();
        dead.served_by = kind;
        dead.degraded = kind != req.engine;
        return finalize(std::move(dead));
      }
      if (attempt > 0) {
        engine_retries_.inc();
        const double delay_ms =
            res.retry.backoff_ms(attempt, static_cast<std::uint64_t>(kind));
        if (delay_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(delay_ms));
        }
      }
      ++total_attempts;
      QueryResult r = try_engine(kind, req, plan, snap, *token, attempt);
      faults_sum += r.stats.faults_injected;
      units_sum += r.stats.units_recovered;
      r.served_by = kind;
      r.degraded = kind != req.engine;

      const bool failure = r.status == QueryStatus::kInternalError;
      {
        std::lock_guard<std::mutex> lock(breakers_mu_);
        if (failure) {
          breakers_[idx].record_failure();
        } else {
          breakers_[idx].record_success();
        }
        breaker_state_gauges_[idx]->set(
            static_cast<double>(breakers_[idx].state()));
      }
      if (!failure) {
        // kOk, but also kInvalidArgument / kDeadlineExceeded / kCancelled:
        // all terminal. Retrying an invalid query would mask the caller's
        // bug; a burned token cannot be un-burned.
        return finalize(std::move(r));
      }
      last = std::move(r);
    }
  }
  return finalize(std::move(last));
}

void GraphSession::execute(QueryJob& job) {
  QueryResult result;
  const double queue_ms = job.since_submit.elapsed_ms();
  queue_wait_ms_.observe(queue_ms);
  queue_depth_.set(static_cast<double>(admission_.queue_depth()));
  inflight_.add(1.0);
  watchdog_.watch(job.token);

  try {
    bool cache_hit = false;
    // Skip plan work for queries that died in the queue.
    if (job.token->expired()) {
      result.status = result.stats.status = job.token->status();
      result.served_by = job.req.engine;
      result.attempts = 0;
    } else {
      // Pin the graph version for the query's whole life: plan compilation,
      // retries and fallbacks all see one consistent snapshot even while a
      // writer publishes newer epochs concurrently.
      const std::shared_ptr<const GraphSnapshot> snap = dyn_.snapshot();
      // Neighbor spans a compressed backend hands out stay valid while this
      // lease is held (the decode cache cannot be trimmed under the query).
      const auto storage_lease = snap->storage_lease();
      auto plan = plan_cache_.get_or_compile(job.req.pattern, job.req.plan,
                                             snap->epoch(), &cache_hit);
      result = execute_resilient(job.req, *plan, *snap, job.token);
      result.plan_cache_hit = cache_hit;
      result.graph_epoch = snap->epoch();
    }
    cache_hit_rate_.set(plan_cache_.stats().hit_rate());
  } catch (const check_error& e) {
    result = QueryResult{};
    result.status = result.stats.status = QueryStatus::kInvalidArgument;
    result.error = e.what();
  } catch (const std::exception& e) {
    // Last line of defense (DESIGN.md §9): nothing may escape into the
    // dispatcher pool, where it would std::terminate the process.
    result = QueryResult{};
    result.status = result.stats.status = QueryStatus::kInternalError;
    result.error = std::string("query execution threw: ") + e.what();
  } catch (...) {
    result = QueryResult{};
    result.status = result.stats.status = QueryStatus::kInternalError;
    result.error = "query execution threw a non-standard exception";
  }
  watchdog_.unwatch(job.token);

  if (!result.ok() && result.error.empty()) {
    // Satellite guarantee: every non-kOk result carries a human-readable
    // detail string.
    switch (result.status) {
      case QueryStatus::kDeadlineExceeded: {
        double budget = job.req.deadline_ms;
        if (budget == 0.0) budget = cfg_.default_deadline_ms;
        result.error = "deadline of " + std::to_string(budget) +
                       " ms exhausted (count is partial)";
        break;
      }
      case QueryStatus::kCancelled:
        result.error = "query cancelled (count is partial)";
        break;
      case QueryStatus::kInternalError:
        result.error = "engine execution failed after " +
                       std::to_string(result.attempts) +
                       " attempt(s); recovery budget exhausted or progress "
                       "stalled";
        break;
      default:
        result.error = std::string("query failed: ") + to_string(result.status);
        break;
    }
  }

  result.queue_ms = queue_ms;
  result.total_ms = job.since_submit.elapsed_ms();
  latency_ms_.observe(result.total_ms);
  inflight_.add(-1.0);
  (result.ok() ? queries_completed_ : queries_failed_).inc();
  if (result.degraded && result.ok()) queries_degraded_.inc();
  matches_total_.inc(result.count);
  engine_scalar_ops_.inc(result.stats.scalar_ops);
  faults_injected_total_.inc(result.stats.faults_injected);
  recovery_units_total_.inc(result.stats.units_recovered);
  refresh_storage_metrics();  // the query's lease is released by now
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    active_tokens_.erase(job.token);
  }
  job.promise.set_value(std::move(result));
}

std::future<UpdateOutcome> GraphSession::submit_updates(UpdateBatch batch) {
  auto promise = std::make_shared<std::promise<UpdateOutcome>>();
  std::future<UpdateOutcome> future = promise->get_future();
  auto shared = std::make_shared<UpdateBatch>(std::move(batch));
  // Updates ride the same dispatcher pool as queries, at kHigh priority: a
  // saturated read workload delays writes rather than starving them, and the
  // same overload bound sheds both.
  const bool admitted =
      admission_.admit(QueryPriority::kHigh, [this, shared, promise] {
        try {
          promise->set_value(do_apply(*shared));
        } catch (...) {
          promise->set_exception(std::current_exception());
        }
      });
  if (!admitted) {
    UpdateOutcome rejected;
    rejected.status = QueryStatus::kOverloaded;
    rejected.epoch = dyn_.epoch();
    rejected.error = "admission rejected: " +
                     std::to_string(admission_.num_workers()) + " running + " +
                     std::to_string(admission_.max_queue()) +
                     " queued slots are full";
    promise->set_value(std::move(rejected));
  }
  return future;
}

UpdateOutcome GraphSession::apply_updates(UpdateBatch batch) {
  return submit_updates(std::move(batch)).get();
}

void GraphSession::compact() {
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    dyn_.compact();
  }
  // compact() re-encodes the backend; publish the new footprint right away.
  refresh_storage_metrics();
}

UpdateOutcome GraphSession::do_apply(const UpdateBatch& batch) {
  std::lock_guard<std::mutex> lock(update_mu_);
  Timer total;
  UpdateOutcome out;

  const std::shared_ptr<const GraphSnapshot> from = dyn_.snapshot();
  ApplyResult applied;
  try {
    if (persist_ != nullptr) {
      // Write-ahead discipline: the effective delta is logged (and fsynced)
      // at the pre-publish point — after the successor snapshot is fully
      // built and the kUpdateApply fault check passed, before readers can
      // see it. A hook throw (exhausted kWalAppend budget) drops the batch:
      // memory and durable state stay in lockstep either way. No-op batches
      // skip the hook entirely (no epoch bump, nothing to recover).
      applied = dyn_.apply(batch, [this](const ApplyResult& r) {
        const persist::WalAppendResult res =
            persist_->log_update(r.snapshot->epoch(), r.applied);
        wal_appended_bytes_.inc(res.bytes);
        if (res.faults > 0) {
          faults_injected_total_.inc(res.faults);
          recovery_units_total_.inc(1);  // the record landed after repairs
        }
      });
    } else {
      applied = dyn_.apply(batch);
    }
  } catch (const check_error& e) {
    updates_failed_.inc();
    out.status = QueryStatus::kInvalidArgument;
    out.error = e.what();
    out.epoch = from->epoch();
    out.update_ms = total.elapsed_ms();
    update_latency_ms_.observe(out.update_ms);
    return out;
  } catch (const std::exception& e) {
    // Includes FaultInjectedError (kUpdateApply chaos): the batch validated
    // but its snapshot was never published, so the graph is unchanged.
    updates_failed_.inc();
    out.status = QueryStatus::kInternalError;
    out.error = std::string("update apply failed: ") + e.what();
    out.epoch = from->epoch();
    out.update_ms = total.elapsed_ms();
    update_latency_ms_.observe(out.update_ms);
    return out;
  }

  out.epoch = applied.snapshot->epoch();
  out.stats = applied.stats;
  out.applied = applied.applied;
  updates_applied_.inc();
  edges_inserted_.inc(applied.stats.inserted);
  edges_deleted_.inc(applied.stats.deleted);
  graph_epoch_.set(static_cast<double>(out.epoch));
  // Keep the partition paired with the newest snapshot (halo refresh of the
  // touched shards only); queries pin the pair atomically under shard_mu_.
  if (cfg_.sharding.enabled()) rebuild_shards(applied.snapshot, &applied.applied);

  apply_standing_deltas(from, applied.applied, out.epoch, &out);

  if (persist_ != nullptr && cfg_.persistence.checkpoint_every_batches > 0 &&
      ++batches_since_checkpoint_ >=
          cfg_.persistence.checkpoint_every_batches) {
    // Post-batch checkpoint: standing counts are already advanced, so the
    // manifest matches the CSR it is stored with. A chaos-failed install
    // leaves the WAL authoritative and retries after the next batch.
    checkpoint_locked();
  }

  out.update_ms = total.elapsed_ms();
  update_latency_ms_.observe(out.update_ms);
  refresh_storage_metrics();
  return out;
}

void GraphSession::apply_standing_deltas(
    const std::shared_ptr<const GraphSnapshot>& from, const DeltaEdges& applied,
    std::uint64_t epoch, UpdateOutcome* out) {
  if (applied.empty()) return;
  Timer inc_timer;
  // The anchored delta enumerations read the pre-batch snapshot.
  const auto storage_lease = from->storage_lease();
  std::lock_guard<std::mutex> standing_lock(standing_mu_);
  if (cfg_.standing_index) {
    apply_standing_deltas_indexed(from, applied, epoch, out);
    if (out != nullptr) {
      out->incremental_ms = inc_timer.elapsed_ms();
      incremental_latency_ms_.observe(out->incremental_ms);
    }
    return;
  }
  for (auto& [id, sq] : standing_) {
    Timer one;
    const DeltaMatchResult d = sq.matcher->count_delta(from, applied);
    const double delta_ms = one.elapsed_ms();
    sq.count = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(sq.count) + d.delta);
    sq.epoch = epoch;
    ++sq.batches;
    if (sq.full_ms > 0.0 && delta_ms > 0.0) {
      delta_speedup_.set(sq.full_ms / delta_ms);
    }
    StandingQueryUpdate upd;
    upd.query_id = id;
    upd.epoch = epoch;
    upd.delta = d.delta;
    upd.count = sq.count;
    upd.delta_ms = delta_ms;
    if (sq.on_update) sq.on_update(upd);
    if (out != nullptr) out->updates.push_back(std::move(upd));

    if (sq.streamer != nullptr) {
      Timer emb_timer;
      stream::DeltaBatch db = sq.streamer->delta(from, applied);
      StandingQueryDelta sd;
      sd.query_id = id;
      sd.epoch = epoch;
      sd.delta_ms = emb_timer.elapsed_ms();
      // Embedding-level and count-level deltas are computed independently
      // (enumeration vs. counting over the same anchored identity); they
      // must agree exactly.
      STM_CHECK_MSG(static_cast<std::int64_t>(db.added.size()) -
                            static_cast<std::int64_t>(db.retracted.size()) ==
                        d.delta,
                    "standing query " << id << ": embedding delta "
                                      << db.added.size() << " - "
                                      << db.retracted.size()
                                      << " disagrees with count delta "
                                      << d.delta);
      sd.added = std::move(db.added);
      sd.retracted = std::move(db.retracted);
      sq.on_delta(sd);
    }
  }
  if (out != nullptr) {
    out->incremental_ms = inc_timer.elapsed_ms();
    incremental_latency_ms_.observe(out->incremental_ms);
  }
}

void GraphSession::apply_standing_deltas_indexed(
    const std::shared_ptr<const GraphSnapshot>& from, const DeltaEdges& applied,
    std::uint64_t epoch, UpdateOutcome* out) {
  if (standing_.empty()) return;
  Timer shared_timer;
  const mqo::MultiQueryEvaluator evaluator(standing_index_);
  const mqo::EvalResult res = evaluator.evaluate(from, applied);
  const double shared_ms = shared_timer.elapsed_ms();
  indexed_delta_latency_ms_.observe(shared_ms);
  // One trie pass served every registration; a query's reported delta_ms is
  // its amortized share of the pass.
  const double amortized_ms = shared_ms / static_cast<double>(standing_.size());
  for (auto& [id, sq] : standing_) {
    mqo::QueryDelta qd = standing_index_.project(id, res);
    sq.count = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(sq.count) + qd.delta);
    sq.epoch = epoch;
    ++sq.batches;
    if (sq.full_ms > 0.0 && amortized_ms > 0.0) {
      delta_speedup_.set(sq.full_ms / amortized_ms);
    }
    StandingQueryUpdate upd;
    upd.query_id = id;
    upd.epoch = epoch;
    upd.delta = qd.delta;
    upd.count = sq.count;
    upd.delta_ms = amortized_ms;
    if (sq.on_update) sq.on_update(upd);
    if (out != nullptr) out->updates.push_back(std::move(upd));

    if (sq.on_delta) {
      // Counts and embedding lists come from the same walk here, but the
      // projection arithmetic (|Aut| division, remap) is independent; keep
      // the same cross-check the per-pattern path enforces.
      STM_CHECK_MSG(static_cast<std::int64_t>(qd.added.size()) -
                            static_cast<std::int64_t>(qd.retracted.size()) ==
                        qd.delta,
                    "standing query " << id << ": embedding delta "
                                      << qd.added.size() << " - "
                                      << qd.retracted.size()
                                      << " disagrees with count delta "
                                      << qd.delta);
      StandingQueryDelta sd;
      sd.query_id = id;
      sd.epoch = epoch;
      sd.delta_ms = amortized_ms;
      sd.added = std::move(qd.added);
      sd.retracted = std::move(qd.retracted);
      sq.on_delta(sd);
    }
  }
}

std::uint64_t GraphSession::register_standing_query(StandingQueryConfig cfg) {
  // Baseline: one full enumeration on the current version. Serialized with
  // the update path so the (count, epoch) pair is consistent — a batch
  // applied concurrently would otherwise race the baseline.
  std::lock_guard<std::mutex> lock(update_mu_);
  const std::shared_ptr<const GraphSnapshot> snap = dyn_.snapshot();
  if (cfg_.standing_index) {
    return register_standing_indexed(std::move(cfg), snap);
  }

  IncrementalOptions inc_opts;
  inc_opts.plan = cfg.plan;
  inc_opts.engine = cfg.engine;
  auto matcher = std::make_shared<const IncrementalMatcher>(cfg.pattern,
                                                            inc_opts);

  auto plan = plan_cache_.get_or_compile(cfg.pattern, cfg.plan, snap->epoch());
  HostEngineConfig host;
  host.num_threads = std::max<std::size_t>(1, cfg_.host_threads_per_query);
  Timer full_timer;
  const auto storage_lease = snap->storage_lease();
  const HostMatchResult full = host_match(snap->view(), *plan, host);
  const double full_ms = full_timer.elapsed_ms();

  StandingQuery sq;
  sq.pattern = cfg.pattern;
  sq.matcher = std::move(matcher);
  sq.on_update = std::move(cfg.on_update);
  if (cfg.on_delta) {
    // The DeltaStreamer constructor enforces kEmbeddings count mode (and,
    // via AnchoredEnumerator, edge-induced semantics).
    sq.streamer =
        std::make_shared<const stream::DeltaStreamer>(cfg.pattern, cfg.plan);
    sq.on_delta = std::move(cfg.on_delta);
  }
  sq.count = full.count;
  sq.epoch = snap->epoch();
  sq.full_ms = full_ms;
  sq.plan = cfg.plan;
  sq.engine = cfg.engine;

  std::lock_guard<std::mutex> standing_lock(standing_mu_);
  const std::uint64_t id = next_standing_id_;
  if (persist_ != nullptr) {
    // Logged before the id is consumed or the query installed: if the append
    // exhausts its chaos budget the throw leaves memory and the id space
    // untouched, so replay and live state can never disagree.
    const persist::WalAppendResult res =
        persist_->log_register(standing_entry(id, sq), snap->epoch());
    wal_appended_bytes_.inc(res.bytes);
    if (res.faults > 0) {
      faults_injected_total_.inc(res.faults);
      recovery_units_total_.inc(1);
    }
  }
  ++next_standing_id_;
  standing_.emplace(id, std::move(sq));
  standing_queries_.set(static_cast<double>(standing_.size()));
  return id;
}

std::uint64_t GraphSession::register_standing_indexed(
    StandingQueryConfig cfg, const std::shared_ptr<const GraphSnapshot>& snap) {
  // Everything the per-pattern path would reject fails here, before any
  // side effect (WAL append, index mutation) — a validated add() below
  // cannot fail halfway.
  mqo::PatternIndex::validate(cfg.pattern, cfg.plan);
  if (cfg.on_delta) {
    STM_CHECK_MSG(cfg.plan.count_mode == CountMode::kEmbeddings,
                  "standing delta streams require kEmbeddings count mode: a "
                  "subgraph can have several embeddings, so retraction of 'a "
                  "subgraph' is ill-defined at embedding granularity");
  }

  // Baseline count. A canonical-group sibling's standing count converts
  // arithmetically (both modes relate by the group's |Aut| factor), so
  // duplicate registrations — the at-scale common case — cost no
  // enumeration at all. standing_/index reads are safe here: writers are
  // serialized by update_mu_, which the caller holds.
  std::uint64_t count = 0;
  double full_ms = 0.0;
  const std::optional<std::uint64_t> sibling =
      standing_index_.any_member(cfg.pattern);
  if (sibling.has_value()) {
    const StandingQuery& sib = standing_.at(*sibling);
    const std::uint64_t aut = standing_index_.automorphisms(*sibling);
    const std::uint64_t embeddings =
        sib.count *
        (sib.plan.count_mode == CountMode::kUniqueSubgraphs ? aut : 1);
    count = cfg.plan.count_mode == CountMode::kUniqueSubgraphs
                ? embeddings / aut
                : embeddings;
  } else {
    auto plan = plan_cache_.get_or_compile(cfg.pattern, cfg.plan, snap->epoch());
    HostEngineConfig host;
    host.num_threads = std::max<std::size_t>(1, cfg_.host_threads_per_query);
    Timer full_timer;
    const auto storage_lease = snap->storage_lease();
    count = host_match(snap->view(), *plan, host).count;
    full_ms = full_timer.elapsed_ms();
  }

  StandingQuery sq;
  sq.pattern = cfg.pattern;
  sq.on_update = std::move(cfg.on_update);
  sq.on_delta = std::move(cfg.on_delta);
  sq.count = count;
  sq.epoch = snap->epoch();
  sq.full_ms = full_ms;
  sq.plan = cfg.plan;
  sq.engine = cfg.engine;

  std::lock_guard<std::mutex> standing_lock(standing_mu_);
  const std::uint64_t id = next_standing_id_;
  if (persist_ != nullptr) {
    const persist::WalAppendResult res =
        persist_->log_register(standing_entry(id, sq), snap->epoch());
    wal_appended_bytes_.inc(res.bytes);
    if (res.faults > 0) {
      faults_injected_total_.inc(res.faults);
      recovery_units_total_.inc(1);
    }
  }
  ++next_standing_id_;
  standing_index_.add(id, sq.pattern, sq.plan, static_cast<bool>(sq.on_delta));
  standing_.emplace(id, std::move(sq));
  standing_queries_.set(static_cast<double>(standing_.size()));
  publish_index_metrics();
  return id;
}

bool GraphSession::unregister_standing_query(std::uint64_t id) {
  // Serialized with the update path so the unregistration's WAL position is
  // unambiguous relative to update records.
  std::lock_guard<std::mutex> update_lock(update_mu_);
  std::lock_guard<std::mutex> lock(standing_mu_);
  auto it = standing_.find(id);
  if (it == standing_.end()) return false;
  if (persist_ != nullptr) {
    const persist::WalAppendResult res =
        persist_->log_unregister(id, dyn_.epoch());
    wal_appended_bytes_.inc(res.bytes);
    if (res.faults > 0) {
      faults_injected_total_.inc(res.faults);
      recovery_units_total_.inc(1);
    }
  }
  standing_.erase(it);
  if (cfg_.standing_index) {
    standing_index_.remove(id);
    publish_index_metrics();
  }
  standing_queries_.set(static_cast<double>(standing_.size()));
  return true;
}

void GraphSession::publish_index_metrics() {
  const mqo::IndexStats st = standing_index_.stats();
  standing_patterns_.set(static_cast<double>(st.groups));
  trie_nodes_.set(static_cast<double>(st.trie.nodes));
  shared_prefix_ratio_.set(st.trie.shared_prefix_ratio);
}

mqo::IndexStats GraphSession::standing_index_stats() const {
  std::lock_guard<std::mutex> lock(standing_mu_);
  return standing_index_.stats();
}

std::optional<StandingQueryInfo> GraphSession::standing_query(
    std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(standing_mu_);
  auto it = standing_.find(id);
  if (it == standing_.end()) return std::nullopt;
  StandingQueryInfo info;
  info.id = id;
  info.pattern = it->second.pattern;
  info.count = it->second.count;
  info.epoch = it->second.epoch;
  info.batches_observed = it->second.batches;
  info.full_ms = it->second.full_ms;
  return info;
}

persist::StandingEntry GraphSession::standing_entry(
    std::uint64_t id, const StandingQuery& sq) const {
  persist::StandingEntry e;
  e.id = id;
  e.pattern = sq.pattern.to_string();
  e.plan = sq.plan;
  e.engine = sq.engine;
  e.count = sq.count;
  e.epoch = sq.epoch;
  e.batches = sq.batches;
  e.full_ms = sq.full_ms;
  return e;
}

void GraphSession::restore_standing(const persist::StandingEntry& entry) {
  // Counts are durable, not recomputed: the registration record carries the
  // baseline and update records advance it through the same delta path that
  // ran before the crash, so no full re-enumeration happens at boot. The
  // matcher itself is stateless and is simply rebuilt. Callbacks and delta
  // streamers cannot be serialized; a restored session re-attaches them by
  // registering fresh queries.
  StandingQuery sq;
  sq.pattern = Pattern::parse(entry.pattern);
  if (!cfg_.standing_index) {
    IncrementalOptions inc_opts;
    inc_opts.plan = entry.plan;
    inc_opts.engine = entry.engine;
    sq.matcher =
        std::make_shared<const IncrementalMatcher>(sq.pattern, inc_opts);
  }
  sq.count = entry.count;
  sq.epoch = entry.epoch;
  sq.batches = entry.batches;
  sq.full_ms = entry.full_ms;
  sq.plan = entry.plan;
  sq.engine = entry.engine;
  std::lock_guard<std::mutex> lock(standing_mu_);
  if (cfg_.standing_index) {
    // add() replaces an existing id, mirroring insert_or_assign below, so a
    // checkpoint-manifest entry superseded by a WAL record rebuilds the
    // exact same trie state (delta streamers do not survive a restart, so
    // restored registrations never collect embeddings).
    standing_index_.add(entry.id, sq.pattern, entry.plan,
                        /*wants_embeddings=*/false);
    publish_index_metrics();
  }
  standing_.insert_or_assign(entry.id, std::move(sq));
}

bool GraphSession::checkpoint() {
  STM_CHECK_MSG(persist_ != nullptr,
                "checkpoint() requires SessionConfig::persistence");
  std::lock_guard<std::mutex> lock(update_mu_);
  return checkpoint_locked();
}

bool GraphSession::checkpoint_locked() {
  Timer timer;
  persist::CheckpointData data;
  const std::shared_ptr<const GraphSnapshot> snap = dyn_.snapshot();
  data.epoch = snap->epoch();
  data.graph = snap->compacted();
  {
    std::lock_guard<std::mutex> standing_lock(standing_mu_);
    data.next_standing_id = next_standing_id_;
    data.standing.reserve(standing_.size());
    for (const auto& [id, sq] : standing_)
      data.standing.push_back(standing_entry(id, sq));
  }
  const std::uint64_t faults_before = persist_->faults_injected();
  bool ok = true;
  try {
    persist_->install_checkpoint(std::move(data));
  } catch (const FaultInjectedError&) {
    // Exhausted chaos budget: the WAL and previous checkpoint set still
    // hold everything, so the session keeps running un-checkpointed.
    checkpoint_failures_.inc(1);
    ok = false;
  }
  const std::uint64_t faults = persist_->faults_injected() - faults_before;
  if (faults > 0) {
    faults_injected_total_.inc(faults);
    if (ok) recovery_units_total_.inc(1);
  }
  if (ok) {
    batches_since_checkpoint_ = 0;
    checkpoints_written_.inc(1);
    checkpoint_duration_ms_.observe(timer.elapsed_ms());
  }
  return ok;
}

}  // namespace stm
