#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/reference.hpp"
#include "core/engine.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace stm {

const char* to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSimt:
      return "simt";
    case EngineKind::kHost:
      return "host";
    case EngineKind::kReference:
      return "reference";
  }
  return "unknown";
}

namespace {

/// Degradation order per requested engine. The chain starts with the
/// requested engine itself; every later entry trades performance for
/// independence from the failing machinery (the reference enumerator shares
/// no candidate-set code with either optimized engine).
std::vector<EngineKind> fallback_chain(EngineKind requested, bool fallback) {
  std::vector<EngineKind> chain{requested};
  if (!fallback) return chain;
  switch (requested) {
    case EngineKind::kSimt:
      chain.push_back(EngineKind::kHost);
      chain.push_back(EngineKind::kReference);
      break;
    case EngineKind::kHost:
      chain.push_back(EngineKind::kReference);
      break;
    case EngineKind::kReference:
      break;
  }
  return chain;
}

}  // namespace

struct GraphSession::QueryJob {
  QueryRequest req;
  std::promise<QueryResult> promise;
  std::shared_ptr<CancelToken> token;
  Timer since_submit;  // started at submission; queue wait + total latency
};

GraphSession::GraphSession(Graph graph, SessionConfig cfg)
    : graph_(std::move(graph)),
      cfg_(cfg),
      plan_cache_(cfg.plan_cache_capacity),
      queries_submitted_(metrics_.counter(
          "queries_submitted", "Queries received (admitted + rejected)")),
      queries_admitted_(
          metrics_.counter("queries_admitted", "Queries accepted for execution")),
      queries_rejected_(metrics_.counter(
          "queries_rejected", "Queries shed at admission (overload)")),
      queries_completed_(
          metrics_.counter("queries_completed", "Queries finished with ok")),
      queries_failed_(metrics_.counter(
          "queries_failed",
          "Queries finished non-ok (deadline, cancel, invalid, internal)")),
      queries_degraded_(metrics_.counter(
          "queries_degraded", "Queries served by a fallback engine")),
      engine_retries_(metrics_.counter(
          "engine_retries", "Engine calls re-issued after kInternalError")),
      engine_fallbacks_(metrics_.counter(
          "engine_fallbacks", "Fallback-chain hops past the requested engine")),
      breaker_skips_(metrics_.counter(
          "breaker_skips", "Engine calls skipped by an open circuit breaker")),
      watchdog_kills_(metrics_.counter(
          "watchdog_kills", "Queries force-failed for stalled progress")),
      faults_injected_total_(metrics_.counter(
          "faults_injected_total", "Injected faults observed across queries")),
      recovery_units_total_(metrics_.counter(
          "recovery_units_total", "Work units recovered after injected faults")),
      matches_total_(
          metrics_.counter("matches_total", "Embeddings counted across queries")),
      engine_scalar_ops_(metrics_.counter(
          "engine_scalar_ops", "Scalar set-operation work across queries")),
      inflight_(metrics_.gauge("inflight_queries", "Queries executing now")),
      queue_depth_(metrics_.gauge("queue_depth", "Queries waiting to start")),
      cache_hit_rate_(metrics_.gauge("plan_cache_hit_rate",
                                     "Fraction of plan lookups served cached")),
      latency_ms_(metrics_.histogram("query_latency_ms",
                                     "Submission-to-completion latency")),
      queue_wait_ms_(metrics_.histogram("queue_wait_ms",
                                        "Admission-to-execution wait")),
      watchdog_(cfg.resilience.watchdog_stall_ms, cfg.resilience.watchdog_poll_ms,
                &watchdog_kills_),
      admission_(std::max<std::size_t>(1, cfg.max_concurrent_queries),
                 cfg.max_queued_queries) {
  STM_CHECK_MSG(graph_.num_vertices() > 0,
                "GraphSession requires a non-empty graph");
  for (std::size_t k = 0; k < kNumEngineKinds; ++k) {
    breakers_[k] = CircuitBreaker(cfg_.resilience.breaker);
    breaker_state_gauges_[k] = &metrics_.gauge(
        std::string("breaker_state_") + to_string(static_cast<EngineKind>(k)),
        "Circuit state (0=closed, 1=open, 2=half-open)");
  }
  if (cfg_.resilience.pool_fault.enabled()) {
    STM_CHECK(cfg_.resilience.pool_fault.max_unit_attempts >= 1);
    pool_injector_.emplace(cfg_.resilience.pool_fault);
    admission_.set_fault_injection(&*pool_injector_,
                                   cfg_.resilience.pool_fault.max_unit_attempts);
  }
}

GraphSession::~GraphSession() {
  drain();
  // Workers are done; detach the pool from the injector before it dies.
  if (pool_injector_.has_value()) admission_.set_fault_injection(nullptr, 0);
}

std::future<QueryResult> GraphSession::submit(QueryRequest req) {
  queries_submitted_.inc();
  auto job = std::make_shared<QueryJob>();
  job->req = std::move(req);
  job->token = std::make_shared<CancelToken>();
  std::future<QueryResult> future = job->promise.get_future();

  // The deadline covers the query's whole life, queue wait included: a
  // request that waits past its budget is interrupted as soon as it starts.
  double deadline = job->req.deadline_ms;
  if (deadline == 0.0) deadline = cfg_.default_deadline_ms;
  if (deadline > 0.0) job->token->set_deadline_ms(deadline);

  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    active_tokens_.insert(job->token);
  }

  const bool admitted =
      admission_.admit(job->req.priority, [this, job] { execute(*job); });
  if (!admitted) {
    queries_rejected_.inc();
    {
      std::lock_guard<std::mutex> lock(tokens_mu_);
      active_tokens_.erase(job->token);
    }
    QueryResult rejected;
    rejected.status = QueryStatus::kOverloaded;
    rejected.stats.status = QueryStatus::kOverloaded;
    rejected.served_by = job->req.engine;
    rejected.attempts = 0;
    rejected.error = "admission rejected: " +
                     std::to_string(admission_.num_workers()) + " running + " +
                     std::to_string(admission_.max_queue()) +
                     " queued slots are full";
    rejected.total_ms = job->since_submit.elapsed_ms();
    job->promise.set_value(std::move(rejected));
    return future;
  }
  queries_admitted_.inc();
  queue_depth_.set(static_cast<double>(admission_.queue_depth()));
  return future;
}

QueryResult GraphSession::run(QueryRequest req) {
  return submit(std::move(req)).get();
}

void GraphSession::drain() { admission_.drain(); }

void GraphSession::cancel_all() {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  for (const auto& token : active_tokens_) token->cancel();
}

CircuitBreaker::State GraphSession::breaker_state(EngineKind kind) {
  std::lock_guard<std::mutex> lock(breakers_mu_);
  return breakers_[static_cast<std::size_t>(kind)].state();
}

QueryResult GraphSession::execute_engine(EngineKind kind,
                                         const QueryRequest& req,
                                         const MatchingPlan& plan,
                                         const CancelToken& token) {
  QueryResult result;
  switch (kind) {
    case EngineKind::kSimt: {
      MatchResult r = stmatch_match(graph_, plan, req.simt, &token);
      result.count = r.count;
      result.stats = r.query;
      // Simulated engine time is not wall time; report wall latency fields
      // from the service clocks below, but keep the engine's own view here.
      break;
    }
    case EngineKind::kHost: {
      HostEngineConfig host = req.host;
      if (host.num_threads == 0) {
        host.num_threads = std::max<std::size_t>(1, cfg_.host_threads_per_query);
      }
      HostMatchResult r = host_match(graph_, plan, host, &token);
      result.count = r.count;
      result.stats = r.stats;
      break;
    }
    case EngineKind::kReference: {
      // Last-resort path: shares no candidate-set machinery with the
      // optimized engines, so faults rooted there cannot follow us here.
      ReferenceOptions opts;
      opts.induced = req.plan.induced;
      opts.count_mode = req.plan.count_mode;
      Timer engine_timer;
      result.count = reference_count(graph_, req.pattern, opts, &token);
      result.stats.engine_ms = engine_timer.elapsed_ms();
      if (token.expired()) result.stats.status = token.status();
      break;
    }
  }
  result.status = result.stats.status;
  return result;
}

QueryResult GraphSession::try_engine(EngineKind kind, const QueryRequest& req,
                                     const MatchingPlan& plan,
                                     const CancelToken& token,
                                     std::uint32_t attempt) {
  QueryResult result;
  try {
    // A fresh fault incarnation per attempt: the injected-failure schedule
    // is a pure function of (seed, incarnation, site, key), so transient
    // faults clear deterministically on retry instead of repeating forever.
    QueryRequest attempt_req = req;
    attempt_req.simt.fault.incarnation = req.simt.fault.incarnation + attempt;
    attempt_req.host.fault.incarnation = req.host.fault.incarnation + attempt;
    result = execute_engine(kind, attempt_req, plan, token);
  } catch (const check_error& e) {
    // Precondition violation: the query (not the engine) is at fault.
    result = QueryResult{};
    result.status = result.stats.status = QueryStatus::kInvalidArgument;
    result.error = e.what();
  } catch (const std::exception& e) {
    // Engine-call boundary (DESIGN.md §9): a throwing engine must not take
    // down the dispatcher thread or strand the admission slot.
    result = QueryResult{};
    result.status = result.stats.status = QueryStatus::kInternalError;
    result.error = std::string("engine ") + to_string(kind) +
                   " threw: " + e.what();
  } catch (...) {
    result = QueryResult{};
    result.status = result.stats.status = QueryStatus::kInternalError;
    result.error = std::string("engine ") + to_string(kind) +
                   " threw a non-standard exception";
  }
  return result;
}

QueryResult GraphSession::execute_resilient(
    const QueryRequest& req, const MatchingPlan& plan,
    const std::shared_ptr<CancelToken>& token) {
  const ResilienceConfig& res = cfg_.resilience;
  const std::vector<EngineKind> chain =
      fallback_chain(req.engine, res.enable_fallback);
  const std::uint32_t max_attempts = std::max<std::uint32_t>(1, res.retry.max_attempts);

  QueryResult last;
  last.status = last.stats.status = QueryStatus::kInternalError;
  last.served_by = req.engine;
  std::uint32_t total_attempts = 0;
  std::uint64_t faults_sum = 0;
  std::uint64_t units_sum = 0;

  auto finalize = [&](QueryResult r) {
    r.attempts = total_attempts;
    r.stats.faults_injected = faults_sum;
    r.stats.units_recovered = units_sum;
    return r;
  };

  for (EngineKind kind : chain) {
    const auto idx = static_cast<std::size_t>(kind);
    bool allowed;
    {
      std::lock_guard<std::mutex> lock(breakers_mu_);
      const double elapsed = breaker_clock_.elapsed_ms();
      breaker_clock_.reset();
      for (auto& b : breakers_) b.tick_ms(elapsed);
      allowed = breakers_[idx].allow();
      breaker_state_gauges_[idx]->set(
          static_cast<double>(breakers_[idx].state()));
    }
    if (!allowed) {
      // Open circuit: skip straight to the next engine in the chain rather
      // than burning the query's budget on a path that keeps failing.
      breaker_skips_.inc();
      continue;
    }
    if (kind != req.engine) engine_fallbacks_.inc();

    for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
      if (token->expired()) {
        // The token is burned (deadline, cancel or watchdog kill): no
        // engine call can succeed anymore.
        QueryResult dead;
        dead.status = dead.stats.status = token->status();
        dead.served_by = kind;
        dead.degraded = kind != req.engine;
        return finalize(std::move(dead));
      }
      if (attempt > 0) {
        engine_retries_.inc();
        const double delay_ms =
            res.retry.backoff_ms(attempt, static_cast<std::uint64_t>(kind));
        if (delay_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(delay_ms));
        }
      }
      ++total_attempts;
      QueryResult r = try_engine(kind, req, plan, *token, attempt);
      faults_sum += r.stats.faults_injected;
      units_sum += r.stats.units_recovered;
      r.served_by = kind;
      r.degraded = kind != req.engine;

      const bool failure = r.status == QueryStatus::kInternalError;
      {
        std::lock_guard<std::mutex> lock(breakers_mu_);
        if (failure) {
          breakers_[idx].record_failure();
        } else {
          breakers_[idx].record_success();
        }
        breaker_state_gauges_[idx]->set(
            static_cast<double>(breakers_[idx].state()));
      }
      if (!failure) {
        // kOk, but also kInvalidArgument / kDeadlineExceeded / kCancelled:
        // all terminal. Retrying an invalid query would mask the caller's
        // bug; a burned token cannot be un-burned.
        return finalize(std::move(r));
      }
      last = std::move(r);
    }
  }
  return finalize(std::move(last));
}

void GraphSession::execute(QueryJob& job) {
  QueryResult result;
  const double queue_ms = job.since_submit.elapsed_ms();
  queue_wait_ms_.observe(queue_ms);
  queue_depth_.set(static_cast<double>(admission_.queue_depth()));
  inflight_.add(1.0);
  watchdog_.watch(job.token);

  try {
    bool cache_hit = false;
    // Skip plan work for queries that died in the queue.
    if (job.token->expired()) {
      result.status = result.stats.status = job.token->status();
      result.served_by = job.req.engine;
      result.attempts = 0;
    } else {
      auto plan =
          plan_cache_.get_or_compile(job.req.pattern, job.req.plan, &cache_hit);
      result = execute_resilient(job.req, *plan, job.token);
      result.plan_cache_hit = cache_hit;
    }
    cache_hit_rate_.set(plan_cache_.stats().hit_rate());
  } catch (const check_error& e) {
    result = QueryResult{};
    result.status = result.stats.status = QueryStatus::kInvalidArgument;
    result.error = e.what();
  } catch (const std::exception& e) {
    // Last line of defense (DESIGN.md §9): nothing may escape into the
    // dispatcher pool, where it would std::terminate the process.
    result = QueryResult{};
    result.status = result.stats.status = QueryStatus::kInternalError;
    result.error = std::string("query execution threw: ") + e.what();
  } catch (...) {
    result = QueryResult{};
    result.status = result.stats.status = QueryStatus::kInternalError;
    result.error = "query execution threw a non-standard exception";
  }
  watchdog_.unwatch(job.token);

  if (!result.ok() && result.error.empty()) {
    // Satellite guarantee: every non-kOk result carries a human-readable
    // detail string.
    switch (result.status) {
      case QueryStatus::kDeadlineExceeded: {
        double budget = job.req.deadline_ms;
        if (budget == 0.0) budget = cfg_.default_deadline_ms;
        result.error = "deadline of " + std::to_string(budget) +
                       " ms exhausted (count is partial)";
        break;
      }
      case QueryStatus::kCancelled:
        result.error = "query cancelled (count is partial)";
        break;
      case QueryStatus::kInternalError:
        result.error = "engine execution failed after " +
                       std::to_string(result.attempts) +
                       " attempt(s); recovery budget exhausted or progress "
                       "stalled";
        break;
      default:
        result.error = std::string("query failed: ") + to_string(result.status);
        break;
    }
  }

  result.queue_ms = queue_ms;
  result.total_ms = job.since_submit.elapsed_ms();
  latency_ms_.observe(result.total_ms);
  inflight_.add(-1.0);
  (result.ok() ? queries_completed_ : queries_failed_).inc();
  if (result.degraded && result.ok()) queries_degraded_.inc();
  matches_total_.inc(result.count);
  engine_scalar_ops_.inc(result.stats.scalar_ops);
  faults_injected_total_.inc(result.stats.faults_injected);
  recovery_units_total_.inc(result.stats.units_recovered);
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    active_tokens_.erase(job.token);
  }
  job.promise.set_value(std::move(result));
}

}  // namespace stm
