#include "service/plan_cache.hpp"

#include "pattern/canonical.hpp"
#include "pattern/matching_order.hpp"
#include "util/check.hpp"

namespace stm {

namespace {

/// Plan options that change compiled-plan semantics, folded into the key.
std::string options_suffix(const PlanOptions& opts) {
  std::string s = "|";
  s += (opts.induced == Induced::kVertex) ? 'v' : 'e';
  s += opts.code_motion ? '1' : '0';
  s += (opts.count_mode == CountMode::kUniqueSubgraphs) ? 'u' : 'm';
  // The ISA pin rides on the plan, so two plans differing only in it must
  // not share a cache entry. Appended only when non-default so every key
  // minted before the knob existed is unchanged.
  if (opts.forced_isa != simd::IsaChoice::kAuto) {
    s += "|i";
    s += to_string(opts.forced_isa);
  }
  return s;
}

}  // namespace

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  STM_CHECK_MSG(capacity_ >= 1, "plan cache capacity must be >= 1");
}

std::shared_ptr<const MatchingPlan> PlanCache::lookup_locked(
    const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.plan;
}

void PlanCache::insert_locked(const std::string& canonical,
                              std::shared_ptr<const MatchingPlan> plan) {
  lru_.push_front(canonical);
  entries_[canonical] = Entry{std::move(plan), lru_.begin()};
  while (entries_.size() > capacity_) evict_locked();
}

void PlanCache::evict_locked() {
  STM_CHECK(!lru_.empty());
  const std::string victim = lru_.back();
  lru_.pop_back();
  entries_.erase(victim);
  for (auto it = aliases_.begin(); it != aliases_.end();) {
    it = (it->second == victim) ? aliases_.erase(it) : std::next(it);
  }
  ++stats_.evictions;
}

std::shared_ptr<const MatchingPlan> PlanCache::get_or_compile(
    const Pattern& pattern, const PlanOptions& opts, bool* was_hit) {
  return get_or_compile(pattern, opts, 0, was_hit);
}

std::shared_ptr<const MatchingPlan> PlanCache::get_or_compile(
    const Pattern& pattern, const PlanOptions& opts, std::uint64_t epoch,
    bool* was_hit) {
  std::string suffix = options_suffix(opts);
  // The epoch participates in both key tiers: plans carry graph-derived
  // decisions (a degree-ordered matching order), so a mutation must force a
  // recompile rather than serve yesterday's order.
  if (epoch != 0) suffix += "|e" + std::to_string(epoch);
  const std::string exact = pattern.to_string() + suffix;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto alias = aliases_.find(exact);
    if (alias != aliases_.end()) {
      if (auto plan = lookup_locked(alias->second)) {
        ++stats_.hits;
        if (was_hit != nullptr) *was_hit = true;
        return plan;
      }
      aliases_.erase(alias);  // target was evicted
    }
  }

  // Isomorphism-invariant tier: a renumbered variant of a cached pattern
  // resolves to the same canonical key. Canonicalization runs outside the
  // lock (it is the expensive part of this path).
  const std::string canonical = canonical_form(pattern) + suffix;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto plan = lookup_locked(canonical)) {
      ++stats_.hits;
      aliases_[exact] = canonical;
      if (was_hit != nullptr) *was_hit = true;
      return plan;
    }
  }

  auto plan = std::make_shared<const MatchingPlan>(
      reorder_for_matching(pattern), opts);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  if (was_hit != nullptr) *was_hit = false;
  if (auto existing = lookup_locked(canonical)) return existing;  // lost race
  insert_locked(canonical, plan);
  aliases_[exact] = canonical;
  return plan;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  aliases_.clear();
  lru_.clear();
}

}  // namespace stm
