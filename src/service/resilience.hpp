// Service-level resilience primitives: bounded retries with deterministic
// exponential backoff, and a per-engine circuit breaker.
//
// Both are policy objects the GraphSession dispatcher consults around each
// engine call; neither owns threads. Only kInternalError outcomes count as
// "failures" here — kInvalidArgument is the caller's bug and retrying or
// falling back would just mask it, and kDeadlineExceeded/kCancelled mean the
// token is burned, so re-running cannot help.
#pragma once

#include <cstdint>

#include "core/fault.hpp"

namespace stm {

/// Bounded-retry policy with exponential backoff and deterministic jitter.
///
/// backoff_ms(attempt, key) is a pure function of (attempt, key,
/// jitter_seed): replaying a query with the same seed reproduces the same
/// sleep schedule, which keeps chaos tests exact.
struct RetryPolicy {
  /// Total tries per engine, including the first (1 = no retry).
  std::uint32_t max_attempts = 2;
  double base_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 100.0;
  /// Seed for the deterministic jitter term (up to +50% of the base delay).
  std::uint64_t jitter_seed = 0;

  /// Delay before retry number `attempt` (attempt >= 1); `key` identifies
  /// the query so concurrent retries don't thundering-herd in lockstep.
  double backoff_ms(std::uint32_t attempt, std::uint64_t key) const;
};

/// Per-engine circuit breaker (closed → open → half-open).
///
/// `failure_threshold` consecutive failures open the circuit: allow()
/// answers false (the dispatcher skips this engine and moves down the
/// fallback chain) until `cooldown_ms` of virtual time has been reported
/// via tick_ms(). Then one probe is let through (half-open); its success
/// closes the circuit, its failure re-opens it for another cooldown.
///
/// Time is injected by the caller through tick_ms() rather than read from a
/// wall clock, so breaker behaviour in tests is deterministic. Not
/// thread-safe: the session guards each breaker with its dispatch lock.
class CircuitBreaker {
 public:
  struct Config {
    /// Consecutive failures that open the circuit; 0 disables the breaker
    /// (allow() is always true).
    std::uint32_t failure_threshold = 5;
    double cooldown_ms = 100.0;
  };

  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() = default;
  explicit CircuitBreaker(const Config& cfg) : cfg_(cfg) {}

  /// Advances the breaker's virtual clock (the session reports elapsed
  /// wall time between dispatches).
  void tick_ms(double elapsed_ms);

  /// May a call be issued now? Transitions open → half-open when the
  /// cooldown has elapsed.
  bool allow();

  void record_success();
  void record_failure();

  State state() const { return state_; }
  /// Times the circuit transitioned closed/half-open → open.
  std::uint64_t trips() const { return trips_; }

 private:
  Config cfg_;
  State state_ = State::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  double since_open_ms_ = 0.0;
  std::uint64_t trips_ = 0;
};

const char* to_string(CircuitBreaker::State s);

}  // namespace stm
