// Metrics registry for the query service layer.
//
// Counters (monotonic), gauges (instantaneous) and latency histograms,
// registered by name and exportable as JSON or Prometheus text exposition.
// All metric updates are thread-safe: counters and gauges are atomic,
// histograms take a short lock per observation. Percentiles (p50/p95/p99)
// are exact, computed from a bounded sample reservoir with util/stats.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace stm {

/// Monotonically increasing counter.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous value (queue depth, in-flight queries, hit rate).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Snapshot of a histogram, taken under its lock.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Per-bucket (non-cumulative) counts; counts.size() == bounds.size() + 1,
  /// the last bucket is +Inf.
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
};

/// Latency histogram: fixed upper-bound buckets plus a bounded reservoir of
/// raw samples for exact percentiles (reservoir-sampled past capacity).
class Histogram {
 public:
  /// Default bounds: exponential 0.25ms .. 8192ms.
  static std::vector<double> default_latency_bounds_ms();

  explicit Histogram(std::vector<double> bounds = default_latency_bounds_ms());

  void observe(double v);
  HistogramSnapshot snapshot() const;

 private:
  static constexpr std::size_t kReservoirCapacity = 8192;

  mutable std::mutex mu_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;
  std::uint64_t reservoir_state_;  // splitmix64 state for replacement slots
};

/// Named metric registry. Metric objects are created on first access and
/// remain valid (stable addresses) for the registry's lifetime, so hot paths
/// can cache `Counter&` references.
///
/// Names may carry a Prometheus label set (`shard_owned_vertices{shard="0"}`);
/// each labeled series is its own counter/gauge, the exporters emit one
/// HELP/TYPE header per family (the part before '{') and escape the quotes
/// in JSON keys. Histograms do not support labels.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, const std::string& help = "",
                       std::vector<double> bounds =
                           Histogram::default_latency_bounds_ms());

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// min, max, p50, p95, p99, buckets: [{le, count}...]}}}
  std::string to_json() const;

  /// Prometheus text exposition: counters and gauges as-is; histograms as
  /// summaries (quantile 0.5/0.95/0.99 + _sum/_count) plus cumulative
  /// `_bucket{le=...}` lines.
  std::string to_prometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, const std::string& help,
                        Kind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // insertion order
  std::map<std::string, Entry*> by_name_;
};

}  // namespace stm
