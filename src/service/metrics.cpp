#include "service/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace stm {

namespace {

/// Shortest round-trip double formatting that stays JSON/Prometheus-safe
/// (no NaN/Inf emitted; metrics never produce them by construction).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// JSON string escaping for metric names used as object keys — labeled names
/// like `shard_owned_vertices{shard="0"}` contain quotes.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// The metric family of a possibly labeled series name: everything before
/// the '{'. Prometheus HELP/TYPE lines are per family, not per series.
std::string family_of(const std::string& name) {
  const auto brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

}  // namespace

std::vector<double> Histogram::default_latency_bounds_ms() {
  std::vector<double> bounds;
  for (double b = 0.25; b <= 8192.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1, 0),
      reservoir_state_(0x5eed5eed5eedULL) {
  STM_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bucket bounds must be ascending");
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  sum_ += v;
  if (samples_.size() < kReservoirCapacity) {
    samples_.push_back(v);
  } else {
    // Reservoir sampling keeps the percentile estimate unbiased under a
    // bounded memory footprint.
    const std::uint64_t slot = splitmix64(reservoir_state_) % n_;
    if (slot < kReservoirCapacity) samples_[slot] = v;
  }
}

HistogramSnapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot s;
  s.count = n_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.bounds = bounds_;
  s.counts = counts_;
  if (!samples_.empty()) {
    s.p50 = percentile(samples_, 50.0);
    s.p95 = percentile(samples_, 95.0);
    s.p99 = percentile(samples_, 99.0);
  }
  return s;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, const std::string& help, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    STM_CHECK_MSG(it->second->kind == kind,
                  "metric '" << name << "' re-registered with another type");
    return *it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->kind = kind;
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  by_name_[name] = raw;
  return *raw;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  Entry& e = find_or_create(name, help, Kind::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  Entry& e = find_or_create(name, help, Kind::kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds) {
  Entry& e = find_or_create(name, help, Kind::kHistogram);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

std::string MetricsRegistry::to_json() const {
  std::vector<Entry*> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& e : entries_) entries.push_back(e.get());
  }
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const Entry* e : entries) {
    if (e->kind != Kind::kCounter) continue;
    out << (first ? "" : ",") << "\n    \"" << json_escape(e->name)
        << "\": " << e->counter->value();
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const Entry* e : entries) {
    if (e->kind != Kind::kGauge) continue;
    out << (first ? "" : ",") << "\n    \"" << json_escape(e->name)
        << "\": " << fmt_double(e->gauge->value());
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const Entry* e : entries) {
    if (e->kind != Kind::kHistogram) continue;
    const HistogramSnapshot s = e->histogram->snapshot();
    out << (first ? "" : ",") << "\n    \"" << json_escape(e->name) << "\": {"
        << "\"count\": " << s.count << ", \"sum\": " << fmt_double(s.sum)
        << ", \"min\": " << fmt_double(s.min)
        << ", \"max\": " << fmt_double(s.max)
        << ", \"p50\": " << fmt_double(s.p50)
        << ", \"p95\": " << fmt_double(s.p95)
        << ", \"p99\": " << fmt_double(s.p99) << ", \"buckets\": [";
    for (std::size_t b = 0; b < s.counts.size(); ++b) {
      out << (b == 0 ? "" : ", ") << "{\"le\": "
          << (b < s.bounds.size() ? fmt_double(s.bounds[b])
                                  : std::string("\"+Inf\""))
          << ", \"count\": " << s.counts[b] << "}";
    }
    out << "]}";
    first = false;
  }
  out << "\n  }\n}\n";
  return out.str();
}

std::string MetricsRegistry::to_prometheus() const {
  std::vector<Entry*> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& e : entries_) entries.push_back(e.get());
  }
  std::ostringstream out;
  // HELP/TYPE are per metric *family*: labeled series (`name{shard="0"}`)
  // share their family's header, emitted once at first encounter.
  std::set<std::string> announced;
  std::ostringstream dummy;
  for (const Entry* e : entries) {
    const std::string family = family_of(e->name);
    std::ostream& hdr = announced.insert(family).second ? out : dummy;
    if (!e->help.empty())
      hdr << "# HELP " << family << " " << e->help << "\n";
    switch (e->kind) {
      case Kind::kCounter:
        hdr << "# TYPE " << family << " counter\n";
        out << e->name << " " << e->counter->value() << "\n";
        break;
      case Kind::kGauge:
        hdr << "# TYPE " << family << " gauge\n";
        out << e->name << " " << fmt_double(e->gauge->value()) << "\n";
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot s = e->histogram->snapshot();
        hdr << "# TYPE " << family << " summary\n";
        out << e->name << "{quantile=\"0.5\"} " << fmt_double(s.p50) << "\n";
        out << e->name << "{quantile=\"0.95\"} " << fmt_double(s.p95) << "\n";
        out << e->name << "{quantile=\"0.99\"} " << fmt_double(s.p99) << "\n";
        out << e->name << "_sum " << fmt_double(s.sum) << "\n";
        out << e->name << "_count " << s.count << "\n";
        // Cumulative buckets as a sibling family, so dashboards that expect
        // classic histogram series can still aggregate.
        out << "# TYPE " << e->name << "_hist histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < s.counts.size(); ++b) {
          cum += s.counts[b];
          out << e->name << "_hist_bucket{le=\""
              << (b < s.bounds.size() ? fmt_double(s.bounds[b]) : "+Inf")
              << "\"} " << cum << "\n";
        }
        out << e->name << "_hist_sum " << fmt_double(s.sum) << "\n";
        out << e->name << "_hist_count " << s.count << "\n";
        break;
      }
    }
  }
  return out.str();
}

}  // namespace stm
