// Progress watchdog: force-cancels queries whose engines stop making
// progress.
//
// Cooperative cancellation (core/cancel.hpp) only works while the engine
// keeps polling its token. If a worker deadlocks, livelocks or spins without
// reaching a poll point, the deadline never fires from the engine's side.
// The watchdog closes that gap from the outside: engines publish a monotonic
// progress counter on their CancelToken (CancelPoller heartbeats it at every
// poll stride and chunk boundary); a background thread samples each watched
// token and force-fails any whose counter has not advanced for `stall_ms`.
// The failure reason is kInternalError, which flows back through the
// engine's normal cancellation path — the stalled query unblocks itself the
// next time any of its workers polls.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "service/metrics.hpp"

namespace stm {

class Watchdog {
 public:
  /// Stalls of `stall_ms` or more trigger a kill; the token list is scanned
  /// every `poll_ms`. `stall_ms <= 0` disables the watchdog entirely (no
  /// thread is started). `kills` (optional) is bumped once per killed query.
  Watchdog(double stall_ms, double poll_ms, Counter* kills = nullptr);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Starts supervising `token` until unwatch() or a kill.
  void watch(std::shared_ptr<CancelToken> token);
  /// Stops supervising `token` (normal query completion). No-op when the
  /// token is unknown (e.g. already killed).
  void unwatch(const std::shared_ptr<CancelToken>& token);

  bool enabled() const { return enabled_; }
  /// Queries force-failed so far.
  std::uint64_t kills() const;

 private:
  struct Watched {
    std::shared_ptr<CancelToken> token;
    std::uint64_t last_progress = 0;
    double stalled_ms = 0.0;
  };

  void loop();

  const double stall_ms_;
  const double poll_ms_;
  Counter* kill_counter_;
  bool enabled_ = false;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Watched> watched_;
  std::uint64_t kills_ = 0;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace stm
