#include "pattern/plan.hpp"

#include <algorithm>
#include <map>

#include "pattern/matching_order.hpp"

namespace stm {

namespace {

/// The canonical operation chain of level l (see header).
std::vector<NeighborOp> build_chain(const Pattern& p, std::size_t level,
                                    Induced induced) {
  std::vector<std::size_t> nbrs, non_nbrs;
  for (std::size_t j = 0; j < level; ++j) {
    if (p.has_edge(j, level))
      nbrs.push_back(j);
    else
      non_nbrs.push_back(j);
  }
  STM_CHECK_MSG(!nbrs.empty(),
                "pattern is not in a connected matching order (level "
                    << level << ")");
  std::vector<NeighborOp> chain;
  chain.push_back({static_cast<std::uint8_t>(nbrs.front()),
                   SetOpKind::kIntersect});  // base: copy of N(v_base)
  std::vector<NeighborOp> rest;
  for (std::size_t i = 1; i < nbrs.size(); ++i)
    rest.push_back({static_cast<std::uint8_t>(nbrs[i]), SetOpKind::kIntersect});
  if (induced == Induced::kVertex) {
    for (std::size_t j : non_nbrs)
      rest.push_back({static_cast<std::uint8_t>(j), SetOpKind::kDifference});
  }
  std::sort(rest.begin(), rest.end(), [](const NeighborOp& a,
                                         const NeighborOp& b) {
    return a.vertex < b.vertex;
  });
  chain.insert(chain.end(), rest.begin(), rest.end());
  return chain;
}

}  // namespace

MatchingPlan::MatchingPlan(const Pattern& reordered, const PlanOptions& opts)
    : pattern_(reordered), opts_(opts) {
  const std::size_t k = pattern_.size();
  STM_CHECK_MSG(k >= 2, "patterns must have at least two vertices");
  STM_CHECK_MSG(pattern_.is_connected(), "pattern must be connected");
  // The identity order must itself be a valid (connected) matching order.
  std::vector<std::size_t> identity(k);
  for (std::size_t i = 0; i < k; ++i) identity[i] = i;
  STM_CHECK_MSG(is_connected_order(pattern_, identity),
                "plan requires a pattern in matching order; "
                "call reorder_for_matching first");

  // Exact label masks per level.
  std::array<std::uint64_t, kMaxPatternSize> exact{};
  for (std::size_t l = 0; l < k; ++l)
    exact[l] = pattern_.is_labeled() ? (1ULL << pattern_.label(l)) : ~0ULL;

  std::array<std::vector<NeighborOp>, kMaxPatternSize> chains;
  for (std::size_t l = 1; l < k; ++l)
    chains[l] = build_chain(pattern_, l, opts_.induced);

  if (opts_.code_motion) {
    // Merged label masks: mask(prefix) = union of the exact masks of every
    // level whose chain extends this prefix (paper Fig. 10b).
    auto prefix_mask = [&](const std::vector<NeighborOp>& prefix) {
      std::uint64_t mask = 0;
      for (std::size_t l = 1; l < k; ++l) {
        if (chains[l].size() < prefix.size()) continue;
        if (std::equal(prefix.begin(), prefix.end(), chains[l].begin()))
          mask |= exact[l];
      }
      STM_CHECK(mask != 0);
      return mask;
    };
    // Trie over chain prefixes; nodes deduplicated by
    // (dep, operand vertex, op kind, label mask).
    std::map<std::tuple<std::int16_t, std::uint8_t, std::uint8_t, std::uint64_t>,
             std::int16_t>
        dedup;
    auto intern = [&](std::int16_t dep, NeighborOp op, std::uint64_t mask,
                      bool candidate) {
      auto key = std::make_tuple(dep, op.vertex,
                                 static_cast<std::uint8_t>(op.kind), mask);
      auto it = dedup.find(key);
      if (it != dedup.end()) {
        if (candidate) nodes_[static_cast<std::size_t>(it->second)].is_candidate = true;
        return it->second;
      }
      SetNode node;
      node.dep = dep;
      node.op = op;
      // Earliest level at which both the new operand and the dep value are
      // available. A vertex-induced difference can reference a vertex smaller
      // than the chain base, in which case the node waits for its dep.
      node.mat_level = static_cast<std::uint8_t>(op.vertex + 1);
      if (dep >= 0)
        node.mat_level = std::max(
            node.mat_level, nodes_[static_cast<std::size_t>(dep)].mat_level);
      node.label_mask = mask;
      node.is_candidate = candidate;
      const auto id = static_cast<std::int16_t>(nodes_.size());
      nodes_.push_back(node);
      dedup.emplace(key, id);
      at_entry_[node.mat_level].push_back(id);
      return id;
    };
    for (std::size_t l = 1; l < k; ++l) {
      const auto& chain = chains[l];
      // Intermediate prefixes with merged masks.
      std::int16_t parent = -1;
      std::vector<NeighborOp> prefix;
      for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        prefix.push_back(chain[i]);
        parent = intern(parent, chain[i], prefix_mask(prefix), false);
      }
      // Final candidate set with the exact label mask. When the pattern is
      // unlabeled the masks coincide and the node is shared with the trie
      // (paper Fig. 9a); labeled finals are separated (paper Fig. 10a).
      candidate_[l] = intern(parent, chain.back(), exact[l], true);
    }
  } else {
    // Naive plan (paper Fig. 1 nested loop): every chain is rebuilt at its
    // consumer level; nothing is shared or lifted.
    for (std::size_t l = 1; l < k; ++l) {
      const auto& chain = chains[l];
      std::int16_t parent = -1;
      for (std::size_t i = 0; i < chain.size(); ++i) {
        SetNode node;
        node.dep = parent;
        node.op = chain[i];
        node.mat_level = static_cast<std::uint8_t>(l);
        const bool last = (i + 1 == chain.size());
        node.label_mask = last ? exact[l] : ~0ULL;
        node.is_candidate = last;
        parent = static_cast<std::int16_t>(nodes_.size());
        nodes_.push_back(node);
        at_entry_[l].push_back(parent);
      }
      candidate_[l] = parent;
    }
  }

  if (opts_.count_mode == CountMode::kUniqueSubgraphs) {
    constraints_ = symmetry_breaking_constraints(pattern_);
    for (const auto& c : constraints_) constraints_at_[c.larger].push_back(c.smaller);
  }
}

std::uint64_t MatchingPlan::exact_mask(std::size_t level) const {
  STM_CHECK(level < pattern_.size());
  return pattern_.is_labeled() ? (1ULL << pattern_.label(level)) : ~0ULL;
}

CompactEncoding MatchingPlan::compact_encoding() const {
  CompactEncoding enc;
  enc.row_ptr.assign(pattern_.size() + 1, 0);
  // Nodes grouped by mat_level, in at_entry_ order (which is dependency
  // order); remap ids accordingly.
  std::vector<std::int16_t> remap(nodes_.size(), -1);
  std::int16_t next = 0;
  for (std::size_t l = 0; l < pattern_.size(); ++l) {
    enc.row_ptr[l] = static_cast<std::uint8_t>(enc.set_ops.size());
    for (std::int16_t id : at_entry_[l]) {
      remap[static_cast<std::size_t>(id)] = next++;
      const SetNode& n = nodes_[static_cast<std::size_t>(id)];
      const std::uint8_t first_is_nbr = (n.dep < 0) ? 1 : 0;
      const std::uint8_t is_diff = (n.op.kind == SetOpKind::kDifference) ? 1 : 0;
      const std::uint8_t dep = n.dep < 0 ? 0
                                         : static_cast<std::uint8_t>(
                                               remap[static_cast<std::size_t>(n.dep)]);
      enc.set_ops.push_back({first_is_nbr, is_diff, dep});
    }
  }
  enc.row_ptr[pattern_.size()] = static_cast<std::uint8_t>(enc.set_ops.size());
  return enc;
}

std::vector<NeighborOp> MatchingPlan::chain(std::size_t level) const {
  STM_CHECK(level >= 1 && level < pattern_.size());
  return build_chain(pattern_, level, opts_.induced);
}

}  // namespace stm
