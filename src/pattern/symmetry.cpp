#include "pattern/symmetry.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "util/check.hpp"

namespace stm {

std::vector<Permutation> automorphisms(const Pattern& p) {
  const std::size_t n = p.size();
  Permutation perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<Permutation> autos;
  do {
    bool ok = true;
    for (std::size_t u = 0; ok && u < n; ++u) {
      if (p.is_labeled() && p.label(u) != p.label(perm[u])) {
        ok = false;
        break;
      }
      for (std::size_t v = u + 1; v < n; ++v) {
        if (p.has_edge(u, v) != p.has_edge(perm[u], perm[v])) {
          ok = false;
          break;
        }
      }
    }
    if (ok) autos.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  STM_CHECK(!autos.empty());  // identity is always present
  return autos;
}

std::vector<SymmetryConstraint> symmetry_breaking_constraints(
    const Pattern& p) {
  std::vector<Permutation> group = automorphisms(p);
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t v = 0; v < p.size(); ++v) {
    // Record v's nontrivial orbit under the current (pointwise) stabilizer of
    // 0..v-1, then descend to the stabilizer of v.
    std::vector<Permutation> stabilizer;
    for (const auto& sigma : group) {
      if (sigma[v] == v) {
        stabilizer.push_back(sigma);
      } else {
        // sigma fixes 0..v-1, so sigma[v] > v.
        STM_CHECK(sigma[v] > v);
        pairs.emplace(v, sigma[v]);
      }
    }
    group = std::move(stabilizer);
  }
  std::vector<SymmetryConstraint> out;
  out.reserve(pairs.size());
  for (auto [a, b] : pairs)
    out.push_back({static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)});
  return out;
}

}  // namespace stm
