#include "pattern/canonical.hpp"

#include <array>
#include <cstdint>

#include "util/check.hpp"

namespace stm {

namespace {

/// Per-position key of an ordering: the vertex's label and its adjacency
/// bits into the already-placed prefix. Orderings are compared as the
/// lexicographic sequence of these keys.
struct PosKey {
  std::uint8_t label = 0;
  std::uint8_t adj_bits = 0;

  auto operator<=>(const PosKey&) const = default;
};

class CanonicalSearch {
 public:
  explicit CanonicalSearch(const Pattern& p) : p_(p), n_(p.size()) {}

  std::vector<std::size_t> run() {
    STM_CHECK(n_ >= 1);
    extend(0, /*tight=*/true);
    return {best_perm_.begin(), best_perm_.begin() + n_};
  }

 private:
  PosKey key_for(std::size_t v, std::size_t pos) const {
    PosKey k;
    k.label = p_.is_labeled() ? static_cast<std::uint8_t>(p_.label(v)) : 0;
    for (std::size_t j = 0; j < pos; ++j)
      if (p_.has_edge(v, perm_[j])) k.adj_bits |= std::uint8_t(1u << j);
    return k;
  }

  bool better_than_best() const {
    for (std::size_t i = 0; i < n_; ++i) {
      if (enc_[i] < best_enc_[i]) return true;
      if (best_enc_[i] < enc_[i]) return false;
    }
    return false;
  }

  /// Depth-first over orderings. `tight` = the key prefix placed so far
  /// equals the best sequence's prefix (vacuously true before a first leaf
  /// exists); only tight branches can prune. The incumbent is only ever
  /// replaced by a descendant of every node on the DFS stack, so a true
  /// `tight` stays valid across replacements; a stale false merely skips
  /// pruning, and the full comparison at the leaf keeps the result exact.
  void extend(std::size_t pos, bool tight) {
    if (pos == n_) {
      if (!have_best_ || better_than_best()) {
        best_perm_ = perm_;
        best_enc_ = enc_;
        have_best_ = true;
      }
      return;
    }
    for (std::size_t v = 0; v < n_; ++v) {
      if (used_ & (1u << v)) continue;
      const PosKey k = key_for(v, pos);
      if (tight && have_best_ && best_enc_[pos] < k) continue;
      const bool child_tight =
          tight && (!have_best_ || k == best_enc_[pos]);
      perm_[pos] = v;
      enc_[pos] = k;
      used_ |= 1u << v;
      extend(pos + 1, child_tight);
      used_ &= ~(1u << v);
    }
  }

  const Pattern& p_;
  std::size_t n_;
  std::uint32_t used_ = 0;
  std::array<std::size_t, kMaxPatternSize> perm_{};
  std::array<PosKey, kMaxPatternSize> enc_{};
  std::array<std::size_t, kMaxPatternSize> best_perm_{};
  std::array<PosKey, kMaxPatternSize> best_enc_{};
  bool have_best_ = false;
};

}  // namespace

std::vector<std::size_t> canonical_permutation(const Pattern& p) {
  return CanonicalSearch(p).run();
}

std::string canonical_form(const Pattern& p) {
  if (p.size() == 0) return "";
  return p.relabeled(canonical_permutation(p)).to_string();
}

}  // namespace stm
