#include "pattern/queries.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace stm {

namespace {

const std::vector<std::string>& query_specs() {
  static const std::vector<std::string> specs = {
      // --- size 5 (q1..q8) ---
      "0-1,1-2,2-3,3-4",                          // q1: path P5
      "0-1,0-2,0-3,0-4,1-2",                      // q2: star + triangle
      "0-1,1-2,2-3,3-4,4-0",                      // q3: cycle C5
      "0-1,1-2,2-3,3-4,4-0,0-2",                  // q4: house (C5 + chord)
      "0-1,1-2,2-0,2-3,3-4",                      // q5: tadpole (triangle+tail)
      "0-1,0-2,0-3,1-2,1-3,2-3,3-4",              // q6: K4 + pendant
      "0-1,0-2,0-3,0-4,1-2,1-3,1-4,2-3,2-4",      // q7: K5 minus edge (3-4)
      "0-1,0-2,0-3,0-4,1-2,1-3,1-4,2-3,2-4,3-4",  // q8: K5
      // --- size 6 (q9..q16) ---
      "0-1,1-2,2-3,3-4,4-5",                      // q9: path P6
      "0-1,1-2,2-3,3-4,4-5,5-0",                  // q10: cycle C6
      "0-1,0-2,0-3,0-4,0-5,1-2",                  // q11: star + edge
      "0-1,0-2,1-2,0-3,0-4,3-4,4-5",              // q12: bowtie + tail
      "0-1,1-2,2-0,3-4,4-5,5-3,0-3,1-4,2-5",      // q13: prism (C3 x K2)
      "0-1,1-2,2-3,3-4,4-5,5-0,0-3,1-4",          // q14: C6 + two chords
      "0-1,0-2,0-3,0-4,0-5,1-2,1-3,1-4,1-5,2-3,2-4,2-5,3-4,3-5",  // q15: K6-e
      "0-1,0-2,0-3,0-4,0-5,1-2,1-3,1-4,1-5,2-3,2-4,2-5,3-4,3-5,4-5",  // q16: K6
      // --- size 7 (q17..q24) ---
      "0-1,1-2,2-3,3-4,4-5,5-6",                  // q17: path P7
      "0-1,1-2,2-3,3-4,4-5,5-6,6-0",              // q18: cycle C7
      "0-1,0-2,0-3,0-4,0-5,0-6,1-2",              // q19: star + edge
      "0-1,0-2,1-3,1-4,2-5,2-6",                  // q20: binary tree
      "0-1,1-2,2-3,3-4,4-5,5-6,6-0,0-3,0-4",      // q21: C7 + two chords
      "0-1,0-2,0-3,1-2,1-3,2-3,3-4,3-5,3-6,4-5,4-6,5-6",  // q22: two K4 sharing vertex 3
      "0-1,0-2,0-3,0-4,0-5,0-6,1-2,1-3,1-4,1-5,1-6,2-3,2-4,2-5,2-6,"
      "3-4,3-5,3-6,4-5,4-6",                      // q23: K7 minus edge (5-6)
      "0-1,0-2,0-3,0-4,0-5,0-6,1-2,1-3,1-4,1-5,1-6,2-3,2-4,2-5,2-6,"
      "3-4,3-5,3-6,4-5,4-6,5-6",                  // q24: K7
  };
  return specs;
}

}  // namespace

int num_queries() { return static_cast<int>(query_specs().size()); }

Pattern query(int index) {
  STM_CHECK_MSG(index >= 1 && index <= num_queries(),
                "query index must be in [1, " << num_queries() << "]");
  return Pattern::parse(query_specs()[static_cast<std::size_t>(index - 1)]);
}

std::string query_name(int index) { return "q" + std::to_string(index); }

std::vector<int> queries_of_size(std::size_t size) {
  std::vector<int> out;
  for (int i = 1; i <= num_queries(); ++i)
    if (query(i).size() == size) out.push_back(i);
  return out;
}

Pattern labeled_query(int index, std::size_t num_labels) {
  STM_CHECK(num_labels >= 1 && num_labels <= kMaxLabels);
  Pattern p = query(index);
  Rng rng(0x4feedULL * 2654435761ULL + static_cast<std::uint64_t>(index));
  std::vector<Label> labels(p.size());
  for (auto& l : labels) l = static_cast<Label>(rng.next_below(num_labels));
  return p.with_labels(std::move(labels));
}

}  // namespace stm
