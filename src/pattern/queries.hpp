// The 24 evaluation queries (paper §VIII-A).
//
// q1-q8 are size-5 motifs, q9-q16 size-6, q17-q24 size-7; q8, q16 and q24
// are the cliques K5, K6, K7 and q7, q15, q23 the near-cliques (clique minus
// one edge), covering the undirected patterns behind cuTS's 33 directed
// queries. The remaining queries are fixed "randomly selected" motifs of the
// respective size, spanning sparse (paths, stars, trees), cyclic, and dense
// shapes.
#pragma once

#include <string>
#include <vector>

#include "pattern/pattern.hpp"

namespace stm {

/// Query q<i>, 1-based (1..24). All queries are connected.
Pattern query(int index);

/// Number of evaluation queries (24).
int num_queries();

/// "q7" style name for table output.
std::string query_name(int index);

/// Indices of queries of the given pattern size (5, 6 or 7).
std::vector<int> queries_of_size(std::size_t size);

/// Labeled variant used in the labeled experiments: deterministic labels in
/// [0, num_labels) assigned per query (seeded by the query index, as the
/// paper assigns random labels to query graphs).
Pattern labeled_query(int index, std::size_t num_labels = 10);

}  // namespace stm
