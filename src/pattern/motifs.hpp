// Motif enumeration: all connected graphs of a given size up to isomorphism.
//
// Backs the motif-census application (paper §I names motif counting as a key
// client of pattern matching) and the "randomly selected size-5/6/7 motifs"
// query-set construction of the evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "pattern/pattern.hpp"

namespace stm {

/// All connected motifs with `size` vertices (size in [2, 6]; 6 already has
/// 112 classes), each in a canonical vertex order, deterministically sorted.
std::vector<Pattern> connected_motifs(std::size_t size);

/// A canonical 64-bit form of the pattern's structure: the minimum
/// upper-triangle adjacency bitstring over all vertex permutations.
/// Two unlabeled patterns are isomorphic iff their canonical forms match.
std::uint64_t canonical_form(const Pattern& p);

/// True iff the unlabeled structures of a and b are isomorphic.
bool isomorphic(const Pattern& a, const Pattern& b);

}  // namespace stm
