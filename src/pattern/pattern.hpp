// Query patterns.
//
// Patterns are tiny (the paper evaluates 5-7 vertices), so adjacency is a
// per-vertex bitmask row. Vertices may carry labels for labeled matching.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "util/check.hpp"

namespace stm {

/// A connected query pattern with at most kMaxPatternSize vertices.
class Pattern {
 public:
  Pattern() = default;

  /// From an undirected edge list over vertices [0, n).
  Pattern(std::size_t n, const std::vector<std::pair<int, int>>& edges,
          std::vector<Label> labels = {});

  /// Parses "0-1,1-2,2-0" style edge lists.
  static Pattern parse(const std::string& edge_list);

  std::size_t size() const { return n_; }
  std::size_t num_edges() const;

  bool has_edge(std::size_t u, std::size_t v) const {
    STM_CHECK(u < n_ && v < n_);
    return (adj_[u] >> v) & 1u;
  }

  /// Bitmask of neighbors of u.
  std::uint8_t adjacency_row(std::size_t u) const {
    STM_CHECK(u < n_);
    return adj_[u];
  }

  std::size_t degree(std::size_t u) const {
    STM_CHECK(u < n_);
    return static_cast<std::size_t>(__builtin_popcount(adj_[u]));
  }

  bool is_labeled() const { return labeled_; }
  Label label(std::size_t u) const {
    STM_CHECK(u < n_);
    return labels_[u];
  }

  /// Returns a copy with vertex labels attached (values < kMaxLabels).
  Pattern with_labels(std::vector<Label> labels) const;

  bool is_connected() const;
  bool is_clique() const;

  /// Returns the pattern relabeled by `perm`: new vertex i = old vertex
  /// perm[i].
  Pattern relabeled(const std::vector<std::size_t>& perm) const;

  /// The undirected edge list (u < v, sorted) — the inverse of the edge-list
  /// constructor, used by the conformance harness to mutate and serialize
  /// patterns.
  std::vector<std::pair<int, int>> edges() const;

  /// The labels as a vector (empty when unlabeled).
  std::vector<Label> label_vector() const;

  /// "0-1,1-2,..." canonical string (sorted edges), with ":labels" suffix
  /// when labeled.
  std::string to_string() const;

  bool operator==(const Pattern& o) const {
    return n_ == o.n_ && adj_ == o.adj_ && labeled_ == o.labeled_ &&
           (!labeled_ || labels_ == o.labels_);
  }

 private:
  std::size_t n_ = 0;
  std::array<std::uint8_t, kMaxPatternSize> adj_{};
  std::array<Label, kMaxPatternSize> labels_{};
  bool labeled_ = false;
};

}  // namespace stm
