#include "pattern/pattern.hpp"

#include <algorithm>
#include <sstream>

namespace stm {

Pattern::Pattern(std::size_t n, const std::vector<std::pair<int, int>>& edges,
                 std::vector<Label> labels)
    : n_(n) {
  STM_CHECK_MSG(n >= 1 && n <= kMaxPatternSize,
                "pattern size must be in [1, " << kMaxPatternSize << "]");
  for (auto [u, v] : edges) {
    STM_CHECK_MSG(u >= 0 && v >= 0 && static_cast<std::size_t>(u) < n &&
                      static_cast<std::size_t>(v) < n,
                  "pattern edge (" << u << "," << v << ") out of range");
    STM_CHECK_MSG(u != v, "pattern self-loops are not allowed");
    adj_[static_cast<std::size_t>(u)] |= static_cast<std::uint8_t>(1u << v);
    adj_[static_cast<std::size_t>(v)] |= static_cast<std::uint8_t>(1u << u);
  }
  if (!labels.empty()) {
    STM_CHECK(labels.size() == n);
    for (std::size_t i = 0; i < n; ++i) {
      STM_CHECK(labels[i] < kMaxLabels);
      labels_[i] = labels[i];
    }
    labeled_ = true;
  }
}

namespace {

/// Strict parser for one endpoint of a 'u-v' token. std::stoi would throw
/// raw std::invalid_argument / std::out_of_range (not check_error) on junk
/// like "a-b", "1-" or absurdly long digit runs; callers expect every parse
/// failure as kInvalidArgument.
int parse_pattern_vertex(const std::string& text, const std::string& token) {
  STM_CHECK_MSG(!text.empty(),
                "pattern edge '" << token << "' must be 'u-v'");
  int value = 0;
  for (char c : text) {
    STM_CHECK_MSG(c >= '0' && c <= '9', "pattern vertex '"
                                            << text << "' in edge '" << token
                                            << "' is not a number");
    value = value * 10 + (c - '0');
    STM_CHECK_MSG(static_cast<std::size_t>(value) < kMaxPatternSize,
                  "pattern vertex " << text << " out of range [0, "
                                    << kMaxPatternSize << ")");
  }
  return value;
}

}  // namespace

Pattern Pattern::parse(const std::string& edge_list) {
  std::vector<std::pair<int, int>> edges;
  int max_vertex = -1;
  std::istringstream is(edge_list);
  std::string token;
  while (std::getline(is, token, ',')) {
    auto dash = token.find('-');
    STM_CHECK_MSG(dash != std::string::npos,
                  "pattern edge '" << token << "' must be 'u-v'");
    int u = parse_pattern_vertex(token.substr(0, dash), token);
    int v = parse_pattern_vertex(token.substr(dash + 1), token);
    edges.emplace_back(u, v);
    max_vertex = std::max({max_vertex, u, v});
  }
  STM_CHECK_MSG(max_vertex >= 0, "pattern must have at least one edge");
  return Pattern(static_cast<std::size_t>(max_vertex) + 1, edges);
}

std::size_t Pattern::num_edges() const {
  std::size_t total = 0;
  for (std::size_t u = 0; u < n_; ++u) total += degree(u);
  return total / 2;
}

Pattern Pattern::with_labels(std::vector<Label> labels) const {
  Pattern p = *this;
  STM_CHECK(labels.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) {
    STM_CHECK(labels[i] < kMaxLabels);
    p.labels_[i] = labels[i];
  }
  p.labeled_ = true;
  return p;
}

bool Pattern::is_connected() const {
  if (n_ == 0) return false;
  std::uint8_t visited = 1;
  for (;;) {
    std::uint8_t next = visited;
    for (std::size_t u = 0; u < n_; ++u)
      if ((visited >> u) & 1u) next |= adj_[u];
    if (next == visited) break;
    visited = next;
  }
  return visited == static_cast<std::uint8_t>((1u << n_) - 1u);
}

bool Pattern::is_clique() const {
  return num_edges() == n_ * (n_ - 1) / 2;
}

Pattern Pattern::relabeled(const std::vector<std::size_t>& perm) const {
  STM_CHECK(perm.size() == n_);
  // inverse[old] = new position of old vertex.
  std::vector<std::size_t> inverse(n_, n_);
  for (std::size_t i = 0; i < n_; ++i) {
    STM_CHECK(perm[i] < n_);
    STM_CHECK_MSG(inverse[perm[i]] == n_, "perm must be a permutation");
    inverse[perm[i]] = i;
  }
  std::vector<std::pair<int, int>> edges;
  for (std::size_t u = 0; u < n_; ++u)
    for (std::size_t v = u + 1; v < n_; ++v)
      if (has_edge(u, v))
        edges.emplace_back(static_cast<int>(inverse[u]),
                           static_cast<int>(inverse[v]));
  Pattern p(n_, edges);
  if (labeled_) {
    std::vector<Label> labels(n_);
    for (std::size_t i = 0; i < n_; ++i) labels[i] = labels_[perm[i]];
    p = p.with_labels(std::move(labels));
  }
  return p;
}

std::vector<std::pair<int, int>> Pattern::edges() const {
  std::vector<std::pair<int, int>> result;
  for (std::size_t u = 0; u < n_; ++u)
    for (std::size_t v = u + 1; v < n_; ++v)
      if (has_edge(u, v))
        result.emplace_back(static_cast<int>(u), static_cast<int>(v));
  return result;
}

std::vector<Label> Pattern::label_vector() const {
  if (!labeled_) return {};
  return {labels_.begin(), labels_.begin() + n_};
}

std::string Pattern::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t u = 0; u < n_; ++u) {
    for (std::size_t v = u + 1; v < n_; ++v) {
      if (has_edge(u, v)) {
        if (!first) os << ',';
        os << u << '-' << v;
        first = false;
      }
    }
  }
  if (labeled_) {
    os << ':';
    for (std::size_t i = 0; i < n_; ++i) {
      if (i) os << '.';
      os << static_cast<int>(labels_[i]);
    }
  }
  return os.str();
}

}  // namespace stm
