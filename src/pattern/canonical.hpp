// Canonical pattern form for plan-cache keys.
//
// Two patterns that differ only in vertex numbering compile to plans with
// identical match counts, so the service-layer plan cache keys entries by a
// renumbering-invariant canonical string: the lexicographically smallest
// (label, adjacency-prefix) encoding over all vertex orderings, serialized
// through Pattern::to_string(). Patterns have at most kMaxPatternSize (8)
// vertices, so a pruned branch-and-bound over orderings is microseconds.
#pragma once

#include <string>
#include <vector>

#include "pattern/pattern.hpp"

namespace stm {

/// The canonical relabeling permutation of `p` (new vertex i = old vertex
/// perm[i], as consumed by Pattern::relabeled).
std::vector<std::size_t> canonical_permutation(const Pattern& p);

/// Canonical edge-list string of `p`: equal for isomorphic patterns
/// (including label-preserving isomorphism for labeled patterns), distinct
/// otherwise.
std::string canonical_form(const Pattern& p);

}  // namespace stm
