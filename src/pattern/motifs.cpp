#include "pattern/motifs.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/check.hpp"

namespace stm {

namespace {

/// Upper-triangle adjacency bits of p under the permutation `perm`
/// (new vertex i = old perm[i]); bit index runs over pairs (i, j), i < j.
std::uint64_t triangle_bits(const Pattern& p,
                            const std::vector<std::size_t>& perm) {
  std::uint64_t bits = 0;
  int bit = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = i + 1; j < p.size(); ++j, ++bit) {
      if (p.has_edge(perm[i], perm[j])) bits |= (1ULL << bit);
    }
  }
  return bits;
}

}  // namespace

std::uint64_t canonical_form(const Pattern& p) {
  std::vector<std::size_t> perm(p.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::uint64_t best = ~0ULL;
  do {
    best = std::min(best, triangle_bits(p, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

bool isomorphic(const Pattern& a, const Pattern& b) {
  if (a.size() != b.size() || a.num_edges() != b.num_edges()) return false;
  return canonical_form(a) == canonical_form(b);
}

std::vector<Pattern> connected_motifs(std::size_t size) {
  STM_CHECK_MSG(size >= 2 && size <= 6,
                "connected_motifs supports sizes 2..6 (got " << size << ")");
  const std::size_t num_pairs = size * (size - 1) / 2;
  std::vector<std::pair<int, int>> pairs;
  for (std::size_t i = 0; i < size; ++i)
    for (std::size_t j = i + 1; j < size; ++j)
      pairs.emplace_back(static_cast<int>(i), static_cast<int>(j));

  std::map<std::uint64_t, Pattern> by_canon;
  for (std::uint64_t mask = 0; mask < (1ULL << num_pairs); ++mask) {
    if (__builtin_popcountll(mask) + 1 <
        static_cast<int>(size))  // too few edges to connect
      continue;
    std::vector<std::pair<int, int>> edges;
    for (std::size_t b = 0; b < num_pairs; ++b)
      if ((mask >> b) & 1ULL) edges.push_back(pairs[b]);
    Pattern p(size, edges);
    if (!p.is_connected()) continue;
    by_canon.try_emplace(canonical_form(p), p);
  }
  std::vector<Pattern> out;
  out.reserve(by_canon.size());
  // Ordered by (edge count, canonical bits): sparse motifs first.
  std::vector<std::pair<std::pair<std::size_t, std::uint64_t>, Pattern>>
      keyed;
  for (auto& [canon, p] : by_canon)
    keyed.push_back({{p.num_edges(), canon}, p});
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [key, p] : keyed) out.push_back(std::move(p));
  return out;
}

}  // namespace stm
