// Matching plans: per-level candidate-set expressions, loop-invariant code
// motion (paper §VII, Fig. 9), and merged multi-label intermediate sets
// (paper Fig. 10b).
//
// A plan is compiled from a pattern that is already in matching order
// (see reorder_for_matching). For every level l >= 1 the candidate set is
//
//   C_l =  ∩_{j < l, (j,l) ∈ E(Q)} N(v_j)   [ \ ∪_{j < l, (j,l) ∉ E(Q)} N(v_j) ]
//
// (the bracketed differences only for vertex-induced matching), canonicalized
// as an operation chain that starts at the smallest earlier neighbor and
// applies the remaining operands in ascending vertex order. With code motion
// enabled, chain prefixes are deduplicated in a trie and every set is
// materialized at the earliest level at which its newest operand is matched;
// without it, every chain is rebuilt from scratch at its consumer level
// (the nested loop of paper Fig. 1).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "pattern/pattern.hpp"
#include "pattern/symmetry.hpp"
#include "setops/set_ops.hpp"

namespace stm {

/// Matching semantics (paper §II-A).
enum class Induced : std::uint8_t {
  kEdge,    // edge-induced: pattern edges must exist in the data graph
  kVertex,  // vertex-induced: pattern non-edges must be absent as well
};

/// What the result count means.
enum class CountMode : std::uint8_t {
  kEmbeddings,       // injective homomorphisms (no symmetry breaking)
  kUniqueSubgraphs,  // each subgraph once (symmetry-breaking constraints)
};

struct PlanOptions {
  Induced induced = Induced::kEdge;
  bool code_motion = true;
  CountMode count_mode = CountMode::kEmbeddings;
  /// Pins the SIMD kernel table the host engines use for this plan's set
  /// operations (kAuto = follow the process-wide dispatch). Bit-exact by
  /// contract (setops/simd.hpp) — a testing knob, not a semantics switch.
  simd::IsaChoice forced_isa = simd::IsaChoice::kAuto;
};

/// One operand of a candidate chain: N(v_vertex) combined with `kind`.
struct NeighborOp {
  std::uint8_t vertex = 0;
  SetOpKind kind = SetOpKind::kIntersect;
  bool operator==(const NeighborOp&) const = default;
};

/// A set in the dependence graph (paper Fig. 9a). The set's value is
///   dep == -1 :  N(v_op.vertex)                  (filtered copy)
///   dep >= 0  :  value(dep)  op.kind  N(v_op.vertex)
/// restricted to vertices whose label bit is in label_mask.
struct SetNode {
  std::int16_t dep = -1;
  NeighborOp op;
  /// Level at whose entry the node is materialized (i.e. right after
  /// v_{mat_level-1} is chosen). With code motion this is op.vertex + 1; the
  /// naive plan recomputes everything at the consumer level.
  std::uint8_t mat_level = 0;
  /// Merged multi-label output filter (all-ones when unlabeled).
  std::uint64_t label_mask = ~0ULL;
  bool is_candidate = false;
};

/// Compact dependence-graph encoding (paper Fig. 9b): one triple per set.
struct CompactEncoding {
  /// row_ptr[l]..row_ptr[l+1] delimit the sets materialized at entry of
  /// level l (size = pattern size + 1).
  std::vector<std::uint8_t> row_ptr;
  /// {first_operand_is_neighbor, is_difference, dep_index} per set.
  std::vector<std::array<std::uint8_t, 3>> set_ops;
};

/// The compiled execution plan shared by all engines.
class MatchingPlan {
 public:
  /// `reordered` must already be in matching order (identity order) and
  /// connected.
  MatchingPlan(const Pattern& reordered, const PlanOptions& opts);

  const Pattern& pattern() const { return pattern_; }
  std::size_t size() const { return pattern_.size(); }
  const PlanOptions& options() const { return opts_; }

  const std::vector<SetNode>& nodes() const { return nodes_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Node ids to materialize (in dependency order) when entering `level`.
  const std::vector<std::int16_t>& nodes_at_entry(std::size_t level) const {
    STM_CHECK(level >= 1 && level < pattern_.size());
    return at_entry_[level];
  }

  /// The candidate-set node of `level` (level >= 1; level 0 iterates V).
  std::int16_t candidate_node(std::size_t level) const {
    STM_CHECK(level >= 1 && level < pattern_.size());
    return candidate_[level];
  }

  /// Exact label of query vertex `level` as a one-bit mask (all-ones when
  /// unlabeled); used for level-0 filtering.
  std::uint64_t exact_mask(std::size_t level) const;

  /// Symmetry constraints (empty in embeddings mode).
  const std::vector<SymmetryConstraint>& constraints() const {
    return constraints_;
  }
  /// The `smaller` sides of constraints whose larger side is `level`; checked
  /// when v_level is chosen.
  const std::vector<std::uint8_t>& constraints_at(std::size_t level) const {
    STM_CHECK(level < pattern_.size());
    return constraints_at_[level];
  }

  /// Paper Fig. 9b encoding of the dependence graph.
  CompactEncoding compact_encoding() const;

  /// The canonical operation chain of a level (for tests/inspection).
  std::vector<NeighborOp> chain(std::size_t level) const;

 private:
  Pattern pattern_;
  PlanOptions opts_;
  std::vector<SetNode> nodes_;
  std::array<std::vector<std::int16_t>, kMaxPatternSize> at_entry_;
  std::array<std::int16_t, kMaxPatternSize> candidate_{};
  std::vector<SymmetryConstraint> constraints_;
  std::array<std::vector<std::uint8_t>, kMaxPatternSize> constraints_at_;
};

}  // namespace stm
