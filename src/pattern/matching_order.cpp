#include "pattern/matching_order.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stm {

std::vector<std::size_t> matching_order(const Pattern& p) {
  const std::size_t n = p.size();
  STM_CHECK_MSG(p.is_connected(), "matching order requires a connected pattern");
  std::vector<std::size_t> order;
  order.reserve(n);
  std::uint8_t chosen = 0;

  // Seed: max degree, ties by smallest id (deterministic).
  std::size_t seed = 0;
  for (std::size_t v = 1; v < n; ++v)
    if (p.degree(v) > p.degree(seed)) seed = v;
  order.push_back(seed);
  chosen |= static_cast<std::uint8_t>(1u << seed);

  while (order.size() < n) {
    std::size_t best = n;
    std::size_t best_conn = 0, best_deg = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if ((chosen >> v) & 1u) continue;
      const auto conn = static_cast<std::size_t>(
          __builtin_popcount(p.adjacency_row(v) & chosen));
      if (conn == 0) continue;  // keep the order connected
      const std::size_t deg = p.degree(v);
      if (best == n || conn > best_conn ||
          (conn == best_conn && deg > best_deg)) {
        best = v;
        best_conn = conn;
        best_deg = deg;
      }
    }
    STM_CHECK(best < n);
    order.push_back(best);
    chosen |= static_cast<std::uint8_t>(1u << best);
  }
  return order;
}

bool is_connected_order(const Pattern& p,
                        const std::vector<std::size_t>& order) {
  if (order.size() != p.size()) return false;
  std::uint8_t seen = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto v = order[i];
    if (v >= p.size()) return false;
    if (i > 0 && (p.adjacency_row(v) & seen) == 0) return false;
    seen |= static_cast<std::uint8_t>(1u << v);
  }
  return true;
}

Pattern reorder_for_matching(const Pattern& p) {
  return p.relabeled(matching_order(p));
}

}  // namespace stm
