// Static matching-order generation (Algorithm 1 line 1).
//
// STMatch adopts Dryadic's static matching order; this module implements the
// same class of order: connected (each vertex adjacent to at least one
// earlier vertex), seeded at a densest vertex and greedily extended by
// connectivity to the prefix, which is what prunes the exploration space.
#pragma once

#include <vector>

#include "pattern/pattern.hpp"

namespace stm {

/// A permutation of the pattern vertices: order[i] = original vertex matched
/// at step i. Guaranteed connected for connected patterns.
std::vector<std::size_t> matching_order(const Pattern& p);

/// True iff each position >= 1 is adjacent to an earlier position.
bool is_connected_order(const Pattern& p, const std::vector<std::size_t>& order);

/// Pattern relabeled so that its matching order is the identity; the engines
/// all operate on reordered patterns.
Pattern reorder_for_matching(const Pattern& p);

}  // namespace stm
