// Pattern automorphisms and symmetry-breaking constraints.
//
// Embedding counts overcount unique subgraphs by |Aut(Q)|. The
// stabilizer-chain scheme (GraphZero / Dryadic style) turns the automorphism
// group into a set of `map[a] < map[b]` order constraints under which each
// unique subgraph is enumerated exactly once.
#pragma once

#include <cstdint>
#include <vector>

#include "pattern/pattern.hpp"

namespace stm {

/// A vertex permutation of the pattern (perm[v] = image of v).
using Permutation = std::vector<std::size_t>;

/// All automorphisms of p (edge- and label-preserving). Always contains the
/// identity. Pattern sizes are <= 8, so brute force over k! is cheap.
std::vector<Permutation> automorphisms(const Pattern& p);

/// An order constraint: the data vertex matched to `smaller` must have a
/// smaller id than the one matched to `larger`; `smaller < larger` always
/// holds, so the constraint can be checked as soon as `larger` is matched.
struct SymmetryConstraint {
  std::uint8_t smaller = 0;
  std::uint8_t larger = 0;
  bool operator==(const SymmetryConstraint&) const = default;
};

/// Stabilizer-chain symmetry breaking: under the returned constraints the
/// number of valid embeddings equals embeddings / |Aut(Q)| (each unique
/// subgraph counted once).
std::vector<SymmetryConstraint> symmetry_breaking_constraints(const Pattern& p);

}  // namespace stm
