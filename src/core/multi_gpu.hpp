// Multi-device execution (paper Fig. 11).
//
// The paper runs on multiple GPUs "by duplicating the input graph and
// dividing the outermost loop iterations across GPUs". Each simulated device
// runs the full engine over a contiguous slice of V; the multi-device
// makespan is the slowest device (they run concurrently).
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"

namespace stm {

struct MultiGpuResult {
  std::uint64_t count = 0;
  /// max over devices (concurrent execution).
  double sim_ms = 0.0;
  std::vector<MatchResult> per_device;
};

/// Runs `plan` over `num_devices` simulated devices, dividing the outer loop
/// into contiguous slices of V.
MultiGpuResult stmatch_match_multi_gpu(const Graph& g, const MatchingPlan& plan,
                                       std::size_t num_devices,
                                       const EngineConfig& cfg = {});

}  // namespace stm
