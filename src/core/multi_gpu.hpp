// Multi-device execution (paper Fig. 11).
//
// The paper runs on multiple GPUs "by duplicating the input graph and
// dividing the outermost loop iterations across GPUs". Each simulated device
// runs the full engine over a slice of V; the multi-device makespan is the
// slowest device (they run concurrently).
//
// Fault tolerance: because a device's unit of work is just its outer-loop
// vertex slice, a whole-device failure (FaultSite::kDeviceFail, or an inner
// run that exhausts its own recovery budget) discards that device's partial
// count and re-runs the slice — bounded by FaultConfig::max_unit_attempts —
// leaving the aggregate count exact. This is the recovery cheapness the
// paper's outer-loop partitioning buys over systems with bulk materialized
// intermediate state.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"

namespace stm {

struct MultiGpuResult {
  std::uint64_t count = 0;
  /// max over devices (concurrent execution); re-runs of a failed slice
  /// serialize on that device and extend its makespan.
  double sim_ms = 0.0;
  std::vector<MatchResult> per_device;
  /// kOk, or kInternalError when a slice exhausted its retry budget (the
  /// count is then unreliable and the caller should fall back).
  QueryStatus status = QueryStatus::kOk;
  /// Whole-device failures observed (injected or propagated from inner runs).
  std::uint64_t device_faults = 0;
  /// Failed slices that were re-run to completion.
  std::uint64_t slices_recovered = 0;
};

/// Runs `plan` over `num_devices` simulated devices, dividing the outer loop
/// into interleaved slices of V. `cfg.fault` drives both the per-device
/// engine chaos and the kDeviceFail site handled here. A facade over
/// dist::run_replicated with an ownership-only interleaved partition, so the
/// slice/recovery semantics are shared with the sharded subsystem.
MultiGpuResult stmatch_match_multi_gpu(const Graph& g, const MatchingPlan& plan,
                                       std::size_t num_devices,
                                       const EngineConfig& cfg = {});

}  // namespace stm
