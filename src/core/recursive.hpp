// Sequential recursive plan executor.
//
// A direct recursive rendering of Algorithm 1 driven by the same
// MatchingPlan as the stack engine (candidate chains, code motion, label
// masks, symmetry constraints). It backs three consumers:
//   * the host-parallel engine (real std::thread execution),
//   * the Dryadic-style CPU baseline (scalar cost accounting),
//   * the per-level workload profile behind the cuTS/GSI models.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/cancel.hpp"
#include "graph/view.hpp"
#include "pattern/plan.hpp"

namespace stm {

/// Scalar work counters (one unit ~ one element touched by a set operation).
struct RecursiveCounters {
  /// Elements processed by set operations/copies (merge cost |a|+|b|).
  std::uint64_t scalar_ops = 0;
  /// Set materializations performed.
  std::uint64_t sets_built = 0;
  /// Per-level statistics for the subgraph-centric models:
  /// partials[l] = valid partial embeddings of length l+1;
  /// extension_work[l] = scalar ops spent extending to level l.
  std::array<std::uint64_t, kMaxPatternSize> partials{};
  std::array<std::uint64_t, kMaxPatternSize> extension_work{};

  RecursiveCounters& operator+=(const RecursiveCounters& o) {
    scalar_ops += o.scalar_ops;
    sets_built += o.sets_built;
    for (std::size_t i = 0; i < kMaxPatternSize; ++i) {
      partials[i] += o.partials[i];
      extension_work[i] += o.extension_work[i];
    }
    return *this;
  }
};

/// Executes the plan over outer-loop vertices [v_begin, v_end).
/// Counters may be null. A non-null `cancel` token is polled inside the
/// enumeration; when it fires the partial count found so far is returned
/// (the caller inspects the token to distinguish completion from
/// interruption).
std::uint64_t recursive_count_range(GraphView g, const MatchingPlan& plan,
                                    VertexId v_begin, VertexId v_end,
                                    RecursiveCounters* counters = nullptr,
                                    const CancelToken* cancel = nullptr);

/// Callback receiving one embedding: mapping[i] = data vertex matched to
/// query vertex i (of the reordered pattern). Return false to stop the
/// enumeration early.
using EmbeddingVisitor = std::function<bool(const std::vector<VertexId>&)>;

/// Like recursive_count_range but invokes `visit` per embedding; stops early
/// when the visitor returns false. Returns the number of embeddings visited.
/// Counters and cancel behave as in recursive_count_range; when the token
/// fires, the embeddings already visited form a valid prefix of the full
/// DFS-order enumeration.
std::uint64_t recursive_enumerate_range(GraphView g, const MatchingPlan& plan,
                                        VertexId v_begin, VertexId v_end,
                                        const EmbeddingVisitor& visit,
                                        RecursiveCounters* counters = nullptr,
                                        const CancelToken* cancel = nullptr);

/// Executes the plan with levels 0 and 1 pre-matched to (v0, v1): the
/// edge-based work decomposition used by Dryadic-style CPU systems.
/// (v0, v1) must satisfy the level-0/1 filters; returns the match count
/// under that prefix.
std::uint64_t recursive_count_seed(GraphView g, const MatchingPlan& plan,
                                   VertexId v0, VertexId v1,
                                   RecursiveCounters* counters = nullptr);

/// Seed-anchored enumeration: like recursive_count_seed but invokes `visit`
/// per embedding (DFS order under the fixed (v0, v1) prefix). Backs the
/// standing-query delta streams, which anchor one enumeration per delta
/// edge.
std::uint64_t recursive_enumerate_seed(GraphView g, const MatchingPlan& plan,
                                       VertexId v0, VertexId v1,
                                       const EmbeddingVisitor& visit,
                                       RecursiveCounters* counters = nullptr);

/// Enumerates the level-0/1 seed pairs of the plan (the "edges" Dryadic
/// distributes). For every valid v0, every valid v1 from level 1's candidate
/// set.
std::vector<std::pair<VertexId, VertexId>> enumerate_seeds(
    GraphView g, const MatchingPlan& plan);

}  // namespace stm
