// Cooperative cancellation and deadlines for engine runs.
//
// A CancelToken is shared between the issuer (service dispatcher, signal
// handler, test) and the engine workers. Engines poll it at backtracking
// steps; polling is two relaxed atomic loads on the fast path, with the
// steady_clock read amortized over kPollStride polls, so tokens are cheap
// enough to check inside the enumeration loop.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "core/query_stats.hpp"

namespace stm {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Clock reads are amortized: a poll only consults steady_clock every
  /// kPollStride calls (per polling thread; see Poller below).
  static constexpr std::uint32_t kPollStride = 256;

  CancelToken() = default;

  /// Arms the deadline `budget_ms` from now. Call before handing the token
  /// to an engine.
  void set_deadline_ms(double budget_ms) {
    deadline_ns_.store(
        (Clock::now().time_since_epoch() +
         std::chrono::nanoseconds(static_cast<std::int64_t>(budget_ms * 1e6)))
            .count(),
        std::memory_order_relaxed);
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Explicit cancellation (e.g. client disconnect, shutdown).
  void cancel() { fail(QueryStatus::kCancelled); }

  /// Force-fails the token with an explicit terminal reason (e.g. the
  /// progress watchdog fires kInternalError on a stalled query). The first
  /// recorded reason wins; engines observe it through status().
  void fail(QueryStatus reason) {
    std::uint8_t expected = 0;
    reason_.compare_exchange_strong(expected,
                                    static_cast<std::uint8_t>(reason),
                                    std::memory_order_acq_rel);
    cancelled_.store(true, std::memory_order_release);
  }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Monotonic liveness counter published by the engines (bumped at chunk
  /// completions and poll strides). The watchdog samples it; a token whose
  /// progress stops advancing while its query runs is presumed hung.
  /// Const (and progress_ mutable): engines poll through a const token —
  /// the heartbeat is observational, not a cancellation-state change.
  void report_progress(std::uint64_t delta = 1) const {
    progress_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t progress() const {
    return progress_.load(std::memory_order_relaxed);
  }

  /// Unamortized check: has the token fired (cancel or deadline)?
  bool expired() const {
    if (cancel_requested()) return true;
    if (!has_deadline_.load(std::memory_order_acquire)) return false;
    return Clock::now().time_since_epoch().count() >=
           deadline_ns_.load(std::memory_order_relaxed);
  }

  /// Why the token fired. An explicit reason (cancel / watchdog failure)
  /// wins over deadline expiry.
  QueryStatus status() const {
    const auto reason = reason_.load(std::memory_order_acquire);
    if (reason != 0) return static_cast<QueryStatus>(reason);
    return QueryStatus::kDeadlineExceeded;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<std::int64_t> deadline_ns_{0};
  /// First terminal reason recorded via fail(); 0 (== kOk) means unset.
  std::atomic<std::uint8_t> reason_{0};
  mutable std::atomic<std::uint64_t> progress_{0};
};

/// Per-thread polling helper: stride-amortized token check for hot loops.
/// Each engine worker owns one Poller; `fired()` is safe to call per
/// backtracking step.
class CancelPoller {
 public:
  explicit CancelPoller(const CancelToken* token) : token_(token) {}

  bool fired() {
    if (token_ == nullptr) return false;
    if (fired_) return true;
    if (++calls_ % CancelToken::kPollStride != 0) return false;
    token_->report_progress();  // liveness heartbeat for the watchdog
    fired_ = token_->expired();
    return fired_;
  }

  /// Unamortized check, for coarse-grained call sites (chunk boundaries).
  bool fired_now() {
    if (token_ == nullptr) return false;
    token_->report_progress();
    if (!fired_) fired_ = token_->expired();
    return fired_;
  }

  const CancelToken* token() const { return token_; }

 private:
  const CancelToken* token_ = nullptr;
  std::uint32_t calls_ = 0;
  bool fired_ = false;
};

}  // namespace stm
