// Cooperative cancellation and deadlines for engine runs.
//
// A CancelToken is shared between the issuer (service dispatcher, signal
// handler, test) and the engine workers. Engines poll it at backtracking
// steps; polling is two relaxed atomic loads on the fast path, with the
// steady_clock read amortized over kPollStride polls, so tokens are cheap
// enough to check inside the enumeration loop.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "core/query_stats.hpp"

namespace stm {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Clock reads are amortized: a poll only consults steady_clock every
  /// kPollStride calls (per polling thread; see Poller below).
  static constexpr std::uint32_t kPollStride = 256;

  CancelToken() = default;

  /// Arms the deadline `budget_ms` from now. Call before handing the token
  /// to an engine.
  void set_deadline_ms(double budget_ms) {
    deadline_ns_.store(
        (Clock::now().time_since_epoch() +
         std::chrono::nanoseconds(static_cast<std::int64_t>(budget_ms * 1e6)))
            .count(),
        std::memory_order_relaxed);
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Explicit cancellation (e.g. client disconnect, shutdown).
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Unamortized check: has the token fired (cancel or deadline)?
  bool expired() const {
    if (cancel_requested()) return true;
    if (!has_deadline_.load(std::memory_order_acquire)) return false;
    return Clock::now().time_since_epoch().count() >=
           deadline_ns_.load(std::memory_order_relaxed);
  }

  /// Why the token fired. Explicit cancellation wins over deadline expiry.
  QueryStatus status() const {
    return cancel_requested() ? QueryStatus::kCancelled
                              : QueryStatus::kDeadlineExceeded;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<std::int64_t> deadline_ns_{0};
};

/// Per-thread polling helper: stride-amortized token check for hot loops.
/// Each engine worker owns one Poller; `fired()` is safe to call per
/// backtracking step.
class CancelPoller {
 public:
  explicit CancelPoller(const CancelToken* token) : token_(token) {}

  bool fired() {
    if (token_ == nullptr) return false;
    if (fired_) return true;
    if (++calls_ % CancelToken::kPollStride != 0) return false;
    fired_ = token_->expired();
    return fired_;
  }

  /// Unamortized check, for coarse-grained call sites (chunk boundaries).
  bool fired_now() {
    if (token_ == nullptr) return false;
    if (!fired_) fired_ = token_->expired();
    return fired_;
  }

  const CancelToken* token() const { return token_; }

 private:
  const CancelToken* token_ = nullptr;
  std::uint32_t calls_ = 0;
  bool fired_ = false;
};

}  // namespace stm
