#include "core/recursive.hpp"

#include <algorithm>

#include "setops/multi_set_op.hpp"
#include "util/check.hpp"

namespace stm {

namespace {

class RecExec {
 public:
  RecExec(GraphView g, const MatchingPlan& plan, RecursiveCounters* c,
          const CancelToken* cancel = nullptr)
      : g_(g),
        plan_(plan),
        counters_(c),
        poller_(cancel),
        k_(plan.size()),
        simd_(simd::kernels_for_choice(plan.options().forced_isa)) {
    STM_CHECK_MSG(!plan_.pattern().is_labeled() || g_.is_labeled(),
                  "labeled pattern requires a labeled data graph");
    values_.resize(plan_.num_nodes());
  }

  std::uint64_t run_range(VertexId v_begin, VertexId v_end,
                          const EmbeddingVisitor* visit = nullptr) {
    visit_ = visit;
    stopped_ = false;
    std::uint64_t total = 0;
    const auto mask = plan_.exact_mask(0);
    for (VertexId v = v_begin; v < std::min(v_end, g_.num_vertices()); ++v) {
      if (stopped_) break;
      if (!label_ok(mask, v)) continue;
      total += run_from_v0(v);
    }
    return total;
  }

  std::uint64_t run_seed(VertexId v0, VertexId v1,
                         const EmbeddingVisitor* visit = nullptr) {
    STM_CHECK(k_ >= 2);
    visit_ = visit;
    stopped_ = false;
    matched_[0] = v0;
    bump_partials(0);
    materialize_entry(1);
    STM_CHECK_MSG(choice_ok(1, v1) &&
                      std::binary_search(cand(1).begin(), cand(1).end(), v1),
                  "seed (v0,v1) is not a valid level-0/1 prefix");
    matched_[1] = v1;
    bump_partials(1);
    if (k_ == 2) {
      if (visit_ != nullptr) (*visit_)({v0, v1});
      return 1;
    }
    materialize_entry(2);
    return recurse(2);
  }

  std::vector<std::pair<VertexId, VertexId>> seeds() {
    std::vector<std::pair<VertexId, VertexId>> out;
    const auto mask = plan_.exact_mask(0);
    for (VertexId v0 = 0; v0 < g_.num_vertices(); ++v0) {
      if (!label_ok(mask, v0)) continue;
      matched_[0] = v0;
      materialize_entry(1);
      for (VertexId v1 : cand(1))
        if (choice_ok(1, v1)) out.emplace_back(v0, v1);
    }
    return out;
  }

 private:
  bool label_ok(std::uint64_t mask, VertexId v) const {
    return !g_.is_labeled() || ((mask >> g_.label(v)) & 1ULL);
  }

  bool choice_ok(std::size_t l, VertexId v) const {
    for (std::size_t j = 0; j < l; ++j)
      if (matched_[j] == v) return false;
    for (std::uint8_t smaller : plan_.constraints_at(l))
      if (matched_[smaller] >= v) return false;
    return true;
  }

  const std::vector<VertexId>& cand(std::size_t l) const {
    return values_[static_cast<std::size_t>(plan_.candidate_node(l))];
  }

  void bump_partials(std::size_t l) {
    if (counters_ != nullptr) ++counters_->partials[l];
  }

  void add_ops(std::size_t entry, std::uint64_t ops) {
    if (counters_ == nullptr) return;
    counters_->scalar_ops += ops;
    counters_->extension_work[entry] += ops;
  }

  void materialize_entry(std::size_t entry) {
    const auto& nodes = plan_.nodes();
    for (std::int16_t id : plan_.nodes_at_entry(entry)) {
      const SetNode& node = nodes[static_cast<std::size_t>(id)];
      auto nbrs = g_.neighbors(matched_[node.op.vertex]);
      const LabelFilter filter =
          (g_.is_labeled() && node.label_mask != ~0ULL)
              ? LabelFilter{g_.labels_data(), node.label_mask}
              : LabelFilter{};
      auto& out = values_[static_cast<std::size_t>(id)];
      if (node.dep < 0) {
        out.clear();
        for (VertexId v : nbrs)
          if (filter.keep(v)) out.push_back(v);
        add_ops(entry, nbrs.size());
      } else {
        const auto& src = values_[static_cast<std::size_t>(node.dep)];
        // Dispatched (SIMD) set operation into a scratch buffer; src != out
        // by plan construction since dep != id. The label filter only
        // inspects surviving elements, so filtering after the set op is
        // bit-identical to the old fused merge loop.
        const bool intersect = (node.op.kind == SetOpKind::kIntersect);
        const std::size_t bound =
            intersect ? std::min(src.size(), nbrs.size()) : src.size();
        scratch_.resize(bound + simd::kSimdOutSlack);
        std::size_t n;
        if (intersect) {
          // Neighbor lists can dwarf a narrowed candidate set; gallop on
          // heavy skew, block-merge otherwise (simd::kGallopSkewRatio).
          const bool src_small = src.size() <= nbrs.size();
          const std::size_t small = src_small ? src.size() : nbrs.size();
          const std::size_t large = src_small ? nbrs.size() : src.size();
          if (small * simd::kGallopSkewRatio <= large)
            n = src_small
                    ? simd_.gallop_intersect(src.data(), src.size(),
                                             nbrs.data(), nbrs.size(),
                                             scratch_.data())
                    : simd_.gallop_intersect(nbrs.data(), nbrs.size(),
                                             src.data(), src.size(),
                                             scratch_.data());
          else
            n = simd_.intersect(src.data(), src.size(), nbrs.data(),
                                nbrs.size(), scratch_.data());
        } else if (src.size() * simd::kGallopSkewRatio <= nbrs.size()) {
          n = simd_.gallop_difference(src.data(), src.size(), nbrs.data(),
                                      nbrs.size(), scratch_.data());
        } else {
          n = simd_.difference(src.data(), src.size(), nbrs.data(),
                               nbrs.size(), scratch_.data());
        }
        scratch_.resize(n);
        if (filter.labels != nullptr)
          scratch_.erase(std::remove_if(scratch_.begin(), scratch_.end(),
                                        [&](VertexId v) {
                                          return !filter.keep(v);
                                        }),
                         scratch_.end());
        out.swap(scratch_);
        add_ops(entry, src.size() + nbrs.size());
      }
      if (counters_ != nullptr) ++counters_->sets_built;
    }
  }

  std::uint64_t run_from_v0(VertexId v0) {
    matched_[0] = v0;
    bump_partials(0);
    if (k_ == 1) return 1;
    materialize_entry(1);
    return recurse(1);
  }

  std::uint64_t recurse(std::size_t l) {
    const auto& c = cand(l);
    if (l == k_ - 1) {
      std::uint64_t found = 0;
      for (VertexId v : c) {
        if (!choice_ok(l, v)) continue;
        ++found;
        if (visit_ != nullptr) {
          matched_[l] = v;
          std::vector<VertexId> mapping(matched_.begin(),
                                        matched_.begin() +
                                            static_cast<std::ptrdiff_t>(k_));
          if (!(*visit_)(mapping)) {
            stopped_ = true;
            break;
          }
        }
      }
      add_ops(l, c.size());
      if (counters_ != nullptr) counters_->partials[l] += found;
      return found;
    }
    std::uint64_t total = 0;
    // Index-based iteration: deeper recursion only materializes nodes with
    // mat_level > l, so this level's candidate vector is never reallocated
    // underneath us.
    for (std::size_t idx = 0; idx < c.size() && !stopped_; ++idx) {
      if (poller_.fired()) {
        stopped_ = true;
        break;
      }
      const VertexId v = c[idx];
      if (!choice_ok(l, v)) continue;
      matched_[l] = v;
      bump_partials(l);
      materialize_entry(l + 1);
      total += recurse(l + 1);
    }
    return total;
  }

  const GraphView g_;
  const MatchingPlan& plan_;
  RecursiveCounters* counters_;
  CancelPoller poller_;
  std::size_t k_;
  const simd::Kernels& simd_;  // bound once per exec from the plan's choice
  std::vector<std::vector<VertexId>> values_;
  std::vector<VertexId> scratch_;
  std::array<VertexId, kMaxPatternSize> matched_{};
  const EmbeddingVisitor* visit_ = nullptr;
  bool stopped_ = false;
};

}  // namespace

std::uint64_t recursive_count_range(GraphView g, const MatchingPlan& plan,
                                    VertexId v_begin, VertexId v_end,
                                    RecursiveCounters* counters,
                                    const CancelToken* cancel) {
  RecExec exec(g, plan, counters, cancel);
  return exec.run_range(v_begin, v_end);
}

std::uint64_t recursive_enumerate_range(GraphView g, const MatchingPlan& plan,
                                        VertexId v_begin, VertexId v_end,
                                        const EmbeddingVisitor& visit,
                                        RecursiveCounters* counters,
                                        const CancelToken* cancel) {
  RecExec exec(g, plan, counters, cancel);
  return exec.run_range(v_begin, v_end, &visit);
}

std::uint64_t recursive_count_seed(GraphView g, const MatchingPlan& plan,
                                   VertexId v0, VertexId v1,
                                   RecursiveCounters* counters) {
  RecExec exec(g, plan, counters);
  return exec.run_seed(v0, v1);
}

std::uint64_t recursive_enumerate_seed(GraphView g, const MatchingPlan& plan,
                                       VertexId v0, VertexId v1,
                                       const EmbeddingVisitor& visit,
                                       RecursiveCounters* counters) {
  RecExec exec(g, plan, counters);
  return exec.run_seed(v0, v1, &visit);
}

std::vector<std::pair<VertexId, VertexId>> enumerate_seeds(
    GraphView g, const MatchingPlan& plan) {
  RecExec exec(g, plan, nullptr);
  return exec.seeds();
}

}  // namespace stm
