// Unified per-query execution status and statistics.
//
// Every engine run — SIMT simulator, host-parallel, and the service layer on
// top of them — reports the same QueryStats record, so downstream consumers
// (metrics registry, benchmarks, tests) do not need per-engine glue. The
// SIMT engine additionally reports its device-level EngineStats; QueryStats
// is the cross-engine common denominator.
#pragma once

#include <cstdint>

namespace stm {

/// Terminal status of a query. Engines return kOk or kDeadlineExceeded /
/// kCancelled (cooperative interruption with partial results); the service
/// layer adds kOverloaded (rejected at admission, never executed) and
/// kInvalidArgument (a precondition check_error from plan compilation or the
/// engine, reported instead of propagated). kInternalError marks execution
/// failures: a fault-injected run whose recovery budget is exhausted, an
/// exception escaping an engine call, or a watchdog-killed stalled query —
/// all of which the service may retry or serve via the fallback chain.
enum class QueryStatus : std::uint8_t {
  kOk,
  kDeadlineExceeded,
  kCancelled,
  kOverloaded,
  kInvalidArgument,
  kInternalError,
};

inline const char* to_string(QueryStatus s) {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kDeadlineExceeded: return "deadline_exceeded";
    case QueryStatus::kCancelled: return "cancelled";
    case QueryStatus::kOverloaded: return "overloaded";
    case QueryStatus::kInvalidArgument: return "invalid_argument";
    case QueryStatus::kInternalError: return "internal_error";
  }
  return "unknown";
}

/// Per-query execution statistics common to all engines.
///
/// On a non-kOk status the counters hold the partial work performed before
/// the interruption (the match count lives next to this struct in each
/// engine's result type and is likewise partial).
struct QueryStats {
  QueryStatus status = QueryStatus::kOk;
  /// Engine execution time: wall-clock ms for host execution, simulated ms
  /// for the SIMT engine.
  double engine_ms = 0.0;
  /// Scalar set-operation work (elements touched by merges/copies; for the
  /// SIMT engine, busy lane slots of warp set operations).
  std::uint64_t scalar_ops = 0;
  /// Candidate sets materialized.
  std::uint64_t sets_built = 0;
  /// Fault-injection decisions that fired during the run (0 without chaos).
  std::uint64_t faults_injected = 0;
  /// Recovery units (failed chunks / captured warp frames / device slices)
  /// re-enqueued and brought to completion without losing their work.
  std::uint64_t units_recovered = 0;

  QueryStats& operator+=(const QueryStats& o) {
    if (o.status != QueryStatus::kOk && status == QueryStatus::kOk)
      status = o.status;
    engine_ms += o.engine_ms;
    scalar_ops += o.scalar_ops;
    sets_built += o.sets_built;
    faults_injected += o.faults_injected;
    units_recovered += o.units_recovered;
    return *this;
  }
};

}  // namespace stm
